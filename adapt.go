package cool

// This file is the public surface of the adaptive-affinity controller
// (internal/adapt): Config.Adapt arms a per-epoch online controller
// that reads a counter-delta snapshot and adjusts the live scheduling
// policy — cluster-only stealing, wake fanout, steal backoff, and the
// shed floor — with hysteresis. On the simulator the epoch driver is a
// self-rescheduling event at fixed simulated-cycle boundaries, so
// adaptive runs stay bit-deterministic; on the native backend the
// timekeeper goroutine drives epochs off wall-clock ticks. Every
// policy change is recorded as a BLIS-style decision trace queryable
// via Report.Decisions and rendered by the Chrome trace exporter.

import (
	"fmt"

	"github.com/coolrts/cool/internal/adapt"
	"github.com/coolrts/cool/internal/trace"
)

// DefaultWakeFanout is the targeted-wake width both backends start
// from; the adaptive controller's fanout knob moves it at run time.
const DefaultWakeFanout = adapt.DefaultWakeFanout

// Default controller epochs, in each backend's clock.
const (
	defaultSimAdaptEpoch      = 50_000    // simulated cycles
	defaultNativeAdaptEpochNS = 1_000_000 // 1ms: five timekeeper ticks
)

// AdaptPolicy configures the online policy controller (Config.Adapt).
// The zero value selects backend defaults for everything.
type AdaptPolicy struct {
	// Epoch is the controller interval: simulated cycles on the
	// simulator (default 50_000), wall-clock nanoseconds on the native
	// backend (default 1_000_000).
	Epoch int64
	// Hysteresis is how many consecutive epochs a signal must persist
	// before the controller acts (default 2).
	Hysteresis int
	// TraceCapacity bounds the decision trace (default 256).
	TraceCapacity int
	// StealFailHigh is the FailedSteals/StealTries ratio above which
	// cross-cluster stealing is judged not to pay (default 0.75).
	StealFailHigh float64
	// MinFanout / MaxFanout bound the wake-fanout knob (defaults 2/32).
	MinFanout, MaxFanout int
	// Per-knob opt-outs: disable adapting cluster-only stealing, wake
	// fanout, steal backoff, or the shed floor.
	NoCluster, NoWake, NoBackoff, NoShed bool
	// Start, when non-nil, warm-starts the run: the controller and the
	// live scheduler begin from this previously learned policy vector
	// instead of the configuration's defaults. Harvest the vector with
	// Runtime.AdaptState at the end of one run and pass it to the next —
	// repeated runs of the same workload then skip the cold observation
	// epochs. A zero WakeFanout means "keep the backend default".
	Start *AdaptState
}

// validate rejects nonsensical controller configurations.
func (p *AdaptPolicy) validate() error {
	switch {
	case p.Epoch < 0:
		return fmt.Errorf("cool: Config.Adapt.Epoch must not be negative")
	case p.Hysteresis < 0:
		return fmt.Errorf("cool: Config.Adapt.Hysteresis must not be negative")
	case p.TraceCapacity < 0:
		return fmt.Errorf("cool: Config.Adapt.TraceCapacity must not be negative")
	case p.StealFailHigh < 0 || p.StealFailHigh > 1:
		return fmt.Errorf("cool: Config.Adapt.StealFailHigh must be in [0,1]")
	case p.MinFanout < 0 || p.MaxFanout < 0:
		return fmt.Errorf("cool: Config.Adapt fanout bounds must not be negative")
	case p.MinFanout > 0 && p.MaxFanout > 0 && p.MinFanout > p.MaxFanout:
		return fmt.Errorf("cool: Config.Adapt.MinFanout %d exceeds MaxFanout %d", p.MinFanout, p.MaxFanout)
	}
	if s := p.Start; s != nil {
		switch {
		case s.WakeFanout < 0:
			return fmt.Errorf("cool: Config.Adapt.Start.WakeFanout must not be negative")
		case s.BackoffShift < 0 || s.BackoffShift > 3:
			return fmt.Errorf("cool: Config.Adapt.Start.BackoffShift must be in [0,3]")
		case s.ShedBias < 0 || s.ShedBias > 3:
			return fmt.Errorf("cool: Config.Adapt.Start.ShedBias must be in [0,3]")
		}
	}
	return nil
}

// internal converts the public policy to the controller's, applying
// the backend's default epoch.
func (p *AdaptPolicy) internal(defaultEpoch int64) adapt.Policy {
	ap := adapt.Policy{
		Epoch:         p.Epoch,
		Hysteresis:    p.Hysteresis,
		TraceCap:      p.TraceCapacity,
		StealFailHigh: p.StealFailHigh,
		MinFanout:     p.MinFanout,
		MaxFanout:     p.MaxFanout,
		NoCluster:     p.NoCluster,
		NoWake:        p.NoWake,
		NoBackoff:     p.NoBackoff,
		NoShed:        p.NoShed,
	}
	if p.Start != nil {
		s := adapt.State(*p.Start)
		ap.Start = &s
	}
	if ap.Epoch <= 0 {
		ap.Epoch = defaultEpoch
	}
	return ap
}

// CounterSnapshot is one cheap machine-wide counter reading — the
// controller's input API, exposed for external policy controllers and
// monitoring. The steal/wake/shed fields are cumulative since the run
// started; Queued, Parked, and Workers are instantaneous gauges. On
// the native backend the cumulative fields read a dedicated atomic
// mirror bumped only at slow-path sites, so sampling is safe (and
// cheap) while Run executes; on the single-threaded simulator they sum
// the perfmon rows.
type CounterSnapshot struct {
	StealTries     int64
	FailedSteals   int64
	StealsLocal    int64
	StealsRemote   int64
	SetSteals      int64
	TargetedWakes  int64
	BroadcastWakes int64
	LockContention int64
	TasksShed      int64
	DeadlineMisses int64
	Completed      int64 // tasks executed (or shed) to completion

	// Memory-system attribution (simulator backend only; zero on the
	// native backend, which has no simulated memory system). The Stolen*
	// pair counts only references made while running a task most
	// recently moved by a cross-cluster steal — the locality rule's
	// signal.
	Refs         int64
	RemoteMisses int64 // non-local misses (remote + dirty)
	StolenRefs   int64
	StolenMisses int64

	Queued  int64 // tasks queued machine-wide right now
	Parked  int64 // workers idle-parked right now
	Workers int64 // alive workers right now

	// Backlog-concentration gauges: clusters holding queued work, out of
	// how many exist (simulator backend; zero natively).
	QueuedClusters int64
	Clusters       int64
}

// Delta returns s minus prev on the cumulative fields, keeping s's
// instantaneous gauges — the epoch-delta view the controller consumes.
func (s CounterSnapshot) Delta(prev CounterSnapshot) CounterSnapshot {
	return pubSnapshot(intSnapshot(s).Delta(intSnapshot(prev)))
}

// AdaptState is the live policy vector the controller drives.
type AdaptState struct {
	ClusterOnly  bool
	WakeFanout   int
	BackoffShift int // steal backoff scaled by 1<<shift (native only)
	ShedBias     int // shed high-water divided by 1<<bias (native only)
}

// AdaptAlternative is one counterfactual a decision scored but did not
// choose.
type AdaptAlternative struct {
	Action string
	Score  float64
}

// AdaptDecision is one recorded policy change: which knob moved, from
// what to what, the triggering counter delta, and the top-scored
// alternatives not taken. Folding a run's decisions over its initial
// state (ReplayAdaptDecisions) reproduces the final policy exactly.
type AdaptDecision struct {
	Seq          int    // ordinal within the trace
	Epoch        int64  // controller epoch at which it was taken
	Time         int64  // backend clock (cycles or nanoseconds)
	Knob         string // "cluster", "fanout", "backoff", "shed"
	Action       string
	From, To     int64 // knob value before/after (booleans as 0/1)
	Reason       string
	Score        float64
	Alternatives []AdaptAlternative
	Delta        CounterSnapshot // the epoch delta that triggered it
}

// AdaptInitialState returns the policy vector an adaptive run starts
// from under the given configuration — the seed for
// ReplayAdaptDecisions. Note that application variants may layer
// scheduling overrides on top of a base configuration; when replaying
// a run you observed, prefer Runtime.AdaptInitialState, which reports
// the controller's actual starting vector.
func AdaptInitialState(c Config) AdaptState {
	return AdaptState{
		ClusterOnly: c.Sched.ClusterStealingOnly,
		WakeFanout:  DefaultWakeFanout,
	}
}

// ReplayAdaptDecisions folds a decision trace over an initial state
// and returns the final policy vector. For any completed adaptive run
// whose trace did not overflow TraceCapacity,
// ReplayAdaptDecisions(AdaptInitialState(cfg), report.Decisions) equals
// the state Runtime.AdaptState reports — every policy change is
// reconstructible from the trace.
func ReplayAdaptDecisions(init AdaptState, ds []AdaptDecision) AdaptState {
	ids := make([]adapt.Decision, len(ds))
	for i, d := range ds {
		ids[i] = adapt.Decision{Knob: d.Knob, To: d.To}
	}
	st := adapt.Replay(adapt.State(init), ids)
	return AdaptState(st)
}

// CounterSnapshot samples the machine-wide scheduling counters. Safe
// to call at any time on the native backend (the cumulative fields
// read atomics); on the simulator call it between events — from the
// embedding program that means before Run or after it.
func (rt *Runtime) CounterSnapshot() CounterSnapshot {
	if rt.backend == BackendNative {
		return pubSnapshot(rt.nat.CounterSnapshot())
	}
	return pubSnapshot(rt.simSnapshot())
}

// AdaptState returns the controller's current policy vector, or false
// when Config.Adapt was not set. Call after Run for a settled view.
func (rt *Runtime) AdaptState() (AdaptState, bool) {
	if rt.backend == BackendNative {
		st, ok := rt.nat.AdaptState()
		return AdaptState(st), ok
	}
	if rt.adaptCtl == nil {
		return AdaptState{}, false
	}
	return AdaptState(rt.adaptCtl.State()), true
}

// AdaptInitialState returns the policy vector the controller actually
// started from, or false when Config.Adapt was not set. This is the
// correct seed for ReplayAdaptDecisions even when the runtime's
// effective policy differs from the base configuration (for example,
// an application variant forcing cluster-only stealing).
func (rt *Runtime) AdaptInitialState() (AdaptState, bool) {
	if rt.backend == BackendNative {
		st, ok := rt.nat.AdaptInit()
		return AdaptState(st), ok
	}
	if rt.adaptCtl == nil {
		return AdaptState{}, false
	}
	return AdaptState(rt.adaptCtl.Init()), true
}

// adaptDecisions returns the run's raw decision trace (nil when
// Config.Adapt was not set).
func (rt *Runtime) adaptDecisions() []adapt.Decision {
	if rt.backend == BackendNative {
		return rt.nat.Decisions()
	}
	if rt.adaptCtl == nil {
		return nil
	}
	return rt.adaptCtl.Decisions()
}

// installAdaptSim arms the controller on the simulator: a
// self-rescheduling engine event steps it at fixed simulated-cycle
// boundaries, so an adaptive sim run is exactly as deterministic as a
// static one. The event stops rescheduling itself once the run has
// drained. Backoff and shed decisions have no simulator mechanism (no
// timed parks, no shedding layer); they are recorded in the trace but
// applied natively only.
func (rt *Runtime) installAdaptSim(p *AdaptPolicy) {
	pol := p.internal(defaultSimAdaptEpoch)
	st0 := adapt.State{
		ClusterOnly: rt.pol.ClusterStealingOnly,
		WakeFanout:  rt.sched.WakeFanout(),
	}
	if pol.Start != nil {
		st0 = *pol.Start
		if st0.WakeFanout <= 0 {
			st0.WakeFanout = rt.sched.WakeFanout()
		}
		rt.sched.SetClusterStealingOnly(st0.ClusterOnly)
		rt.sched.SetWakeFanout(st0.WakeFanout)
	}
	ctl := adapt.New(pol, st0)
	rt.adaptCtl = ctl
	seen := 0
	var step func()
	step = func() {
		if rt.eng.LiveTasks() == 0 {
			return
		}
		now := rt.eng.Now()
		st, changed := ctl.Epoch(now, rt.simSnapshot())
		if changed {
			rt.sched.SetClusterStealingOnly(st.ClusterOnly)
			rt.sched.SetWakeFanout(st.WakeFanout)
			for n := ctl.Count(); seen < n; seen++ {
				d := ctl.DecisionAt(seen)
				rt.sched.Trace.Add(now, -1, trace.KindAdapt, d.Knob+" "+d.Action, d.To)
			}
		}
		rt.eng.At(now+pol.Epoch, step)
	}
	rt.eng.At(pol.Epoch, step)
}

// simSnapshot sums the simulator's perfmon rows into one controller
// snapshot. Single-threaded like everything in the sim stack.
func (rt *Runtime) simSnapshot() adapt.Snapshot {
	var s adapt.Snapshot
	for i := range rt.mon.Per {
		p := &rt.mon.Per[i]
		s.StealTries += p.StealTries
		s.FailedSteals += p.FailedSteals
		s.StealsLocal += p.StealsLocal
		s.StealsRemote += p.StealsRemote
		s.SetSteals += p.SetSteals
		s.TargetedWakes += p.TargetedWakes
		s.BroadcastWakes += p.BroadcastWakes
		s.LockContention += p.LockContention
		s.TasksShed += p.TasksShed
		s.DeadlineMisses += p.DeadlineMisses
		s.Completed += p.TasksRun
		s.Refs += p.Refs
		s.RemoteMisses += p.RemoteMisses + p.DirtyMisses
		s.StolenRefs += p.StolenRefs
		s.StolenMisses += p.StolenMisses
	}
	s.Queued = int64(rt.sched.QueuedTasks())
	s.Parked = int64(rt.eng.ParkedCount())
	s.Workers = int64(rt.cfg.Processors)
	s.QueuedClusters = int64(rt.sched.QueuedClusters())
	s.Clusters = int64(rt.cfg.Clusters())
	return s
}

// pubSnapshot / intSnapshot convert between the public and internal
// snapshot types (identical field sets).
func pubSnapshot(s adapt.Snapshot) CounterSnapshot {
	return CounterSnapshot{
		StealTries:     s.StealTries,
		FailedSteals:   s.FailedSteals,
		StealsLocal:    s.StealsLocal,
		StealsRemote:   s.StealsRemote,
		SetSteals:      s.SetSteals,
		TargetedWakes:  s.TargetedWakes,
		BroadcastWakes: s.BroadcastWakes,
		LockContention: s.LockContention,
		TasksShed:      s.TasksShed,
		DeadlineMisses: s.DeadlineMisses,
		Completed:      s.Completed,
		Refs:           s.Refs,
		RemoteMisses:   s.RemoteMisses,
		StolenRefs:     s.StolenRefs,
		StolenMisses:   s.StolenMisses,
		Queued:         s.Queued,
		Parked:         s.Parked,
		Workers:        s.Workers,
		QueuedClusters: s.QueuedClusters,
		Clusters:       s.Clusters,
	}
}

func intSnapshot(s CounterSnapshot) adapt.Snapshot {
	return adapt.Snapshot{
		StealTries:     s.StealTries,
		FailedSteals:   s.FailedSteals,
		StealsLocal:    s.StealsLocal,
		StealsRemote:   s.StealsRemote,
		SetSteals:      s.SetSteals,
		TargetedWakes:  s.TargetedWakes,
		BroadcastWakes: s.BroadcastWakes,
		LockContention: s.LockContention,
		TasksShed:      s.TasksShed,
		DeadlineMisses: s.DeadlineMisses,
		Completed:      s.Completed,
		Refs:           s.Refs,
		RemoteMisses:   s.RemoteMisses,
		StolenRefs:     s.StolenRefs,
		StolenMisses:   s.StolenMisses,
		Queued:         s.Queued,
		Parked:         s.Parked,
		Workers:        s.Workers,
		QueuedClusters: s.QueuedClusters,
		Clusters:       s.Clusters,
	}
}

// pubDecisions converts a raw decision trace to the public form.
func pubDecisions(ds []adapt.Decision) []AdaptDecision {
	if len(ds) == 0 {
		return nil
	}
	out := make([]AdaptDecision, len(ds))
	for i, d := range ds {
		alts := make([]AdaptAlternative, len(d.Alternatives))
		for j, a := range d.Alternatives {
			alts[j] = AdaptAlternative{Action: a.Action, Score: a.Score}
		}
		out[i] = AdaptDecision{
			Seq:          d.Seq,
			Epoch:        d.Epoch,
			Time:         d.Time,
			Knob:         d.Knob,
			Action:       d.Action,
			From:         d.From,
			To:           d.To,
			Reason:       d.Reason,
			Score:        d.Score,
			Alternatives: alts,
			Delta:        pubSnapshot(d.Delta),
		}
	}
	return out
}
