package cool_test

import (
	"testing"

	cool "github.com/coolrts/cool"
)

func TestSliceSharesStorageAndAddresses(t *testing.T) {
	rt := newRT(t, 4)
	arr := rt.NewF64(100, 0)
	s := arr.Slice(10, 20)
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Addr(0) != arr.Addr(10) || s.Addr(9) != arr.Addr(19) {
		t.Fatal("slice addresses do not line up with the parent")
	}
	s.Data[0] = 42
	if arr.Data[10] != 42 {
		t.Fatal("slice does not share storage")
	}
	i := rt.NewI64(50, 1)
	is := i.Slice(5, 10)
	if is.Addr(0) != i.Addr(5) || is.Len() != 5 {
		t.Fatal("I64 slice wrong")
	}
}

func TestProcModWrapsNegativeAndLarge(t *testing.T) {
	rt := newRT(t, 8)
	a := rt.NewF64Pages(1024, -3) // -3 mod 8 = 5
	if got := rt.Home(a.Base); got != 5 {
		t.Fatalf("negative proc homed at %d, want 5", got)
	}
	b := rt.NewF64Pages(1024, 19) // 19 mod 8 = 3
	if got := rt.Home(b.Base); got != 3 {
		t.Fatalf("large proc homed at %d, want 3", got)
	}
}

func TestCtxAllocators(t *testing.T) {
	rt := newRT(t, 8)
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			ctx.Spawn("allocator", func(c *cool.Ctx) {
				// Default allocation is local to the requesting
				// processor's cluster.
				f := c.NewF64(64)
				if cl := rt.MachineConfig().ClusterOf(rt.Home(f.Base)); cl != c.Cluster() {
					t.Errorf("local alloc homed in cluster %d, proc in %d", cl, c.Cluster())
				}
				i := c.NewI64(64)
				c.WriteI64(i, 3, 7)
				if c.ReadI64(i, 3) != 7 {
					t.Error("I64 readback failed")
				}
				o := c.NewObj(256)
				c.Touch(o, 0, 256, true)
				g := c.NewF64On(64, 0)
				if rt.Home(g.Base) != 0 {
					t.Error("NewF64On ignored the processor")
				}
			}, cool.OnProcessor(5))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestObjAllocation(t *testing.T) {
	rt := newRT(t, 8)
	o := rt.NewObj(512, 4)
	if o.Size != 512 {
		t.Fatalf("size %d", o.Size)
	}
	if got := rt.Home(o.Base); got != 4 {
		t.Fatalf("obj homed at %d", got)
	}
	p := rt.NewObjPages(100, 2)
	if p.Base%4096 != 0 {
		t.Fatal("NewObjPages not page aligned")
	}
}

func TestUtilizationBounds(t *testing.T) {
	rt := newRT(t, 4)
	if err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < 8; i++ {
				ctx.Spawn("w", func(c *cool.Ctx) { c.Compute(10000) })
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	r := rt.Report()
	if u := r.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization %v out of (0,1]", u)
	}
	if r.BusyCycles <= 0 {
		t.Fatal("no busy cycles")
	}
}

func TestCounterDerivedStats(t *testing.T) {
	c := cool.Counters{}
	if c.MissRate() != 0 || c.LocalFraction() != 1 || c.HomeFraction() != 1 {
		t.Fatal("zero-counter derived stats wrong")
	}
	c = cool.Counters{Refs: 100, L1Hits: 90, LocalMisses: 5, RemoteMisses: 5, TasksRun: 10, TasksAtHome: 7}
	if c.Misses() != 10 || c.MissRate() != 0.1 {
		t.Fatalf("misses %d rate %v", c.Misses(), c.MissRate())
	}
	if c.LocalFraction() != 0.5 || c.HomeFraction() != 0.7 {
		t.Fatalf("fractions %v %v", c.LocalFraction(), c.HomeFraction())
	}
}

func TestMachineConfigIsACopy(t *testing.T) {
	rt := newRT(t, 8)
	mc := rt.MachineConfig()
	mc.Processors = 999
	if rt.Processors() != 8 || rt.MachineConfig().Processors != 8 {
		t.Fatal("MachineConfig leaked internal state")
	}
	if rt.Clusters() != 2 {
		t.Fatalf("clusters = %d", rt.Clusters())
	}
}

func TestDynamicClusterStealingFlag(t *testing.T) {
	// Flip cluster-only stealing on mid-run (the §6.3 runtime flag):
	// tasks pinned to processor 0 afterwards must stay in cluster 0.
	rt := newRT(t, 8)
	var phase2procs []int
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < 8; i++ {
				ctx.Spawn("warm", func(c *cool.Ctx) { c.Compute(5000) }, cool.OnProcessor(0))
			}
		})
		ctx.SetClusterStealingOnly(true)
		ctx.WaitFor(func() {
			for i := 0; i < 16; i++ {
				ctx.Spawn("pin", func(c *cool.Ctx) {
					phase2procs = append(phase2procs, c.ProcID())
					c.Compute(20000)
				}, cool.OnProcessor(0))
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range phase2procs {
		if p >= 4 {
			t.Fatalf("task leaked to processor %d after enabling cluster-only stealing", p)
		}
	}
}

func TestLeastLoadedSetPlacement(t *testing.T) {
	rt, err := cool.NewRuntime(cool.Config{
		Processors: 4,
		Sched:      cool.SchedPolicy{PlaceSetsLeastLoaded: true, NoStealing: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]*cool.F64, 4)
	for i := range objs {
		objs[i] = rt.NewF64Pages(64, 0)
	}
	procs := map[int]bool{}
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for s := 0; s < 4; s++ {
				obj := objs[s]
				for k := 0; k < 3; k++ {
					ctx.Spawn("set", func(c *cool.Ctx) {
						procs[c.ProcID()] = true
						c.Compute(8000)
					}, cool.TaskAffinity(obj.Base))
				}
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Four sets across four processors: least-loaded placement must use
	// every processor even without stealing.
	if len(procs) != 4 {
		t.Fatalf("least-loaded placement used %d processors, want 4", len(procs))
	}
}

func TestRecursiveLockIsAnError(t *testing.T) {
	rt := newRT(t, 2)
	mon := rt.NewMonitor(0)
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.Lock(mon)
		ctx.Lock(mon) // must panic -> engine converts to error
	})
	if err == nil {
		t.Fatal("recursive lock not reported")
	}
}

func TestUnlockWithoutOwnershipIsAnError(t *testing.T) {
	rt := newRT(t, 2)
	mon := rt.NewMonitor(0)
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.Unlock(mon)
	})
	if err == nil {
		t.Fatal("foreign unlock not reported")
	}
}
