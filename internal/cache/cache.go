// Package cache simulates the per-processor two-level cache hierarchy of
// the modelled machine together with an invalidation-based directory
// coherence protocol (the essentials of DASH's protocol).
//
// Every simulated memory reference is charged the latency of the level
// that services it: first-level cache, second-level cache, local cluster
// memory, remote cluster memory, or a dirty line in another processor's
// cache. The package feeds the perfmon counters used to regenerate the
// paper's cache-miss figures.
package cache

import (
	"math/bits"

	"github.com/coolrts/cool/internal/machine"
	"github.com/coolrts/cool/internal/memsim"
	"github.com/coolrts/cool/internal/perfmon"
)

type state int8

const (
	invalid state = iota
	shared
	modified
)

// way is one cache line slot.
type way struct {
	tag   int64 // line address (addr >> lineShift), -1 when invalid
	state state
	used  int64 // LRU timestamp
}

// level is one set-associative cache level.
type level struct {
	sets  int
	assoc int
	ways  []way // sets*assoc entries
}

func newLevel(g machine.CacheGeometry, lineSize int) *level {
	sets := g.Size / (g.Assoc * lineSize)
	l := &level{sets: sets, assoc: g.Assoc, ways: make([]way, sets*g.Assoc)}
	for i := range l.ways {
		l.ways[i].tag = -1
	}
	return l
}

// lookup returns the way index holding line, or -1.
func (l *level) lookup(line int64) int {
	set := int(line&int64(l.sets-1)) * l.assoc
	for i := set; i < set+l.assoc; i++ {
		if l.ways[i].tag == line && l.ways[i].state != invalid {
			return i
		}
	}
	return -1
}

// victim returns the way index to fill for line (an invalid way if any,
// else the LRU way).
func (l *level) victim(line int64) int {
	set := int(line&int64(l.sets-1)) * l.assoc
	best := set
	for i := set; i < set+l.assoc; i++ {
		if l.ways[i].state == invalid {
			return i
		}
		if l.ways[i].used < l.ways[best].used {
			best = i
		}
	}
	return best
}

// dirEntry is the directory state for one line: which caches hold it and
// whether one of them holds it modified.
type dirEntry struct {
	sharers uint64 // bitmask over processors
	owner   int8   // valid when dirty
	dirty   bool
}

// procCache is one processor's private hierarchy.
type procCache struct {
	l1, l2 *level
	tick   int64
}

// System is the machine-wide cache and coherence simulator.
type System struct {
	cfg       machine.Config
	lineShift uint
	procs     []procCache
	dir       map[int64]*dirEntry
	space     *memsim.Space
	mon       *perfmon.Monitor

	// mems models each cluster memory module as a FIFO server: misses
	// arrive, the queue drains one miss per MemOccupancy cycles, and a
	// new miss waits behind the current backlog.
	mems []memModule

	// degrade holds a per-cluster fault-injection multiplier (nil or 1 =
	// healthy) applied to memory service latency and module occupancy.
	degrade []int64
}

// memModule tracks one cluster memory's backlog. Queue length (not an
// absolute busy-until time) makes the model robust to the bounded clock
// skew between processors: an out-of-order arrival cannot reserve the
// module in another processor's simulated future.
type memModule struct {
	qlen float64
	last int64
}

// New builds the cache system for a validated machine configuration.
func New(cfg machine.Config, space *memsim.Space, mon *perfmon.Monitor) *System {
	s := &System{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros64(uint64(cfg.LineSize))),
		dir:       make(map[int64]*dirEntry),
		space:     space,
		mon:       mon,
	}
	s.mems = make([]memModule, cfg.Clusters())
	s.procs = make([]procCache, cfg.Processors)
	for i := range s.procs {
		s.procs[i] = procCache{
			l1: newLevel(cfg.L1, cfg.LineSize),
			l2: newLevel(cfg.L2, cfg.LineSize),
		}
	}
	return s
}

// Access simulates processor p touching [addr, addr+size) starting at
// simulated time now, and returns the total latency in cycles. write
// selects a store (requiring exclusive ownership) versus a load. Misses
// serviced by a memory module queue behind earlier misses to the same
// module (bandwidth contention).
func (s *System) Access(p int, now int64, addr, size int64, write bool) int64 {
	if size <= 0 {
		return 0
	}
	first := addr >> s.lineShift
	last := (addr + size - 1) >> s.lineShift
	var cycles int64
	for line := first; line <= last; line++ {
		cycles += s.accessLine(p, now+cycles, line, write)
	}
	return cycles
}

// Prefetch installs the lines of [addr, addr+size) into p's caches in
// shared state without stalling the processor: only a small issue cost
// per line is returned, while the memory module still spends bandwidth
// on the lines actually fetched. Lines already present (or dirty in
// another cache, which a non-binding prefetch must not disturb) are
// skipped.
func (s *System) Prefetch(p int, now int64, addr, size int64) int64 {
	if size <= 0 {
		return 0
	}
	const issueCost = 2
	pc := &s.procs[p]
	ctr := &s.mon.Per[p]
	first := addr >> s.lineShift
	last := (addr + size - 1) >> s.lineShift
	var cycles int64
	for line := first; line <= last; line++ {
		cycles += issueCost
		ctr.Prefetches++
		if pc.l2.lookup(line) >= 0 || pc.l1.lookup(line) >= 0 {
			continue
		}
		if d := s.dir[line]; d != nil && d.dirty {
			continue // non-binding: leave dirty lines alone
		}
		pc.tick++
		s.memQueue(s.space.HomeCluster(line<<s.lineShift), now+cycles)
		d := s.dir[line]
		if d == nil {
			d = &dirEntry{}
			s.dir[line] = d
		}
		d.sharers |= 1 << uint(p)
		s.fillL2(p, line, shared)
		s.fillL1(p, line, shared)
		ctr.PrefetchFills++
	}
	return cycles
}

// accessLine services one line reference at time at and returns its
// latency.
func (s *System) accessLine(p int, at int64, line int64, write bool) int64 {
	pc := &s.procs[p]
	pc.tick++
	ctr := &s.mon.Per[p]
	ctr.Refs++
	lat := s.cfg.Lat

	// First-level cache.
	if i := pc.l1.lookup(line); i >= 0 {
		pc.l1.ways[i].used = pc.tick
		if !write || pc.l1.ways[i].state == modified {
			ctr.L1Hits++
			return lat.L1Hit
		}
		// Write to a shared line: upgrade.
		cyc := s.upgrade(p, line)
		s.setState(pc, line, modified)
		ctr.Upgrades++
		return lat.L1Hit + cyc
	}

	// Second-level cache.
	if i := pc.l2.lookup(line); i >= 0 {
		pc.l2.ways[i].used = pc.tick
		st := pc.l2.ways[i].state
		var cyc int64
		if write && st != modified {
			cyc = s.upgrade(p, line)
			ctr.Upgrades++
			st = modified
		}
		s.fillL1(p, line, st)
		pc.l2.ways[i].state = st
		ctr.L2Hits++
		return lat.L2Hit + cyc
	}

	// Miss: consult the directory.
	return s.miss(p, at, line, write)
}

// miss services a full cache miss through the directory and fills both
// levels. Returns the latency, including any queueing at the home memory
// module.
func (s *System) miss(p int, at int64, line int64, write bool) int64 {
	ctr := &s.mon.Per[p]
	lat := s.cfg.Lat
	myCluster := s.cfg.ClusterOf(p)
	homeCluster := s.space.HomeCluster(line << s.lineShift)

	d := s.dir[line]
	var cycles int64
	switch {
	case d != nil && d.dirty && int(d.owner) != p:
		// Serviced cache-to-cache from the dirty owner. The transfer
		// occupies the owner's cluster resources (its bus/directory),
		// so it queues there like a memory-serviced miss.
		owner := int(d.owner)
		if s.cfg.SameCluster(p, owner) {
			cycles = lat.LocalMem
		} else {
			cycles = lat.RemoteDirty
		}
		cycles += s.memQueue(s.cfg.ClusterOf(owner), at)
		ctr.DirtyMisses++
		if write {
			s.invalidateIn(owner, line)
			d.sharers = 0
			d.dirty = false
		} else {
			// Owner's copy downgrades to shared; data written home.
			s.downgradeIn(owner, line)
			d.dirty = false
			s.mon.Per[owner].Writebacks++
		}
	case homeCluster == myCluster:
		cycles = lat.LocalMem*s.factorOf(homeCluster) + s.memQueue(homeCluster, at)
		ctr.LocalMisses++
	default:
		cycles = lat.RemoteMem*s.factorOf(homeCluster) + s.memQueue(homeCluster, at)
		ctr.RemoteMisses++
	}

	if d == nil {
		d = &dirEntry{}
		s.dir[line] = d
	}
	var st state
	if write {
		// Exclusive: invalidate all other sharers.
		s.invalidateSharers(p, line, d)
		d.sharers = 1 << uint(p)
		d.owner = int8(p)
		d.dirty = true
		st = modified
	} else {
		d.sharers |= 1 << uint(p)
		st = shared
	}

	s.fillL2(p, line, st)
	s.fillL1(p, line, st)
	return cycles
}

// memQueue records one miss arriving at the cluster's memory module at
// time at and returns the queueing delay behind the current backlog. The
// backlog drains at one miss per MemOccupancy cycles.
func (s *System) memQueue(cluster int, at int64) int64 {
	occ := s.cfg.Lat.MemOccupancy * s.factorOf(cluster)
	if occ <= 0 {
		return 0
	}
	m := &s.mems[cluster]
	if at > m.last {
		m.qlen -= float64(at-m.last) / float64(occ)
		if m.qlen < 0 {
			m.qlen = 0
		}
		m.last = at
	}
	delay := int64(m.qlen * float64(occ))
	m.qlen++
	return delay
}

// DegradeMemory multiplies cluster's memory service latency and module
// occupancy by factor from now on (fault injection). Dirty misses
// serviced cache-to-cache still queue at the degraded module, so they
// slow down too.
func (s *System) DegradeMemory(cluster int, factor int64) {
	if cluster < 0 || cluster >= len(s.mems) || factor < 1 {
		return
	}
	if s.degrade == nil {
		s.degrade = make([]int64, len(s.mems))
	}
	s.degrade[cluster] = factor
}

// factorOf returns the degradation multiplier for a cluster's memory
// module (1 when healthy).
func (s *System) factorOf(cluster int) int64 {
	if s.degrade == nil || s.degrade[cluster] < 1 {
		return 1
	}
	return s.degrade[cluster]
}

// upgrade obtains exclusive ownership of a line this processor already
// holds shared. Returns the extra latency.
func (s *System) upgrade(p int, line int64) int64 {
	d := s.dir[line]
	if d != nil {
		s.invalidateSharers(p, line, d)
		d.sharers = 1 << uint(p)
		d.owner = int8(p)
		d.dirty = true
	} else {
		s.dir[line] = &dirEntry{sharers: 1 << uint(p), owner: int8(p), dirty: true}
	}
	return s.cfg.Lat.Upgrade
}

// invalidateSharers removes every copy of line except processor p's.
func (s *System) invalidateSharers(p int, line int64, d *dirEntry) {
	mask := d.sharers &^ (1 << uint(p))
	for mask != 0 {
		q := bits.TrailingZeros64(mask)
		mask &^= 1 << uint(q)
		s.invalidateIn(q, line)
	}
	d.sharers &= 1 << uint(p)
}

// invalidateIn drops line from processor q's caches.
func (s *System) invalidateIn(q int, line int64) {
	pc := &s.procs[q]
	if i := pc.l1.lookup(line); i >= 0 {
		pc.l1.ways[i].state = invalid
	}
	if i := pc.l2.lookup(line); i >= 0 {
		pc.l2.ways[i].state = invalid
	}
	s.mon.Per[q].Invalidations++
}

// downgradeIn demotes a modified line in q's caches to shared.
func (s *System) downgradeIn(q int, line int64) {
	pc := &s.procs[q]
	if i := pc.l1.lookup(line); i >= 0 && pc.l1.ways[i].state == modified {
		pc.l1.ways[i].state = shared
	}
	if i := pc.l2.lookup(line); i >= 0 && pc.l2.ways[i].state == modified {
		pc.l2.ways[i].state = shared
	}
}

// setState updates line's state in both levels of p's hierarchy.
func (s *System) setState(pc *procCache, line int64, st state) {
	if i := pc.l1.lookup(line); i >= 0 {
		pc.l1.ways[i].state = st
	}
	if i := pc.l2.lookup(line); i >= 0 {
		pc.l2.ways[i].state = st
	}
}

// fillL1 inserts line into p's L1, evicting the LRU way.
func (s *System) fillL1(p int, line int64, st state) {
	pc := &s.procs[p]
	v := pc.l1.victim(line)
	w := &pc.l1.ways[v]
	// L1 is inclusive in L2: evicted L1 lines stay in L2, so no directory
	// action is needed here.
	w.tag = line
	w.state = st
	w.used = pc.tick
}

// fillL2 inserts line into p's L2, evicting the LRU way (with
// back-invalidation of L1 to preserve inclusion, and writeback/directory
// maintenance for the victim).
func (s *System) fillL2(p int, line int64, st state) {
	pc := &s.procs[p]
	v := pc.l2.victim(line)
	w := &pc.l2.ways[v]
	if w.state != invalid && w.tag != line {
		s.evictLine(p, w.tag, w.state)
	}
	w.tag = line
	w.state = st
	w.used = pc.tick
}

// evictLine handles a line leaving p's L2: back-invalidate L1, write back
// if dirty, and update the directory.
func (s *System) evictLine(p int, line int64, st state) {
	pc := &s.procs[p]
	if i := pc.l1.lookup(line); i >= 0 {
		pc.l1.ways[i].state = invalid
	}
	if st == modified {
		s.mon.Per[p].Writebacks++
	}
	if d, ok := s.dir[line]; ok {
		d.sharers &^= 1 << uint(p)
		if d.dirty && int(d.owner) == p {
			d.dirty = false
		}
		if d.sharers == 0 {
			delete(s.dir, line)
		}
	}
}
