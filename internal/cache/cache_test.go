package cache

import (
	"testing"

	"github.com/coolrts/cool/internal/machine"
	"github.com/coolrts/cool/internal/memsim"
	"github.com/coolrts/cool/internal/perfmon"
)

type fixture struct {
	cfg   machine.Config
	space *memsim.Space
	mon   *perfmon.Monitor
	sys   *System
	now   int64
}

// access performs one reference with the fixture clock advanced well past
// any memory-module occupancy, so latency expectations are exact.
func (f *fixture) access(p int, addr, size int64, write bool) int64 {
	f.now += 100000
	return f.sys.Access(p, f.now, addr, size, write)
}

func newFixture(t *testing.T, procs int) *fixture {
	t.Helper()
	cfg := machine.DASH(procs)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	space := memsim.New(cfg)
	mon := perfmon.New(procs)
	return &fixture{cfg: cfg, space: space, mon: mon, sys: New(cfg, space, mon)}
}

func TestColdMissThenHit(t *testing.T) {
	f := newFixture(t, 8)
	addr := f.space.Alloc(64, 0) // homed in cluster 0, proc 0's cluster
	lat := f.cfg.Lat

	if got := f.access(0, addr, 8, false); got != lat.LocalMem {
		t.Fatalf("cold local miss cost %d, want %d", got, lat.LocalMem)
	}
	if got := f.access(0, addr, 8, false); got != lat.L1Hit {
		t.Fatalf("warm hit cost %d, want %d", got, lat.L1Hit)
	}
	c := f.mon.Per[0]
	if c.LocalMisses != 1 || c.L1Hits != 1 || c.Refs != 2 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestRemoteMissCostsMore(t *testing.T) {
	f := newFixture(t, 8)
	addr := f.space.Alloc(64, 4) // homed at proc 4 (cluster 1)
	lat := f.cfg.Lat

	// Proc 0 is in cluster 0: remote.
	if got := f.access(0, addr, 8, false); got != lat.RemoteMem {
		t.Fatalf("remote miss cost %d, want %d", got, lat.RemoteMem)
	}
	// Proc 4 is in cluster 1: local.
	if got := f.access(4, addr, 8, false); got != lat.LocalMem {
		t.Fatalf("local miss cost %d, want %d", got, lat.LocalMem)
	}
	if f.mon.Per[0].RemoteMisses != 1 || f.mon.Per[4].LocalMisses != 1 {
		t.Fatalf("miss classification wrong: %+v %+v", f.mon.Per[0], f.mon.Per[4])
	}
}

func TestMigrationConvertsRemoteToLocal(t *testing.T) {
	// The mechanism behind Figure 11's Affinity+ObjectDistr bars: after
	// migration the same misses are serviced locally.
	f := newFixture(t, 8)
	addr := f.space.AllocPages(4096, 4)
	if got := f.access(0, addr, 8, false); got != f.cfg.Lat.RemoteMem {
		t.Fatalf("pre-migration cost %d", got)
	}
	f.space.Migrate(addr, 4096, 0)
	// Touch a different line on the migrated page (cold in cache).
	if got := f.access(0, addr+64, 8, false); got != f.cfg.Lat.LocalMem {
		t.Fatalf("post-migration cost %d, want local %d", got, f.cfg.Lat.LocalMem)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	f := newFixture(t, 8)
	addr := f.space.Alloc(64, 0)

	f.access(0, addr, 8, false)
	f.access(1, addr, 8, false)
	f.access(2, addr, 8, false)

	// Proc 0 writes: procs 1 and 2 must lose their copies.
	f.access(0, addr, 8, true)
	if inv := f.mon.Per[1].Invalidations + f.mon.Per[2].Invalidations; inv != 2 {
		t.Fatalf("invalidations = %d, want 2", inv)
	}

	// Proc 1 re-reads: must miss (serviced from proc 0's dirty copy).
	before := f.mon.Per[1].Misses()
	f.access(1, addr, 8, false)
	if f.mon.Per[1].Misses() != before+1 {
		t.Fatal("reader after invalidation should miss")
	}
	if f.mon.Per[1].DirtyMisses != 1 {
		t.Fatalf("expected a dirty miss, got %+v", f.mon.Per[1])
	}
}

func TestDirtyRemoteServicedCacheToCache(t *testing.T) {
	f := newFixture(t, 8)
	addr := f.space.Alloc(64, 0)
	lat := f.cfg.Lat

	f.access(0, addr, 8, true) // proc 0 (cluster 0) dirties the line
	// Proc 4 (cluster 1) reads: dirty-remote latency.
	if got := f.access(4, addr, 8, false); got != lat.RemoteDirty {
		t.Fatalf("dirty remote read cost %d, want %d", got, lat.RemoteDirty)
	}
	// Proc 1 (cluster 0) reads a line dirty in proc 0: cache-to-cache
	// within the cluster costs local latency.
	addr2 := f.space.Alloc(64, 0)
	f.access(0, addr2, 8, true)
	if got := f.access(1, addr2, 8, false); got != lat.LocalMem {
		t.Fatalf("dirty local read cost %d, want %d", got, lat.LocalMem)
	}
}

func TestUpgradeOnWriteToSharedLine(t *testing.T) {
	f := newFixture(t, 8)
	addr := f.space.Alloc(64, 0)
	f.access(0, addr, 8, false)
	f.access(1, addr, 8, false)

	got := f.access(0, addr, 8, true)
	want := f.cfg.Lat.L1Hit + f.cfg.Lat.Upgrade
	if got != want {
		t.Fatalf("upgrade cost %d, want %d", got, want)
	}
	if f.mon.Per[0].Upgrades != 1 {
		t.Fatalf("upgrades = %d", f.mon.Per[0].Upgrades)
	}
	// Subsequent write is a plain L1 hit on a modified line.
	if got := f.access(0, addr, 8, true); got != f.cfg.Lat.L1Hit {
		t.Fatalf("write to owned line cost %d", got)
	}
}

func TestMultiLineAccessChargesPerLine(t *testing.T) {
	f := newFixture(t, 8)
	addr := f.space.Alloc(256, 0) // 4 lines
	got := f.access(0, addr, 256, false)
	if want := 4 * f.cfg.Lat.LocalMem; got != want {
		t.Fatalf("4-line access cost %d, want %d", got, want)
	}
	if f.mon.Per[0].Refs != 4 {
		t.Fatalf("refs = %d, want 4", f.mon.Per[0].Refs)
	}
}

func TestCapacityEvictionAndL2Hit(t *testing.T) {
	f := newFixture(t, 8)
	// Working set bigger than L1 (64 KB) but within L2 (256 KB).
	n := 128 << 10
	addr := f.space.Alloc(int64(n), 0)
	f.access(0, addr, int64(n), false) // fill
	// Re-walk: early lines were evicted from L1 but remain in L2.
	f.access(0, addr, int64(n), false)
	c := f.mon.Per[0]
	if c.L2Hits == 0 {
		t.Fatalf("expected L2 hits after L1 capacity eviction: %+v", c)
	}
	if c.Misses() >= c.Refs {
		t.Fatalf("second pass should not miss everywhere: %+v", c)
	}
}

func TestEvictionWritesBackDirtyLines(t *testing.T) {
	f := newFixture(t, 8)
	// Dirty more than L2 capacity to force dirty evictions.
	n := int64(512 << 10)
	addr := f.space.Alloc(n, 0)
	f.access(0, addr, n, true)
	if f.mon.Per[0].Writebacks == 0 {
		t.Fatal("expected writebacks from dirty evictions")
	}
}

func TestDirectoryCleansUpOnEviction(t *testing.T) {
	f := newFixture(t, 8)
	n := int64(1 << 20) // blow through L2 several times
	addr := f.space.Alloc(n, 0)
	f.access(0, addr, n, false)
	maxResident := (f.cfg.L2.Size / f.cfg.LineSize) + (f.cfg.L1.Size / f.cfg.LineSize)
	if len(f.sys.dir) > maxResident {
		t.Fatalf("directory has %d entries; lines resident at most %d", len(f.sys.dir), maxResident)
	}
}

func TestMemoryModuleContention(t *testing.T) {
	// Misses arriving together at one cluster's memory queue behind each
	// other; the same misses spread over the clusters do not.
	f := newFixture(t, 32)
	lat := f.cfg.Lat

	// 8 processors miss simultaneously to cluster 0's memory.
	concentrated := int64(0)
	addr := f.space.AllocPages(8*64, 0)
	for p := 0; p < 8; p++ {
		concentrated += f.sys.Access(4*p, 0, addr+int64(p)*64, 8, false)
	}

	// 8 processors miss simultaneously, each to its own cluster.
	spread := int64(0)
	addrs := make([]int64, 8)
	for c := 0; c < 8; c++ {
		addrs[c] = f.space.AllocPages(64, 4*c)
	}
	for p := 0; p < 8; p++ {
		spread += f.sys.Access(4*p, 1_000_000, addrs[p], 8, false)
	}

	if concentrated <= spread {
		t.Fatalf("no contention: concentrated %d <= spread %d", concentrated, spread)
	}
	// The concentrated case serializes on one module.
	if concentrated < spread+7*lat.MemOccupancy {
		t.Fatalf("queueing too weak: concentrated %d, spread %d", concentrated, spread)
	}
}

func TestCacheReuseBeatsCapacityMisses(t *testing.T) {
	// The premise of task affinity: back-to-back touches of the same
	// region hit in cache, interleaved touches of many regions do not.
	f := newFixture(t, 2)
	region := make([]int64, 8)
	regionSize := int64(48 << 10) // 48 KB each; two exceed L1
	for i := range region {
		region[i] = f.space.Alloc(regionSize, 0)
	}

	walk := func(p int, base int64) int64 {
		var cyc int64
		for off := int64(0); off < regionSize; off += 64 {
			cyc += f.access(p, base+off, 8, false)
		}
		return cyc
	}

	// Back to back: region 0 twice in a row on proc 0.
	walk(0, region[0])
	backToBack := walk(0, region[0])

	// Interleaved: touch regions 1..7 between two walks of region 1.
	walk(1, region[1])
	for _, r := range region[2:] {
		walk(1, r)
	}
	interleaved := walk(1, region[1])

	if backToBack*2 >= interleaved {
		t.Fatalf("back-to-back %d should be much cheaper than interleaved %d", backToBack, interleaved)
	}
}
