package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// checkInclusion verifies L1 ⊆ L2 for one processor.
func checkInclusion(s *System, p int) bool {
	pc := &s.procs[p]
	for _, w := range pc.l1.ways {
		if w.state == invalid {
			continue
		}
		if pc.l2.lookup(w.tag) < 0 {
			return false
		}
	}
	return true
}

// checkDirectory verifies that directory sharer bits agree with cache
// contents: every sharer bit corresponds to a resident line, and every
// resident line has its sharer bit set.
func checkDirectory(s *System) bool {
	for line, d := range s.dir {
		for p := 0; p < s.cfg.Processors; p++ {
			bit := d.sharers&(1<<uint(p)) != 0
			resident := s.procs[p].l2.lookup(line) >= 0
			if bit != resident {
				return false
			}
		}
		if d.dirty {
			if d.sharers&(1<<uint(d.owner)) == 0 {
				return false
			}
			i := s.procs[d.owner].l2.lookup(line)
			if i < 0 || s.procs[d.owner].l2.ways[i].state != modified {
				return false
			}
		}
	}
	// Every resident line must have a directory entry with its bit.
	for p := 0; p < s.cfg.Processors; p++ {
		for _, w := range s.procs[p].l2.ways {
			if w.state == invalid {
				continue
			}
			d := s.dir[w.tag]
			if d == nil || d.sharers&(1<<uint(p)) == 0 {
				return false
			}
		}
	}
	return true
}

// checkSingleWriter verifies that a modified line exists in exactly one
// cache.
func checkSingleWriter(s *System) bool {
	owners := map[int64]int{}
	for p := 0; p < s.cfg.Processors; p++ {
		for _, w := range s.procs[p].l2.ways {
			if w.state == modified {
				owners[w.tag]++
			}
		}
	}
	for _, n := range owners {
		if n > 1 {
			return false
		}
	}
	return true
}

func TestCoherenceInvariantsUnderRandomTraffic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fx := struct {
			*fixture
		}{}
		// Build a fresh system per trial.
		cfg := machineConfig(8)
		fxt := newFixture(t, 8)
		_ = cfg
		fx.fixture = fxt
		// A working set small enough to create heavy sharing.
		base := fxt.space.AllocPages(1<<14, 0)
		now := int64(0)
		for i := 0; i < 2000; i++ {
			p := rng.Intn(8)
			off := int64(rng.Intn(1 << 14))
			size := int64(1 + rng.Intn(256))
			if off+size > 1<<14 {
				size = 1<<14 - off
			}
			write := rng.Intn(3) == 0
			now += int64(rng.Intn(200))
			fxt.sys.Access(p, now, base+off, size, write)
			if rng.Intn(5) == 0 {
				fxt.sys.Prefetch(rng.Intn(8), now, base+off, size)
			}
		}
		for p := 0; p < 8; p++ {
			if !checkInclusion(fxt.sys, p) {
				t.Log("inclusion violated")
				return false
			}
		}
		return checkDirectory(fxt.sys) && checkSingleWriter(fxt.sys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func machineConfig(p int) int { return p } // keep the helper signature simple

func TestLatencyIsAlwaysPositiveAndBounded(t *testing.T) {
	fxt := newFixture(t, 16)
	base := fxt.space.AllocPages(1<<13, 4)
	rng := rand.New(rand.NewSource(99))
	// With arrivals slower than the service rate the backlog stays
	// bounded; under sustained overload the queue may grow without
	// bound by design (throughput-limited memory).
	maxLat := fxt.cfg.Lat.RemoteDirty + 30*fxt.cfg.Lat.MemOccupancy
	now := int64(0)
	for i := 0; i < 5000; i++ {
		p := rng.Intn(16)
		off := int64(rng.Intn(1 << 13))
		now += 200
		got := fxt.sys.Access(p, now, base+off, 8, rng.Intn(2) == 0)
		if got < fxt.cfg.Lat.L1Hit {
			t.Fatalf("latency %d below L1 hit", got)
		}
		if got > maxLat {
			t.Fatalf("latency %d above plausible bound %d", got, maxLat)
		}
	}
}

func TestAccessZeroSizeIsFree(t *testing.T) {
	fxt := newFixture(t, 2)
	base := fxt.space.Alloc(64, 0)
	if got := fxt.sys.Access(0, 0, base, 0, false); got != 0 {
		t.Fatalf("zero-size access cost %d", got)
	}
	if fxt.mon.Per[0].Refs != 0 {
		t.Fatal("zero-size access counted a ref")
	}
}
