package sparse

import (
	"fmt"
	"math"
)

// Factor holds numeric Cholesky factor values laid out on a symbolic
// structure: Val[p] corresponds to LRowIdx[p].
type Factor struct {
	S   *Symb
	Val []float64
}

// NewFactor allocates a factor with A's values scattered onto L's
// structure (fill entries start at zero).
func NewFactor(a *Sym, s *Symb) *Factor {
	f := &Factor{S: s, Val: make([]float64, s.LNNZ())}
	for j := 0; j < a.N; j++ {
		arows, avals := a.Col(j)
		lrows := s.LCol(j)
		base := s.LColPtr[j]
		// Both sorted: merge-scan A's column into L's.
		q := 0
		for p, r := range arows {
			for lrows[q] != r {
				q++
			}
			f.Val[base+int64(q)] = avals[p]
		}
	}
	return f
}

// Cholesky performs a serial right-looking sparse Cholesky factorization
// of a, returning the factor (reference implementation for verifying the
// parallel versions).
func Cholesky(a *Sym, s *Symb) (*Factor, error) {
	f := NewFactor(a, s)
	for k := 0; k < s.N; k++ {
		if err := f.CDiv(k); err != nil {
			return nil, err
		}
		rows := s.LCol(k)
		base := f.S.LColPtr[k]
		for p := 1; p < len(rows); p++ {
			f.CMod(int(rows[p]), k, p, base)
		}
	}
	return f, nil
}

// CDiv finalizes column k: take the square root of the diagonal and
// scale the subdiagonal.
func (f *Factor) CDiv(k int) error {
	base := f.S.LColPtr[k]
	d := f.Val[base]
	if d <= 0 {
		return fmt.Errorf("sparse: matrix not positive definite at column %d (pivot %g)", k, d)
	}
	d = math.Sqrt(d)
	f.Val[base] = d
	for p := base + 1; p < f.S.LColPtr[k+1]; p++ {
		f.Val[p] /= d
	}
	return nil
}

// CMod applies the update of source column k (already divided) to target
// column j = rows[p]: L(:,j) -= L(j,k) * L(j:,k). srcPos is the position
// of row j within column k; srcBase is LColPtr[k].
func (f *Factor) CMod(j, k, srcPos int, srcBase int64) {
	s := f.S
	mult := f.Val[srcBase+int64(srcPos)]
	krows := s.LCol(k)
	jrows := s.LCol(j)
	jbase := s.LColPtr[j]
	// Merge-scan: rows of column k at and below j are a subset of
	// column j's rows.
	q := 0
	for p := srcPos; p < len(krows); p++ {
		r := krows[p]
		for jrows[q] != r {
			q++
		}
		f.Val[jbase+int64(q)] -= mult * f.Val[srcBase+int64(p)]
	}
}

// MulVec computes y = L (Lᵀ x), used to verify LLᵀ ≈ A without forming
// the product.
func (f *Factor) MulVec(x []float64) []float64 {
	n := f.S.N
	t := make([]float64, n) // t = Lᵀ x
	for j := 0; j < n; j++ {
		rows := f.S.LCol(j)
		base := f.S.LColPtr[j]
		sum := 0.0
		for p, r := range rows {
			sum += f.Val[base+int64(p)] * x[r]
		}
		t[j] = sum
	}
	y := make([]float64, n) // y = L t
	for j := 0; j < n; j++ {
		rows := f.S.LCol(j)
		base := f.S.LColPtr[j]
		for p, r := range rows {
			y[r] += f.Val[base+int64(p)] * t[j]
		}
	}
	return y
}

// Solve solves A x = b given the factorization A = L Lᵀ, via forward and
// back substitution. b is not modified.
func (f *Factor) Solve(b []float64) []float64 {
	n := f.S.N
	x := make([]float64, n)
	copy(x, b)
	// Forward: L y = b (column-oriented).
	for j := 0; j < n; j++ {
		rows := f.S.LCol(j)
		base := f.S.LColPtr[j]
		x[j] /= f.Val[base]
		for p := 1; p < len(rows); p++ {
			x[rows[p]] -= f.Val[base+int64(p)] * x[j]
		}
	}
	// Backward: Lᵀ x = y (dot products against columns).
	for j := n - 1; j >= 0; j-- {
		rows := f.S.LCol(j)
		base := f.S.LColPtr[j]
		for p := 1; p < len(rows); p++ {
			x[j] -= f.Val[base+int64(p)] * x[rows[p]]
		}
		x[j] /= f.Val[base]
	}
	return x
}

// ResidualNorm returns ‖L Lᵀ x − A x‖∞ / ‖A x‖∞ for a fixed probe vector,
// a cheap certificate that the factorization is correct.
func ResidualNorm(a *Sym, f *Factor) float64 {
	x := make([]float64, a.N)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	want := a.MulVec(x)
	got := f.MulVec(x)
	var num, den float64
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > num {
			num = d
		}
		if d := math.Abs(want[i]); d > den {
			den = d
		}
	}
	if den == 0 {
		return num
	}
	return num / den
}

// MaxDiff returns the largest absolute difference between two factors on
// the same structure.
func MaxDiff(a, b *Factor) float64 {
	var m float64
	for i := range a.Val {
		if d := math.Abs(a.Val[i] - b.Val[i]); d > m {
			m = d
		}
	}
	return m
}
