// Package sparse is the sparse-matrix substrate for the Cholesky case
// studies: symmetric matrices in compressed-column form, workload
// generators (grid Laplacians, random SPD matrices), elimination trees,
// symbolic factorization, supernodal panel partitioning, and a serial
// numeric Cholesky used as the correctness reference.
package sparse

import (
	"fmt"
	"math/rand"
	"sort"
)

// Sym is a symmetric positive definite matrix stored as its lower
// triangle (diagonal included) in compressed sparse column form with
// sorted row indices.
type Sym struct {
	N      int
	ColPtr []int32 // length N+1
	RowIdx []int32 // row indices, sorted within each column, first is the diagonal
	Val    []float64
}

// NNZ returns the number of stored entries (lower triangle).
func (a *Sym) NNZ() int { return len(a.RowIdx) }

// Col returns the row indices and values of column j.
func (a *Sym) Col(j int) ([]int32, []float64) {
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	return a.RowIdx[lo:hi], a.Val[lo:hi]
}

// Check validates the invariants of the representation.
func (a *Sym) Check() error {
	if len(a.ColPtr) != a.N+1 {
		return fmt.Errorf("sparse: ColPtr length %d, want %d", len(a.ColPtr), a.N+1)
	}
	if int(a.ColPtr[a.N]) != len(a.RowIdx) || len(a.RowIdx) != len(a.Val) {
		return fmt.Errorf("sparse: inconsistent nnz")
	}
	for j := 0; j < a.N; j++ {
		rows, _ := a.Col(j)
		if len(rows) == 0 || int(rows[0]) != j {
			return fmt.Errorf("sparse: column %d missing diagonal", j)
		}
		for i := 1; i < len(rows); i++ {
			if rows[i] <= rows[i-1] {
				return fmt.Errorf("sparse: column %d rows not strictly increasing", j)
			}
			if int(rows[i]) >= a.N {
				return fmt.Errorf("sparse: column %d row out of range", j)
			}
		}
	}
	return nil
}

// GridLaplacian returns the 5-point Laplacian of a k×k grid with
// Dirichlet boundary (n = k², 4 on the diagonal, -1 couplings), a
// canonical SPD matrix whose factor has the supernodal panel structure
// the paper's Cholesky codes exploit.
func GridLaplacian(k int) *Sym {
	n := k * k
	a := &Sym{N: n, ColPtr: make([]int32, n+1)}
	idx := func(x, y int) int32 { return int32(x*k + y) }
	for x := 0; x < k; x++ {
		for y := 0; y < k; y++ {
			j := idx(x, y)
			a.RowIdx = append(a.RowIdx, j)
			a.Val = append(a.Val, 4)
			// Lower triangle: neighbours with a larger index.
			if y+1 < k {
				a.RowIdx = append(a.RowIdx, idx(x, y+1))
				a.Val = append(a.Val, -1)
			}
			if x+1 < k {
				a.RowIdx = append(a.RowIdx, idx(x+1, y))
				a.Val = append(a.Val, -1)
			}
			a.ColPtr[j+1] = int32(len(a.RowIdx))
		}
	}
	return a
}

// RandomSPD returns a random symmetric matrix with roughly extra
// off-diagonal entries per column, made positive definite by diagonal
// dominance. Deterministic for a given seed.
func RandomSPD(n, extra int, seed int64) *Sym {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]int32, n)
	for j := 0; j < n; j++ {
		for e := 0; e < extra; e++ {
			i := j + 1 + rng.Intn(n) // biased but fine as a workload
			if i < n {
				cols[j] = append(cols[j], int32(i))
			}
		}
	}
	a := &Sym{N: n, ColPtr: make([]int32, n+1)}
	for j := 0; j < n; j++ {
		set := map[int32]bool{}
		var rows []int32
		for _, i := range cols[j] {
			if !set[i] {
				set[i] = true
				rows = append(rows, i)
			}
		}
		sort.Slice(rows, func(x, y int) bool { return rows[x] < rows[y] })
		a.RowIdx = append(a.RowIdx, int32(j))
		a.Val = append(a.Val, float64(2*(len(rows)+n))) // strong diagonal
		for _, i := range rows {
			a.RowIdx = append(a.RowIdx, i)
			a.Val = append(a.Val, -1)
		}
		a.ColPtr[j+1] = int32(len(a.RowIdx))
	}
	return a
}

// MulVec computes y = A x using the symmetric lower-triangle storage.
func (a *Sym) MulVec(x []float64) []float64 {
	y := make([]float64, a.N)
	for j := 0; j < a.N; j++ {
		rows, vals := a.Col(j)
		for p, i := range rows {
			y[i] += vals[p] * x[j]
			if int(i) != j {
				y[j] += vals[p] * x[i]
			}
		}
	}
	return y
}
