package sparse

import (
	"testing"
	"testing/quick"
)

func buildPS(t *testing.T, k, width int, relax float64) *PanelSet {
	t.Helper()
	a := GridLaplacianND(k)
	s := Analyze(a)
	return BuildPanelSet(s, width, relax)
}

func TestPanelSetTilesColumns(t *testing.T) {
	ps := buildPS(t, 16, 8, 0.5)
	next := 0
	for i, p := range ps.Panels {
		if p.ID != i || p.Start != next || p.End <= p.Start || p.Width() > 8 {
			t.Fatalf("bad panel %+v (next %d)", p, next)
		}
		next = p.End
	}
	if next != ps.S.N {
		t.Fatalf("panels cover %d of %d", next, ps.S.N)
	}
	for j := 0; j < ps.S.N; j++ {
		p := ps.Panels[ps.Owner[j]]
		if j < p.Start || j >= p.End {
			t.Fatalf("owner of %d wrong", j)
		}
	}
}

func TestPanelSetStoresTrueStructure(t *testing.T) {
	// Every true entry of L must have a stored slot.
	ps := buildPS(t, 12, 10, 0.8)
	for j := 0; j < ps.S.N; j++ {
		p := ps.Panels[ps.Owner[j]]
		for _, r := range ps.S.LCol(j) {
			if ps.RowPos(p, j, r) < 0 {
				t.Fatalf("true entry (%d,%d) missing", r, j)
			}
		}
	}
}

func TestPanelSetColPtrConsistent(t *testing.T) {
	ps := buildPS(t, 12, 10, 0.8)
	for _, p := range ps.Panels {
		for j := p.Start; j < p.End; j++ {
			want := (p.End - j) + len(ps.Below[p.ID])
			if ps.ColLen(j) != want {
				t.Fatalf("col %d stored length %d, want %d", j, ps.ColLen(j), want)
			}
		}
	}
	if ps.StoredNNZ() < int64(ps.S.LNNZ()) {
		t.Fatal("stored layout smaller than true factor")
	}
}

func TestAmalgamationReducesPanelCount(t *testing.T) {
	a := GridLaplacianND(24)
	s := Analyze(a)
	strict := len(Panels(s, 12))
	relaxed := len(BuildPanelSet(s, 12, 0.8).Panels)
	if relaxed >= strict {
		t.Fatalf("amalgamation did not reduce panels: %d vs %d", relaxed, strict)
	}
}

func TestRelaxZeroMatchesStrictSizes(t *testing.T) {
	// With no padding budget, only zero-cost merges happen: stored size
	// must equal the sum of strict supernode sizes.
	a := GridLaplacianND(16)
	s := Analyze(a)
	ps := BuildPanelSet(s, 8, 0)
	var strictSize int64
	for _, p := range Panels(s, 8) {
		w := int64(p.Width())
		below := int64(len(s.LCol(p.Start))) - w
		strictSize += w*(w+1)/2 + w*below
	}
	if ps.StoredNNZ() != strictSize {
		t.Fatalf("relax=0 stored %d, strict %d", ps.StoredNNZ(), strictSize)
	}
}

func TestDepsMatchBelowOwners(t *testing.T) {
	ps := buildPS(t, 16, 8, 0.5)
	dsts, nupd := ps.Deps()
	var incoming []int32 = make([]int32, len(ps.Panels))
	for src, ds := range dsts {
		prev := int32(-1)
		for _, d := range ds {
			if d <= prev {
				t.Fatalf("dsts[%d] not strictly increasing: %v", src, ds)
			}
			prev = d
			if int(d) <= src {
				t.Fatalf("dependency flows backwards %d->%d", src, d)
			}
			incoming[d]++
		}
	}
	for i := range incoming {
		if incoming[i] != nupd[i] {
			t.Fatalf("panel %d nupd mismatch", i)
		}
	}
}

func TestRowPosProperties(t *testing.T) {
	ps := buildPS(t, 10, 8, 0.8)
	f := func(colRaw, rowRaw uint16) bool {
		j := int(colRaw) % ps.S.N
		p := ps.Panels[ps.Owner[j]]
		// In-range rows resolve to dense positions.
		r := int32(j + int(rowRaw)%(p.End-j))
		if ps.RowPos(p, j, r) != int(r)-j {
			return false
		}
		// Every Below row resolves beyond the dense part.
		below := ps.Below[p.ID]
		if len(below) > 0 {
			b := below[int(rowRaw)%len(below)]
			want := p.End - j + int(rowRaw)%len(below)
			if ps.RowPos(p, j, b) != want {
				return false
			}
		}
		// Rows above the column never resolve.
		if j > 0 && ps.RowPos(p, j, int32(j-1)) != -1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
