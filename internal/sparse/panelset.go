package sparse

import "sort"

// PanelSet is an amalgamated supernodal partition of the factor: each
// panel stores its columns as a dense trapezoid — column j holds rows
// {j .. End-1} followed by the panel's shared Below rows. Small panels
// are merged (relaxed amalgamation) by padding with explicit zeros;
// padded entries provably remain zero throughout the factorization, so
// the numeric result is unchanged while tasks become coarse enough to
// amortize scheduling costs (exactly what supernodal codes do).
type PanelSet struct {
	S      *Symb
	Panels []Panel
	Below  [][]int32 // per panel: stored rows >= End, sorted
	Owner  []int32   // column -> panel id
	ColPtr []int64   // stored-layout offset of each column, length N+1
}

// BuildPanelSet computes strict supernodes and then greedily merges
// adjacent panels while the zero padding introduced stays below
// relaxFill of the merged panel's entries (and the width cap holds).
func BuildPanelSet(s *Symb, maxWidth int, relaxFill float64) *PanelSet {
	if maxWidth <= 0 {
		maxWidth = 16
	}
	strict := Panels(s, maxWidth)

	type work struct {
		start, end int
		below      []int32
		size       int64
	}
	belowOf := func(p Panel) []int32 {
		rows := s.LCol(p.Start)
		i := sort.Search(len(rows), func(i int) bool { return int(rows[i]) >= p.End })
		out := make([]int32, len(rows)-i)
		copy(out, rows[i:])
		return out
	}
	sizeOf := func(start, end int, below []int32) int64 {
		w := int64(end - start)
		return w*(w+1)/2 + w*int64(len(below))
	}

	var merged []work
	for _, p := range strict {
		b := belowOf(p)
		cur := work{p.Start, p.End, b, sizeOf(p.Start, p.End, b)}
		for len(merged) > 0 {
			prev := merged[len(merged)-1]
			if cur.end-prev.start > maxWidth {
				break
			}
			// Structure of the merged panel: previous panel's below rows
			// outside the absorbed column range, unioned with ours.
			nb := unionBeyond(prev.below, cur.below, cur.end)
			truth := prev.size + cur.size
			ns := sizeOf(prev.start, cur.end, nb)
			if float64(ns-truth) > relaxFill*float64(truth) {
				break
			}
			cur = work{prev.start, cur.end, nb, ns}
			merged = merged[:len(merged)-1]
		}
		merged = append(merged, cur)
	}

	ps := &PanelSet{S: s, Owner: make([]int32, s.N), ColPtr: make([]int64, s.N+1)}
	for id, w := range merged {
		ps.Panels = append(ps.Panels, Panel{ID: id, Start: w.start, End: w.end})
		ps.Below = append(ps.Below, w.below)
		for j := w.start; j < w.end; j++ {
			ps.Owner[j] = int32(id)
			ps.ColPtr[j+1] = ps.ColPtr[j] + int64(w.end-j+len(w.below))
		}
	}
	return ps
}

// unionBeyond returns sorted union of a's entries >= cut with all of b.
func unionBeyond(a, b []int32, cut int) []int32 {
	i := sort.Search(len(a), func(i int) bool { return int(a[i]) >= cut })
	a = a[i:]
	out := make([]int32, 0, len(a)+len(b))
	x, y := 0, 0
	for x < len(a) || y < len(b) {
		switch {
		case y == len(b) || (x < len(a) && a[x] < b[y]):
			out = append(out, a[x])
			x++
		case x == len(a) || b[y] < a[x]:
			out = append(out, b[y])
			y++
		default:
			out = append(out, a[x])
			x++
			y++
		}
	}
	return out
}

// StoredNNZ returns the total stored entries (true entries plus padding).
func (ps *PanelSet) StoredNNZ() int64 { return ps.ColPtr[ps.S.N] }

// ColLen returns the stored length of column j.
func (ps *PanelSet) ColLen(j int) int { return int(ps.ColPtr[j+1] - ps.ColPtr[j]) }

// PanelOff returns the stored-layout offset of panel p's first entry.
func (ps *PanelSet) PanelOff(p Panel) int64 { return ps.ColPtr[p.Start] }

// RowPos returns the position of row r within stored column j of panel p,
// or -1 if the row is not stored (possible only across panels).
func (ps *PanelSet) RowPos(p Panel, j int, r int32) int {
	if int(r) < p.End {
		if int(r) < j {
			return -1
		}
		return int(r) - j
	}
	below := ps.Below[p.ID]
	i := sort.Search(len(below), func(i int) bool { return below[i] >= r })
	if i == len(below) || below[i] != r {
		return -1
	}
	return p.End - j + i
}

// Deps returns, per source panel, the sorted destination panels its Below
// rows land in, plus the per-destination incoming-update count. These are
// the stored-structure dependencies the parallel factorization follows.
func (ps *PanelSet) Deps() (dsts [][]int32, nupd []int32) {
	n := len(ps.Panels)
	dsts = make([][]int32, n)
	nupd = make([]int32, n)
	for id := range ps.Panels {
		last := int32(-1)
		for _, r := range ps.Below[id] {
			d := ps.Owner[r]
			if d != last {
				dsts[id] = append(dsts[id], d)
				nupd[d]++
				last = d
			}
		}
	}
	return dsts, nupd
}
