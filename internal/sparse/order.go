package sparse

// Orderings. The paper's Cholesky codes (Rothberg & Gupta) factor
// matrices whose elimination trees are bushy; a nested dissection
// ordering of the grid Laplacian reproduces that shape (the natural
// ordering yields an almost sequential chain with no tree parallelism).

// NestedDissectionGrid returns a permutation of the k×k grid in nested
// dissection order: perm[new] = old vertex index. Each recursion splits
// the region with a one-cell separator ordered after both halves.
func NestedDissectionGrid(k int) []int32 {
	perm := make([]int32, 0, k*k)
	var rec func(x0, x1, y0, y1 int)
	rec = func(x0, x1, y0, y1 int) {
		w, h := x1-x0, y1-y0
		if w <= 0 || h <= 0 {
			return
		}
		if w <= 2 && h <= 2 {
			for x := x0; x < x1; x++ {
				for y := y0; y < y1; y++ {
					perm = append(perm, int32(x*k+y))
				}
			}
			return
		}
		if w >= h {
			mid := (x0 + x1) / 2
			rec(x0, mid, y0, y1)
			rec(mid+1, x1, y0, y1)
			for y := y0; y < y1; y++ { // separator column, ordered last
				perm = append(perm, int32(mid*k+y))
			}
			return
		}
		mid := (y0 + y1) / 2
		rec(x0, x1, y0, mid)
		rec(x0, x1, mid+1, y1)
		for x := x0; x < x1; x++ {
			perm = append(perm, int32(x*k+mid))
		}
	}
	rec(0, k, 0, k)
	return perm
}

// Permute returns P A Pᵀ for perm[new] = old, keeping the
// lower-triangular sorted CSC invariants.
func Permute(a *Sym, perm []int32) *Sym {
	n := a.N
	inv := make([]int32, n) // inv[old] = new
	for newI, old := range perm {
		inv[old] = int32(newI)
	}
	// Gather entries per new column.
	type entry struct {
		row int32
		val float64
	}
	cols := make([][]entry, n)
	for j := 0; j < n; j++ {
		rows, vals := a.Col(j)
		for p, i := range rows {
			ni, nj := inv[i], inv[j]
			if ni < nj {
				ni, nj = nj, ni // keep lower triangle
			}
			cols[nj] = append(cols[nj], entry{ni, vals[p]})
		}
	}
	out := &Sym{N: n, ColPtr: make([]int32, n+1)}
	for j := 0; j < n; j++ {
		es := cols[j]
		// Insertion sort; columns are short.
		for i := 1; i < len(es); i++ {
			for q := i; q > 0 && es[q].row < es[q-1].row; q-- {
				es[q], es[q-1] = es[q-1], es[q]
			}
		}
		for _, e := range es {
			out.RowIdx = append(out.RowIdx, e.row)
			out.Val = append(out.Val, e.val)
		}
		out.ColPtr[j+1] = int32(len(out.RowIdx))
	}
	return out
}

// GridLaplacianND returns the k×k grid Laplacian in nested dissection
// order — the standard Panel/Block Cholesky workload.
func GridLaplacianND(k int) *Sym {
	return Permute(GridLaplacian(k), NestedDissectionGrid(k))
}
