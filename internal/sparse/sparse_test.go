package sparse

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGridLaplacianShape(t *testing.T) {
	a := GridLaplacian(4)
	if a.N != 16 {
		t.Fatalf("N = %d", a.N)
	}
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	// 5-point stencil: nnz(lower) = n + horizontal + vertical couplings.
	want := 16 + 4*3 + 4*3
	if a.NNZ() != want {
		t.Fatalf("nnz = %d, want %d", a.NNZ(), want)
	}
}

func TestRandomSPDValid(t *testing.T) {
	f := func(seed int64) bool {
		a := RandomSPD(50, 3, seed)
		return a.Check() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEliminationTreeChain(t *testing.T) {
	// Tridiagonal matrix: etree is a chain.
	k := 6
	a := &Sym{N: k, ColPtr: make([]int32, k+1)}
	for j := 0; j < k; j++ {
		a.RowIdx = append(a.RowIdx, int32(j))
		a.Val = append(a.Val, 4)
		if j+1 < k {
			a.RowIdx = append(a.RowIdx, int32(j+1))
			a.Val = append(a.Val, -1)
		}
		a.ColPtr[j+1] = int32(len(a.RowIdx))
	}
	parent := EliminationTree(a)
	for j := 0; j < k-1; j++ {
		if parent[j] != int32(j+1) {
			t.Fatalf("parent[%d] = %d, want %d", j, parent[j], j+1)
		}
	}
	if parent[k-1] != -1 {
		t.Fatalf("root parent = %d", parent[k-1])
	}
}

func TestAnalyzeContainsA(t *testing.T) {
	// L's structure must contain A's lower structure, and every column's
	// head must be the diagonal.
	a := GridLaplacian(6)
	s := Analyze(a)
	for j := 0; j < a.N; j++ {
		lrows := s.LCol(j)
		if int(lrows[0]) != j {
			t.Fatalf("column %d head is %d", j, lrows[0])
		}
		set := map[int32]bool{}
		for _, r := range lrows {
			set[r] = true
		}
		arows, _ := a.Col(j)
		for _, r := range arows {
			if !set[r] {
				t.Fatalf("A entry (%d,%d) missing from L structure", r, j)
			}
		}
	}
	if s.LNNZ() < a.NNZ() {
		t.Fatal("factor has fewer nonzeros than A")
	}
}

func TestAnalyzeStructureClosure(t *testing.T) {
	// Fundamental property: if L[i][k] != 0 with i > k, then
	// struct(L(:,k)) below i is contained in struct(L(:,i)).
	a := GridLaplacian(5)
	s := Analyze(a)
	for k := 0; k < a.N; k++ {
		rows := s.LCol(k)
		for p := 1; p < len(rows); p++ {
			i := int(rows[p])
			set := map[int32]bool{}
			for _, r := range s.LCol(i) {
				set[r] = true
			}
			for _, r := range rows[p:] {
				if !set[r] {
					t.Fatalf("closure violated: L[%d][%d]!=0 but row %d of col %d not in col %d", i, k, r, k, i)
				}
			}
		}
	}
}

func TestCholeskyFactorsGrid(t *testing.T) {
	a := GridLaplacian(8)
	s := Analyze(a)
	f, err := Cholesky(a, s)
	if err != nil {
		t.Fatal(err)
	}
	if r := ResidualNorm(a, f); r > 1e-10 {
		t.Fatalf("residual = %g", r)
	}
}

func TestCholeskyFactorsRandom(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := RandomSPD(80, 4, seed)
		s := Analyze(a)
		f, err := Cholesky(a, s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r := ResidualNorm(a, f); r > 1e-9 {
			t.Fatalf("seed %d: residual = %g", seed, r)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := GridLaplacian(3)
	a.Val[0] = -4 // break positive definiteness
	s := Analyze(a)
	if _, err := Cholesky(a, s); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestPanelsPartition(t *testing.T) {
	a := GridLaplacian(8)
	s := Analyze(a)
	panels := Panels(s, 8)
	// Panels must tile [0, N) contiguously.
	next := 0
	for i, p := range panels {
		if p.ID != i || p.Start != next || p.End <= p.Start {
			t.Fatalf("bad panel %+v at %d (next=%d)", p, i, next)
		}
		if p.Width() > 8 {
			t.Fatalf("panel wider than cap: %+v", p)
		}
		next = p.End
	}
	if next != a.N {
		t.Fatalf("panels cover %d of %d columns", next, a.N)
	}
	// A grid Laplacian factor has proper supernodes: some panel should
	// have width > 1.
	multi := false
	for _, p := range panels {
		if p.Width() > 1 {
			multi = true
		}
	}
	if !multi {
		t.Fatal("no multi-column panels found; supernode detection broken")
	}
}

func TestPanelsStructureIdenticalWithin(t *testing.T) {
	a := GridLaplacian(7)
	s := Analyze(a)
	for _, p := range Panels(s, 8) {
		for j := p.Start; j < p.End-1; j++ {
			if !mergeable(s, j, j+1) {
				t.Fatalf("panel %d columns %d,%d not mergeable", p.ID, j, j+1)
			}
		}
	}
}

func TestPanelDeps(t *testing.T) {
	a := GridLaplacian(6)
	s := Analyze(a)
	panels := Panels(s, 4)
	dsts, nupd := PanelDeps(s, panels)
	// Count incoming edges two ways and cross-check.
	var total int32
	incoming := make([]int32, len(panels))
	for src, ds := range dsts {
		for _, d := range ds {
			if int(d) == src {
				t.Fatalf("self dependency on panel %d", src)
			}
			if d < int32(src) {
				t.Fatalf("update flows backwards: %d -> %d", src, d)
			}
			incoming[d]++
			total++
		}
	}
	for i := range incoming {
		if incoming[i] != nupd[i] {
			t.Fatalf("panel %d: incoming %d != nupdates %d", i, incoming[i], nupd[i])
		}
	}
	// First panel needs no updates; at least one panel does.
	if nupd[0] != 0 {
		t.Fatalf("panel 0 has %d updates", nupd[0])
	}
	if total == 0 {
		t.Fatal("no inter-panel dependencies at all")
	}
}

func TestSolveRecoversKnownSolution(t *testing.T) {
	a := GridLaplacianND(10)
	s := Analyze(a)
	f, err := Cholesky(a, s)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, a.N)
	for i := range want {
		want[i] = float64(i%9) - 4
	}
	b := a.MulVec(want)
	got := f.Solve(b)
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Solve must not modify b.
	b2 := a.MulVec(want)
	for i := range b {
		if b[i] != b2[i] {
			t.Fatal("Solve modified its input")
		}
	}
}

func TestFactorValuesFinite(t *testing.T) {
	a := GridLaplacian(10)
	s := Analyze(a)
	f, err := Cholesky(a, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f.Val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite factor value")
		}
	}
}
