package sparse

import "sort"

// Symb is the result of symbolic factorization: the elimination tree and
// the structure of the Cholesky factor L (lower triangle, diagonal
// included, rows sorted within each column).
type Symb struct {
	N       int
	Parent  []int32 // elimination tree (-1 at roots)
	LColPtr []int64
	LRowIdx []int32
}

// LNNZ returns the number of nonzeros in L.
func (s *Symb) LNNZ() int { return len(s.LRowIdx) }

// LCol returns the row structure of column j of L.
func (s *Symb) LCol(j int) []int32 {
	return s.LRowIdx[s.LColPtr[j]:s.LColPtr[j+1]]
}

// EliminationTree computes the etree of a symmetric matrix given its
// lower-triangle CSC form (Liu's algorithm with path compression).
func EliminationTree(a *Sym) []int32 {
	n := a.N
	// Transpose the lower triangle so column col of the upper triangle
	// (its rows k < col) is available in one slice: Liu's algorithm must
	// process upper columns strictly in increasing order.
	uppers := make([][]int32, n)
	for j := 0; j < n; j++ {
		rows, _ := a.Col(j)
		for _, i := range rows[1:] { // skip diagonal
			uppers[i] = append(uppers[i], int32(j))
		}
	}
	parent := make([]int32, n)
	ancestor := make([]int32, n)
	for j := range parent {
		parent[j] = -1
		ancestor[j] = -1
	}
	for col := 0; col < n; col++ {
		for _, k := range uppers[col] {
			i := k
			for i != -1 && int(i) < col {
				next := ancestor[i]
				ancestor[i] = int32(col)
				if next == -1 {
					parent[i] = int32(col)
				}
				i = next
			}
		}
	}
	return parent
}

// Analyze performs symbolic factorization: the structure of column j of L
// is the structure of A(j:, j) merged with the structures (minus their
// head) of j's children in the elimination tree.
func Analyze(a *Sym) *Symb {
	n := a.N
	parent := EliminationTree(a)
	children := make([][]int32, n)
	for j := 0; j < n; j++ {
		if p := parent[j]; p != -1 {
			children[p] = append(children[p], int32(j))
		}
	}
	s := &Symb{N: n, Parent: parent, LColPtr: make([]int64, n+1)}
	cols := make([][]int32, n)
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}
	for j := 0; j < n; j++ {
		var rows []int32
		add := func(r int32) {
			if mark[r] != int32(j) {
				mark[r] = int32(j)
				rows = append(rows, r)
			}
		}
		arows, _ := a.Col(j)
		for _, r := range arows {
			add(r)
		}
		for _, c := range children[j] {
			for _, r := range cols[c][1:] { // drop the child's diagonal
				if int(r) >= j {
					add(r)
				}
			}
		}
		sort.Slice(rows, func(x, y int) bool { return rows[x] < rows[y] })
		cols[j] = rows
	}
	for j := 0; j < n; j++ {
		s.LColPtr[j+1] = s.LColPtr[j] + int64(len(cols[j]))
	}
	s.LRowIdx = make([]int32, s.LColPtr[n])
	for j := 0; j < n; j++ {
		copy(s.LRowIdx[s.LColPtr[j]:], cols[j])
	}
	return s
}

// Panel is a group of consecutive columns of L with nearly identical
// structure (a supernode, possibly split to cap the width), the unit of
// work and data distribution in Panel Cholesky.
type Panel struct {
	ID         int
	Start, End int // columns [Start, End)
}

// Width returns the number of columns in the panel.
func (p Panel) Width() int { return p.End - p.Start }

// Panels partitions the columns of L into supernodal panels: column j+1
// joins j's panel when parent(j) == j+1 and struct(L(:,j)) is
// struct(L(:,j+1)) plus the diagonal, capped at maxWidth columns.
func Panels(s *Symb, maxWidth int) []Panel {
	if maxWidth <= 0 {
		maxWidth = 8
	}
	var panels []Panel
	j := 0
	for j < s.N {
		end := j + 1
		for end < s.N && end-j < maxWidth &&
			s.Parent[end-1] == int32(end) &&
			mergeable(s, end-1, end) {
			end++
		}
		panels = append(panels, Panel{ID: len(panels), Start: j, End: end})
		j = end
	}
	return panels
}

// mergeable reports whether column k+1's structure equals column k's
// minus k's diagonal entry.
func mergeable(s *Symb, k, k1 int) bool {
	a := s.LCol(k)
	b := s.LCol(k1)
	if len(a) != len(b)+1 {
		return false
	}
	for i := range b {
		if a[i+1] != b[i] {
			return false
		}
	}
	return true
}

// PanelOf returns a column→panel lookup table.
func PanelOf(panels []Panel, n int) []int32 {
	owner := make([]int32, n)
	for _, p := range panels {
		for j := p.Start; j < p.End; j++ {
			owner[j] = int32(p.ID)
		}
	}
	return owner
}

// PanelDeps computes, for each destination panel, the set of source
// panels that update it: source S updates destination D≠S when some
// column of S has a nonzero row landing in D's column range. The result
// is indexed by source panel (dsts[S] = sorted list of D) together with
// the per-destination update count.
func PanelDeps(s *Symb, panels []Panel) (dsts [][]int32, nupdates []int32) {
	owner := PanelOf(panels, s.N)
	dsts = make([][]int32, len(panels))
	nupdates = make([]int32, len(panels))
	seen := make([]int32, len(panels))
	for i := range seen {
		seen[i] = -1
	}
	for _, p := range panels {
		for j := p.Start; j < p.End; j++ {
			for _, r := range s.LCol(j)[1:] {
				d := owner[r]
				if int(d) == p.ID || seen[d] == int32(p.ID) {
					continue
				}
				seen[d] = int32(p.ID)
				dsts[p.ID] = append(dsts[p.ID], d)
				nupdates[d]++
			}
		}
	}
	for i := range dsts {
		sort.Slice(dsts[i], func(x, y int) bool { return dsts[i][x] < dsts[i][y] })
	}
	return dsts, nupdates
}
