package sparse

import (
	"testing"
	"testing/quick"
)

func TestNestedDissectionIsPermutation(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 7, 16, 25} {
		perm := NestedDissectionGrid(k)
		if len(perm) != k*k {
			t.Fatalf("k=%d: perm length %d", k, len(perm))
		}
		seen := make([]bool, k*k)
		for _, v := range perm {
			if v < 0 || int(v) >= k*k || seen[v] {
				t.Fatalf("k=%d: invalid/duplicate %d", k, v)
			}
			seen[v] = true
		}
	}
}

func TestPermuteRoundTripSpectrum(t *testing.T) {
	// P A Pᵀ must represent the same operator: (PAPᵀ)(Px) = P(Ax).
	a := GridLaplacian(5)
	perm := NestedDissectionGrid(5)
	ap := Permute(a, perm)
	if err := ap.Check(); err != nil {
		t.Fatal(err)
	}
	if ap.NNZ() != a.NNZ() {
		t.Fatalf("permutation changed nnz: %d vs %d", ap.NNZ(), a.NNZ())
	}
	x := make([]float64, a.N)
	for i := range x {
		x[i] = float64(i*i%13) - 3
	}
	px := make([]float64, a.N)
	for newI, old := range perm {
		px[newI] = x[old]
	}
	ax := a.MulVec(x)
	apx := ap.MulVec(px)
	for newI, old := range perm {
		if d := apx[newI] - ax[old]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("operator changed by permutation at %d: %g", newI, d)
		}
	}
}

func TestNDReducesEtreeHeight(t *testing.T) {
	// The point of nested dissection: the elimination tree gets bushy.
	k := 16
	nat := Analyze(GridLaplacian(k))
	nd := Analyze(GridLaplacianND(k))
	height := func(parent []int32) int {
		depth := make([]int, len(parent))
		max := 0
		// Parents always have larger indices, so a forward pass works.
		for j := len(parent) - 1; j >= 0; j-- {
			d := 1
			for p := parent[j]; p != -1; p = parent[p] {
				d++
			}
			depth[j] = d
			if d > max {
				max = d
			}
		}
		return max
	}
	hNat, hND := height(nat.Parent), height(nd.Parent)
	if hND*2 > hNat {
		t.Fatalf("ND etree height %d not much smaller than natural %d", hND, hNat)
	}
}

func TestNDFactorizes(t *testing.T) {
	a := GridLaplacianND(12)
	s := Analyze(a)
	f, err := Cholesky(a, s)
	if err != nil {
		t.Fatal(err)
	}
	if r := ResidualNorm(a, f); r > 1e-10 {
		t.Fatalf("residual = %g", r)
	}
}

func TestPermutePreservesSPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := RandomSPD(40, 3, seed)
		perm := NestedDissectionGrid(6) // any permutation of 36 < 40? sizes must match
		_ = perm
		// Use an involution permutation of the right size instead.
		p := make([]int32, a.N)
		for i := range p {
			p[i] = int32(a.N - 1 - i)
		}
		ap := Permute(a, p)
		if ap.Check() != nil {
			return false
		}
		s := Analyze(ap)
		_, err := Cholesky(ap, s)
		return err == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
