// Package fault defines deterministic fault-injection plans for the
// simulated machine. A Plan is an explicit list of fault events —
// processor slowdowns, stalls, permanent failures, memory-module
// degradation, and injected task panics — that the runtime applies at
// fixed simulated times. Because every event is pinned to simulated
// time (not wall clock) and plans carry no hidden randomness, a run
// with the same seed and the same plan is exactly reproducible: fault
// experiments replay cycle for cycle.
package fault

import (
	"fmt"
	"math/rand"
)

// Kind classifies one fault event.
type Kind uint8

const (
	// Slowdown multiplies every cycle charged on a processor by Factor
	// for Cycles simulated cycles (0 = for the rest of the run) — a
	// straggler.
	Slowdown Kind = iota
	// Stall freezes a processor for Cycles cycles at time At (a long
	// non-fatal hiccup: thermal throttle, interrupt storm).
	Stall
	// Fail retires a processor permanently at time At. Its queued work
	// is redistributed to the surviving servers.
	Fail
	// MemDegrade multiplies a cluster memory module's service latency
	// and occupancy by Factor from time At onward.
	MemDegrade
	// TaskPanic makes the Nth task spawned with name Task panic when it
	// first runs, exercising the structured failure path.
	TaskPanic
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Slowdown:
		return "slowdown"
	case Stall:
		return "stall"
	case Fail:
		return "fail"
	case MemDegrade:
		return "memdegrade"
	case TaskPanic:
		return "taskpanic"
	}
	return "?"
}

// Event is one scheduled fault.
type Event struct {
	Kind    Kind
	At      int64  // simulated cycle the fault strikes (not used by TaskPanic)
	Proc    int    // target processor (Slowdown, Stall, Fail)
	Cluster int    // target memory module (MemDegrade)
	Factor  int64  // cost multiplier >= 2 (Slowdown, MemDegrade)
	Cycles  int64  // stall length, or slowdown duration (0 = permanent)
	Task    string // task name (TaskPanic)
	Nth     int    // which spawn with that name panics, 0-based (TaskPanic)
}

// String renders one event.
func (ev Event) String() string {
	switch ev.Kind {
	case Slowdown:
		if ev.Cycles > 0 {
			return fmt.Sprintf("slowdown P%d x%d @%d for %d", ev.Proc, ev.Factor, ev.At, ev.Cycles)
		}
		return fmt.Sprintf("slowdown P%d x%d @%d", ev.Proc, ev.Factor, ev.At)
	case Stall:
		return fmt.Sprintf("stall P%d for %d @%d", ev.Proc, ev.Cycles, ev.At)
	case Fail:
		return fmt.Sprintf("fail P%d @%d", ev.Proc, ev.At)
	case MemDegrade:
		return fmt.Sprintf("memdegrade C%d x%d @%d", ev.Cluster, ev.Factor, ev.At)
	case TaskPanic:
		return fmt.Sprintf("panic task %q #%d", ev.Task, ev.Nth)
	}
	return "?"
}

// Plan is an ordered list of fault events. The zero value is an empty
// plan; the builder methods append and return the plan for chaining.
type Plan struct {
	Events []Event
}

// Slow schedules a slowdown of proc by factor at time at, lasting
// duration cycles (0 = rest of run).
func (p *Plan) Slow(proc int, at, factor, duration int64) *Plan {
	p.Events = append(p.Events, Event{Kind: Slowdown, Proc: proc, At: at, Factor: factor, Cycles: duration})
	return p
}

// Stall schedules a stall of proc for cycles at time at.
func (p *Plan) Stall(proc int, at, cycles int64) *Plan {
	p.Events = append(p.Events, Event{Kind: Stall, Proc: proc, At: at, Cycles: cycles})
	return p
}

// Fail schedules a permanent failure of proc at time at.
func (p *Plan) Fail(proc int, at int64) *Plan {
	p.Events = append(p.Events, Event{Kind: Fail, Proc: proc, At: at})
	return p
}

// DegradeMemory schedules degradation of cluster's memory module by
// factor from time at onward.
func (p *Plan) DegradeMemory(cluster int, at, factor int64) *Plan {
	p.Events = append(p.Events, Event{Kind: MemDegrade, Cluster: cluster, At: at, Factor: factor})
	return p
}

// PanicTask makes the nth task spawned with the given name panic.
func (p *Plan) PanicTask(name string, nth int) *Plan {
	p.Events = append(p.Events, Event{Kind: TaskPanic, Task: name, Nth: nth})
	return p
}

// Validate checks the plan against a machine with procs processors and
// clusters memory modules. At least one processor must survive all Fail
// events, so the program can always make progress.
func (p *Plan) Validate(procs, clusters int) error {
	failed := make(map[int]bool)
	for i, ev := range p.Events {
		if ev.At < 0 {
			return fmt.Errorf("fault: event %d (%s): negative time %d", i, ev.Kind, ev.At)
		}
		switch ev.Kind {
		case Slowdown:
			if ev.Proc < 0 || ev.Proc >= procs {
				return fmt.Errorf("fault: event %d: processor %d out of range [0,%d)", i, ev.Proc, procs)
			}
			if ev.Factor < 2 {
				return fmt.Errorf("fault: event %d: slowdown factor %d must be >= 2", i, ev.Factor)
			}
			if ev.Cycles < 0 {
				return fmt.Errorf("fault: event %d: negative slowdown duration %d", i, ev.Cycles)
			}
		case Stall:
			if ev.Proc < 0 || ev.Proc >= procs {
				return fmt.Errorf("fault: event %d: processor %d out of range [0,%d)", i, ev.Proc, procs)
			}
			if ev.Cycles <= 0 {
				return fmt.Errorf("fault: event %d: stall length %d must be positive", i, ev.Cycles)
			}
		case Fail:
			if ev.Proc < 0 || ev.Proc >= procs {
				return fmt.Errorf("fault: event %d: processor %d out of range [0,%d)", i, ev.Proc, procs)
			}
			failed[ev.Proc] = true
		case MemDegrade:
			if ev.Cluster < 0 || ev.Cluster >= clusters {
				return fmt.Errorf("fault: event %d: cluster %d out of range [0,%d)", i, ev.Cluster, clusters)
			}
			if ev.Factor < 2 {
				return fmt.Errorf("fault: event %d: degrade factor %d must be >= 2", i, ev.Factor)
			}
		case TaskPanic:
			if ev.Task == "" {
				return fmt.Errorf("fault: event %d: empty task name", i)
			}
			if ev.Nth < 0 {
				return fmt.Errorf("fault: event %d: negative task index %d", i, ev.Nth)
			}
		default:
			return fmt.Errorf("fault: event %d: unknown kind %d", i, ev.Kind)
		}
	}
	if len(failed) >= procs {
		return fmt.Errorf("fault: plan fails all %d processors; at least one must survive", procs)
	}
	return nil
}

// Random builds a reproducible plan of n non-panic fault events
// (slowdowns, stalls, memory degradation, and at most procs-1 permanent
// failures) for stress testing. The same seed always yields the same
// plan.
func Random(seed int64, procs, clusters, n int) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{}
	fails := 0
	for i := 0; i < n; i++ {
		at := int64(rng.Intn(2_000_000))
		proc := rng.Intn(procs)
		switch rng.Intn(4) {
		case 0:
			p.Slow(proc, at, int64(2+rng.Intn(7)), int64(rng.Intn(500_000)))
		case 1:
			p.Stall(proc, at, int64(1+rng.Intn(200_000)))
		case 2:
			if clusters > 0 {
				p.DegradeMemory(rng.Intn(clusters), at, int64(2+rng.Intn(4)))
			}
		case 3:
			if fails < procs-1 {
				fails++
				p.Fail(proc, at)
			} else {
				p.Stall(proc, at, int64(1+rng.Intn(100_000)))
			}
		}
	}
	return p
}
