// Package fault defines deterministic fault-injection plans. A Plan is
// an explicit list of fault events — processor slowdowns, stalls,
// permanent failures, memory-module degradation, and injected task
// panics — that the runtime applies at fixed times. On the simulator
// every event is pinned to simulated time (not wall clock) and plans
// carry no hidden randomness, so a run with the same seed and the same
// plan is exactly reproducible: fault experiments replay cycle for
// cycle. The native backend reads the same At/Cycles quantities as
// wall-clock nanoseconds: the plan's events still fire
// deterministically, but the goroutine interleaving they perturb does
// not replay.
package fault

import (
	"fmt"
	"math"
	"math/rand"
)

// Kind classifies one fault event.
type Kind uint8

const (
	// Slowdown multiplies every cycle charged on a processor by Factor
	// for Cycles simulated cycles (0 = for the rest of the run) — a
	// straggler.
	Slowdown Kind = iota
	// Stall freezes a processor for Cycles cycles at time At (a long
	// non-fatal hiccup: thermal throttle, interrupt storm).
	Stall
	// Fail retires a processor permanently at time At. Its queued work
	// is redistributed to the surviving servers.
	Fail
	// MemDegrade multiplies a cluster memory module's service latency
	// and occupancy by Factor from time At onward.
	MemDegrade
	// TaskPanic makes the Nth task spawned with name Task panic when it
	// first runs, exercising the structured failure path.
	TaskPanic
	// TaskFail makes one launch attempt of the Nth task spawned with
	// name Task abort with a transient error before the task body runs.
	// Repeating the event fails successive launch attempts of the same
	// spawn, so a plan can outlast (or exhaust) a retry budget.
	TaskFail
	// Flaky opens a window [At, At+Cycles) on a processor during which
	// every task launch attempted there aborts transiently. Launches are
	// retried elsewhere under a retry policy; without one the first
	// aborted launch fails the run.
	Flaky
	// AddWorker grows the worker pool by one at time At (native backend
	// only; the run must have spare capacity — Config.MaxProcessors
	// above the initial pool size).
	AddWorker
	// Drain retires a processor at time At as a planned drain rather
	// than a kill: the victim stops accepting inserts, finishes its
	// running task, and re-homes its queued work affinity-preserving
	// (native backend only).
	Drain
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Slowdown:
		return "slowdown"
	case Stall:
		return "stall"
	case Fail:
		return "fail"
	case MemDegrade:
		return "memdegrade"
	case TaskPanic:
		return "taskpanic"
	case TaskFail:
		return "taskfail"
	case Flaky:
		return "flaky"
	case AddWorker:
		return "addworker"
	case Drain:
		return "drain"
	}
	return "?"
}

// Event is one scheduled fault.
type Event struct {
	Kind    Kind
	At      int64  // simulated cycle the fault strikes (not used by TaskPanic)
	Proc    int    // target processor (Slowdown, Stall, Fail)
	Cluster int    // target memory module (MemDegrade)
	Factor  int64  // cost multiplier >= 2 (Slowdown, MemDegrade)
	Cycles  int64  // stall length, or slowdown duration (0 = permanent)
	Task    string // task name (TaskPanic)
	Nth     int    // which spawn with that name panics, 0-based (TaskPanic)
}

// String renders one event.
func (ev Event) String() string {
	switch ev.Kind {
	case Slowdown:
		if ev.Cycles > 0 {
			return fmt.Sprintf("slowdown P%d x%d @%d for %d", ev.Proc, ev.Factor, ev.At, ev.Cycles)
		}
		return fmt.Sprintf("slowdown P%d x%d @%d", ev.Proc, ev.Factor, ev.At)
	case Stall:
		return fmt.Sprintf("stall P%d for %d @%d", ev.Proc, ev.Cycles, ev.At)
	case Fail:
		return fmt.Sprintf("fail P%d @%d", ev.Proc, ev.At)
	case MemDegrade:
		return fmt.Sprintf("memdegrade C%d x%d @%d", ev.Cluster, ev.Factor, ev.At)
	case TaskPanic:
		return fmt.Sprintf("panic task %q #%d", ev.Task, ev.Nth)
	case TaskFail:
		return fmt.Sprintf("transient-fail task %q #%d", ev.Task, ev.Nth)
	case Flaky:
		return fmt.Sprintf("flaky P%d @%d for %d", ev.Proc, ev.At, ev.Cycles)
	case AddWorker:
		return fmt.Sprintf("addworker @%d", ev.At)
	case Drain:
		return fmt.Sprintf("drain P%d @%d", ev.Proc, ev.At)
	}
	return "?"
}

// Plan is an ordered list of fault events. The zero value is an empty
// plan; the builder methods append and return the plan for chaining.
type Plan struct {
	Events []Event
}

// Slow schedules a slowdown of proc by factor at time at, lasting
// duration cycles (0 = rest of run).
func (p *Plan) Slow(proc int, at, factor, duration int64) *Plan {
	p.Events = append(p.Events, Event{Kind: Slowdown, Proc: proc, At: at, Factor: factor, Cycles: duration})
	return p
}

// Stall schedules a stall of proc for cycles at time at.
func (p *Plan) Stall(proc int, at, cycles int64) *Plan {
	p.Events = append(p.Events, Event{Kind: Stall, Proc: proc, At: at, Cycles: cycles})
	return p
}

// Fail schedules a permanent failure of proc at time at.
func (p *Plan) Fail(proc int, at int64) *Plan {
	p.Events = append(p.Events, Event{Kind: Fail, Proc: proc, At: at})
	return p
}

// DegradeMemory schedules degradation of cluster's memory module by
// factor from time at onward.
func (p *Plan) DegradeMemory(cluster int, at, factor int64) *Plan {
	p.Events = append(p.Events, Event{Kind: MemDegrade, Cluster: cluster, At: at, Factor: factor})
	return p
}

// PanicTask makes the nth task spawned with the given name panic.
func (p *Plan) PanicTask(name string, nth int) *Plan {
	p.Events = append(p.Events, Event{Kind: TaskPanic, Task: name, Nth: nth})
	return p
}

// FailTask aborts one launch attempt of the nth task spawned with the
// given name. Stack the event to fail several attempts of the same
// spawn.
func (p *Plan) FailTask(name string, nth int) *Plan {
	p.Events = append(p.Events, Event{Kind: TaskFail, Task: name, Nth: nth})
	return p
}

// Flaky opens a window of cycles length at time at during which every
// task launch on proc aborts transiently.
func (p *Plan) Flaky(proc int, at, cycles int64) *Plan {
	p.Events = append(p.Events, Event{Kind: Flaky, Proc: proc, At: at, Cycles: cycles})
	return p
}

// AddWorkerAt grows the worker pool by one at time at (native only).
func (p *Plan) AddWorkerAt(at int64) *Plan {
	p.Events = append(p.Events, Event{Kind: AddWorker, At: at})
	return p
}

// Drain retires proc at time at as a planned drain (native only).
func (p *Plan) Drain(proc int, at int64) *Plan {
	p.Events = append(p.Events, Event{Kind: Drain, Proc: proc, At: at})
	return p
}

// window is a half-open interval of simulated time, [from, to).
// to == MaxInt64 models an open-ended (permanent) window.
type window struct{ from, to int64 }

func (w window) overlaps(o window) bool { return w.from < o.to && o.from < w.to }

func windowOf(at, cycles int64) window {
	if cycles <= 0 {
		return window{at, math.MaxInt64}
	}
	return window{at, at + cycles}
}

// Validate checks the plan against a machine with procs processors and
// clusters memory modules. Beyond per-event field checks it enforces
// whole-plan consistency: at least one of the initial processors must
// survive all Fail and Drain events (so the program can always make
// progress, conservatively ignoring AddWorker growth), no processor may
// be retired twice, and the Slowdown (resp. Flaky) windows on one
// processor must not overlap — an overlapping window would silently
// overwrite the earlier event's effect, making the plan ambiguous.
func (p *Plan) Validate(procs, clusters int) error {
	failed := make(map[int]bool)
	var slowWins, flakyWins map[int][]window
	for i, ev := range p.Events {
		if ev.At < 0 {
			return fmt.Errorf("fault: event %d (%s): negative time %d", i, ev.Kind, ev.At)
		}
		switch ev.Kind {
		case Slowdown:
			if ev.Proc < 0 || ev.Proc >= procs {
				return fmt.Errorf("fault: event %d: processor %d out of range [0,%d)", i, ev.Proc, procs)
			}
			if ev.Factor < 2 {
				return fmt.Errorf("fault: event %d: slowdown factor %d must be >= 2", i, ev.Factor)
			}
			if ev.Cycles < 0 {
				return fmt.Errorf("fault: event %d: negative slowdown duration %d", i, ev.Cycles)
			}
			w := windowOf(ev.At, ev.Cycles)
			for _, o := range slowWins[ev.Proc] {
				if w.overlaps(o) {
					return fmt.Errorf("fault: event %d: slowdown window on P%d overlaps an earlier one", i, ev.Proc)
				}
			}
			if slowWins == nil {
				slowWins = make(map[int][]window)
			}
			slowWins[ev.Proc] = append(slowWins[ev.Proc], w)
		case Stall:
			if ev.Proc < 0 || ev.Proc >= procs {
				return fmt.Errorf("fault: event %d: processor %d out of range [0,%d)", i, ev.Proc, procs)
			}
			if ev.Cycles <= 0 {
				return fmt.Errorf("fault: event %d: stall length %d must be positive", i, ev.Cycles)
			}
		case Fail, Drain:
			if ev.Proc < 0 || ev.Proc >= procs {
				return fmt.Errorf("fault: event %d: processor %d out of range [0,%d)", i, ev.Proc, procs)
			}
			if failed[ev.Proc] {
				return fmt.Errorf("fault: event %d: processor %d retired twice", i, ev.Proc)
			}
			failed[ev.Proc] = true
		case AddWorker:
			// Only the non-negative time (checked above) matters here;
			// spare capacity is validated by the runtime arming the plan.
		case MemDegrade:
			if ev.Cluster < 0 || ev.Cluster >= clusters {
				return fmt.Errorf("fault: event %d: cluster %d out of range [0,%d)", i, ev.Cluster, clusters)
			}
			if ev.Factor < 2 {
				return fmt.Errorf("fault: event %d: degrade factor %d must be >= 2", i, ev.Factor)
			}
		case TaskPanic, TaskFail:
			if ev.Task == "" {
				return fmt.Errorf("fault: event %d: empty task name", i)
			}
			if ev.Nth < 0 {
				return fmt.Errorf("fault: event %d: negative task index %d", i, ev.Nth)
			}
		case Flaky:
			if ev.Proc < 0 || ev.Proc >= procs {
				return fmt.Errorf("fault: event %d: processor %d out of range [0,%d)", i, ev.Proc, procs)
			}
			if ev.Cycles <= 0 {
				return fmt.Errorf("fault: event %d: flaky window length %d must be positive", i, ev.Cycles)
			}
			w := windowOf(ev.At, ev.Cycles)
			for _, o := range flakyWins[ev.Proc] {
				if w.overlaps(o) {
					return fmt.Errorf("fault: event %d: flaky window on P%d overlaps an earlier one", i, ev.Proc)
				}
			}
			if flakyWins == nil {
				flakyWins = make(map[int][]window)
			}
			flakyWins[ev.Proc] = append(flakyWins[ev.Proc], w)
		default:
			return fmt.Errorf("fault: event %d: unknown kind %d", i, ev.Kind)
		}
	}
	if len(failed) >= procs {
		return fmt.Errorf("fault: plan retires all %d processors; at least one must survive", procs)
	}
	return nil
}

// gen tracks the per-processor state a random generator needs to emit
// only Validate-clean plans: which processors already fail, and the
// slowdown/flaky windows already placed on each.
type gen struct {
	rng    *rand.Rand
	p      *Plan
	failed map[int]bool
	slow   map[int][]window
	flaky  map[int][]window
}

func newGen(seed int64) *gen {
	return &gen{
		rng:    rand.New(rand.NewSource(seed)),
		p:      &Plan{},
		failed: make(map[int]bool),
		slow:   make(map[int][]window),
		flaky:  make(map[int][]window),
	}
}

// tryWindow records w for proc in wins unless it overlaps an existing
// window there.
func tryWindow(wins map[int][]window, proc int, w window) bool {
	for _, o := range wins[proc] {
		if w.overlaps(o) {
			return false
		}
	}
	wins[proc] = append(wins[proc], w)
	return true
}

// slowOrStall emits a bounded slowdown, degrading to a stall when the
// window would overlap an earlier slowdown on the same processor.
func (g *gen) slowOrStall(proc int, at int64) {
	dur := int64(1 + g.rng.Intn(500_000))
	factor := int64(2 + g.rng.Intn(7))
	if tryWindow(g.slow, proc, windowOf(at, dur)) {
		g.p.Slow(proc, at, factor, dur)
	} else {
		g.p.Stall(proc, at, dur/2+1)
	}
}

// Random builds a reproducible plan of n non-panic fault events
// (slowdowns, stalls, memory degradation, and at most procs-1 permanent
// failures) for stress testing. The same seed always yields the same
// plan, and every generated plan passes Validate.
func Random(seed int64, procs, clusters, n int) *Plan {
	g := newGen(seed)
	for i := 0; i < n; i++ {
		at := int64(g.rng.Intn(2_000_000))
		proc := g.rng.Intn(procs)
		switch g.rng.Intn(4) {
		case 0:
			g.slowOrStall(proc, at)
		case 1:
			g.p.Stall(proc, at, int64(1+g.rng.Intn(200_000)))
		case 2:
			if clusters > 0 {
				g.p.DegradeMemory(g.rng.Intn(clusters), at, int64(2+g.rng.Intn(4)))
			}
		case 3:
			if len(g.failed) < procs-1 && !g.failed[proc] {
				g.failed[proc] = true
				g.p.Fail(proc, at)
			} else {
				g.p.Stall(proc, at, int64(1+g.rng.Intn(100_000)))
			}
		}
	}
	return g.p
}

// RandomChaos builds a reproducible chaos plan of n events drawn from
// the full non-panic fault space: slowdowns, stalls, memory degradation,
// a bounded number of permanent failures, and transient-failure flaky
// windows. Flaky windows are kept short (≤ 100k cycles) so a modest
// retry budget can ride them out, and permanent failures are capped at
// half the machine so capacity survives. tasks, when non-empty, supplies
// names for targeted transient task failures. Every generated plan
// passes Validate.
func RandomChaos(seed int64, procs, clusters, n int, tasks []string) *Plan {
	return randomChaos(seed, procs, clusters, n, tasks, false)
}

// RandomChaosChurn is RandomChaos with pool-membership churn mixed in:
// the event space additionally holds AddWorker growth and planned Drain
// retirements (native backend only — the simulator rejects both kinds).
// Drains count against the same survivor budget as permanent failures,
// so every generated plan still passes Validate.
func RandomChaosChurn(seed int64, procs, clusters, n int, tasks []string) *Plan {
	return randomChaos(seed, procs, clusters, n, tasks, true)
}

func randomChaos(seed int64, procs, clusters, n int, tasks []string, churn bool) *Plan {
	g := newGen(seed)
	maxFails := procs / 2
	space := 6
	if churn {
		space = 8
	}
	for i := 0; i < n; i++ {
		at := int64(g.rng.Intn(2_000_000))
		proc := g.rng.Intn(procs)
		switch g.rng.Intn(space) {
		case 0:
			g.slowOrStall(proc, at)
		case 1:
			g.p.Stall(proc, at, int64(1+g.rng.Intn(200_000)))
		case 2:
			if clusters > 0 {
				g.p.DegradeMemory(g.rng.Intn(clusters), at, int64(2+g.rng.Intn(4)))
			}
		case 3:
			if len(g.failed) < maxFails && !g.failed[proc] {
				g.failed[proc] = true
				g.p.Fail(proc, at)
			} else {
				g.p.Stall(proc, at, int64(1+g.rng.Intn(100_000)))
			}
		case 4:
			dur := int64(1 + g.rng.Intn(100_000))
			if tryWindow(g.flaky, proc, windowOf(at, dur)) {
				g.p.Flaky(proc, at, dur)
			} else {
				g.p.Stall(proc, at, dur)
			}
		case 5:
			if len(tasks) > 0 {
				g.p.FailTask(tasks[g.rng.Intn(len(tasks))], g.rng.Intn(8))
			} else {
				g.slowOrStall(proc, at)
			}
		case 6:
			g.p.AddWorkerAt(at)
		case 7:
			if len(g.failed) < maxFails && !g.failed[proc] {
				g.failed[proc] = true
				g.p.Drain(proc, at)
			} else {
				g.p.Stall(proc, at, int64(1+g.rng.Intn(100_000)))
			}
		}
	}
	return g.p
}
