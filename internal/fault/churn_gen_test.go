package fault

import "testing"

func TestChurnPlansContainChurn(t *testing.T) {
	adds, drains := 0, 0
	for seed := int64(1); seed <= 60; seed++ {
		p := RandomChaosChurn(seed, 8, 2, 2+int(seed%5), []string{"w"})
		if err := p.Validate(8, 2); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, ev := range p.Events {
			switch ev.Kind {
			case AddWorker:
				adds++
			case Drain:
				drains++
			}
		}
	}
	t.Logf("60 seeds: %d AddWorker, %d Drain events", adds, drains)
	if adds == 0 || drains == 0 {
		t.Fatalf("churn generator produced adds=%d drains=%d; want both > 0", adds, drains)
	}
}
