package fault

import (
	"reflect"
	"strings"
	"testing"
)

func TestValidateCatchesBadEvents(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"proc out of range", (&Plan{}).Slow(8, 0, 4, 0), "out of range"},
		{"negative proc", (&Plan{}).Fail(-1, 0), "out of range"},
		{"factor too small", (&Plan{}).Slow(0, 0, 1, 0), "factor"},
		{"negative time", (&Plan{}).Stall(0, -5, 100), "negative time"},
		{"zero stall", (&Plan{}).Stall(0, 0, 0), "stall length"},
		{"cluster out of range", (&Plan{}).DegradeMemory(2, 0, 4), "out of range"},
		{"empty task name", (&Plan{}).PanicTask("", 0), "task name"},
		{"all procs fail", (&Plan{}).Fail(0, 0).Fail(1, 0), "must survive"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(2, 2)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	ok := (&Plan{}).Slow(1, 100, 4, 0).Stall(0, 50, 1000).Fail(1, 200).
		DegradeMemory(0, 0, 2).PanicTask("worker", 3)
	if err := ok.Validate(2, 2); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestRandomPlansAreDeterministicAndValid(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := Random(seed, 8, 2, 12)
		b := Random(seed, 8, 2, 12)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two Random calls disagree", seed)
		}
		if err := a.Validate(8, 2); err != nil {
			t.Fatalf("seed %d: random plan invalid: %v", seed, err)
		}
	}
	if reflect.DeepEqual(Random(1, 8, 2, 12), Random(2, 8, 2, 12)) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestEventStrings(t *testing.T) {
	p := (&Plan{}).Slow(3, 10, 4, 500).Slow(3, 10, 4, 0).Stall(1, 5, 99).
		Fail(2, 7).DegradeMemory(1, 3, 8).PanicTask("w", 2)
	for i, want := range []string{"slowdown", "slowdown", "stall", "fail", "memdegrade", "panic"} {
		if got := p.Events[i].String(); !strings.Contains(got, want) {
			t.Errorf("event %d: %q missing %q", i, got, want)
		}
	}
}
