package fault

import (
	"reflect"
	"strings"
	"testing"
)

func TestValidateCatchesBadEvents(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"proc out of range", (&Plan{}).Slow(8, 0, 4, 0), "out of range"},
		{"negative proc", (&Plan{}).Fail(-1, 0), "out of range"},
		{"factor too small", (&Plan{}).Slow(0, 0, 1, 0), "factor"},
		{"negative time", (&Plan{}).Stall(0, -5, 100), "negative time"},
		{"zero stall", (&Plan{}).Stall(0, 0, 0), "stall length"},
		{"cluster out of range", (&Plan{}).DegradeMemory(2, 0, 4), "out of range"},
		{"empty task name", (&Plan{}).PanicTask("", 0), "task name"},
		{"all procs fail", (&Plan{}).Fail(0, 0).Fail(1, 0), "must survive"},
		{"duplicate fail", (&Plan{}).Fail(0, 0).Fail(0, 500), "retired twice"},
		{"fail then drain", (&Plan{}).Fail(0, 0).Drain(0, 500), "retired twice"},
		{"drain out of range", (&Plan{}).Drain(5, 0), "out of range"},
		{"all procs drain", (&Plan{}).Drain(0, 0).Drain(1, 0), "must survive"},
		{"overlapping slowdowns", (&Plan{}).Slow(0, 100, 4, 1000).Slow(0, 600, 2, 1000), "overlaps"},
		{"permanent slowdown overlap", (&Plan{}).Slow(0, 100, 4, 0).Slow(0, 9_999_999, 2, 10), "overlaps"},
		{"empty taskfail name", (&Plan{}).FailTask("", 0), "task name"},
		{"negative taskfail index", (&Plan{}).FailTask("w", -1), "task index"},
		{"flaky proc out of range", (&Plan{}).Flaky(2, 0, 100), "out of range"},
		{"zero flaky window", (&Plan{}).Flaky(0, 0, 0), "window length"},
		{"overlapping flaky windows", (&Plan{}).Flaky(0, 100, 1000).Flaky(0, 500, 1000), "overlaps"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(2, 2)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	ok := (&Plan{}).Slow(1, 100, 4, 0).Stall(0, 50, 1000).Fail(1, 200).
		DegradeMemory(0, 0, 2).PanicTask("worker", 3).
		FailTask("worker", 0).FailTask("worker", 0). // stacking is legal
		Flaky(0, 0, 500).Flaky(0, 500, 500)          // adjacent windows do not overlap
	if err := ok.Validate(2, 2); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

// TestValidatePropertyNeverPanics throws random event soup — including
// field values the builders never produce — at Validate and checks it
// errors (or accepts) deterministically without panicking.
func TestValidatePropertyNeverPanics(t *testing.T) {
	rng := newGen(42).rng
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(8)
		p := &Plan{}
		for i := 0; i < n; i++ {
			p.Events = append(p.Events, Event{
				Kind:    Kind(rng.Intn(9)), // includes unknown kinds
				At:      int64(rng.Intn(2001) - 1000),
				Proc:    rng.Intn(13) - 4,
				Cluster: rng.Intn(7) - 2,
				Factor:  int64(rng.Intn(8) - 2),
				Cycles:  int64(rng.Intn(2001) - 1000),
				Task:    []string{"", "w", "worker"}[rng.Intn(3)],
				Nth:     rng.Intn(5) - 2,
			})
		}
		err1 := p.Validate(4, 1)
		err2 := p.Validate(4, 1)
		if (err1 == nil) != (err2 == nil) ||
			(err1 != nil && err1.Error() != err2.Error()) {
			t.Fatalf("trial %d: Validate not deterministic: %v vs %v", trial, err1, err2)
		}
	}
}

// FuzzPlanValidate drives Validate from raw fuzz bytes decoded into
// events; any panic is a failure.
func FuzzPlanValidate(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{2, 0, 0, 0, 2, 0, 0, 1}) // two fails on P0
	f.Fuzz(func(t *testing.T, data []byte) {
		p := &Plan{}
		for i := 0; i+4 <= len(data); i += 4 {
			p.Events = append(p.Events, Event{
				Kind:   Kind(data[i] % 10),
				At:     int64(int8(data[i+1])) * 100,
				Proc:   int(int8(data[i+2])) % 8,
				Factor: int64(data[i+3]%8) - 1,
				Cycles: int64(int8(data[i+3])) * 10,
				Task:   "w",
				Nth:    int(int8(data[i+1])),
			})
		}
		_ = p.Validate(4, 1) // must not panic
	})
}

func TestRandomPlansAreDeterministicAndValid(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := Random(seed, 8, 2, 12)
		b := Random(seed, 8, 2, 12)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two Random calls disagree", seed)
		}
		if err := a.Validate(8, 2); err != nil {
			t.Fatalf("seed %d: random plan invalid: %v", seed, err)
		}
	}
	if reflect.DeepEqual(Random(1, 8, 2, 12), Random(2, 8, 2, 12)) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestRandomChaosPlansAreDeterministicAndValid(t *testing.T) {
	names := []string{"worker", "panel"}
	for seed := int64(1); seed <= 40; seed++ {
		a := RandomChaos(seed, 8, 2, 16, names)
		b := RandomChaos(seed, 8, 2, 16, names)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two RandomChaos calls disagree", seed)
		}
		if err := a.Validate(8, 2); err != nil {
			t.Fatalf("seed %d: chaos plan invalid: %v", seed, err)
		}
		// Never more than half the machine retired.
		fails := 0
		for _, ev := range a.Events {
			if ev.Kind == Fail {
				fails++
			}
		}
		if fails > 4 {
			t.Fatalf("seed %d: chaos plan retires %d of 8 processors", seed, fails)
		}
	}
	if reflect.DeepEqual(RandomChaos(1, 8, 2, 16, nil), RandomChaos(2, 8, 2, 16, nil)) {
		t.Fatal("different seeds produced identical chaos plans")
	}
}

func TestEventStrings(t *testing.T) {
	p := (&Plan{}).Slow(3, 10, 4, 500).Slow(3, 10, 4, 0).Stall(1, 5, 99).
		Fail(2, 7).DegradeMemory(1, 3, 8).PanicTask("w", 2)
	for i, want := range []string{"slowdown", "slowdown", "stall", "fail", "memdegrade", "panic"} {
		if got := p.Events[i].String(); !strings.Contains(got, want) {
			t.Errorf("event %d: %q missing %q", i, got, want)
		}
	}
}
