package serve

import (
	"fmt"
	"testing"
	"time"
)

func keyed(key, app, size string) *Job {
	return newJob("j", Request{App: app, Size: size, Key: key}, 0)
}

func TestResidencyLRUEvictsOldestSpace(t *testing.T) {
	r := newResidency(2)
	r.Store(keyed("a", "pancho", "small"), "prepA")
	r.Store(keyed("b", "pancho", "small"), "prepB")
	if _, ok := r.Lookup(keyed("a", "pancho", "small")); !ok {
		t.Fatal("space a not resident after store")
	}
	// a was just touched, so adding c evicts b (the least recently served).
	r.Store(keyed("c", "pancho", "small"), "prepC")
	if _, ok := r.Lookup(keyed("b", "pancho", "small")); ok {
		t.Fatal("space b survived eviction")
	}
	if prep, ok := r.Lookup(keyed("a", "pancho", "small")); !ok || prep != "prepA" {
		t.Fatalf("space a lost: %v %v", prep, ok)
	}
	if prep, ok := r.Lookup(keyed("c", "pancho", "small")); !ok || prep != "prepC" {
		t.Fatalf("space c lost: %v %v", prep, ok)
	}
}

func TestResidencyIsPerSpace(t *testing.T) {
	// Two spaces with identical workloads do not share prepared state:
	// a space is private to its tenant.
	r := newResidency(4)
	r.Store(keyed("tenant1", "pancho", "small"), "prep1")
	if _, ok := r.Lookup(keyed("tenant2", "pancho", "small")); ok {
		t.Fatal("tenant2 served tenant1's resident state")
	}
	// The same space with a different workload is a different entry too.
	if _, ok := r.Lookup(keyed("tenant1", "pancho", "medium")); ok {
		t.Fatal("medium job served small's resident state")
	}
	// The default size preset and its explicit spelling share state.
	if _, ok := r.Lookup(keyed("tenant1", "pancho", "")); !ok {
		t.Fatal(`size "" did not resolve to the "small" entry`)
	}
}

func TestResidencyIgnoresKeylessJobs(t *testing.T) {
	r := newResidency(4)
	r.Store(keyed("", "pancho", "small"), "prep")
	if _, ok := r.Lookup(keyed("", "pancho", "small")); ok {
		t.Fatal("keyless job has no space to be resident")
	}
	if r.Hits() != 0 || r.Misses() != 0 {
		t.Fatalf("keyless probes counted: hits=%d misses=%d", r.Hits(), r.Misses())
	}
}

func TestResidencyCounters(t *testing.T) {
	r := newResidency(1)
	j := keyed("a", "pancho", "small")
	if _, ok := r.Lookup(j); ok {
		t.Fatal("hit on empty cache")
	}
	r.Store(j, "prep")
	if _, ok := r.Lookup(j); !ok {
		t.Fatal("miss after store")
	}
	if r.Hits() != 1 || r.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", r.Hits(), r.Misses())
	}
}

// TestServeResidencyFollowsAffinity streams keyed pancho jobs through
// the default space-affinity router and asserts the residency payoff
// materializes: after each space's first job, the rest are served from
// resident prepared state.
func TestServeResidencyFollowsAffinity(t *testing.T) {
	svc, err := NewService(Config{Runtimes: 2, Procs: 2, ResidentSpaces: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()

	const spaces, rounds = 3, 4
	for round := 0; round < rounds; round++ {
		for s := 0; s < spaces; s++ {
			j, err := svc.Submit(Request{App: "pancho", Size: "small", Key: fmt.Sprintf("space%d", s)})
			if err != nil {
				t.Fatal(err)
			}
			if !j.Wait(60 * time.Second) {
				t.Fatalf("round %d space %d stuck", round, s)
			}
			if snap := j.Snapshot(); snap.State != "done" {
				t.Fatalf("round %d space %d: %s (%s)", round, s, snap.State, snap.Error)
			}
		}
	}

	var hits, misses int64
	for _, e := range svc.Report().Runtimes {
		hits += e.PrepHits
		misses += e.PrepMisses
	}
	if hits+misses != spaces*rounds {
		t.Fatalf("probes=%d, want %d", hits+misses, spaces*rounds)
	}
	// Sticky routing keeps each space on one runtime, so only its first
	// job misses (capacity 4 holds every space wherever placement lands
	// them); a router that bounced a space between runtimes would miss
	// again on each new runtime.
	if misses != spaces {
		t.Fatalf("misses=%d, want one cold miss per space (%d); hits=%d", misses, spaces, hits)
	}
}
