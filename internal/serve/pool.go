package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/apps"
)

// Runner executes one job on a runtime that has not run yet (fresh or
// Reset) and returns the job's verification string. res is the serving
// entry's residency cache (never nil in a pool; runners that do not
// exploit residency just ignore it). The default is CatalogRunner;
// tests inject cheap runners.
type Runner func(rt *cool.Runtime, job *Job, res *Residency) (verify string, err error)

// CatalogRunner resolves the job against the serving catalog and runs
// it — the production runner. Keyed jobs run through the residency
// cache: a resident space skips its analyze phase, a non-resident one
// runs it and becomes resident. Apps with no separable analyze phase
// pass through untouched.
func CatalogRunner(rt *cool.Runtime, job *Job, res *Residency) (string, error) {
	var prep any
	if res != nil && apps.CatalogHasPrepare(job.Req.App) {
		var ok bool
		if prep, ok = res.Lookup(job); !ok {
			built, err := apps.PrepareCatalog(job.Req.App, job.Req.Size)
			if err != nil {
				return "", err
			}
			if built != nil {
				res.Store(job, built)
				prep = built
			}
		}
	}
	r, err := apps.RunCatalogPrepared(rt, job.Req.App, job.Req.Size, prep)
	if err != nil {
		return "", err
	}
	return r.Verify, nil
}

// entry is one warm runtime plus its serial job queue. A single
// goroutine (loop) owns rt: it runs a job, Resets the runtime for the
// next one, and rebuilds from scratch only when Reset refuses (a
// failed run leaves the runtime unrecoverable).
type entry struct {
	id   int
	jobs chan *Job
	res  *Residency

	queued    atomic.Int64
	running   atomic.Int64
	completed atomic.Int64
	rebuilds  atomic.Int64
	alive     atomic.Int64

	rt *cool.Runtime // owned by loop after start
}

func (e *entry) stat() EntryStat {
	return EntryStat{
		ID:         e.id,
		Queued:     int(e.queued.Load()),
		Running:    int(e.running.Load()),
		Alive:      int(e.alive.Load()),
		Completed:  e.completed.Load(),
		PrepHits:   e.res.Hits(),
		PrepMisses: e.res.Misses(),
	}
}

// pool is the set of warm runtimes.
type pool struct {
	entries []*entry
	rtCfg   cool.Config
	runner  Runner
	now     func() int64
	wg      sync.WaitGroup
}

func newPool(n int, rtCfg cool.Config, runner Runner, resident int, now func() int64) (*pool, error) {
	p := &pool{rtCfg: rtCfg, runner: runner, now: now}
	for i := 0; i < n; i++ {
		rt, err := cool.NewRuntime(rtCfg)
		if err != nil {
			return nil, fmt.Errorf("serve: building runtime %d: %w", i, err)
		}
		e := &entry{id: i, jobs: make(chan *Job, queueCap), res: newResidency(resident), rt: rt}
		e.alive.Store(int64(rt.Processors()))
		p.entries = append(p.entries, e)
	}
	for _, e := range p.entries {
		p.wg.Add(1)
		go p.loop(e)
	}
	return p, nil
}

// queueCap bounds each entry's queue; a full queue fails the submit
// (the caller reports it as rejected) rather than blocking the router.
const queueCap = 4096

// loop serially drains one entry's queue. It exits when the queue is
// closed and empty — the drain path — making shutdown leak-free by
// construction: wg.Wait returns only after every loop goroutine is
// gone, and each job's runtime has itself joined all its worker
// goroutines before Run returns.
func (p *pool) loop(e *entry) {
	defer p.wg.Done()
	for j := range e.jobs {
		e.queued.Add(-1)
		e.running.Store(1)
		j.start(p.now())

		e.rt.SetJobSLO(j.Req.Priority, j.Req.DeadlineNS)
		verify, err := p.runner(e.rt, j, e.res)
		if err != nil {
			j.finish(JobFailed, "", err.Error(), p.now())
		} else {
			j.finish(JobDone, verify, "", p.now())
		}
		e.completed.Add(1)

		// Re-arm for the next job: warm Reset normally, full rebuild
		// when the run left the runtime unrecoverable.
		if rerr := e.rt.Reset(); rerr != nil {
			e.rebuilds.Add(1)
			nrt, nerr := cool.NewRuntime(p.rtCfg)
			if nerr != nil {
				// Keep the broken runtime; every subsequent job on this
				// entry fails fast through Reset's refusal in the runner.
				e.running.Store(0)
				continue
			}
			e.rt = nrt
		}
		e.alive.Store(int64(e.rt.Processors()))
		e.running.Store(0)
	}
}

func (p *pool) stats() []EntryStat {
	out := make([]EntryStat, len(p.entries))
	for i, e := range p.entries {
		out[i] = e.stat()
	}
	return out
}

func wallNow() int64 { return time.Now().UnixNano() }
