package serve

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler exposes the service over HTTP/JSON:
//
//	POST /jobs        submit  (body: Request)   -> 202 Snapshot
//	GET  /jobs/{id}   status                    -> 200 Snapshot
//	GET  /report      pool + admission state    -> 200 Report
//	POST /drain       stop admissions, drain    -> 200 Report
//
// Rejections map to HTTP status codes: admission refusals and full
// queues are 429 (back off and retry), draining is 503 (this replica
// is going away), bad submissions are 400.
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		job, err := s.Submit(req)
		switch {
		case err == nil:
			writeJSON(w, http.StatusAccepted, job.Snapshot())
		case errors.Is(err, ErrDraining):
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case job != nil:
			// Admitted into the table but refused (rate limit, overload,
			// full queue): the snapshot carries the reason.
			writeJSON(w, http.StatusTooManyRequests, job.Snapshot())
		default:
			httpError(w, http.StatusBadRequest, err.Error())
		}
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, job.Snapshot())
	})

	mux.HandleFunc("GET /report", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Report())
	})

	mux.HandleFunc("POST /drain", func(w http.ResponseWriter, r *http.Request) {
		s.Drain()
		writeJSON(w, http.StatusOK, s.Report())
	})

	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
