package serve

import (
	"fmt"
	"time"
)

// Admission decides whether a submission may enter the system at all —
// before routing, before queuing. Admit returns nil to admit or an
// error naming why the job was refused; it is called with the routing
// lock held, so implementations may keep unguarded state.
type Admission interface {
	Name() string
	Admit(job *Job, stats []EntryStat) error
}

// alwaysAdmit admits everything; queue capacity is the only backstop.
type alwaysAdmit struct{}

func (alwaysAdmit) Name() string                  { return "always" }
func (alwaysAdmit) Admit(*Job, []EntryStat) error { return nil }

// TokenBucket admits at a sustained rate with a burst allowance: a
// bucket of capacity Burst refills at Rate tokens per second and each
// admission spends one token. The clock is injectable so tests refill
// deterministically.
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	lastNS int64
	now    func() int64 // UnixNano
}

// NewTokenBucket builds a full bucket. now may be nil for wall clock.
func NewTokenBucket(rate, burst float64, now func() int64) *TokenBucket {
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, lastNS: now(), now: now}
}

func (t *TokenBucket) Name() string { return "token-bucket" }

func (t *TokenBucket) Admit(*Job, []EntryStat) error {
	n := t.now()
	t.tokens += float64(n-t.lastNS) / 1e9 * t.rate
	if t.tokens > t.burst {
		t.tokens = t.burst
	}
	t.lastNS = n
	if t.tokens < 1 {
		return fmt.Errorf("serve: rate limited (%.2f tokens, need 1)", t.tokens)
	}
	t.tokens--
	return nil
}

// rejectOverloaded sheds load at the door: a submission is refused
// when even the shallowest runtime queue is at or past maxDepth. This
// is queue-depth-aware admission — the serving-layer analogue of the
// runtime's own overload shedding, applied before a job ties up a
// queue slot it would only time out in.
type rejectOverloaded struct{ maxDepth int }

func (rejectOverloaded) Name() string { return "reject-overloaded" }

func (r rejectOverloaded) Admit(_ *Job, stats []EntryStat) error {
	min := -1
	for _, s := range stats {
		if d := s.Depth(); min < 0 || d < min {
			min = d
		}
	}
	if min >= r.maxDepth {
		return fmt.Errorf("serve: overloaded (shallowest queue depth %d >= %d)", min, r.maxDepth)
	}
	return nil
}

// AdmissionConfig parameterizes the admission factory.
type AdmissionConfig struct {
	Rate     float64 // token-bucket: sustained admissions per second
	Burst    float64 // token-bucket: bucket capacity
	MaxDepth int     // reject-overloaded: per-entry depth ceiling
	Now      func() int64
}

// AdmissionNames lists the policies NewAdmission accepts.
func AdmissionNames() []string {
	return []string{"always", "token-bucket", "reject-overloaded"}
}

// NewAdmission builds an admission policy by name.
func NewAdmission(name string, cfg AdmissionConfig) (Admission, error) {
	switch name {
	case "always":
		return alwaysAdmit{}, nil
	case "token-bucket":
		if cfg.Rate <= 0 || cfg.Burst < 1 {
			return nil, fmt.Errorf("serve: token-bucket needs rate > 0 and burst >= 1 (got rate=%g burst=%g)", cfg.Rate, cfg.Burst)
		}
		return NewTokenBucket(cfg.Rate, cfg.Burst, cfg.Now), nil
	case "reject-overloaded":
		if cfg.MaxDepth < 1 {
			return nil, fmt.Errorf("serve: reject-overloaded needs max depth >= 1 (got %d)", cfg.MaxDepth)
		}
		return rejectOverloaded{maxDepth: cfg.MaxDepth}, nil
	}
	return nil, fmt.Errorf("serve: unknown admission policy %q (have %v)", name, AdmissionNames())
}
