package serve

import (
	"fmt"
	"strings"
)

// EntryStat is the live load signal one pool entry exposes to routing
// and admission decisions.
type EntryStat struct {
	ID         int   `json:"id"`
	Queued     int   `json:"queued"`      // jobs waiting in the entry's queue
	Running    int   `json:"running"`     // 0 or 1: the entry runs one job at a time
	Alive      int   `json:"alive"`       // live worker goroutines in the entry's runtime
	Completed  int64 `json:"completed"`   // jobs finished (done or failed)
	PrepHits   int64 `json:"prep_hits"`   // jobs served from resident prepared state
	PrepMisses int64 `json:"prep_misses"` // keyed jobs that had to run the analyze phase
}

// Depth is the entry's total outstanding work.
func (s EntryStat) Depth() int { return s.Queued + s.Running }

// Router picks which pool entry serves a job. Pick is called with the
// routing lock held — implementations may keep unguarded state — and
// must return an index into stats (stats is never empty).
type Router interface {
	Name() string
	Pick(job *Job, stats []EntryStat) int
}

// --- scorer pipeline -------------------------------------------------
//
// Routing policies compose from scorers: each scorer votes a float per
// entry, the pipeline sums the votes, and the highest total wins (ties
// break to the lowest entry ID, keeping every policy deterministic).
// LeastLoaded is the load scorer alone; SpaceAffinity is the affinity
// scorer stacked on the load scorer, so stickiness wins when the home
// runtime is comparably loaded but yields when it has fallen far
// behind — the same "affinity, unless the imbalance is worse" tradeoff
// the paper's task stealing makes at the processor level.

// Scorer votes a score for placing job on the entry described by s.
type Scorer interface {
	Name() string
	Score(job *Job, s EntryStat) float64
}

// ScoreRouter sums its scorers' votes and picks the argmax.
type ScoreRouter struct {
	name    string
	scorers []Scorer
	// observe, when non-nil, is told the final placement (affinity
	// scorers learn stickiness from it).
	observe func(job *Job, entry int)
}

// NewScoreRouter composes scorers into a router.
func NewScoreRouter(name string, scorers ...Scorer) *ScoreRouter {
	r := &ScoreRouter{name: name, scorers: scorers}
	for _, s := range scorers {
		if a, ok := s.(*affinityScorer); ok {
			prev := r.observe
			r.observe = func(job *Job, entry int) {
				if prev != nil {
					prev(job, entry)
				}
				a.record(job, entry)
			}
		}
	}
	return r
}

func (r *ScoreRouter) Name() string { return r.name }

func (r *ScoreRouter) Pick(job *Job, stats []EntryStat) int {
	best, bestScore := 0, 0.0
	for i, st := range stats {
		var score float64
		for _, s := range r.scorers {
			score += s.Score(job, st)
		}
		if i == 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	if r.observe != nil {
		r.observe(job, stats[best].ID)
	}
	return best
}

// loadScorer prefers shallow queues: score = -depth. On its own it is
// the LeastLoaded policy (argmax of -depth = min depth, ties to the
// lowest ID). Entries whose runtime lost workers weigh their queue as
// if it were proportionally deeper, so a drained runtime attracts less
// work — the live alive-worker signal.
type loadScorer struct{ fullAlive int }

func (l *loadScorer) Name() string { return "load" }

func (l *loadScorer) Score(_ *Job, s EntryStat) float64 {
	depth := float64(s.Depth())
	if l.fullAlive > 0 && s.Alive > 0 && s.Alive < l.fullAlive {
		depth *= float64(l.fullAlive) / float64(s.Alive)
	}
	return -depth
}

// affinityScorer remembers, per key, the entry that last served the
// key and votes a bonus for it. The bonus (default 1.5) is measured in
// queue-depth units: a key sticks to its home while the home is at
// most one job deeper than the best alternative, and migrates (then
// re-homes where it lands) once the gap exceeds the bonus. An unseen
// key gets a small deterministic per-(key, entry) preference instead,
// spreading first placements across the pool — without it, every key
// would home to the lowest-numbered entry on an idle pool and
// stickiness would freeze that pile-up in place. Together the two
// produce emergent isolation: keys whose jobs are expensive keep their
// home's queue deep, so cheaper keys sharing it migrate away and stay
// away.
type affinityScorer struct {
	bonus float64
	keyOf func(*Job) string
	last  map[string]int
}

func newAffinityScorer(bonus float64, keyOf func(*Job) string) *affinityScorer {
	return &affinityScorer{bonus: bonus, keyOf: keyOf, last: make(map[string]int)}
}

func (a *affinityScorer) Name() string { return "affinity" }

// spreadMax bounds the unseen-key placement preference. Strictly below
// one queue-depth unit so it can never out-vote a real load difference.
const spreadMax = 0.9

func (a *affinityScorer) Score(job *Job, s EntryStat) float64 {
	k := a.keyOf(job)
	if k == "" {
		return 0
	}
	if e, ok := a.last[k]; ok {
		if e == s.ID {
			return a.bonus
		}
		return 0
	}
	// FNV-1a over key + entry ID: deterministic, but different keys
	// rank entries differently.
	h := uint32(2166136261)
	for i := 0; i < len(k); i++ {
		h = (h ^ uint32(k[i])) * 16777619
	}
	h = (h ^ uint32(s.ID)) * 16777619
	return float64(h%1024) / 1024 * spreadMax
}

func (a *affinityScorer) record(job *Job, entry int) {
	if k := a.keyOf(job); k != "" {
		a.last[k] = entry
	}
}

// spaceKey is the exact affinity key: jobs naming the same object
// space stick together.
func spaceKey(j *Job) string { return j.Req.Key }

// prefixKey groups keys by their first '/'-separated component, so
// "tenant1/run5" and "tenant1/run9" share a home runtime.
func prefixKey(j *Job) string {
	k := j.Req.Key
	if i := strings.IndexByte(k, '/'); i >= 0 {
		return k[:i]
	}
	return k
}

// --- standalone policies ---------------------------------------------

// roundRobin ignores load entirely and deals jobs out in order.
type roundRobin struct{ next int }

func (r *roundRobin) Name() string { return "round-robin" }

func (r *roundRobin) Pick(_ *Job, stats []EntryStat) int {
	i := r.next % len(stats)
	r.next++
	return i
}

// --- factory ---------------------------------------------------------

// RouterNames lists the routing policies NewRouter accepts.
func RouterNames() []string {
	return []string{"round-robin", "least-loaded", "space-affinity", "prefix-affinity"}
}

// NewRouter builds a routing policy by name. fullAlive is the worker
// count a healthy runtime has (used to discount entries whose runtimes
// lost workers); pass 0 to ignore the alive signal.
func NewRouter(name string, fullAlive int) (Router, error) {
	switch name {
	case "round-robin":
		return &roundRobin{}, nil
	case "least-loaded":
		return NewScoreRouter(name, &loadScorer{fullAlive: fullAlive}), nil
	case "space-affinity":
		return NewScoreRouter(name, newAffinityScorer(1.5, spaceKey), &loadScorer{fullAlive: fullAlive}), nil
	case "prefix-affinity":
		return NewScoreRouter(name, newAffinityScorer(1.5, prefixKey), &loadScorer{fullAlive: fullAlive}), nil
	}
	return nil, fmt.Errorf("serve: unknown routing policy %q (have %v)", name, RouterNames())
}
