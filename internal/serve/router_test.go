package serve

import "testing"

func job(key string) *Job { return newJob("j", Request{App: "x", Key: key}, 0) }

func flat(n, depth int) []EntryStat {
	out := make([]EntryStat, n)
	for i := range out {
		out[i] = EntryStat{ID: i, Queued: depth, Alive: 4}
	}
	return out
}

func TestRoundRobinOrder(t *testing.T) {
	r, err := NewRouter("round-robin", 4)
	if err != nil {
		t.Fatal(err)
	}
	stats := flat(3, 0)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := r.Pick(job(""), stats); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
}

func TestLeastLoadedPicksShallowest(t *testing.T) {
	r, err := NewRouter("least-loaded", 4)
	if err != nil {
		t.Fatal(err)
	}
	stats := flat(4, 0)
	stats[0].Queued = 3
	stats[1].Queued = 1
	stats[2].Queued = 5
	stats[3].Queued = 1
	stats[3].Running = 1 // depth 2: entry 1 is strictly shallowest
	if got := r.Pick(job(""), stats); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
}

func TestLeastLoadedTieBreaksToLowestID(t *testing.T) {
	r, _ := NewRouter("least-loaded", 4)
	stats := flat(4, 2)
	for i := 0; i < 5; i++ {
		if got := r.Pick(job(""), stats); got != 0 {
			t.Fatalf("tied pick = %d, want 0 (deterministic lowest ID)", got)
		}
	}
}

func TestLeastLoadedDiscountsLostWorkers(t *testing.T) {
	r, _ := NewRouter("least-loaded", 8)
	stats := flat(2, 0)
	// Entry 0: 3 queued on 8 live workers (effective 3). Entry 1: 2
	// queued but only 4 of 8 workers alive (effective 4) — the alive
	// signal must route to entry 0 despite its deeper raw queue.
	stats[0].Queued, stats[0].Alive = 3, 8
	stats[1].Queued, stats[1].Alive = 2, 4
	if got := r.Pick(job(""), stats); got != 0 {
		t.Fatalf("pick = %d, want 0 (entry 1's drained pool weighs deeper)", got)
	}
}

func TestSpaceAffinityStickiness(t *testing.T) {
	r, _ := NewRouter("space-affinity", 4)

	// An unseen key never lands on a strictly deeper entry: the
	// placement spread is bounded below one queue-depth unit.
	stats := flat(3, 0)
	stats[0].Queued = 1
	home := r.Pick(job("tenant1"), stats)
	if home == 0 {
		t.Fatal("unseen key placed on the strictly deeper entry")
	}

	// The key sticks to its home on equal queues, and keeps sticking
	// while the home is one job deeper than the best alternative.
	stats[0].Queued = 0
	if got := r.Pick(job("tenant1"), stats); got != home {
		t.Fatalf("repeat pick = %d, want sticky %d", got, home)
	}
	stats[home].Queued = 1
	if got := r.Pick(job("tenant1"), stats); got != home {
		t.Fatalf("one-deeper pick = %d, want sticky %d", got, home)
	}

	// Stickiness yields once the home falls behind by more than the
	// affinity bonus (1.5 depth units)...
	stats[home].Queued = 2
	moved := r.Pick(job("tenant1"), stats)
	if moved == home {
		t.Fatal("affinity did not yield to a two-deeper home queue")
	}
	// ...and the key re-homes to wherever it moved.
	if got := r.Pick(job("tenant1"), stats); got != moved {
		t.Fatalf("re-homed pick = %d, want %d", got, moved)
	}
}

func TestSpaceAffinityKeylessJobsBalance(t *testing.T) {
	r, _ := NewRouter("space-affinity", 4)
	stats := flat(2, 0)
	stats[0].Queued = 4
	if got := r.Pick(job(""), stats); got != 1 {
		t.Fatalf("keyless pick = %d, want least-loaded 1", got)
	}
}

func TestPrefixAffinityGroupsTenants(t *testing.T) {
	r, _ := NewRouter("prefix-affinity", 4)
	stats := flat(4, 0)
	home := r.Pick(job("tenant1/run1"), stats)
	if got := r.Pick(job("tenant1/run2"), stats); got != home {
		t.Fatalf("tenant1/run2 routed to %d, want tenant1's home %d", got, home)
	}
}

func TestRouterFactoryRejectsUnknown(t *testing.T) {
	if _, err := NewRouter("cool-ranch", 4); err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, name := range RouterNames() {
		if _, err := NewRouter(name, 4); err != nil {
			t.Fatalf("listed policy %q: %v", name, err)
		}
	}
}
