package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/apps"
)

// Config parameterizes a Service.
type Config struct {
	// Runtimes is the number of warm runtimes in the pool (default 2).
	Runtimes int
	// Procs is each runtime's processor count (default 4).
	Procs int
	// Sim runs jobs on the deterministic simulator instead of the
	// native backend (the default — serving wants wall-clock work).
	Sim bool
	// Runtime, when non-zero-valued beyond the fields above, is the
	// full runtime config; Procs and the backend are applied on top.
	Runtime cool.Config
	// Router is the routing policy (default space-affinity).
	Router Router
	// Admission is the admission policy (default always).
	Admission Admission
	// Runner executes one job (default CatalogRunner).
	Runner Runner
	// ResidentSpaces is each runtime's residency-cache capacity: how
	// many spaces' prepared state one runtime keeps resident (default
	// 4; negative disables residency). Scarcity is the point — see
	// Residency.
	ResidentSpaces int
	// Now is the wall clock, injectable for tests.
	Now func() int64
}

// ErrDraining is returned by Submit once a drain has begun.
var ErrDraining = errors.New("serve: draining, not accepting jobs")

// Service is the in-process serving API: submit jobs, query them,
// report pool state, drain. The HTTP server wraps it.
type Service struct {
	pool   *pool
	router Router
	admit  Admission
	now    func() int64

	mu       sync.Mutex // serializes routing + admission + job table
	jobs     map[string]*Job
	order    []string // submission order, for Jobs()
	seq      int64
	draining bool

	submitted atomic.Int64
	rejected  atomic.Int64

	drainOnce sync.Once
}

// NewService builds the pool (cold NewRuntime per entry — the last
// cold builds this service ever does) and starts its entry loops.
func NewService(cfg Config) (*Service, error) {
	if cfg.Runtimes <= 0 {
		cfg.Runtimes = 2
	}
	if cfg.Procs <= 0 {
		cfg.Procs = 4
	}
	rtCfg := cfg.Runtime
	rtCfg.Processors = cfg.Procs
	if cfg.Sim {
		rtCfg.Backend = cool.BackendSim
	} else {
		rtCfg.Backend = cool.BackendNative
	}
	if cfg.Router == nil {
		r, err := NewRouter("space-affinity", cfg.Procs)
		if err != nil {
			return nil, err
		}
		cfg.Router = r
	}
	if cfg.Admission == nil {
		cfg.Admission = alwaysAdmit{}
	}
	if cfg.Runner == nil {
		cfg.Runner = CatalogRunner
	}
	if cfg.Now == nil {
		cfg.Now = wallNow
	}
	if cfg.ResidentSpaces == 0 {
		cfg.ResidentSpaces = 4
	} else if cfg.ResidentSpaces < 0 {
		cfg.ResidentSpaces = 0
	}
	p, err := newPool(cfg.Runtimes, rtCfg, cfg.Runner, cfg.ResidentSpaces, cfg.Now)
	if err != nil {
		return nil, err
	}
	return &Service{
		pool:   p,
		router: cfg.Router,
		admit:  cfg.Admission,
		now:    cfg.Now,
		jobs:   make(map[string]*Job),
	}, nil
}

// Submit validates, admits, routes, and enqueues one job. The returned
// Job is live — watch Done() or poll State(). A non-nil error means
// the job was not queued; if the Job is also non-nil it is recorded in
// rejected state and remains queryable by ID.
func (s *Service) Submit(req Request) (*Job, error) {
	if req.App == "" {
		return nil, errors.New("serve: submission needs an app")
	}
	if _, ok := apps.CatalogLookup(req.App); ok {
		if _, err := apps.CatalogSize(req.App, req.Size); err != nil {
			return nil, err
		}
	}
	// Unknown apps are allowed through here so tests can use synthetic
	// runners; CatalogRunner fails them cleanly at run time.

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.seq++
	job := newJob(fmt.Sprintf("job-%d", s.seq), req, s.now())
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.submitted.Add(1)

	stats := s.pool.stats()
	if err := s.admit.Admit(job, stats); err != nil {
		s.rejected.Add(1)
		job.finish(JobRejected, "", err.Error(), s.now())
		return job, err
	}
	idx := s.router.Pick(job, stats)
	if idx < 0 || idx >= len(s.pool.entries) {
		s.rejected.Add(1)
		err := fmt.Errorf("serve: router %s picked entry %d of %d", s.router.Name(), idx, len(s.pool.entries))
		job.finish(JobRejected, "", err.Error(), s.now())
		return job, err
	}
	e := s.pool.entries[idx]
	job.route(e.id)
	select {
	case e.jobs <- job:
		e.queued.Add(1)
	default:
		s.rejected.Add(1)
		err := fmt.Errorf("serve: runtime %d queue full (%d jobs)", e.id, queueCap)
		job.finish(JobRejected, "", err.Error(), s.now())
		return job, err
	}
	return job, nil
}

// Job looks a job up by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// Report is the service-wide state summary.
type Report struct {
	Router    string      `json:"router"`
	Admission string      `json:"admission"`
	Draining  bool        `json:"draining"`
	Submitted int64       `json:"submitted"`
	Rejected  int64       `json:"rejected"`
	Runtimes  []EntryStat `json:"runtimes"`
}

// Report snapshots pool and admission state.
func (s *Service) Report() Report {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return Report{
		Router:    s.router.Name(),
		Admission: s.admit.Name(),
		Draining:  draining,
		Submitted: s.submitted.Load(),
		Rejected:  s.rejected.Load(),
		Runtimes:  s.pool.stats(),
	}
}

// Drain stops admissions, lets every queued job finish, and joins all
// pool goroutines. It is idempotent and returns only when the pool is
// fully quiescent — no goroutine this service started survives it.
func (s *Service) Drain() {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		for _, e := range s.pool.entries {
			close(e.jobs) // safe: all sends hold s.mu and check draining first
		}
		s.mu.Unlock()
		s.pool.wg.Wait()
	})
}
