package serve

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	cool "github.com/coolrts/cool"
)

// checkGoroutines fails the test if the goroutine count does not
// return to the pre-service baseline — the leak guard the drain path
// is designed to satisfy.
func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: baseline %d, now %d\n%s", baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeEndToEnd streams 240 real catalog jobs through 3 warm
// native runtimes and asserts exactly-once completion, per-job
// verification, and zero goroutine leaks after drain.
func TestServeEndToEnd(t *testing.T) {
	baseline := runtime.NumGoroutine()

	var mu sync.Mutex
	ran := make(map[string]int) // job ID -> runner invocations
	runner := func(rt *cool.Runtime, j *Job, res *Residency) (string, error) {
		mu.Lock()
		ran[j.ID]++
		mu.Unlock()
		return CatalogRunner(rt, j, res)
	}

	svc, err := NewService(Config{Runtimes: 3, Procs: 4, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}

	const n = 240
	apps := []string{"gauss", "ocean", "blockcho", "locusroute"}
	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		j, err := svc.Submit(Request{
			App:  apps[i%len(apps)],
			Size: "small",
			Key:  fmt.Sprintf("tenant%d", i%6),
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}

	for i, j := range jobs {
		if !j.Wait(60 * time.Second) {
			t.Fatalf("job %d (%s) never finished", i, j.ID)
		}
		snap := j.Snapshot()
		if snap.State != "done" {
			t.Fatalf("job %d: state %s, err %q", i, snap.State, snap.Error)
		}
		if snap.Verify == "" {
			t.Fatalf("job %d finished without verification evidence", i)
		}
		if snap.Runtime < 0 || snap.Runtime >= 3 {
			t.Fatalf("job %d ran on runtime %d", i, snap.Runtime)
		}
	}

	mu.Lock()
	for id, count := range ran {
		if count != 1 {
			t.Fatalf("job %s ran %d times, want exactly once", id, count)
		}
	}
	if len(ran) != n {
		t.Fatalf("%d distinct jobs ran, want %d", len(ran), n)
	}
	mu.Unlock()

	rep := svc.Report()
	var completed int64
	used := 0
	for _, e := range rep.Runtimes {
		completed += e.Completed
		if e.Completed > 0 {
			used++
		}
	}
	if completed != n {
		t.Fatalf("pool completed %d jobs, want %d", completed, n)
	}
	if used < 2 {
		t.Fatalf("only %d of 3 warm runtimes served jobs", used)
	}
	if rep.Submitted != n || rep.Rejected != 0 {
		t.Fatalf("report submitted=%d rejected=%d, want %d/0", rep.Submitted, rep.Rejected, n)
	}

	svc.Drain()
	if _, err := svc.Submit(Request{App: "gauss"}); err != ErrDraining {
		t.Fatalf("post-drain submit error = %v, want ErrDraining", err)
	}
	checkGoroutines(t, baseline)
}

// TestServeAffinityCrossesReset asserts router stickiness spans warm
// Resets: the second job with a key lands on the runtime that served
// the key's first job, even though that runtime was Reset in between.
func TestServeAffinityCrossesReset(t *testing.T) {
	svc, err := NewService(Config{Runtimes: 3, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()

	var home int
	for i := 0; i < 4; i++ {
		j, err := svc.Submit(Request{App: "gauss", Size: "small", Key: "sticky"})
		if err != nil {
			t.Fatal(err)
		}
		if !j.Wait(30 * time.Second) {
			t.Fatalf("job %d stuck", i)
		}
		snap := j.Snapshot()
		if snap.State != "done" {
			t.Fatalf("job %d: %s (%s)", i, snap.State, snap.Error)
		}
		if i == 0 {
			home = snap.Runtime
		} else if snap.Runtime != home {
			t.Fatalf("job %d ran on runtime %d, want sticky home %d", i, snap.Runtime, home)
		}
	}
}

// TestServeRejectionIsQueryable asserts an admission-refused job is
// recorded, terminal, and visible by ID.
func TestServeRejectionIsQueryable(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	runner := func(rt *cool.Runtime, j *Job, res *Residency) (string, error) {
		started <- struct{}{}
		<-release
		return "ok", nil
	}
	admit, err := NewAdmission("reject-overloaded", AdmissionConfig{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(Config{Runtimes: 1, Procs: 2, Runner: runner, Admission: admit})
	if err != nil {
		t.Fatal(err)
	}

	first, err := svc.Submit(Request{App: "gauss"})
	if err != nil {
		t.Fatal(err)
	}
	<-started // first job is now running: every entry is at the ceiling
	second, err := svc.Submit(Request{App: "gauss"})
	if err == nil {
		t.Fatal("second submit admitted past the depth ceiling")
	}
	if second == nil {
		t.Fatal("rejected submit returned no job record")
	}
	if second.State() != JobRejected {
		t.Fatalf("rejected job state = %v", second.State())
	}
	got, ok := svc.Job(second.ID)
	if !ok || got.Snapshot().State != "rejected" {
		t.Fatalf("rejected job not queryable (ok=%v)", ok)
	}
	select {
	case <-second.Done():
	default:
		t.Fatal("rejected job is not terminal")
	}

	close(release)
	if !first.Wait(30 * time.Second) {
		t.Fatal("first job stuck")
	}
	svc.Drain()
}

// TestServeFailedJobRebuildsRuntime asserts a job whose run fails is
// reported failed, the entry rebuilds its runtime, and the next job on
// the same entry succeeds with clean counters.
func TestServeFailedJobRebuildsRuntime(t *testing.T) {
	boom := true
	runner := func(rt *cool.Runtime, j *Job, res *Residency) (string, error) {
		if boom {
			boom = false
			return "", rt.Run(func(c *cool.Ctx) { panic("injected") })
		}
		return CatalogRunner(rt, j, res)
	}
	svc, err := NewService(Config{Runtimes: 1, Procs: 2, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()

	bad, _ := svc.Submit(Request{App: "gauss", Size: "small"})
	good, _ := svc.Submit(Request{App: "gauss", Size: "small"})
	if !bad.Wait(30*time.Second) || !good.Wait(30*time.Second) {
		t.Fatal("jobs stuck")
	}
	if bad.State() != JobFailed {
		t.Fatalf("panicking job state = %v, want failed", bad.State())
	}
	if snap := good.Snapshot(); snap.State != "done" || snap.Verify == "" {
		t.Fatalf("follow-up job on rebuilt runtime: %+v", snap)
	}
	if got := svc.Report().Runtimes[0].Completed; got != 2 {
		t.Fatalf("entry completed %d jobs, want 2", got)
	}
}
