// Package serve is the multi-tenant serving layer over warm COOL
// runtimes. It keeps a pool of runtimes hot across jobs (NewRuntime
// once, Runtime.Reset between jobs), routes each submitted job to a
// runtime through a pluggable policy — round-robin, least-loaded, or
// affinity routing that sticks a job's object space to the runtime
// that last served its key, the paper's task-to-processor affinity
// lifted one level up — and applies admission control before any work
// is queued. The HTTP front end in server.go is a thin wrapper; the
// in-process Service is the real API and what the tests and benches
// drive.
package serve

import (
	"sync"
	"time"
)

// JobState is a job's position in its lifecycle.
type JobState int32

const (
	// JobQueued: admitted and waiting in a runtime's queue.
	JobQueued JobState = iota
	// JobRunning: executing on its runtime.
	JobRunning
	// JobDone: completed successfully.
	JobDone
	// JobFailed: the app run returned an error.
	JobFailed
	// JobRejected: refused by admission control; never queued.
	JobRejected
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobRejected:
		return "rejected"
	}
	return "unknown"
}

// Request is one job submission.
type Request struct {
	// App names a catalog entry (see internal/apps.CatalogNames).
	App string `json:"app"`
	// Size is a catalog preset: "small" (default), "medium", "large".
	Size string `json:"size,omitempty"`
	// Key is the affinity key: jobs sharing a key touch the same object
	// space, and affinity routers keep them on the runtime that last
	// served the key. Empty means no affinity.
	Key string `json:"key,omitempty"`
	// Priority is the tenant's task priority class in [0,7]; it becomes
	// the job-level default for every task the job spawns (explicit
	// per-spawn priorities still win).
	Priority int `json:"priority,omitempty"`
	// DeadlineNS, when positive, is the per-task deadline in
	// nanoseconds measured from the job's start on its runtime. Tasks
	// dispatched past it are shed when the runtime has shedding armed.
	DeadlineNS int64 `json:"deadline_ns,omitempty"`
}

// Job is one admitted (or rejected) submission and its outcome.
type Job struct {
	ID  string
	Req Request

	mu       sync.Mutex
	state    JobState
	runtime  int // entry that ran it, -1 until routed
	verify   string
	errMsg   string
	submitNS int64 // wall clock, UnixNano
	startNS  int64
	doneNS   int64

	done chan struct{} // closed exactly once on done/failed/rejected
}

func newJob(id string, req Request, now int64) *Job {
	return &Job{ID: id, Req: req, runtime: -1, submitNS: now, done: make(chan struct{})}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job is terminal or the timeout elapses, and
// reports whether it became terminal.
func (j *Job) Wait(timeout time.Duration) bool {
	select {
	case <-j.done:
		return true
	case <-time.After(timeout):
		return false
	}
}

func (j *Job) route(entry int) {
	j.mu.Lock()
	j.runtime = entry
	j.mu.Unlock()
}

func (j *Job) start(now int64) {
	j.mu.Lock()
	j.state = JobRunning
	j.startNS = now
	j.mu.Unlock()
}

// finish moves the job to a terminal state; calling it twice panics by
// closing done again, which is exactly the bug it exists to surface.
func (j *Job) finish(state JobState, verify, errMsg string, now int64) {
	j.mu.Lock()
	j.state = state
	j.verify = verify
	j.errMsg = errMsg
	j.doneNS = now
	j.mu.Unlock()
	close(j.done)
}

// Snapshot is a job's externally visible state, JSON-ready.
type Snapshot struct {
	ID       string   `json:"id"`
	App      string   `json:"app"`
	Size     string   `json:"size,omitempty"`
	Key      string   `json:"key,omitempty"`
	State    string   `json:"state"`
	Runtime  int      `json:"runtime"` // -1 until routed
	Verify   string   `json:"verify,omitempty"`
	Error    string   `json:"error,omitempty"`
	SubmitNS int64    `json:"submit_ns"`
	StartNS  int64    `json:"start_ns,omitempty"`
	DoneNS   int64    `json:"done_ns,omitempty"`
	state    JobState // internal typed copy
}

// Snapshot returns a consistent copy of the job's state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID:       j.ID,
		App:      j.Req.App,
		Size:     j.Req.Size,
		Key:      j.Req.Key,
		State:    j.state.String(),
		Runtime:  j.runtime,
		Verify:   j.verify,
		Error:    j.errMsg,
		SubmitNS: j.submitNS,
		StartNS:  j.startNS,
		DoneNS:   j.doneNS,
		state:    j.state,
	}
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}
