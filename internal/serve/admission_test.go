package serve

import (
	"strings"
	"testing"
)

func TestTokenBucketRefill(t *testing.T) {
	var clock int64
	tb := NewTokenBucket(2, 3, func() int64 { return clock }) // 2/sec, burst 3

	for i := 0; i < 3; i++ {
		if err := tb.Admit(job(""), nil); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	if err := tb.Admit(job(""), nil); err == nil {
		t.Fatal("4th admit succeeded on an empty bucket")
	}

	clock += 500e6 // +0.5s refills one token at 2/sec
	if err := tb.Admit(job(""), nil); err != nil {
		t.Fatalf("post-refill admit: %v", err)
	}
	if err := tb.Admit(job(""), nil); err == nil {
		t.Fatal("second post-refill admit succeeded; refill over-credited")
	}

	clock += 10e9 // long idle refills to burst, not beyond
	for i := 0; i < 3; i++ {
		if err := tb.Admit(job(""), nil); err != nil {
			t.Fatalf("capped-refill admit %d: %v", i, err)
		}
	}
	if err := tb.Admit(job(""), nil); err == nil {
		t.Fatal("bucket exceeded burst capacity after long idle")
	}
}

func TestRejectOverloaded(t *testing.T) {
	a, err := NewAdmission("reject-overloaded", AdmissionConfig{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	stats := flat(2, 3)
	if err := a.Admit(job(""), stats); err == nil {
		t.Fatal("admitted at the depth ceiling")
	}
	stats[1].Queued = 2 // one runtime below ceiling: admit
	if err := a.Admit(job(""), stats); err != nil {
		t.Fatalf("rejected with a below-ceiling runtime available: %v", err)
	}
}

func TestAlwaysAdmit(t *testing.T) {
	a, err := NewAdmission("always", AdmissionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Admit(job(""), flat(1, 1<<20)); err != nil {
		t.Fatalf("always admitted nothing: %v", err)
	}
}

func TestAdmissionFactoryValidation(t *testing.T) {
	if _, err := NewAdmission("vibes", AdmissionConfig{}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := NewAdmission("token-bucket", AdmissionConfig{Rate: 0, Burst: 5}); err == nil {
		t.Fatal("token-bucket with zero rate accepted")
	}
	if _, err := NewAdmission("reject-overloaded", AdmissionConfig{MaxDepth: 0}); err == nil {
		t.Fatal("reject-overloaded with zero depth accepted")
	}
	for _, name := range AdmissionNames() {
		if _, err := NewAdmission(name, AdmissionConfig{Rate: 10, Burst: 5, MaxDepth: 8}); err != nil {
			t.Fatalf("listed policy %q: %v", name, err)
		}
	}
	if !strings.Contains(mustAdmissionErr(t), "token-bucket") {
		t.Fatal("factory error does not name the policy")
	}
}

func mustAdmissionErr(t *testing.T) string {
	t.Helper()
	_, err := NewAdmission("token-bucket", AdmissionConfig{})
	if err == nil {
		t.Fatal("expected error")
	}
	return err.Error()
}
