package serve

import "sync/atomic"

// Residency is one pool entry's prepared-state cache: the analyze-phase
// handles (apps.PrepareCatalog) of the spaces this runtime served most
// recently. It is the serving layer's version of the paper's cache
// affinity — a space's prepared state is resident on the runtime that
// last served it, so routing a job home turns into avoided work, while
// a job landing anywhere else repeats the analyze phase.
//
// Residency is deliberately scarce (small LRU capacity): if every
// runtime could hold every space, placement would not matter. Entries
// are keyed per space, never shared across spaces even when two
// tenants' workloads would coincide — a tenant's space is private, and
// the serving layer does not assume its contents from its shape.
//
// Residency is owned by a single pool-entry goroutine; no locking. The
// hit/miss counters are atomics only so stats snapshots can read them
// from other goroutines.
type Residency struct {
	cap    int
	items  map[string]any
	order  []string // LRU: oldest first
	hits   atomic.Int64
	misses atomic.Int64
}

func newResidency(capacity int) *Residency {
	return &Residency{cap: capacity, items: make(map[string]any)}
}

// residencyKey identifies one space's prepared state. The size preset
// is normalized ("" means "small") so the two spellings share state.
func residencyKey(j *Job) string {
	size := j.Req.Size
	if size == "" {
		size = "small"
	}
	return j.Req.Key + "\x00" + j.Req.App + "\x00" + size
}

// Lookup finds the prepared state for a job's space and counts the
// probe as a hit or miss. Keyless jobs have no space to be resident.
func (r *Residency) Lookup(j *Job) (any, bool) {
	if r.cap <= 0 || j.Req.Key == "" {
		return nil, false
	}
	k := residencyKey(j)
	prep, ok := r.items[k]
	if ok {
		r.hits.Add(1)
		r.touch(k)
		return prep, true
	}
	r.misses.Add(1)
	return nil, false
}

// Store makes a space's prepared state resident, evicting the least
// recently served space when the cache is full.
func (r *Residency) Store(j *Job, prep any) {
	if r.cap <= 0 || j.Req.Key == "" || prep == nil {
		return
	}
	k := residencyKey(j)
	if _, ok := r.items[k]; ok {
		r.items[k] = prep
		r.touch(k)
		return
	}
	if len(r.items) >= r.cap {
		oldest := r.order[0]
		r.order = r.order[1:]
		delete(r.items, oldest)
	}
	r.items[k] = prep
	r.order = append(r.order, k)
}

func (r *Residency) touch(k string) {
	for i, o := range r.order {
		if o == k {
			r.order = append(append(r.order[:i:i], r.order[i+1:]...), k)
			return
		}
	}
}

// Hits and Misses report the probe counters (snapshot-safe).
func (r *Residency) Hits() int64   { return r.hits.Load() }
func (r *Residency) Misses() int64 { return r.misses.Load() }
