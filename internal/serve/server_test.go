package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHTTPServeLifecycle(t *testing.T) {
	svc, err := NewService(Config{Runtimes: 2, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(svc))
	defer ts.Close()
	defer svc.Drain()

	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.Bytes()
	}

	// Submit.
	resp, body := post("/jobs", `{"app":"gauss","size":"small","key":"t1/g","priority":3}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID == "" || snap.App != "gauss" {
		t.Fatalf("submit snapshot %+v", snap)
	}

	// Poll status to done.
	deadline := time.Now().Add(30 * time.Second)
	for snap.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", snap.State)
		}
		r, err := http.Get(ts.URL + "/jobs/" + snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("status: %d", r.StatusCode)
		}
		if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		time.Sleep(time.Millisecond)
	}
	if snap.Verify == "" || snap.Runtime < 0 {
		t.Fatalf("done snapshot %+v", snap)
	}

	// Unknown job is 404; bad body is 400.
	if r, _ := http.Get(ts.URL + "/jobs/job-999"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %d", r.StatusCode)
	}
	if resp, _ := post("/jobs", "{"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d", resp.StatusCode)
	}

	// Report.
	r, err := http.Get(ts.URL + "/report")
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if rep.Router == "" || len(rep.Runtimes) != 2 || rep.Submitted < 1 {
		t.Fatalf("report %+v", rep)
	}

	// Drain, then submissions are 503.
	if resp, _ := post("/drain", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d", resp.StatusCode)
	}
	if resp, _ := post("/jobs", `{"app":"gauss"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: %d", resp.StatusCode)
	}
}
