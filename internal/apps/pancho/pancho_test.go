package pancho

import "testing"

func small() Params { return Params{Grid: 12, MaxPanel: 4} }

func TestSerialFactors(t *testing.T) {
	res, err := RunSerial(small())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles charged")
	}
	if res.Residual > 1e-10 {
		t.Fatalf("residual %g", res.Residual)
	}
	if res.MaxDiff != 0 {
		t.Fatalf("serial run should match reference exactly, diff %g", res.MaxDiff)
	}
}

func TestAllVariantsCorrect(t *testing.T) {
	for _, v := range Variants {
		for _, procs := range []int{1, 4, 8} {
			res, err := Run(procs, v, small())
			if err != nil {
				t.Fatalf("%v procs=%d: %v", v, procs, err)
			}
			if res.Tasks < int64(res.Panels) {
				t.Fatalf("%v procs=%d: only %d tasks for %d panels", v, procs, res.Tasks, res.Panels)
			}
		}
	}
}

func TestParallelBeatsSerialElapsed(t *testing.T) {
	// Needs a workload big enough to amortize task overheads.
	p := Params{Grid: 64, MaxPanel: 16, RelaxFill: 0.8}
	ser, err := RunSerial(p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(8, DistrAff, p)
	if err != nil {
		t.Fatal(err)
	}
	if float64(par.Cycles) > 0.5*float64(ser.Cycles) {
		t.Fatalf("no speedup: serial %d, parallel(8) %d", ser.Cycles, par.Cycles)
	}
}

func TestAffinityImprovesOnBase(t *testing.T) {
	p := Params{Grid: 16, MaxPanel: 8}
	base, err := Run(8, Base, p)
	if err != nil {
		t.Fatal(err)
	}
	aff, err := Run(8, DistrAff, p)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: affinity scheduling plus distribution beats
	// locality-oblivious scheduling.
	if float64(aff.Cycles) > float64(base.Cycles)*1.05 {
		t.Fatalf("affinity (%d cycles) not better than base (%d cycles)", aff.Cycles, base.Cycles)
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(4, DistrAff, small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(4, DistrAff, small())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Report.Total != b.Report.Total {
		t.Fatalf("non-deterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestPaddingStaysZero(t *testing.T) {
	ok, err := PaddingZero(Params{Grid: 16, MaxPanel: 10, RelaxFill: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("amalgamation padding accumulated nonzero values")
	}
}

func TestVariantString(t *testing.T) {
	names := map[Variant]string{
		Base:            "Base",
		Distr:           "Distr",
		DistrAff:        "Distr+Aff",
		DistrAffCluster: "Distr+Aff+ClusterStealing",
	}
	for v, want := range names {
		if v.String() != want {
			t.Fatalf("%d.String() = %q", v, v.String())
		}
	}
}
