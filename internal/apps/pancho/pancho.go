// Package pancho is the Panel Cholesky case study (paper §6.3): parallel
// sparse Cholesky factorization where columns with identical structure
// form panels (relaxed supernodes stored as dense trapezoids), each panel
// is updated — under a per-panel monitor — by ready panels to its left,
// and a panel that has received all of its updates becomes ready, is
// completed, and is used to update panels to its right.
//
// The COOL expression follows Figure 13: UpdatePanel is a parallel mutex
// function with affinity(src, TASK) and affinity(this, OBJECT);
// CompletePanel is a parallel function with default affinity for its
// panel; main distributes panels round-robin across the processors'
// memories and waits for the update DAG to drain inside one waitfor.
package pancho

import (
	"fmt"
	"math"
	"sort"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/sparse"
)

// Variant selects the program version of Figure 14.
type Variant int

const (
	// Base: all panels in one memory, scheduling ignores hints.
	Base Variant = iota
	// Distr: panels distributed round-robin, scheduling ignores hints.
	Distr
	// DistrAff: distribution plus affinity scheduling.
	DistrAff
	// DistrAffCluster: DistrAff with stealing restricted to the cluster.
	DistrAffCluster
)

// String names the variant as in the paper's figure legend.
func (v Variant) String() string {
	switch v {
	case Base:
		return "Base"
	case Distr:
		return "Distr"
	case DistrAff:
		return "Distr+Aff"
	case DistrAffCluster:
		return "Distr+Aff+ClusterStealing"
	}
	return "unknown"
}

// Variants lists the figure's program versions in order.
var Variants = []Variant{Base, Distr, DistrAff, DistrAffCluster}

// Params sizes the workload.
type Params struct {
	Grid      int     // k: factor the k×k grid Laplacian (nested dissection order)
	MaxPanel  int     // panel width cap
	RelaxFill float64 // amalgamation padding budget (fraction of true entries)
}

// DefaultParams returns the experiment's standard workload: the 96×96
// grid Laplacian (n = 9216) in nested dissection order with panels of up
// to 12 columns.
func DefaultParams() Params { return Params{Grid: 96, MaxPanel: 12, RelaxFill: 0.8} }

func (p Params) normalize() Params {
	d := DefaultParams()
	if p.Grid <= 0 {
		p.Grid = d.Grid
	}
	if p.MaxPanel <= 0 {
		p.MaxPanel = d.MaxPanel
	}
	if p.RelaxFill <= 0 {
		p.RelaxFill = d.RelaxFill
	}
	return p
}

// Result carries timing, counters and correctness evidence for one run.
type Result struct {
	Cycles   int64
	Report   cool.Report
	Residual float64 // ‖LLᵀx − Ax‖∞ / ‖Ax‖∞
	MaxDiff  float64 // vs the serial reference factor
	Panels   int
	Tasks    int64
}

// app is the per-run state shared by the tasks.
type app struct {
	rt        *cool.Runtime
	ps        *sparse.PanelSet
	dsts      [][]int32
	remaining []int32
	arrs      []*cool.F64 // panel trapezoid values in simulated memory
	mons      []*cool.Monitor
}

// Prep is the reusable analyze-phase output for one workload: the
// assembled matrix, its symbolic factorization and panel partition, the
// update DAG, and the serial reference factor the run verifies against.
// All of it is a pure function of Params and is read-only during a run
// (the per-run update countdown is copied out), so one Prep can back
// any number of factorizations — the split real sparse solvers make
// between analyze and factorize. A serving layer that keeps a space's
// Prep resident turns routing affinity into avoided work.
type Prep struct {
	prm  Params
	a    *sparse.Sym
	ps   *sparse.PanelSet
	dsts [][]int32
	nupd []int32
	ref  *sparse.Factor
}

// Params reports the (normalized) workload this Prep was built for.
func (p *Prep) Params() Params { return p.prm }

// Prepare runs the analyze phase: everything a factorization needs that
// depends only on the workload parameters, not on the runtime.
func Prepare(prm Params) (*Prep, error) {
	prm = prm.normalize()
	a := sparse.GridLaplacianND(prm.Grid)
	symb := sparse.Analyze(a)
	ps := sparse.BuildPanelSet(symb, prm.MaxPanel, prm.RelaxFill)
	dsts, nupd := ps.Deps()
	ref, err := sparse.Cholesky(a, ps.S)
	if err != nil {
		return nil, fmt.Errorf("pancho prepare: %w", err)
	}
	return &Prep{prm: prm, a: a, ps: ps, dsts: dsts, nupd: nupd, ref: ref}, nil
}

// build prepares the matrix, panel partition and simulated-memory layout.
func build(rt *cool.Runtime, prm Params, distribute bool) (*app, *sparse.Sym) {
	prep, err := Prepare(prm)
	if err != nil {
		panic(err) // Cholesky of the grid Laplacian cannot fail: it is SPD
	}
	return buildPrep(rt, prep, distribute), prep.a
}

// buildPrep lays a prepared workload out in the runtime's memory. The
// Prep is shared and stays read-only: only the update countdown is
// copied per run.
func buildPrep(rt *cool.Runtime, prep *Prep, distribute bool) *app {
	ps := prep.ps
	ap := &app{
		rt:        rt,
		ps:        ps,
		dsts:      prep.dsts,
		remaining: append([]int32(nil), prep.nupd...),
		arrs:      make([]*cool.F64, len(ps.Panels)),
		mons:      make([]*cool.Monitor, len(ps.Panels)),
	}
	for _, p := range ps.Panels {
		size := int(ps.ColPtr[p.End] - ps.ColPtr[p.Start])
		proc := 0
		if distribute {
			proc = p.ID % rt.Processors()
		}
		arr := rt.NewF64Pages(size, proc)
		ap.arrs[p.ID] = arr
		ap.mons[p.ID] = rt.NewMonitor(arr.Base)
	}
	// Scatter A's values onto the stored structure (setup, uncharged).
	a := prep.a
	for j := 0; j < a.N; j++ {
		arows, avals := a.Col(j)
		pid := int(ps.Owner[j])
		p := ps.Panels[pid]
		off := int(ps.ColPtr[j] - ps.PanelOff(p))
		for q, r := range arows {
			pos := ps.RowPos(p, j, r)
			if pos < 0 {
				panic("pancho: A entry outside stored structure")
			}
			ap.arrs[pid].Data[off+pos] = avals[q]
		}
	}
	return ap
}

// colOff returns the offset of column j within its panel's value array.
func (ap *app) colOff(pid, j int) int {
	return int(ap.ps.ColPtr[j] - ap.ps.PanelOff(ap.ps.Panels[pid]))
}

// complete performs the internal factorization of panel d: cdiv each
// column and apply its updates to the panel's later columns. Thanks to
// the trapezoid layout the intra-panel update is a dense AXPY.
func (ap *app) complete(ctx *cool.Ctx, d int) {
	p := ap.ps.Panels[d]
	arr := ap.arrs[d]
	for k := p.Start; k < p.End; k++ {
		off := ap.colOff(d, k)
		n := ap.ps.ColLen(k)
		col := arr.Data[off : off+n]
		diag := col[0]
		if diag <= 0 || math.IsNaN(diag) {
			panic(fmt.Sprintf("pancho: lost positive definiteness at column %d (pivot %g)", k, diag))
		}
		diag = math.Sqrt(diag)
		col[0] = diag
		for i := 1; i < n; i++ {
			col[i] /= diag
		}
		ctx.Access(arr.Addr(off), int64(n)*8, true)
		ctx.Compute(int64(n) + 12) // divides plus the square root

		for j := k + 1; j < p.End; j++ {
			mult := col[j-k]
			src := col[j-k:]
			doff := ap.colOff(d, j)
			dst := arr.Data[doff : doff+len(src)]
			for i := range src {
				dst[i] -= mult * src[i]
			}
			ctx.Access(arr.Addr(doff), int64(len(dst))*8, true)
			ctx.Compute(int64(2 * len(src)))
		}
	}
}

// applyUpdate performs every cmod from completed panel src into panel
// dst: for each source column, for each of its stored rows j landing in
// dst, subtract the scaled source suffix from dst's column j.
func (ap *app) applyUpdate(ctx *cool.Ctx, dst, src int) {
	ps := ap.ps
	sp, dp := ps.Panels[src], ps.Panels[dst]
	sBelow := ps.Below[src]
	dBelow := ps.Below[dst]
	sArr, dArr := ap.arrs[src], ap.arrs[dst]

	lo := sort.Search(len(sBelow), func(i int) bool { return int(sBelow[i]) >= dp.Start })
	hi := sort.Search(len(sBelow), func(i int) bool { return int(sBelow[i]) >= dp.End })
	if lo == hi {
		return
	}
	for k := sp.Start; k < sp.End; k++ {
		off := ap.colOff(src, k)
		belowStart := sp.End - k // position of sBelow[0] in column k
		// Read the below segment of the source column once per column.
		ctx.Access(sArr.Addr(off+belowStart+lo), int64(len(sBelow)-lo)*8, false)
		for t := lo; t < hi; t++ {
			j := int(sBelow[t])
			mult := sArr.Data[off+belowStart+t]
			doff := ap.colOff(dst, j)
			// Rows still inside dst's column range: direct positions.
			u := t
			for ; u < hi; u++ {
				r := int(sBelow[u])
				dArr.Data[doff+r-j] -= mult * sArr.Data[off+belowStart+u]
			}
			// Rows below dst's panel: merge into dst's Below (skipping
			// padded source rows dst does not store; their value is 0).
			base2 := doff + (dp.End - j)
			q := 0
			last := base2
			for ; u < len(sBelow); u++ {
				r := sBelow[u]
				for q < len(dBelow) && dBelow[q] < r {
					q++
				}
				if q < len(dBelow) && dBelow[q] == r {
					dArr.Data[base2+q] -= mult * sArr.Data[off+belowStart+u]
					last = base2 + q
				}
			}
			ctx.Access(dArr.Addr(doff), int64(last-doff+1)*8, true)
			ctx.Compute(int64(2 * (len(sBelow) - t)))
		}
	}
}

// spawnComplete launches CompletePanel(d) with default affinity for the
// panel; the completed panel then produces its updates.
func (ap *app) spawnComplete(ctx *cool.Ctx, d int) {
	arr := ap.arrs[d]
	ctx.Spawn("complete", func(c *cool.Ctx) {
		ap.complete(c, d)
		for _, dst := range ap.dsts[d] {
			ap.spawnUpdate(c, int(dst), d)
		}
	}, cool.OnObject(arr.Base))
}

// spawnUpdate launches UpdatePanel(dst ← src): a parallel mutex function
// with affinity(src, TASK) and affinity(dst, OBJECT), per Figure 13.
func (ap *app) spawnUpdate(ctx *cool.Ctx, dst, src int) {
	ctx.Spawn("update", func(c *cool.Ctx) {
		ap.applyUpdate(c, dst, src)
		ap.remaining[dst]--
		if ap.remaining[dst] == 0 {
			ap.spawnComplete(c, dst)
		}
	},
		cool.TaskAffinity(ap.arrs[src].Base),
		cool.ObjectAffinity(ap.arrs[dst].Base),
		cool.WithMutex(ap.mons[dst]),
	)
}

// Run factors the workload on procs processors under the given variant
// and verifies the factor against the serial reference.
func Run(procs int, v Variant, prm Params) (Result, error) {
	return RunWith(cool.Config{Processors: procs}, v, prm)
}

// RunWith factors the workload under an explicit base configuration
// (fault plans, retry policy, deadline); the variant's scheduling knobs
// are applied on top.
func RunWith(cfg cool.Config, v Variant, prm Params) (Result, error) {
	switch v {
	case Base, Distr:
		cfg.Sched.IgnoreHints = true
	case DistrAffCluster:
		cfg.Sched.ClusterStealingOnly = true
	}
	return RunConfig(cfg, v != Base, prm)
}

// RunCustom factors the workload under an explicit scheduling policy
// (used by the ablation benchmarks: queue-array size, steal policy).
func RunCustom(procs int, sched cool.SchedPolicy, distribute bool, prm Params) (Result, error) {
	return RunConfig(cool.Config{Processors: procs, Sched: sched}, distribute, prm)
}

// RunConfig factors the workload under a fully explicit runtime
// configuration (used by the machine-sensitivity experiments).
func RunConfig(cfg cool.Config, distribute bool, prm Params) (Result, error) {
	rt, err := cool.NewRuntime(cfg)
	if err != nil {
		return Result{}, err
	}
	return runBuilt(rt, distribute, prm)
}

// RunOn factors the workload on an existing runtime that has not run
// yet (fresh from NewRuntime or Reset) — the serving layer's
// warm-reuse entry point. The config-level variant knobs (IgnoreHints
// for Base/Distr, ClusterStealingOnly for DistrAffCluster) cannot be
// applied to an already-built runtime; panel distribution and the
// affinity hints still follow the variant.
func RunOn(rt *cool.Runtime, v Variant, prm Params) (Result, error) {
	return runBuilt(rt, v != Base, prm)
}

func runBuilt(rt *cool.Runtime, distribute bool, prm Params) (Result, error) {
	prep, err := Prepare(prm)
	if err != nil {
		return Result{}, err
	}
	return runPrepared(rt, distribute, prep)
}

// RunOnPrep factors like RunOn but reuses prep's analyze phase — the
// serving layer's resident-space fast path. prm must match the
// parameters prep was built for.
func RunOnPrep(rt *cool.Runtime, v Variant, prm Params, prep *Prep) (Result, error) {
	if prep == nil {
		return RunOn(rt, v, prm)
	}
	if prep.prm != prm.normalize() {
		return Result{}, fmt.Errorf("pancho: prep built for %+v, job wants %+v", prep.prm, prm.normalize())
	}
	return runPrepared(rt, v != Base, prep)
}

func runPrepared(rt *cool.Runtime, distribute bool, prep *Prep) (Result, error) {
	ap := buildPrep(rt, prep, distribute)
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for _, p := range ap.ps.Panels {
				if ap.remaining[p.ID] == 0 {
					ap.spawnComplete(ctx, p.ID)
				}
			}
		})
	})
	if err != nil {
		return Result{}, fmt.Errorf("pancho custom: %w", err)
	}
	return ap.finish(prep.a, rt, prep.ref)
}

// RunSerial factors the same workload in a single task on one processor:
// the speedup denominator (no task creation or synchronization cost).
func RunSerial(prm Params) (Result, error) {
	rt, err := cool.NewRuntime(cool.Config{Processors: 1})
	if err != nil {
		return Result{}, err
	}
	ap, a := build(rt, prm, false)
	err = rt.Run(func(ctx *cool.Ctx) {
		for d := range ap.ps.Panels {
			ap.complete(ctx, d)
			for _, dst := range ap.dsts[d] {
				ap.applyUpdate(ctx, int(dst), d)
			}
		}
	})
	if err != nil {
		return Result{}, fmt.Errorf("pancho serial: %w", err)
	}
	return ap.finish(a, rt, nil)
}

// finish extracts the factor's true entries and verifies them against
// the serial reference — ref when the caller prepared one, computed
// fresh otherwise.
func (ap *app) finish(a *sparse.Sym, rt *cool.Runtime, ref *sparse.Factor) (Result, error) {
	ps := ap.ps
	symb := ps.S
	f := &sparse.Factor{S: symb, Val: make([]float64, symb.LNNZ())}
	for j := 0; j < symb.N; j++ {
		pid := int(ps.Owner[j])
		p := ps.Panels[pid]
		off := ap.colOff(pid, j)
		base := symb.LColPtr[j]
		for q, r := range symb.LCol(j) {
			pos := ps.RowPos(p, j, r)
			if pos < 0 {
				return Result{}, fmt.Errorf("pancho: true entry (%d,%d) missing from stored structure", r, j)
			}
			f.Val[base+int64(q)] = ap.arrs[pid].Data[off+pos]
		}
	}
	res := Result{
		Cycles:   rt.ElapsedCycles(),
		Report:   rt.Report(),
		Residual: sparse.ResidualNorm(a, f),
		Panels:   len(ps.Panels),
		Tasks:    rt.Report().Total.TasksRun,
	}
	if ref == nil {
		var err error
		ref, err = sparse.Cholesky(a, symb)
		if err != nil {
			return res, err
		}
	}
	res.MaxDiff = sparse.MaxDiff(ref, f)
	if res.Residual > 1e-9 {
		return res, fmt.Errorf("pancho: residual %g too large", res.Residual)
	}
	if res.MaxDiff > 1e-9 {
		return res, fmt.Errorf("pancho: factor differs from serial reference by %g", res.MaxDiff)
	}
	return res, nil
}

// PaddingZero verifies on a fresh factorization that every padded slot
// of the trapezoid layout is exactly zero (test hook).
func PaddingZero(prm Params) (bool, error) {
	rt, err := cool.NewRuntime(cool.Config{Processors: 1})
	if err != nil {
		return false, err
	}
	ap, _ := build(rt, prm, false)
	err = rt.Run(func(ctx *cool.Ctx) {
		for d := range ap.ps.Panels {
			ap.complete(ctx, d)
			for _, dst := range ap.dsts[d] {
				ap.applyUpdate(ctx, int(dst), d)
			}
		}
	})
	if err != nil {
		return false, err
	}
	ps := ap.ps
	for j := 0; j < ps.S.N; j++ {
		pid := int(ps.Owner[j])
		p := ps.Panels[pid]
		off := ap.colOff(pid, j)
		truth := map[int32]bool{}
		for _, r := range ps.S.LCol(j) {
			truth[r] = true
		}
		for pos := 0; pos < ps.ColLen(j); pos++ {
			var r int32
			if pos < p.End-j {
				r = int32(j + pos)
			} else {
				r = ps.Below[pid][pos-(p.End-j)]
			}
			if !truth[r] && ap.arrs[pid].Data[off+pos] != 0 {
				return false, nil
			}
		}
	}
	return true, nil
}
