package apps

import (
	"strings"
	"testing"

	cool "github.com/coolrts/cool"
)

func TestCatalogCoversEveryApp(t *testing.T) {
	names := CatalogNames()
	if len(names) != len(Names()) {
		t.Fatalf("catalog has %d entries, registry has %d apps", len(names), len(Names()))
	}
	for _, name := range names {
		e, ok := CatalogLookup(name)
		if !ok {
			t.Fatalf("CatalogNames listed %q but CatalogLookup missed it", name)
		}
		app, ok := Lookup(e.App)
		if !ok {
			t.Fatalf("catalog entry %q names unregistered app %q", name, e.App)
		}
		found := false
		for _, v := range app.Variants {
			if v == e.Variant {
				found = true
			}
		}
		if !found {
			t.Fatalf("catalog entry %q names unknown variant %q (have %v)", name, e.Variant, app.Variants)
		}
		for _, preset := range []string{"small", "medium", "large"} {
			if _, err := CatalogSize(name, preset); err != nil {
				t.Fatalf("catalog entry %q: %v", name, err)
			}
		}
	}
	if _, err := CatalogSize("pancho", "jumbo"); err == nil || !strings.Contains(err.Error(), "preset") {
		t.Fatalf("bogus preset accepted (err=%v)", err)
	}
	if _, err := CatalogSize("nonesuch", ""); err == nil {
		t.Fatal("bogus app accepted")
	}
}

// TestCatalogRunsWarmOnBothBackends is the serving layer's core
// contract: every catalog job runs on a warm runtime — fresh, then
// again after Reset — and the second run verifies identically.
func TestCatalogRunsWarmOnBothBackends(t *testing.T) {
	for _, backend := range []cool.Backend{cool.BackendSim, cool.BackendNative} {
		for _, name := range CatalogNames() {
			rt, err := cool.NewRuntime(cool.Config{Processors: 4, Backend: backend})
			if err != nil {
				t.Fatal(err)
			}
			first, err := RunCatalogOn(rt, name, "small")
			if err != nil {
				t.Fatalf("%v/%s cold: %v", backend, name, err)
			}
			if first.Report.Total.TasksRun == 0 || first.Verify == "" {
				t.Fatalf("%v/%s cold result %+v", backend, name, first)
			}
			if err := rt.Reset(); err != nil {
				t.Fatalf("%v/%s Reset: %v", backend, name, err)
			}
			second, err := RunCatalogOn(rt, name, "small")
			if err != nil {
				t.Fatalf("%v/%s warm: %v", backend, name, err)
			}
			if second.Verify != first.Verify {
				t.Fatalf("%v/%s warm verify %q differs from cold %q", backend, name, second.Verify, first.Verify)
			}
		}
	}
}

// TestCatalogPreparedMatchesFresh is the residency fast path's
// correctness contract: a job replayed from cached analyze-phase state
// verifies identically to one that ran the analyze phase inline, on
// both backends, across repeated reuse of the same handle.
func TestCatalogPreparedMatchesFresh(t *testing.T) {
	prep, err := PrepareCatalog("pancho", "small")
	if err != nil {
		t.Fatal(err)
	}
	if prep == nil {
		t.Fatal("pancho advertises no analyze phase")
	}
	for _, backend := range []cool.Backend{cool.BackendSim, cool.BackendNative} {
		rt, err := cool.NewRuntime(cool.Config{Processors: 4, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := RunCatalogOn(rt, "pancho", "small")
		if err != nil {
			t.Fatalf("%v fresh: %v", backend, err)
		}
		for i := 0; i < 2; i++ {
			if err := rt.Reset(); err != nil {
				t.Fatalf("%v Reset %d: %v", backend, i, err)
			}
			cached, err := RunCatalogPrepared(rt, "pancho", "small", prep)
			if err != nil {
				t.Fatalf("%v prepared %d: %v", backend, i, err)
			}
			if cached.Verify != fresh.Verify {
				t.Fatalf("%v prepared run %d verify %q differs from fresh %q", backend, i, cached.Verify, fresh.Verify)
			}
		}
	}
}

// TestCatalogPreparedRejectsMismatch: a handle built for one size must
// not silently serve another.
func TestCatalogPreparedRejectsMismatch(t *testing.T) {
	prep, err := PrepareCatalog("pancho", "small")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cool.NewRuntime(cool.Config{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCatalogPrepared(rt, "pancho", "medium", prep); err == nil {
		t.Fatal("medium job accepted a small-size prep handle")
	}
	if _, err := RunCatalogPrepared(rt, "pancho", "small", "bogus"); err == nil {
		t.Fatal("foreign handle type accepted")
	}
	// Apps with no analyze phase report a nil handle and still run.
	gp, err := PrepareCatalog("gauss", "small")
	if err != nil || gp != nil {
		t.Fatalf("gauss prep = %v, %v; want nil, nil", gp, err)
	}
}

func TestCatalogHasPrepare(t *testing.T) {
	if !CatalogHasPrepare("pancho") {
		t.Fatal("pancho lost its analyze phase")
	}
	if CatalogHasPrepare("gauss") || CatalogHasPrepare("nonesuch") {
		t.Fatal("prep advertised where none exists")
	}
}
