package ocean

import (
	"testing"

	cool "github.com/coolrts/cool"
)

// TestStencilMatchesDirectComputation verifies the five-point kernel
// against an independent recomputation.
func TestStencilMatchesDirectComputation(t *testing.T) {
	prm := Params{N: 16, Regions: 4, Grids: 2, Steps: 1}
	rt, err := cool.NewRuntime(cool.Config{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	ap := build(rt, prm, false)
	src := make([]float64, len(ap.grids[0].Data))
	copy(src, ap.grids[0].Data)
	before := make([]float64, len(ap.grids[1].Data))
	copy(before, ap.grids[1].Data)

	err = rt.Run(func(ctx *cool.Ctx) {
		for r := 0; r < prm.Regions; r++ {
			ap.stencil(ctx, ap.grids[0], ap.grids[1], r)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	n := prm.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			got := ap.grids[1].Data[i*n+j]
			var want float64
			if i == 0 || i == n-1 || j == 0 || j == n-1 {
				want = before[i*n+j] // boundary untouched
			} else {
				want = 0.2 * (src[i*n+j] + src[i*n+j-1] + src[i*n+j+1] +
					src[(i-1)*n+j] + src[(i+1)*n+j])
			}
			if got != want {
				t.Fatalf("stencil (%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

// TestAxpyMatchesDirectComputation verifies the inter-grid accumulate.
func TestAxpyMatchesDirectComputation(t *testing.T) {
	prm := Params{N: 16, Regions: 4, Grids: 2, Steps: 1}
	rt, err := cool.NewRuntime(cool.Config{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	ap := build(rt, prm, false)
	src := make([]float64, len(ap.grids[0].Data))
	copy(src, ap.grids[0].Data)
	dst := make([]float64, len(ap.grids[1].Data))
	copy(dst, ap.grids[1].Data)

	err = rt.Run(func(ctx *cool.Ctx) {
		for r := 0; r < prm.Regions; r++ {
			ap.axpy(ctx, ap.grids[0], ap.grids[1], r, 0.25)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if want := dst[i] + 0.25*src[i]; ap.grids[1].Data[i] != want {
			t.Fatalf("axpy[%d] = %v, want %v", i, ap.grids[1].Data[i], want)
		}
	}
}
