package ocean

import "testing"

func small() Params { return Params{N: 64, Regions: 8, Grids: 3, Steps: 2} }

func TestSerialRuns(t *testing.T) {
	res, err := RunSerial(small())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Checksum == 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestParallelMatchesSerialBitwise(t *testing.T) {
	// Stencils read one grid and write another with a barrier between
	// operations, so the parallel result must match the serial result
	// exactly, for every variant and processor count.
	ser, err := RunSerial(small())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Variants {
		for _, procs := range []int{1, 4, 8} {
			res, err := Run(procs, v, small())
			if err != nil {
				t.Fatalf("%v/%d: %v", v, procs, err)
			}
			if res.Checksum != ser.Checksum {
				t.Fatalf("%v/%d: checksum %v != serial %v", v, procs, res.Checksum, ser.Checksum)
			}
		}
	}
}

func TestRegionTasksSpawned(t *testing.T) {
	p := small()
	res, err := Run(4, DistrAff, p)
	if err != nil {
		t.Fatal(err)
	}
	wantTasks := int64(p.Steps * p.Grids * p.Regions) // (G-1 stencils + 1 axpy) × steps
	if res.Tasks < wantTasks {
		t.Fatalf("tasks = %d, want >= %d", res.Tasks, wantTasks)
	}
}

func TestDistrAffImprovesLocality(t *testing.T) {
	p := Params{N: 128, Regions: 16, Grids: 4, Steps: 2}
	base, err := Run(8, Base, p)
	if err != nil {
		t.Fatal(err)
	}
	aff, err := Run(8, DistrAff, p)
	if err != nil {
		t.Fatal(err)
	}
	if aff.Cycles >= base.Cycles {
		t.Fatalf("affinity (%d) not faster than base (%d)", aff.Cycles, base.Cycles)
	}
	// Distribution converts remote misses to local ones.
	if aff.Report.Total.LocalFraction() <= base.Report.Total.LocalFraction() {
		t.Fatalf("local fraction: aff %.2f <= base %.2f",
			aff.Report.Total.LocalFraction(), base.Report.Total.LocalFraction())
	}
}

func TestParallelSpeedup(t *testing.T) {
	p := Params{N: 128, Regions: 16, Grids: 4, Steps: 2}
	ser, err := RunSerial(p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(8, DistrAff, p)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(ser.Cycles) / float64(par.Cycles)
	if speedup < 2.5 {
		t.Fatalf("speedup on 8 procs = %.2f, want >= 2.5", speedup)
	}
}

func TestBadParamsRejected(t *testing.T) {
	if _, err := RunSerial(Params{N: 65, Regions: 8, Grids: 3, Steps: 1}); err == nil {
		t.Fatal("indivisible N accepted")
	}
	if _, err := RunSerial(Params{N: 64, Regions: 8, Grids: 1, Steps: 1}); err == nil {
		t.Fatal("single grid accepted")
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(4, DistrAff, small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(4, DistrAff, small())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Report.Total != b.Report.Total {
		t.Fatal("non-deterministic")
	}
}
