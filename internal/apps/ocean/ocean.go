// Package ocean is the Ocean case study (paper §6.1): a regular grid
// computation over many state-variable grids, each partitioned into an
// array of regions processed in parallel. The COOL program (Figure 5)
// relies on the simplest hints: the programmer distributes corresponding
// regions of all grids across the processors' memories once, and the
// default affinity of each region task does the rest — tasks run where
// their region lives, giving both cache reuse across timesteps and local
// memory misses.
package ocean

import (
	"fmt"

	cool "github.com/coolrts/cool"
)

// Variant selects the program version.
type Variant int

const (
	// Base: regions undistributed (one memory), hints ignored.
	Base Variant = iota
	// Distr: regions distributed round-robin, hints still ignored.
	Distr
	// DistrAff: distribution plus default region affinity (Figure 5).
	DistrAff
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Base:
		return "Base"
	case Distr:
		return "Distr"
	case DistrAff:
		return "Distr+Aff"
	}
	return "unknown"
}

// Variants lists the program versions in order.
var Variants = []Variant{Base, Distr, DistrAff}

// Params sizes the workload.
type Params struct {
	N       int // grid dimension (N×N points per grid)
	Regions int // row bands per grid
	Grids   int // number of state-variable grids
	Steps   int // timesteps
}

// DefaultParams returns the standard workload.
func DefaultParams() Params { return Params{N: 192, Regions: 32, Grids: 8, Steps: 3} }

func (p Params) normalize() (Params, error) {
	d := DefaultParams()
	if p.N <= 0 {
		p.N = d.N
	}
	if p.Regions <= 0 {
		p.Regions = d.Regions
	}
	if p.Grids <= 0 {
		p.Grids = d.Grids
	}
	if p.Steps <= 0 {
		p.Steps = d.Steps
	}
	if p.Grids < 2 {
		return p, fmt.Errorf("ocean: need at least 2 grids")
	}
	if p.N%p.Regions != 0 {
		return p, fmt.Errorf("ocean: N (%d) must be divisible by Regions (%d)", p.N, p.Regions)
	}
	return p, nil
}

// Result carries timing and correctness evidence.
type Result struct {
	Cycles   int64
	Report   cool.Report
	Checksum float64
	Tasks    int64
}

type app struct {
	prm   Params
	grids []*cool.F64
}

func build(rt *cool.Runtime, prm Params, distribute bool) *app {
	ap := &app{prm: prm, grids: make([]*cool.F64, prm.Grids)}
	for g := range ap.grids {
		ap.grids[g] = rt.NewF64Pages(prm.N*prm.N, 0)
		// Deterministic initial state.
		for i := range ap.grids[g].Data {
			ap.grids[g].Data[i] = float64((i*31+g*17)%97) / 97
		}
	}
	if distribute {
		// Figure 5's distribute(): region r of every grid migrates to
		// processor r mod P, so corresponding regions are collocated.
		rows := prm.N / prm.Regions
		bytesPerRegion := int64(rows * prm.N * 8)
		for g := range ap.grids {
			for r := 0; r < prm.Regions; r++ {
				rt.Migrate(ap.grids[g].Addr(r*rows*prm.N), bytesPerRegion, r%rt.Processors())
			}
		}
	}
	return ap
}

// regionAddr returns the simulated address identifying region r of grid g
// (the object the region task has affinity for).
func (ap *app) regionAddr(g, r int) int64 {
	rows := ap.prm.N / ap.prm.Regions
	return ap.grids[g].Addr(r * rows * ap.prm.N)
}

// stencil computes dst's interior rows of region r from src (five-point
// average), charging reads of three source rows and a write of the
// destination row per row.
func (ap *app) stencil(ctx *cool.Ctx, src, dst *cool.F64, r int) {
	n := ap.prm.N
	rows := n / ap.prm.Regions
	lo, hi := r*rows, (r+1)*rows
	if lo == 0 {
		lo = 1
	}
	if hi == n {
		hi = n - 1
	}
	for i := lo; i < hi; i++ {
		s0 := ctx.ReadF64Range(src, (i-1)*n, i*n)
		s1 := ctx.ReadF64Range(src, i*n, (i+1)*n)
		s2 := ctx.ReadF64Range(src, (i+1)*n, (i+2)*n)
		d := ctx.WriteF64Range(dst, i*n, (i+1)*n)
		for j := 1; j < n-1; j++ {
			d[j] = 0.2 * (s1[j] + s1[j-1] + s1[j+1] + s0[j] + s2[j])
		}
		ctx.Compute(int64(5 * (n - 2)))
	}
}

// axpy adds alpha*src into dst over region r (an inter-grid operation).
func (ap *app) axpy(ctx *cool.Ctx, src, dst *cool.F64, r int, alpha float64) {
	n := ap.prm.N
	rows := n / ap.prm.Regions
	lo, hi := r*rows*n, (r+1)*rows*n
	s := ctx.ReadF64Range(src, lo, hi)
	d := ctx.WriteF64Range(dst, lo, hi)
	for i := range d {
		d[i] += alpha * s[i]
	}
	ctx.Compute(int64(2 * (hi - lo)))
}

// gridOp runs one whole-grid operation: a waitfor over one region task
// per region, each with affinity for its destination region.
func (ap *app) gridOp(ctx *cool.Ctx, name string, dstGrid int, body func(c *cool.Ctx, r int)) {
	optBuf := make([]cool.SpawnOpt, 1)
	ctx.WaitFor(func() {
		ctx.SpawnN(name, ap.prm.Regions, body, func(r int) []cool.SpawnOpt {
			optBuf[0] = cool.OnObject(ap.regionAddr(dstGrid, r))
			return optBuf
		})
	})
}

// run executes the timestep pipeline: a chain of stencil ops through the
// grids followed by an inter-grid accumulation, all barrier-separated.
func (ap *app) run(ctx *cool.Ctx) {
	for s := 0; s < ap.prm.Steps; s++ {
		for g := 1; g < ap.prm.Grids; g++ {
			src, dst := ap.grids[g-1], ap.grids[g]
			ap.gridOp(ctx, "laplace", g, func(c *cool.Ctx, r int) {
				ap.stencil(c, src, dst, r)
			})
		}
		last := ap.grids[ap.prm.Grids-1]
		first := ap.grids[0]
		ap.gridOp(ctx, "accumulate", 0, func(c *cool.Ctx, r int) {
			ap.axpy(c, last, first, r, 0.25)
		})
	}
}

// runSerial performs the identical computation in the main task.
func (ap *app) runSerial(ctx *cool.Ctx) {
	for s := 0; s < ap.prm.Steps; s++ {
		for g := 1; g < ap.prm.Grids; g++ {
			for r := 0; r < ap.prm.Regions; r++ {
				ap.stencil(ctx, ap.grids[g-1], ap.grids[g], r)
			}
		}
		for r := 0; r < ap.prm.Regions; r++ {
			ap.axpy(ctx, ap.grids[ap.prm.Grids-1], ap.grids[0], r, 0.25)
		}
	}
}

func (ap *app) checksum() float64 {
	var sum float64
	for _, g := range ap.grids {
		for _, v := range g.Data {
			sum += v
		}
	}
	return sum
}

// Run executes the workload under the given variant.
func Run(procs int, v Variant, prm Params) (Result, error) {
	return RunWith(cool.Config{Processors: procs}, v, prm)
}

// RunWith executes the workload under an explicit base configuration
// (fault plans, retry policy, deadline); the variant's scheduling knobs
// are applied on top.
func RunWith(cfg cool.Config, v Variant, prm Params) (Result, error) {
	prm, err := prm.normalize()
	if err != nil {
		return Result{}, err
	}
	if v != DistrAff {
		cfg.Sched.IgnoreHints = true
	}
	rt, err := cool.NewRuntime(cfg)
	if err != nil {
		return Result{}, err
	}
	return RunOn(rt, v, prm)
}

// RunOn executes the solver on an existing runtime that has not run yet
// (fresh from NewRuntime or Reset) — the serving layer's warm-reuse
// entry point. The IgnoreHints knob the non-affine variants would set
// at config time cannot be applied to an already-built runtime, so
// their hints are honoured here; DistrAff is unaffected.
func RunOn(rt *cool.Runtime, v Variant, prm Params) (Result, error) {
	prm, err := prm.normalize()
	if err != nil {
		return Result{}, err
	}
	ap := build(rt, prm, v != Base)
	if err := rt.Run(ap.run); err != nil {
		return Result{}, fmt.Errorf("ocean %v: %w", v, err)
	}
	return Result{
		Cycles:   rt.ElapsedCycles(),
		Report:   rt.Report(),
		Checksum: ap.checksum(),
		Tasks:    rt.Report().Total.TasksRun,
	}, nil
}

// RunSerial executes the serial reference on one processor.
func RunSerial(prm Params) (Result, error) {
	prm, err := prm.normalize()
	if err != nil {
		return Result{}, err
	}
	rt, err := cool.NewRuntime(cool.Config{Processors: 1})
	if err != nil {
		return Result{}, err
	}
	ap := build(rt, prm, false)
	if err := rt.Run(ap.runSerial); err != nil {
		return Result{}, fmt.Errorf("ocean serial: %w", err)
	}
	return Result{
		Cycles:   rt.ElapsedCycles(),
		Report:   rt.Report(),
		Checksum: ap.checksum(),
	}, nil
}
