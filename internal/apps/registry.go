// Package apps provides a uniform registry over the SPLASH case-study
// applications so drivers and benchmarks can run any app/variant/size by
// name.
package apps

import (
	"fmt"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/apps/barneshut"
	"github.com/coolrts/cool/internal/apps/blockcho"
	"github.com/coolrts/cool/internal/apps/gauss"
	"github.com/coolrts/cool/internal/apps/locusroute"
	"github.com/coolrts/cool/internal/apps/ocean"
	"github.com/coolrts/cool/internal/apps/pancho"
)

// Result is the registry's uniform view of one application run.
type Result struct {
	Cycles int64
	Report cool.Report
	Verify string // human-readable correctness evidence
}

// App is one registered application.
type App struct {
	Name     string
	Variants []string // program versions, Base first
	// Run executes the app with the named variant; size 0 selects the
	// app's default workload (the meaning of size is app-specific: grid
	// dimension, wires per region, bodies, matrix dimension).
	Run func(procs int, variant string, size int) (Result, error)
	// RunCfg executes the app with the named variant under an explicit
	// base runtime configuration — the chaos driver injects fault plans,
	// retry policies, and deadlines here. cfg.Processors selects the
	// machine size; the variant's scheduling knobs are applied on top.
	RunCfg func(cfg cool.Config, variant string, size int) (Result, error)
	// RunSerial executes the single-task serial reference.
	RunSerial func(size int) (Result, error)
}

var registry = []App{panchoApp(), oceanApp(), locusApp(), blockchoApp(), barneshutApp(), gaussApp()}

// Names lists registered applications in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, a := range registry {
		out[i] = a.Name
	}
	return out
}

// Lookup finds an application by name.
func Lookup(name string) (App, bool) {
	for _, a := range registry {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// variantIndex resolves a variant name against a list, or errors.
func variantIndex(app string, names []string, want string) (int, error) {
	for i, n := range names {
		if n == want {
			return i, nil
		}
	}
	return 0, fmt.Errorf("apps: %s has no variant %q (have %v)", app, names, want)
}

func panchoApp() App {
	names := make([]string, len(pancho.Variants))
	for i, v := range pancho.Variants {
		names[i] = v.String()
	}
	prm := func(size int) pancho.Params {
		p := pancho.DefaultParams()
		if size > 0 {
			p.Grid = size
		}
		return p
	}
	runCfg := func(cfg cool.Config, variant string, size int) (Result, error) {
		i, err := variantIndex("pancho", names, variant)
		if err != nil {
			return Result{}, err
		}
		r, err := pancho.RunWith(cfg, pancho.Variants[i], prm(size))
		if err != nil {
			return Result{}, err
		}
		return Result{r.Cycles, r.Report,
			fmt.Sprintf("residual=%.2e maxdiff=%.2e panels=%d", r.Residual, r.MaxDiff, r.Panels)}, nil
	}
	return App{
		Name:     "pancho",
		Variants: names,
		Run: func(procs int, variant string, size int) (Result, error) {
			return runCfg(cool.Config{Processors: procs}, variant, size)
		},
		RunCfg: runCfg,
		RunSerial: func(size int) (Result, error) {
			r, err := pancho.RunSerial(prm(size))
			if err != nil {
				return Result{}, err
			}
			return Result{r.Cycles, r.Report, fmt.Sprintf("residual=%.2e", r.Residual)}, nil
		},
	}
}

func oceanApp() App {
	names := make([]string, len(ocean.Variants))
	for i, v := range ocean.Variants {
		names[i] = v.String()
	}
	prm := func(size int) ocean.Params {
		p := ocean.DefaultParams()
		if size > 0 {
			p.N = size
		}
		return p
	}
	runCfg := func(cfg cool.Config, variant string, size int) (Result, error) {
		i, err := variantIndex("ocean", names, variant)
		if err != nil {
			return Result{}, err
		}
		r, err := ocean.RunWith(cfg, ocean.Variants[i], prm(size))
		if err != nil {
			return Result{}, err
		}
		return Result{r.Cycles, r.Report, fmt.Sprintf("checksum=%.6g", r.Checksum)}, nil
	}
	return App{
		Name:     "ocean",
		Variants: names,
		Run: func(procs int, variant string, size int) (Result, error) {
			return runCfg(cool.Config{Processors: procs}, variant, size)
		},
		RunCfg: runCfg,
		RunSerial: func(size int) (Result, error) {
			r, err := ocean.RunSerial(prm(size))
			if err != nil {
				return Result{}, err
			}
			return Result{r.Cycles, r.Report, fmt.Sprintf("checksum=%.6g", r.Checksum)}, nil
		},
	}
}

func locusApp() App {
	names := make([]string, len(locusroute.Variants))
	for i, v := range locusroute.Variants {
		names[i] = v.String()
	}
	prm := func(size int) locusroute.Params {
		p := locusroute.DefaultParams()
		if size > 0 {
			p.WiresPer = size
		}
		return p
	}
	runCfg := func(cfg cool.Config, variant string, size int) (Result, error) {
		i, err := variantIndex("locusroute", names, variant)
		if err != nil {
			return Result{}, err
		}
		r, err := locusroute.RunWith(cfg, locusroute.Variants[i], prm(size))
		if err != nil {
			return Result{}, err
		}
		return Result{r.Cycles, r.Report,
			fmt.Sprintf("consistent=%v cost=%d wires=%d", r.Consistent, r.TotalCost, r.Wires)}, nil
	}
	return App{
		Name:     "locusroute",
		Variants: names,
		Run: func(procs int, variant string, size int) (Result, error) {
			return runCfg(cool.Config{Processors: procs}, variant, size)
		},
		RunCfg: runCfg,
		RunSerial: func(size int) (Result, error) {
			r, err := locusroute.RunSerial(prm(size))
			if err != nil {
				return Result{}, err
			}
			return Result{r.Cycles, r.Report,
				fmt.Sprintf("consistent=%v cost=%d", r.Consistent, r.TotalCost)}, nil
		},
	}
}

func blockchoApp() App {
	names := make([]string, len(blockcho.Variants))
	for i, v := range blockcho.Variants {
		names[i] = v.String()
	}
	prm := func(size int) blockcho.Params {
		p := blockcho.DefaultParams()
		if size > 0 {
			p.N = size
		}
		return p
	}
	runCfg := func(cfg cool.Config, variant string, size int) (Result, error) {
		i, err := variantIndex("blockcho", names, variant)
		if err != nil {
			return Result{}, err
		}
		r, err := blockcho.RunWith(cfg, blockcho.Variants[i], prm(size))
		if err != nil {
			return Result{}, err
		}
		return Result{r.Cycles, r.Report,
			fmt.Sprintf("maxdiff=%.2e blocks=%d", r.MaxDiff, r.Blocks)}, nil
	}
	return App{
		Name:     "blockcho",
		Variants: names,
		Run: func(procs int, variant string, size int) (Result, error) {
			return runCfg(cool.Config{Processors: procs}, variant, size)
		},
		RunCfg: runCfg,
		RunSerial: func(size int) (Result, error) {
			r, err := blockcho.RunSerial(prm(size))
			if err != nil {
				return Result{}, err
			}
			return Result{r.Cycles, r.Report, fmt.Sprintf("maxdiff=%.2e", r.MaxDiff)}, nil
		},
	}
}

func barneshutApp() App {
	names := make([]string, len(barneshut.Variants))
	for i, v := range barneshut.Variants {
		names[i] = v.String()
	}
	prm := func(size int) barneshut.Params {
		p := barneshut.DefaultParams()
		if size > 0 {
			p.Bodies = size
		}
		return p
	}
	runCfg := func(cfg cool.Config, variant string, size int) (Result, error) {
		i, err := variantIndex("barneshut", names, variant)
		if err != nil {
			return Result{}, err
		}
		r, err := barneshut.RunWith(cfg, barneshut.Variants[i], prm(size))
		if err != nil {
			return Result{}, err
		}
		return Result{r.Cycles, r.Report, fmt.Sprintf("checksum=%.6g", r.Checksum)}, nil
	}
	return App{
		Name:     "barneshut",
		Variants: names,
		Run: func(procs int, variant string, size int) (Result, error) {
			return runCfg(cool.Config{Processors: procs}, variant, size)
		},
		RunCfg: runCfg,
		RunSerial: func(size int) (Result, error) {
			r, err := barneshut.RunSerial(prm(size))
			if err != nil {
				return Result{}, err
			}
			return Result{r.Cycles, r.Report, fmt.Sprintf("checksum=%.6g", r.Checksum)}, nil
		},
	}
}

func gaussApp() App {
	names := make([]string, len(gauss.Variants))
	for i, v := range gauss.Variants {
		names[i] = v.String()
	}
	prm := func(size int) gauss.Params {
		p := gauss.DefaultParams()
		if size > 0 {
			p.N = size
		}
		return p
	}
	runCfg := func(cfg cool.Config, variant string, size int) (Result, error) {
		i, err := variantIndex("gauss", names, variant)
		if err != nil {
			return Result{}, err
		}
		r, err := gauss.RunWith(cfg, gauss.Variants[i], prm(size))
		if err != nil {
			return Result{}, err
		}
		return Result{r.Cycles, r.Report, fmt.Sprintf("checksum=%.6g", r.Checksum)}, nil
	}
	return App{
		Name:     "gauss",
		Variants: names,
		Run: func(procs int, variant string, size int) (Result, error) {
			return runCfg(cool.Config{Processors: procs}, variant, size)
		},
		RunCfg: runCfg,
		RunSerial: func(size int) (Result, error) {
			r, err := gauss.RunSerial(prm(size))
			if err != nil {
				return Result{}, err
			}
			return Result{r.Cycles, r.Report, fmt.Sprintf("checksum=%.6g", r.Checksum)}, nil
		},
	}
}
