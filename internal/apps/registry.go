// Package apps provides a uniform registry over the SPLASH case-study
// applications so drivers and benchmarks can run any app/variant/size by
// name.
package apps

import (
	"fmt"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/apps/barneshut"
	"github.com/coolrts/cool/internal/apps/blockcho"
	"github.com/coolrts/cool/internal/apps/gauss"
	"github.com/coolrts/cool/internal/apps/locusroute"
	"github.com/coolrts/cool/internal/apps/ocean"
	"github.com/coolrts/cool/internal/apps/pancho"
	"github.com/coolrts/cool/internal/apps/phaseflip"
)

// Result is the registry's uniform view of one application run.
type Result struct {
	Cycles int64
	Report cool.Report
	Verify string // human-readable correctness evidence
}

// App is one registered application.
type App struct {
	Name     string
	Variants []string // program versions, Base first
	// Run executes the app with the named variant; size 0 selects the
	// app's default workload (the meaning of size is app-specific: grid
	// dimension, wires per region, bodies, matrix dimension).
	Run func(procs int, variant string, size int) (Result, error)
	// RunCfg executes the app with the named variant under an explicit
	// base runtime configuration — the chaos driver injects fault plans,
	// retry policies, and deadlines here, and the differential harness
	// selects the execution backend. cfg.Processors selects the machine
	// size; the variant's scheduling knobs are applied on top.
	RunCfg func(cfg cool.Config, variant string, size int) (Result, error)
	// RunOn executes the app on an existing runtime that has not run
	// yet — fresh from NewRuntime or Runtime.Reset. This is the serving
	// layer's warm-reuse entry point: coolserve keeps runtimes hot and
	// replays jobs through here instead of rebuilding per job.
	// Config-level variant knobs (IgnoreHints, cluster-stealing) cannot
	// be applied to an already-built runtime and are skipped.
	RunOn func(rt *cool.Runtime, variant string, size int) (Result, error)
	// Prepare runs the app's analyze phase — reusable workload state
	// that depends only on the size, not on any runtime (pancho's
	// symbolic factorization, panel partition, and reference factor).
	// Nil when the app has no separable analyze phase. The handle is
	// read-only across runs and safe to reuse on any backend.
	Prepare func(size int) (any, error)
	// RunOnPrepared is RunOn reusing a handle Prepare built for the
	// same size. Nil exactly when Prepare is nil.
	RunOnPrepared func(rt *cool.Runtime, variant string, size int, prep any) (Result, error)
	// RunSerial executes the single-task serial reference.
	RunSerial func(size int) (Result, error)
}

// appSpec is everything app-specific the registry needs: the variant
// list, the size→params mapping, the two entry points, and how each raw
// result becomes the uniform Result. newApp derives the rest — variant
// name resolution, Run/RunCfg/RunSerial plumbing — identically for
// every app.
type appSpec[V fmt.Stringer, P, R any] struct {
	name      string
	variants  []V
	params    func(size int) P
	runWith   func(cfg cool.Config, v V, p P) (R, error)
	runOn     func(rt *cool.Runtime, v V, p P) (R, error)
	runSerial func(p P) (R, error)
	result    func(R) Result // parallel runs
	serial    func(R) Result // serial reference (often fewer Verify tokens)
	// Optional analyze-phase split; both set or both nil.
	prepare   func(p P) (any, error)
	runOnPrep func(rt *cool.Runtime, v V, p P, prep any) (R, error)
}

// newApp builds the registry entry from a spec.
func newApp[V fmt.Stringer, P, R any](s appSpec[V, P, R]) App {
	names := make([]string, len(s.variants))
	for i, v := range s.variants {
		names[i] = v.String()
	}
	runCfg := func(cfg cool.Config, variant string, size int) (Result, error) {
		i, err := variantIndex(s.name, names, variant)
		if err != nil {
			return Result{}, err
		}
		r, err := s.runWith(cfg, s.variants[i], s.params(size))
		if err != nil {
			return Result{}, err
		}
		return s.result(r), nil
	}
	app := App{
		Name:     s.name,
		Variants: names,
		Run: func(procs int, variant string, size int) (Result, error) {
			return runCfg(cool.Config{Processors: procs}, variant, size)
		},
		RunCfg: runCfg,
		RunOn: func(rt *cool.Runtime, variant string, size int) (Result, error) {
			i, err := variantIndex(s.name, names, variant)
			if err != nil {
				return Result{}, err
			}
			r, err := s.runOn(rt, s.variants[i], s.params(size))
			if err != nil {
				return Result{}, err
			}
			return s.result(r), nil
		},
		RunSerial: func(size int) (Result, error) {
			r, err := s.runSerial(s.params(size))
			if err != nil {
				return Result{}, err
			}
			return s.serial(r), nil
		},
	}
	if s.prepare != nil {
		app.Prepare = func(size int) (any, error) {
			return s.prepare(s.params(size))
		}
		app.RunOnPrepared = func(rt *cool.Runtime, variant string, size int, prep any) (Result, error) {
			i, err := variantIndex(s.name, names, variant)
			if err != nil {
				return Result{}, err
			}
			r, err := s.runOnPrep(rt, s.variants[i], s.params(size), prep)
			if err != nil {
				return Result{}, err
			}
			return s.result(r), nil
		}
	}
	return app
}

var registry = []App{panchoApp(), oceanApp(), locusApp(), blockchoApp(), barneshutApp(), gaussApp(), phaseflipApp()}

// Names lists registered applications in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, a := range registry {
		out[i] = a.Name
	}
	return out
}

// Lookup finds an application by name.
func Lookup(name string) (App, bool) {
	for _, a := range registry {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// variantIndex resolves a variant name against a list, or errors.
func variantIndex(app string, names []string, want string) (int, error) {
	for i, n := range names {
		if n == want {
			return i, nil
		}
	}
	return 0, fmt.Errorf("apps: %s has no variant %q (have %v)", app, names, want)
}

func panchoApp() App {
	return newApp(appSpec[pancho.Variant, pancho.Params, pancho.Result]{
		name:     "pancho",
		variants: pancho.Variants,
		params: func(size int) pancho.Params {
			p := pancho.DefaultParams()
			if size > 0 {
				p.Grid = size
			}
			return p
		},
		runWith:   pancho.RunWith,
		runOn:     pancho.RunOn,
		runSerial: pancho.RunSerial,
		prepare: func(p pancho.Params) (any, error) {
			return pancho.Prepare(p)
		},
		runOnPrep: func(rt *cool.Runtime, v pancho.Variant, p pancho.Params, prep any) (pancho.Result, error) {
			pp, ok := prep.(*pancho.Prep)
			if !ok {
				return pancho.Result{}, fmt.Errorf("pancho: prepared handle has type %T, want *pancho.Prep", prep)
			}
			return pancho.RunOnPrep(rt, v, p, pp)
		},
		result: func(r pancho.Result) Result {
			return Result{r.Cycles, r.Report,
				fmt.Sprintf("residual=%.2e maxdiff=%.2e panels=%d", r.Residual, r.MaxDiff, r.Panels)}
		},
		serial: func(r pancho.Result) Result {
			return Result{r.Cycles, r.Report, fmt.Sprintf("residual=%.2e", r.Residual)}
		},
	})
}

func oceanApp() App {
	verify := func(r ocean.Result) Result {
		return Result{r.Cycles, r.Report, fmt.Sprintf("checksum=%.6g", r.Checksum)}
	}
	return newApp(appSpec[ocean.Variant, ocean.Params, ocean.Result]{
		name:     "ocean",
		variants: ocean.Variants,
		params: func(size int) ocean.Params {
			p := ocean.DefaultParams()
			if size > 0 {
				p.N = size
			}
			return p
		},
		runWith:   ocean.RunWith,
		runOn:     ocean.RunOn,
		runSerial: ocean.RunSerial,
		result:    verify,
		serial:    verify,
	})
}

func locusApp() App {
	return newApp(appSpec[locusroute.Variant, locusroute.Params, locusroute.Result]{
		name:     "locusroute",
		variants: locusroute.Variants,
		params: func(size int) locusroute.Params {
			p := locusroute.DefaultParams()
			if size > 0 {
				p.WiresPer = size
			}
			return p
		},
		runWith:   locusroute.RunWith,
		runOn:     locusroute.RunOn,
		runSerial: locusroute.RunSerial,
		result: func(r locusroute.Result) Result {
			return Result{r.Cycles, r.Report,
				fmt.Sprintf("consistent=%v cost=%d wires=%d", r.Consistent, r.TotalCost, r.Wires)}
		},
		serial: func(r locusroute.Result) Result {
			return Result{r.Cycles, r.Report,
				fmt.Sprintf("consistent=%v cost=%d", r.Consistent, r.TotalCost)}
		},
	})
}

func blockchoApp() App {
	return newApp(appSpec[blockcho.Variant, blockcho.Params, blockcho.Result]{
		name:     "blockcho",
		variants: blockcho.Variants,
		params: func(size int) blockcho.Params {
			p := blockcho.DefaultParams()
			if size > 0 {
				p.N = size
			}
			return p
		},
		runWith:   blockcho.RunWith,
		runOn:     blockcho.RunOn,
		runSerial: blockcho.RunSerial,
		result: func(r blockcho.Result) Result {
			return Result{r.Cycles, r.Report,
				fmt.Sprintf("maxdiff=%.2e blocks=%d", r.MaxDiff, r.Blocks)}
		},
		serial: func(r blockcho.Result) Result {
			return Result{r.Cycles, r.Report, fmt.Sprintf("maxdiff=%.2e", r.MaxDiff)}
		},
	})
}

func barneshutApp() App {
	verify := func(r barneshut.Result) Result {
		return Result{r.Cycles, r.Report, fmt.Sprintf("checksum=%.6g", r.Checksum)}
	}
	return newApp(appSpec[barneshut.Variant, barneshut.Params, barneshut.Result]{
		name:     "barneshut",
		variants: barneshut.Variants,
		params: func(size int) barneshut.Params {
			p := barneshut.DefaultParams()
			if size > 0 {
				p.Bodies = size
			}
			return p
		},
		runWith:   barneshut.RunWith,
		runOn:     barneshut.RunOn,
		runSerial: barneshut.RunSerial,
		result:    verify,
		serial:    verify,
	})
}

func phaseflipApp() App {
	verify := func(r phaseflip.Result) Result {
		return Result{r.Cycles, r.Report, fmt.Sprintf("checksum=%.6g", r.Checksum)}
	}
	return newApp(appSpec[phaseflip.Variant, phaseflip.Params, phaseflip.Result]{
		name:     "phaseflip",
		variants: phaseflip.Variants,
		params: func(size int) phaseflip.Params {
			p := phaseflip.DefaultParams()
			if size > 0 {
				p.Steps = size
				p.Wave = 0 // re-derived from Steps by normalize
			}
			return p
		},
		runWith:   phaseflip.RunWith,
		runOn:     phaseflip.RunOn,
		runSerial: phaseflip.RunSerial,
		result:    verify,
		serial:    verify,
	})
}

func gaussApp() App {
	verify := func(r gauss.Result) Result {
		return Result{r.Cycles, r.Report, fmt.Sprintf("checksum=%.6g", r.Checksum)}
	}
	return newApp(appSpec[gauss.Variant, gauss.Params, gauss.Result]{
		name:     "gauss",
		variants: gauss.Variants,
		params: func(size int) gauss.Params {
			p := gauss.DefaultParams()
			if size > 0 {
				p.N = size
			}
			return p
		},
		runWith:   gauss.RunWith,
		runOn:     gauss.RunOn,
		runSerial: gauss.RunSerial,
		result:    verify,
		serial:    verify,
	})
}
