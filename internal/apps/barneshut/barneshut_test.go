package barneshut

import (
	"math"
	"testing"
)

func small() Params { return Params{Bodies: 256, Groups: 8, Steps: 2, Theta: 0.7, Seed: 5} }

func TestSerialRuns(t *testing.T) {
	res, err := RunSerial(small())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	if math.IsNaN(res.Checksum) || res.Checksum == 0 {
		t.Fatalf("bad checksum %v", res.Checksum)
	}
}

func TestParallelMatchesSerialBitwise(t *testing.T) {
	// Forces are computed from a tree built identically each step and
	// written to disjoint body blocks, so every variant and processor
	// count must produce bitwise-identical positions.
	ser, err := RunSerial(small())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Variants {
		for _, procs := range []int{1, 4, 8} {
			res, err := Run(procs, v, small())
			if err != nil {
				t.Fatalf("%v/%d: %v", v, procs, err)
			}
			if res.Checksum != ser.Checksum {
				t.Fatalf("%v/%d: checksum %v != serial %v", v, procs, res.Checksum, ser.Checksum)
			}
		}
	}
}

func TestBodiesMove(t *testing.T) {
	one, err := RunSerial(Params{Bodies: 256, Groups: 8, Steps: 1, Theta: 0.7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	two, err := RunSerial(Params{Bodies: 256, Groups: 8, Steps: 2, Theta: 0.7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if one.Checksum == two.Checksum {
		t.Fatal("positions did not change between steps; forces are not applied")
	}
}

func TestParallelSpeedup(t *testing.T) {
	p := Params{Bodies: 1024, Groups: 32, Steps: 2, Theta: 0.7, Seed: 5}
	ser, err := RunSerial(p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(8, AffDistr, p)
	if err != nil {
		t.Fatal(err)
	}
	if sp := float64(ser.Cycles) / float64(par.Cycles); sp < 2 {
		t.Fatalf("speedup on 8 procs = %.2f, want >= 2 (tree build is serial)", sp)
	}
}

func TestBadParams(t *testing.T) {
	if _, err := RunSerial(Params{Bodies: 100, Groups: 32, Steps: 1, Theta: 0.7, Seed: 1}); err == nil {
		t.Fatal("indivisible body count accepted")
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(4, AffDistr, small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(4, AffDistr, small())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Checksum != b.Checksum {
		t.Fatal("non-deterministic")
	}
}
