package barneshut

import (
	"math"
	"testing"

	cool "github.com/coolrts/cool"
)

func builtTree(t *testing.T, bodies int) *app {
	t.Helper()
	prm, err := Params{Bodies: bodies, Groups: 8, Steps: 1, Theta: 0.6, Seed: 4}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cool.NewRuntime(cool.Config{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	ap := build(rt, prm, false)
	if err := rt.Run(func(ctx *cool.Ctx) { ap.buildTree(ctx) }); err != nil {
		t.Fatal(err)
	}
	return ap
}

func TestTreeConservesMass(t *testing.T) {
	ap := builtTree(t, 256)
	root := ap.nodes[0]
	if d := math.Abs(root.mass - 1.0); d > 1e-12 { // masses are 1/N each
		t.Fatalf("root mass = %v, want 1 (±1e-12)", root.mass)
	}
}

func TestTreeCentroidInsideUnitCube(t *testing.T) {
	ap := builtTree(t, 256)
	for i, nd := range ap.nodes {
		if nd.mass == 0 {
			continue
		}
		if nd.mx < 0 || nd.mx > 1 || nd.my < 0 || nd.my > 1 || nd.mz < 0 || nd.mz > 1 {
			t.Fatalf("node %d centroid (%v,%v,%v) outside the unit cube", i, nd.mx, nd.my, nd.mz)
		}
	}
}

func TestTreeLeavesHoldEveryBody(t *testing.T) {
	ap := builtTree(t, 256)
	found := map[int]bool{}
	for _, nd := range ap.nodes {
		if nd.leaf && nd.body >= 0 {
			if found[nd.body] {
				t.Fatalf("body %d in two leaves", nd.body)
			}
			found[nd.body] = true
		}
	}
	if len(found) != 256 {
		t.Fatalf("leaves hold %d of 256 bodies", len(found))
	}
}

func TestTreeInternalMassEqualsChildren(t *testing.T) {
	ap := builtTree(t, 256)
	for i, nd := range ap.nodes {
		if nd.leaf {
			continue
		}
		var sum float64
		for _, c := range nd.children {
			if c != 0 {
				sum += ap.nodes[c].mass
			}
		}
		if d := math.Abs(sum - nd.mass); d > 1e-12 {
			t.Fatalf("node %d: children mass %v, node mass %v", i, sum, nd.mass)
		}
	}
}

func TestTreeNodeCountBounded(t *testing.T) {
	ap := builtTree(t, 512)
	// Each insertion splits at most a chain of cells; for random uniform
	// bodies the tree stays comfortably under the 4N record budget.
	if len(ap.nodes) > 4*512 {
		t.Fatalf("tree has %d nodes for 512 bodies; exceeds the record budget", len(ap.nodes))
	}
}

func TestForceIsFiniteAndNonzero(t *testing.T) {
	ap := builtTree(t, 256)
	rt, err := cool.NewRuntime(cool.Config{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = rt
	// Reuse the app's runtime context by computing forces in a fresh run
	// is not possible (tree belongs to ap); compute directly instead.
	prm := ap.prm
	rt2, err := cool.NewRuntime(cool.Config{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	ap2 := build(rt2, prm, false)
	err = rt2.Run(func(ctx *cool.Ctx) {
		ap2.buildTree(ctx)
		var nonzero int
		for bi := 0; bi < 32; bi++ {
			ax, ay, az := ap2.force(ctx, bi)
			if math.IsNaN(ax+ay+az) || math.IsInf(ax+ay+az, 0) {
				t.Errorf("body %d: non-finite force", bi)
			}
			if ax != 0 || ay != 0 || az != 0 {
				nonzero++
			}
		}
		if nonzero == 0 {
			t.Error("all sampled forces are zero")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
