// Package barneshut is the Barnes-Hut case study (paper §6.4): an N-body
// simulation that approximates far-field gravity through an octree of
// mass centroids. Each timestep rebuilds the tree, computes forces in
// parallel — one task per spatially contiguous body group, with affinity
// for the group's body block — and advances the bodies. Affinity
// scheduling keeps a group (and the subtree it mostly traverses) resident
// in one processor's cache across steps; distributing the body blocks
// makes the remaining misses local.
package barneshut

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	cool "github.com/coolrts/cool"
)

// Variant selects the program version of Figure 16.
type Variant int

const (
	// Base: body blocks in one memory, hints ignored.
	Base Variant = iota
	// AffDistr: blocks distributed, group tasks with object affinity.
	AffDistr
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Base:
		return "Base"
	case AffDistr:
		return "Affinity+Distr"
	}
	return "unknown"
}

// Variants lists the program versions in order.
var Variants = []Variant{Base, AffDistr}

// Params sizes the workload.
type Params struct {
	Bodies int
	Groups int
	Steps  int
	Theta  float64 // multipole acceptance criterion
	Seed   int64
}

// DefaultParams returns the standard workload.
func DefaultParams() Params { return Params{Bodies: 2048, Groups: 64, Steps: 3, Theta: 0.5, Seed: 11} }

func (p Params) normalize() (Params, error) {
	d := DefaultParams()
	if p.Bodies <= 0 {
		p.Bodies = d.Bodies
	}
	if p.Groups <= 0 {
		p.Groups = d.Groups
	}
	if p.Steps <= 0 {
		p.Steps = d.Steps
	}
	if p.Theta <= 0 {
		p.Theta = d.Theta
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	if p.Bodies%p.Groups != 0 {
		return p, fmt.Errorf("barneshut: Bodies (%d) must be divisible by Groups (%d)", p.Bodies, p.Groups)
	}
	return p, nil
}

// Result carries timing and correctness evidence.
type Result struct {
	Cycles   int64
	Report   cool.Report
	Checksum float64 // bitwise-comparable position digest
	Tasks    int64
}

const (
	fieldsPerBody = 10 // x y z m vx vy vz ax ay az
	nodeStride    = 16 // floats per tree-node record (two cache lines)
)

// node is the host-side octree node; its hot data (centroid, mass, size)
// also lives in simulated memory for latency charging.
type node struct {
	cx, cy, cz float64 // cell center
	half       float64
	mass       float64
	mx, my, mz float64 // mass-weighted centroid accumulator
	body       int     // body index for singleton leaves, -1 otherwise
	children   [8]int  // node indices, 0 = none
	leaf       bool
}

type app struct {
	prm    Params
	groups []*cool.F64 // per-group body blocks
	tree   *cool.F64   // node records in simulated memory
	nodes  []node
}

func build(rt *cool.Runtime, prm Params, distribute bool) *app {
	ap := &app{prm: prm}
	per := prm.Bodies / prm.Groups

	// Deterministic initial conditions, sorted by a coarse space-filling
	// key so each group is spatially contiguous (as SPLASH does).
	rng := rand.New(rand.NewSource(prm.Seed))
	type b3 struct{ x, y, z float64 }
	bodies := make([]b3, prm.Bodies)
	for i := range bodies {
		bodies[i] = b3{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	key := func(b b3) int {
		const g = 8
		return (int(b.x*g)<<8 | int(b.y*g)<<4) | int(b.z*g)
	}
	sort.SliceStable(bodies, func(i, j int) bool { return key(bodies[i]) < key(bodies[j]) })

	ap.groups = make([]*cool.F64, prm.Groups)
	for g := range ap.groups {
		proc := 0
		if distribute {
			proc = g % rt.Processors()
		}
		arr := rt.NewF64Pages(per*fieldsPerBody, proc)
		for i := 0; i < per; i++ {
			b := bodies[g*per+i]
			d := arr.Data[i*fieldsPerBody:]
			d[0], d[1], d[2] = b.x, b.y, b.z
			d[3] = 1 / float64(prm.Bodies) // mass
		}
		ap.groups[g] = arr
	}
	ap.tree = rt.NewF64Pages(4*prm.Bodies*nodeStride, 0)
	if distribute {
		// Distribute the tree pages round-robin too: the tree is the
		// hottest shared object, and leaving it in one memory saturates
		// that module's bandwidth during the force phase.
		page := int64(4096)
		total := int64(ap.tree.Len()) * 8
		for off, i := int64(0), 0; off < total; off, i = off+page, i+1 {
			sz := page
			if off+sz > total {
				sz = total - off
			}
			rt.Migrate(ap.tree.Base+off, sz, i%rt.Processors())
		}
	}
	return ap
}

// body returns the group array and element offset of body i.
func (ap *app) body(i int) (*cool.F64, int) {
	per := ap.prm.Bodies / ap.prm.Groups
	return ap.groups[i/per], (i % per) * fieldsPerBody
}

// buildTree inserts every body into a fresh octree (run in one task; the
// paper's tree build is also a serial phase at these problem sizes).
func (ap *app) buildTree(ctx *cool.Ctx) {
	ap.nodes = ap.nodes[:0]
	ap.newNode(0.5, 0.5, 0.5, 0.5)
	for i := 0; i < ap.prm.Bodies; i++ {
		arr, off := ap.body(i)
		ctx.Access(arr.Addr(off), 32, false) // position + mass
		ap.insert(ctx, 0, i, arr.Data[off], arr.Data[off+1], arr.Data[off+2], arr.Data[off+3], 0)
	}
	ap.finalize(ctx, 0)
}

func (ap *app) newNode(cx, cy, cz, half float64) int {
	ap.nodes = append(ap.nodes, node{cx: cx, cy: cy, cz: cz, half: half, body: -1, leaf: true})
	return len(ap.nodes) - 1
}

func (ap *app) insert(ctx *cool.Ctx, n, bi int, x, y, z, m float64, depth int) {
	ctx.Access(ap.tree.Addr(n*nodeStride), 64, true)
	ctx.Compute(12)
	nd := &ap.nodes[n]
	nd.mass += m
	nd.mx += m * x
	nd.my += m * y
	nd.mz += m * z
	if nd.leaf {
		if nd.body == -1 {
			nd.body = bi
			return
		}
		if depth > 60 {
			// Coincident bodies: keep only aggregate mass.
			return
		}
		// Split: push the resident body down, then continue.
		old := nd.body
		nd.body = -1
		nd.leaf = false
		arr, off := ap.body(old)
		ox, oy, oz, om := arr.Data[off], arr.Data[off+1], arr.Data[off+2], arr.Data[off+3]
		ap.insertChild(ctx, n, old, ox, oy, oz, om, depth)
	}
	ap.insertChild(ctx, n, bi, x, y, z, m, depth)
}

func (ap *app) insertChild(ctx *cool.Ctx, n, bi int, x, y, z, m float64, depth int) {
	nd := &ap.nodes[n]
	oct := 0
	if x >= nd.cx {
		oct |= 1
	}
	if y >= nd.cy {
		oct |= 2
	}
	if z >= nd.cz {
		oct |= 4
	}
	c := nd.children[oct]
	if c == 0 {
		h := nd.half / 2
		cx, cy, cz := nd.cx-h, nd.cy-h, nd.cz-h
		if oct&1 != 0 {
			cx += nd.half
		}
		if oct&2 != 0 {
			cy += nd.half
		}
		if oct&4 != 0 {
			cz += nd.half
		}
		c = ap.newNode(cx, cy, cz, h)
		ap.nodes[n].children[oct] = c
	}
	// Note: ap.nodes may have been reallocated by newNode; re-index.
	ap.insert(ctx, c, bi, x, y, z, m, depth+1)
}

// finalize converts centroid accumulators into centroids and writes the
// records out to simulated memory.
func (ap *app) finalize(ctx *cool.Ctx, n int) {
	nd := &ap.nodes[n]
	if nd.mass > 0 {
		nd.mx /= nd.mass
		nd.my /= nd.mass
		nd.mz /= nd.mass
	}
	ctx.Access(ap.tree.Addr(n*nodeStride), 64, true)
	ctx.Compute(6)
	if !nd.leaf {
		for _, c := range nd.children {
			if c != 0 {
				ap.finalize(ctx, c)
			}
		}
	}
}

// force accumulates the acceleration on body bi by traversing the tree.
func (ap *app) force(ctx *cool.Ctx, bi int) (float64, float64, float64) {
	arr, off := ap.body(bi)
	x, y, z := arr.Data[off], arr.Data[off+1], arr.Data[off+2]
	const eps2 = 1e-4
	var ax, ay, az float64
	theta2 := ap.prm.Theta * ap.prm.Theta

	var walk func(n int)
	walk = func(n int) {
		nd := &ap.nodes[n]
		ctx.Access(ap.tree.Addr(n*nodeStride), 64, false)
		dx, dy, dz := nd.mx-x, nd.my-y, nd.mz-z
		d2 := dx*dx + dy*dy + dz*dz + eps2
		ctx.Compute(16)
		if nd.leaf {
			if nd.body == bi || nd.mass == 0 {
				return
			}
			inv := 1 / (d2 * math.Sqrt(d2))
			ax += nd.mass * dx * inv
			ay += nd.mass * dy * inv
			az += nd.mass * dz * inv
			ctx.Compute(12)
			return
		}
		size := nd.half * 2
		if size*size < theta2*d2 {
			inv := 1 / (d2 * math.Sqrt(d2))
			ax += nd.mass * dx * inv
			ay += nd.mass * dy * inv
			az += nd.mass * dz * inv
			ctx.Compute(12)
			return
		}
		for _, c := range nd.children {
			if c != 0 {
				walk(c)
			}
		}
	}
	walk(0)
	return ax, ay, az
}

// groupForces computes accelerations for one body group.
func (ap *app) groupForces(ctx *cool.Ctx, g int) {
	per := ap.prm.Bodies / ap.prm.Groups
	arr := ap.groups[g]
	for i := 0; i < per; i++ {
		bi := g*per + i
		off := i * fieldsPerBody
		ctx.Access(arr.Addr(off), 32, false)
		ax, ay, az := ap.force(ctx, bi)
		arr.Data[off+7], arr.Data[off+8], arr.Data[off+9] = ax, ay, az
		ctx.Access(arr.Addr(off+7), 24, true)
	}
}

// groupAdvance integrates one group's velocities and positions.
func (ap *app) groupAdvance(ctx *cool.Ctx, g int) {
	const dt = 1e-3
	per := ap.prm.Bodies / ap.prm.Groups
	arr := ap.groups[g]
	for i := 0; i < per; i++ {
		off := i * fieldsPerBody
		d := arr.Data[off:]
		ctx.Access(arr.Addr(off), 80, true)
		d[4] += dt * d[7]
		d[5] += dt * d[8]
		d[6] += dt * d[9]
		d[0] += dt * d[4]
		d[1] += dt * d[5]
		d[2] += dt * d[6]
		ctx.Compute(12)
	}
}

// step runs one timestep: serial tree build, then parallel force and
// advance phases over the body groups.
func (ap *app) step(ctx *cool.Ctx, parallel bool) {
	ap.buildTree(ctx)
	if !parallel {
		for g := 0; g < ap.prm.Groups; g++ {
			ap.groupForces(ctx, g)
		}
		for g := 0; g < ap.prm.Groups; g++ {
			ap.groupAdvance(ctx, g)
		}
		return
	}
	optBuf := make([]cool.SpawnOpt, 1)
	groupOpt := func(g int) []cool.SpawnOpt {
		optBuf[0] = cool.OnObject(ap.groups[g].Base)
		return optBuf
	}
	ctx.WaitFor(func() {
		ctx.SpawnN("forces", ap.prm.Groups, ap.groupForces, groupOpt)
	})
	ctx.WaitFor(func() {
		ctx.SpawnN("advance", ap.prm.Groups, ap.groupAdvance, groupOpt)
	})
}

func (ap *app) checksum() float64 {
	var s float64
	for _, g := range ap.groups {
		for i := 0; i < g.Len(); i += fieldsPerBody {
			s += g.Data[i] + 2*g.Data[i+1] + 3*g.Data[i+2]
		}
	}
	return s
}

// Run executes the simulation under the given variant.
func Run(procs int, v Variant, prm Params) (Result, error) {
	return RunWith(cool.Config{Processors: procs}, v, prm)
}

// RunWith executes the simulation under an explicit base configuration
// (fault plans, retry policy, deadline); the variant's scheduling knobs
// are applied on top.
func RunWith(cfg cool.Config, v Variant, prm Params) (Result, error) {
	prm, err := prm.normalize()
	if err != nil {
		return Result{}, err
	}
	if v == Base {
		cfg.Sched.IgnoreHints = true
	}
	rt, err := cool.NewRuntime(cfg)
	if err != nil {
		return Result{}, err
	}
	return RunOn(rt, v, prm)
}

// RunOn runs the simulation steps on an existing runtime that has not
// run yet (fresh from NewRuntime or Reset) — the serving layer's
// warm-reuse entry point. Base's IgnoreHints knob cannot be applied to
// an already-built runtime; its bodies stay undistributed either way.
func RunOn(rt *cool.Runtime, v Variant, prm Params) (Result, error) {
	prm, err := prm.normalize()
	if err != nil {
		return Result{}, err
	}
	ap := build(rt, prm, v == AffDistr)
	err = rt.Run(func(ctx *cool.Ctx) {
		for s := 0; s < prm.Steps; s++ {
			ap.step(ctx, true)
		}
	})
	if err != nil {
		return Result{}, fmt.Errorf("barneshut %v: %w", v, err)
	}
	return Result{
		Cycles:   rt.ElapsedCycles(),
		Report:   rt.Report(),
		Checksum: ap.checksum(),
		Tasks:    rt.Report().Total.TasksRun,
	}, nil
}

// RunSerial executes the identical computation in the main task.
func RunSerial(prm Params) (Result, error) {
	prm, err := prm.normalize()
	if err != nil {
		return Result{}, err
	}
	rt, err := cool.NewRuntime(cool.Config{Processors: 1})
	if err != nil {
		return Result{}, err
	}
	ap := build(rt, prm, false)
	err = rt.Run(func(ctx *cool.Ctx) {
		for s := 0; s < prm.Steps; s++ {
			ap.step(ctx, false)
		}
	})
	if err != nil {
		return Result{}, fmt.Errorf("barneshut serial: %w", err)
	}
	return Result{
		Cycles:   rt.ElapsedCycles(),
		Report:   rt.Report(),
		Checksum: ap.checksum(),
	}, nil
}
