package apps

import (
	"strings"
	"testing"
)

// tinySizes keep the end-to-end registry runs fast.
var tinySizes = map[string]int{
	"ocean":      64,  // N (divisible by 32 regions)
	"locusroute": 4,   // wires per region
	"pancho":     12,  // grid
	"blockcho":   64,  // N (2×2 blocks of 32)
	"barneshut":  256, // bodies (divisible by 64 groups)
	"gauss":      32,  // N
	"phaseflip":  60,  // steps (wave re-derived)
}

func TestRegistryNamesAndLookup(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("registered apps = %v", names)
	}
	for _, n := range names {
		app, ok := Lookup(n)
		if !ok || app.Name != n {
			t.Fatalf("lookup %q failed", n)
		}
		if len(app.Variants) < 2 {
			t.Fatalf("%s has %d variants", n, len(app.Variants))
		}
		if app.Variants[0] != "Base" {
			t.Fatalf("%s first variant %q, want Base", n, app.Variants[0])
		}
	}
	if _, ok := Lookup("nonesuch"); ok {
		t.Fatal("lookup of unknown app succeeded")
	}
}

func TestRegistryRunsEveryAppEndToEnd(t *testing.T) {
	for _, name := range Names() {
		app, _ := Lookup(name)
		size := tinySizes[name]
		ser, err := app.RunSerial(size)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		if ser.Cycles <= 0 || ser.Verify == "" {
			t.Fatalf("%s serial result %+v", name, ser)
		}
		for _, variant := range app.Variants {
			res, err := app.Run(4, variant, size)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, variant, err)
			}
			if res.Cycles <= 0 {
				t.Fatalf("%s/%s: no cycles", name, variant)
			}
			if res.Report.Total.TasksRun == 0 {
				t.Fatalf("%s/%s: no tasks ran", name, variant)
			}
		}
	}
}

func TestRegistryRejectsUnknownVariant(t *testing.T) {
	for _, name := range Names() {
		app, _ := Lookup(name)
		_, err := app.Run(2, "NoSuchVariant", tinySizes[name])
		if err == nil || !strings.Contains(err.Error(), "variant") {
			t.Fatalf("%s accepted bogus variant (err=%v)", name, err)
		}
	}
}
