// Package gauss is the paper's running Gaussian elimination example
// (Figure 3): column-oriented elimination where update(dst, src)
// subtracts a multiple of a finished source column from a destination
// column. The schedule the paper derives — memory locality on the
// destination column (OBJECT affinity, columns distributed round-robin)
// and cache locality on the source column (TASK affinity, updates with a
// common source executed back to back) — is expressed with the
// affinity(src, TASK) + affinity(dst, OBJECT) pair, exactly as in the
// figure.
package gauss

import (
	"fmt"
	"math"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/machine"
)

// Variant selects the affinity ablation.
type Variant int

const (
	// Base: hints ignored, columns in one memory.
	Base Variant = iota
	// ObjectOnly: OBJECT affinity on the destination column only.
	ObjectOnly
	// TaskObject: the paper's full hint pair (Figure 3).
	TaskObject
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Base:
		return "Base"
	case ObjectOnly:
		return "Object"
	case TaskObject:
		return "Task+Object"
	}
	return "unknown"
}

// Variants lists the ablation points in order.
var Variants = []Variant{Base, ObjectOnly, TaskObject}

// Params sizes the workload.
type Params struct {
	N int // matrix dimension
	// Uniform selects a bus-based uniform-memory machine instead of the
	// clustered DASH model (the related-work comparison of §7: on such a
	// machine affinity can only pay through cache reuse).
	Uniform bool
}

// DefaultParams returns the standard workload.
func DefaultParams() Params { return Params{N: 256} }

func (p Params) normalize() Params {
	if p.N <= 0 {
		p.N = DefaultParams().N
	}
	return p
}

// Result carries timing and correctness evidence.
type Result struct {
	Cycles   int64
	Report   cool.Report
	Checksum float64 // bitwise-comparable digest of the factored matrix
	Tasks    int64
}

type app struct {
	prm  Params
	cols []*cool.F64
}

func build(rt *cool.Runtime, prm Params, distribute bool) *app {
	ap := &app{prm: prm, cols: make([]*cool.F64, prm.N)}
	for j := range ap.cols {
		proc := 0
		if distribute {
			proc = j % rt.Processors()
		}
		col := rt.NewF64Pages(prm.N, proc)
		for i := 0; i < prm.N; i++ {
			if i == j {
				col.Data[i] = float64(prm.N)
			} else {
				col.Data[i] = float64((i*31+j*17)%7) - 3
			}
		}
		ap.cols[j] = col
	}
	return ap
}

// update eliminates row k of destination column j using source column k,
// recording the multiplier in place (forming L below the diagonal).
func (ap *app) update(ctx *cool.Ctx, j, k int) {
	n := ap.prm.N
	src := ap.cols[k]
	dst := ap.cols[j]
	s := ctx.ReadF64Range(src, k, n)
	d := ctx.WriteF64Range(dst, k, n)
	m := d[0] / s[0]
	d[0] = m
	for i := 1; i < len(d); i++ {
		d[i] -= m * s[i]
	}
	ctx.Compute(int64(2 * (n - k)))
}

// run performs the elimination: one barrier-separated step per pivot
// column, with an update task per remaining column.
func (ap *app) run(ctx *cool.Ctx, v Variant) {
	n := ap.prm.N
	optBuf := make([]cool.SpawnOpt, 2)
	for k := 0; k < n-1; k++ {
		src := ap.cols[k]
		k := k
		ctx.WaitFor(func() {
			ctx.SpawnN("update", n-1-k, func(c *cool.Ctx, i int) {
				ap.update(c, k+1+i, k)
			}, func(i int) []cool.SpawnOpt {
				dst := ap.cols[k+1+i]
				switch v {
				case ObjectOnly:
					optBuf[0] = cool.ObjectAffinity(dst.Base)
					return optBuf[:1]
				case TaskObject:
					optBuf[0] = cool.TaskAffinity(src.Base)
					optBuf[1] = cool.ObjectAffinity(dst.Base)
					return optBuf
				}
				return nil
			})
		})
	}
}

func (ap *app) checksum() float64 {
	var s float64
	for j, col := range ap.cols {
		for i, v := range col.Data {
			s += v * float64((i+2*j)%17)
		}
	}
	return s
}

func (ap *app) validate() error {
	for j, col := range ap.cols {
		for _, v := range col.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("gauss: non-finite value in column %d", j)
			}
		}
	}
	return nil
}

// Run executes the elimination under the given variant.
func Run(procs int, v Variant, prm Params) (Result, error) {
	return RunWith(cool.Config{Processors: procs}, v, prm)
}

// RunWith executes the elimination under an explicit base configuration
// (fault plans, retry policy, deadline); the variant's scheduling knobs
// are applied on top.
func RunWith(cfg cool.Config, v Variant, prm Params) (Result, error) {
	prm = prm.normalize()
	if prm.Uniform {
		mc := machine.UniformBus(cfg.Processors)
		cfg.Machine = &mc
	}
	if v == Base {
		cfg.Sched.IgnoreHints = true
	}
	rt, err := cool.NewRuntime(cfg)
	if err != nil {
		return Result{}, err
	}
	return RunOn(rt, v, prm)
}

// RunOn executes the elimination on an existing runtime that has not
// run yet (fresh from NewRuntime or Reset) — the serving layer's
// warm-reuse entry point. Config-level variant knobs (Base's
// IgnoreHints, Params.Uniform) cannot be applied to an already-built
// runtime; Base still runs without locality because its spawns carry
// no affinity options and its columns are not distributed.
func RunOn(rt *cool.Runtime, v Variant, prm Params) (Result, error) {
	prm = prm.normalize()
	ap := build(rt, prm, v != Base)
	if err := rt.Run(func(ctx *cool.Ctx) { ap.run(ctx, v) }); err != nil {
		return Result{}, fmt.Errorf("gauss %v: %w", v, err)
	}
	if err := ap.validate(); err != nil {
		return Result{}, err
	}
	return Result{
		Cycles:   rt.ElapsedCycles(),
		Report:   rt.Report(),
		Checksum: ap.checksum(),
		Tasks:    rt.Report().Total.TasksRun,
	}, nil
}

// RunSerial performs the identical elimination in the main task.
func RunSerial(prm Params) (Result, error) {
	prm = prm.normalize()
	cfg := cool.Config{Processors: 1}
	if prm.Uniform {
		mc := machine.UniformBus(1)
		cfg.Machine = &mc
	}
	rt, err := cool.NewRuntime(cfg)
	if err != nil {
		return Result{}, err
	}
	ap := build(rt, prm, false)
	err = rt.Run(func(ctx *cool.Ctx) {
		for k := 0; k < prm.N-1; k++ {
			for j := k + 1; j < prm.N; j++ {
				ap.update(ctx, j, k)
			}
		}
	})
	if err != nil {
		return Result{}, fmt.Errorf("gauss serial: %w", err)
	}
	if err := ap.validate(); err != nil {
		return Result{}, err
	}
	return Result{
		Cycles:   rt.ElapsedCycles(),
		Report:   rt.Report(),
		Checksum: ap.checksum(),
	}, nil
}
