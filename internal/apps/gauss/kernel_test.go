package gauss

import (
	"math"
	"testing"

	cool "github.com/coolrts/cool"
)

// TestEliminationReducesToReference checks the column-oriented update
// sequence against a plain row-oriented Gaussian elimination of the same
// matrix.
func TestEliminationReducesToReference(t *testing.T) {
	n := 12
	prm := Params{N: n}
	rt, err := cool.NewRuntime(cool.Config{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	ap := build(rt, prm, false)

	// Reference: identical math on a host copy, row-oriented loops.
	ref := make([][]float64, n)
	for j := 0; j < n; j++ {
		ref[j] = make([]float64, n)
		copy(ref[j], ap.cols[j].Data)
	}
	for k := 0; k < n-1; k++ {
		for j := k + 1; j < n; j++ {
			m := ref[j][k] / ref[k][k]
			ref[j][k] = m
			for i := k + 1; i < n; i++ {
				ref[j][i] -= m * ref[k][i]
			}
		}
	}

	err = rt.Run(func(ctx *cool.Ctx) {
		for k := 0; k < n-1; k++ {
			for j := k + 1; j < n; j++ {
				ap.update(ctx, j, k)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if d := math.Abs(ap.cols[j].Data[i] - ref[j][i]); d > 1e-12 {
				t.Fatalf("col %d row %d: %v vs reference %v", j, i, ap.cols[j].Data[i], ref[j][i])
			}
		}
	}
}

// TestUpdateZeroesTargetRowConceptually: after update(j,k), the stored
// multiplier reproduces the eliminated value.
func TestUpdateStoresMultiplier(t *testing.T) {
	prm := Params{N: 8}
	rt, err := cool.NewRuntime(cool.Config{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	ap := build(rt, prm, false)
	origDst := ap.cols[3].Data[0]
	origSrc := ap.cols[0].Data[0]
	err = rt.Run(func(ctx *cool.Ctx) {
		ap.update(ctx, 3, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ap.cols[3].Data[0], origDst/origSrc; got != want {
		t.Fatalf("stored multiplier %v, want %v", got, want)
	}
}
