package gauss

import "testing"

func small() Params { return Params{N: 48} }

func TestSerialRuns(t *testing.T) {
	res, err := RunSerial(small())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Checksum == 0 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestParallelMatchesSerialBitwise(t *testing.T) {
	// Steps are barrier-separated and each update owns its destination
	// column, so results must be bitwise identical to serial.
	ser, err := RunSerial(small())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Variants {
		for _, procs := range []int{1, 4, 8} {
			res, err := Run(procs, v, small())
			if err != nil {
				t.Fatalf("%v/%d: %v", v, procs, err)
			}
			if res.Checksum != ser.Checksum {
				t.Fatalf("%v/%d: checksum mismatch", v, procs)
			}
		}
	}
}

func TestTaskCount(t *testing.T) {
	p := small()
	res, err := Run(4, TaskObject, p)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(p.N * (p.N - 1) / 2)
	if res.Tasks < want {
		t.Fatalf("tasks = %d, want >= %d", res.Tasks, want)
	}
}

func TestAffinitySpeedsUp(t *testing.T) {
	p := Params{N: 128}
	base, err := Run(8, Base, p)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(8, TaskObject, p)
	if err != nil {
		t.Fatal(err)
	}
	if float64(full.Cycles) > 1.02*float64(base.Cycles) {
		t.Fatalf("Task+Object (%d) not competitive with Base (%d)", full.Cycles, base.Cycles)
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(4, TaskObject, small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(4, TaskObject, small())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Fatal("non-deterministic")
	}
}
