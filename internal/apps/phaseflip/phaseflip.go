// Package phaseflip is a synthetic two-phase workload whose optimal
// stealing policy flips mid-run — the stress case for the adaptive
// affinity controller (Config.Adapt).
//
// Phase A runs a few serial object-bound chains, one per cluster-0
// server: each link spawns its successor at the START of its body, so
// the successor sits queued behind its running predecessor as the
// server's only queued task. A single queued object-bound task is
// refused by the paper's reluctant-stealing rule, so the chains are
// pure probe bait: under flat (cross-cluster) stealing every chain
// enqueue wakes idle processors machine-wide, and each woken thief is
// charged a failed remote-steal probe per chain server. Alongside the
// chains, the remaining processors run serial ping-pong pairs — each
// pair bounces one object-bound task between two neighbouring servers,
// so one side is always briefly idle waiting for the bounce. Under
// flat stealing that idle side is exactly who the chain wakes reach
// (lowest IDs first), so when its own link arrives the processor is
// still mid-probe-burst with its clock pushed ahead, and the link
// starts late. The slip accrues every bounce and the phase barrier
// waits for the pairs, so flat stealing stretches phase A's makespan.
// Cluster-restricted stealing confines woken processors to their own
// (empty or cheap-to-probe) cluster, so the pairs run clean and
// cluster-only wins phase A.
//
// Phase B floods the cluster-0 servers with a deep backlog of
// object-bound tasks. Backlogged object-bound work IS reluctantly
// stealable, so flat stealing spreads it across the whole machine,
// while cluster-only strands every worker outside cluster 0 — flat
// wins phase B by roughly the cluster count. No static policy wins
// both phases; a controller that flips cluster-only on during A (high
// failed-steal ratio) and off during B (starvation: deep backlog with
// most workers parked) beats either static.
package phaseflip

import (
	"fmt"
	"math"

	cool "github.com/coolrts/cool"
)

// Variant selects the affinity ablation.
type Variant int

const (
	// Base: hints ignored — tasks placed round-robin, no phase contrast.
	Base Variant = iota
	// Phases: the object-affinity version whose two phases want
	// opposite stealing policies.
	Phases
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Base:
		return "Base"
	case Phases:
		return "Phases"
	}
	return "unknown"
}

// Variants lists the ablation points in order.
var Variants = []Variant{Base, Phases}

// Work per task body, in simulated cycles. A chain step and a
// ping-pong link are the same length; each pair bounces Steps times,
// so the pairs outlast the chains and carry the accumulated slip into
// the phase barrier. A wave task is long enough that a one-time
// successful steal amortizes.
const (
	chainWork = 400
	pingWork  = 400
	waveWork  = 1000
)

// Phase A's fixed shapes: chains fill one DASH cluster's servers, and
// the ping-pong pairs cover the other twelve processors of the
// reference 16-processor machine. Both are independent of the actual
// processor count (placements wrap), so the work — and the checksum —
// is identical across machine sizes and against the serial reference.
const (
	chainCount = 4
	pairCount  = 6
)

// Params sizes the workload. No knob depends on the processor count.
type Params struct {
	Steps  int // phase A: links per chain (each pair bounces Steps times)
	Wave   int // phase B: total backlogged tasks
	Rounds int // A/B pairs, so the policy must flip repeatedly
}

// DefaultParams returns the standard workload.
func DefaultParams() Params { return Params{Steps: 600, Wave: 768, Rounds: 2} }

func (p Params) normalize() Params {
	d := DefaultParams()
	if p.Steps <= 0 {
		p.Steps = d.Steps
	}
	if p.Wave <= 0 {
		p.Wave = p.Steps
		if p.Wave < 8 {
			p.Wave = 8
		}
	}
	if p.Rounds <= 0 {
		p.Rounds = d.Rounds
	}
	return p
}

// turns is how many times each ping-pong pair bounces per round.
func (p Params) turns() int {
	t := p.Steps
	if t < 1 {
		t = 1
	}
	return t
}

// Result carries timing and correctness evidence.
type Result struct {
	Cycles   int64
	Report   cool.Report
	Checksum float64
	Tasks    int64
}

type app struct {
	prm  Params
	objs []*cool.F64 // one accumulator cell per chain, homed on its server
	pong []*cool.F64 // two cells per pair (flat: pair*2+side), each homed on its side
	wave *cool.F64   // one cell per wave task, disjoint writes
}

// build allocates the chain accumulators (one per cluster-0 server),
// the ping-pong cells (pair p bounces between processors 4+2p and
// 5+2p), and the wave buffer. All placements wrap modulo the machine
// size, so on smaller machines the shapes share servers while the
// data writes — and so the checksum — stay identical.
func build(rt *cool.Runtime, prm Params) *app {
	ap := &app{prm: prm}
	ap.objs = make([]*cool.F64, chainCount)
	for c := range ap.objs {
		ap.objs[c] = rt.NewF64Pages(1, c%rt.Processors())
	}
	ap.pong = make([]*cool.F64, 2*pairCount)
	for i := range ap.pong {
		ap.pong[i] = rt.NewF64Pages(1, (chainCount+i)%rt.Processors())
	}
	ap.wave = rt.NewF64Pages(prm.Wave, 0)
	return ap
}

// chainStep is one phase-A link: spawn the successor first (it parks
// as the server's lone queued task for this whole body), then work.
func (ap *app) chainStep(ctx *cool.Ctx, v Variant, c, step, round int) {
	if step+1 < ap.prm.Steps {
		ap.spawnLink(ctx, v, c, step+1, round)
	}
	d := ctx.WriteF64Range(ap.objs[c], 0, 1)
	d[0] += float64((step*31+c*17+round)%13) - 6
	ctx.Compute(chainWork)
}

func (ap *app) spawnLink(ctx *cool.Ctx, v Variant, c, step, round int) {
	body := func(cc *cool.Ctx) { ap.chainStep(cc, v, c, step, round) }
	if v == Phases {
		ctx.Spawn("chain", body, cool.ObjectAffinity(ap.objs[c].Base))
		return
	}
	ctx.Spawn("chain", body)
}

// pingStep is one ping-pong bounce: work against this side's cell,
// then spawn the next bounce on the partner side at the END of the
// body, so the partner's server sits empty — and its processor idle,
// soaking up chain wakes — for the whole duration of this link.
func (ap *app) pingStep(ctx *cool.Ctx, v Variant, pair, turn, round int) {
	d := ctx.WriteF64Range(ap.pong[pair*2+turn%2], 0, 1)
	d[0] += float64((turn*19+pair*7+round)%17) - 8
	ctx.Compute(pingWork)
	if turn+1 < ap.prm.turns() {
		ap.spawnBounce(ctx, v, pair, turn+1, round)
	}
}

func (ap *app) spawnBounce(ctx *cool.Ctx, v Variant, pair, turn, round int) {
	body := func(cc *cool.Ctx) { ap.pingStep(cc, v, pair, turn, round) }
	if v == Phases {
		ctx.Spawn("ping", body, cool.ObjectAffinity(ap.pong[pair*2+turn%2].Base))
		return
	}
	ctx.Spawn("ping", body)
}

// waveTask is one phase-B body: a disjoint write plus work.
func (ap *app) waveTask(ctx *cool.Ctx, i, round int) {
	d := ctx.WriteF64Range(ap.wave, i, i+1)
	d[0] += float64((i*7+round*3)%11) - 5
	ctx.Compute(waveWork)
}

// run alternates the two phases. Each phase is a barrier: the policy
// signal the controller sees is pure (all-A, then all-B).
func (ap *app) run(ctx *cool.Ctx, v Variant) {
	n := ap.prm.Wave
	optBuf := make([]cool.SpawnOpt, 1)
	for round := 0; round < ap.prm.Rounds; round++ {
		round := round
		// Phase A: one chain head per cluster-0 server, plus the
		// ping-pong pairs on the rest of the machine.
		ctx.WaitFor(func() {
			for c := 0; c < chainCount; c++ {
				ap.spawnLink(ctx, v, c, 0, round)
			}
			for pair := 0; pair < pairCount; pair++ {
				ap.spawnBounce(ctx, v, pair, 0, round)
			}
		})
		// Phase B: a deep object-bound backlog on the chain servers.
		ctx.WaitFor(func() {
			ctx.SpawnN("wave", n, func(cc *cool.Ctx, i int) {
				ap.waveTask(cc, i, round)
			}, func(i int) []cool.SpawnOpt {
				if v != Phases {
					return nil
				}
				optBuf[0] = cool.ObjectAffinity(ap.objs[i%chainCount].Base)
				return optBuf[:1]
			})
		})
	}
}

func (ap *app) checksum() float64 {
	var s float64
	for c, o := range ap.objs {
		s += o.Data[0] * float64(c+1)
	}
	for i, o := range ap.pong {
		s += o.Data[0] * float64(i%5+2)
	}
	for i, v := range ap.wave.Data {
		s += v * float64(i%23+1)
	}
	return s
}

func (ap *app) validate() error {
	for c, o := range ap.objs {
		if math.IsNaN(o.Data[0]) || math.IsInf(o.Data[0], 0) {
			return fmt.Errorf("phaseflip: non-finite chain accumulator %d", c)
		}
	}
	return nil
}

// Run executes the workload under the given variant.
func Run(procs int, v Variant, prm Params) (Result, error) {
	return RunWith(cool.Config{Processors: procs}, v, prm)
}

// RunWith executes the workload under an explicit base configuration;
// the variant's scheduling knobs are applied on top.
func RunWith(cfg cool.Config, v Variant, prm Params) (Result, error) {
	if v == Base {
		cfg.Sched.IgnoreHints = true
	}
	rt, err := cool.NewRuntime(cfg)
	if err != nil {
		return Result{}, err
	}
	return RunOn(rt, v, prm)
}

// RunOn executes the workload on an existing runtime that has not run
// yet. Base still runs without locality here: its spawns carry no
// affinity options.
func RunOn(rt *cool.Runtime, v Variant, prm Params) (Result, error) {
	prm = prm.normalize()
	ap := build(rt, prm)
	if err := rt.Run(func(ctx *cool.Ctx) { ap.run(ctx, v) }); err != nil {
		return Result{}, fmt.Errorf("phaseflip %v: %w", v, err)
	}
	if err := ap.validate(); err != nil {
		return Result{}, err
	}
	return Result{
		Cycles:   rt.ElapsedCycles(),
		Report:   rt.Report(),
		Checksum: ap.checksum(),
		Tasks:    rt.Report().Total.TasksRun,
	}, nil
}

// RunSerial performs the identical work in the main task.
func RunSerial(prm Params) (Result, error) {
	prm = prm.normalize()
	rt, err := cool.NewRuntime(cool.Config{Processors: 1})
	if err != nil {
		return Result{}, err
	}
	ap := build(rt, prm)
	err = rt.Run(func(ctx *cool.Ctx) {
		for round := 0; round < prm.Rounds; round++ {
			for c := 0; c < chainCount; c++ {
				for step := 0; step < prm.Steps; step++ {
					d := ctx.WriteF64Range(ap.objs[c], 0, 1)
					d[0] += float64((step*31+c*17+round)%13) - 6
					ctx.Compute(chainWork)
				}
			}
			for pair := 0; pair < pairCount; pair++ {
				for turn := 0; turn < prm.turns(); turn++ {
					d := ctx.WriteF64Range(ap.pong[pair*2+turn%2], 0, 1)
					d[0] += float64((turn*19+pair*7+round)%17) - 8
					ctx.Compute(pingWork)
				}
			}
			for i := 0; i < prm.Wave; i++ {
				ap.waveTask(ctx, i, round)
			}
		}
	})
	if err != nil {
		return Result{}, fmt.Errorf("phaseflip serial: %w", err)
	}
	return Result{
		Cycles:   rt.ElapsedCycles(),
		Report:   rt.Report(),
		Checksum: ap.checksum(),
	}, nil
}
