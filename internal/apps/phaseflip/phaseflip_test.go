package phaseflip

import (
	"testing"

	cool "github.com/coolrts/cool"
)

// TestChecksumMatchesSerial pins the workload's determinism: the same
// checksum from the serial reference and from parallel runs of both
// variants at several machine sizes.
func TestChecksumMatchesSerial(t *testing.T) {
	prm := Params{Steps: 40, Wave: 32, Rounds: 2}
	ref, err := RunSerial(prm)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 4, 16} {
		for _, v := range Variants {
			r, err := Run(procs, v, prm)
			if err != nil {
				t.Fatalf("P=%d %v: %v", procs, v, err)
			}
			if r.Checksum != ref.Checksum {
				t.Errorf("P=%d %v: checksum %v != serial %v", procs, v, r.Checksum, ref.Checksum)
			}
		}
	}
}

// TestPhasesPreferOppositePolicies is the workload's reason to exist:
// flat stealing must beat cluster-only on the whole run only because
// the phases disagree — cluster-only must win a chains-only run and
// flat must win a wave-only run, on the same machine.
func TestPhasesPreferOppositePolicies(t *testing.T) {
	const procs = 16
	run := func(clusterOnly bool, prm Params) int64 {
		t.Helper()
		cfg := cool.Config{Processors: procs}
		cfg.Sched.ClusterStealingOnly = clusterOnly
		r, err := RunWith(cfg, Phases, prm)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	chainsOnly := Params{Steps: 120, Wave: 8, Rounds: 1}
	if flat, cl := run(false, chainsOnly), run(true, chainsOnly); cl >= flat {
		t.Errorf("chain phase: cluster-only %d cycles, flat %d — cluster-only should win", cl, flat)
	}
	waveOnly := Params{Steps: 2, Wave: 640, Rounds: 1}
	if flat, cl := run(false, waveOnly), run(true, waveOnly); flat >= cl {
		t.Errorf("wave phase: flat %d cycles, cluster-only %d — flat should win", flat, cl)
	}
}

// TestAdaptiveFlipsBothWays runs the full two-phase workload under the
// controller and asserts it actually flipped cluster-only stealing on
// (phase A's failed-probe storm) and back off (phase B's starvation),
// with every decision carried in the report's trace.
func TestAdaptiveFlipsBothWays(t *testing.T) {
	cfg := cool.Config{
		Processors: 16,
		Adapt:      &cool.AdaptPolicy{Epoch: 20_000},
	}
	var rt *cool.Runtime
	restore := cool.CaptureRuntime(func(r *cool.Runtime) { rt = r })
	defer restore()
	r, err := RunWith(cfg, Phases, Params{Steps: 600, Wave: 768, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	var on, off bool
	for _, d := range r.Report.Decisions {
		if d.Knob == "cluster" {
			if d.To != 0 {
				on = true
			} else {
				off = true
			}
		}
	}
	if !on || !off {
		t.Fatalf("controller decisions flipped on=%v off=%v, want both (decisions: %d)",
			on, off, len(r.Report.Decisions))
	}
	// Every decision must reconstruct the final state.
	st, ok := rt.AdaptState()
	if !ok {
		t.Fatal("AdaptState reports no controller")
	}
	if got := cool.ReplayAdaptDecisions(cool.AdaptInitialState(cfg), r.Report.Decisions); got != st {
		t.Errorf("replayed state %+v != final state %+v", got, st)
	}
}
