package blockcho

import (
	"math"
	"testing"

	cool "github.com/coolrts/cool"
)

// kernelApp builds a tiny 2×2-block app for kernel-level checks.
func kernelApp(t *testing.T) (*app, *cool.Runtime) {
	t.Helper()
	prm, err := Params{N: 8, B: 4}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cool.NewRuntime(cool.Config{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	return build(rt, prm, false), rt
}

func TestPotrfFactorsDiagonalBlock(t *testing.T) {
	ap, rt := kernelApp(t)
	b := ap.prm.B
	orig := make([]float64, b*b)
	copy(orig, ap.blks[ap.blockIdx(0, 0)].Data)
	err := rt.Run(func(ctx *cool.Ctx) { ap.potrf(ctx, 0) })
	if err != nil {
		t.Fatal(err)
	}
	l := ap.blks[ap.blockIdx(0, 0)].Data
	// L Lᵀ must reproduce the original block.
	for r := 0; r < b; r++ {
		for c := 0; c <= r; c++ {
			var s float64
			for k := 0; k <= c; k++ {
				s += l[r*b+k] * l[c*b+k]
			}
			if d := math.Abs(s - orig[r*b+c]); d > 1e-12 {
				t.Fatalf("LLᵀ[%d][%d] = %v, want %v", r, c, s, orig[r*b+c])
			}
		}
	}
	// Strict upper triangle zeroed.
	for r := 0; r < b; r++ {
		for c := r + 1; c < b; c++ {
			if l[r*b+c] != 0 {
				t.Fatalf("upper entry (%d,%d) = %v", r, c, l[r*b+c])
			}
		}
	}
}

func TestTrsmSolvesAgainstDiagonal(t *testing.T) {
	ap, rt := kernelApp(t)
	b := ap.prm.B
	orig := make([]float64, b*b)
	copy(orig, ap.blks[ap.blockIdx(1, 0)].Data)
	err := rt.Run(func(ctx *cool.Ctx) {
		ap.potrf(ctx, 0)
		ap.trsm(ctx, 1, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	l := ap.blks[ap.blockIdx(0, 0)].Data
	x := ap.blks[ap.blockIdx(1, 0)].Data
	// X · Lᵀ must reproduce the original off-diagonal block.
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			var s float64
			for k := 0; k <= c; k++ {
				s += x[r*b+k] * l[c*b+k]
			}
			if d := math.Abs(s - orig[r*b+c]); d > 1e-12 {
				t.Fatalf("XLᵀ[%d][%d] = %v, want %v", r, c, s, orig[r*b+c])
			}
		}
	}
}

func TestGemmSubtractsOuterProduct(t *testing.T) {
	ap, rt := kernelApp(t)
	b := ap.prm.B
	s1 := ap.blks[ap.blockIdx(1, 0)].Data
	dstID := ap.blockIdx(1, 1)
	before := make([]float64, b*b)
	copy(before, ap.blks[dstID].Data)
	err := rt.Run(func(ctx *cool.Ctx) { ap.gemm(ctx, 1, 1, 0) })
	if err != nil {
		t.Fatal(err)
	}
	after := ap.blks[dstID].Data
	for r := 0; r < b; r++ {
		for c := 0; c <= r; c++ { // diagonal block: lower triangle only
			var s float64
			for k := 0; k < b; k++ {
				s += s1[r*b+k] * s1[c*b+k]
			}
			if d := math.Abs(after[r*b+c] - (before[r*b+c] - s)); d > 1e-12 {
				t.Fatalf("gemm[%d][%d] wrong by %v", r, c, d)
			}
		}
	}
}
