// Package blockcho is the Block Cholesky case study (paper §6.4):
// right-looking dense Cholesky factorization with the matrix stored as a
// 2-D array of blocks. Tasks are per-block operations — potrf of a
// diagonal block, triangular solves (trsm) of the blocks below it, and
// rank-k updates (gemm) of trailing blocks — linked by counters guarded
// by per-block monitors. Affinity hints collocate each task with the
// block it writes (OBJECT) and group tasks reading a common source block
// (TASK), and blocks are distributed round-robin across memories.
package blockcho

import (
	"fmt"
	"math"

	cool "github.com/coolrts/cool"
)

// Variant selects the program version of Figure 16.
type Variant int

const (
	// Base: blocks in one memory, hints ignored.
	Base Variant = iota
	// AffDistr: blocks distributed, affinity hints honoured.
	AffDistr
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Base:
		return "Base"
	case AffDistr:
		return "Affinity+Distr"
	}
	return "unknown"
}

// Variants lists the program versions in order.
var Variants = []Variant{Base, AffDistr}

// Params sizes the workload.
type Params struct {
	N int // matrix dimension
	B int // block size
}

// DefaultParams returns the standard workload (12×12 blocks of 32).
func DefaultParams() Params { return Params{N: 384, B: 32} }

func (p Params) normalize() (Params, error) {
	d := DefaultParams()
	if p.N <= 0 {
		p.N = d.N
	}
	if p.B <= 0 {
		p.B = d.B
	}
	if p.N%p.B != 0 {
		return p, fmt.Errorf("blockcho: N (%d) must be divisible by B (%d)", p.N, p.B)
	}
	return p, nil
}

// Result carries timing and correctness evidence.
type Result struct {
	Cycles  int64
	Report  cool.Report
	MaxDiff float64 // vs the unblocked host reference factor
	Blocks  int
	Tasks   int64
}

type app struct {
	prm  Params
	nb   int
	blks []*cool.F64 // lower blocks, packed by blockIdx
	mons []*cool.Monitor
	rem  []int32 // outstanding prerequisites per block
	done []bool  // trsm/potrf completed, guarded by colMon of its column
	cols []*cool.Monitor
}

// blockIdx packs lower-triangular block coordinates (i >= j).
func (ap *app) blockIdx(i, j int) int { return i*(i+1)/2 + j }

func build(rt *cool.Runtime, prm Params, distribute bool) *app {
	nb := prm.N / prm.B
	ap := &app{prm: prm, nb: nb}
	nblk := nb * (nb + 1) / 2
	ap.blks = make([]*cool.F64, nblk)
	ap.mons = make([]*cool.Monitor, nblk)
	ap.rem = make([]int32, nblk)
	ap.done = make([]bool, nblk)
	ap.cols = make([]*cool.Monitor, nb)
	for j := 0; j < nb; j++ {
		ap.cols[j] = rt.NewMonitor(0)
	}
	for i := 0; i < nb; i++ {
		for j := 0; j <= i; j++ {
			id := ap.blockIdx(i, j)
			proc := 0
			if distribute {
				proc = id % rt.Processors()
			}
			arr := rt.NewF64Pages(prm.B*prm.B, proc)
			ap.blks[id] = arr
			ap.mons[id] = rt.NewMonitor(arr.Base)
			// Prerequisites: j gemm updates, plus potrf(j) for
			// off-diagonal blocks.
			ap.rem[id] = int32(j)
			if i != j {
				ap.rem[id]++
			}
			// Initial values: symmetric diagonally dominant matrix
			// a[r][c] = N for r==c else 1/(1+|r-c|).
			for br := 0; br < prm.B; br++ {
				for bc := 0; bc < prm.B; bc++ {
					r, c := i*prm.B+br, j*prm.B+bc
					arr.Data[br*prm.B+bc] = element(prm.N, r, c)
				}
			}
		}
	}
	return ap
}

func element(n, r, c int) float64 {
	if r == c {
		return float64(n)
	}
	d := r - c
	if d < 0 {
		d = -d
	}
	return 1 / float64(1+d)
}

// readBlock charges a read of a whole block.
func readBlock(ctx *cool.Ctx, a *cool.F64) {
	ctx.Access(a.Base, int64(a.Len())*8, false)
}

// writeBlock charges a write of a whole block.
func writeBlock(ctx *cool.Ctx, a *cool.F64) {
	ctx.Access(a.Base, int64(a.Len())*8, true)
}

// potrf factors a diagonal block in place (dense Cholesky).
func (ap *app) potrf(ctx *cool.Ctx, j int) {
	b := ap.prm.B
	a := ap.blks[ap.blockIdx(j, j)].Data
	for k := 0; k < b; k++ {
		d := a[k*b+k]
		if d <= 0 || math.IsNaN(d) {
			panic(fmt.Sprintf("blockcho: not positive definite at block %d, pivot %g", j, d))
		}
		d = math.Sqrt(d)
		a[k*b+k] = d
		for i := k + 1; i < b; i++ {
			a[i*b+k] /= d
		}
		for i := k + 1; i < b; i++ {
			lik := a[i*b+k]
			for c := k + 1; c <= i; c++ {
				a[i*b+c] -= lik * a[c*b+k]
			}
		}
		// Zero the strict upper triangle of the factored block.
		for c := k + 1; c < b; c++ {
			a[k*b+c] = 0
		}
	}
	writeBlock(ctx, ap.blks[ap.blockIdx(j, j)])
	ctx.Compute(int64(b) * int64(b) * int64(b) / 3)
}

// trsm solves X · L(j,j)ᵀ = A(i,j) in place: X[r][c] depends on the
// already-computed X[r][<c].
func (ap *app) trsm(ctx *cool.Ctx, i, j int) {
	b := ap.prm.B
	l := ap.blks[ap.blockIdx(j, j)].Data
	x := ap.blks[ap.blockIdx(i, j)].Data
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			s := x[r*b+c]
			for k := 0; k < c; k++ {
				s -= x[r*b+k] * l[c*b+k]
			}
			x[r*b+c] = s / l[c*b+c]
		}
	}
	readBlock(ctx, ap.blks[ap.blockIdx(j, j)])
	writeBlock(ctx, ap.blks[ap.blockIdx(i, j)])
	ctx.Compute(int64(b) * int64(b) * int64(b))
}

// gemm applies A(i,j) -= L(i,k) · L(j,k)ᵀ.
func (ap *app) gemm(ctx *cool.Ctx, i, j, k int) {
	b := ap.prm.B
	s1 := ap.blks[ap.blockIdx(i, k)].Data
	s2 := ap.blks[ap.blockIdx(j, k)].Data
	d := ap.blks[ap.blockIdx(i, j)].Data
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			if i == j && c > r {
				continue // only the lower triangle of a diagonal block
			}
			s := 0.0
			for t := 0; t < b; t++ {
				s += s1[r*b+t] * s2[c*b+t]
			}
			d[r*b+c] -= s
		}
	}
	readBlock(ctx, ap.blks[ap.blockIdx(i, k)])
	readBlock(ctx, ap.blks[ap.blockIdx(j, k)])
	writeBlock(ctx, ap.blks[ap.blockIdx(i, j)])
	ctx.Compute(2 * int64(b) * int64(b) * int64(b))
}

// arrive decrements block (i,j)'s prerequisite count (the caller holds
// its monitor) and spawns its operation when ready.
func (ap *app) arrive(c *cool.Ctx, i, j int) {
	id := ap.blockIdx(i, j)
	ap.rem[id]--
	if ap.rem[id] != 0 {
		return
	}
	if i == j {
		ap.spawnPotrf(c, j)
	} else {
		ap.spawnTrsm(c, i, j)
	}
}

// spawnPotrf launches the diagonal factorization of column j. On
// completion it releases every block below in the column.
func (ap *app) spawnPotrf(ctx *cool.Ctx, j int) {
	id := ap.blockIdx(j, j)
	ctx.Spawn("potrf", func(c *cool.Ctx) {
		ap.potrf(c, j)
		c.Lock(ap.cols[j])
		ap.done[id] = true
		c.Unlock(ap.cols[j])
		for i := j + 1; i < ap.nb; i++ {
			ap.spawnNotify(c, i, j)
		}
	}, cool.OnObject(ap.blks[id].Base))
}

// spawnNotify delivers potrf(j)'s completion to block (i,j) under its
// monitor (a zero-work mutex task, keeping all counter updates atomic).
func (ap *app) spawnNotify(ctx *cool.Ctx, i, j int) {
	id := ap.blockIdx(i, j)
	ctx.Spawn("notify", func(c *cool.Ctx) {
		ap.arrive(c, i, j)
	}, cool.ObjectAffinity(ap.blks[id].Base), cool.WithMutex(ap.mons[id]))
}

// spawnTrsm launches the triangular solve of block (i,j); on completion
// it spawns the gemm updates pairing it with every finished trsm of the
// column.
func (ap *app) spawnTrsm(ctx *cool.Ctx, i, j int) {
	id := ap.blockIdx(i, j)
	diag := ap.blockIdx(j, j)
	ctx.Spawn("trsm", func(c *cool.Ctx) {
		ap.trsm(c, i, j)
		c.Lock(ap.cols[j])
		ap.done[id] = true
		var partners []int
		for i2 := j + 1; i2 < ap.nb; i2++ {
			if ap.done[ap.blockIdx(i2, j)] {
				partners = append(partners, i2)
			}
		}
		c.Unlock(ap.cols[j])
		for _, i2 := range partners {
			hi, lo := i, i2
			if hi < lo {
				hi, lo = lo, hi
			}
			ap.spawnGemm(c, hi, lo, j)
		}
	},
		cool.TaskAffinity(ap.blks[diag].Base),
		cool.ObjectAffinity(ap.blks[id].Base),
	)
}

// spawnGemm launches the update of block (i,j) from column k: a mutex
// function on the destination with affinity(src, TASK) and
// affinity(dst, OBJECT), mirroring Panel Cholesky's UpdatePanel.
func (ap *app) spawnGemm(ctx *cool.Ctx, i, j, k int) {
	id := ap.blockIdx(i, j)
	src := ap.blockIdx(i, k)
	ctx.Spawn("gemm", func(c *cool.Ctx) {
		ap.gemm(c, i, j, k)
		ap.arrive(c, i, j)
	},
		cool.TaskAffinity(ap.blks[src].Base),
		cool.ObjectAffinity(ap.blks[id].Base),
		cool.WithMutex(ap.mons[id]),
	)
}

// Run factors the workload on procs processors under the given variant.
func Run(procs int, v Variant, prm Params) (Result, error) {
	return RunWith(cool.Config{Processors: procs}, v, prm)
}

// RunWith factors the workload under an explicit base configuration
// (fault plans, retry policy, deadline); the variant's scheduling knobs
// are applied on top.
func RunWith(cfg cool.Config, v Variant, prm Params) (Result, error) {
	prm, err := prm.normalize()
	if err != nil {
		return Result{}, err
	}
	if v == Base {
		cfg.Sched.IgnoreHints = true
	}
	rt, err := cool.NewRuntime(cfg)
	if err != nil {
		return Result{}, err
	}
	return RunOn(rt, v, prm)
}

// RunOn factors the workload on an existing runtime that has not run
// yet (fresh from NewRuntime or Reset) — the serving layer's
// warm-reuse entry point. Base's IgnoreHints knob cannot be applied to
// an already-built runtime; its blocks stay undistributed either way.
func RunOn(rt *cool.Runtime, v Variant, prm Params) (Result, error) {
	prm, err := prm.normalize()
	if err != nil {
		return Result{}, err
	}
	ap := build(rt, prm, v == AffDistr)
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			ap.spawnPotrf(ctx, 0)
		})
	})
	if err != nil {
		return Result{}, fmt.Errorf("blockcho %v: %w", v, err)
	}
	return ap.finish(rt)
}

// RunSerial performs the same blocked factorization sequentially.
func RunSerial(prm Params) (Result, error) {
	prm, err := prm.normalize()
	if err != nil {
		return Result{}, err
	}
	rt, err := cool.NewRuntime(cool.Config{Processors: 1})
	if err != nil {
		return Result{}, err
	}
	ap := build(rt, prm, false)
	err = rt.Run(func(ctx *cool.Ctx) {
		for k := 0; k < ap.nb; k++ {
			ap.potrf(ctx, k)
			for i := k + 1; i < ap.nb; i++ {
				ap.trsm(ctx, i, k)
			}
			for j := k + 1; j < ap.nb; j++ {
				for i := j; i < ap.nb; i++ {
					ap.gemm(ctx, i, j, k)
				}
			}
		}
	})
	if err != nil {
		return Result{}, fmt.Errorf("blockcho serial: %w", err)
	}
	return ap.finish(rt)
}

// finish compares the blocked factor against an unblocked host-side
// Cholesky of the same matrix.
func (ap *app) finish(rt *cool.Runtime) (Result, error) {
	n, b := ap.prm.N, ap.prm.B
	ref := make([]float64, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c <= r; c++ {
			ref[r*n+c] = element(n, r, c)
		}
	}
	for k := 0; k < n; k++ {
		d := math.Sqrt(ref[k*n+k])
		ref[k*n+k] = d
		for i := k + 1; i < n; i++ {
			ref[i*n+k] /= d
		}
		for i := k + 1; i < n; i++ {
			for c := k + 1; c <= i; c++ {
				ref[i*n+c] -= ref[i*n+k] * ref[c*n+k]
			}
		}
	}
	var maxDiff float64
	for i := 0; i < ap.nb; i++ {
		for j := 0; j <= i; j++ {
			blk := ap.blks[ap.blockIdx(i, j)].Data
			for br := 0; br < b; br++ {
				for bc := 0; bc < b; bc++ {
					r, c := i*b+br, j*b+bc
					if c > r {
						continue
					}
					if d := math.Abs(blk[br*b+bc] - ref[r*n+c]); d > maxDiff {
						maxDiff = d
					}
				}
			}
		}
	}
	res := Result{
		Cycles:  rt.ElapsedCycles(),
		Report:  rt.Report(),
		MaxDiff: maxDiff,
		Blocks:  len(ap.blks),
		Tasks:   rt.Report().Total.TasksRun,
	}
	if maxDiff > 1e-8 {
		return res, fmt.Errorf("blockcho: factor differs from reference by %g", maxDiff)
	}
	return res, nil
}
