package blockcho

import "testing"

func small() Params { return Params{N: 96, B: 16} }

func TestSerialFactors(t *testing.T) {
	res, err := RunSerial(small())
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDiff > 1e-10 {
		t.Fatalf("serial blocked factor differs from unblocked by %g", res.MaxDiff)
	}
	if res.Blocks != 21 {
		t.Fatalf("blocks = %d, want 21", res.Blocks)
	}
}

func TestParallelCorrectAllVariants(t *testing.T) {
	for _, v := range Variants {
		for _, procs := range []int{1, 4, 8} {
			res, err := Run(procs, v, small())
			if err != nil {
				t.Fatalf("%v/%d: %v", v, procs, err)
			}
			// potrf + trsm + notify + gemm tasks must all have run.
			if res.Tasks < 21 {
				t.Fatalf("%v/%d: only %d tasks", v, procs, res.Tasks)
			}
		}
	}
}

func TestParallelSpeedup(t *testing.T) {
	p := Params{N: 256, B: 32}
	ser, err := RunSerial(p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(8, AffDistr, p)
	if err != nil {
		t.Fatal(err)
	}
	if sp := float64(ser.Cycles) / float64(par.Cycles); sp < 2.5 {
		t.Fatalf("speedup on 8 procs = %.2f, want >= 2.5", sp)
	}
}

func TestAffinityNotWorseThanBase(t *testing.T) {
	p := Params{N: 256, B: 32}
	base, err := Run(16, Base, p)
	if err != nil {
		t.Fatal(err)
	}
	aff, err := Run(16, AffDistr, p)
	if err != nil {
		t.Fatal(err)
	}
	if float64(aff.Cycles) > 1.05*float64(base.Cycles) {
		t.Fatalf("affinity (%d) worse than base (%d)", aff.Cycles, base.Cycles)
	}
}

func TestBadParams(t *testing.T) {
	if _, err := RunSerial(Params{N: 100, B: 32}); err == nil {
		t.Fatal("indivisible N accepted")
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(4, AffDistr, small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(4, AffDistr, small())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Fatal("non-deterministic")
	}
}
