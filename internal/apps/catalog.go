package apps

import (
	"fmt"
	"sort"

	cool "github.com/coolrts/cool"
)

// This file is the serving job catalog: the registry entries a
// long-lived deployment (cmd/coolserve, coolbench -bench-serve)
// exposes as submittable job kinds, each with named size presets. The
// catalog exists so the serving layer and the benches stop duplicating
// app wiring — a job submission names (app, size) and the catalog
// resolves the variant and workload parameters.

// CatalogEntry describes one servable job kind.
type CatalogEntry struct {
	App string
	// Variant is the program version a serving deployment runs: the
	// app's full-affinity variant, whose hints work on a warm runtime
	// (config-level variant knobs such as IgnoreHints cannot change
	// after NewRuntime, so Base-style variants are not served).
	Variant string
	// Sizes maps the preset names ("small", "medium", "large") to the
	// app-specific size integer Run/RunOn take. Presets respect each
	// app's divisibility constraints (ocean N%32, barneshut Bodies%64,
	// blockcho N%32).
	Sizes map[string]int
}

// catalog is keyed by app name. Small presets are sized so an e2e test
// can stream hundreds of jobs through warm native runtimes in seconds.
var catalog = map[string]CatalogEntry{
	"pancho":     {App: "pancho", Variant: "Distr+Aff", Sizes: map[string]int{"small": 32, "medium": 64, "large": 96}},
	"ocean":      {App: "ocean", Variant: "Distr+Aff", Sizes: map[string]int{"small": 64, "medium": 128, "large": 192}},
	"locusroute": {App: "locusroute", Variant: "Affinity+ObjectDistr", Sizes: map[string]int{"small": 6, "medium": 12, "large": 24}},
	"blockcho":   {App: "blockcho", Variant: "Affinity+Distr", Sizes: map[string]int{"small": 128, "medium": 256, "large": 384}},
	"barneshut":  {App: "barneshut", Variant: "Affinity+Distr", Sizes: map[string]int{"small": 256, "medium": 1024, "large": 2048}},
	"gauss":      {App: "gauss", Variant: "Task+Object", Sizes: map[string]int{"small": 48, "medium": 96, "large": 192}},
	"phaseflip":  {App: "phaseflip", Variant: "Phases", Sizes: map[string]int{"small": 120, "medium": 300, "large": 600}},
}

// CatalogNames lists the servable job kinds, sorted.
func CatalogNames() []string {
	out := make([]string, 0, len(catalog))
	for name := range catalog {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CatalogLookup finds a servable job kind by app name.
func CatalogLookup(app string) (CatalogEntry, bool) {
	e, ok := catalog[app]
	return e, ok
}

// CatalogSize resolves a preset name ("" means "small") to the
// app-specific size integer.
func CatalogSize(app, size string) (int, error) {
	e, ok := catalog[app]
	if !ok {
		return 0, fmt.Errorf("apps: no servable job kind %q (have %v)", app, CatalogNames())
	}
	if size == "" {
		size = "small"
	}
	n, ok := e.Sizes[size]
	if !ok {
		return 0, fmt.Errorf("apps: %s has no size preset %q (have small, medium, large)", app, size)
	}
	return n, nil
}

// RunCatalogOn executes one catalog job on an existing runtime that
// has not run yet (fresh from NewRuntime or Runtime.Reset) — the
// serving layer's per-job entry point.
func RunCatalogOn(rt *cool.Runtime, app, size string) (Result, error) {
	return RunCatalogPrepared(rt, app, size, nil)
}

// CatalogHasPrepare reports whether a job kind has a separable analyze
// phase — whether PrepareCatalog would return a reusable handle. Cheap:
// callers use it to skip residency bookkeeping for apps that have
// nothing to keep resident.
func CatalogHasPrepare(app string) bool {
	e, ok := catalog[app]
	if !ok {
		return false
	}
	a, ok := Lookup(e.App)
	return ok && a.Prepare != nil
}

// PrepareCatalog runs a catalog job kind's analyze phase and returns
// the reusable handle, or (nil, nil) when the app has no separable
// analyze phase. The handle is read-only across runs: a serving layer
// may cache it and replay any number of (app, size) jobs through
// RunCatalogPrepared.
func PrepareCatalog(app, size string) (any, error) {
	e, ok := catalog[app]
	if !ok {
		return nil, fmt.Errorf("apps: no servable job kind %q (have %v)", app, CatalogNames())
	}
	n, err := CatalogSize(app, size)
	if err != nil {
		return nil, err
	}
	a, ok := Lookup(e.App)
	if !ok {
		return nil, fmt.Errorf("apps: catalog entry %q names unregistered app %q", app, e.App)
	}
	if a.Prepare == nil {
		return nil, nil
	}
	return a.Prepare(n)
}

// RunCatalogPrepared executes one catalog job, reusing prep from
// PrepareCatalog for the same (app, size) when non-nil; a nil prep runs
// the analyze phase inline.
func RunCatalogPrepared(rt *cool.Runtime, app, size string, prep any) (Result, error) {
	e, ok := catalog[app]
	if !ok {
		return Result{}, fmt.Errorf("apps: no servable job kind %q (have %v)", app, CatalogNames())
	}
	n, err := CatalogSize(app, size)
	if err != nil {
		return Result{}, err
	}
	a, ok := Lookup(e.App)
	if !ok {
		return Result{}, fmt.Errorf("apps: catalog entry %q names unregistered app %q", app, e.App)
	}
	if prep != nil && a.RunOnPrepared != nil {
		return a.RunOnPrepared(rt, e.Variant, n, prep)
	}
	return a.RunOn(rt, e.Variant, n)
}
