package locusroute

import (
	"testing"
	"testing/quick"

	cool "github.com/coolrts/cool"
)

func testApp(t *testing.T) (*app, *cool.Runtime) {
	t.Helper()
	prm, err := Params{W: 64, H: 32, Regions: 4, WiresPer: 2, Iterations: 1, Seed: 1}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cool.NewRuntime(cool.Config{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	return build(rt, prm, false), rt
}

// TestWalkVisitsExpectedCellCount: an L-route covers |dx|+1 horizontal
// cells and |dy|+1 vertical cells.
func TestWalkVisitsExpectedCellCount(t *testing.T) {
	ap, _ := testApp(t)
	f := func(x1r, y1r, x2r, y2r uint8, horizFirst bool) bool {
		w := &wire{
			x1: int(x1r) % ap.prm.W, y1: int(y1r) % ap.prm.H,
			x2: int(x2r) % ap.prm.W, y2: int(y2r) % ap.prm.H,
		}
		h, v := 0, 0
		ap.walk(w, horizFirst, func(idx int, horiz bool) {
			if horiz {
				h++
			} else {
				v++
			}
			if idx < 0 || idx+1 >= ap.prm.W*ap.prm.H*2 {
				t.Fatalf("cell index %d out of range", idx)
			}
		})
		dx, dy := w.x2-w.x1, w.y2-w.y1
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return h == dx+1 && v == dy+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLayRipRoundTrip: laying then ripping a route restores the array.
func TestLayRipRoundTrip(t *testing.T) {
	ap, rt := testApp(t)
	err := rt.Run(func(ctx *cool.Ctx) {
		w := &ap.wires[0]
		w.horizFirst = true
		ap.lay(ctx, w, +1)
		nonzero := 0
		for _, v := range ap.cost.Data {
			if v != 0 {
				nonzero++
			}
		}
		if nonzero == 0 {
			t.Error("lay wrote nothing")
		}
		ap.lay(ctx, w, -1)
		for i, v := range ap.cost.Data {
			if v != 0 {
				t.Errorf("cell %d = %d after rip", i, v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPathCostCountsCongestion: the cost of a candidate grows with the
// congestion already laid along it.
func TestPathCostCountsCongestion(t *testing.T) {
	ap, rt := testApp(t)
	err := rt.Run(func(ctx *cool.Ctx) {
		w := &wire{x1: 1, y1: 1, x2: 5, y2: 4}
		empty := ap.pathCost(ctx, w, true)
		// Lay an overlapping wire, then re-evaluate.
		w2 := &wire{x1: 1, y1: 1, x2: 5, y2: 1, horizFirst: true}
		ap.lay(ctx, w2, +1)
		congested := ap.pathCost(ctx, w, true)
		if congested <= empty {
			t.Errorf("cost ignored congestion: %d vs %d", congested, empty)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRegionOfMidpoint: the region function uses the wire midpoint, as in
// Figure 9.
func TestRegionOfMidpoint(t *testing.T) {
	ap, _ := testApp(t)
	strip := ap.prm.W / ap.prm.Regions
	w := &wire{x1: 0, x2: 2*strip + 2} // midpoint in strip 1
	if got := ap.region(w); got != 1 {
		t.Fatalf("region = %d, want 1", got)
	}
}

// TestGenerateIsDeterministic: same seed, same circuit.
func TestGenerateIsDeterministic(t *testing.T) {
	p := DefaultParams()
	a := generate(p)
	b := generate(p)
	if len(a) != len(b) {
		t.Fatal("wire counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wire %d differs", i)
		}
	}
}
