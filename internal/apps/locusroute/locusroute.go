// Package locusroute is the LocusRoute case study (paper §6.2): a
// standard-cell router that iteratively rips up and re-routes wires,
// evaluating candidate routes against a shared CostArray of per-cell
// congestion counts. Locality lives in the CostArray: wires whose pins
// fall in the same geographic region touch the same part of the array, so
// the COOL program (Figure 9) assigns each region to a processor and
// routes a region's wires there via processor affinity; distributing the
// CostArray regions across memories converts the remaining misses from
// remote to local.
//
// As in the paper, the input is a synthetic dense circuit: wires
// clustered within vertical regions of the array, with a fraction
// spanning neighbouring regions.
package locusroute

import (
	"fmt"
	"math/rand"

	cool "github.com/coolrts/cool"
)

// Variant selects the program version of Figure 10.
type Variant int

const (
	// Base: wire tasks scheduled round-robin without regard for locality.
	Base Variant = iota
	// Affinity: processor affinity by the wire's CostArray region.
	Affinity
	// AffinityDistr: Affinity plus physical distribution of the
	// CostArray regions across the processors' memories.
	AffinityDistr
)

// String names the variant as in the figure legend.
func (v Variant) String() string {
	switch v {
	case Base:
		return "Base"
	case Affinity:
		return "Affinity"
	case AffinityDistr:
		return "Affinity+ObjectDistr"
	}
	return "unknown"
}

// Variants lists the program versions in order.
var Variants = []Variant{Base, Affinity, AffinityDistr}

// Params sizes the synthetic circuit.
type Params struct {
	W, H       int     // routing cells
	Regions    int     // vertical strips of the CostArray
	WiresPer   int     // wires per region
	CrossFrac  float64 // fraction of wires spanning two regions
	Iterations int
	Seed       int64
}

// DefaultParams returns the standard synthetic circuit.
func DefaultParams() Params {
	return Params{W: 512, H: 64, Regions: 32, WiresPer: 24, CrossFrac: 0.1, Iterations: 3, Seed: 7}
}

func (p Params) normalize() (Params, error) {
	d := DefaultParams()
	if p.W <= 0 {
		p.W = d.W
	}
	if p.H <= 0 {
		p.H = d.H
	}
	if p.Regions <= 0 {
		p.Regions = d.Regions
	}
	if p.WiresPer <= 0 {
		p.WiresPer = d.WiresPer
	}
	if p.CrossFrac < 0 {
		p.CrossFrac = d.CrossFrac
	}
	if p.Iterations <= 0 {
		p.Iterations = d.Iterations
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	if p.W%p.Regions != 0 {
		return p, fmt.Errorf("locusroute: W (%d) must be divisible by Regions (%d)", p.W, p.Regions)
	}
	return p, nil
}

// wire is one two-pin wire; route remembers the laid path for rip-up.
type wire struct {
	x1, y1, x2, y2 int
	routed         bool
	horizFirst     bool // which L-shape is laid
}

// Result carries timing, correctness evidence and the routing quality.
type Result struct {
	Cycles     int64
	Report     cool.Report
	TotalCost  int64 // sum over cells of h²+v² (congestion metric)
	Wires      int
	Consistent bool // CostArray rebuilt from final routes matches
	Tasks      int64
}

type app struct {
	prm   Params
	cost  *cool.I64 // column-major: cell (x,y) = (x*H+y)*2 { +0: h, +1: v }
	wires []wire
}

func generate(prm Params) []wire {
	rng := rand.New(rand.NewSource(prm.Seed))
	strip := prm.W / prm.Regions
	var wires []wire
	for r := 0; r < prm.Regions; r++ {
		x0 := r * strip
		for i := 0; i < prm.WiresPer; i++ {
			w := wire{}
			w.x1 = x0 + rng.Intn(strip)
			w.y1 = rng.Intn(prm.H)
			if rng.Float64() < prm.CrossFrac && r+1 < prm.Regions {
				w.x2 = x0 + strip + rng.Intn(strip) // spans next region
			} else {
				w.x2 = x0 + rng.Intn(strip)
			}
			w.y2 = rng.Intn(prm.H)
			wires = append(wires, w)
		}
	}
	return wires
}

func build(rt *cool.Runtime, prm Params, distribute bool) *app {
	a := &app{prm: prm, wires: generate(prm)}
	a.cost = rt.NewI64Pages(prm.W*prm.H*2, 0)
	if distribute {
		strip := prm.W / prm.Regions
		bytesPerStrip := int64(strip * prm.H * 2 * 8)
		for r := 0; r < prm.Regions; r++ {
			rt.Migrate(a.cost.Addr(r*strip*prm.H*2), bytesPerStrip, r%rt.Processors())
		}
	}
	return a
}

// region returns the CostArray region of the wire's midpoint (the
// paper's Region(CurrentWire) function).
func (ap *app) region(w *wire) int {
	mid := (w.x1 + w.x2) / 2
	return mid / (ap.prm.W / ap.prm.Regions)
}

// cellIdx returns the element index of cell (x, y).
func (ap *app) cellIdx(x, y int) int { return (x*ap.prm.H + y) * 2 }

// pathCost evaluates one L-shaped candidate (reading the CostArray).
func (ap *app) pathCost(ctx *cool.Ctx, w *wire, horizFirst bool) int64 {
	var total int64
	ap.walk(w, horizFirst, func(idx int, horiz bool) {
		ctx.Access(ap.cost.Addr(idx), 16, false)
		off := 0
		if !horiz {
			off = 1
		}
		// Concurrent routers update the cell through AddI64; the atomic
		// load keeps the native backend race-free without changing the
		// simulated charge above.
		total += 1 + ctx.LoadI64(ap.cost, idx+off)
		ctx.Compute(3)
	})
	return total
}

// lay adds (delta=+1) or rips (delta=-1) the wire's chosen route.
func (ap *app) lay(ctx *cool.Ctx, w *wire, delta int64) {
	ap.walk(w, w.horizFirst, func(idx int, horiz bool) {
		off := 0
		if !horiz {
			off = 1
		}
		ctx.Access(ap.cost.Addr(idx+off), 8, true)
		ctx.AddI64(ap.cost, idx+off, delta)
		ctx.Compute(1)
	})
}

// walk visits the cells of one L-shaped route: the horizontal leg at the
// first pin's row and the vertical leg at the second pin's column (or the
// transpose when horizFirst is false).
func (ap *app) walk(w *wire, horizFirst bool, visit func(idx int, horiz bool)) {
	x1, y1, x2, y2 := w.x1, w.y1, w.x2, w.y2
	if !horizFirst {
		// Vertical first: equivalent to the transposed corner.
		// Vertical leg at x1 from y1 to y2, then horizontal at y2.
		for y := min(y1, y2); y <= max(y1, y2); y++ {
			visit(ap.cellIdx(x1, y), false)
		}
		for x := min(x1, x2); x <= max(x1, x2); x++ {
			visit(ap.cellIdx(x, y2), true)
		}
		return
	}
	for x := min(x1, x2); x <= max(x1, x2); x++ {
		visit(ap.cellIdx(x, y1), true)
	}
	for y := min(y1, y2); y <= max(y1, y2); y++ {
		visit(ap.cellIdx(x2, y), false)
	}
}

// route rips up the wire's previous path, evaluates both L-shapes, and
// lays the cheaper one (the paper's Route() wire task).
func (ap *app) route(ctx *cool.Ctx, w *wire) {
	if w.routed {
		ap.lay(ctx, w, -1)
		w.routed = false
	}
	ca := ap.pathCost(ctx, w, true)
	cb := ap.pathCost(ctx, w, false)
	w.horizFirst = ca <= cb
	w.routed = true
	ap.lay(ctx, w, +1)
}

// iteration routes every wire once inside a waitfor.
func (ap *app) iteration(ctx *cool.Ctx, procs int) {
	optBuf := make([]cool.SpawnOpt, 1)
	ctx.WaitFor(func() {
		ctx.SpawnN("route", len(ap.wires), func(c *cool.Ctx, i int) {
			ap.route(c, &ap.wires[i])
		}, func(i int) []cool.SpawnOpt {
			optBuf[0] = cool.OnProcessor(ap.region(&ap.wires[i]) % procs)
			return optBuf
		})
	})
}

// Run executes the router under the given variant.
func Run(procs int, v Variant, prm Params) (Result, error) {
	return RunWith(cool.Config{Processors: procs}, v, prm)
}

// RunWith executes the router under an explicit base configuration
// (fault plans, retry policy, deadline); the variant's scheduling knobs
// are applied on top.
func RunWith(cfg cool.Config, v Variant, prm Params) (Result, error) {
	prm, err := prm.normalize()
	if err != nil {
		return Result{}, err
	}
	if v == Base {
		cfg.Sched.IgnoreHints = true
	}
	rt, err := cool.NewRuntime(cfg)
	if err != nil {
		return Result{}, err
	}
	return RunOn(rt, v, prm)
}

// RunOn routes the workload on an existing runtime that has not run
// yet (fresh from NewRuntime or Reset) — the serving layer's
// warm-reuse entry point. Base's IgnoreHints knob cannot be applied to
// an already-built runtime; its spawns carry no affinity options
// either way.
func RunOn(rt *cool.Runtime, v Variant, prm Params) (Result, error) {
	prm, err := prm.normalize()
	if err != nil {
		return Result{}, err
	}
	procs := rt.Processors()
	ap := build(rt, prm, v == AffinityDistr)
	err = rt.Run(func(ctx *cool.Ctx) {
		for it := 0; it < prm.Iterations; it++ {
			ap.iteration(ctx, procs)
		}
	})
	if err != nil {
		return Result{}, fmt.Errorf("locusroute %v: %w", v, err)
	}
	return ap.finish(rt), nil
}

// RunSerial routes all wires sequentially in the main task.
func RunSerial(prm Params) (Result, error) {
	prm, err := prm.normalize()
	if err != nil {
		return Result{}, err
	}
	rt, err := cool.NewRuntime(cool.Config{Processors: 1})
	if err != nil {
		return Result{}, err
	}
	ap := build(rt, prm, false)
	err = rt.Run(func(ctx *cool.Ctx) {
		for it := 0; it < prm.Iterations; it++ {
			for i := range ap.wires {
				ap.route(ctx, &ap.wires[i])
			}
		}
	})
	if err != nil {
		return Result{}, fmt.Errorf("locusroute serial: %w", err)
	}
	return ap.finish(rt), nil
}

// finish verifies that the incremental CostArray equals one rebuilt from
// the final routes, and computes the congestion metric.
func (ap *app) finish(rt *cool.Runtime) Result {
	rebuilt := make([]int64, len(ap.cost.Data))
	for i := range ap.wires {
		w := &ap.wires[i]
		if !w.routed {
			continue
		}
		ap.walk(w, w.horizFirst, func(idx int, horiz bool) {
			off := 0
			if !horiz {
				off = 1
			}
			rebuilt[idx+off]++
		})
	}
	consistent := true
	for i := range rebuilt {
		if rebuilt[i] != ap.cost.Data[i] {
			consistent = false
			break
		}
	}
	var total int64
	for i := 0; i < len(ap.cost.Data); i += 2 {
		h, v := ap.cost.Data[i], ap.cost.Data[i+1]
		total += h*h + v*v
	}
	return Result{
		Cycles:     rt.ElapsedCycles(),
		Report:     rt.Report(),
		TotalCost:  total,
		Wires:      len(ap.wires),
		Consistent: consistent,
		Tasks:      rt.Report().Total.TasksRun,
	}
}
