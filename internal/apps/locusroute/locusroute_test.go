package locusroute

import "testing"

func small() Params {
	return Params{W: 128, H: 32, Regions: 8, WiresPer: 12, CrossFrac: 0.1, Iterations: 2, Seed: 3}
}

func TestSerialConsistent(t *testing.T) {
	res, err := RunSerial(small())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("CostArray inconsistent with final routes")
	}
	if res.Wires != 8*12 {
		t.Fatalf("wires = %d", res.Wires)
	}
}

func TestAllVariantsConsistent(t *testing.T) {
	for _, v := range Variants {
		for _, procs := range []int{1, 4, 8} {
			res, err := Run(procs, v, small())
			if err != nil {
				t.Fatalf("%v/%d: %v", v, procs, err)
			}
			if !res.Consistent {
				t.Fatalf("%v/%d: CostArray inconsistent (lost updates)", v, procs)
			}
			if res.TotalCost <= 0 {
				t.Fatalf("%v/%d: no congestion recorded", v, procs)
			}
		}
	}
}

func TestAffinityKeepsTasksAtHome(t *testing.T) {
	// The paper reports over 80% of wire tasks routed on their region's
	// processor under affinity scheduling.
	p := DefaultParams()
	p.WiresPer = 24
	res, err := Run(8, Affinity, p)
	if err != nil {
		t.Fatal(err)
	}
	if hf := res.Report.Total.HomeFraction(); hf < 0.7 {
		t.Fatalf("home fraction %.2f, want >= 0.7", hf)
	}
}

func TestAffinityReducesMisses(t *testing.T) {
	// Figure 11's first effect: affinity scheduling cuts cache misses
	// substantially versus round-robin.
	p := DefaultParams()
	p.WiresPer = 24
	base, err := Run(8, Base, p)
	if err != nil {
		t.Fatal(err)
	}
	aff, err := Run(8, Affinity, p)
	if err != nil {
		t.Fatal(err)
	}
	if aff.Report.Total.Misses() >= base.Report.Total.Misses() {
		t.Fatalf("affinity misses %d not below base %d",
			aff.Report.Total.Misses(), base.Report.Total.Misses())
	}
}

func TestObjectDistrRaisesLocalFraction(t *testing.T) {
	// Figure 11's second effect: distributing the CostArray leaves the
	// miss count roughly unchanged but services more misses locally.
	p := DefaultParams()
	p.WiresPer = 24
	aff, err := Run(8, Affinity, p)
	if err != nil {
		t.Fatal(err)
	}
	distr, err := Run(8, AffinityDistr, p)
	if err != nil {
		t.Fatal(err)
	}
	if distr.Report.Total.LocalFraction() <= aff.Report.Total.LocalFraction() {
		t.Fatalf("local fraction: distr %.2f <= aff %.2f",
			distr.Report.Total.LocalFraction(), aff.Report.Total.LocalFraction())
	}
}

func TestBadParams(t *testing.T) {
	if _, err := RunSerial(Params{W: 100, Regions: 16, H: 32, WiresPer: 4, Iterations: 1, Seed: 1}); err == nil {
		t.Fatal("W not divisible by Regions accepted")
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(4, Affinity, small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(4, Affinity, small())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.TotalCost != b.TotalCost {
		t.Fatal("non-deterministic")
	}
}
