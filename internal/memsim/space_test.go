package memsim

import (
	"testing"
	"testing/quick"

	"github.com/coolrts/cool/internal/machine"
)

func newSpace(t *testing.T, procs int) *Space {
	t.Helper()
	cfg := machine.DASH(procs)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return New(cfg)
}

func TestAllocHomesAtRequestedProc(t *testing.T) {
	s := newSpace(t, 32)
	for p := 0; p < 32; p++ {
		addr := s.AllocPages(128, p)
		if got := s.HomeProc(addr); got != p {
			t.Errorf("alloc at proc %d homed at %d", p, got)
		}
		if got := s.HomeCluster(addr); got != p/4 {
			t.Errorf("alloc at proc %d in cluster %d, want %d", p, got, p/4)
		}
	}
}

func TestSamePageKeepsFirstHome(t *testing.T) {
	// Small allocations sharing a page keep the first allocator's home,
	// as on a real paged machine.
	s := newSpace(t, 8)
	a := s.Alloc(64, 1)
	b := s.Alloc(64, 2) // same cluster (0), may share a's page
	if a>>12 == b>>12 && s.HomeProc(b) != 1 {
		t.Fatalf("page-mate changed the page home to %d", s.HomeProc(b))
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	s := newSpace(t, 8)
	type span struct{ lo, hi int64 }
	var spans []span
	for i := 0; i < 100; i++ {
		sz := int64(1 + i*37%500)
		a := s.Alloc(sz, i%8)
		spans = append(spans, span{a, a + sz})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				t.Fatalf("allocations %d and %d overlap: %+v %+v", i, j, spans[i], spans[j])
			}
		}
	}
}

func TestAllocAlignment(t *testing.T) {
	s := newSpace(t, 8)
	for i := 0; i < 20; i++ {
		a := s.Alloc(int64(i*13+1), 0)
		if a%64 != 0 {
			t.Fatalf("allocation %d not 64-byte aligned: %#x", i, a)
		}
	}
}

func TestAllocPagesIsPageAligned(t *testing.T) {
	s := newSpace(t, 8)
	s.Alloc(100, 1) // disturb the bump pointer
	a := s.AllocPages(100, 1)
	if a%s.PageSize() != 0 {
		t.Fatalf("AllocPages returned %#x, not page aligned", a)
	}
}

func TestMigrateRehomesAllSpannedPages(t *testing.T) {
	s := newSpace(t, 32)
	size := 3*s.PageSize() + 100
	addr := s.AllocPages(size, 0)
	n := s.Migrate(addr, size, 21)
	if n != 4 {
		t.Fatalf("Migrate moved %d pages, want 4", n)
	}
	for off := int64(0); off < size; off += s.PageSize() / 2 {
		if got := s.HomeProc(addr + off); got != 21 {
			t.Fatalf("offset %d homed at %d, want 21", off, got)
		}
		if got := s.HomeCluster(addr + off); got != 5 {
			t.Fatalf("offset %d in cluster %d, want 5", off, got)
		}
	}
}

func TestMigratePreservesHomeUnderComposition(t *testing.T) {
	// Property: the last migration wins, for any sequence of targets.
	s := newSpace(t, 32)
	addr := s.AllocPages(100, 0)
	f := func(targets []uint8) bool {
		last := 0
		for _, tg := range targets {
			p := int(tg) % 32
			s.Migrate(addr, 100, p)
			last = p
		}
		return s.HomeProc(addr) == last || len(targets) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroAddressNeverAllocated(t *testing.T) {
	s := newSpace(t, 8)
	for i := 0; i < 10; i++ {
		if a := s.Alloc(64, i%8); a == 0 {
			t.Fatal("allocated address 0")
		}
	}
}

func TestArrays(t *testing.T) {
	s := newSpace(t, 8)
	f := s.NewF64(100, 5)
	if f.Len() != 100 {
		t.Fatalf("Len = %d", f.Len())
	}
	if f.Addr(3) != f.Base+24 {
		t.Fatalf("Addr(3) = %d, want base+24", f.Addr(3))
	}
	if got := s.HomeProc(f.Addr(0)); got != 5 {
		t.Fatalf("array homed at %d", got)
	}
	i := s.NewI64(10, 0)
	if i.Addr(2)-i.Base != 16 {
		t.Fatal("I64 addressing wrong")
	}
	o := s.NewObj(256, 4)
	if o.Size != 256 || s.HomeCluster(o.Base) != 1 {
		t.Fatalf("Obj = %+v homed %d", o, s.HomeCluster(o.Base))
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	s := newSpace(t, 8)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("alloc zero", func() { s.Alloc(0, 0) })
	mustPanic("alloc bad proc", func() { s.Alloc(64, 99) })
	mustPanic("migrate bad proc", func() { s.Migrate(s.Alloc(64, 0), 64, -1) })
	mustPanic("home outside arena", func() { s.HomeCluster(1) })
}
