// Package memsim models the shared address space of the simulated
// machine. Memory is paged; every page has a home processor whose cluster
// memory services misses to it. Objects are allocated at simulated
// addresses while their contents live in ordinary Go slices, so
// applications compute real results while the simulator charges realistic
// memory latencies.
//
// Following the paper, placed allocation (new(proc)) and migrate(obj,
// proc) name a processor; the page records that processor as the object's
// home (the paper's footnote 3: the runtime keeps an object's location in
// a variable rather than asking the OS), and the page physically lives in
// that processor's cluster memory. Migration operates on whole pages
// (footnote 2).
package memsim

import (
	"fmt"
	"math/bits"

	"github.com/coolrts/cool/internal/machine"
)

// arenaShift positions each cluster's allocation arena in a disjoint
// region of the simulated address space.
const arenaShift = 36

// Space is the simulated shared address space.
type Space struct {
	pageSize    int64
	pageShift   uint
	clusters    int
	clusterSize int
	procs       int
	next        []int64 // per-cluster bump pointer
	// pageProc[c] maps a page offset within cluster c's arena to the
	// page's home processor (-1 = unrecorded). Arenas are bump-allocated,
	// so offsets are dense and a flat table beats a map on the home
	// lookup that placement performs per spawned task.
	pageProc [][]int32
}

// New creates an address space for the given machine.
func New(cfg machine.Config) *Space {
	s := &Space{
		pageSize:    int64(cfg.PageSize),
		pageShift:   uint(bits.TrailingZeros64(uint64(cfg.PageSize))),
		clusters:    cfg.Clusters(),
		clusterSize: cfg.ClusterSize,
		procs:       cfg.Processors,
	}
	s.pageProc = make([][]int32, cfg.Clusters())
	s.next = make([]int64, s.clusters)
	for c := range s.next {
		// Skip the first page of each arena so address 0 is never valid.
		s.next[c] = int64(c+1)<<arenaShift + s.pageSize
	}
	return s
}

// Reset rewinds the space to its post-New state: every arena's bump
// pointer returns to its first usable page and all recorded page homes
// are forgotten. Addresses handed out before the reset become invalid
// (they will be re-issued to later allocations), so a reset is only
// legal between program runs — the warm-runtime reuse path. The page
// tables keep their capacity so a reused space re-allocates without
// regrowing them.
func (s *Space) Reset() {
	for c := range s.next {
		s.next[c] = int64(c+1)<<arenaShift + s.pageSize
	}
	for c, t := range s.pageProc {
		for i := range t {
			t[i] = -1
		}
		s.pageProc[c] = t
	}
}

// Clusters returns the number of memory modules (clusters).
func (s *Space) Clusters() int { return s.clusters }

// PageSize returns the migration granularity in bytes.
func (s *Space) PageSize() int64 { return s.pageSize }

func (s *Space) checkProc(proc int) {
	if proc < 0 || proc >= s.procs {
		panic(fmt.Sprintf("memsim: processor %d out of range [0,%d)", proc, s.procs))
	}
}

// clusterOf maps a processor to its cluster.
func (s *Space) clusterOf(proc int) int { return proc / s.clusterSize }

// Alloc reserves size bytes homed at processor proc and returns the base
// address. Allocations are 64-byte aligned; small objects may share a
// page, as on a real machine (the page keeps the first allocator's home).
func (s *Space) Alloc(size int64, proc int) int64 {
	if size <= 0 {
		panic("memsim: allocation size must be positive")
	}
	s.checkProc(proc)
	cluster := s.clusterOf(proc)
	const align = 64
	base := (s.next[cluster] + align - 1) &^ (align - 1)
	s.next[cluster] = base + size
	s.recordPages(base, size, proc, false)
	return base
}

// AllocPages reserves size bytes rounded up to whole pages, so the object
// can later be migrated without dragging page-mates along.
func (s *Space) AllocPages(size int64, proc int) int64 {
	if size <= 0 {
		panic("memsim: allocation size must be positive")
	}
	s.checkProc(proc)
	cluster := s.clusterOf(proc)
	base := (s.next[cluster] + s.pageSize - 1) &^ (s.pageSize - 1)
	s.next[cluster] = base + (size+s.pageSize-1)&^(s.pageSize-1)
	s.recordPages(base, size, proc, false)
	return base
}

// pageOffset maps addr to (arena cluster, page offset within that
// arena). Every allocation lives inside a single arena, so a span's
// pages share one table.
func (s *Space) pageOffset(addr int64) (int, int64) {
	c := s.arenaCluster(addr)
	return c, (addr >> s.pageShift) - int64(c+1)<<(arenaShift-s.pageShift)
}

// growTable extends cluster c's page table to cover offset off,
// filling new entries with -1 (unrecorded).
func (s *Space) growTable(c int, off int64) {
	t := s.pageProc[c]
	for int64(len(t)) <= off {
		t = append(t, -1)
	}
	s.pageProc[c] = t
}

// recordPages stores the home processor of every page spanned by
// [addr, addr+size). When overwrite is false, pages that already have a
// home (shared with an earlier small allocation) keep it.
func (s *Space) recordPages(addr, size int64, proc int, overwrite bool) {
	c, first := s.pageOffset(addr)
	last := first + ((addr+size-1)>>s.pageShift - addr>>s.pageShift)
	s.growTable(c, last)
	t := s.pageProc[c]
	for pg := first; pg <= last; pg++ {
		if !overwrite && t[pg] >= 0 {
			continue
		}
		t[pg] = int32(proc)
	}
}

// Migrate re-homes every page spanned by [addr, addr+size) to processor
// proc's memory. It returns the number of pages moved.
func (s *Space) Migrate(addr, size int64, proc int) int {
	s.checkProc(proc)
	if size <= 0 {
		panic("memsim: migrate size must be positive")
	}
	s.recordPages(addr, size, proc, true)
	first := addr >> s.pageShift
	last := (addr + size - 1) >> s.pageShift
	return int(last - first + 1)
}

// HomeProc returns the processor that homes the page containing addr.
func (s *Space) HomeProc(addr int64) int {
	c, off := s.pageOffset(addr)
	if t := s.pageProc[c]; off < int64(len(t)) && t[off] >= 0 {
		return int(t[off])
	}
	// Unrecorded page: attribute it to the first processor of the
	// arena's cluster.
	return c * s.clusterSize
}

// HomeCluster returns the cluster whose local memory holds the page
// containing addr (the unit the cache model charges against).
func (s *Space) HomeCluster(addr int64) int {
	c, off := s.pageOffset(addr)
	if t := s.pageProc[c]; off < int64(len(t)) && t[off] >= 0 {
		return s.clusterOf(int(t[off]))
	}
	return c
}

func (s *Space) arenaCluster(addr int64) int {
	c := int(addr>>arenaShift) - 1
	if c < 0 || c >= s.clusters {
		panic(fmt.Sprintf("memsim: address %#x outside any arena", addr))
	}
	return c
}
