package memsim

// F64 is a simulated-memory array of float64. Data holds the real values;
// Base is the simulated address of element 0. Element i lives at simulated
// address Base + 8*i.
type F64 struct {
	Base int64
	Data []float64
}

// NewF64 allocates an n-element float64 array homed at processor proc.
func (s *Space) NewF64(n int, proc int) *F64 {
	return &F64{Base: s.Alloc(int64(n)*8, proc), Data: make([]float64, n)}
}

// NewF64Pages allocates a page-aligned float64 array (independently
// migratable).
func (s *Space) NewF64Pages(n int, proc int) *F64 {
	return &F64{Base: s.AllocPages(int64(n)*8, proc), Data: make([]float64, n)}
}

// Addr returns the simulated address of element i.
func (a *F64) Addr(i int) int64 { return a.Base + int64(i)*8 }

// Len returns the number of elements.
func (a *F64) Len() int { return len(a.Data) }

// I64 is a simulated-memory array of int64.
type I64 struct {
	Base int64
	Data []int64
}

// NewI64 allocates an n-element int64 array homed at processor proc.
func (s *Space) NewI64(n int, proc int) *I64 {
	return &I64{Base: s.Alloc(int64(n)*8, proc), Data: make([]int64, n)}
}

// Addr returns the simulated address of element i.
func (a *I64) Addr(i int) int64 { return a.Base + int64(i)*8 }

// Len returns the number of elements.
func (a *I64) Len() int { return len(a.Data) }

// Obj is a handle to an untyped simulated object (a record whose fields
// the application models at byte offsets).
type Obj struct {
	Base int64
	Size int64
}

// NewObj allocates a size-byte object homed at processor proc.
func (s *Space) NewObj(size int64, proc int) Obj {
	return Obj{Base: s.Alloc(size, proc), Size: size}
}
