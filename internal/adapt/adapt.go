// Package adapt is the online scheduling-policy controller: a small,
// dependency-free decision engine that turns per-epoch counter deltas
// into adjustments of the runtime's live policy vector — cluster-only
// stealing, wake fanout, steal-backoff scale, and the shed-floor bias.
//
// The controller is backend-agnostic and deliberately pure: the
// deterministic simulator and the native runtime feed it cumulative
// counter snapshots at their own epoch boundaries (a simulated-cycle
// interval there, timekeeper ticks here) and apply the returned state
// through their own mechanisms. Purity is what keeps the sim runs
// bit-stable and lets the hysteresis rules be unit-tested with
// scripted counter streams.
//
// Rules handle the regimes with a crisp counter signature: probe-fail
// storms, starvation under a restriction, backlog vs wake width, and —
// when the backend attributes memory references to stolen work — the
// locality regime itself, where cross-cluster steals "succeed" but the
// stolen tasks pay a non-local miss rate far above what home-placed
// work pays. For backends without that attribution the controller
// falls back to counterfactual trials: when the rules have been quiet
// for a while it briefly flips the cluster knob, compares
// completed-tasks-per-epoch against the pre-trial baseline, and keeps
// or reverts the flip. Successive trials back off exponentially, and
// the first rule firing on the knob disables trials outright — a knob
// the rules can see does not need blind exploration.
//
// Every state change is recorded as a BLIS-style decision trace entry:
// the knob, the action taken, the triggering counter delta, a score,
// and the top scored alternatives that were NOT taken. Replay folds a
// trace over the initial state and must land exactly on the
// controller's final state — the reconstruction property the bench
// harness asserts for every adaptive run.
package adapt

import "fmt"

// DefaultWakeFanout is the fanout both backends use when no controller
// is installed; it is the controller's initial fanout as well.
const DefaultWakeFanout = 4

// Knob names used in Decision entries (and Replay).
const (
	KnobCluster = "cluster" // cluster-only stealing on/off
	KnobFanout  = "fanout"  // wake fanout width
	KnobBackoff = "backoff" // steal-backoff scale (power of two)
	KnobShed    = "shed"    // shed-floor bias (power of two)
)

// Internal rule bounds that are deliberately not Policy knobs: they
// shape second-order behaviour and tuning them per-run has never been
// needed.
const (
	minTriesPerEpoch = 8    // below this many probes a fail ratio is noise
	maxBackoffShift  = 3    // at most 8x the base steal backoff
	maxShedBias      = 3    // shed floor tightened at most 8x
	backoffFailHigh  = 0.90 // probe-fail ratio that raises the backoff
	backoffFailLow   = 0.50 // probe-fail ratio that lowers it again
	missRateHigh     = 0.05 // deadline-miss rate that tightens the shed floor
	maxTrialSpacing  = 128  // trial back-off ladder cap, in quiet epochs

	// Locality-rule guards: below these accumulated volumes a stolen-work
	// miss rate is statistical noise, and a rate below the floor is not
	// worth a restriction even when it is relatively elevated. The
	// accumulators span every flat epoch since the knob last moved, so a
	// bursty stealer still reaches the volume bar within a few epochs.
	minLocSteals    = 2    // accumulated remote steals for the signal to count
	minStolenRefs   = 64   // accumulated stolen references for the rate to be real
	stolenRateFloor = 0.02 // absolute stolen-miss rate below which locality is fine
)

// Policy configures the controller. The zero value (plus a backend
// default Epoch) is a usable configuration.
type Policy struct {
	// Epoch is the controller interval. Units are backend-defined:
	// simulated cycles on the simulator, wall-clock nanoseconds on the
	// native backend. The controller itself never reads it — the
	// backend's epoch driver does.
	Epoch int64
	// Hysteresis is how many consecutive epochs a signal must persist
	// before the controller acts on it (default 2).
	Hysteresis int
	// TraceCap bounds the decision trace (default 256); decisions past
	// the cap are applied but not recorded, and counted in Dropped.
	TraceCap int
	// StealFailHigh is the FailedSteals/StealTries ratio above which
	// cross-cluster stealing is judged not to pay (default 0.75).
	StealFailHigh float64
	// MinFanout / MaxFanout bound the wake fanout (defaults 2 / 32).
	MinFanout, MaxFanout int
	// TrialFirst is how many rule-quiet epochs pass before the first
	// counterfactual trial of the cluster knob (default 4). Successive
	// trials double the spacing, capped at maxTrialSpacing; a kept
	// trial resets the ladder so a changed regime is re-challenged
	// promptly.
	TrialFirst int
	// TrialLen is how many epochs a trial runs before its throughput is
	// compared against the pre-trial baseline (default 2).
	TrialLen int
	// TrialMargin is the relative completed-per-epoch improvement a
	// trial must show to be kept (default 0.05).
	TrialMargin float64
	// NoTrial disables counterfactual trials (rule-driven flips only).
	NoTrial bool
	// Per-knob opt-outs.
	NoCluster, NoWake, NoBackoff, NoShed bool
	// Start, when non-nil, is a previously learned policy vector the
	// backend seeds both the controller and the live scheduler from —
	// the warm-start hook for callers that persist policy across runs.
	Start *State
}

func (p Policy) withDefaults() Policy {
	if p.Hysteresis <= 0 {
		p.Hysteresis = 2
	}
	if p.TraceCap <= 0 {
		p.TraceCap = 256
	}
	if p.StealFailHigh <= 0 {
		p.StealFailHigh = 0.75
	}
	if p.MinFanout <= 0 {
		p.MinFanout = 2
	}
	if p.MaxFanout <= 0 {
		p.MaxFanout = 32
	}
	if p.MaxFanout < p.MinFanout {
		p.MaxFanout = p.MinFanout
	}
	if p.TrialFirst <= 0 {
		p.TrialFirst = 4
	}
	if p.TrialLen <= 0 {
		p.TrialLen = 2
	}
	if p.TrialMargin <= 0 {
		p.TrialMargin = 0.05
	}
	return p
}

// Snapshot is one cumulative counter reading. The steal/wake/shed
// fields are monotone counters since the start of the run; Queued,
// Parked and Workers are instantaneous gauges sampled at the same
// moment. Delta subtracts the counters and keeps the gauges.
type Snapshot struct {
	StealTries     int64
	FailedSteals   int64
	StealsLocal    int64
	StealsRemote   int64
	SetSteals      int64
	TargetedWakes  int64
	BroadcastWakes int64
	LockContention int64
	TasksShed      int64
	DeadlineMisses int64
	Completed      int64 // tasks executed (or shed) to completion

	// Memory-system attribution (simulator backend; zero natively).
	// Refs/RemoteMisses cover all work, StolenRefs/StolenMisses only
	// references made while running a task most recently moved by a
	// cross-cluster steal. Their ratio is the locality rule's signal.
	Refs         int64
	RemoteMisses int64 // non-local misses (remote + dirty)
	StolenRefs   int64
	StolenMisses int64

	Queued  int64 // gauge: tasks queued machine-wide right now
	Parked  int64 // gauge: workers idle-parked right now
	Workers int64 // gauge: alive workers right now

	// Backlog-concentration gauges: how many clusters hold queued work,
	// out of how many exist. A deep backlog pinned in a minority of
	// clusters argues for cross-cluster stealing, so the locality rule
	// stands down while that is the live shape.
	QueuedClusters int64
	Clusters       int64
}

// Delta returns s minus prev on the monotone counters, keeping s's
// instantaneous gauges.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	return Snapshot{
		StealTries:     s.StealTries - prev.StealTries,
		FailedSteals:   s.FailedSteals - prev.FailedSteals,
		StealsLocal:    s.StealsLocal - prev.StealsLocal,
		StealsRemote:   s.StealsRemote - prev.StealsRemote,
		SetSteals:      s.SetSteals - prev.SetSteals,
		TargetedWakes:  s.TargetedWakes - prev.TargetedWakes,
		BroadcastWakes: s.BroadcastWakes - prev.BroadcastWakes,
		LockContention: s.LockContention - prev.LockContention,
		TasksShed:      s.TasksShed - prev.TasksShed,
		DeadlineMisses: s.DeadlineMisses - prev.DeadlineMisses,
		Completed:      s.Completed - prev.Completed,
		Refs:           s.Refs - prev.Refs,
		RemoteMisses:   s.RemoteMisses - prev.RemoteMisses,
		StolenRefs:     s.StolenRefs - prev.StolenRefs,
		StolenMisses:   s.StolenMisses - prev.StolenMisses,
		Queued:         s.Queued,
		Parked:         s.Parked,
		Workers:        s.Workers,
		QueuedClusters: s.QueuedClusters,
		Clusters:       s.Clusters,
	}
}

// State is the live policy vector the controller drives.
type State struct {
	ClusterOnly  bool
	WakeFanout   int
	BackoffShift int // steal backoff scaled by 1<<shift (native only)
	ShedBias     int // shed high-water divided by 1<<bias (native only)
}

// Alternative is one counterfactual the controller scored but did not
// choose.
type Alternative struct {
	Action string
	Score  float64
}

// Decision is one recorded policy change. From/To are the knob's value
// before and after (booleans encoded 0/1), which is what makes Replay
// a pure fold.
type Decision struct {
	Seq          int    // ordinal within the trace
	Epoch        int64  // controller epoch ordinal at which it was taken
	Time         int64  // backend clock (cycles or nanoseconds)
	Knob         string // KnobCluster, KnobFanout, KnobBackoff, KnobShed
	Action       string
	From, To     int64
	Reason       string        // triggering counters, human-readable
	Score        float64       // signal strength behind the chosen action
	Alternatives []Alternative // top-k counterfactuals, best first
	Delta        Snapshot      // the epoch's counter delta that triggered it
}

// Controller holds the hysteresis state machine. Not safe for
// concurrent use: exactly one goroutine (the sim event loop or the
// native timekeeper) calls Epoch; readers use Decisions after the run.
type Controller struct {
	pol     Policy
	st      State
	initSt  State
	prev    Snapshot
	epochN  int64
	trace   []Decision
	dropped int64

	// Consecutive-epoch signal streaks, one pair per knob.
	clusterOn, clusterOff int

	// ruleOwned is set the first time a counter rule moves the cluster
	// knob. From then on the rules own it and counterfactual trials stop:
	// the rules' signals are bidirectional (locality/probe-fail to turn
	// it on, starvation to turn it off), so blind exploration can only
	// add churn on top of them.
	ruleOwned bool

	// onByLocality records whether the current cluster-only restriction
	// was imposed by the locality rule (measured miss rates) rather than
	// the fail-ratio rule; the starvation OFF rule then needs a longer
	// streak to overrule it.
	onByLocality bool

	// Locality accumulators: stolen-work and all-work reference/miss
	// totals summed over every active flat (unrestricted) epoch since
	// the cluster knob last moved, plus the count of those epochs.
	// Accumulation is what lets a bursty stealer clear the volume
	// guards — single epochs are too noisy — while the epoch count
	// turns the steal guard into a rate floor.
	locSteals, locStolenRefs, locStolenMisses int64
	locRefs, locMisses, locEpochs             int64
	fanWiden, fanNarrow                       int
	backUp, backDown                          int
	shedUp, shedDown                          int

	// Counterfactual-trial state for the cluster knob.
	emaTput   float64 // completed-per-epoch baseline, recency-weighted
	emaOK     bool
	quiet     int     // active epochs since the cluster knob last moved
	nextTrial int     // quiet-epoch threshold for the next trial
	trialLeft int     // >0 while a trial window is being measured
	trialSum  int64   // completed during the trial window
	trialPre  float64 // baseline the trial must beat
}

// New creates a controller starting from init (the runtime's
// configured policy). A non-positive init fanout becomes the default.
func New(pol Policy, init State) *Controller {
	pol = pol.withDefaults()
	if init.WakeFanout <= 0 {
		init.WakeFanout = DefaultWakeFanout
	}
	return &Controller{pol: pol, st: init, initSt: init, nextTrial: pol.TrialFirst}
}

// State returns the current policy vector.
func (c *Controller) State() State { return c.st }

// Init returns the policy vector the controller started from — the
// seed for Replay. It reflects the runtime's effective configured
// policy at arm time, which variant-level scheduling overrides make
// different from what the base configuration alone would predict.
func (c *Controller) Init() State { return c.initSt }

// Epochs returns how many epochs have been consumed.
func (c *Controller) Epochs() int64 { return c.epochN }

// Dropped returns the number of decisions not recorded because the
// trace hit TraceCap.
func (c *Controller) Dropped() int64 { return c.dropped }

// Count returns the number of recorded decisions.
func (c *Controller) Count() int { return len(c.trace) }

// DecisionAt returns recorded decision i without copying the trace.
func (c *Controller) DecisionAt(i int) Decision { return c.trace[i] }

// Decisions returns a copy of the decision trace.
func (c *Controller) Decisions() []Decision {
	out := make([]Decision, len(c.trace))
	copy(out, c.trace)
	return out
}

// Epoch consumes one cumulative snapshot taken at backend time now and
// returns the (possibly updated) policy vector plus whether anything
// changed this epoch.
func (c *Controller) Epoch(now int64, cum Snapshot) (State, bool) {
	d := cum.Delta(c.prev)
	c.prev = cum
	c.epochN++
	changed := false
	if !c.pol.NoCluster {
		changed = c.clusterEpoch(now, d) || changed
	}
	if !c.pol.NoWake {
		changed = c.fanoutEpoch(now, d) || changed
	}
	if !c.pol.NoBackoff {
		changed = c.backoffEpoch(now, d) || changed
	}
	if !c.pol.NoShed {
		changed = c.shedEpoch(now, d) || changed
	}
	return c.st, changed
}

// ratio is n/d with 0/0 == 0.
func ratio(n, d int64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// clusterEpoch drives the cluster knob: crisp counter rules first,
// and when those have been quiet, exponentially-spaced counterfactual
// trials that measure what the rules cannot (locality value).
func (c *Controller) clusterEpoch(now int64, d Snapshot) bool {
	if c.clusterRules(now, d) {
		// A rule moved the knob on a strong signal: abandon any trial in
		// flight and restart the exploration ladder for the new regime.
		c.trialLeft = 0
		c.quiet = 0
		c.nextTrial = c.pol.TrialFirst
		return true
	}
	return c.clusterTrial(now, d)
}

// clusterRules flips cluster-only stealing ON when steal probes keep
// failing while cross-cluster steals contribute nothing — the paper's
// "distant cache misses for nothing" regime — and back OFF on the one
// signal still observable under the restriction: starvation, i.e. a
// machine-wide backlog the restricted thieves cannot reach while a
// large share of the pool sits parked.
func (c *Controller) clusterRules(now int64, d Snapshot) bool {
	tries := d.StealTries
	fail := ratio(d.FailedSteals, tries)
	if !c.st.ClusterOnly {
		// Remote steals still paying vetoes the fail-ratio flip
		// regardless of the overall ratio: a 5% remote success rate is
		// real work. The probe volume must also scale with the pool — a
		// couple of failed probes per worker is an idle lull, not the
		// machine-wide probe storm the restriction exists for.
		remotePaying := d.StealsRemote*20 > tries
		failSignal := tries >= minTriesPerEpoch && tries >= 4*d.Workers &&
			fail >= c.pol.StealFailHigh && !remotePaying

		// Locality signal: work moved by cross-cluster steals pays at
		// least double the non-local miss rate of home-placed work — the
		// steals succeed but drag distant misses behind them. Measured
		// on totals accumulated since the knob last moved, so a bursty
		// stealer still clears the volume guards quickly; the steal
		// guard doubles as a rate floor (half a steal per active epoch,
		// sustained), so a steal trickle over a long run never creeps
		// past it — restricting a whole machine for a handful of lossy
		// steals would trade real load balance for noise. Stands down
		// while a deep backlog sits in a minority of clusters: that
		// shape needs cross-cluster stealing to drain at all.
		c.locSteals += d.StealsRemote
		c.locStolenRefs += d.StolenRefs
		c.locStolenMisses += d.StolenMisses
		c.locRefs += d.Refs
		c.locMisses += d.RemoteMisses
		if d.Completed > 0 {
			c.locEpochs++
		}
		stolenRate := ratio(c.locStolenMisses, c.locStolenRefs)
		homeRate := ratio(c.locMisses-c.locStolenMisses, c.locRefs-c.locStolenRefs)
		concentrated := d.Queued > d.Workers && d.QueuedClusters*2 <= d.Clusters
		locSignal := c.locSteals >= minLocSteals &&
			c.locSteals*2 >= c.locEpochs &&
			c.locStolenRefs >= minStolenRefs &&
			stolenRate >= 2*homeRate &&
			stolenRate >= stolenRateFloor &&
			!concentrated

		if failSignal || locSignal {
			c.clusterOn++
		} else {
			c.clusterOn = 0
		}
		// Overwhelming locality evidence — quadruple the home miss rate
		// over double the usual steal and reference volume — skips the
		// hysteresis streak: every flat epoch spent waiting lets
		// remotely-stolen tasks seed whole subtrees of wrong-cluster
		// work.
		strong := locSignal && stolenRate >= 4*homeRate &&
			c.locSteals >= 2*minLocSteals &&
			c.locStolenRefs >= 2*minStolenRefs
		if c.clusterOn < c.pol.Hysteresis && !strong {
			return false
		}
		epochs := c.clusterOn
		c.clusterOn = 0
		c.st.ClusterOnly = true
		c.ruleOwned = true
		c.onByLocality = !failSignal
		dec := Decision{
			Time: now, Knob: KnobCluster, Action: "cluster-only on",
			From: 0, To: 1,
			Delta: d,
		}
		if failSignal {
			dec.Reason = fmt.Sprintf("probe fail ratio %.2f >= %.2f over %d tries (%d remote successes) for %d epochs",
				fail, c.pol.StealFailHigh, tries, d.StealsRemote, epochs)
			dec.Score = fail
			dec.Alternatives = []Alternative{
				{Action: "keep flat stealing", Score: 1 - fail},
				{Action: "raise steal backoff only", Score: fail / 2},
			}
		} else {
			dec.Reason = fmt.Sprintf("stolen-work miss rate %.3f >= 2x home rate %.3f over %d stolen refs (%d remote steals) for %d epochs",
				stolenRate, homeRate, c.locStolenRefs, c.locSteals, epochs)
			dec.Score = ratio(int64(stolenRate*1000), int64(homeRate*1000)+1)
			dec.Alternatives = []Alternative{
				{Action: "keep flat stealing", Score: 1},
				{Action: "raise steal backoff only", Score: 0.5},
			}
		}
		c.record(dec)
		c.resetLocality()
		return true
	}
	// The bar is deliberately high on every axis — backlog at twice the
	// pool, half the pool parked, and (where the backend reports the
	// gauge) the backlog concentrated in at most half the clusters. A
	// backlog spread across most clusters is reachable by the restricted
	// thieves; workers parked next to it are parked on backoff timing,
	// not the restriction, and flipping off a winning restriction for
	// that costs far more than the idle cycles it recovers.
	reachable := d.Clusters > 0 && d.QueuedClusters*2 > d.Clusters
	starving := d.Queued > 2*d.Workers && d.Parked*2 >= d.Workers && d.Parked > 0 && !reachable
	if starving {
		c.clusterOff++
	} else {
		c.clusterOff = 0
	}
	// The starvation shape heuristic argues with measured miss rates when
	// the restriction came from the locality rule; demand a streak twice
	// as long before overruling quantitative evidence.
	need := c.pol.Hysteresis
	if c.onByLocality {
		need *= 2
	}
	if c.clusterOff < need {
		return false
	}
	c.clusterOff = 0
	c.st.ClusterOnly = false
	c.ruleOwned = true
	c.onByLocality = false
	c.resetLocality()
	score := ratio(d.Queued, d.Workers)
	c.record(Decision{
		Time: now, Knob: KnobCluster, Action: "cluster-only off",
		From: 1, To: 0,
		Reason: fmt.Sprintf("starvation: %d queued > %d workers with %d parked for %d epochs",
			d.Queued, d.Workers, d.Parked, c.pol.Hysteresis),
		Score: score,
		Alternatives: []Alternative{
			{Action: "stay cluster-only", Score: 1 / (1 + score)},
			{Action: "widen wake fanout only", Score: score / 2},
		},
		Delta: d,
	})
	return true
}

// resetLocality clears the locality accumulators; called whenever the
// cluster knob moves, since the stolen-work rates of the old policy
// say nothing about the new one.
func (c *Controller) resetLocality() {
	c.locSteals, c.locStolenRefs, c.locStolenMisses = 0, 0, 0
	c.locRefs, c.locMisses, c.locEpochs = 0, 0, 0
}

// onoff renders a cluster knob value for decision actions.
func onoff(v bool) string {
	if v {
		return "on"
	}
	return "off"
}

// clusterTrial is the counterfactual arm of the cluster knob: probe
// statistics cannot price locality (a cross-cluster steal that
// "succeeds" may still lose to the remote misses it drags behind it),
// so after enough rule-quiet epochs the controller flips the knob,
// measures completed-per-epoch for a short window, and keeps the flip
// only when throughput beats the pre-trial baseline by TrialMargin.
// Trials space out exponentially, so a settled run stops paying for
// exploration; a kept trial resets the ladder because a regime that
// just changed once may change again.
func (c *Controller) clusterTrial(now int64, d Snapshot) bool {
	// Trials exist for backends that cannot see locality. A backend
	// reporting memory references has the stolen-work attribution the
	// locality rule runs on — there, blind exploration only adds churn
	// on top of a rule that measures the same thing directly. The same
	// goes once any rule has moved the knob (ruleOwned).
	if c.pol.NoTrial || c.ruleOwned || d.Refs > 0 {
		return false
	}
	if c.trialLeft > 0 {
		c.trialSum += d.Completed
		c.trialLeft--
		if c.trialLeft > 0 {
			return false
		}
		tput := float64(c.trialSum) / float64(c.pol.TrialLen)
		c.quiet = 0
		cur := c.st.ClusterOnly
		if tput > c.trialPre*(1+c.pol.TrialMargin) {
			// Kept: the trial arm becomes the baseline and the ladder
			// restarts. From == To — the state already moved at trial
			// start — so Replay treats this as the no-op it is.
			c.emaTput = tput
			c.nextTrial = c.pol.TrialFirst
			v := b2i(cur)
			c.record(Decision{
				Time: now, Knob: KnobCluster, Action: "trial kept cluster-only " + onoff(cur),
				From: v, To: v,
				Reason: fmt.Sprintf("trial throughput %.0f/epoch beats pre-trial %.0f by more than %.0f%%",
					tput, c.trialPre, c.pol.TrialMargin*100),
				Score: ratio(int64(tput), int64(c.trialPre+1)),
				Alternatives: []Alternative{
					{Action: "revert to cluster-only " + onoff(!cur), Score: ratio(int64(c.trialPre), int64(tput+1))},
				},
				Delta: d,
			})
			return true
		}
		c.st.ClusterOnly = !cur
		if c.nextTrial < maxTrialSpacing {
			c.nextTrial *= 2
		}
		c.record(Decision{
			Time: now, Knob: KnobCluster, Action: "trial reverted cluster-only " + onoff(!cur),
			From: b2i(cur), To: b2i(!cur),
			Reason: fmt.Sprintf("trial throughput %.0f/epoch did not beat pre-trial %.0f; next trial after %d quiet epochs",
				tput, c.trialPre, c.nextTrial),
			Score: ratio(int64(c.trialPre), int64(tput+1)),
			Alternatives: []Alternative{
				{Action: "keep cluster-only " + onoff(cur), Score: ratio(int64(tput), int64(c.trialPre+1))},
			},
			Delta: d,
		})
		return true
	}
	// No trial in flight. Only active epochs count as quiet time and
	// feed the baseline — an idle runtime (a warm pool between
	// requests) must not trial-flip on zero-throughput noise.
	if d.Completed == 0 {
		return false
	}
	if !c.emaOK {
		c.emaTput = float64(d.Completed)
		c.emaOK = true
	} else {
		c.emaTput = (c.emaTput + float64(d.Completed)) / 2
	}
	c.quiet++
	if c.quiet < c.nextTrial {
		return false
	}
	from := c.st.ClusterOnly
	c.st.ClusterOnly = !from
	c.trialPre = c.emaTput
	c.trialLeft = c.pol.TrialLen
	c.trialSum = 0
	c.quiet = 0
	c.record(Decision{
		Time: now, Knob: KnobCluster, Action: "trial cluster-only " + onoff(!from),
		From: b2i(from), To: b2i(!from),
		Reason: fmt.Sprintf("counterfactual trial after %d rule-quiet epochs (baseline %.0f completed/epoch, %d-epoch window)",
			c.nextTrial, c.trialPre, c.pol.TrialLen),
		Score: 0.5,
		Alternatives: []Alternative{
			{Action: "hold cluster-only " + onoff(from), Score: 0.5},
		},
		Delta: d,
	})
	return true
}

// b2i encodes a knob boolean for Decision.From/To.
func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// fanoutEpoch widens the wake fanout toward broadcast while the
// machine-wide backlog outruns it, and narrows it back once targeted
// wakes suffice. The dead band between the two thresholds is what
// keeps a boundary stream from oscillating.
func (c *Controller) fanoutEpoch(now int64, d Snapshot) bool {
	fan := c.st.WakeFanout
	switch {
	// Widening only matters when someone is parked to wake; a backlog
	// with every worker already running is a throughput limit, and a
	// wider fanout just adds wake dispatches to it.
	case d.Queued > int64(2*fan) && d.Parked > 0:
		c.fanWiden++
		c.fanNarrow = 0
	case d.TargetedWakes > 0 && d.Queued*2 < int64(fan) && d.BroadcastWakes == 0:
		c.fanNarrow++
		c.fanWiden = 0
	default:
		c.fanWiden, c.fanNarrow = 0, 0
	}
	if c.fanWiden >= c.pol.Hysteresis && fan < c.pol.MaxFanout {
		c.fanWiden = 0
		to := fan * 2
		if to > c.pol.MaxFanout {
			to = c.pol.MaxFanout
		}
		c.st.WakeFanout = to
		score := ratio(d.Queued, int64(fan))
		c.record(Decision{
			Time: now, Knob: KnobFanout, Action: "widen",
			From: int64(fan), To: int64(to),
			Reason: fmt.Sprintf("backlog %d > 2x fanout %d for %d epochs", d.Queued, fan, c.pol.Hysteresis),
			Score:  score,
			Alternatives: []Alternative{
				{Action: "hold fanout", Score: 1 / (1 + score)},
				{Action: "broadcast always", Score: score / 2},
			},
			Delta: d,
		})
		return true
	}
	if c.fanNarrow >= c.pol.Hysteresis && fan > c.pol.MinFanout {
		c.fanNarrow = 0
		to := fan / 2
		if to < c.pol.MinFanout {
			to = c.pol.MinFanout
		}
		c.st.WakeFanout = to
		c.record(Decision{
			Time: now, Knob: KnobFanout, Action: "narrow",
			From: int64(fan), To: int64(to),
			Reason: fmt.Sprintf("backlog %d < fanout %d/2 with no broadcasts for %d epochs",
				d.Queued, fan, c.pol.Hysteresis),
			Score: 1 - ratio(d.Queued, int64(fan)),
			Alternatives: []Alternative{
				{Action: "hold fanout", Score: ratio(d.Queued, int64(fan))},
			},
			Delta: d,
		})
		return true
	}
	return false
}

// backoffEpoch scales the steal-backoff base from the probe failure
// rate: thieves that almost never find work should nap longer between
// scans (less coherence traffic on victims' queue words), and return
// to the base pace as soon as probes start paying again.
func (c *Controller) backoffEpoch(now int64, d Snapshot) bool {
	tries := d.StealTries
	fail := ratio(d.FailedSteals, tries)
	switch {
	case tries >= 4*minTriesPerEpoch && fail >= backoffFailHigh:
		c.backUp++
		c.backDown = 0
	case c.st.BackoffShift > 0 && (tries < minTriesPerEpoch || fail <= backoffFailLow):
		c.backDown++
		c.backUp = 0
	default:
		c.backUp, c.backDown = 0, 0
	}
	if c.backUp >= c.pol.Hysteresis && c.st.BackoffShift < maxBackoffShift {
		c.backUp = 0
		from := c.st.BackoffShift
		c.st.BackoffShift++
		c.record(Decision{
			Time: now, Knob: KnobBackoff, Action: "backoff up",
			From: int64(from), To: int64(c.st.BackoffShift),
			Reason: fmt.Sprintf("probe fail ratio %.2f >= %.2f over %d tries for %d epochs",
				fail, backoffFailHigh, tries, c.pol.Hysteresis),
			Score: fail,
			Alternatives: []Alternative{
				{Action: "hold backoff", Score: 1 - fail},
			},
			Delta: d,
		})
		return true
	}
	if c.backDown >= c.pol.Hysteresis && c.st.BackoffShift > 0 {
		c.backDown = 0
		from := c.st.BackoffShift
		c.st.BackoffShift--
		c.record(Decision{
			Time: now, Knob: KnobBackoff, Action: "backoff down",
			From: int64(from), To: int64(c.st.BackoffShift),
			Reason: fmt.Sprintf("probes paying again (%d tries, fail ratio %.2f) for %d epochs",
				tries, fail, c.pol.Hysteresis),
			Score: 1 - fail,
			Alternatives: []Alternative{
				{Action: "hold backoff", Score: fail},
			},
			Delta: d,
		})
		return true
	}
	return false
}

// shedEpoch nudges the shed floor from the deadline-miss rate: a
// sustained miss rate tightens the floor (sheds low-priority work
// earlier), and a miss-free epoch streak relaxes it back.
func (c *Controller) shedEpoch(now int64, d Snapshot) bool {
	missRate := ratio(d.DeadlineMisses, d.Completed)
	switch {
	case d.Completed >= 2*minTriesPerEpoch && missRate > missRateHigh:
		c.shedUp++
		c.shedDown = 0
	case c.st.ShedBias > 0 && d.DeadlineMisses == 0:
		c.shedDown++
		c.shedUp = 0
	default:
		c.shedUp, c.shedDown = 0, 0
	}
	if c.shedUp >= c.pol.Hysteresis && c.st.ShedBias < maxShedBias {
		c.shedUp = 0
		from := c.st.ShedBias
		c.st.ShedBias++
		c.record(Decision{
			Time: now, Knob: KnobShed, Action: "shed tighten",
			From: int64(from), To: int64(c.st.ShedBias),
			Reason: fmt.Sprintf("deadline miss rate %.3f > %.3f (%d misses / %d done) for %d epochs",
				missRate, missRateHigh, d.DeadlineMisses, d.Completed, c.pol.Hysteresis),
			Score: missRate,
			Alternatives: []Alternative{
				{Action: "hold shed floor", Score: 1 - missRate},
			},
			Delta: d,
		})
		return true
	}
	if c.shedDown >= c.pol.Hysteresis && c.st.ShedBias > 0 {
		c.shedDown = 0
		from := c.st.ShedBias
		c.st.ShedBias--
		c.record(Decision{
			Time: now, Knob: KnobShed, Action: "shed relax",
			From: int64(from), To: int64(c.st.ShedBias),
			Reason: fmt.Sprintf("no deadline misses for %d epochs", c.pol.Hysteresis),
			Score:  1,
			Alternatives: []Alternative{
				{Action: "hold shed floor", Score: 0},
			},
			Delta: d,
		})
		return true
	}
	return false
}

// record appends a decision to the trace, enforcing TraceCap.
func (c *Controller) record(d Decision) {
	if len(c.trace) >= c.pol.TraceCap {
		c.dropped++
		return
	}
	d.Seq = len(c.trace)
	d.Epoch = c.epochN
	c.trace = append(c.trace, d)
}

// Replay folds a decision trace over an initial state and returns the
// final state. For any controller, Replay(init, Decisions()) must
// equal State() as long as no decisions were dropped — every policy
// change is reconstructible from the trace.
func Replay(init State, ds []Decision) State {
	st := init
	for _, d := range ds {
		switch d.Knob {
		case KnobCluster:
			st.ClusterOnly = d.To != 0
		case KnobFanout:
			st.WakeFanout = int(d.To)
		case KnobBackoff:
			st.BackoffShift = int(d.To)
		case KnobShed:
			st.ShedBias = int(d.To)
		}
	}
	return st
}
