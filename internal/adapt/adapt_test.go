package adapt

import "testing"

// feed drives the controller with a scripted stream of per-epoch
// DELTAS (accumulating them into the cumulative snapshots Epoch
// expects) and returns the final state.
func feed(c *Controller, deltas []Snapshot) State {
	cum := c.prev // resume from the controller's cumulative view
	now := c.epochN * 1000
	for _, d := range deltas {
		cum.StealTries += d.StealTries
		cum.FailedSteals += d.FailedSteals
		cum.StealsLocal += d.StealsLocal
		cum.StealsRemote += d.StealsRemote
		cum.SetSteals += d.SetSteals
		cum.TargetedWakes += d.TargetedWakes
		cum.BroadcastWakes += d.BroadcastWakes
		cum.LockContention += d.LockContention
		cum.TasksShed += d.TasksShed
		cum.DeadlineMisses += d.DeadlineMisses
		cum.Completed += d.Completed
		cum.Refs += d.Refs
		cum.RemoteMisses += d.RemoteMisses
		cum.StolenRefs += d.StolenRefs
		cum.StolenMisses += d.StolenMisses
		cum.Queued = d.Queued
		cum.Parked = d.Parked
		cum.Workers = d.Workers
		cum.QueuedClusters = d.QueuedClusters
		cum.Clusters = d.Clusters
		now += 1000
		c.Epoch(now, cum)
	}
	return c.State()
}

// failEpoch is one epoch where every steal probe failed.
func failEpoch() Snapshot {
	return Snapshot{StealTries: 40, FailedSteals: 40, Workers: 8, Completed: 100}
}

// healthyEpoch is one epoch of paying steals.
func healthyEpoch() Snapshot {
	return Snapshot{StealTries: 40, FailedSteals: 10, StealsLocal: 20, StealsRemote: 10, Workers: 8, Completed: 100}
}

// starveEpoch is a cluster-only epoch with queued work the restricted
// thieves cannot reach while half the pool parks.
func starveEpoch() Snapshot {
	return Snapshot{Queued: 50, Parked: 4, Workers: 8, Completed: 20}
}

// TestClusterFlipUnflipSequence pins the exact decision sequence for
// the cluster knob under a scripted stream: two failing epochs flip
// cluster-only on (not one — hysteresis), two starvation epochs flip
// it back off.
func TestClusterFlipUnflipSequence(t *testing.T) {
	c := New(Policy{Hysteresis: 2, NoWake: true, NoBackoff: true, NoShed: true}, State{})

	feed(c, []Snapshot{failEpoch()})
	if c.State().ClusterOnly {
		t.Fatal("flipped cluster-only after one epoch; hysteresis demands two")
	}
	feed(c, []Snapshot{failEpoch()})
	if !c.State().ClusterOnly {
		t.Fatal("two consecutive all-fail epochs must flip cluster-only on")
	}
	if c.Count() != 1 || c.DecisionAt(0).Knob != KnobCluster || c.DecisionAt(0).To != 1 {
		t.Fatalf("expected exactly one cluster-on decision, trace = %+v", c.Decisions())
	}

	feed(c, []Snapshot{starveEpoch()})
	if !c.State().ClusterOnly {
		t.Fatal("unflipped after one starvation epoch; hysteresis demands two")
	}
	feed(c, []Snapshot{starveEpoch()})
	if c.State().ClusterOnly {
		t.Fatal("two consecutive starvation epochs must flip cluster-only off")
	}
	if c.Count() != 2 || c.DecisionAt(1).Knob != KnobCluster || c.DecisionAt(1).To != 0 {
		t.Fatalf("expected a second cluster-off decision, trace = %+v", c.Decisions())
	}

	// Every decision carries the reconstruction fields.
	for _, d := range c.Decisions() {
		if d.Reason == "" || d.Action == "" || len(d.Alternatives) == 0 {
			t.Errorf("decision %d lacks trace detail: %+v", d.Seq, d)
		}
	}
}

// TestClusterStreakInterrupted pins that a healthy epoch in the middle
// of a failing streak resets it: fail, heal, fail never flips at
// hysteresis 2.
func TestClusterStreakInterrupted(t *testing.T) {
	c := New(Policy{Hysteresis: 2}, State{})
	feed(c, []Snapshot{failEpoch(), healthyEpoch(), failEpoch()})
	if c.State().ClusterOnly || c.Count() != 0 {
		t.Fatalf("interrupted streak must not flip; state=%+v trace=%+v", c.State(), c.Decisions())
	}
}

// TestClusterRemoteSuccessVeto pins that a high fail ratio does NOT
// flip cluster-only while remote steals still pay: 10 remote successes
// out of 100 tries is real cross-cluster work.
func TestClusterRemoteSuccessVeto(t *testing.T) {
	c := New(Policy{Hysteresis: 2, NoTrial: true}, State{})
	veto := Snapshot{StealTries: 100, FailedSteals: 90, StealsRemote: 10, Workers: 8, Completed: 100}
	feed(c, []Snapshot{veto, veto, veto, veto})
	if c.State().ClusterOnly {
		t.Fatal("cluster-only flipped while remote steals were paying")
	}
}

// TestFanoutWidenNarrowSequence pins the fanout ladder: sustained
// backlog doubles the fanout (bounded by MaxFanout), and a sustained
// quiet stream walks it back down (bounded by MinFanout).
func TestFanoutWidenNarrowSequence(t *testing.T) {
	c := New(Policy{Hysteresis: 2, MaxFanout: 16, NoTrial: true}, State{})
	backlog := Snapshot{Queued: 100, Parked: 1, Workers: 8, Completed: 50}

	feed(c, []Snapshot{backlog, backlog})
	if got := c.State().WakeFanout; got != 8 {
		t.Fatalf("fanout after sustained backlog = %d, want 8", got)
	}
	feed(c, []Snapshot{backlog, backlog})
	if got := c.State().WakeFanout; got != 16 {
		t.Fatalf("fanout after more backlog = %d, want 16 (MaxFanout)", got)
	}
	feed(c, []Snapshot{backlog, backlog})
	if got := c.State().WakeFanout; got != 16 {
		t.Fatalf("fanout exceeded MaxFanout: %d", got)
	}

	quiet := Snapshot{Queued: 1, TargetedWakes: 20, Workers: 8, Completed: 50}
	feed(c, []Snapshot{quiet, quiet})
	if got := c.State().WakeFanout; got != 8 {
		t.Fatalf("fanout after quiet stream = %d, want 8", got)
	}
	feed(c, []Snapshot{quiet, quiet, quiet, quiet, quiet, quiet})
	if got := c.State().WakeFanout; got != 2 {
		t.Fatalf("fanout floor = %d, want MinFanout 2", got)
	}
}

// TestFanoutNoOscillationOnBoundary pins the dead band: a stream
// sitting exactly on the widen boundary (Queued == 2*fanout) and a
// stream alternating across it every epoch must produce zero
// decisions.
func TestFanoutNoOscillationOnBoundary(t *testing.T) {
	c := New(Policy{Hysteresis: 2, NoTrial: true}, State{})
	onBoundary := Snapshot{Queued: 8, Parked: 1, Workers: 8, Completed: 50} // == 2*fanout(4): neither widen nor narrow
	feed(c, []Snapshot{onBoundary, onBoundary, onBoundary, onBoundary, onBoundary, onBoundary})
	if c.Count() != 0 || c.State().WakeFanout != 4 {
		t.Fatalf("boundary stream moved the fanout: state=%+v trace=%+v", c.State(), c.Decisions())
	}

	c = New(Policy{Hysteresis: 2, NoTrial: true}, State{})
	above := Snapshot{Queued: 20, Parked: 1, Workers: 8, Completed: 50}
	below := Snapshot{Queued: 0, Workers: 8, Completed: 50}
	feed(c, []Snapshot{above, below, above, below, above, below, above, below})
	if c.Count() != 0 || c.State().WakeFanout != 4 {
		t.Fatalf("alternating stream oscillated: state=%+v trace=%+v", c.State(), c.Decisions())
	}
}

// TestBackoffLadder pins the backoff knob: sustained all-fail probe
// storms raise the shift to its cap, and probes paying again walk it
// back to zero.
func TestBackoffLadder(t *testing.T) {
	c := New(Policy{Hysteresis: 2, NoCluster: true}, State{})
	storm := Snapshot{StealTries: 200, FailedSteals: 200, Workers: 8, Completed: 10}
	feed(c, []Snapshot{storm, storm, storm, storm, storm, storm, storm, storm})
	if got := c.State().BackoffShift; got != maxBackoffShift {
		t.Fatalf("backoff shift after sustained storm = %d, want cap %d", got, maxBackoffShift)
	}
	paying := Snapshot{StealTries: 100, FailedSteals: 20, StealsLocal: 80, Workers: 8, Completed: 100}
	feed(c, []Snapshot{paying, paying, paying, paying, paying, paying})
	if got := c.State().BackoffShift; got != 0 {
		t.Fatalf("backoff shift after probes pay again = %d, want 0", got)
	}
}

// TestShedBiasFromMissRate pins the shed knob: a sustained deadline
// miss rate tightens the floor; miss-free epochs relax it back.
func TestShedBiasFromMissRate(t *testing.T) {
	c := New(Policy{Hysteresis: 2, NoTrial: true}, State{})
	missing := Snapshot{Completed: 100, DeadlineMisses: 10, Workers: 8}
	feed(c, []Snapshot{missing, missing})
	if got := c.State().ShedBias; got != 1 {
		t.Fatalf("shed bias after sustained misses = %d, want 1", got)
	}
	clean := Snapshot{Completed: 100, Workers: 8}
	feed(c, []Snapshot{clean, clean})
	if got := c.State().ShedBias; got != 0 {
		t.Fatalf("shed bias after clean epochs = %d, want 0", got)
	}
}

// TestReplayReconstruction pins the BLIS property: folding the
// decision trace over the initial state reproduces the controller's
// final state exactly, on a stream that moves every knob.
func TestReplayReconstruction(t *testing.T) {
	init := State{WakeFanout: 4}
	c := New(Policy{Hysteresis: 2}, init)
	stream := []Snapshot{
		failEpoch(), failEpoch(), // cluster on
		starveEpoch(), starveEpoch(), // cluster off (and fanout widen pressure)
		{Queued: 100, Parked: 1, Workers: 8, Completed: 100}, {Queued: 100, Parked: 1, Workers: 8, Completed: 100}, // widen
		{StealTries: 200, FailedSteals: 200, Workers: 8, Completed: 100},
		{StealTries: 200, FailedSteals: 200, Workers: 8, Completed: 100}, // backoff up (+cluster pressure)
		{Completed: 100, DeadlineMisses: 50, Workers: 8},
		{Completed: 100, DeadlineMisses: 50, Workers: 8}, // shed tighten
	}
	final := feed(c, stream)
	if c.Count() == 0 {
		t.Fatal("stream produced no decisions; the reconstruction test needs a non-trivial trace")
	}
	if c.Dropped() != 0 {
		t.Fatalf("trace dropped %d decisions under default cap", c.Dropped())
	}
	if got := Replay(init, c.Decisions()); got != final {
		t.Fatalf("Replay(init, trace) = %+v, controller state = %+v", got, final)
	}
}

// TestTrialLadder pins the counterfactual-trial machinery: four
// rule-quiet epochs start a trial that flips cluster-only on; a trial
// window with no throughput gain reverts the flip and doubles the
// spacing; a later trial whose window clearly beats the baseline is
// kept. The whole trace, trials included, must replay.
func TestTrialLadder(t *testing.T) {
	c := New(Policy{Hysteresis: 2, NoWake: true, NoBackoff: true, NoShed: true}, State{})
	quiet := Snapshot{StealTries: 10, FailedSteals: 5, StealsLocal: 5, Workers: 8, Completed: 100}

	feed(c, []Snapshot{quiet, quiet, quiet})
	if c.State().ClusterOnly {
		t.Fatal("trial fired before TrialFirst quiet epochs")
	}
	feed(c, []Snapshot{quiet})
	if !c.State().ClusterOnly {
		t.Fatal("fourth rule-quiet epoch must start a cluster-only trial")
	}
	feed(c, []Snapshot{quiet, quiet}) // trial window: throughput unchanged
	if c.State().ClusterOnly {
		t.Fatal("a trial with no throughput gain must revert")
	}

	// The ladder doubled: the next trial needs eight quiet epochs.
	feed(c, []Snapshot{quiet, quiet, quiet, quiet, quiet, quiet, quiet})
	if c.State().ClusterOnly {
		t.Fatal("trial restarted before the doubled spacing elapsed")
	}
	feed(c, []Snapshot{quiet})
	if !c.State().ClusterOnly {
		t.Fatal("second trial due after eight quiet epochs")
	}
	better := quiet
	better.Completed = 200
	feed(c, []Snapshot{better, better}) // trial window: 2x throughput
	if !c.State().ClusterOnly {
		t.Fatal("a trial that doubles throughput must be kept")
	}

	if got := Replay(State{WakeFanout: DefaultWakeFanout}, c.Decisions()); got != c.State() {
		t.Fatalf("Replay over the trial trace = %+v, controller state = %+v", got, c.State())
	}
}

// TestTrialIdleEpochsDoNotCount pins that zero-throughput epochs (an
// idle pool between requests) neither advance the trial clock nor
// start trials — and move no other knob either.
func TestTrialIdleEpochsDoNotCount(t *testing.T) {
	c := New(Policy{Hysteresis: 2}, State{})
	idle := Snapshot{Workers: 8}
	feed(c, []Snapshot{idle, idle, idle, idle, idle, idle, idle, idle})
	if c.Count() != 0 || c.State().ClusterOnly {
		t.Fatalf("idle epochs must not move any knob: state=%+v trace=%+v", c.State(), c.Decisions())
	}
}

// lossyEpoch is one epoch where cross-cluster steals succeed but the
// stolen work pays triple the non-local miss rate of home-placed work:
// the locality regime probe statistics cannot see.
func lossyEpoch() Snapshot {
	return Snapshot{
		StealTries: 40, FailedSteals: 10, StealsLocal: 20, StealsRemote: 10,
		Refs: 10_000, RemoteMisses: 500, StolenRefs: 1_000, StolenMisses: 120,
		Workers: 8, Completed: 100, Clusters: 4,
	}
}

// TestLocalityRuleFlipsClusterOn pins the locality rule: remote steals
// that succeed (vetoing the fail-ratio rule) but whose stolen work pays
// >= 2x the home miss rate flip cluster-only on after hysteresis, and
// the decision explains itself in miss-rate terms.
func TestLocalityRuleFlipsClusterOn(t *testing.T) {
	c := New(Policy{Hysteresis: 2, NoWake: true, NoBackoff: true, NoShed: true}, State{})
	feed(c, []Snapshot{lossyEpoch()})
	if c.State().ClusterOnly {
		t.Fatal("locality rule fired after one epoch; hysteresis demands two")
	}
	feed(c, []Snapshot{lossyEpoch()})
	if !c.State().ClusterOnly {
		t.Fatal("two lossy epochs must flip cluster-only on")
	}
	if c.Count() != 1 {
		t.Fatalf("expected exactly one decision, trace = %+v", c.Decisions())
	}
	d := c.DecisionAt(0)
	if d.Knob != KnobCluster || d.To != 1 {
		t.Fatalf("decision = %+v, want cluster-only on", d)
	}
	if want := "stolen-work miss rate"; len(d.Reason) == 0 || d.Reason[:len(want)] != want {
		t.Fatalf("decision reason %q does not name the locality signal", d.Reason)
	}
}

// TestLocalityStrongEvidenceSkipsHysteresis pins the fast path: a
// stolen-miss rate at quadruple the home rate over twice the usual
// reference volume flips cluster-only in a single epoch — waiting out
// the streak would let remotely-stolen tasks seed more wrong-cluster
// subtrees.
func TestLocalityStrongEvidenceSkipsHysteresis(t *testing.T) {
	c := New(Policy{Hysteresis: 2, NoWake: true, NoBackoff: true, NoShed: true}, State{})
	ep := lossyEpoch()
	ep.StolenMisses = 250 // rate 0.25 vs home 0.028: overwhelming
	feed(c, []Snapshot{ep})
	if !c.State().ClusterOnly || c.Count() != 1 {
		t.Fatalf("overwhelming evidence must flip in one epoch: state=%+v trace=%+v", c.State(), c.Decisions())
	}
}

// TestLocalityTrickleNeverFires pins the sustained-rate floor: a steal
// trickle (one lossy remote steal every third epoch) accumulates volume
// past the absolute guards but must never flip the knob — restricting a
// whole machine over a handful of steals trades real load balance for
// noise.
func TestLocalityTrickleNeverFires(t *testing.T) {
	c := New(Policy{Hysteresis: 2, NoTrial: true, NoWake: true, NoBackoff: true, NoShed: true}, State{})
	steal := Snapshot{
		StealTries: 4, FailedSteals: 1, StealsLocal: 2, StealsRemote: 1,
		Refs: 10_000, RemoteMisses: 100, StolenRefs: 90, StolenMisses: 30,
		Workers: 8, Completed: 100, Clusters: 4,
	}
	quiet := steal
	quiet.StealsRemote, quiet.StolenRefs, quiet.StolenMisses = 0, 0, 0
	var stream []Snapshot
	for i := 0; i < 10; i++ {
		stream = append(stream, steal, quiet, quiet)
	}
	feed(c, stream)
	if c.State().ClusterOnly || c.Count() != 0 {
		t.Fatalf("trickle fired the locality rule: state=%+v trace=%+v", c.State(), c.Decisions())
	}
}

// TestLocalityRuleGuards pins the stand-down conditions: a deep backlog
// concentrated in a minority of clusters, too few remote steals, or a
// stolen-miss rate under the absolute floor must each block the flip.
func TestLocalityRuleGuards(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Snapshot)
	}{
		{"concentrated backlog", func(s *Snapshot) { s.Queued = 100; s.QueuedClusters = 1 }},
		{"no remote steals", func(s *Snapshot) { s.StealsRemote = 0 }},
		{"too few stolen refs", func(s *Snapshot) { s.StolenRefs = 8; s.StolenMisses = 2 }},
		{"rate under floor", func(s *Snapshot) { s.RemoteMisses = 15; s.StolenMisses = 15 }},
	}
	for _, tc := range cases {
		c := New(Policy{Hysteresis: 2, NoTrial: true, NoWake: true, NoBackoff: true, NoShed: true}, State{})
		ep := lossyEpoch()
		tc.mut(&ep)
		feed(c, []Snapshot{ep, ep, ep, ep})
		if c.State().ClusterOnly || c.Count() != 0 {
			t.Errorf("%s: locality rule fired anyway: state=%+v trace=%+v", tc.name, c.State(), c.Decisions())
		}
	}
}

// TestRuleOwnedStopsTrials pins that the first rule firing on the
// cluster knob permanently disables counterfactual trials: the rules'
// signals are bidirectional, so exploration on top of them only churns.
func TestRuleOwnedStopsTrials(t *testing.T) {
	c := New(Policy{Hysteresis: 2, NoWake: true, NoBackoff: true, NoShed: true}, State{})
	feed(c, []Snapshot{failEpoch(), failEpoch()}) // fail-ratio rule: cluster on
	if !c.State().ClusterOnly || c.Count() != 1 {
		t.Fatalf("setup: rule did not flip cluster-only on (trace=%+v)", c.Decisions())
	}
	quiet := Snapshot{StealTries: 10, FailedSteals: 5, StealsLocal: 5, Workers: 8, Completed: 100}
	stream := make([]Snapshot, 20)
	for i := range stream {
		stream[i] = quiet
	}
	feed(c, stream)
	if c.Count() != 1 || !c.State().ClusterOnly {
		t.Fatalf("trials ran after a rule owned the knob: state=%+v trace=%+v", c.State(), c.Decisions())
	}
}

// TestTraceCap pins that the trace cap applies decisions but stops
// recording them, counting the overflow.
func TestTraceCap(t *testing.T) {
	c := New(Policy{Hysteresis: 1, TraceCap: 1, NoBackoff: true, NoWake: true}, State{})
	feed(c, []Snapshot{failEpoch(), starveEpoch()}) // hysteresis 1: flip on, then off
	if c.Count() != 1 {
		t.Fatalf("trace length = %d, want capped 1", c.Count())
	}
	if c.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", c.Dropped())
	}
	if c.State().ClusterOnly {
		t.Fatal("capped decision must still be applied")
	}
}
