// Package perfmon is the analogue of the DASH hardware performance
// monitor the paper uses for its cache-miss figures: a set of per-processor
// counters covering the memory system (references, misses by where they
// were serviced) and the runtime (task placement, stealing, locking).
package perfmon

// Counters is one processor's event counts.
type Counters struct {
	// Memory system.
	Refs          int64 // simulated memory references (cache lines touched)
	L1Hits        int64
	L2Hits        int64
	LocalMisses   int64 // misses serviced by local cluster memory
	RemoteMisses  int64 // misses serviced by a remote cluster's memory
	DirtyMisses   int64 // misses serviced cache-to-cache from a dirty line
	Upgrades      int64 // write upgrades of shared lines
	Invalidations int64 // lines invalidated in this cache by remote writes
	Writebacks    int64 // dirty lines written back on eviction
	Prefetches    int64 // prefetch issues (per line)
	PrefetchFills int64 // prefetches that actually brought a line in

	// Stolen-work attribution: the same references and non-local misses
	// (remote + dirty), counted only while the processor runs a task
	// most recently moved by a cross-cluster steal. The ratio of the
	// two against the machine-wide rate is the adaptive controller's
	// locality signal — what remote stealing costs per reference.
	StolenRefs   int64
	StolenMisses int64

	// Cycle accounting.
	MemCycles     int64 // cycles stalled on the memory system
	ComputeCycles int64 // cycles doing useful work

	// Runtime events.
	TasksRun     int64 // tasks executed to completion on this processor
	TasksAtHome  int64 // tasks that ran on their affinity-preferred server
	Spawns       int64 // tasks created by code running here
	SpawnBatches int64 // SpawnN bursts published as one batch (native deque backend only)
	StealTries   int64 // steal probes issued
	StealsLocal  int64 // successful steals from the local cluster
	StealsRemote int64 // successful steals from a remote cluster
	SetSteals    int64 // whole task-affinity sets stolen
	FailedSteals int64 // steal probes that examined a victim and took nothing
	LockBlocks   int64 // monitor acquisitions that had to block

	// LockContention counts scheduler-internal lock acquisitions (a
	// worker's queue mutex or a set-table shard mutex) whose TryLock
	// fast path failed and had to block. The simulator is single-threaded
	// and reports zero; on the native backend it measures how contended
	// the decentralized placement/steal protocol is.
	LockContention int64

	// Idle-wakeup traffic (counted against the waking server).
	TargetedWakes  int64 // wakeups limited to the first K idle processors
	BroadcastWakes int64 // wakeups that fell back to waking every idle processor

	// Fault injection and degradation.
	FaultEvents   int64 // injected fault events that struck this processor
	Redistributed int64 // tasks drained off this (failed) server to survivors
	Retries       int64 // task launches aborted here and retried elsewhere
	GaveUp        int64 // launches whose retry budget ran out (fails the run)

	// Overload shedding (native SLO layer).
	TasksShed      int64 // tasks dropped before running (deadline expired or below the shed floor)
	DeadlineMisses int64 // shed tasks whose per-spawn deadline had already passed
}

// Misses returns the total cache misses serviced by any memory.
func (c Counters) Misses() int64 {
	return c.LocalMisses + c.RemoteMisses + c.DirtyMisses
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Refs += o.Refs
	c.L1Hits += o.L1Hits
	c.L2Hits += o.L2Hits
	c.LocalMisses += o.LocalMisses
	c.RemoteMisses += o.RemoteMisses
	c.DirtyMisses += o.DirtyMisses
	c.Upgrades += o.Upgrades
	c.Invalidations += o.Invalidations
	c.Writebacks += o.Writebacks
	c.Prefetches += o.Prefetches
	c.PrefetchFills += o.PrefetchFills
	c.StolenRefs += o.StolenRefs
	c.StolenMisses += o.StolenMisses
	c.MemCycles += o.MemCycles
	c.ComputeCycles += o.ComputeCycles
	c.TasksRun += o.TasksRun
	c.TasksAtHome += o.TasksAtHome
	c.Spawns += o.Spawns
	c.SpawnBatches += o.SpawnBatches
	c.StealTries += o.StealTries
	c.StealsLocal += o.StealsLocal
	c.StealsRemote += o.StealsRemote
	c.SetSteals += o.SetSteals
	c.FailedSteals += o.FailedSteals
	c.LockBlocks += o.LockBlocks
	c.LockContention += o.LockContention
	c.TargetedWakes += o.TargetedWakes
	c.BroadcastWakes += o.BroadcastWakes
	c.FaultEvents += o.FaultEvents
	c.Redistributed += o.Redistributed
	c.Retries += o.Retries
	c.GaveUp += o.GaveUp
	c.TasksShed += o.TasksShed
	c.DeadlineMisses += o.DeadlineMisses
}

// Monitor holds one Counters per processor.
type Monitor struct {
	Per []Counters
}

// New creates a monitor for n processors.
func New(n int) *Monitor {
	return &Monitor{Per: make([]Counters, n)}
}

// Total returns the sum over all processors.
func (m *Monitor) Total() Counters {
	var t Counters
	for i := range m.Per {
		t.Add(m.Per[i])
	}
	return t
}

// Reset zeroes every counter (e.g. after a warm-up phase).
func (m *Monitor) Reset() {
	for i := range m.Per {
		m.Per[i] = Counters{}
	}
}
