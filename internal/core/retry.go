package core

import (
	"github.com/coolrts/cool/internal/sim"
	"github.com/coolrts/cool/internal/trace"
)

// This file implements the transient-failure retry path. A launch
// attempt can be aborted by fault injection (a targeted FailTask event
// or a flaky window on the launching processor) before the task body
// runs; the runtime's retry policy then decides whether to re-place the
// task for another attempt or give up and fail the run. Because aborts
// strike only fresh launches — never started continuations — a retried
// task re-runs a body that has had no side effects, so results are
// unchanged by where (or how often) the launch was attempted.

// SetAbortHandler installs the runtime's retry hook. The handler
// returns true when it scheduled another attempt (after its backoff),
// false when the budget is exhausted; nil means any abort fails the
// run immediately.
func (s *Scheduler) SetAbortHandler(fn func(td *TaskDesc, failedOn int, now int64) bool) {
	s.onAbort = fn
}

// launchAborted consults the engine's transient-fault injections for a
// fresh launch of td on p. When the launch is struck it either hands
// the task to the retry hook (counting a retry) or fails the run
// (counting a give-up); either way p immediately re-enters dispatch so
// other queued work is not stranded behind the aborted launch.
func (s *Scheduler) launchAborted(td *TaskDesc, p *sim.Proc) bool {
	if !s.Eng.LaunchShouldAbort(td.T, p) {
		return false
	}
	now := p.Clock
	if s.onAbort != nil && s.onAbort(td, p.ID, now) {
		s.Mon.Per[p.ID].Retries++
	} else {
		s.Mon.Per[p.ID].GaveUp++
		s.Trace.Add(now, p.ID, trace.KindRetry, td.T.Name, -1)
		s.Eng.FailRun(&sim.TaskAbort{Task: td.T.Name, Proc: p.ID, Time: now, Attempts: td.T.LaunchAborts()})
		return true
	}
	s.Eng.Redispatch(p)
	return true
}

// TraceRetry records a retry decision: the launch failed on proc and
// the next attempt goes to tgt.
func (s *Scheduler) TraceRetry(now int64, proc int, task string, tgt int) {
	s.Trace.Add(now, proc, trace.KindRetry, task, int64(tgt))
}

// RetryTarget picks the server for the next launch attempt of a task
// whose launch just aborted on failedOn. attempt is the number of
// attempts already failed; successive retries rotate through different
// survivors. Placement is affinity-aware:
//
//   - task-affinity set members must follow their set's current home so
//     the set never splits across servers (the whole point of the set);
//   - object-bound tasks stay in the cluster holding their object's
//     memory, just on a different processor than the one that failed;
//   - everything else prefers a server in a different cluster from the
//     failed processor, on the theory that whatever made it flaky
//     (thermal, memory pressure) may be cluster-local.
func (s *Scheduler) RetryTarget(td *TaskDesc, failedOn, attempt int) int {
	n := s.Cfg.Processors
	switch td.Class {
	case ClassTaskSet:
		if h, ok := s.setHome[td.AffObj]; ok && !s.Srv[h].dead {
			return h
		}
		return s.aliveServer(failedOn)
	case ClassObjectBound:
		home := td.Server
		for d := 0; d < n; d++ {
			v := (home + attempt + d) % n
			if v != failedOn && !s.Srv[v].dead && s.Cfg.SameCluster(home, v) {
				return v
			}
		}
	}
	for d := 0; d < n; d++ {
		v := (failedOn + attempt + d) % n
		if v != failedOn && !s.Srv[v].dead && !s.Cfg.SameCluster(failedOn, v) {
			return v
		}
	}
	for d := 0; d < n; d++ {
		v := (failedOn + attempt + d) % n
		if v != failedOn && !s.Srv[v].dead {
			return v
		}
	}
	return s.aliveServer(failedOn)
}

// EnqueueRetry re-enqueues a transiently failed task on tgt once its
// backoff has elapsed. The target chosen at abort time is revalidated
// against the current world: a set member is forced onto its set's
// live home (re-homing the set if that died), and a dead target is
// rerouted like any other placement.
func (s *Scheduler) EnqueueRetry(td *TaskDesc, tgt int, now int64) {
	if td.Class == ClassTaskSet {
		if h, ok := s.setHome[td.AffObj]; ok && !s.Srv[h].dead {
			tgt = h
		} else {
			tgt = s.aliveServer(tgt)
			s.setHome[td.AffObj] = tgt
		}
	} else if s.Srv[tgt].dead {
		tgt = s.reroute(td, tgt)
	}
	td.Server = tgt
	sv := s.Srv[tgt]
	if td.Slot >= 0 {
		q := &sv.slots[td.Slot]
		q.push(td)
		sv.nonEmpty.add(q)
	} else {
		sv.plain.push(td)
	}
	s.noteEnqueued(sv, 1)
	s.Trace.Add(now, -1, trace.KindEnqueue, td.T.Name, int64(tgt))
	s.wake(tgt, now)
}

// QueueDepths returns the number of tasks queued on each server (dead
// servers report -1) — the progress snapshot embedded in deadline
// errors.
func (s *Scheduler) QueueDepths() []int {
	out := make([]int, len(s.Srv))
	for i, sv := range s.Srv {
		if sv.dead {
			out[i] = -1
		} else {
			out[i] = sv.queued
		}
	}
	return out
}
