package core

import (
	"fmt"
	"strings"

	"github.com/coolrts/cool/internal/sim"
	"github.com/coolrts/cool/internal/trace"
)

// This file implements graceful degradation: when a server's processor
// is retired by fault injection, its queued work — object-affinity
// tasks, whole task-affinity sets, plain/processor tasks, and parked
// continuations — is drained and redistributed to the surviving
// servers, respecting affinity where possible. All decisions are
// deterministic functions of the victim id and queue contents, so a
// faulted run replays exactly.

// AliveServers returns the number of servers not retired by FailServer.
func (s *Scheduler) AliveServers() int {
	n := 0
	for _, sv := range s.Srv {
		if !sv.dead {
			n++
		}
	}
	return n
}

// ServerAlive reports whether server sv has not been retired.
func (s *Scheduler) ServerAlive(sv int) bool { return !s.Srv[sv].dead }

// aliveServer maps sv to itself when alive, otherwise deterministically
// to the nearest surviving server: same-cluster survivors first (they
// share the dead server's local memory), then increasing processor
// distance. Returns sv unchanged if no server survives.
func (s *Scheduler) aliveServer(sv int) int {
	if !s.Srv[sv].dead {
		return sv
	}
	n := s.Cfg.Processors
	for d := 1; d < n; d++ {
		v := (sv + d) % n
		if !s.Srv[v].dead && s.Cfg.SameCluster(sv, v) {
			return v
		}
	}
	for d := 1; d < n; d++ {
		v := (sv + d) % n
		if !s.Srv[v].dead {
			return v
		}
	}
	return sv
}

// spreadAlive returns surviving servers in rotation, for load-balanced
// redistribution of tasks with no binding affinity.
func (s *Scheduler) spreadAlive() int {
	n := s.Cfg.Processors
	for i := 0; i < n; i++ {
		v := s.failRR % n
		s.failRR++
		if !s.Srv[v].dead {
			return v
		}
	}
	return 0
}

// failoverTarget picks the surviving server for one redistributed task.
// Task-affinity sets move as a unit (the first member picks the new
// home, the rest follow); object-bound tasks stay as close to their
// object's home memory as possible; everything else is spread for load
// balance.
func (s *Scheduler) failoverTarget(td *TaskDesc) int {
	switch td.Class {
	case ClassTaskSet:
		if h, ok := s.setHome[td.AffObj]; ok && !s.Srv[h].dead {
			return h
		}
		tgt := s.spreadAlive()
		s.setHome[td.AffObj] = tgt
		return tgt
	case ClassObjectBound:
		return s.aliveServer(td.Server)
	default:
		return s.spreadAlive()
	}
}

// moveTo re-enqueues a drained task on a surviving server.
func (s *Scheduler) moveTo(td *TaskDesc, tgt, victim int, now int64) {
	td.Server = tgt
	tsv := s.Srv[tgt]
	if td.Slot >= 0 {
		q := &tsv.slots[td.Slot]
		q.push(td)
		tsv.nonEmpty.add(q)
	} else {
		tsv.plain.push(td)
	}
	s.noteEnqueued(tsv, 1)
	s.Mon.Per[victim].Redistributed++
	s.Trace.Add(now, victim, trace.KindRedistribute, td.T.Name, int64(tgt))
}

// FailServer retires server victim: every task queued there is drained
// and redistributed to surviving servers, the task it was running (if
// any) is re-enqueued as a continuation elsewhere, and the stealing
// victim list shrinks (victimOrder skips dead servers). Safe to call
// for an already-dead server (no-op).
func (s *Scheduler) FailServer(victim int, running *sim.Task, now int64) {
	sv := s.Srv[victim]
	if sv.dead {
		return
	}
	sv.dead = true
	s.llDirty = true // victim may have been the least-loaded candidate
	s.rebuildVictimRings()
	s.Mon.Per[victim].FaultEvents++
	s.Trace.Add(now, victim, trace.KindFault, "proc-fail", 0)

	var resumes, tasks []*TaskDesc
	for td := sv.resume.pop(); td != nil; td = sv.resume.pop() {
		resumes = append(resumes, td)
	}
	for td := sv.plain.pop(); td != nil; td = sv.plain.pop() {
		tasks = append(tasks, td)
	}
	for q := sv.nonEmpty.head; q != nil; q = sv.nonEmpty.head {
		for td := q.pop(); td != nil; td = q.pop() {
			tasks = append(tasks, td)
		}
		sv.nonEmpty.removeQ(q)
	}
	sv.cur = nil
	s.queuedTotal -= sv.queued
	sv.queued = 0

	if s.AliveServers() == 0 {
		// No survivor to hand work to; the engine reports the stall.
		return
	}
	for _, td := range tasks {
		s.moveTo(td, s.failoverTarget(td), victim, now)
	}
	for _, td := range resumes {
		tgt := s.aliveServer(victim)
		td.LastProc = tgt
		tsv := s.Srv[tgt]
		tsv.resume.push(td)
		s.noteEnqueued(tsv, 1)
		s.Mon.Per[victim].Redistributed++
		s.Trace.Add(now, victim, trace.KindRedistribute, td.T.Name, int64(tgt))
	}
	if running != nil {
		if td, ok := running.Data.(*TaskDesc); ok {
			tgt := s.aliveServer(victim)
			s.Eng.Unblock(running, now)
			td.LastProc = tgt
			tsv := s.Srv[tgt]
			tsv.resume.push(td)
			s.noteEnqueued(tsv, 1)
			s.Mon.Per[victim].Redistributed++
			s.Trace.Add(now, victim, trace.KindRedistribute, td.T.Name, int64(tgt))
		}
	}
	s.Eng.NotifyWork(now)
}

// NoteFault records a non-fatal fault event (slowdown, stall, memory
// degradation) against a processor for perfmon and tracing.
func (s *Scheduler) NoteFault(now int64, proc int, what string, arg int64) {
	if proc >= 0 && proc < len(s.Mon.Per) {
		s.Mon.Per[proc].FaultEvents++
	}
	s.Trace.Add(now, proc, trace.KindFault, what, arg)
}

// Snapshot renders the per-server queue state — the diagnostic embedded
// in no-progress watchdog errors.
func (s *Scheduler) Snapshot() string {
	var b strings.Builder
	b.WriteString("scheduler queues:")
	total := 0
	for _, sv := range s.Srv {
		state := ""
		if sv.dead {
			state = " dead"
		}
		fmt.Fprintf(&b, " P%d:%d%s", sv.id, sv.queued, state)
		total += sv.queued
	}
	fmt.Fprintf(&b, " (total %d queued)", total)
	return b.String()
}
