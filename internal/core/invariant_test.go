package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/coolrts/cool/internal/sim"
)

// checkInvariants validates the internal consistency of every server's
// queue structures, the machine-wide counters derived from them, the
// lazily-repaired least-loaded candidate, and (under whole-set stealing)
// that no task-affinity set is split across two live servers.
func checkInvariants(s *Scheduler) error {
	machineTotal := 0
	setServers := map[int64]int{} // affinity object -> server of queued members
	for _, sv := range s.Srv {
		machineTotal += sv.queued
		if sv.dead && sv.queued != 0 {
			return fmt.Errorf("server %d: dead but %d tasks queued", sv.id, sv.queued)
		}
		for i := range sv.slots {
			for td := sv.slots[i].head; td != nil; td = td.next {
				if td.Class != ClassTaskSet {
					continue
				}
				if prev, ok := setServers[td.AffObj]; ok && prev != sv.id {
					return fmt.Errorf("task-affinity set %d split across servers %d and %d", td.AffObj, prev, sv.id)
				}
				setServers[td.AffObj] = sv.id
			}
		}
	}
	if !s.Pol.StealWholeSets {
		// Single members of a set may legitimately scatter when whole-set
		// stealing is off; only the structural checks below apply.
		setServers = nil
	}
	for obj, svID := range setServers {
		if home, ok := s.setHome[obj]; ok && home != svID {
			return fmt.Errorf("set %d queued on server %d but setHome says %d", obj, svID, home)
		}
	}
	if machineTotal != s.queuedTotal {
		return fmt.Errorf("queuedTotal=%d but servers hold %d", s.queuedTotal, machineTotal)
	}
	if !s.llDirty {
		b := s.Srv[s.llBest]
		if b.dead {
			return fmt.Errorf("llBest=%d is dead but llDirty is false", s.llBest)
		}
		for _, sv := range s.Srv {
			if sv.dead {
				continue
			}
			if sv.queued < b.queued || (sv.queued == b.queued && sv.id < b.id) {
				return fmt.Errorf("llBest=%d (queued %d) but server %d has %d", b.id, b.queued, sv.id, sv.queued)
			}
		}
	}
	for _, sv := range s.Srv {
		total := sv.resume.size + sv.plain.size
		listed := map[int]bool{}
		for q := sv.nonEmpty.head; q != nil; q = q.nextQ {
			if q.empty() {
				return fmt.Errorf("server %d: empty queue %d in non-empty list", sv.id, q.slotIdx)
			}
			if listed[q.slotIdx] {
				return fmt.Errorf("server %d: queue %d listed twice", sv.id, q.slotIdx)
			}
			listed[q.slotIdx] = true
		}
		for i := range sv.slots {
			q := &sv.slots[i]
			total += q.size
			if !q.empty() && !listed[i] {
				return fmt.Errorf("server %d: non-empty queue %d missing from list", sv.id, i)
			}
			if q.empty() && q.inList {
				return fmt.Errorf("server %d: empty queue %d flagged inList", sv.id, i)
			}
			// Each queue's links must be a consistent chain.
			n := 0
			for td := q.head; td != nil; td = td.next {
				if td.q != q {
					return fmt.Errorf("server %d: task in queue %d with wrong back-pointer", sv.id, i)
				}
				n++
			}
			if n != q.size {
				return fmt.Errorf("server %d: queue %d size %d but %d tasks linked", sv.id, i, q.size, n)
			}
		}
		if total != sv.queued {
			return fmt.Errorf("server %d: queued=%d but queues hold %d", sv.id, sv.queued, total)
		}
	}
	return nil
}

// TestSchedulerInvariantsUnderRandomLoad drives a real engine with
// randomized task placements and validates queue consistency both
// mid-flight (from within tasks) and after the run drains.
func TestSchedulerInvariantsUnderRandomLoad(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		s, space := newSched(t, 8, DefaultPolicy())
		rng := rand.New(rand.NewSource(seed))
		objs := make([]int64, 6)
		for i := range objs {
			objs[i] = space.AllocPages(4096, rng.Intn(8))
		}
		var launched int
		var check func(ctx *sim.Ctx)
		spawn := func(ctx *sim.Ctx, depth int) {
			kind := Affinity{Kind: AffinityKind(rng.Intn(5))}
			kind.TaskObj = objs[rng.Intn(len(objs))]
			kind.ObjectObj = objs[rng.Intn(len(objs))]
			kind.Processor = rng.Intn(16)
			class, server, slot, obj := s.Place(kind, ctx.Proc().ID)
			td := &TaskDesc{Class: class, Server: server, Slot: slot, AffObj: obj}
			d := depth
			task := s.Eng.NewTask("t", ctx.Now(), func(c *sim.Ctx) {
				c.Charge(int64(rng.Intn(3000)))
				check(c)
				if d < 2 && rng.Intn(2) == 0 {
					// nested spawn exercised via the same helper below
				}
			})
			task.Data = td
			td.T = task
			launched++
			s.Enqueue(td, ctx.Now())
		}
		check = func(ctx *sim.Ctx) {
			if err := checkInvariants(s); err != nil {
				t.Fatalf("seed %d mid-run: %v", seed, err)
			}
		}
		root := s.Eng.NewTask("root", 0, func(c *sim.Ctx) {
			for i := 0; i < 40; i++ {
				spawn(c, 0)
				c.Charge(int64(rng.Intn(500)))
			}
		})
		rootTD := &TaskDesc{Class: ClassProcessor, Server: 0, Slot: -1, T: root}
		root.Data = rootTD
		launched++
		s.Enqueue(rootTD, 0)
		if err := s.Eng.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := checkInvariants(s); err != nil {
			t.Fatalf("seed %d post-run: %v", seed, err)
		}
		if s.QueuedTasks() != 0 {
			t.Fatalf("seed %d: %d tasks still queued after drain", seed, s.QueuedTasks())
		}
		var ran int64
		for i := range s.Mon.Per {
			ran += s.Mon.Per[i].TasksRun
		}
		if ran != int64(launched) {
			t.Fatalf("seed %d: launched %d, ran %d", seed, launched, ran)
		}
	}
}

// TestInvariantsUnderStealFailEnqueue drives randomized spawning —
// including processor-pinned tasks and task-affinity sets that invite
// stealing — while processors fail mid-run, checking from inside the
// running tasks that per-server and machine-wide queue counters stay
// consistent and that no task-affinity set is ever split across two live
// servers.
func TestInvariantsUnderStealFailEnqueue(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		pol := DefaultPolicy()
		if seed%2 == 0 {
			// Exercise the incrementally maintained least-loaded tracking.
			pol.PlaceSetsLeastLoaded = true
		}
		const procs = 16
		s, space := newSched(t, procs, pol)
		s.Eng.SetFailHandler(func(p *sim.Proc, running *sim.Task, now int64) {
			s.FailServer(p.ID, running, now)
		})
		rng := rand.New(rand.NewSource(seed))
		objs := make([]int64, 8)
		for i := range objs {
			objs[i] = space.AllocPages(4096, rng.Intn(procs))
		}
		check := func(where string) {
			if err := checkInvariants(s); err != nil {
				t.Fatalf("seed %d %s: %v", seed, where, err)
			}
		}
		var launched int
		spawn := func(ctx *sim.Ctx) {
			aff := Affinity{
				Kind:      AffinityKind(rng.Intn(7)), // includes AffProcessor
				TaskObj:   objs[rng.Intn(len(objs))],
				ObjectObj: objs[rng.Intn(len(objs))],
				Processor: rng.Intn(2 * procs),
			}
			class, server, slot, obj := s.Place(aff, ctx.Proc().ID)
			td := &TaskDesc{Class: class, Server: server, Slot: slot, AffObj: obj}
			work := int64(rng.Intn(4000))
			task := s.Eng.NewTask("w", ctx.Now(), func(c *sim.Ctx) {
				c.Charge(work)
				check("mid-run")
			})
			task.Data = td
			td.T = task
			launched++
			s.Enqueue(td, ctx.Now())
			check("after enqueue")
		}
		// Two processors fail while spawning is still in flight; the
		// handler redistributes their queues through FailServer.
		v1, v2 := 1+rng.Intn(procs-1), 1+rng.Intn(procs-1)
		s.Eng.At(1500, func() {
			s.Eng.FailProc(s.Eng.Procs[v1])
			check("after first failure")
		})
		s.Eng.At(4500, func() {
			s.Eng.FailProc(s.Eng.Procs[v2])
			check("after second failure")
		})
		root := s.Eng.NewTask("root", 0, func(c *sim.Ctx) {
			for i := 0; i < 120; i++ {
				spawn(c)
				c.Charge(int64(rng.Intn(300)))
			}
		})
		rootTD := &TaskDesc{Class: ClassProcessor, Server: 0, Slot: -1, T: root}
		root.Data = rootTD
		launched++
		s.Enqueue(rootTD, 0)
		if err := s.Eng.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		check("post-run")
		if s.QueuedTasks() != 0 {
			t.Fatalf("seed %d: %d tasks still queued after drain", seed, s.QueuedTasks())
		}
		var ran int64
		for i := range s.Mon.Per {
			ran += s.Mon.Per[i].TasksRun
		}
		if ran != int64(launched) {
			t.Fatalf("seed %d: launched %d, ran %d", seed, launched, ran)
		}
	}
}

// TestStealScansPastPinnedPlainHead reproduces the plain-queue steal bug:
// a processor-affinity task at the head of a victim's plain queue must
// not shield the freely stealable plain task queued behind it, and must
// itself stay put while the victim can service it promptly.
func TestStealScansPastPinnedPlainHead(t *testing.T) {
	s, _ := newSched(t, 8, DefaultPolicy())
	v := s.Srv[2]
	pinned := mkTask(s, "pinned", ClassProcessor, 2, -1, 0)
	free := mkTask(s, "free", ClassPlain, 2, -1, 0)
	v.plain.push(pinned)
	v.plain.push(free)
	s.noteEnqueued(v, 2)

	got := s.stealFrom(v, s.Srv[0], 0, false)
	if got != free {
		t.Fatalf("stole %v, want the plain task behind the pinned head", got)
	}
	if err := checkInvariants(s); err != nil {
		t.Fatal(err)
	}
	// With only the pinned task left the victim is no longer backlogged:
	// it must not be stolen.
	if got := s.stealFrom(v, s.Srv[0], 0, false); got != nil {
		t.Fatalf("stole %v from a victim with a single pinned task", got)
	}
	// Backlogged again (a second pinned task): now the head may move.
	pinned2 := mkTask(s, "pinned2", ClassProcessor, 2, -1, 0)
	v.plain.push(pinned2)
	s.noteEnqueued(v, 1)
	if got := s.stealFrom(v, s.Srv[0], 0, false); got != pinned {
		t.Fatalf("stole %v, want the backlogged pinned head", got)
	}
	if err := checkInvariants(s); err != nil {
		t.Fatal(err)
	}
}

// TestRerouteKeepsSetTogether reproduces the dead-server rerouting bug:
// a task-affinity set member enqueued after its home server died must
// follow the set's surviving home — and re-home the whole set when the
// recorded home itself is dead — so the set never splits.
func TestRerouteKeepsSetTogether(t *testing.T) {
	s, space := newSched(t, 8, DefaultPolicy())
	obj := space.AllocPages(4096, 0)

	// Establish the set on a home server via normal placement.
	class, home, slot, _ := s.Place(Affinity{Kind: AffTask, TaskObj: obj}, 0)
	if class != ClassTaskSet {
		t.Fatalf("class %v, want ClassTaskSet", class)
	}
	first := mkTask(s, "m0", class, home, slot, obj)
	s.Enqueue(first, 0)

	// The home dies; its queue redistributes and setHome moves with it.
	s.FailServer(home, nil, 10)
	newHome, ok := s.setHome[obj]
	if !ok || !s.ServerAlive(newHome) {
		t.Fatalf("setHome after failure: %d (ok=%v)", newHome, ok)
	}
	if first.Server != newHome {
		t.Fatalf("redistributed member on %d, setHome %d", first.Server, newHome)
	}

	// A member spawned before the failure (still targeting the dead
	// server) arrives late: it must land on the set's new home, not on
	// an arbitrary survivor.
	late := mkTask(s, "m1", class, home, slot, obj)
	s.Enqueue(late, 20)
	if late.Server != newHome {
		t.Fatalf("late member landed on %d, set lives on %d", late.Server, newHome)
	}
	if err := checkInvariants(s); err != nil {
		t.Fatal(err)
	}

	// The new home dies too while another late member is in flight: the
	// member must re-home the set for everyone that follows.
	s.FailServer(newHome, nil, 30)
	late2 := mkTask(s, "m2", class, newHome, slot, obj)
	s.Enqueue(late2, 40)
	if h := s.setHome[obj]; !s.ServerAlive(h) || late2.Server != h {
		t.Fatalf("member on %d, setHome %d (alive=%v)", late2.Server, h, s.ServerAlive(h))
	}
	if err := checkInvariants(s); err != nil {
		t.Fatal(err)
	}
}
