package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/coolrts/cool/internal/sim"
)

// checkInvariants validates the internal consistency of every server's
// queue structures.
func checkInvariants(s *Scheduler) error {
	for _, sv := range s.Srv {
		total := sv.resume.size + sv.plain.size
		listed := map[int]bool{}
		for q := sv.nonEmpty.head; q != nil; q = q.nextQ {
			if q.empty() {
				return fmt.Errorf("server %d: empty queue %d in non-empty list", sv.id, q.slotIdx)
			}
			if listed[q.slotIdx] {
				return fmt.Errorf("server %d: queue %d listed twice", sv.id, q.slotIdx)
			}
			listed[q.slotIdx] = true
		}
		for i := range sv.slots {
			q := &sv.slots[i]
			total += q.size
			if !q.empty() && !listed[i] {
				return fmt.Errorf("server %d: non-empty queue %d missing from list", sv.id, i)
			}
			if q.empty() && q.inList {
				return fmt.Errorf("server %d: empty queue %d flagged inList", sv.id, i)
			}
			// Each queue's links must be a consistent chain.
			n := 0
			for td := q.head; td != nil; td = td.next {
				if td.q != q {
					return fmt.Errorf("server %d: task in queue %d with wrong back-pointer", sv.id, i)
				}
				n++
			}
			if n != q.size {
				return fmt.Errorf("server %d: queue %d size %d but %d tasks linked", sv.id, i, q.size, n)
			}
		}
		if total != sv.queued {
			return fmt.Errorf("server %d: queued=%d but queues hold %d", sv.id, sv.queued, total)
		}
	}
	return nil
}

// TestSchedulerInvariantsUnderRandomLoad drives a real engine with
// randomized task placements and validates queue consistency both
// mid-flight (from within tasks) and after the run drains.
func TestSchedulerInvariantsUnderRandomLoad(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		s, space := newSched(t, 8, DefaultPolicy())
		rng := rand.New(rand.NewSource(seed))
		objs := make([]int64, 6)
		for i := range objs {
			objs[i] = space.AllocPages(4096, rng.Intn(8))
		}
		var launched int
		var check func(ctx *sim.Ctx)
		spawn := func(ctx *sim.Ctx, depth int) {
			kind := Affinity{Kind: AffinityKind(rng.Intn(5))}
			kind.TaskObj = objs[rng.Intn(len(objs))]
			kind.ObjectObj = objs[rng.Intn(len(objs))]
			kind.Processor = rng.Intn(16)
			class, server, slot, obj := s.Place(kind, ctx.Proc().ID)
			td := &TaskDesc{Class: class, Server: server, Slot: slot, AffObj: obj}
			d := depth
			task := s.Eng.NewTask("t", ctx.Now(), func(c *sim.Ctx) {
				c.Charge(int64(rng.Intn(3000)))
				check(c)
				if d < 2 && rng.Intn(2) == 0 {
					// nested spawn exercised via the same helper below
				}
			})
			task.Data = td
			td.T = task
			launched++
			s.Enqueue(td, ctx.Now())
		}
		check = func(ctx *sim.Ctx) {
			if err := checkInvariants(s); err != nil {
				t.Fatalf("seed %d mid-run: %v", seed, err)
			}
		}
		root := s.Eng.NewTask("root", 0, func(c *sim.Ctx) {
			for i := 0; i < 40; i++ {
				spawn(c, 0)
				c.Charge(int64(rng.Intn(500)))
			}
		})
		rootTD := &TaskDesc{Class: ClassProcessor, Server: 0, Slot: -1, T: root}
		root.Data = rootTD
		launched++
		s.Enqueue(rootTD, 0)
		if err := s.Eng.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := checkInvariants(s); err != nil {
			t.Fatalf("seed %d post-run: %v", seed, err)
		}
		if s.QueuedTasks() != 0 {
			t.Fatalf("seed %d: %d tasks still queued after drain", seed, s.QueuedTasks())
		}
		var ran int64
		for i := range s.Mon.Per {
			ran += s.Mon.Per[i].TasksRun
		}
		if ran != int64(launched) {
			t.Fatalf("seed %d: launched %d, ran %d", seed, launched, ran)
		}
	}
}
