package core

import (
	"errors"
	"testing"

	"github.com/coolrts/cool/internal/sim"
)

func TestRetryTargetPrefersOtherCluster(t *testing.T) {
	s, _ := newSched(t, 8, DefaultPolicy()) // clusters {0..3} {4..7}
	td := mkTask(s, "w", ClassPlain, 1, -1, 0)
	seen := map[int]bool{}
	for attempt := 1; attempt <= 4; attempt++ {
		tgt := s.RetryTarget(td, 1, attempt)
		if tgt == 1 {
			t.Fatalf("attempt %d: retry re-placed on the failed processor", attempt)
		}
		if s.Cfg.SameCluster(tgt, 1) {
			t.Fatalf("attempt %d: target %d in the failed processor's cluster", attempt, tgt)
		}
		seen[tgt] = true
	}
	if len(seen) < 2 {
		t.Fatalf("successive attempts did not rotate targets: %v", seen)
	}
}

func TestRetryTargetSingleClusterFallsBack(t *testing.T) {
	s, _ := newSched(t, 4, DefaultPolicy()) // one cluster: no remote servers exist
	td := mkTask(s, "w", ClassPlain, 2, -1, 0)
	tgt := s.RetryTarget(td, 2, 1)
	if tgt == 2 || !s.ServerAlive(tgt) {
		t.Fatalf("target = %d, want a different live processor", tgt)
	}
}

func TestRetryTargetKeepsSetOnItsHome(t *testing.T) {
	s, space := newSched(t, 8, DefaultPolicy())
	obj := space.AllocPages(64, 0)
	_, home, slot, _ := s.Place(Affinity{Kind: AffTask, TaskObj: obj}, 0)
	td := mkTask(s, "set", ClassTaskSet, home, slot, obj)
	if tgt := s.RetryTarget(td, home, 1); tgt != home {
		t.Fatalf("set member retried to %d, want its home %d (sets must not split)", tgt, home)
	}
}

func TestRetryTargetObjectBoundStaysNearMemory(t *testing.T) {
	s, space := newSched(t, 8, DefaultPolicy())
	obj := space.AllocPages(64, 5)
	td := mkTask(s, "obj", ClassObjectBound, 5, s.slotOf(obj), obj)
	tgt := s.RetryTarget(td, 5, 1)
	if tgt == 5 || !s.Cfg.SameCluster(tgt, 5) {
		t.Fatalf("target = %d, want a different server in the object's cluster", tgt)
	}
}

func TestEnqueueRetryFollowsRehomedSet(t *testing.T) {
	s, space := newSched(t, 8, DefaultPolicy())
	obj := space.AllocPages(64, 0)
	_, home, slot, _ := s.Place(Affinity{Kind: AffTask, TaskObj: obj}, 0)
	// Queue part of the set, pick a retry target, then re-home the set by
	// failing its server while one member is in backoff.
	queued := mkTask(s, "set", ClassTaskSet, home, slot, obj)
	s.Enqueue(queued, 0)
	backing := mkTask(s, "set", ClassTaskSet, home, slot, obj)
	tgt := s.RetryTarget(backing, home, 1)
	s.FailServer(home, nil, 50)
	s.EnqueueRetry(backing, tgt, 100)
	if backing.Server != queued.Server {
		t.Fatalf("retried member on %d, rest of set on %d", backing.Server, queued.Server)
	}
	if err := checkInvariants(s); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchAbortWithoutHandlerFailsRun(t *testing.T) {
	s, _ := newSched(t, 4, DefaultPolicy())
	s.Eng.InjectTaskAbort("w", 0)
	s.Enqueue(mkTask(s, "w", ClassPlain, 0, -1, 0), 0)
	err := s.Eng.Run()
	var ta *sim.TaskAbort
	if !errors.As(err, &ta) {
		t.Fatalf("err = %v (%T), want *sim.TaskAbort", err, err)
	}
	if got := s.Mon.Total().GaveUp; got != 1 {
		t.Fatalf("GaveUp = %d, want 1", got)
	}
	if err := checkInvariants(s); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchAbortRetriedViaHandler(t *testing.T) {
	s, _ := newSched(t, 8, DefaultPolicy())
	s.Eng.InjectTaskAbort("w", 0)
	s.Eng.InjectTaskAbort("w", 0)
	s.SetAbortHandler(func(td *TaskDesc, failedOn int, now int64) bool {
		attempt := td.T.LaunchAborts()
		if attempt > 3 {
			return false
		}
		tgt := s.RetryTarget(td, failedOn, attempt)
		s.TraceRetry(now, failedOn, td.T.Name, tgt)
		s.Eng.At(now+500, func() { s.EnqueueRetry(td, tgt, s.Eng.Now()) })
		return true
	})
	var tds []*TaskDesc
	for i := 0; i < 4; i++ {
		tds = append(tds, mkTask(s, "w", ClassPlain, 0, -1, 0))
	}
	for _, td := range tds {
		s.Enqueue(td, 0)
	}
	if err := s.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Mon.Total().Retries; got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
	if got := tds[0].T.LaunchAborts(); got != 2 {
		t.Fatalf("first spawn aborted %d launches, want 2", got)
	}
	if err := checkInvariants(s); err != nil {
		t.Fatal(err)
	}
}

func TestQueueDepthsSnapshot(t *testing.T) {
	s, _ := newSched(t, 4, DefaultPolicy())
	s.Enqueue(mkTask(s, "a", ClassPlain, 1, -1, 0), 0)
	s.Enqueue(mkTask(s, "b", ClassPlain, 1, -1, 0), 0)
	s.FailServer(3, nil, 0)
	d := s.QueueDepths()
	if len(d) != 4 || d[1] != 2 || d[3] != -1 {
		t.Fatalf("depths = %v, want [0 2 0 -1]", d)
	}
}

// TestFailServerMidTaskLastAliveInCluster exercises the running != nil
// detach path when the victim is the last alive server of its cluster:
// the continuation and all queued work must cross clusters, and
// task-affinity sets must stay whole.
func TestFailServerMidTaskLastAliveInCluster(t *testing.T) {
	s, space := newSched(t, 8, DefaultPolicy()) // clusters {0..3} {4..7}
	for _, v := range []int{5, 6, 7} {
		s.FailServer(v, nil, 10)
	}
	// A task-affinity set homed on the victim, plus plain work.
	obj := space.AllocPages(64, 4)
	s.setHome[obj] = 4
	slot := s.slotOf(obj)
	var set []*TaskDesc
	for i := 0; i < 3; i++ {
		td := mkTask(s, "set", ClassTaskSet, 4, slot, obj)
		set = append(set, td)
		s.Enqueue(td, 20)
	}
	plain := mkTask(s, "plain", ClassPlain, 4, -1, 0)
	s.Enqueue(plain, 20)
	running := mkTask(s, "running", ClassPlain, 4, -1, 0)
	running.LastProc = 4

	s.FailServer(4, running.T, 100)

	if s.Cfg.ClusterOf(running.LastProc) == s.Cfg.ClusterOf(4) {
		t.Fatalf("continuation stayed in the dead cluster (P%d)", running.LastProc)
	}
	if !s.ServerAlive(running.LastProc) {
		t.Fatalf("continuation handed to dead server %d", running.LastProc)
	}
	home := set[0].Server
	if s.Cfg.ClusterOf(home) == s.Cfg.ClusterOf(4) || !s.ServerAlive(home) {
		t.Fatalf("set re-homed to %d, want a live server outside the dead cluster", home)
	}
	for _, td := range set {
		if td.Server != home {
			t.Fatalf("set split: members on %d and %d", home, td.Server)
		}
	}
	if s.setHome[obj] != home {
		t.Fatalf("setHome = %d, queued members on %d", s.setHome[obj], home)
	}
	if !s.ServerAlive(plain.Server) {
		t.Fatalf("plain task on dead server %d", plain.Server)
	}
	// 3 set members + 1 plain + 1 running continuation drained off P4.
	if got := s.Mon.Per[4].Redistributed; got != 5 {
		t.Fatalf("Redistributed = %d, want 5", got)
	}
	if err := checkInvariants(s); err != nil {
		t.Fatal(err)
	}
}
