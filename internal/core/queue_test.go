package core

import "testing"

func mkTD(n int) []*TaskDesc {
	tds := make([]*TaskDesc, n)
	for i := range tds {
		tds[i] = &TaskDesc{AffObj: int64(i)}
	}
	return tds
}

func TestTaskQueueFIFO(t *testing.T) {
	var q taskQueue
	tds := mkTD(5)
	for _, td := range tds {
		q.push(td)
	}
	if q.size != 5 {
		t.Fatalf("size = %d", q.size)
	}
	for i := 0; i < 5; i++ {
		td := q.pop()
		if td != tds[i] {
			t.Fatalf("pop %d returned wrong task", i)
		}
		if td.q != nil {
			t.Fatal("popped task still linked to queue")
		}
	}
	if q.pop() != nil || !q.empty() {
		t.Fatal("queue should be empty")
	}
}

func TestTaskQueueRemoveMiddle(t *testing.T) {
	var q taskQueue
	tds := mkTD(3)
	for _, td := range tds {
		q.push(td)
	}
	q.remove(tds[1])
	if q.size != 2 {
		t.Fatalf("size = %d", q.size)
	}
	if q.pop() != tds[0] || q.pop() != tds[2] {
		t.Fatal("wrong order after middle removal")
	}
}

func TestTaskQueueRemoveEnds(t *testing.T) {
	var q taskQueue
	tds := mkTD(3)
	for _, td := range tds {
		q.push(td)
	}
	q.remove(tds[0])
	q.remove(tds[2])
	if q.head != tds[1] || q.tail != tds[1] || q.size != 1 {
		t.Fatal("removal of head and tail broke links")
	}
}

func TestPopMatching(t *testing.T) {
	var q taskQueue
	a := &TaskDesc{AffObj: 100}
	b := &TaskDesc{AffObj: 200}
	c := &TaskDesc{AffObj: 100}
	q.push(a)
	q.push(b)
	q.push(c)
	if got := q.popMatching(100); got != a {
		t.Fatal("first match wrong")
	}
	if got := q.popMatching(100); got != c {
		t.Fatal("second match wrong")
	}
	if got := q.popMatching(100); got != nil {
		t.Fatal("should be no more matches")
	}
	if q.pop() != b {
		t.Fatal("unmatched task lost")
	}
}

func TestDoublePushPanics(t *testing.T) {
	var q taskQueue
	td := &TaskDesc{}
	q.push(td)
	defer func() {
		if recover() == nil {
			t.Fatal("double push did not panic")
		}
	}()
	q.push(td)
}

func TestNonEmptyListAddRemove(t *testing.T) {
	var l nonEmptyList
	qs := make([]*taskQueue, 4)
	for i := range qs {
		qs[i] = &taskQueue{slotIdx: i}
		l.add(qs[i])
	}
	// Duplicate add is a no-op.
	l.add(qs[0])
	count := 0
	for q := l.head; q != nil; q = q.nextQ {
		count++
	}
	if count != 4 {
		t.Fatalf("list has %d queues, want 4", count)
	}
	l.removeQ(qs[1])
	l.removeQ(qs[3])
	var idx []int
	for q := l.head; q != nil; q = q.nextQ {
		idx = append(idx, q.slotIdx)
	}
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 2 {
		t.Fatalf("list after removals = %v", idx)
	}
	// Remove remaining; list must be empty and re-addable.
	l.removeQ(qs[0])
	l.removeQ(qs[2])
	if l.head != nil || l.tail != nil {
		t.Fatal("list not empty")
	}
	l.add(qs[2])
	if l.head != qs[2] || l.tail != qs[2] {
		t.Fatal("re-add failed")
	}
}
