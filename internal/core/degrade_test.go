package core

import (
	"strings"
	"testing"

	"github.com/coolrts/cool/internal/sim"
)

// mkTask builds an enqueueable task descriptor backed by a real engine
// coroutine (never started by these tests).
func mkTask(s *Scheduler, name string, class Class, server, slot int, affObj int64) *TaskDesc {
	td := &TaskDesc{Class: class, Server: server, Slot: slot, AffObj: affObj}
	tk := s.Eng.NewTask(name, 0, func(c *sim.Ctx) {})
	tk.Data = td
	td.T = tk
	return td
}

func TestFailServerDrainsAndRedistributes(t *testing.T) {
	s, space := newSched(t, 8, DefaultPolicy())
	const victim = 2
	obj := space.AllocPages(64, victim)
	var all []*TaskDesc
	for i := 0; i < 3; i++ {
		all = append(all, mkTask(s, "plain", ClassPlain, victim, -1, 0))
	}
	for i := 0; i < 2; i++ {
		all = append(all, mkTask(s, "proc", ClassProcessor, victim, -1, 0))
	}
	for i := 0; i < 3; i++ {
		all = append(all, mkTask(s, "obj", ClassObjectBound, victim, s.slotOf(obj), obj))
	}
	for _, td := range all {
		s.Enqueue(td, 0)
	}
	if s.QueuedTasks() != len(all) {
		t.Fatalf("queued %d, want %d", s.QueuedTasks(), len(all))
	}

	s.FailServer(victim, nil, 100)

	if s.ServerAlive(victim) || s.AliveServers() != 7 {
		t.Fatalf("alive=%d, victim alive=%v", s.AliveServers(), s.ServerAlive(victim))
	}
	if s.Srv[victim].queued != 0 {
		t.Fatalf("victim still holds %d queued tasks", s.Srv[victim].queued)
	}
	if s.QueuedTasks() != len(all) {
		t.Fatalf("tasks lost in redistribution: %d queued, want %d", s.QueuedTasks(), len(all))
	}
	for _, td := range all {
		if td.Server == victim || !s.ServerAlive(td.Server) {
			t.Fatalf("task %q landed on dead server %d", td.T.Name, td.Server)
		}
	}
	if got := s.Mon.Per[victim].Redistributed; got != int64(len(all)) {
		t.Fatalf("Redistributed = %d, want %d", got, len(all))
	}
	// Object-bound work stays close to its memory: same cluster as the
	// dead home when any same-cluster server survives.
	for _, td := range all {
		if td.Class == ClassObjectBound && !s.Cfg.SameCluster(td.Server, victim) {
			t.Fatalf("object-bound task moved to cluster %d, want victim's cluster", s.Cfg.ClusterOf(td.Server))
		}
	}
	// Calling again is a harmless no-op.
	s.FailServer(victim, nil, 200)
}

func TestFailServerRehomesTaskSetsAsUnit(t *testing.T) {
	s, space := newSched(t, 8, DefaultPolicy())
	obj := space.AllocPages(64, 0)
	// Establish the set's home via normal placement.
	_, home, slot, _ := s.Place(Affinity{Kind: AffTask, TaskObj: obj}, 0)
	var set []*TaskDesc
	for i := 0; i < 4; i++ {
		set = append(set, mkTask(s, "set", ClassTaskSet, home, slot, obj))
	}
	for _, td := range set {
		s.Enqueue(td, 0)
	}
	s.FailServer(home, nil, 50)
	tgt := set[0].Server
	if tgt == home || !s.ServerAlive(tgt) {
		t.Fatalf("set moved to %d (home was %d)", tgt, home)
	}
	for _, td := range set {
		if td.Server != tgt {
			t.Fatalf("set split across servers %d and %d", tgt, td.Server)
		}
	}
	// New members of the same set follow the new home.
	if _, sv, _, _ := s.Place(Affinity{Kind: AffTask, TaskObj: obj}, 0); sv != tgt {
		t.Fatalf("later set member placed at %d, want re-homed %d", sv, tgt)
	}
}

func TestVictimOrderSkipsDeadServers(t *testing.T) {
	s, _ := newSched(t, 8, DefaultPolicy())
	s.FailServer(1, nil, 0)
	s.FailServer(5, nil, 0)
	order := s.victimOrder(0)
	if len(order) != 5 {
		t.Fatalf("victim order %v, want the 5 surviving non-thief servers", order)
	}
	for _, v := range order {
		if v == 1 || v == 5 {
			t.Fatalf("dead server %d still probed: %v", v, order)
		}
	}
}

func TestPlacementAvoidsDeadServers(t *testing.T) {
	s, space := newSched(t, 8, DefaultPolicy())
	obj := space.AllocPages(64, 3)
	s.FailServer(3, nil, 0)
	if _, sv, _, _ := s.Place(Affinity{Kind: AffProcessor, Processor: 3}, 0); !s.ServerAlive(sv) {
		t.Fatalf("processor placement chose dead server %d", sv)
	}
	// Object placed in P3's memory: placement prefers a same-cluster
	// survivor to stay close to that memory.
	if _, sv, _, _ := s.Place(Affinity{Kind: AffObject, ObjectObj: obj}, 0); !s.ServerAlive(sv) || !s.Cfg.SameCluster(sv, 3) {
		t.Fatalf("object placement chose %d, want same-cluster survivor", sv)
	}
	s.FailServer(0, nil, 0)
	if sv := s.leastLoaded(); !s.ServerAlive(sv) {
		t.Fatalf("leastLoaded chose dead server %d", sv)
	}
}

func TestSnapshotMarksDeadServers(t *testing.T) {
	s, _ := newSched(t, 4, DefaultPolicy())
	s.Enqueue(mkTask(s, "w", ClassPlain, 1, -1, 0), 0)
	s.FailServer(2, nil, 0)
	snap := s.Snapshot()
	for _, want := range []string{"P1:1", "P2:0 dead", "total 1 queued"} {
		if !strings.Contains(snap, want) {
			t.Fatalf("snapshot %q missing %q", snap, want)
		}
	}
}
