// Package core implements the COOL runtime scheduler described in the
// paper: task descriptors carrying affinity hints, the per-server queue
// structure (an object-affinity queue plus an array of task-affinity
// queues whose non-empty members are linked in a doubly-linked list),
// back-to-back servicing of task-affinity sets, and work stealing with
// set stealing, object-affinity reluctance, and optional cluster-only
// stealing. It also provides the synchronization objects of the language:
// monitors (mutex functions), condition variables, and waitfor scopes.
package core

import "github.com/coolrts/cool/internal/sim"

// Class describes how a task was placed, which controls both queue choice
// and stealing behaviour.
type Class int8

const (
	// ClassPlain tasks have no locality preference and live on the
	// plain queue; they are freely stealable.
	ClassPlain Class = iota
	// ClassProcessor tasks were placed by an explicit PROCESSOR
	// affinity hint. They live on the plain queue of that server and
	// may still be stolen for load balance.
	ClassProcessor
	// ClassTaskSet tasks carry TASK affinity only: the set should run
	// back to back on one processor, but which processor is a load
	// balancing decision, and an idle processor may steal the whole set.
	ClassTaskSet
	// ClassObjectBound tasks carry OBJECT (or default/simple) affinity:
	// they are collocated with their object's home and are stolen only
	// as a last resort, since moving them converts local references
	// into remote ones.
	ClassObjectBound
)

func (c Class) String() string {
	switch c {
	case ClassPlain:
		return "plain"
	case ClassProcessor:
		return "processor"
	case ClassTaskSet:
		return "taskset"
	case ClassObjectBound:
		return "objectbound"
	}
	return "unknown"
}

// TaskDesc is the scheduler's descriptor for one task.
type TaskDesc struct {
	T *sim.Task

	Class  Class
	Server int   // preferred server (-1 when indifferent)
	Slot   int   // task-affinity queue index, -1 for the plain queue
	AffObj int64 // address identifying the task-affinity set (0 if none)

	// Scope is the waitfor scope this task was created in (nil outside
	// any waitfor). Completion decrements the scope.
	Scope *Scope

	// Prio is the task's priority class in [0,7] (0 = default, higher
	// is more important); DeadlineAt, when positive, is the absolute
	// simulated cycle after which the task is shed instead of run. Both
	// come from the WithPriority/WithDeadline spawn options.
	Prio       int8
	DeadlineAt int64

	// LastProc is the processor the task last ran on; continuations are
	// re-enqueued there.
	LastProc int

	// BlockedOn is the synchronization object (*Monitor, *Cond, or
	// *Scope) the task is currently parked on, nil while runnable. The
	// public runtime reads it to build deadlock wait-for graphs.
	BlockedOn any

	dispatched bool // first dispatch already counted in perfmon

	// Intrusive queue links.
	next, prev *TaskDesc
	q          *taskQueue
}

// AffinityKind enumerates the hint combinations of Table 1.
type AffinityKind int8

const (
	// AffNone: no hint; the task is enqueued locally and stealable.
	AffNone AffinityKind = iota
	// AffDefault: default affinity for the base object the parallel
	// function is invoked on (scheduled like simple affinity).
	AffDefault
	// AffSimple: affinity(obj) — cache and memory locality on obj.
	AffSimple
	// AffTask: affinity(obj, TASK) — back-to-back cache reuse on obj;
	// placement chosen for load balance.
	AffTask
	// AffObject: affinity(obj, OBJECT) — collocate with obj's home.
	AffObject
	// AffTaskObject: affinity(src, TASK) + affinity(dst, OBJECT).
	AffTaskObject
	// AffProcessor: affinity(n, PROCESSOR) — direct placement.
	AffProcessor
)

// Affinity is the evaluated affinity specification of one spawn.
type Affinity struct {
	Kind      AffinityKind
	TaskObj   int64 // address for TASK affinity / default / simple
	ObjectObj int64 // address for OBJECT affinity
	Processor int   // server number for PROCESSOR affinity
}
