package core

// taskQueue is a FIFO of task descriptors (intrusive doubly-linked).
// Task-affinity queues additionally participate in the per-server list of
// non-empty queues, giving O(1) "find some work".
type taskQueue struct {
	head, tail *TaskDesc
	size       int

	// Links in the server's non-empty list (task-affinity queues only).
	nextQ, prevQ *taskQueue
	inList       bool
	slotIdx      int
}

func (q *taskQueue) empty() bool { return q.head == nil }

// push appends td.
func (q *taskQueue) push(td *TaskDesc) {
	if td.q != nil {
		panic("core: task already queued")
	}
	td.q = q
	td.prev = q.tail
	td.next = nil
	if q.tail != nil {
		q.tail.next = td
	} else {
		q.head = td
	}
	q.tail = td
	q.size++
}

// pop removes and returns the head, or nil.
func (q *taskQueue) pop() *TaskDesc {
	td := q.head
	if td == nil {
		return nil
	}
	q.remove(td)
	return td
}

// remove unlinks td from the queue.
func (q *taskQueue) remove(td *TaskDesc) {
	if td.q != q {
		panic("core: removing task from wrong queue")
	}
	if td.prev != nil {
		td.prev.next = td.next
	} else {
		q.head = td.next
	}
	if td.next != nil {
		td.next.prev = td.prev
	} else {
		q.tail = td.prev
	}
	td.next, td.prev, td.q = nil, nil, nil
	q.size--
}

// popMatching removes and returns the first task with AffObj == obj, or nil.
func (q *taskQueue) popMatching(obj int64) *TaskDesc {
	for td := q.head; td != nil; td = td.next {
		if td.AffObj == obj {
			q.remove(td)
			return td
		}
	}
	return nil
}

// nonEmptyList is the doubly-linked list of non-empty task-affinity
// queues within one server (paper, Section 5).
type nonEmptyList struct {
	head, tail *taskQueue
}

func (l *nonEmptyList) add(q *taskQueue) {
	if q.inList {
		return
	}
	q.inList = true
	q.prevQ = l.tail
	q.nextQ = nil
	if l.tail != nil {
		l.tail.nextQ = q
	} else {
		l.head = q
	}
	l.tail = q
}

func (l *nonEmptyList) removeQ(q *taskQueue) {
	if !q.inList {
		return
	}
	q.inList = false
	if q.prevQ != nil {
		q.prevQ.nextQ = q.nextQ
	} else {
		l.head = q.nextQ
	}
	if q.nextQ != nil {
		q.nextQ.prevQ = q.prevQ
	} else {
		l.tail = q.prevQ
	}
	q.nextQ, q.prevQ = nil, nil
}
