package core

import (
	"testing"

	"github.com/coolrts/cool/internal/machine"
	"github.com/coolrts/cool/internal/memsim"
	"github.com/coolrts/cool/internal/perfmon"
	"github.com/coolrts/cool/internal/sim"
)

func newSched(t *testing.T, procs int, pol Policy) (*Scheduler, *memsim.Space) {
	t.Helper()
	cfg := machine.DASH(procs)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	eng := sim.New(procs, cfg.Quantum, cfg.Seed)
	space := memsim.New(cfg)
	mon := perfmon.New(procs)
	return NewScheduler(cfg, pol, eng, space, mon), space
}

func TestHomeServerIsPlacementProc(t *testing.T) {
	// The home server of an object is exactly the processor named at
	// allocation (or migration) time — the paper's home() construct.
	s, space := newSched(t, 32, DefaultPolicy())
	for p := 0; p < 32; p++ {
		addr := space.AllocPages(64, p)
		if sv := s.HomeServer(addr); sv != p {
			t.Fatalf("object placed at %d homed to server %d", p, sv)
		}
	}
	addr := space.AllocPages(4096, 3)
	space.Migrate(addr, 4096, 17)
	if sv := s.HomeServer(addr); sv != 17 {
		t.Fatalf("migrated object homed to %d, want 17", sv)
	}
}

func TestHomeServerSamePageSharesHome(t *testing.T) {
	// Objects sharing a page share a home (page is the placement unit).
	s, space := newSched(t, 8, DefaultPolicy())
	base := space.Alloc(64, 2)
	other := space.Alloc(64, 3) // same cluster arena, may share the page
	if base/int64(s.Cfg.PageSize) == other/int64(s.Cfg.PageSize) &&
		s.HomeServer(base) != s.HomeServer(other) {
		t.Fatal("same-page objects homed to different servers")
	}
}

func TestPlaceTable1Semantics(t *testing.T) {
	s, space := newSched(t, 32, DefaultPolicy())
	src := space.AllocPages(4096, 9)  // placed at proc 9
	dst := space.AllocPages(4096, 21) // placed at proc 21

	// Simple affinity: object-bound at src's home.
	cl, sv, slot, obj := s.Place(Affinity{Kind: AffSimple, TaskObj: src}, 0)
	if cl != ClassObjectBound || sv != 9 || slot < 0 || obj != src {
		t.Fatalf("simple: class=%v server=%d slot=%d obj=%d", cl, sv, slot, obj)
	}

	// Object affinity: collocate with dst.
	cl, sv, _, _ = s.Place(Affinity{Kind: AffObject, ObjectObj: dst}, 0)
	if cl != ClassObjectBound || sv != 21 {
		t.Fatalf("object: class=%v server=%d", cl, sv)
	}

	// Task+Object: server follows the OBJECT operand, slot follows TASK.
	cl, sv, slot, obj = s.Place(Affinity{Kind: AffTaskObject, TaskObj: src, ObjectObj: dst}, 0)
	if cl != ClassObjectBound || sv != 21 || slot != s.slotOf(src) || obj != src {
		t.Fatalf("task+object: class=%v server=%d slot=%d obj=%d", cl, sv, slot, obj)
	}

	// Processor affinity: direct placement mod P.
	cl, sv, _, _ = s.Place(Affinity{Kind: AffProcessor, Processor: 40}, 0)
	if cl != ClassProcessor || sv != 8 {
		t.Fatalf("processor: class=%v server=%d", cl, sv)
	}

	// Task affinity: same object keeps landing on the same server.
	_, sv1, _, _ := s.Place(Affinity{Kind: AffTask, TaskObj: src}, 0)
	_, sv2, _, _ := s.Place(Affinity{Kind: AffTask, TaskObj: src}, 3)
	if sv1 != sv2 {
		t.Fatalf("task-affinity set split across servers %d and %d", sv1, sv2)
	}

	// None: spawner-local.
	cl, sv, slot, _ = s.Place(Affinity{Kind: AffNone}, 7)
	if cl != ClassPlain || sv != 7 || slot != -1 {
		t.Fatalf("none: class=%v server=%d slot=%d", cl, sv, slot)
	}
}

func TestPlaceIgnoreHintsRoundRobin(t *testing.T) {
	pol := DefaultPolicy()
	pol.IgnoreHints = true
	s, space := newSched(t, 4, pol)
	obj := space.Alloc(64, 0)
	var servers []int
	for i := 0; i < 8; i++ {
		cl, sv, slot, _ := s.Place(Affinity{Kind: AffObject, ObjectObj: obj}, 0)
		if cl != ClassPlain || slot != -1 {
			t.Fatalf("base mode produced class=%v slot=%d", cl, slot)
		}
		servers = append(servers, sv)
	}
	for i, sv := range servers {
		if sv != i%4 {
			t.Fatalf("round robin broken: %v", servers)
		}
	}
}

func TestDistinctTaskSetsSpread(t *testing.T) {
	s, space := newSched(t, 8, DefaultPolicy())
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		obj := space.Alloc(4096, 0)
		_, sv, _, _ := s.Place(Affinity{Kind: AffTask, TaskObj: obj}, 0)
		seen[sv] = true
	}
	if len(seen) != 8 {
		t.Fatalf("8 distinct task sets used only %d servers", len(seen))
	}
}

func TestVictimOrderClusterFirst(t *testing.T) {
	s, _ := newSched(t, 8, DefaultPolicy()) // clusters {0..3},{4..7}
	order := s.victimOrder(1)
	if len(order) != 7 {
		t.Fatalf("order = %v", order)
	}
	for i, v := range order[:3] {
		if !s.Cfg.SameCluster(1, v) {
			t.Fatalf("victim %d at position %d not in thief's cluster (%v)", v, i, order)
		}
	}
	for _, v := range order[3:] {
		if s.Cfg.SameCluster(1, v) {
			t.Fatalf("cluster victim after remote victims: %v", order)
		}
	}
}

func TestVictimOrderClusterOnly(t *testing.T) {
	pol := DefaultPolicy()
	pol.ClusterStealingOnly = true
	s, _ := newSched(t, 8, pol)
	order := s.victimOrder(5)
	if len(order) != 3 {
		t.Fatalf("cluster-only order = %v, want 3 same-cluster victims", order)
	}
	for _, v := range order {
		if !s.Cfg.SameCluster(5, v) {
			t.Fatalf("remote victim %d in cluster-only mode", v)
		}
	}
}

func TestVictimOrderFlat(t *testing.T) {
	pol := DefaultPolicy()
	pol.ClusterStealFirst = false
	s, _ := newSched(t, 8, pol)
	order := s.victimOrder(2)
	want := []int{3, 4, 5, 6, 7, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("flat order = %v, want %v", order, want)
		}
	}
}
