package core

import (
	"fmt"

	"github.com/coolrts/cool/internal/machine"
	"github.com/coolrts/cool/internal/memsim"
	"github.com/coolrts/cool/internal/perfmon"
	"github.com/coolrts/cool/internal/sim"
	"github.com/coolrts/cool/internal/trace"
)

// Policy holds the tunable scheduling knobs studied in the paper.
type Policy struct {
	// IgnoreHints reproduces the paper's "Base" versions: every task is
	// placed round-robin across servers with no regard for locality.
	IgnoreHints bool

	// QueueArraySize is the number of task-affinity queues per server.
	// "Collisions of different task-affinity sets on the same queue can
	// be minimized by choosing a suitably large array size."
	QueueArraySize int

	// ClusterStealingOnly restricts stealing to servers in the thief's
	// cluster (the Panel Cholesky cluster-stealing experiment).
	ClusterStealingOnly bool

	// ClusterStealFirst makes thieves probe same-cluster victims before
	// remote ones (a "smart default" the paper suggests automating).
	ClusterStealFirst bool

	// StealWholeSets lets an idle processor steal an entire
	// task-affinity set so the set still enjoys cache reuse after the
	// move.
	StealWholeSets bool

	// StealObjectBound permits stealing object-affinity tasks as a last
	// resort. The paper argues such tasks "should preferably not be
	// stolen"; disabling trades load balance for locality.
	StealObjectBound bool

	// DisableStealing turns off work stealing entirely (tasks only run
	// on the server they were placed on) — an ablation knob.
	DisableStealing bool

	// PlaceSetsLeastLoaded places a new task-affinity set on the server
	// with the fewest queued tasks instead of round-robin (§4.2: "the
	// particular processor can be chosen based on load balancing
	// considerations").
	PlaceSetsLeastLoaded bool
}

// DefaultPolicy returns the runtime's default scheduling policy.
func DefaultPolicy() Policy {
	return Policy{
		QueueArraySize:    64,
		ClusterStealFirst: true,
		StealWholeSets:    true,
		StealObjectBound:  true,
	}
}

// server is the per-processor scheduling state: the paper's two kinds of
// task queues plus a resume queue for unblocked continuations.
type server struct {
	id       int
	resume   taskQueue    // unblocked continuations (highest priority)
	plain    taskQueue    // object/plain queue: processor-affinity and no-hint tasks
	slots    []taskQueue  // array of task-affinity queues
	nonEmpty nonEmptyList // non-empty task-affinity queues
	cur      *taskQueue   // slot currently being drained back-to-back
	queued   int          // total tasks queued on this server
	dead     bool         // processor retired by fault injection
}

// defaultWakeFanout is the number of idle processors a targeted wakeup
// notifies. Waking the lowest-numbered parked processors matches the
// effective winner order of a full broadcast while queues are shallow;
// once the machine-wide backlog exceeds the fanout, wake falls back to
// broadcast so every idle processor joins the stealing.
const defaultWakeFanout = 4

// Scheduler implements sim.Dispatcher with the paper's policies.
type Scheduler struct {
	Cfg     machine.Config
	Pol     Policy
	Eng     *sim.Engine
	Space   *memsim.Space
	Mon     *perfmon.Monitor
	Trace   *trace.Log // nil disables tracing
	Srv     []*server
	rr      int           // round-robin cursor (Base mode, AffNone spread)
	failRR  int           // rotation cursor for failover redistribution
	setHome map[int64]int // task-affinity set -> server currently hosting it

	// Precomputed victim rings, one per thief, in (thief+d)%P probe
	// order. Built once at construction and rebuilt only when a
	// processor fails, so a steal probe walks a ready-made slice instead
	// of allocating and filtering the victim list per probe.
	ringCluster [][]int // surviving same-cluster victims
	ringRemote  [][]int // surviving remote victims
	ringFlat    [][]int // all surviving victims

	queuedTotal int // tasks queued machine-wide (sum of sv.queued)

	// wakeFanout is the targeted-wake width (see defaultWakeFanout).
	// Runtime-mutable: the adaptive controller widens it toward
	// broadcast under backlog and narrows it back when targeted wakes
	// suffice. Single-threaded like everything else here.
	wakeFanout int

	// setSplits counts task-affinity set members enqueued or stolen away
	// from their set's recorded home. Must stay zero under the default
	// whole-set-stealing policy; only the NoSetStealing fallback (taking
	// individual set members) legitimately splits sets.
	setSplits int64

	// onAbort is the runtime's retry hook for transiently failed task
	// launches (see retry.go). nil means any abort fails the run.
	onAbort func(td *TaskDesc, failedOn int, now int64) bool

	// Lazily-repaired least-loaded tracking: llBest is the lowest-id
	// server with the fewest queued tasks unless llDirty, in which case
	// the next leastLoaded query rescans. Dequeues repair the candidate
	// in O(1); only an enqueue on the current best (or its death) can
	// invalidate it.
	llBest  int
	llDirty bool
}

// NewScheduler wires a scheduler to an engine.
func NewScheduler(cfg machine.Config, pol Policy, eng *sim.Engine, space *memsim.Space, mon *perfmon.Monitor) *Scheduler {
	if pol.QueueArraySize <= 0 {
		pol.QueueArraySize = 64
	}
	s := &Scheduler{Cfg: cfg, Pol: pol, Eng: eng, Space: space, Mon: mon,
		setHome: make(map[int64]int), wakeFanout: defaultWakeFanout}
	s.Srv = make([]*server, cfg.Processors)
	for i := range s.Srv {
		sv := &server{id: i, slots: make([]taskQueue, pol.QueueArraySize)}
		for j := range sv.slots {
			sv.slots[j].slotIdx = j
		}
		s.Srv[i] = sv
	}
	s.rebuildVictimRings()
	eng.SetDispatcher(s)
	return s
}

// rebuildVictimRings recomputes every thief's probe order. Called at
// construction and after a processor failure; ring backing arrays are
// reused across rebuilds.
func (s *Scheduler) rebuildVictimRings() {
	n := s.Cfg.Processors
	if s.ringFlat == nil {
		s.ringCluster = make([][]int, n)
		s.ringRemote = make([][]int, n)
		s.ringFlat = make([][]int, n)
		for t := 0; t < n; t++ {
			s.ringFlat[t] = make([]int, 0, n-1)
			s.ringCluster[t] = make([]int, 0, s.Cfg.ClusterSize)
			s.ringRemote[t] = make([]int, 0, n-1)
		}
	}
	for t := 0; t < n; t++ {
		cl, rem, flat := s.ringCluster[t][:0], s.ringRemote[t][:0], s.ringFlat[t][:0]
		for d := 1; d < n; d++ {
			v := (t + d) % n
			if s.Srv[v].dead {
				continue
			}
			flat = append(flat, v)
			if s.Cfg.SameCluster(t, v) {
				cl = append(cl, v)
			} else {
				rem = append(rem, v)
			}
		}
		s.ringCluster[t], s.ringRemote[t], s.ringFlat[t] = cl, rem, flat
	}
}

// noteEnqueued accounts n tasks added to sv's queues.
func (s *Scheduler) noteEnqueued(sv *server, n int) {
	sv.queued += n
	s.queuedTotal += n
	if sv.id == s.llBest {
		s.llDirty = true // the least-loaded candidate got more loaded
	}
}

// noteDequeued accounts n tasks removed from sv's queues and repairs the
// least-loaded candidate: a shrinking server can only displace the
// current best, never invalidate another.
func (s *Scheduler) noteDequeued(sv *server, n int) {
	sv.queued -= n
	s.queuedTotal -= n
	if sv.dead || s.llDirty {
		return
	}
	b := s.Srv[s.llBest]
	if b.dead {
		s.llDirty = true
		return
	}
	if sv.queued < b.queued || (sv.queued == b.queued && sv.id < b.id) {
		s.llBest = sv.id
	}
}

// homeServer maps an object address to its home server: the processor
// named when the page was allocated or last migrated (the paper's
// footnote 3 — the runtime tracks an object's location directly).
func (s *Scheduler) homeServer(addr int64) int {
	return s.Space.HomeProc(addr)
}

// HomeServer exposes the home-server mapping (COOL's home() construct).
func (s *Scheduler) HomeServer(addr int64) int { return s.homeServer(addr) }

// slotOf maps a task-affinity object to its queue index within a server.
// Mixing the line and page numbers keeps both small same-page objects and
// page-aligned objects spread across the queue array.
func (s *Scheduler) slotOf(addr int64) int {
	h := addr>>6 + addr/int64(s.Cfg.PageSize)
	return int(h % int64(s.Pol.QueueArraySize))
}

// Place resolves an affinity specification to (class, server, slot,
// setObj), implementing Table 1's semantics. If the preferred server
// has been retired by fault injection, the placement falls over to the
// nearest surviving server (task-affinity sets re-home as a unit).
func (s *Scheduler) Place(a Affinity, spawner int) (Class, int, int, int64) {
	class, sv, slot, obj := s.place(a, spawner)
	if s.Srv[sv].dead {
		sv = s.aliveServer(sv)
		if class == ClassTaskSet {
			s.setHome[obj] = sv
		}
	}
	return class, sv, slot, obj
}

func (s *Scheduler) place(a Affinity, spawner int) (Class, int, int, int64) {
	if s.Pol.IgnoreHints {
		sv := s.rr % s.Cfg.Processors
		s.rr++
		return ClassPlain, sv, -1, 0
	}
	switch a.Kind {
	case AffNone:
		return ClassPlain, spawner, -1, 0
	case AffDefault, AffSimple:
		// Cache and memory locality on the one object: collocate with
		// its home and service back to back via its task-affinity queue.
		return ClassObjectBound, s.homeServer(a.TaskObj), s.slotOf(a.TaskObj), a.TaskObj
	case AffTask:
		// Back-to-back execution matters; the particular processor is a
		// load-balancing decision. Keep a set on one server while it is
		// active, spreading distinct sets round-robin (or onto the
		// least-loaded server when the policy asks for it).
		sv, ok := s.setHome[a.TaskObj]
		if !ok {
			if s.Pol.PlaceSetsLeastLoaded {
				sv = s.leastLoaded()
			} else {
				sv = s.rr % s.Cfg.Processors
				s.rr++
			}
			s.setHome[a.TaskObj] = sv
		}
		return ClassTaskSet, sv, s.slotOf(a.TaskObj), a.TaskObj
	case AffObject:
		return ClassObjectBound, s.homeServer(a.ObjectObj), s.slotOf(a.ObjectObj), a.ObjectObj
	case AffTaskObject:
		// Memory locality on the OBJECT operand, cache reuse grouping on
		// the TASK operand.
		return ClassObjectBound, s.homeServer(a.ObjectObj), s.slotOf(a.TaskObj), a.TaskObj
	case AffProcessor:
		p := a.Processor % s.Cfg.Processors
		if p < 0 {
			p += s.Cfg.Processors
		}
		return ClassProcessor, p, -1, 0
	}
	panic(fmt.Sprintf("core: unknown affinity kind %d", a.Kind))
}

// leastLoaded returns the surviving server with the fewest queued tasks
// (ties go to the lowest id). The common case reads the incrementally
// maintained candidate; a full rescan happens only after the candidate
// was invalidated (it gained work or died).
func (s *Scheduler) leastLoaded() int {
	if !s.llDirty && !s.Srv[s.llBest].dead {
		return s.llBest
	}
	best := -1
	for i, sv := range s.Srv {
		if sv.dead {
			continue
		}
		if best < 0 || sv.queued < s.Srv[best].queued {
			best = i
		}
	}
	if best < 0 {
		return 0
	}
	s.llBest, s.llDirty = best, false
	return best
}

// SetClusterStealingOnly flips the cluster-stealing restriction at run
// time — the paper's Panel Cholesky experiment controls this "through a
// runtime flag that can be dynamically manipulated by the programmer"
// (§6.3).
func (s *Scheduler) SetClusterStealingOnly(on bool) {
	s.Pol.ClusterStealingOnly = on
}

// reroute maps a task's target server off a dead processor. A
// task-affinity set member follows its set's current (surviving) home so
// the set stays together; if the set's recorded home is itself dead, the
// member re-homes the set and later placements follow it.
func (s *Scheduler) reroute(td *TaskDesc, from int) int {
	if td.Class == ClassTaskSet {
		if h, ok := s.setHome[td.AffObj]; ok && !s.Srv[h].dead {
			return h
		}
		tgt := s.aliveServer(from)
		s.setHome[td.AffObj] = tgt
		return tgt
	}
	return s.aliveServer(from)
}

// Enqueue places a ready task on its server's queues and wakes idle
// processors. now is the simulated time the task became available.
func (s *Scheduler) Enqueue(td *TaskDesc, now int64) {
	if s.Srv[td.Server].dead {
		td.Server = s.reroute(td, td.Server)
	}
	if td.Class == ClassTaskSet {
		if h, ok := s.setHome[td.AffObj]; ok && h != td.Server {
			s.setSplits++
		}
	}
	sv := s.Srv[td.Server]
	if td.Slot >= 0 {
		q := &sv.slots[td.Slot]
		q.push(td)
		sv.nonEmpty.add(q)
	} else {
		sv.plain.push(td)
	}
	s.noteEnqueued(sv, 1)
	s.Trace.Add(now, -1, trace.KindEnqueue, td.T.Name, int64(td.Server))
	s.wake(td.Server, now)
}

// Resume re-enqueues an unblocked continuation on the server it last ran
// on and wakes idle processors.
func (s *Scheduler) Resume(td *TaskDesc, now int64) {
	s.Eng.Unblock(td.T, now)
	if s.Srv[td.LastProc].dead {
		td.LastProc = s.reroute(td, td.LastProc)
	}
	sv := s.Srv[td.LastProc]
	sv.resume.push(td)
	s.noteEnqueued(sv, 1)
	s.Trace.Add(now, -1, trace.KindReady, td.T.Name, int64(td.LastProc))
	s.wake(td.LastProc, now)
}

// wake notifies the preferred server immediately and idle thieves after
// the idle-poll delay, so a task's home server gets first crack at it
// before thieves do. While the machine-wide backlog is shallow only the
// first wakeFanout idle processors are woken (a full broadcast would
// wake every parked processor to race for at most a handful of tasks);
// once queues back up the wake falls back to broadcast. Counters record
// only wakes that reached a parked processor other than the home server
// — the home server's direct notify is the uncounted NotifyProc, so an
// idle-free machine (or a lone processor waking itself) counts nothing,
// matching the native backend's token-deposit accounting (there the
// direct target's token slot is already full when the policy runs).
func (s *Scheduler) wake(server int, now int64) {
	self := 0
	if s.Eng.Procs[server].Parked() {
		self = 1 // home server is among the idle bits; its notify is direct
	}
	s.Eng.NotifyProc(s.Eng.Procs[server], now)
	if s.Pol.DisableStealing {
		return
	}
	t := now + s.Cfg.Lat.IdlePoll
	if s.queuedTotal > s.wakeFanout {
		if s.Eng.NotifyWork(t) > self {
			s.Mon.Per[server].BroadcastWakes++
		}
	} else if s.Eng.NotifyIdle(t, s.wakeFanout) > self {
		s.Mon.Per[server].TargetedWakes++
	}
}

// WakeFanout returns the current targeted-wake width.
func (s *Scheduler) WakeFanout() int { return s.wakeFanout }

// SetWakeFanout changes the targeted-wake width at run time (the
// adaptive controller's wake knob). Widths below 1 clamp to 1.
func (s *Scheduler) SetWakeFanout(k int) {
	if k < 1 {
		k = 1
	}
	s.wakeFanout = k
}

// Dispatch implements sim.Dispatcher: local queues first (continuations,
// then the task-affinity slot being drained back to back, then other
// non-empty slots, then the plain queue), then stealing.
func (s *Scheduler) Dispatch(p *sim.Proc) *sim.Task {
	sv := s.Srv[p.ID]
	if sv.dead {
		return nil
	}
	lat := s.Cfg.Lat

	if td := s.takeLocal(sv); td != nil {
		p.Clock += lat.Dispatch
		if s.launchAborted(td, p) {
			return nil
		}
		return s.issue(td, p)
	}
	if td := s.steal(p, sv); td != nil {
		p.Clock += lat.Dispatch
		if s.launchAborted(td, p) {
			return nil
		}
		return s.issue(td, p)
	}
	return nil
}

// takeLocal removes the next task from sv's own queues.
func (s *Scheduler) takeLocal(sv *server) *TaskDesc {
	if td := sv.resume.pop(); td != nil {
		s.noteDequeued(sv, 1)
		return td
	}
	// Drain the current task-affinity queue back to back.
	if sv.cur != nil && !sv.cur.empty() {
		td := sv.cur.pop()
		s.afterSlotPop(sv, sv.cur)
		s.noteDequeued(sv, 1)
		return td
	}
	sv.cur = nil
	if q := sv.nonEmpty.head; q != nil {
		td := q.pop()
		s.afterSlotPop(sv, q)
		if !q.empty() {
			sv.cur = q
		}
		s.noteDequeued(sv, 1)
		return td
	}
	if td := sv.plain.pop(); td != nil {
		s.noteDequeued(sv, 1)
		return td
	}
	return nil
}

func (s *Scheduler) afterSlotPop(sv *server, q *taskQueue) {
	if q.empty() {
		sv.nonEmpty.removeQ(q)
		if sv.cur == q {
			sv.cur = nil
		}
	}
}

// steal scans victims for work, preferring whole task-affinity sets, then
// plain tasks, then continuations, and finally (reluctantly)
// object-affinity tasks.
func (s *Scheduler) steal(p *sim.Proc, thief *server) *TaskDesc {
	if s.Pol.DisableStealing {
		return nil
	}
	if s.Pol.ClusterStealFirst || s.Pol.ClusterStealingOnly {
		if td := s.stealScan(p, thief, s.ringCluster[p.ID]); td != nil {
			return td
		}
		if s.Pol.ClusterStealingOnly {
			return nil
		}
		return s.stealScan(p, thief, s.ringRemote[p.ID])
	}
	return s.stealScan(p, thief, s.ringFlat[p.ID])
}

// stealScan probes one precomputed victim ring in order.
func (s *Scheduler) stealScan(p *sim.Proc, thief *server, ring []int) *TaskDesc {
	ctr := &s.Mon.Per[p.ID]
	lat := s.Cfg.Lat
	for _, vid := range ring {
		v := s.Srv[vid]
		if v.queued == 0 {
			continue
		}
		local := s.Cfg.SameCluster(p.ID, vid)
		ctr.StealTries++
		if local {
			p.Clock += lat.StealLocal
		} else {
			p.Clock += lat.StealRemote
		}
		td := s.stealFrom(v, thief, p.ID, !local)
		if td == nil {
			ctr.FailedSteals++
			continue
		}
		// Tag the task with how it moved: the access path attributes
		// references of remotely-stolen work separately, which is the
		// adaptive controller's locality signal. A later local steal
		// clears the tag — attribution follows the most recent move.
		td.T.StolenRemote = !local
		if local {
			ctr.StealsLocal++
		} else {
			ctr.StealsRemote++
		}
		s.Trace.Add(p.Clock, p.ID, trace.KindSteal, td.T.Name, int64(vid))
		return td
	}
	return nil
}

// victimOrder returns the servers a thief would probe, assembled from the
// precomputed rings. Same-cluster victims come first when
// ClusterStealFirst is set; remote victims are omitted when
// ClusterStealingOnly is set. Servers retired by fault injection are
// absent from the rings, so the victim list shrinks as processors fail.
// (Diagnostics and tests; the steal path walks the rings directly.)
func (s *Scheduler) victimOrder(thief int) []int {
	if s.Pol.ClusterStealFirst || s.Pol.ClusterStealingOnly {
		order := append([]int(nil), s.ringCluster[thief]...)
		if !s.Pol.ClusterStealingOnly {
			order = append(order, s.ringRemote[thief]...)
		}
		return order
	}
	return append([]int(nil), s.ringFlat[thief]...)
}

// stealFrom takes work from victim v for the thief. Preference order:
// a whole task-affinity set, a plain task, a continuation, and finally a
// single object-bound task if policy permits. remote tags set members
// moved wholesale (the caller tags the returned task itself).
func (s *Scheduler) stealFrom(v, thief *server, thiefID int, remote bool) *TaskDesc {
	// A whole task-affinity set (ClassTaskSet at the head of some slot).
	if s.Pol.StealWholeSets {
		for q := v.nonEmpty.head; q != nil; q = q.nextQ {
			head := q.head
			if head == nil || head.Class != ClassTaskSet {
				continue
			}
			obj := head.AffObj
			var moved []*TaskDesc
			for {
				td := q.popMatching(obj)
				if td == nil {
					break
				}
				moved = append(moved, td)
			}
			s.afterSlotPop(v, q)
			s.noteDequeued(v, len(moved))
			s.setHome[obj] = thiefID
			first := moved[0]
			for _, td := range moved[1:] {
				td.Server = thiefID
				td.T.StolenRemote = remote
				tq := &thief.slots[td.Slot]
				tq.push(td)
				thief.nonEmpty.add(tq)
			}
			s.noteEnqueued(thief, len(moved)-1)
			first.Server = thiefID
			if len(moved) > 1 {
				thief.cur = &thief.slots[first.Slot]
			}
			s.Mon.Per[thiefID].SetSteals++
			return first
		}
	}
	// A plain or processor-affinity task. Scan past explicitly placed
	// (processor-affinity) tasks: they should stay put while a freely
	// stealable task sits behind them. A pinned task itself is taken only
	// from a backlogged victim — with a single queued task its own server
	// will service it promptly, and moving it defeats the placement.
	for td := v.plain.head; td != nil; td = td.next {
		if td.Class == ClassProcessor {
			continue
		}
		v.plain.remove(td)
		s.noteDequeued(v, 1)
		return td
	}
	if td := v.plain.head; td != nil && v.queued >= 2 {
		v.plain.remove(td)
		s.noteDequeued(v, 1)
		return td
	}
	// A parked continuation.
	if td := v.resume.pop(); td != nil {
		s.noteDequeued(v, 1)
		return td
	}
	// Last resort: one object-bound (or task-set, if set stealing is
	// off) task from some slot. Object-affinity tasks "should
	// preferably not be stolen" (§4.2): take one only from a
	// backlogged victim.
	for q := v.nonEmpty.head; q != nil; q = q.nextQ {
		head := q.head
		if head == nil {
			continue
		}
		if head.Class == ClassObjectBound && (!s.Pol.StealObjectBound || v.queued < 2) {
			continue
		}
		if head.Class == ClassTaskSet {
			s.setSplits++
		}
		q.remove(head)
		s.afterSlotPop(v, q)
		s.noteDequeued(v, 1)
		return head
	}
	return nil
}

// SetSplits returns how often a task-affinity set member was enqueued or
// stolen away from its set's recorded home (see the field comment).
func (s *Scheduler) SetSplits() int64 { return s.setSplits }

// issue finalizes a dispatch decision: perfmon accounting and bookkeeping.
func (s *Scheduler) issue(td *TaskDesc, p *sim.Proc) *sim.Task {
	td.LastProc = p.ID
	if !td.dispatched {
		td.dispatched = true
		ctr := &s.Mon.Per[p.ID]
		ctr.TasksRun++
		if td.Server == p.ID {
			ctr.TasksAtHome++
		}
	}
	s.Trace.Add(p.Clock, p.ID, trace.KindRun, td.T.Name, 0)
	return td.T
}

// TraceBlock records that the running task parked (called by the
// synchronization objects and the public runtime).
func (s *Scheduler) TraceBlock(ctx *sim.Ctx) {
	s.Trace.Add(ctx.Now(), ctx.Proc().ID, trace.KindBlock, ctx.Task().Name, 0)
}

// TraceDone records task completion (called by the task wrapper).
func (s *Scheduler) TraceDone(ctx *sim.Ctx) {
	s.Trace.Add(ctx.Now(), ctx.Proc().ID, trace.KindDone, ctx.Task().Name, 0)
}

// QueuedTasks returns the number of tasks currently enqueued machine-wide
// (diagnostics and tests). Maintained incrementally alongside the
// per-server counts.
func (s *Scheduler) QueuedTasks() int {
	return s.queuedTotal
}

// QueuedClusters returns how many clusters currently have at least one
// queued task — the adaptive controller's backlog-concentration gauge (a
// deep backlog pinned in one cluster argues for cross-cluster stealing,
// not against it). O(P) scan; called once per controller epoch.
func (s *Scheduler) QueuedClusters() int {
	seen := make([]bool, s.Cfg.Clusters())
	n := 0
	for _, sv := range s.Srv {
		if sv.queued <= 0 {
			continue
		}
		if cl := s.Cfg.ClusterOf(sv.id); !seen[cl] {
			seen[cl] = true
			n++
		}
	}
	return n
}
