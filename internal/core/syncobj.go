package core

import "github.com/coolrts/cool/internal/sim"

// Desc returns the scheduler descriptor of the task running in ctx.
func Desc(ctx *sim.Ctx) *TaskDesc {
	return ctx.Task().Data.(*TaskDesc)
}

// Monitor serializes COOL mutex functions on an object. The zero value is
// an unlocked monitor; Addr associates it with a simulated object so
// locking can be charged to the memory system by higher layers.
type Monitor struct {
	Addr    int64
	owner   *TaskDesc
	waiters []*TaskDesc
}

// Locked reports whether the monitor is currently held.
func (m *Monitor) Locked() bool { return m.owner != nil }

// Owner returns the descriptor of the task holding m (nil if unlocked).
func (m *Monitor) Owner() *TaskDesc { return m.owner }

// Waiters returns how many tasks are parked waiting to acquire m.
func (m *Monitor) Waiters() int { return len(m.waiters) }

// Lock acquires m for the running task, blocking (and yielding the
// processor to other tasks) while another task holds it.
func (s *Scheduler) Lock(ctx *sim.Ctx, m *Monitor) {
	ctx.SyncPoint()
	ctx.Charge(s.Cfg.Lat.LockOp)
	td := Desc(ctx)
	if m.owner == nil {
		m.owner = td
		return
	}
	if m.owner == td {
		panic("core: recursive monitor acquisition")
	}
	m.waiters = append(m.waiters, td)
	s.Mon.Per[ctx.Proc().ID].LockBlocks++
	s.TraceBlock(ctx)
	td.BlockedOn = m
	ctx.Block()
	td.BlockedOn = nil
	// Ownership was transferred to us by Unlock before we resumed.
}

// Unlock releases m, handing it to the oldest waiter if any.
func (s *Scheduler) Unlock(ctx *sim.Ctx, m *Monitor) {
	ctx.SyncPoint()
	ctx.Charge(s.Cfg.Lat.LockOp)
	if m.owner != Desc(ctx) {
		panic("core: unlocking a monitor the task does not hold")
	}
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.owner = w
		s.Resume(w, ctx.Now()+s.Cfg.Lat.Wakeup)
		return
	}
	m.owner = nil
}

// Cond is a COOL condition variable with Mesa (signal-and-continue)
// semantics, used with a Monitor.
type Cond struct {
	waiters []*TaskDesc
}

// Wait atomically releases m and blocks until signalled, then reacquires
// m before returning.
func (s *Scheduler) Wait(ctx *sim.Ctx, c *Cond, m *Monitor) {
	td := Desc(ctx)
	c.waiters = append(c.waiters, td)
	s.Unlock(ctx, m)
	s.TraceBlock(ctx)
	td.BlockedOn = c
	ctx.Block()
	td.BlockedOn = nil
	s.Lock(ctx, m)
}

// Signal wakes the oldest waiter, if any.
func (s *Scheduler) Signal(ctx *sim.Ctx, c *Cond) {
	ctx.SyncPoint()
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	s.Resume(w, ctx.Now()+s.Cfg.Lat.Wakeup)
}

// Broadcast wakes every waiter.
func (s *Scheduler) Broadcast(ctx *sim.Ctx, c *Cond) {
	ctx.SyncPoint()
	for _, w := range c.waiters {
		s.Resume(w, ctx.Now()+s.Cfg.Lat.Wakeup)
	}
	c.waiters = c.waiters[:0]
}

// Scope implements COOL's waitfor: it counts every task created in its
// dynamic extent (spawns inherit the scope transitively) and lets one
// task block until the count drains to zero.
type Scope struct {
	count  int
	waiter *TaskDesc
}

// Pending returns the number of outstanding tasks in the scope.
func (sc *Scope) Pending() int { return sc.count }

// ScopeAdd records a task created inside sc.
func (s *Scheduler) ScopeAdd(sc *Scope) { sc.count++ }

// ScopeDone records completion of a task belonging to sc, waking the
// waitfor-blocked task when the scope drains.
func (s *Scheduler) ScopeDone(ctx *sim.Ctx, sc *Scope) {
	ctx.SyncPoint()
	sc.count--
	if sc.count < 0 {
		panic("core: waitfor scope count underflow")
	}
	if sc.count == 0 && sc.waiter != nil {
		w := sc.waiter
		sc.waiter = nil
		s.Resume(w, ctx.Now()+s.Cfg.Lat.Wakeup)
	}
}

// ScopeWait blocks the running task until the scope drains. Only one task
// may wait on a scope (the one that opened the waitfor).
func (s *Scheduler) ScopeWait(ctx *sim.Ctx, sc *Scope) {
	ctx.SyncPoint()
	if sc.count == 0 {
		return
	}
	if sc.waiter != nil {
		panic("core: multiple waiters on one waitfor scope")
	}
	td := Desc(ctx)
	sc.waiter = td
	s.TraceBlock(ctx)
	td.BlockedOn = sc
	ctx.Block()
	td.BlockedOn = nil
}
