package native

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/coolrts/cool/internal/core"
	"github.com/coolrts/cool/internal/perfmon"
)

// testRuntime builds a runtime whose Home lookup spreads object
// addresses across workers page by page.
func testRuntime(t *testing.T, procs int, mut func(*Config)) (*Runtime, *perfmon.Monitor) {
	t.Helper()
	mon := perfmon.New(procs)
	cfg := Config{
		Procs:       procs,
		ClusterSize: 4,
		PageSize:    4096,
		Pol:         core.DefaultPolicy(),
		Home:        func(addr int64) int { return int(addr/4096) % procs },
		Mon:         mon,
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return rt, mon
}

func TestRunsEveryTask(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		rt, mon := testRuntime(t, procs, nil)
		var ran atomic.Int64
		const n = 500
		err := rt.Run(func(c *Ctx) {
			c.WaitFor(func() {
				for i := 0; i < n; i++ {
					aff := core.Affinity{}
					switch i % 4 {
					case 1:
						aff = core.Affinity{Kind: core.AffTask, TaskObj: int64(1 + i%8*4096)}
					case 2:
						aff = core.Affinity{Kind: core.AffObject, ObjectObj: int64(1 + i%16*4096)}
					case 3:
						aff = core.Affinity{Kind: core.AffProcessor, Processor: i}
					}
					c.Spawn("t", aff, nil, func(*Ctx) { ran.Add(1) })
				}
			})
		})
		if err != nil {
			t.Fatalf("procs=%d: Run: %v", procs, err)
		}
		if ran.Load() != n {
			t.Fatalf("procs=%d: ran %d of %d tasks", procs, ran.Load(), n)
		}
		total := mon.Total()
		if total.TasksRun != n+1 { // + the root task
			t.Fatalf("procs=%d: TasksRun=%d want %d", procs, total.TasksRun, n+1)
		}
		if rt.SetSplits() != 0 {
			t.Fatalf("procs=%d: SetSplits=%d want 0", procs, rt.SetSplits())
		}
		if rt.QueuedTasks() != 0 {
			t.Fatalf("procs=%d: %d tasks still queued after Run", procs, rt.QueuedTasks())
		}
	}
}

// TestP1DispatchOrder checks the local dispatch priority on a single
// worker: the task-affinity queue is drained back to back ahead of the
// plain queue, exactly like the simulator's server.
func TestP1DispatchOrder(t *testing.T) {
	rt, _ := testRuntime(t, 1, nil)
	var order []string
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			rec := func(name string) func(*Ctx) {
				return func(*Ctx) { order = append(order, name) }
			}
			c.Spawn("plain1", core.Affinity{}, nil, rec("plain1"))
			c.Spawn("setA1", core.Affinity{Kind: core.AffTask, TaskObj: 4096}, nil, rec("setA1"))
			c.Spawn("plain2", core.Affinity{}, nil, rec("plain2"))
			c.Spawn("setA2", core.Affinity{Kind: core.AffTask, TaskObj: 4096}, nil, rec("setA2"))
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := strings.Join(order, " ")
	want := "setA1 setA2 plain1 plain2"
	if got != want {
		t.Fatalf("P=1 dispatch order = %q, want %q", got, want)
	}
}

// mutexMode pins a test runtime to the pre-deque mutex-queue scheduler
// (the A/B baseline), whose structural tests below drive the locked
// plain queue directly.
func mutexMode(cfg *Config) { cfg.MutexQueue = true }

// TestWholeSetStealMovesEverything drives stealFrom directly: a victim
// holding a three-member task-affinity set plus a plain task must lose
// the whole set in one steal, with the set re-homed to the thief.
func TestWholeSetStealMovesEverything(t *testing.T) {
	rt, mon := testRuntime(t, 2, mutexMode)
	v, w := rt.workers[0], rt.workers[1]
	const obj = int64(4096)
	slot := rt.slotOf(obj)
	rt.shardOf(obj).home[obj] = 0
	for i := 0; i < 3; i++ {
		st := rt.newTask(nil)
		st.name, st.fn = "set", func(*Ctx) {}
		st.class, st.server, st.slot, st.affObj = core.ClassTaskSet, 0, slot, obj
		rt.insert(st, 0)
	}
	pl := rt.newTask(nil)
	pl.name, pl.fn = "plain", func(*Ctx) {}
	pl.class, pl.server = core.ClassPlain, 0
	rt.insert(pl, 0)

	got := rt.stealFrom(v, w)
	if got == nil || got.affObj != obj {
		t.Fatalf("stealFrom returned %+v, want head of set %d", got, obj)
	}
	if home := rt.setHomeOf(obj); home != 1 {
		t.Fatalf("set home = %d after steal, want thief 1", home)
	}
	if n := w.slots[slot].size; n != 2 {
		t.Fatalf("thief slot holds %d set members, want 2", n)
	}
	if w.cur != &w.slots[slot] {
		t.Fatalf("thief cur not pointed at the stolen set's slot")
	}
	if v.slots[slot].size != 0 {
		t.Fatalf("victim still holds %d set members: set split", v.slots[slot].size)
	}
	if mon.Per[1].SetSteals != 1 {
		t.Fatalf("SetSteals=%d want 1", mon.Per[1].SetSteals)
	}
	if v.plain.size != 1 {
		t.Fatalf("victim plain queue disturbed: size=%d want 1", v.plain.size)
	}
}

// TestStealSkipsPinnedHead: a processor-affinity task at the head of the
// plain queue must not be stolen while a free task sits behind it, and a
// lone pinned task must not be stolen at all.
func TestStealSkipsPinnedHead(t *testing.T) {
	rt, _ := testRuntime(t, 2, mutexMode)
	v, w := rt.workers[0], rt.workers[1]
	pin := rt.newTask(nil)
	pin.name, pin.fn = "pinned", func(*Ctx) {}
	pin.class, pin.server = core.ClassProcessor, 0
	rt.insert(pin, 0)
	free := rt.newTask(nil)
	free.name, free.fn = "free", func(*Ctx) {}
	free.class, free.server = core.ClassPlain, 0
	rt.insert(free, 0)

	got := rt.stealFrom(v, w)
	if got == nil || got.name != "free" {
		t.Fatalf("stole %v, want the free task behind the pinned head", got)
	}
	// Now only the pinned task remains (queued=1): not stealable.
	got = rt.stealFrom(v, w)
	if got != nil {
		t.Fatalf("stole lone pinned task %q", got.name)
	}
}

// TestObjectBoundStolenOnlyFromBacklog: object-affinity tasks move only
// when the victim has at least two queued tasks.
func TestObjectBoundStolenOnlyFromBacklog(t *testing.T) {
	rt, _ := testRuntime(t, 2, mutexMode)
	v, w := rt.workers[0], rt.workers[1]
	mk := func(addr int64) {
		ob := rt.newTask(nil)
		ob.name, ob.fn = "ob", func(*Ctx) {}
		ob.class, ob.server, ob.slot, ob.affObj = core.ClassObjectBound, 0, rt.slotOf(addr), addr
		rt.insert(ob, 0)
	}
	mk(64)
	got := rt.stealFrom(v, w)
	if got != nil {
		t.Fatalf("stole object-bound task from a victim with queued=1")
	}
	mk(128)
	got = rt.stealFrom(v, w)
	if got == nil || got.class != core.ClassObjectBound {
		t.Fatalf("want an object-bound steal from a backlogged victim, got %v", got)
	}
}

// TestDequeWholeSetSteal is TestWholeSetStealMovesEverything for the
// default deque scheduler: the whole set moves in one steal via the
// sets-first phase, a plain task on the victim's deque is untouched by
// it and then taken by a CAS-only plain steal, and the lock-free hints
// (setQueued, stealable, queued) end with zero drift.
func TestDequeWholeSetSteal(t *testing.T) {
	rt, mon := testRuntime(t, 2, nil)
	v, w := rt.workers[0], rt.workers[1]
	const obj = int64(4096)
	slot := rt.slotOf(obj)
	rt.shardOf(obj).home[obj] = 0
	ctr := &mon.Per[0]
	for i := 0; i < 3; i++ {
		st := rt.newTask(nil)
		st.name, st.fn = "set", func(*Ctx) {}
		rt.placeSet(st, obj, ctr)
	}
	pl := rt.newTask(nil)
	pl.name, pl.fn = "plain", func(*Ctx) {}
	pl.class, pl.server = core.ClassPlain, 0
	rt.insert(pl, 0) // actor 0 == target: straight onto v's deque

	if v.setQueued.Load() != 3 || v.deq.size() != 1 {
		t.Fatalf("setup: setQueued=%d deq=%d, want 3 and 1", v.setQueued.Load(), v.deq.size())
	}
	got := rt.stealFrom(v, w)
	if got == nil || got.affObj != obj {
		t.Fatalf("stealFrom returned %+v, want head of set %d", got, obj)
	}
	if home := rt.setHomeOf(obj); home != 1 {
		t.Fatalf("set home = %d after steal, want thief 1", home)
	}
	if n := w.slots[slot].size; n != 2 {
		t.Fatalf("thief slot holds %d set members, want 2", n)
	}
	if v.slots[slot].size != 0 || v.setQueued.Load() != 0 || v.lockedWork.Load() != 0 {
		t.Fatalf("victim kept set state: slot=%d setQueued=%d lockedWork=%d",
			v.slots[slot].size, v.setQueued.Load(), v.lockedWork.Load())
	}
	if w.setQueued.Load() != 2 || w.lockedWork.Load() != 2 {
		t.Fatalf("thief hints setQueued=%d lockedWork=%d, want 2 and 2",
			w.setQueued.Load(), w.lockedWork.Load())
	}
	if mon.Per[1].SetSteals != 1 {
		t.Fatalf("SetSteals=%d want 1", mon.Per[1].SetSteals)
	}
	if v.deq.size() != 1 {
		t.Fatalf("victim deque disturbed by the set steal: size=%d want 1", v.deq.size())
	}
	got = rt.stealFrom(v, w)
	if got == nil || got.name != "plain" {
		t.Fatalf("plain deque steal returned %v, want the plain task", got)
	}
	if v.queued.Load() != 0 || v.stealable.Load() != 0 {
		t.Fatalf("victim hint drift after drain: queued=%d stealable=%d",
			v.queued.Load(), v.stealable.Load())
	}
}

// TestDequeStealRules covers the deque scheduler's reluctant phases:
// only plain records may leave a victim's inbox, pinned tasks are
// stolen from the locked pinned queue only when the victim is
// backlogged, and object-bound tasks only under the same backlog rule.
func TestDequeStealRules(t *testing.T) {
	rt, mon := testRuntime(t, 2, nil)
	v, w := rt.workers[0], rt.workers[1]
	ctr := &mon.Per[1]
	mkPin := func(name string) {
		pin := rt.newTask(nil)
		pin.name, pin.fn = name, func(*Ctx) {}
		pin.class, pin.server = core.ClassProcessor, 0
		rt.insertFrom(pin, ctr, nil) // cross-worker: lands in v's inbox
	}
	mkPin("pin1")
	free := rt.newTask(nil)
	free.name, free.fn = "free", func(*Ctx) {}
	free.class, free.server = core.ClassPlain, 0
	rt.insertFrom(free, ctr, nil)

	// The inbox probe must take the plain record and leave the pinned one.
	got := rt.stealFrom(v, w)
	if got == nil || got.name != "free" {
		t.Fatalf("stole %v, want the free task from the inbox", got)
	}
	// A lone pinned record is not stealable — from the inbox or after the
	// owner drains it into the pinned queue.
	if got = rt.stealFrom(v, w); got != nil {
		t.Fatalf("stole lone pinned inbox record %q", got.name)
	}
	rt.drainInbox(v)
	if v.pinned.size != 1 || v.lockedWork.Load() != 1 {
		t.Fatalf("drainInbox left pinned=%d lockedWork=%d, want 1 and 1",
			v.pinned.size, v.lockedWork.Load())
	}
	if got = rt.stealFrom(v, w); got != nil {
		t.Fatalf("stole lone pinned task %q", got.name)
	}
	// Backlogged (queued=2): the pinned head may move.
	mkPin("pin2")
	rt.drainInbox(v)
	if got = rt.stealFrom(v, w); got == nil || got.class != core.ClassProcessor {
		t.Fatalf("want a pinned steal from a backlogged victim, got %v", got)
	}

	// Object-bound: same backlog rule, via the slot queues.
	rt2, mon2 := testRuntime(t, 2, nil)
	v2, w2 := rt2.workers[0], rt2.workers[1]
	mkOb := func(addr int64) {
		ob := rt2.newTask(nil)
		ob.name, ob.fn = "ob", func(*Ctx) {}
		ob.class, ob.server, ob.slot, ob.affObj = core.ClassObjectBound, 0, rt2.slotOf(addr), addr
		rt2.insertFrom(ob, &mon2.Per[1], nil)
	}
	mkOb(64)
	rt2.drainInbox(v2)
	if got := rt2.stealFrom(v2, w2); got != nil {
		t.Fatalf("stole object-bound task from a victim with queued=1")
	}
	mkOb(128)
	rt2.drainInbox(v2)
	if got := rt2.stealFrom(v2, w2); got == nil || got.class != core.ClassObjectBound {
		t.Fatalf("want an object-bound steal from a backlogged victim, got %v", got)
	}
}

func TestMonitorCountsBlockedAcquisitions(t *testing.T) {
	rt, mon := testRuntime(t, 1, nil)
	m := &Monitor{}
	c := &Ctx{w: rt.workers[0], rt: rt}
	c.Lock(m)
	if mon.Per[0].LockBlocks != 0 {
		t.Fatalf("uncontended Lock counted as blocked")
	}
	done := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		c.Unlock(m)
		close(done)
	}()
	c2 := &Ctx{w: rt.workers[0], rt: rt}
	c2.Lock(m)
	c2.Unlock(m)
	<-done
	if mon.Per[0].LockBlocks != 1 {
		t.Fatalf("LockBlocks=%d want 1", mon.Per[0].LockBlocks)
	}
}

func TestMutexTasksSerialize(t *testing.T) {
	rt, _ := testRuntime(t, 8, nil)
	m := &Monitor{}
	var inside, maxInside, total int64
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			for i := 0; i < 200; i++ {
				c.Spawn("mx", core.Affinity{}, m, func(*Ctx) {
					n := atomic.AddInt64(&inside, 1)
					if n > atomic.LoadInt64(&maxInside) {
						atomic.StoreInt64(&maxInside, n)
					}
					total++ // monitor-protected; the race detector checks it
					atomic.AddInt64(&inside, -1)
				})
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if maxInside != 1 {
		t.Fatalf("%d mutex tasks ran concurrently", maxInside)
	}
	if total != 200 {
		t.Fatalf("total=%d want 200", total)
	}
}

func TestPanicBecomesTaskFailure(t *testing.T) {
	rt, _ := testRuntime(t, 2, nil)
	var after atomic.Int64
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			c.Spawn("boom", core.Affinity{}, nil, func(*Ctx) { panic("kaput") })
			for i := 0; i < 50; i++ {
				c.Spawn("ok", core.Affinity{}, nil, func(*Ctx) { after.Add(1) })
			}
		})
	})
	f, ok := err.(*TaskFailure)
	if !ok {
		t.Fatalf("Run returned %v, want *TaskFailure", err)
	}
	if f.Task != "boom" || f.Value != "kaput" || f.Stack == "" {
		t.Fatalf("failure = %+v", f)
	}
	if after.Load() != 50 {
		t.Fatalf("only %d healthy tasks completed after the panic", after.Load())
	}
}

func TestNestedWaitFor(t *testing.T) {
	rt, _ := testRuntime(t, 4, nil)
	var sum atomic.Int64
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			for i := 0; i < 8; i++ {
				c.Spawn("outer", core.Affinity{}, nil, func(c *Ctx) {
					c.WaitFor(func() {
						for j := 0; j < 8; j++ {
							c.Spawn("inner", core.Affinity{}, nil, func(*Ctx) { sum.Add(1) })
						}
					})
					sum.Add(100)
				})
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum.Load() != 8*8+8*100 {
		t.Fatalf("sum=%d want %d", sum.Load(), 8*8+8*100)
	}
}

func TestCondSignalBroadcast(t *testing.T) {
	rt, _ := testRuntime(t, 4, nil)
	m := &Monitor{}
	cv := &Cond{}
	var stage int
	var woken atomic.Int64
	var wg sync.WaitGroup
	c := &Ctx{w: rt.workers[0], rt: rt}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cc := &Ctx{w: rt.workers[1], rt: rt}
			cc.Lock(m)
			for stage == 0 {
				cc.Wait(cv, m)
			}
			woken.Add(1)
			cc.Unlock(m)
		}()
	}
	time.Sleep(5 * time.Millisecond)
	c.Lock(m)
	stage = 1
	c.Signal(cv)
	c.Broadcast(cv)
	c.Unlock(m)
	wg.Wait()
	if woken.Load() != 3 {
		t.Fatalf("woken=%d want 3", woken.Load())
	}
}

func TestVictimRings(t *testing.T) {
	rt, _ := testRuntime(t, 8, nil)
	// Thief 1 (cluster {0..3}): cluster ring walks (1+d)%8 restricted to
	// the cluster, remote ring the rest, both in probe order.
	wantCluster := []int{2, 3, 0}
	wantRemote := []int{4, 5, 6, 7}
	if got := rt.ringCluster[1]; !equalInts(got, wantCluster) {
		t.Fatalf("ringCluster[1]=%v want %v", got, wantCluster)
	}
	if got := rt.ringRemote[1]; !equalInts(got, wantRemote) {
		t.Fatalf("ringRemote[1]=%v want %v", got, wantRemote)
	}
	if got := rt.ringFlat[1]; len(got) != 7 {
		t.Fatalf("ringFlat[1]=%v want 7 victims", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWakeCountersAccumulate: spawning from a running task charges
// targeted or broadcast wakes to the spawner's row. Wakes are only
// counted when a token is actually deposited, so wait for at least one
// sibling to park before spawning.
func TestWakeCountersAccumulate(t *testing.T) {
	rt, mon := testRuntime(t, 4, nil)
	err := rt.Run(func(c *Ctx) {
		for rt.parked.Load() == 0 {
			runtime.Gosched()
		}
		c.WaitFor(func() {
			for i := 0; i < 100; i++ {
				c.Spawn("w", core.Affinity{}, nil, func(*Ctx) {})
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	total := mon.Total()
	if total.TargetedWakes+total.BroadcastWakes == 0 {
		t.Fatalf("no wake events counted across 100 spawns")
	}
}

func TestRunTwiceFails(t *testing.T) {
	rt, _ := testRuntime(t, 1, nil)
	if err := rt.Run(func(*Ctx) {}); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if err := rt.Run(func(*Ctx) {}); err == nil {
		t.Fatalf("second Run succeeded")
	}
}

func TestConfigValidation(t *testing.T) {
	mon := perfmon.New(4)
	home := func(int64) int { return 0 }
	cases := []Config{
		{Procs: 0, ClusterSize: 4, PageSize: 4096, Home: home, Mon: mon},
		{Procs: 65, ClusterSize: 4, PageSize: 4096, Home: home, Mon: mon},
		{Procs: 4, ClusterSize: 0, PageSize: 4096, Home: home, Mon: mon},
		{Procs: 4, ClusterSize: 4, PageSize: 0, Home: home, Mon: mon},
		{Procs: 4, ClusterSize: 4, PageSize: 4096, Home: nil, Mon: mon},
		{Procs: 4, ClusterSize: 4, PageSize: 4096, Home: home, Mon: nil},
		{Procs: 8, ClusterSize: 4, PageSize: 4096, Home: home, Mon: mon}, // monitor too small
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

// A Home callback that panics (the embedding runtime rejecting an
// address outside its space) must surface as a TaskFailure from Run,
// not leak the half-spawned task's live count and hang the drain.
func TestHomePanicFailsRun(t *testing.T) {
	for _, procs := range []int{1, 4} {
		rt, _ := testRuntime(t, procs, func(cfg *Config) {
			cfg.Home = func(addr int64) int {
				if addr >= 1<<20 {
					panic("home: address outside any arena")
				}
				return int(addr/4096) % procs
			}
		})
		errCh := make(chan error, 1)
		go func() {
			errCh <- rt.Run(func(c *Ctx) {
				c.WaitFor(func() {
					c.Spawn("ok", core.Affinity{Kind: core.AffObject, ObjectObj: 4096}, nil, func(*Ctx) {})
					c.Spawn("bad", core.Affinity{Kind: core.AffObject, ObjectObj: 1 << 21}, nil, func(*Ctx) {})
				})
			})
		}()
		select {
		case err := <-errCh:
			var tf *TaskFailure
			if !errors.As(err, &tf) {
				t.Fatalf("procs=%d: Run returned %v, want a *TaskFailure", procs, err)
			}
			if !strings.Contains(tf.Error(), "outside any arena") {
				t.Fatalf("procs=%d: failure %v does not carry the Home panic", procs, tf)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("procs=%d: Run hung after Home panic (leaked live count?)", procs)
		}
	}
}
