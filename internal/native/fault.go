package native

import (
	"container/heap"
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/coolrts/cool/internal/core"
	"github.com/coolrts/cool/internal/fault"
	"github.com/coolrts/cool/internal/trace"
)

// This file ports the robustness stack to the native backend: wall-clock
// fault injection (worker retirement, slowdowns, stalls, flaky windows,
// injected task panics and transient launch failures), affinity-aware
// retries with backoff, run deadlines, and a no-progress watchdog. The
// semantics mirror the simulator's (internal/core/degrade.go and
// retry.go) with simulated cycles read as wall-clock nanoseconds; the
// differences are documented in DESIGN.md §9.
//
// Concurrency ground rules, extending the protocol of DESIGN.md §10:
//
//   - A retired worker is marked in the atomic dead mask BEFORE its
//     queues are drained under its own lock. Any insert that acquires
//     the target's queue lock after the drain began observes the dead
//     bit (sequentially consistent atomic published before the mutex
//     acquisition) and reroutes; any insert that completed earlier is
//     swept up by the drain. No task is lost in the race between
//     placement and retirement.
//   - Timed fault events (slowdown, stall, fail) are applied by the
//     victim worker's own goroutine at its dispatch points, so the
//     fault counters keep the one-writer-per-row perfmon contract.
//   - The timekeeper goroutine delivers due retries and fires
//     deadline/watchdog stops. It never writes a perfmon row (retries
//     are counted by the aborting worker; the timekeeper's lock
//     contention goes to a private scratch row).

// RetryConfig enables transient-failure retries on the native backend.
// The zero value disables retries: the first aborted launch stops the
// run with *TaskAbort. Backoffs are wall-clock nanoseconds.
type RetryConfig struct {
	MaxAttempts  int   // total launch attempts allowed per spawn (0 = retries disabled)
	BackoffNS    int64 // delay before the second attempt; doubles per retry
	MaxBackoffNS int64 // cap on the exponential backoff
}

// enabled reports whether a retry policy is active.
func (r RetryConfig) enabled() bool { return r.MaxAttempts > 0 }

// delay returns the backoff before the next attempt when attempts have
// already failed (attempts >= 1) — the same shape as the public
// RetryPolicy.delay, in nanoseconds.
func (r RetryConfig) delay(attempts int) int64 {
	shift := attempts - 1
	if shift > 30 {
		shift = 30
	}
	d := r.BackoffNS << uint(shift)
	if d > r.MaxBackoffNS || d <= 0 {
		d = r.MaxBackoffNS
	}
	return d
}

// TaskAbort reports a transient launch failure the run could not absorb:
// no retry policy, or the task's attempt budget ran out. The embedding
// runtime converts it to its public *TaskAbortError.
type TaskAbort struct {
	Task     string
	Proc     int
	Time     int64 // nanoseconds since Run started
	Attempts int
}

func (a *TaskAbort) Error() string {
	return fmt.Sprintf("native: task %q launch aborted on P%d at %dns (%d attempt(s) failed, retry budget exhausted)",
		a.Task, a.Proc, a.Time, a.Attempts)
}

// DeadlineError reports that wall-clock time passed the configured run
// deadline with work still outstanding.
type DeadlineError struct {
	DeadlineNS  int64
	Time        int64 // nanoseconds since Run started
	Live        int   // tasks not yet run to completion
	QueueDepths []int // queued tasks per worker (-1 = retired worker)
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("native: deadline %dns exceeded at %dns with %d live task(s); queues=%v",
		e.DeadlineNS, e.Time, e.Live, e.QueueDepths)
}

// NoProgressError reports that no task completed for a full watchdog
// window while work was still outstanding — the native analogue of the
// simulator's cycle-limit watchdog, guarding chaos campaigns against
// scheduler-level hangs (a lost task would otherwise park every worker
// forever).
type NoProgressError struct {
	WindowNS    int64
	Time        int64 // nanoseconds since Run started
	Live        int   // tasks not yet run to completion
	QueueDepths []int // queued tasks per worker (-1 = retired worker)
	Snapshot    string
}

func (e *NoProgressError) Error() string {
	s := fmt.Sprintf("native: no progress: no task completed for %dns (at %dns, %d live task(s))",
		e.WindowNS, e.Time, e.Live)
	if e.Snapshot != "" {
		s += "\n" + e.Snapshot
	}
	return s
}

// InjectedPanic is the panic value used for plan-injected task panics.
type InjectedPanic struct{ Task string }

func (p InjectedPanic) String() string {
	return fmt.Sprintf("injected fault: task %q", p.Task)
}

// stopUnwind is the panic sentinel used to unwind a worker goroutine
// blocked inside a task body (waitfor helping loop, condition wait)
// when the run is stopped by a deadline, watchdog, or retry exhaustion.
// execute's recovery recognizes and swallows it.
type stopUnwind struct{}

// nsWindow is a half-open wall-clock window [from, to).
type nsWindow struct{ from, to int64 }

// workerFaults is one worker's share of the fault plan. It is written
// only by that worker's own goroutine (pending events are consumed in
// order at dispatch points); the static flaky windows are read-only
// after New. idx is atomic only because the timekeeper peeks at it to
// decide whether the worker has a due event worth waking it for — the
// worker remains the sole writer.
type workerFaults struct {
	pending []fault.Event // timed slowdown/stall/fail events, sorted by At
	idx     atomic.Int32  // next pending event to apply

	flaky    []nsWindow // launch-abort windows, static
	flakyHit []bool     // window already counted as a fault event

	slowFrom, slowUntil, slowFactor int64 // active slowdown window
}

// injector tracks per-name spawn sequence numbers and the planted
// panic/abort injections. Only tracked names pay for the lock: spawn
// consults the read-only tracked set first.
type injector struct {
	mu      sync.Mutex
	seq     map[string]int
	panics  map[string]map[int]bool
	aborts  map[string]map[int]int
	tracked map[string]bool
}

// noteSpawn assigns t its per-name creation index and marks a planted
// panic. Called only for tracked names.
func (in *injector) noteSpawn(t *task) {
	in.mu.Lock()
	idx := in.seq[t.name]
	in.seq[t.name] = idx + 1
	t.spawnIdx, t.tracked = idx, true
	if in.panics[t.name][idx] {
		t.injPanic = true
	}
	in.mu.Unlock()
}

// consumeAbort consumes one planted transient abort for (name, idx),
// reporting whether this launch attempt is struck.
func (in *injector) consumeAbort(name string, idx int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	set := in.aborts[name]
	if set == nil || set[idx] <= 0 {
		return false
	}
	set[idx]--
	return true
}

// retryItem is one backoff-delayed relaunch.
type retryItem struct {
	due    int64 // nanoseconds since Run start
	t      *task
	target int
}

// retryQueue is the mutex-guarded min-heap of pending retries, filled
// by aborting workers and drained by the timekeeper.
type retryQueue struct {
	mu    sync.Mutex
	items retryHeap
}

type retryHeap []retryItem

func (h retryHeap) Len() int           { return len(h) }
func (h retryHeap) Less(i, j int) bool { return h[i].due < h[j].due }
func (h retryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *retryHeap) Push(x any)        { *h = append(*h, x.(retryItem)) }
func (h *retryHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func (q *retryQueue) add(it retryItem) {
	q.mu.Lock()
	heap.Push(&q.items, it)
	q.mu.Unlock()
}

// popDue removes and returns one item due at or before now, or ok=false.
func (q *retryQueue) popDue(now int64) (retryItem, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 || q.items[0].due > now {
		return retryItem{}, false
	}
	return heap.Pop(&q.items).(retryItem), true
}

// armFaults partitions a validated plan into per-worker event state and
// the spawn-time injector. MemDegrade events are dropped: the native
// backend has no memory system to degrade (documented in DESIGN.md §9).
func (rt *Runtime) armFaults(p *fault.Plan) {
	var inj *injector
	getInj := func() *injector {
		if inj == nil {
			inj = &injector{
				seq:     map[string]int{},
				panics:  map[string]map[int]bool{},
				aborts:  map[string]map[int]int{},
				tracked: map[string]bool{},
			}
		}
		return inj
	}
	fvs := make([]*workerFaults, len(rt.workers))
	getFv := func(proc int) *workerFaults {
		if fvs[proc] == nil {
			fvs[proc] = &workerFaults{}
		}
		return fvs[proc]
	}
	for _, ev := range p.Events {
		switch ev.Kind {
		case fault.Slowdown, fault.Stall, fault.Fail, fault.Drain:
			fv := getFv(ev.Proc)
			fv.pending = append(fv.pending, ev)
		case fault.AddWorker:
			// Pool growth has no victim worker; the timekeeper applies
			// due adds (best-effort — capacity may be exhausted).
			rt.addTimes = append(rt.addTimes, ev.At)
		case fault.Flaky:
			fv := getFv(ev.Proc)
			fv.flaky = append(fv.flaky, nsWindow{ev.At, ev.At + ev.Cycles})
			fv.flakyHit = append(fv.flakyHit, false)
		case fault.TaskPanic:
			in := getInj()
			if in.panics[ev.Task] == nil {
				in.panics[ev.Task] = map[int]bool{}
			}
			in.panics[ev.Task][ev.Nth] = true
			in.tracked[ev.Task] = true
		case fault.TaskFail:
			in := getInj()
			if in.aborts[ev.Task] == nil {
				in.aborts[ev.Task] = map[int]int{}
			}
			in.aborts[ev.Task][ev.Nth]++
			in.tracked[ev.Task] = true
		case fault.MemDegrade:
			// No memory system to degrade natively; documented no-op.
		}
	}
	for i, fv := range fvs {
		if fv == nil {
			continue
		}
		// Insertion sort keeps equal-At events applying in plan order.
		evs := fv.pending
		for a := 1; a < len(evs); a++ {
			for b := a; b > 0 && evs[b].At < evs[b-1].At; b-- {
				evs[b], evs[b-1] = evs[b-1], evs[b]
			}
		}
		rt.workers[i].fev = fv
	}
	sort.Slice(rt.addTimes, func(a, b int) bool { return rt.addTimes[a] < rt.addTimes[b] })
	rt.inj = inj
}

// stopped reports whether the run has been aborted.
func (rt *Runtime) stopped() bool { return rt.stopping.Load() }

// stop aborts the run with err (first failure wins): workers unwind at
// their next dispatch point or park, and Run returns err.
func (rt *Runtime) stop(err error) {
	rt.recordFailure(err)
	rt.stopOnce.Do(func() {
		rt.stopping.Store(true)
		close(rt.stopc)
	})
}

// isDead reports whether worker id has been retired.
func (rt *Runtime) isDead(id int) bool {
	return rt.dead.Load()&(1<<uint(id)) != 0
}

// aliveWorkers returns the number of workers not retired (spare slots
// reserved by MaxProcs sit in the dead mask until AddWorkers claims
// them, so they never count).
func (rt *Runtime) aliveWorkers() int {
	return len(rt.workers) - bits.OnesCount64(rt.dead.Load())
}

// aliveWorker maps sv to itself when alive, otherwise deterministically
// to a surviving worker — same-cluster survivors first (the preference
// the simulator's degrade path uses), then increasing worker distance.
func (rt *Runtime) aliveWorker(sv int) int {
	if !rt.isDead(sv) {
		return sv
	}
	n := len(rt.workers)
	for d := 1; d < n; d++ {
		v := (sv + d) % n
		if !rt.isDead(v) && rt.sameCluster(sv, v) {
			return v
		}
	}
	for d := 1; d < n; d++ {
		v := (sv + d) % n
		if !rt.isDead(v) {
			return v
		}
	}
	return sv
}

// spreadAlive returns surviving workers in rotation, for load-balanced
// redistribution of tasks with no binding affinity.
func (rt *Runtime) spreadAlive() int {
	n := len(rt.workers)
	for i := 0; i < n; i++ {
		v := int(rt.rr.Add(1)-1) % n
		if !rt.isDead(v) {
			return v
		}
	}
	return 0
}

// rerouteTarget picks the surviving worker for a task whose placement
// target is dead — the native failoverTarget for non-set classes (sets
// re-home under their shard lock in placeSet instead).
func (rt *Runtime) rerouteTarget(t *task) int {
	if t.class == core.ClassObjectBound {
		return rt.aliveWorker(t.server)
	}
	return rt.spreadAlive()
}

// checkFaults applies this worker's due timed fault events at a
// dispatch point, returning true when the worker retired (the caller
// must exit its loop). topLevel distinguishes the worker's main loop
// from a waitfor helping loop: a helping worker is inside a task body
// it must eventually resume, so a due Fail event is deferred (left
// pending, blocking later events — just as death would) until the
// worker is back at top level. Runs on w's own goroutine only.
func (rt *Runtime) checkFaults(w *worker, topLevel bool) bool {
	fv := w.fev
	if fv == nil || int(fv.idx.Load()) >= len(fv.pending) {
		return false
	}
	now := rt.nowNS()
	ctr := &rt.cfg.Mon.Per[w.id]
	for i := int(fv.idx.Load()); i < len(fv.pending) && fv.pending[i].At <= now; i = int(fv.idx.Load()) {
		ev := fv.pending[i]
		fv.idx.Store(int32(i + 1))
		switch ev.Kind {
		case fault.Slowdown:
			fv.slowFrom, fv.slowFactor = ev.At, ev.Factor
			if ev.Cycles > 0 {
				fv.slowUntil = ev.At + ev.Cycles
			} else {
				fv.slowUntil = 1 << 62
			}
			ctr.FaultEvents++
			rt.trace(w, trace.KindFault, w.id, "slowdown", ev.Factor)
		case fault.Stall:
			ctr.FaultEvents++
			rt.trace(w, trace.KindFault, w.id, "stall", ev.Cycles)
			rt.sleep(w, time.Duration(ev.Cycles))
		case fault.Fail:
			if !topLevel {
				fv.idx.Store(int32(i))
				return false
			}
			rt.retireWith(w, true, 0)
			return true
		case fault.Drain:
			// A planned drain is deferred exactly like death while the
			// worker is helping inside a task body.
			if !topLevel {
				fv.idx.Store(int32(i))
				return false
			}
			rt.retireWith(w, false, ev.At)
			return true
		}
		now = rt.nowNS()
	}
	return false
}

// slowdownPenalty returns the extra time a task that started at startNS
// and ran for durNS owes to an active slowdown window on this worker —
// (factor-1)× the task's own duration, clamped to the window's end so a
// bounded straggler window cannot stall the worker past it.
func (fv *workerFaults) slowdownPenalty(startNS, durNS, nowNS int64) time.Duration {
	if fv.slowFactor < 2 || startNS < fv.slowFrom || startNS >= fv.slowUntil {
		return 0
	}
	extra := durNS * (fv.slowFactor - 1)
	if rem := fv.slowUntil - nowNS; rem < extra {
		extra = rem
	}
	if extra <= 0 {
		return 0
	}
	return time.Duration(extra)
}

// sleep pauses w for d, waking early if the run stops. It reuses the
// worker's park timer (never concurrently in use: sleeps happen at
// dispatch points, parks when there is nothing to dispatch).
func (rt *Runtime) sleep(w *worker, d time.Duration) {
	if d <= 0 {
		return
	}
	if w.timer == nil {
		w.timer = time.NewTimer(d)
	} else {
		w.timer.Reset(d)
	}
	fired := false
	select {
	case <-rt.stopc:
	case <-w.timer.C:
		fired = true
	}
	if !fired && !w.timer.Stop() {
		<-w.timer.C
	}
}

// retireWith permanently stops worker w, as a fault-injected kill
// (kill=true — the native FailServer) or a planned drain (kill=false —
// the clean half of elastic worker pools, reqNS carrying the request
// time for the drain-latency report): mark the dead bit, drain every
// queued task under w's own lock, then redistribute
// affinity-preserving: whole task-affinity sets re-home as a unit under
// their shard lock, object-bound tasks move to the nearest same-cluster
// survivor, everything else spreads round-robin. Runs on w's own
// goroutine at a top-level dispatch point (never mid-task), so there is
// no partially-run task to hand off.
//
// The dead bit is published while w.mu is held: a whole-set steal needs
// the victim's lock, and placeSet's TryLock fast path falls through to
// a slow path that revalidates the bit — so once the lock is taken here
// there is no window in which a set can be re-homed ONTO w or stolen
// half-accounted off it, which is what keeps SetSplits at zero through
// retirement. The lock-free inbox keeps the older ordering argument:
// the bit is published (under the lock) before the inbox swap below, so
// a racing pusher either lands before the swap and is drained here, or
// re-checks the bit after its push and sweeps its own record.
//
// The drain must not hold w.mu while inserting into survivors: a thief
// concurrently whole-set-stealing via the in-order lock path could hold
// a lower-id worker's lock while waiting for w's, and an insert from
// under w.mu would wait on that thief's victim lock — a cycle. Draining
// into a slice first keeps the protocol's rule that no worker lock is
// taken while holding another outside the ordered stealSet path.
func (rt *Runtime) retireWith(w *worker, kill bool, reqNS int64) {
	bit := uint64(1) << uint(w.id)
	ctr := &rt.cfg.Mon.Per[w.id]
	if kill {
		ctr.FaultEvents++
		rt.trace(w, trace.KindFault, w.id, "proc-fail", 0)
	}

	w.mu.Lock()
	for {
		old := rt.dead.Load()
		if rt.dead.CompareAndSwap(old, old|bit) {
			break
		}
	}
	var drained []*task
	if rt.deque {
		for q := w.nonEmpty.head; q != nil; q = w.nonEmpty.head {
			for t := q.pop(); t != nil; t = q.pop() {
				drained = append(drained, t)
			}
			w.nonEmpty.removeQ(q)
		}
		for t := w.pinned.pop(); t != nil; t = w.pinned.pop() {
			drained = append(drained, t)
		}
		w.cur = nil
		// Every writer of the locked-structure hints holds w.mu, so the
		// bulk reset is safe; queued/stealable/queuedTotal are also moved
		// by lock-free thieves and so must shrink by exactly what this
		// drain removed, not be zeroed.
		w.lockedWork.Store(0)
		w.setQueued.Store(0)
		lockedSets := 0
		for _, t := range drained {
			if t.class == core.ClassTaskSet {
				lockedSets++
			}
		}
		w.queued.Add(int64(-len(drained)))
		w.stealable.Add(int64(-lockedSets))
		rt.queuedTotal.Add(int64(-len(drained)))
		w.mu.Unlock()

		// The deque drains outside the lock: thieves may still CAS its
		// top, so each pop unaccounts one task individually. Retirement
		// runs on w's own goroutine, making popBottom legal and — since
		// no one else ever pushes this deque — a nil return terminal
		// (empty, or a thief won the race for the last record).
		for t := w.deq.popBottom(); t != nil; t = w.deq.popBottom() {
			w.queued.Add(-1)
			w.stealable.Add(-1)
			rt.queuedTotal.Add(-1)
			drained = append(drained, t)
		}
		// The inbox was swapped after the dead bit was published, so a
		// racing pusher either lands before this swap (drained here) or
		// observes the bit afterwards and sweeps its own push.
		for t := w.inbox.swapAll(); t != nil; {
			next := t.next
			t.next = nil
			w.queued.Add(-1)
			if t.class == core.ClassPlain || t.class == core.ClassTaskSet {
				w.stealable.Add(-1)
			}
			rt.queuedTotal.Add(-1)
			drained = append(drained, t)
			t = next
		}
	} else {
		for t := w.plain.pop(); t != nil; t = w.plain.pop() {
			drained = append(drained, t)
		}
		for q := w.nonEmpty.head; q != nil; q = w.nonEmpty.head {
			for t := q.pop(); t != nil; t = q.pop() {
				drained = append(drained, t)
			}
			w.nonEmpty.removeQ(q)
		}
		w.cur = nil
		w.queued.Store(0)
		w.stealable.Store(0)
		rt.queuedTotal.Add(int64(-len(drained)))
		w.mu.Unlock()
	}

	if rt.aliveWorkers() > 0 {
		for _, t := range drained {
			name := t.name
			var tgt int
			if t.class == core.ClassTaskSet {
				// placeSet revalidates the set's home under its shard lock
				// and re-homes it off the dead worker; every member chases
				// the same home, so the set moves whole and never splits.
				tgt = rt.placeSet(t, t.affObj, ctr)
			} else {
				tgt = rt.insertFrom(t, ctr, nil)
			}
			if kill {
				ctr.Redistributed++
				rt.trace(w, trace.KindRedistribute, w.id, name, int64(tgt))
			}
			rt.wakeAfterEnqueue(tgt, w.id)
		}
	}
	// else: no survivor to hand the work to (plans and the Drain API
	// validate against this; the watchdog reports the stall anyway).

	rt.epoch.Add(1)
	now := rt.nowNS()
	ev := PoolEvent{Kind: "kill", Proc: w.id, TimeNS: now, Moved: len(drained)}
	if !kill {
		ev.Kind = "drain"
		if reqNS > 0 && now > reqNS {
			ev.DurationNS = now - reqNS
		}
		rt.trace(w, trace.KindPool, w.id, "drain", int64(len(drained)))
	}
	rt.recordPoolEvent(ev)
}

// launchAborted consults the transient-fault injections for a launch of
// t on w — a flaky window on w, or a planted FailTask strike. When the
// launch is struck it either schedules a retry (affinity-aware target,
// exponential backoff, delivered by the timekeeper) or stops the run
// with *TaskAbort. Returns true when the task must not run now.
//
// Transient aborts strike only here, before the task body has executed
// a single operation, so a retried launch re-runs a side-effect-free
// body (the same abort-point rule the simulator enforces). Injected
// panics strike mid-body instead and are never retried.
func (rt *Runtime) launchAborted(w *worker, t *task) bool {
	now := rt.nowNS()
	struck := false
	if fv := w.fev; fv != nil {
		for i, win := range fv.flaky {
			if now >= win.from && now < win.to {
				struck = true
				if !fv.flakyHit[i] {
					fv.flakyHit[i] = true
					rt.cfg.Mon.Per[w.id].FaultEvents++
					rt.trace(w, trace.KindFault, w.id, "flaky", win.to-win.from)
				}
				break
			}
		}
	}
	if !struck && t.tracked && rt.inj.consumeAbort(t.name, t.spawnIdx) {
		struck = true
	}
	if !struck {
		return false
	}
	t.aborts++
	ctr := &rt.cfg.Mon.Per[w.id]
	if !rt.retry.enabled() || t.aborts >= rt.retry.MaxAttempts {
		ctr.GaveUp++
		rt.trace(w, trace.KindRetry, w.id, t.name, -1)
		rt.stop(&TaskAbort{Task: t.name, Proc: w.id, Time: now, Attempts: t.aborts})
		return true
	}
	ctr.Retries++
	tgt := rt.retryTarget(t, w.id, t.aborts)
	rt.trace(w, trace.KindRetry, w.id, t.name, int64(tgt))
	rt.retries.add(retryItem{due: now + rt.retry.delay(t.aborts), t: t, target: tgt})
	return true
}

// retryTarget picks the worker for the next launch attempt of a task
// whose launch just aborted on failedOn — the same affinity-aware
// policy as the simulator's RetryTarget: set members follow their set's
// live home so sets never split, object-bound tasks rotate within their
// object's cluster, everything else prefers a different cluster from
// the flaky worker. The choice is revalidated against worker deaths at
// delivery time.
func (rt *Runtime) retryTarget(t *task, failedOn, attempt int) int {
	n := len(rt.workers)
	switch t.class {
	case core.ClassTaskSet:
		if h := rt.setHomeOf(t.affObj); h >= 0 && !rt.isDead(h) {
			return h
		}
		return rt.aliveWorker(failedOn)
	case core.ClassObjectBound:
		home := t.server
		for d := 0; d < n; d++ {
			v := (home + attempt + d) % n
			if v != failedOn && !rt.isDead(v) && rt.sameCluster(home, v) {
				return v
			}
		}
	}
	for d := 0; d < n; d++ {
		v := (failedOn + attempt + d) % n
		if v != failedOn && !rt.isDead(v) && !rt.sameCluster(failedOn, v) {
			return v
		}
	}
	for d := 0; d < n; d++ {
		v := (failedOn + attempt + d) % n
		if v != failedOn && !rt.isDead(v) {
			return v
		}
	}
	return rt.aliveWorker(failedOn)
}

// deliverRetry re-enqueues a transiently failed task once its backoff
// elapsed, revalidating the target against deaths that happened during
// the backoff. Runs on the timekeeper goroutine.
func (rt *Runtime) deliverRetry(it retryItem) {
	t, tgt := it.t, it.target
	if t.class == core.ClassTaskSet {
		tgt = rt.placeSet(t, t.affObj, &rt.tkScratch)
	} else {
		if rt.isDead(tgt) {
			tgt = rt.rerouteTarget(t)
		}
		t.server = tgt
		tgt = rt.insertFrom(t, &rt.tkScratch, nil)
	}
	rt.wakeWorker(tgt)
}

// queueDepths returns the tasks queued per worker (dead workers report
// -1) — the progress snapshot embedded in deadline and watchdog errors.
func (rt *Runtime) queueDepths() []int {
	out := make([]int, len(rt.workers))
	for i, w := range rt.workers {
		if rt.isDead(i) {
			out[i] = -1
		} else {
			out[i] = int(w.queued.Load())
		}
	}
	return out
}

// snapshot renders the per-worker queue state for watchdog errors, in
// the same shape as the simulator scheduler's Snapshot.
func (rt *Runtime) snapshot() string {
	var b strings.Builder
	b.WriteString("scheduler queues:")
	total := 0
	for i, w := range rt.workers {
		state := ""
		if rt.isDead(i) {
			state = " dead"
		}
		q := int(w.queued.Load())
		fmt.Fprintf(&b, " P%d:%d%s", i, q, state)
		total += q
	}
	fmt.Fprintf(&b, " (total %d queued)", total)
	return b.String()
}

// timekeeperTick is how often the timekeeper samples the clock. Fault
// event times in chaos plans range from tens of microseconds to a few
// milliseconds; a 200µs tick delivers retries and fires deadlines with
// enough resolution without burning a core.
const timekeeperTick = 200 * time.Microsecond

// timekeeper is the run's monitor goroutine, started by Run when
// faults, retries, a deadline, or the watchdog are armed. It delivers
// due retries, wakes workers that have due timed fault events (so an
// idle worker still retires on schedule), and stops over-budget or hung
// runs with the typed deadline/no-progress errors. It exits when the
// run drains or stops.
func (rt *Runtime) timekeeper() {
	defer rt.tkDone.Done()
	tick := time.NewTicker(timekeeperTick)
	defer tick.Stop()
	if rt.adapt != nil {
		// First adaptive epoch a full interval from now, not at the
		// first tick.
		rt.adapt.nextNS = rt.nowNS() + rt.adapt.pol.Epoch
	}
	var lastCompleted int64
	lastProgress := time.Now()
	for {
		select {
		case <-rt.done:
			return
		case <-rt.stopc:
			return
		case <-tick.C:
		}
		now := rt.nowNS()
		for {
			it, ok := rt.retries.popDue(now)
			if !ok {
				break
			}
			rt.deliverRetry(it)
		}
		// Apply due plan-scheduled pool growth (best-effort: capacity
		// may be exhausted or the run already joining).
		for rt.addIdx < len(rt.addTimes) && rt.addTimes[rt.addIdx] <= now {
			rt.addIdx++
			rt.AddWorkers(1)
		}
		if rt.shed != nil {
			rt.shedControl()
		}
		if rt.adapt != nil {
			rt.adaptTick(now)
		}
		// Wake workers whose next timed fault event is due: a parked
		// worker applies its events at the top of its loop.
		for _, w := range rt.workers {
			fv := w.fev
			if fv == nil || rt.isDead(w.id) {
				continue
			}
			if i := int(fv.idx.Load()); i < len(fv.pending) && fv.pending[i].At <= now {
				rt.wakeWorker(w.id)
			}
		}
		if rt.deadlineNS > 0 && now >= rt.deadlineNS && rt.live.Load() > 0 {
			rt.stop(&DeadlineError{
				DeadlineNS:  rt.deadlineNS,
				Time:        now,
				Live:        int(rt.live.Load()),
				QueueDepths: rt.queueDepths(),
			})
			return
		}
		if rt.noProgressNS > 0 {
			if c := rt.completed.Load(); c != lastCompleted {
				lastCompleted = c
				lastProgress = time.Now()
			} else if time.Since(lastProgress).Nanoseconds() >= rt.noProgressNS && rt.live.Load() > 0 {
				rt.stop(&NoProgressError{
					WindowNS:    rt.noProgressNS,
					Time:        now,
					Live:        int(rt.live.Load()),
					QueueDepths: rt.queueDepths(),
					Snapshot:    rt.snapshot(),
				})
				return
			}
		}
	}
}
