package native

import (
	"sync"

	"github.com/coolrts/cool/internal/perfmon"
)

// numSetShards is the number of locks the task-affinity set table is
// split across. Like the per-server queue array, a suitably large shard
// count makes collisions (two hot sets behind one lock) unlikely; 64
// matches the default queue-array size.
const numSetShards = 64

// setShard is one slice of the task-affinity set table: the sets whose
// two-modulo hash lands on this shard, each mapped to the worker
// currently hosting it. The shard mutex is the only lock that makes a
// whole-set move atomic with respect to placements of further members —
// every insert of a set member validates the set's home under this lock,
// and every whole-set steal re-homes the set under it while holding the
// victim's queue lock (see DESIGN.md §10 for the full ordering
// protocol: worker locks in ascending id order first, then one shard).
type setShard struct {
	mu   sync.Mutex
	home map[int64]int

	// Pad to a cache line so neighbouring shard locks don't false-share.
	_ [64 - 16]byte
}

// lock acquires the shard, counting a missed TryLock fast path against
// the acting worker's row (and the machine-wide adaptive mirror).
func (sh *setShard) lock(rt *Runtime, ctr *perfmon.Counters) {
	if sh.mu.TryLock() {
		return
	}
	ctr.LockContention++
	rt.mirror.lockContention.n.Add(1)
	sh.mu.Lock()
}

// shardOf maps a task-affinity object to its shard, mixing line and
// page numbers with the same two-modulo hash as slotOf.
func (rt *Runtime) shardOf(addr int64) *setShard {
	h := addr>>6 + addr/rt.cfg.PageSize
	return &rt.shards[h%numSetShards]
}

// setHomeOf returns the recorded home of obj's set, or -1 when the set
// has never been placed. Diagnostics and tests.
func (rt *Runtime) setHomeOf(obj int64) int {
	sh := rt.shardOf(obj)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sv, ok := sh.home[obj]; ok {
		return sv
	}
	return -1
}
