package native

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDequeOwnerThiefOrder pins the two consumption orders of the
// Chase-Lev deque on a single thread: the owner's popBottom is LIFO
// over its own pushes, while takeTop — the path both thieves and (for
// simulator parity) the owner's take() use — is FIFO.
func TestDequeOwnerThiefOrder(t *testing.T) {
	mk := func(n int) ([]*task, *chaseLev) {
		d := &chaseLev{}
		d.init()
		ts := make([]*task, n)
		for i := range ts {
			ts[i] = &task{idx: int32(i)}
			d.pushBottom(ts[i])
		}
		return ts, d
	}

	ts, d := mk(8)
	for i := 7; i >= 0; i-- { // LIFO
		if got := d.popBottom(); got != ts[i] {
			t.Fatalf("popBottom: got %v want task %d", got, i)
		}
	}
	if got := d.popBottom(); got != nil {
		t.Fatalf("popBottom on empty deque: got %v", got)
	}

	ts, d = mk(8)
	for i := 0; i < 8; i++ { // FIFO
		if got := d.takeTop(); got != ts[i] {
			t.Fatalf("takeTop: got %v want task %d", got, i)
		}
	}
	if got := d.takeTop(); got != nil {
		t.Fatalf("takeTop on empty deque: got %v", got)
	}

	// pushBottomN publishes a batch in slice order: takeTop sees the
	// batch FIFO, interleaved correctly with earlier single pushes.
	ts, d = mk(2)
	batch := []*task{{idx: 100}, {idx: 101}, {idx: 102}}
	d.pushBottomN(batch)
	want := []*task{ts[0], ts[1], batch[0], batch[1], batch[2]}
	for i, w := range want {
		if got := d.takeTop(); got != w {
			t.Fatalf("takeTop after pushBottomN: pos %d got %v want idx %d", i, got, w.idx)
		}
	}
}

// TestDequeGrow fills past the initial ring capacity and checks that
// every task survives the buffer swap, still in FIFO order from the top.
func TestDequeGrow(t *testing.T) {
	d := &chaseLev{}
	d.init()
	const n = dequeInitialCap*4 + 7
	ts := make([]*task, n)
	for i := range ts {
		ts[i] = &task{idx: int32(i)}
		d.pushBottom(ts[i])
	}
	if got := d.size(); got != n {
		t.Fatalf("size after grow = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if got := d.takeTop(); got != ts[i] {
			t.Fatalf("takeTop after grow: got %v want task %d", got, i)
		}
	}
}

// TestDequeConcurrentSteals is the randomized exactly-once torture
// test for the lock-free protocol, meant for -race -count=3: one owner
// goroutine does randomized pushBottom/pushBottomN/popBottom (forcing
// grows mid-steal) while thief goroutines hammer takeTop. Every pushed
// task must be consumed exactly once, and the owner/thief counts must
// add up with nothing lost to a CAS race.
func TestDequeConcurrentSteals(t *testing.T) {
	const (
		thieves = 4
		total   = 20000
	)
	d := &chaseLev{}
	d.init()
	seen := make([]int32, total)
	var consumed atomic.Int64
	var done atomic.Bool
	eat := func(tk *task) {
		if tk == nil {
			return
		}
		if n := atomic.AddInt32(&seen[tk.idx], 1); n != 1 {
			t.Errorf("task %d consumed %d times", tk.idx, n)
		}
		consumed.Add(1)
	}

	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() || d.size() > 0 {
				tk := d.takeTop()
				if tk == nil {
					runtime.Gosched() // keep single-core runs livelock-free
					continue
				}
				eat(tk)
			}
		}()
	}

	// Owner: randomized single pushes, batch pushes, and pops.
	rng := rand.New(rand.NewSource(42))
	next := 0
	for next < total {
		switch rng.Intn(4) {
		case 0: // batch push, one publishing store for the burst
			n := 1 + rng.Intn(8)
			if next+n > total {
				n = total - next
			}
			batch := make([]*task, n)
			for i := range batch {
				batch[i] = &task{idx: int32(next)}
				next++
			}
			d.pushBottomN(batch)
		case 1: // owner pop competes with the thieves' CAS
			eat(d.popBottom())
		default:
			d.pushBottom(&task{idx: int32(next)})
			next++
		}
	}
	done.Store(true)
	wg.Wait()
	if got := consumed.Load(); got != total {
		t.Fatalf("consumed %d tasks, want %d", got, total)
	}
	if got := d.size(); got != 0 {
		t.Fatalf("deque size after drain = %d", got)
	}
}

// TestInboxOrder pins the Treiber-stack inbox contract: swapAll
// returns a chain linked newest-first (the drain reverses it back to
// arrival order), pushChain preserves the relative order of a chain a
// thief pushes back, and empty() tracks the head.
func TestInboxOrder(t *testing.T) {
	var in inbox
	if !in.empty() {
		t.Fatal("fresh inbox not empty")
	}
	ts := []*task{{idx: 0}, {idx: 1}, {idx: 2}}
	for _, tk := range ts {
		in.push(tk)
	}
	if in.empty() {
		t.Fatal("inbox empty after pushes")
	}
	head := in.swapAll()
	if !in.empty() {
		t.Fatal("inbox not empty after swapAll")
	}
	// Chain is newest-first: 2, 1, 0.
	for want := 2; want >= 0; want-- {
		if head == nil || head.idx != int32(want) {
			t.Fatalf("swapAll chain: want idx %d, got %v", want, head)
		}
		head = head.next
	}

	// pushChain keeps the pushed chain contiguous and ahead of older
	// content, exactly as stealInbox's pushback relies on.
	older := &task{idx: 10}
	in.push(older)
	a, b := &task{idx: 20}, &task{idx: 21}
	a.next = b
	b.next = nil
	in.pushChain(a, b)
	got := in.swapAll()
	wantIdx := []int32{20, 21, 10}
	for _, w := range wantIdx {
		if got == nil || got.idx != w {
			t.Fatalf("pushChain order: want idx %d, got %v", w, got)
		}
		got = got.next
	}
	if got != nil {
		t.Fatalf("pushChain: trailing tasks after chain")
	}
}
