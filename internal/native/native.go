// Package native executes COOL programs on real goroutines: one worker
// goroutine per simulated processor, each owning the paper's queue
// structure (a plain/object queue plus a hashed array of task-affinity
// queues with a non-empty list), with whole-set stealing, reluctant
// object-affinity stealing, and optional cluster-restricted stealing.
//
// The package mirrors the simulator scheduler in internal/core queue for
// queue and steal discipline, but time is wall-clock nanoseconds and
// synchronization is real (sync.Mutex monitors, channel parking). A
// single native worker applies the identical dispatch priority as the
// simulator's server — current task-affinity queue back to back, then
// the non-empty list, then the plain queue — so a P=1 native run
// executes tasks in exactly the simulated order, which the differential
// harness in internal/xcheck exploits.
package native

import (
	"fmt"
	"math/bits"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/coolrts/cool/internal/adapt"
	"github.com/coolrts/cool/internal/core"
	"github.com/coolrts/cool/internal/fault"
	"github.com/coolrts/cool/internal/perfmon"
	"github.com/coolrts/cool/internal/trace"
)

// wakeFanout is the number of parked workers a targeted wakeup notifies
// before the machine-wide backlog forces a broadcast (same constant as
// the simulator scheduler).
const wakeFanout = 4

// Config describes the native machine: worker count, cluster topology
// (which steers victim order, not memory), and the scheduling policy.
type Config struct {
	Procs       int
	ClusterSize int
	PageSize    int64 // for the two-modulo task-affinity slot hash
	Pol         core.Policy

	// Home maps an object address to its home worker (the address-space
	// lookup, supplied by the embedding runtime with any locking it
	// needs). Required.
	Home func(addr int64) int

	// Mon receives per-worker counters. Every worker writes only its own
	// row, so the shared monitor needs no locking. Required.
	Mon *perfmon.Monitor

	// Invoke runs a payload-carrying task (one spawned with SpawnPayload).
	// The embedding runtime supplies a single adapter here once instead of
	// wrapping every spawned function in a fresh closure — the payload
	// travels through the task record as an `any`, which for func values
	// is an allocation-free conversion. Required only if SpawnPayload is
	// used.
	Invoke func(*Ctx, any)

	// InvokeN runs one member of a SpawnN batch: the shared payload plus
	// the member's index. Required only if SpawnN is used.
	InvokeN func(*Ctx, any, int)

	// MutexQueue selects the pre-deque scheduler: every per-worker queue
	// (including the plain queue) lives under the worker's mutex, and
	// spawns insert and wake one task at a time. It exists so the
	// lock-free deque's win stays measurable in-tree (the coolbench
	// -bench-native-queue=mutex A/B arm); the default is the Chase-Lev
	// deque plus lock-free inbox.
	MutexQueue bool

	// TraceCapacity, when positive, bounds the merged scheduler event
	// trace (timestamps are wall-clock nanoseconds since Run).
	TraceCapacity int

	// Faults, when non-nil, is the fault plan to inject, with event
	// times and durations read as wall-clock nanoseconds since Run
	// started. The plan must already be validated (Plan.Validate) by
	// the embedding runtime. MemDegrade events are ignored — there is
	// no memory system to degrade natively.
	Faults *fault.Plan

	// Retry enables transient-failure recovery (see RetryConfig). The
	// zero value stops the run on the first aborted launch.
	Retry RetryConfig

	// DeadlineNS, when positive, stops runs still live past this many
	// wall-clock nanoseconds with a *DeadlineError.
	DeadlineNS int64

	// NoProgressNS, when positive, arms the watchdog: a run in which no
	// task completes for this long while work is outstanding stops with
	// a *NoProgressError instead of hanging.
	NoProgressNS int64

	// MaxProcs, when above Procs, makes the pool elastic: worker slots
	// up to this capacity are built at New as dead spares that
	// AddWorkers can bring up mid-run (and Drain can retire again).
	// Zero means a fixed pool of Procs workers.
	MaxProcs int

	// Shed, when non-nil, arms the SLO layer: per-spawn deadlines are
	// enforced at dispatch and lowest-priority work is shed first under
	// backlog pressure (see ShedConfig).
	Shed *ShedConfig

	// Autoscale, when non-nil, runs the threshold autoscaler, growing
	// and draining the pool per control epoch (see AutoscaleConfig).
	// Requires MaxProcs.
	Autoscale *AutoscaleConfig

	// Adapt, when non-nil, arms the adaptive policy controller: each
	// Epoch nanoseconds the timekeeper feeds the counter mirror to the
	// pure controller and applies its decisions to the live policy
	// (cluster-only stealing, wake fanout, steal backoff, shed bias).
	// A non-positive Epoch defaults to one millisecond.
	Adapt *adapt.Policy
}

// TaskFailure reports a panicked task. The embedding runtime converts it
// to its public typed error.
type TaskFailure struct {
	Task     string
	Proc     int
	Time     int64 // nanoseconds since Run started
	Value    any
	Stack    string
	Injected bool // panic planted by a fault plan, not application code
}

func (f *TaskFailure) Error() string {
	return fmt.Sprintf("native: task %q panicked on P%d at %dns: %v", f.Task, f.Proc, f.Time, f.Value)
}

// task is one spawned task record. Records are recycled through the
// executing worker's freelist: a completed task is zeroed and reused by
// a later spawn on that worker.
type task struct {
	name    string
	fn      func(*Ctx) // nil for payload tasks, run through Config.Invoke
	payload any
	idx     int32 // SpawnN member index, -1 for single spawns
	class   core.Class
	server  int
	slot    int   // task-affinity queue index, -1 for the plain queue
	affObj  int64 // address identifying the task-affinity set (0 if none)
	scope   *scope
	mon     *Monitor // mutex-function monitor, locked around fn

	// Fault-injection state (zero when no plan is armed): the per-name
	// spawn index assigned by the injector, whether the injector tracks
	// this name, a planted panic, and the count of aborted launch
	// attempts so far.
	spawnIdx int
	tracked  bool
	injPanic bool
	aborts   int

	// SLO fields (WithPriority/WithDeadline spawn options): the
	// priority class in [0,7] and the absolute wall-clock deadline in
	// nanoseconds since Run (0 = none). Read at dispatch when a
	// ShedConfig is armed.
	prio       int8
	deadlineNS int64

	// ctx is the execution context handed to the task body, embedded in
	// the pooled record so running a task allocates nothing. It is valid
	// only while the task executes on its worker.
	ctx Ctx

	// Intrusive links: next/prev/q while in a locked taskQueue, next
	// alone while riding an inbox chain or a worker freelist (a record
	// is in at most one of those states at a time).
	next, prev *task
	q          *taskQueue
}

// worker is one executor goroutine's scheduling state.
//
// In the default deque mode the structures split by who may touch them:
// deq holds the worker's plain tasks (owner pushes/pops lock-free,
// thieves CAS), inbox receives every cross-worker insert (and the
// owner's own pinned/object-bound self-inserts) lock-free, and the
// mutex guards only the structured queues — the task-affinity slots,
// the pinned queue, and whole-set moves through the sharded set table.
// In mutex mode (Config.MutexQueue, the A/B baseline) plain tasks live
// in the locked plain queue exactly as before the deque rewrite and
// deq/inbox/pinned stay empty. busyNS/idleNS, events, the freelist, and
// the scratch slices are owned by the worker's goroutine.
type worker struct {
	id       int
	mu       sync.Mutex
	plain    taskQueue // mutex mode only
	slots    []taskQueue
	nonEmpty nonEmptyList
	cur      *taskQueue // slot being drained back to back
	pinned   taskQueue  // deque mode: ClassProcessor tasks (mu)
	queued   atomic.Int64

	deq   chaseLev // deque mode: plain tasks
	inbox inbox    // deque mode: cross-worker (and structured self) inserts

	// lockedWork counts the tasks in the mutex-guarded structures (slots
	// plus pinned); take probes the lock only when it is nonzero.
	// setQueued counts the queued task-affinity set members, so a thief
	// checks the sets-first steal phase without the victim's lock. Both
	// are maintained only in deque mode (mutex mode never reads them)
	// and written only under mu.
	lockedWork atomic.Int64
	setQueued  atomic.Int64

	// stealable counts the queued tasks any thief may take outright
	// (plain tasks and task-affinity set members — not processor-pinned
	// or object-bound tasks, which are stealable only from a backlogged
	// victim). A thief reads it lock-free to skip victims where a probe
	// is guaranteed to fail: queued == 1 and stealable == 0 means the one
	// task is pinned or object-bound, which no steal rule takes from a
	// non-backlogged victim.
	stealable atomic.Int64

	// setScratch batches the members of a set being moved by stealSet,
	// reused across steals to keep the move allocation-free.
	setScratch []*task

	// free is the worker's task-record freelist (linked through t.next),
	// touched only by the worker's own goroutine: records are recycled by
	// runTask and handed out by spawns issued from tasks running here.
	free  *task
	freeN int

	// Reused scratch slices owned by the worker's goroutine: inbox drains
	// reverse the swapped chain here, SpawnN builds its batch here and
	// chains structured cross-worker records per target (spawnHeads and
	// spawnTails are lazily sized to Procs on first mixed batch).
	inboxScratch []*task
	spawnScratch []*task
	spawnHeads   []*task
	spawnTails   []*task
	spawnOrder   []int

	wake  chan struct{} // cap 1; parking/wakeup token
	timer *time.Timer   // reused across timed parks; nil until first use

	// Elastic-pool state. drainReq holds the wall-clock time a planned
	// drain was requested (0 = none); the worker's own goroutine
	// observes it at top-level dispatch points and retires. exited
	// reports the goroutine has fully stopped (flipped under poolMu),
	// making a dead slot safe to resurrect. ringEpoch and the pr*
	// slices are the owner-private pruned victim rings, rebuilt when
	// the membership epoch moves (elastic runs only).
	drainReq  atomic.Int64
	exited    atomic.Bool
	ringEpoch int64
	prCluster []int
	prRemote  []int
	prFlat    []int

	// fev is this worker's share of the fault plan (nil without one),
	// consumed by the worker's own goroutine at dispatch points.
	fev *workerFaults

	busyNS, idleNS int64
	events         []trace.Event
}

// Runtime is one native program execution.
type Runtime struct {
	cfg     Config
	pol     core.Policy
	workers []*worker // sized to capacity (np); slots past Procs start as dead spares
	np      int       // pool capacity: MaxProcs when elastic, Procs otherwise

	// Static victim rings in (thief+d)%np probe order over the full
	// capacity, built once. Elastic runs steal through per-worker
	// pruned copies that are rebuilt when the membership epoch moves.
	ringCluster [][]int
	ringRemote  [][]int
	ringFlat    [][]int

	// shards is the task-affinity set table, split across numSetShards
	// locks so set placement and whole-set steals of unrelated sets
	// never serialize on each other. Together with the per-worker queue
	// mutexes this replaces the old global placement lock: an owner-local
	// push or pop takes exactly one lock (its own), a set placement takes
	// the home worker's lock plus one shard, and a steal takes the two
	// worker locks involved (in ascending id order) plus at most one
	// shard. "Sets never split" stays an invariant because every insert
	// of a set member revalidates the set's home under its shard lock,
	// and every whole-set move re-homes the set under that same lock
	// while holding the victim's queue lock.
	shards []setShard

	rr          atomic.Int64 // round-robin cursor (Base mode, set spread)
	queuedTotal atomic.Int64
	parked      atomic.Uint64 // bitmask of parked workers
	live        atomic.Int64  // tasks spawned but not yet completed
	done        chan struct{} // closed when live drains to zero
	doneOnce    sync.Once

	clusterOnly atomic.Bool // dynamic cluster-stealing flag
	setSplits   atomic.Int64

	failMu sync.Mutex
	fail   error

	// Robustness state (see fault.go). stopc is closed by stop() to
	// unwind every worker when a deadline, watchdog, or exhausted retry
	// budget aborts the run; dead is the bitmask of retired workers,
	// published before a retiring worker drains its queues. armed is
	// true when any robustness feature (faults, retries, deadline,
	// watchdog) is active — the fault-free fast paths stay branchless
	// beyond one flag or atomic load.
	stopc     chan struct{}
	stopping  atomic.Bool
	stopOnce  sync.Once
	dead      atomic.Uint64
	armed     bool
	inj       *injector
	retry     RetryConfig
	retries   retryQueue
	completed atomic.Int64 // tasks run to completion (watchdog progress)
	tkScratch perfmon.Counters
	tkDone    sync.WaitGroup

	deadlineNS   int64
	noProgressNS int64

	// Elastic pool state (see elastic.go). poolMu guards the join
	// protocol counters, the joining flag, and the PoolEvents timeline;
	// epoch counts membership changes for the pruned victim rings;
	// addTimes holds the due times of plan-injected AddWorker events
	// (consumed by the timekeeper, addIdx is its private cursor).
	elastic     bool
	poolMu      sync.Mutex
	poolStarted int
	poolExited  int
	joining     bool
	running     bool
	allExited   chan struct{}
	idleExit    chan struct{}
	idleOnce    sync.Once
	poolEvents  []PoolEvent
	epoch       atomic.Int64
	addTimes    []int64
	addIdx      int

	// SLO state (see shed.go). prioLive counts not-yet-completed tasks
	// per priority class so the floor controller can find the lowest
	// live class; maintained only when shed is armed.
	shed      *ShedConfig
	shedFloor atomic.Int32
	prioLive  [maxPrio + 1]atomic.Int64

	// Autoscaler (see elastic.go).
	auto     *AutoscaleConfig
	autoDone sync.WaitGroup

	// Adaptive controller (see adapt.go): mirror is the always-on
	// machine-wide atomic copy of the slow-path counters; adapt is the
	// per-run controller harness, nil unless Config.Adapt was set.
	mirror adaptCounters
	adapt  *adaptRT

	// deque selects the lock-free scheduler (Chase-Lev deques + inboxes,
	// the default); false is the mutex-queue A/B baseline.
	deque bool

	start   time.Time
	elapsed atomic.Int64
	ran     bool
}

// New builds a native runtime. The configuration must carry a Home
// lookup and a perfmon monitor with one row per worker slot (the full
// MaxProcs capacity when the pool is elastic).
func New(cfg Config) (*Runtime, error) {
	if cfg.Procs <= 0 || cfg.Procs > 64 {
		return nil, fmt.Errorf("native: worker count %d out of range [1,64]", cfg.Procs)
	}
	np := cfg.Procs
	if cfg.MaxProcs > 0 {
		if cfg.MaxProcs < cfg.Procs || cfg.MaxProcs > 64 {
			return nil, fmt.Errorf("native: MaxProcs %d out of range [%d,64]", cfg.MaxProcs, cfg.Procs)
		}
		np = cfg.MaxProcs
	}
	if cfg.ClusterSize <= 0 {
		return nil, fmt.Errorf("native: ClusterSize must be positive")
	}
	if cfg.PageSize <= 0 {
		return nil, fmt.Errorf("native: PageSize must be positive")
	}
	if cfg.Home == nil || cfg.Mon == nil || len(cfg.Mon.Per) < np {
		return nil, fmt.Errorf("native: Home lookup and a %d-row perfmon monitor are required", np)
	}
	pol := cfg.Pol
	if pol.QueueArraySize <= 0 {
		pol.QueueArraySize = 64
	}
	rt := &Runtime{
		cfg:       cfg,
		pol:       pol,
		np:        np,
		shards:    make([]setShard, numSetShards),
		done:      make(chan struct{}),
		stopc:     make(chan struct{}),
		allExited: make(chan struct{}),
		idleExit:  make(chan struct{}),
	}
	rt.elastic = cfg.MaxProcs > 0
	rt.retry = cfg.Retry
	rt.deadlineNS = cfg.DeadlineNS
	rt.noProgressNS = cfg.NoProgressNS
	if cfg.Shed != nil {
		sc := *cfg.Shed
		if sc.QueueHighWater <= 0 {
			sc.QueueHighWater = 64
		}
		rt.shed = &sc
	}
	if cfg.Autoscale != nil {
		if !rt.elastic {
			return nil, fmt.Errorf("native: Autoscale requires spare capacity (MaxProcs)")
		}
		a := *cfg.Autoscale
		if a.IntervalNS <= 0 {
			a.IntervalNS = int64(time.Millisecond)
		}
		if a.HighWater <= 0 {
			a.HighWater = 8
		}
		if a.LowWater <= 0 {
			a.LowWater = 1
		}
		if a.Min <= 0 {
			a.Min = cfg.Procs
		}
		if a.Max <= 0 || a.Max > np {
			a.Max = np
		}
		if a.Step <= 0 {
			a.Step = 1
		}
		if a.Min > a.Max {
			return nil, fmt.Errorf("native: Autoscale Min %d above Max %d", a.Min, a.Max)
		}
		rt.auto = &a
	}
	// Policy default first: a warm-started adaptive controller
	// (initAdapt) overrides it from its Start vector.
	rt.clusterOnly.Store(pol.ClusterStealingOnly)
	if cfg.Adapt != nil {
		rt.initAdapt(*cfg.Adapt)
	}
	// The adaptive controller rides the timekeeper, so arming it arms
	// the monitor goroutine too.
	rt.armed = cfg.Faults != nil || rt.retry.enabled() || rt.deadlineNS > 0 || rt.noProgressNS > 0 || rt.shed != nil || rt.adapt != nil
	for i := range rt.shards {
		rt.shards[i].home = make(map[int64]int)
	}
	rt.deque = !cfg.MutexQueue
	rt.workers = make([]*worker, np)
	var spareMask uint64
	for i := range rt.workers {
		w := &worker{id: i, slots: make([]taskQueue, pol.QueueArraySize), wake: make(chan struct{}, 1)}
		for j := range w.slots {
			w.slots[j].slotIdx = j
		}
		w.deq.init()
		w.exited.Store(true) // no goroutine yet; AddWorkers may claim the slot
		w.ringEpoch = -1
		rt.workers[i] = w
		if i >= cfg.Procs {
			spareMask |= 1 << uint(i)
		}
	}
	// Spare slots are born dead: every insert path already reroutes
	// around dead workers, so the spares need no new special cases.
	rt.dead.Store(spareMask)
	rt.buildVictimRings()
	if cfg.Faults != nil {
		rt.armFaults(cfg.Faults)
	}
	return rt, nil
}

func (rt *Runtime) sameCluster(p, q int) bool {
	return p/rt.cfg.ClusterSize == q/rt.cfg.ClusterSize
}

func (rt *Runtime) buildVictimRings() {
	n := len(rt.workers)
	rt.ringCluster = make([][]int, n)
	rt.ringRemote = make([][]int, n)
	rt.ringFlat = make([][]int, n)
	for t := 0; t < n; t++ {
		for d := 1; d < n; d++ {
			v := (t + d) % n
			rt.ringFlat[t] = append(rt.ringFlat[t], v)
			if rt.sameCluster(t, v) {
				rt.ringCluster[t] = append(rt.ringCluster[t], v)
			} else {
				rt.ringRemote[t] = append(rt.ringRemote[t], v)
			}
		}
	}
}

// slotOf maps a task-affinity object to its queue index, mixing line and
// page numbers exactly like the simulator scheduler.
func (rt *Runtime) slotOf(addr int64) int {
	h := addr>>6 + addr/rt.cfg.PageSize
	return int(h % int64(rt.pol.QueueArraySize))
}

// nowNS returns nanoseconds since Run started.
func (rt *Runtime) nowNS() int64 { return time.Since(rt.start).Nanoseconds() }

// ElapsedNanos returns the wall-clock duration of Run.
func (rt *Runtime) ElapsedNanos() int64 { return rt.elapsed.Load() }

// BusyIdleNanos returns the summed per-worker busy (running tasks) and
// idle (parked) nanoseconds. Call after Run.
func (rt *Runtime) BusyIdleNanos() (busy, idle int64) {
	for _, w := range rt.workers {
		busy += w.busyNS
		idle += w.idleNS
	}
	return busy, idle
}

// SetSplits returns how often a task-affinity set was observed split
// across workers (an invariant violation; must be zero under the default
// whole-set stealing policy).
func (rt *Runtime) SetSplits() int64 { return rt.setSplits.Load() }

// QueuedTasks returns the tasks currently enqueued machine-wide.
func (rt *Runtime) QueuedTasks() int { return int(rt.queuedTotal.Load()) }

// SetClusterStealingOnly flips the cluster-stealing restriction at run
// time (the paper's dynamically manipulated runtime flag, §6.3).
func (rt *Runtime) SetClusterStealingOnly(on bool) { rt.clusterOnly.Store(on) }

// Run executes main as the root task on worker 0 and returns after every
// task has completed. A panicking task aborts with *TaskFailure (the
// remaining tasks still drain).
func (rt *Runtime) Run(main func(*Ctx)) error {
	if rt.ran {
		return fmt.Errorf("native: Run called twice")
	}
	rt.ran = true
	rt.start = time.Now()
	root := rt.newTask(nil)
	root.name, root.fn = "main", main
	root.class, root.server, root.slot = core.ClassProcessor, 0, -1
	rt.live.Store(1)
	if rt.shed != nil {
		rt.prioLive[0].Add(1)
	}
	rt.insertAndWake(root, 0)
	if rt.armed {
		rt.tkDone.Add(1)
		go rt.timekeeper()
	}
	// Pool-join protocol: a WaitGroup cannot absorb AddWorkers racing
	// with the join (Add after Wait began), so worker goroutines are
	// counted under poolMu and Run waits for started == exited after
	// flipping joining (which refuses further growth).
	rt.poolMu.Lock()
	rt.running = true
	for i := 0; i < rt.cfg.Procs; i++ {
		rt.startWorkerLocked(rt.workers[i])
	}
	rt.poolMu.Unlock()
	if rt.auto != nil {
		rt.autoDone.Add(1)
		go rt.autoscaler()
	}
	select {
	case <-rt.done:
	case <-rt.stopc:
	case <-rt.idleExit:
	}
	rt.poolMu.Lock()
	rt.joining = true
	rt.running = false
	if rt.poolExited == rt.poolStarted {
		close(rt.allExited)
	}
	rt.poolMu.Unlock()
	<-rt.allExited
	rt.autoDone.Wait()
	rt.tkDone.Wait()
	rt.elapsed.Store(time.Since(rt.start).Nanoseconds())
	rt.failMu.Lock()
	defer rt.failMu.Unlock()
	if rt.fail != nil {
		return rt.fail
	}
	return nil
}

// TraceEvents returns the merged per-worker event buffers ordered by
// timestamp, bounded by Config.TraceCapacity. Call after Run.
func (rt *Runtime) TraceEvents() []trace.Event {
	var all []trace.Event
	for _, w := range rt.workers {
		all = append(all, w.events...)
	}
	if rt.adapt != nil {
		all = append(all, rt.adapt.events...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time < all[j].Time })
	if rt.cfg.TraceCapacity > 0 && len(all) > rt.cfg.TraceCapacity {
		all = all[:rt.cfg.TraceCapacity]
	}
	return all
}

// trace records one event into the worker's private buffer (merged and
// sorted by TraceEvents). Each worker writes only its own buffer, so
// recording needs no locking.
func (rt *Runtime) trace(w *worker, kind trace.Kind, proc int, name string, arg int64) {
	if rt.cfg.TraceCapacity <= 0 || len(w.events) >= rt.cfg.TraceCapacity {
		return
	}
	w.events = append(w.events, trace.Event{Time: rt.nowNS(), Proc: int32(proc), Kind: kind, Task: name, Arg: arg})
}

// freeListCap bounds a worker's task-record freelist; records past it go
// to the garbage collector.
const freeListCap = 256

// newTask returns a zeroed task record with the sentinel placement
// fields set. With a worker (its own goroutine — spawns and retries
// issued from a running task) the record comes from that worker's
// freelist without any synchronization; w == nil (the root task, tests)
// heap-allocates.
func (rt *Runtime) newTask(w *worker) *task {
	if w != nil && w.free != nil {
		t := w.free
		w.free = t.next
		w.freeN--
		t.next = nil
		t.slot, t.idx = -1, -1
		return t
	}
	return &task{slot: -1, idx: -1}
}

// freeTask recycles t onto w's freelist. Called only by the worker that
// just executed t (runTask), so the record has no other referent: a
// thief that once held it gave up ownership when it handed the task to
// dispatch, and inbox chains never contain a running task.
func (rt *Runtime) freeTask(w *worker, t *task) {
	if w == nil || w.freeN >= freeListCap {
		return
	}
	*t = task{}
	t.next = w.free
	w.free = t
	w.freeN++
}

func (rt *Runtime) recordFailure(err error) {
	rt.failMu.Lock()
	if rt.fail == nil {
		rt.fail = err
	}
	rt.failMu.Unlock()
}

// parkRetryLimit is how many consecutive failed takes re-probe
// immediately while work is queued somewhere; past it the worker
// concludes the queued work is work it may not take (pinned heads,
// reluctantly-stolen object-bound tasks) and backs off exponentially
// instead of spinning on the victims' queue locks — spinning would
// slow the very workers running those tasks.
const (
	parkRetryLimit = 4
	backoffBase    = 20 * time.Microsecond
	backoffCap     = time.Millisecond
)

// stallBackoff returns the timed-park duration for the given
// consecutive-miss count: the first timed park (misses ==
// parkRetryLimit) waits backoffBase, each further miss doubles it, and
// the wait saturates at backoffCap. Short first waits keep the reaction
// time to freshly stealable work low; the exponential cap keeps a
// worker staring at genuinely untakeable work from burning the cores
// running it.
func stallBackoff(misses int) time.Duration {
	k := misses - parkRetryLimit
	switch {
	case k < 0:
		k = 0
	case k >= 6: // backoffBase<<6 already exceeds the cap
		return backoffCap
	}
	d := backoffBase << uint(k)
	if d > backoffCap {
		return backoffCap
	}
	return d
}

// loop is one worker's scheduling loop: local queues, stealing, parking.
// Each iteration is a dispatch point: due fault events apply first (a
// Fail event retires the worker and exits the loop), and a stopped run
// exits before taking more work.
func (rt *Runtime) loop(w *worker) {
	misses := 0
	// Busy time is measured per dispatch burst — one clock read when the
	// worker turns busy and one when it runs dry — not per task: two
	// time.Now calls on every microsecond-scale task showed up as ~15%
	// of a scheduler-bound profile.
	var busyMark time.Time
	closeBurst := func() {
		if !busyMark.IsZero() {
			w.busyNS += time.Since(busyMark).Nanoseconds()
			busyMark = time.Time{}
		}
	}
	defer closeBurst()
	for {
		if rt.elastic && rt.drainRequested(w) {
			return // planned retirement
		}
		if rt.armed {
			if rt.stopped() {
				return
			}
			if rt.checkFaults(w, true) {
				return // retired
			}
		}
		if t := rt.take(w); t != nil {
			if busyMark.IsZero() {
				busyMark = time.Now()
			}
			misses = 0
			rt.dispatch(w, t)
			continue
		}
		closeBurst()
		select {
		case <-rt.done:
			return
		default:
		}
		misses++
		rt.park(w, misses)
	}
}

// dispatch runs one dequeued task, first consulting the transient-fault
// injections (flaky windows, planted launch failures) that may abort
// the launch and schedule a retry instead.
func (rt *Runtime) dispatch(w *worker, t *task) {
	if rt.shed != nil && rt.maybeShed(w, t) {
		return
	}
	if rt.armed && rt.launchAborted(w, t) {
		return
	}
	rt.runTask(w, t)
}

// park publishes the worker as idle, rechecks for work (closing the
// publish/recheck race against enqueuers), and sleeps until woken — or,
// when unstealable work is backlogged elsewhere, for an exponentially
// growing backoff.
func (rt *Runtime) park(w *worker, misses int) {
	// Drop any stale wake token first: a timed park that expired on its
	// own, or the early recheck return below, leaves a deposited token
	// behind, and that token would end the next genuine park instantly —
	// one spurious park/unpark round-trip. Draining here cannot lose a
	// wakeup, because every token sender publishes its condition (queue
	// count, scope count, fault-event index) before depositing, and the
	// rechecks after setParked observe those conditions afresh.
	select {
	case <-w.wake:
	default:
	}
	rt.setParked(w.id, true)
	defer rt.setParked(w.id, false)
	queued := rt.queuedTotal.Load() > 0
	if queued && misses < parkRetryLimit {
		return // work appeared between the failed take and publishing
	}
	start := time.Now()
	if queued {
		rt.timedPark(w, rt.stallBackoffRT(misses))
	} else {
		select {
		case <-w.wake:
		case <-rt.done:
		case <-rt.stopc:
		}
	}
	w.idleNS += time.Since(start).Nanoseconds()
}

// timedPark sleeps until a wake token, shutdown, or the deadline d,
// reusing the worker's timer — a fresh time.After channel per park
// would allocate on what is a hot path for stalled workers.
func (rt *Runtime) timedPark(w *worker, d time.Duration) {
	if w.timer == nil {
		w.timer = time.NewTimer(d)
	} else {
		w.timer.Reset(d)
	}
	fired := false
	select {
	case <-w.wake:
	case <-rt.done:
	case <-rt.stopc:
	case <-w.timer.C:
		fired = true
	}
	if !fired && !w.timer.Stop() {
		<-w.timer.C // the timer fired anyway; drain for the next Reset
	}
}

func (rt *Runtime) setParked(id int, on bool) {
	bit := uint64(1) << uint(id)
	for {
		old := rt.parked.Load()
		var next uint64
		if on {
			next = old | bit
		} else {
			next = old &^ bit
		}
		if rt.parked.CompareAndSwap(old, next) {
			return
		}
	}
}

// wakeWorker hands worker i a wake token if none is pending, reporting
// whether one was actually deposited.
func (rt *Runtime) wakeWorker(i int) bool {
	select {
	case rt.workers[i].wake <- struct{}{}:
		return true
	default:
		return false
	}
}

// wakeTargets notifies every worker in the bitmask whose parked bit is
// set — the direct "your queue just got work" notification (the analog
// of the simulator's NotifyProc), uncounted like the simulator's.
//
// A token is deposited only for parked workers, which cannot lose a
// wakeup: a parking worker publishes its bit before re-reading the
// queue count, and an enqueuer bumps the queue count before reading the
// mask (both sequentially consistent atomics) — so either the parker
// sees the new work and returns, or the enqueuer sees the bit.
func (rt *Runtime) wakeTargets(targets uint64) {
	m := targets & rt.parked.Load()
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		rt.wakeWorker(i)
	}
}

// wakePolicy applies the two-level wake scheme after work was enqueued:
// while the machine-wide backlog is shallow only the first wakeFanout
// parked workers are woken (targeted), falling back to waking every
// parked worker once queues back up (broadcast). Counters are bumped
// once per call and only when at least one token was actually
// deposited — an empty parked mask or all-full token channels wake
// nobody and count nothing. Attribution is to the enqueueing worker's
// row (the simulator charges the target server; totals remain
// comparable, documented in DESIGN.md §9).
func (rt *Runtime) wakePolicy(ctr *perfmon.Counters) {
	if rt.pol.DisableStealing {
		return
	}
	mask := rt.parked.Load()
	if mask == 0 {
		return
	}
	fanout := rt.wakeFanoutNow()
	broadcast := rt.queuedTotal.Load() > int64(fanout)
	deposited, attempted := 0, 0
	for mask != 0 {
		if !broadcast && attempted >= fanout {
			break
		}
		i := bits.TrailingZeros64(mask)
		mask &= mask - 1
		attempted++
		if rt.wakeWorker(i) {
			deposited++
		}
	}
	if deposited == 0 {
		return
	}
	if broadcast {
		ctr.BroadcastWakes++
		rt.mirror.broadcastWakes.n.Add(1)
	} else {
		ctr.TargetedWakes++
		rt.mirror.targetedWakes.n.Add(1)
	}
}

// wakeAfterEnqueue notifies the target worker directly, then applies
// the machine-wide wake policy — the per-insert composition used by
// every single-task enqueue path (SpawnN batches call wakeTargets once
// over the whole target set and wakePolicy once per batch instead).
func (rt *Runtime) wakeAfterEnqueue(target, from int) {
	rt.wakeTargets(1 << uint(target))
	rt.wakePolicy(&rt.cfg.Mon.Per[from])
}

// place resolves an affinity specification against Table 1's semantics,
// filling the task's placement fields. Task-affinity sets are resolved
// and inserted by placeSet, under their set-table shard.
func (rt *Runtime) place(t *task, a core.Affinity, spawner int) {
	p := rt.np
	if rt.pol.IgnoreHints {
		t.class, t.server = core.ClassPlain, int(rt.rr.Add(1)-1)%p
		return
	}
	switch a.Kind {
	case core.AffNone:
		t.class, t.server = core.ClassPlain, spawner
	case core.AffDefault, core.AffSimple:
		t.class, t.server, t.slot, t.affObj = core.ClassObjectBound, rt.cfg.Home(a.TaskObj), rt.slotOf(a.TaskObj), a.TaskObj
	case core.AffObject:
		t.class, t.server, t.slot, t.affObj = core.ClassObjectBound, rt.cfg.Home(a.ObjectObj), rt.slotOf(a.ObjectObj), a.ObjectObj
	case core.AffTaskObject:
		t.class, t.server, t.slot, t.affObj = core.ClassObjectBound, rt.cfg.Home(a.ObjectObj), rt.slotOf(a.TaskObj), a.TaskObj
	case core.AffProcessor:
		sv := a.Processor % p
		if sv < 0 {
			sv += p
		}
		t.class, t.server = core.ClassProcessor, sv
	case core.AffTask:
		panic("native: AffTask placement must go through placeSet")
	default:
		panic(fmt.Sprintf("native: unknown affinity kind %d", a.Kind))
	}
}

// lockWorker acquires w's queue mutex, counting a missed TryLock fast
// path against the acting worker's row (actor is the id of the worker
// whose goroutine is running — each row is still written only by its
// own goroutine).
func (rt *Runtime) lockWorker(w *worker, actor int) {
	rt.lockWorkerCtr(w, &rt.cfg.Mon.Per[actor])
}

// lockWorkerCtr is lockWorker with an explicit contention sink, for
// callers without a perfmon row of their own (the timekeeper goroutine
// charges its scratch counters to keep the one-writer-per-row rule).
func (rt *Runtime) lockWorkerCtr(w *worker, ctr *perfmon.Counters) {
	if w.mu.TryLock() {
		return
	}
	ctr.LockContention++
	rt.mirror.lockContention.n.Add(1)
	w.mu.Lock()
}

// placeSet places and inserts one task-affinity set member, returning
// the server it went to. The set's home is resolved under its shard
// lock; while that lock is held no whole-set steal can re-home the set,
// so if the home worker's lock can be grabbed without blocking
// (TryLock — which cannot deadlock even against the worker-before-shard
// global order, because it never waits) the insert completes in one
// shard acquisition. Otherwise the placement falls back to a retry
// loop that takes the locks in the global order (worker, then shard)
// and revalidates the home: if a concurrent whole-set steal re-homed
// the set in between, the placement chases the new home instead of
// splitting the set.
//
// Worker retirement adds one more reason to revalidate: a home may be
// dead (checked under the shard lock, and re-checked under the home
// worker's queue lock — the retire protocol publishes the dead bit
// before draining, so an insert that acquires the queue lock after the
// drain always sees it). A dead home is re-homed to a survivor under
// the shard lock, and every member chases the same record, so the set
// moves whole. The dead checks cost one atomic load when no worker has
// retired.
func (rt *Runtime) placeSet(t *task, obj int64, ctr *perfmon.Counters) int {
	t.class, t.slot, t.affObj = core.ClassTaskSet, rt.slotOf(obj), obj
	sh := rt.shardOf(obj)
	for {
		sh.lock(rt, ctr)
		sv, ok := sh.home[obj]
		if !ok {
			if rt.pol.PlaceSetsLeastLoaded {
				sv = rt.leastLoaded()
			} else {
				sv = int(rt.rr.Add(1)-1) % rt.np
			}
		}
		if rt.dead.Load() != 0 && rt.isDead(sv) {
			sv = rt.spreadAlive()
		}
		sh.home[obj] = sv
		if w := rt.workers[sv]; w.mu.TryLock() {
			if rt.dead.Load() == 0 || !rt.isDead(sv) {
				t.server = sv
				rt.pushLocked(w, t)
				w.mu.Unlock()
				sh.mu.Unlock()
				rt.queuedTotal.Add(1)
				return sv
			}
			// The home retired between the shard check and the queue
			// lock; re-home under the still-held shard lock and retry.
			w.mu.Unlock()
			sh.home[obj] = rt.spreadAlive()
			sh.mu.Unlock()
			continue
		}
		ctr.LockContention++
		rt.mirror.lockContention.n.Add(1)
		sh.mu.Unlock()
		for {
			w := rt.workers[sv]
			rt.lockWorkerCtr(w, ctr)
			sh.lock(rt, ctr)
			dead := rt.dead.Load() != 0 && rt.isDead(sv)
			if sh.home[obj] == sv && !dead {
				t.server = sv
				rt.pushLocked(w, t)
				sh.mu.Unlock()
				w.mu.Unlock()
				rt.queuedTotal.Add(1)
				return sv
			}
			// A concurrent whole-set steal moved the set, or the home
			// retired; chase the new (live) home.
			if dead && sh.home[obj] == sv {
				sh.home[obj] = rt.spreadAlive()
			}
			sv = sh.home[obj]
			sh.mu.Unlock()
			w.mu.Unlock()
		}
	}
}

// leastLoaded returns the surviving worker with the fewest queued tasks
// (ties to the lowest id). The per-worker counts are atomics, so the
// lock-free scan is a consistent-enough snapshot for a load-balancing
// heuristic.
func (rt *Runtime) leastLoaded() int {
	dead := rt.dead.Load()
	best, bestQ := 0, int64(1)<<62
	for i, w := range rt.workers {
		if dead&(1<<uint(i)) != 0 {
			continue
		}
		if q := w.queued.Load(); q < bestQ {
			best, bestQ = i, q
		}
	}
	return best
}

// pushLocked adds t to w's queues with full accounting. Called with
// w.mu held; the caller accounts queuedTotal after releasing the lock.
// In deque mode only structured tasks reach it (sets through placeSet,
// pinned and object-bound records through the mutex fallback paths);
// plain tasks ride the deque and inbox instead.
func (rt *Runtime) pushLocked(w *worker, t *task) {
	if t.slot >= 0 {
		q := &w.slots[t.slot]
		q.push(t)
		w.nonEmpty.add(q)
		if rt.deque {
			w.lockedWork.Add(1)
			if t.class == core.ClassTaskSet {
				w.setQueued.Add(1)
			}
		}
	} else if rt.deque && t.class != core.ClassPlain {
		w.pinned.push(t)
		w.lockedWork.Add(1)
	} else {
		w.plain.push(t)
	}
	w.queued.Add(1)
	if t.class == core.ClassPlain || t.class == core.ClassTaskSet {
		w.stealable.Add(1)
	}
}

// pushStructLocked routes one inbox-drained record into w's locked
// structures (w.mu held, deque mode only). Counter-free by design: the
// record was fully accounted (queued, stealable, queuedTotal) when it
// was inserted; only the lock-guarded occupancy hints move here.
func (rt *Runtime) pushStructLocked(w *worker, t *task) {
	if t.slot >= 0 {
		q := &w.slots[t.slot]
		q.push(t)
		w.nonEmpty.add(q)
	} else {
		w.pinned.push(t)
	}
	w.lockedWork.Add(1)
	if t.class == core.ClassTaskSet {
		w.setQueued.Add(1)
	}
}

// drainInbox moves everything other workers pushed into w's inbox since
// the last drain into the structures dispatch reads: plain records onto
// the owner's deque, pinned and object-bound records under the lock.
// Owner only; the lock is taken at most once and only when a structured
// record arrived. Inserts already accounted every counter, so the drain
// moves records without touching queued/stealable/queuedTotal. The
// swapped chain is newest-first; reversing through inboxScratch
// restores arrival order.
func (rt *Runtime) drainInbox(w *worker) {
	if w.inbox.empty() {
		return
	}
	chain := w.inbox.swapAll()
	if chain == nil {
		return
	}
	buf := w.inboxScratch[:0]
	for t := chain; t != nil; t = t.next {
		buf = append(buf, t)
	}
	locked := false
	for i := len(buf) - 1; i >= 0; i-- {
		t := buf[i]
		t.next = nil
		buf[i] = nil
		if t.class == core.ClassPlain {
			w.deq.pushBottom(t)
			continue
		}
		if !locked {
			rt.lockWorker(w, w.id)
			locked = true
		}
		rt.pushStructLocked(w, t)
	}
	if locked {
		w.mu.Unlock()
	}
	w.inboxScratch = buf[:0]
}

// sweepInbox drains a retired worker's inbox and re-inserts every record
// on a survivor. Called by the retirement drain and by any pusher that
// observed the dead bit after its push landed — the swapAll hand-off
// makes concurrent sweeps safe (each record appears in exactly one swap
// result), so the sweep is idempotent. The records were accounted
// against the dead target at insert time; each is unaccounted here and
// re-accounted by the fresh insert. Rerouting at this point is
// placement, not redistribution, so Redistributed is not counted (the
// distinction TestRedistributedCounterThroughReportNative pins down).
func (rt *Runtime) sweepInbox(w *worker, ctr *perfmon.Counters) {
	chain := w.inbox.swapAll()
	moved := false
	for chain != nil {
		t := chain
		chain = chain.next
		t.next = nil
		w.queued.Add(-1)
		if t.class == core.ClassPlain || t.class == core.ClassTaskSet {
			w.stealable.Add(-1)
		}
		rt.queuedTotal.Add(-1)
		t.server = rt.rerouteTarget(t)
		sv := rt.insertFrom(t, ctr, nil)
		rt.wakeTargets(1 << uint(sv))
		moved = true
	}
	if moved {
		rt.wakePolicy(ctr)
	}
}

// insert pushes t onto its server's queues, returning the worker it
// went to. actor is the id of the worker whose goroutine is running.
func (rt *Runtime) insert(t *task, actor int) int {
	return rt.insertFrom(t, &rt.cfg.Mon.Per[actor], rt.workers[actor])
}

// insertFrom is insert with an explicit contention sink and the worker
// whose goroutine is executing the call (nil when the caller is not a
// worker goroutine — the timekeeper, a retirement drain, an inbox
// sweep; self only enables the owner's lock-free fast path, it is never
// required for correctness).
//
// Deque mode counts, then publishes: the per-worker and machine hints
// are bumped before the record becomes visible, so any consumer that
// finds the record also finds counts covering it (consumers decrement
// after taking). The owner's own plain spawns go straight onto its
// deque bottom; everything else lands in the target's inbox with one
// CAS. A dead target is rerouted up front, and re-checked after the
// push: the retirement drain publishes the dead bit before sweeping, so
// a push that raced the sweep re-sweeps the inbox itself.
//
// Mutex mode is the pre-deque path: one lock per insert, dead targets
// rerouted under the target's lock.
func (rt *Runtime) insertFrom(t *task, ctr *perfmon.Counters, self *worker) int {
	if rt.deque {
		for {
			sv := t.server
			if rt.dead.Load() != 0 && rt.isDead(sv) {
				t.server = rt.rerouteTarget(t)
				continue
			}
			w := rt.workers[sv]
			w.queued.Add(1)
			if t.class == core.ClassPlain || t.class == core.ClassTaskSet {
				w.stealable.Add(1)
			}
			rt.queuedTotal.Add(1)
			if self == w && t.class == core.ClassPlain {
				w.deq.pushBottom(t)
				return sv
			}
			w.inbox.push(t)
			if rt.dead.Load() != 0 && rt.isDead(sv) {
				rt.sweepInbox(w, ctr)
			}
			return sv
		}
	}
	for {
		sv := t.server
		w := rt.workers[sv]
		rt.lockWorkerCtr(w, ctr)
		if rt.dead.Load() != 0 && rt.isDead(sv) {
			w.mu.Unlock()
			t.server = rt.rerouteTarget(t)
			continue
		}
		rt.pushLocked(w, t)
		w.mu.Unlock()
		rt.queuedTotal.Add(1)
		return sv
	}
}

// insertAndWake inserts t and applies the wake policy. The task's name
// is captured before the insert publishes it: once queued, another
// worker may steal it, run it, and recycle the record.
func (rt *Runtime) insertAndWake(t *task, from int) {
	name := t.name
	server := rt.insert(t, from)
	rt.trace(rt.workers[from], trace.KindEnqueue, -1, name, int64(server))
	rt.wakeAfterEnqueue(server, from)
}

// spawn creates, places, and enqueues one task on behalf of ctx. Exactly
// one of fn and payload is non-nil; payload tasks run through
// Config.Invoke.
//
// The scope and live counters are bumped only after placement succeeds:
// place runs the user-supplied Home callback, and if that panics (e.g.
// the address lies outside the embedding runtime's space) the counters
// must not charge a task that was never enqueued — a leaked live count
// would keep done from ever closing and hang Run instead of returning
// the recorded failure.
func (rt *Runtime) spawn(c *Ctx, name string, a core.Affinity, mon *Monitor, fn func(*Ctx), payload any, idx int32, prio int8, deadlineNS int64) {
	from := c.w.id
	rt.cfg.Mon.Per[from].Spawns++
	t := rt.newTask(c.w)
	t.name, t.fn, t.payload, t.mon, t.idx = name, fn, payload, mon, idx
	t.scope = c.scope
	if rt.shed != nil {
		t.prio, t.deadlineNS = clampPrio(prio), deadlineNS
	}
	if in := rt.inj; in != nil && in.tracked[name] {
		in.noteSpawn(t) // assigns the per-name index a fault plan targets
	}
	if !rt.pol.IgnoreHints && a.Kind == core.AffTask {
		if t.scope != nil {
			t.scope.n.Add(1)
		}
		rt.live.Add(1)
		if rt.shed != nil {
			rt.prioLive[t.prio].Add(1)
		}
		server := rt.placeSet(t, a.TaskObj, &rt.cfg.Mon.Per[from]) // t is published after this
		rt.trace(c.w, trace.KindEnqueue, -1, name, int64(server))
		rt.wakeAfterEnqueue(server, from)
		return
	}
	rt.place(t, a, from) // may panic in cfg.Home; no accounting yet
	if t.scope != nil {
		t.scope.n.Add(1)
	}
	rt.live.Add(1)
	if rt.shed != nil {
		rt.prioLive[t.prio].Add(1)
	}
	rt.insertAndWake(t, from)
}

// spawnN creates, places, and enqueues n sibling tasks sharing one
// payload; member i runs through Config.InvokeN with index i, and get
// supplies each member's affinity and optional monitor.
//
// In deque mode the burst is published as one batch: every record is
// built and placed first (placement may panic in cfg.Home, and nothing
// has been accounted or published at that point, so the panic surfaces
// as a *TaskFailure without leaking live counts), the scope and live
// counters then cover the whole batch before any member becomes visible
// (a published child could otherwise complete and cross scope.n through
// zero before its siblings were counted, releasing WaitFor early), and
// finally the batch is published — with one deque bottom store when
// every child is a plain task on the spawner itself, per-task inserts
// otherwise — followed by ONE wake decision for the whole burst.
// SpawnBatches counts these batch publications.
//
// Mutex mode spawns the children one at a time, each with its own
// insert and wake — the pre-deque baseline the A/B harness measures
// against.
func (rt *Runtime) spawnN(c *Ctx, name string, n int, get func(int) (core.Affinity, *Monitor, int8, int64), payload any) {
	if n <= 0 {
		return
	}
	w := c.w
	from := w.id
	ctr := &rt.cfg.Mon.Per[from]
	if !rt.deque {
		for i := 0; i < n; i++ {
			a, mon, prio, dl := get(i)
			rt.spawn(c, name, a, mon, nil, payload, int32(i), prio, dl)
		}
		return
	}
	ctr.Spawns += int64(n)
	ctr.SpawnBatches++
	batch := w.spawnScratch[:0]
	allPlainSelf := true
	for i := 0; i < n; i++ {
		t := rt.newTask(w)
		t.name, t.payload, t.idx = name, payload, int32(i)
		t.scope = c.scope
		a, mon, prio, dl := get(i)
		t.mon = mon
		if rt.shed != nil {
			t.prio, t.deadlineNS = clampPrio(prio), dl
		}
		if in := rt.inj; in != nil && in.tracked[name] {
			in.noteSpawn(t)
		}
		if !rt.pol.IgnoreHints && a.Kind == core.AffTask {
			// Set members resolve their home under the shard lock at
			// publish time (placeSet); mark the class and object now.
			t.class, t.slot, t.affObj = core.ClassTaskSet, rt.slotOf(a.TaskObj), a.TaskObj
			allPlainSelf = false
		} else {
			rt.place(t, a, from) // may panic in cfg.Home; nothing accounted yet
			if t.class != core.ClassPlain || t.server != from {
				allPlainSelf = false
			}
		}
		batch = append(batch, t)
	}
	if c.scope != nil {
		c.scope.n.Add(int64(n))
	}
	rt.live.Add(int64(n))
	if rt.shed != nil {
		for _, t := range batch {
			rt.prioLive[t.prio].Add(1)
		}
	}
	if allPlainSelf {
		w.queued.Add(int64(n))
		w.stealable.Add(int64(n))
		rt.queuedTotal.Add(int64(n))
		for range batch {
			rt.trace(w, trace.KindEnqueue, -1, name, int64(from))
		}
		w.deq.pushBottomN(batch)
	} else {
		// Mixed batch. Set members resolve through the shard protocol,
		// the spawner's own plain children ride its deque, and
		// cross-worker plain children ride the target's inbox. Structured
		// records (pinned, object-bound) are chained per target and
		// published under one lock per (batch, target): pushing them
		// through the inbox instead would leave them invisible to every
		// steal rule until the owner drains, which turns object-bound-
		// heavy batches into failed-steal storms on the thieves' side.
		if w.spawnHeads == nil {
			w.spawnHeads = make([]*task, rt.np)
			w.spawnTails = make([]*task, rt.np)
		}
		var targets uint64
		heads, tails := w.spawnHeads, w.spawnTails
		order := w.spawnOrder[:0]
		for _, t := range batch {
			if t.class == core.ClassTaskSet {
				sv := rt.placeSet(t, t.affObj, ctr)
				rt.trace(w, trace.KindEnqueue, -1, name, int64(sv))
				targets |= 1 << uint(sv)
				continue
			}
			if t.class == core.ClassPlain {
				if t.server == from {
					w.queued.Add(1)
					w.stealable.Add(1)
					rt.queuedTotal.Add(1)
					w.deq.pushBottom(t)
					rt.trace(w, trace.KindEnqueue, -1, name, int64(from))
					continue
				}
				sv := rt.insertFrom(t, ctr, w)
				rt.trace(w, trace.KindEnqueue, -1, name, int64(sv))
				targets |= 1 << uint(sv)
				continue
			}
			sv := t.server
			t.next = nil
			if heads[sv] == nil {
				heads[sv] = t
				order = append(order, sv)
			} else {
				tails[sv].next = t
			}
			tails[sv] = t
		}
		for _, sv := range order {
			chain := heads[sv]
			heads[sv], tails[sv] = nil, nil
			wv := rt.workers[sv]
			rt.lockWorkerCtr(wv, ctr)
			if rt.dead.Load() != 0 && rt.isDead(sv) {
				// Target retired since placement: reroute each record
				// through the single-insert slow path (which re-homes it).
				wv.mu.Unlock()
				for t := chain; t != nil; {
					next := t.next
					t.next = nil
					tsv := rt.insertFrom(t, ctr, w)
					rt.trace(w, trace.KindEnqueue, -1, name, int64(tsv))
					targets |= 1 << uint(tsv)
					t = next
				}
				continue
			}
			n := int64(0)
			for t := chain; t != nil; {
				next := t.next
				t.next = nil
				rt.pushLocked(wv, t)
				n++
				t = next
			}
			wv.mu.Unlock()
			rt.queuedTotal.Add(n)
			for i := int64(0); i < n; i++ {
				rt.trace(w, trace.KindEnqueue, -1, name, int64(sv))
			}
			targets |= 1 << uint(sv)
		}
		w.spawnOrder = order[:0]
		rt.wakeTargets(targets)
	}
	rt.wakePolicy(ctr)
	for i := range batch {
		batch[i] = nil
	}
	w.spawnScratch = batch[:0]
}

// take removes the next task for w: local queues first, then stealing.
//
// Deque mode runs the common case without any lock: drain the inbox,
// probe the locked structures only when the lockedWork hint says they
// hold something, then pop the own deque — a plain spawn-and-run cycle
// is an inbox emptiness load plus one deque CAS. The dispatch priority
// mirrors the simulator's (current slot back to back, non-empty list,
// pinned queue, then the plain deque), which keeps P=1 native schedules
// token-identical to the simulated ones.
//
// Mutex mode is the pre-deque fast path: one lock, skipped when the
// atomic queued count already reads empty.
func (rt *Runtime) take(w *worker) *task {
	if rt.deque {
		rt.drainInbox(w)
		if w.lockedWork.Load() > 0 {
			rt.lockWorker(w, w.id)
			t := rt.takeLocked(w)
			w.mu.Unlock()
			if t != nil {
				return t
			}
		}
		if t := w.deq.takeTop(); t != nil {
			rt.noteDequeued(w, 1)
			rt.noteRemoved(w, t)
			return t
		}
		return rt.steal(w)
	}
	if w.queued.Load() > 0 {
		rt.lockWorker(w, w.id)
		t := rt.takeLocal(w)
		w.mu.Unlock()
		if t != nil {
			return t
		}
	}
	return rt.steal(w)
}

// takeLocal mirrors the simulator's local dispatch priority: the
// task-affinity queue being drained back to back, then the non-empty
// list, then the plain queue. Called with w.mu held (mutex mode).
func (rt *Runtime) takeLocal(w *worker) *task {
	if w.cur != nil && !w.cur.empty() {
		t := w.cur.pop()
		rt.afterSlotPop(w, w.cur)
		rt.noteDequeued(w, 1)
		rt.noteRemoved(w, t)
		return t
	}
	w.cur = nil
	if q := w.nonEmpty.head; q != nil {
		t := q.pop()
		rt.afterSlotPop(w, q)
		if !q.empty() {
			w.cur = q
		}
		rt.noteDequeued(w, 1)
		rt.noteRemoved(w, t)
		return t
	}
	if t := w.plain.pop(); t != nil {
		rt.noteDequeued(w, 1)
		rt.noteRemoved(w, t)
		return t
	}
	return nil
}

// takeLocked pops from w's lock-guarded structures in the simulator's
// priority order: the slot being drained back to back, the non-empty
// list, then the pinned queue. Called with w.mu held (deque mode).
func (rt *Runtime) takeLocked(w *worker) *task {
	if w.cur != nil && !w.cur.empty() {
		t := w.cur.pop()
		rt.afterSlotPop(w, w.cur)
		rt.noteLockedTaken(w, t)
		return t
	}
	w.cur = nil
	if q := w.nonEmpty.head; q != nil {
		t := q.pop()
		rt.afterSlotPop(w, q)
		if !q.empty() {
			w.cur = q
		}
		rt.noteLockedTaken(w, t)
		return t
	}
	if t := w.pinned.pop(); t != nil {
		rt.noteLockedTaken(w, t)
		return t
	}
	return nil
}

// noteLockedTaken accounts one task removed from w's locked structures
// (w.mu held, deque mode).
func (rt *Runtime) noteLockedTaken(w *worker, t *task) {
	w.lockedWork.Add(-1)
	if t.class == core.ClassTaskSet {
		w.setQueued.Add(-1)
	}
	rt.noteDequeued(w, 1)
	rt.noteRemoved(w, t)
}

func (rt *Runtime) afterSlotPop(w *worker, q *taskQueue) {
	if q.empty() {
		w.nonEmpty.removeQ(q)
		if w.cur == q {
			w.cur = nil
		}
	}
}

// noteDequeued accounts n tasks removed from w's queues (w.mu held).
func (rt *Runtime) noteDequeued(w *worker, n int) {
	w.queued.Add(int64(-n))
	rt.queuedTotal.Add(int64(-n))
}

// noteRemoved maintains w's stealable hint for one removed task (w.mu
// held; pairs with the increment in pushLocked).
func (rt *Runtime) noteRemoved(w *worker, t *task) {
	if t.class == core.ClassPlain || t.class == core.ClassTaskSet {
		w.stealable.Add(-1)
	}
}

// steal scans victims for work, preferring same-cluster victims when
// the policy asks for it. There is no global steal lock: concurrent
// thieves probing different victims proceed in parallel, and each probe
// synchronizes only with the two workers and (for a set move) the one
// set-table shard involved.
func (rt *Runtime) steal(w *worker) *task {
	if rt.pol.DisableStealing || rt.queuedTotal.Load() == 0 {
		return nil
	}
	cluster, remote, flat := rt.ringCluster[w.id], rt.ringRemote[w.id], rt.ringFlat[w.id]
	if rt.elastic {
		// Steal through per-worker pruned ring copies, rebuilt lazily
		// when the membership epoch moves, so scans skip retired and
		// spare slots. A momentarily stale copy is only an inefficiency:
		// the q == 0 skip below keeps dead victims from yielding work.
		if e := rt.epoch.Load(); e != w.ringEpoch {
			rt.pruneRings(w, e)
		}
		cluster, remote, flat = w.prCluster, w.prRemote, w.prFlat
	}
	clusterOnly := rt.clusterOnly.Load()
	if rt.pol.ClusterStealFirst || clusterOnly {
		if t := rt.stealScan(w, cluster); t != nil {
			return t
		}
		if clusterOnly {
			return nil
		}
		return rt.stealScan(w, remote)
	}
	return rt.stealScan(w, flat)
}

// stealScan probes one victim ring in order. A probe that examined a
// victim and came back empty-handed — the victim drained meanwhile, or
// holds only work the steal rules refuse — counts as a failed steal.
func (rt *Runtime) stealScan(w *worker, ring []int) *task {
	ctr := &rt.cfg.Mon.Per[w.id]
	for _, vid := range ring {
		v := rt.workers[vid]
		q := v.queued.Load()
		if q == 0 {
			continue
		}
		if q < 2 && v.stealable.Load() == 0 {
			// The victim's one queued task is pinned or object-bound;
			// every steal rule refuses it from a non-backlogged victim,
			// so the probe (and its lock) would be wasted.
			continue
		}
		ctr.StealTries++
		rt.mirror.stealTries.n.Add(1)
		t := rt.stealFrom(v, w)
		if t == nil {
			ctr.FailedSteals++
			rt.mirror.failedSteals.n.Add(1)
			continue
		}
		if rt.sameCluster(w.id, vid) {
			ctr.StealsLocal++
			rt.mirror.stealsLocal.n.Add(1)
		} else {
			ctr.StealsRemote++
			rt.mirror.stealsRemote.n.Add(1)
		}
		rt.trace(w, trace.KindSteal, w.id, t.name, int64(vid))
		return t
	}
	return nil
}

// stealFrom takes work from victim v for thief w, with the paper's
// preference order: a whole task-affinity set, a plain task, and finally
// (reluctantly) one object-bound or pinned task from a backlogged
// victim.
//
// Deque mode orders the probe by cost: the sets-first phase takes the
// victim's lock only when the setQueued hint says a set is queued; a
// plain steal is a single CAS on the victim's deque top; the victim's
// inbox is probed lock-free (swap, keep the oldest plain record, push
// the rest back); and only the backlog-gated reluctant rules on the
// locked structures pay for the victim's mutex. Mutex mode
// (stealFromMutex) is the pre-deque single-lock probe.
func (rt *Runtime) stealFrom(v, w *worker) *task {
	if !rt.deque {
		return rt.stealFromMutex(v, w)
	}
	if rt.pol.StealWholeSets && v.setQueued.Load() > 0 {
		rt.lockWorker(v, w.id)
		t := rt.stealSet(v, w)
		v.mu.Unlock()
		if t != nil {
			return t
		}
	}
	if t := v.deq.takeTop(); t != nil {
		rt.noteDequeued(v, 1)
		rt.noteRemoved(v, t)
		return t
	}
	if t := rt.stealInbox(v, w); t != nil {
		return t
	}
	return rt.stealLockedReluctant(v, w)
}

// stealInbox probes v's inbox for the oldest stealable record. Pop-one
// is unsafe on a Treiber stack whose records get recycled (see inbox),
// so the thief swaps the whole chain, keeps one record, and pushes
// everything else back in one CAS, preserving relative order.
//
// Plain records are always fair game. The pinned and object-bound
// records an inbox can hold are exactly the work the reluctant steal
// rules guard behind backlog checks, and riding the inbox grants no
// license to skip those checks — so they are taken only under the same
// gates stealLockedReluctant applies to the locked structures (victim
// backlogged, object-bound only under StealObjectBound). Without this,
// object-bound-heavy workloads starve thieves into a failed-steal storm
// whenever the work sits in inboxes the owners haven't drained yet.
func (rt *Runtime) stealInbox(v, w *worker) *task {
	if v.inbox.empty() {
		return nil
	}
	chain := v.inbox.swapAll()
	if chain == nil {
		return nil
	}
	buf := w.inboxScratch[:0]
	for t := chain; t != nil; t = t.next {
		buf = append(buf, t)
	}
	var taken *task
	for i := len(buf) - 1; i >= 0; i-- { // chain is newest-first; oldest plain wins
		if buf[i].class == core.ClassPlain {
			taken = buf[i]
			buf = append(buf[:i], buf[i+1:]...)
			break
		}
	}
	if taken == nil && v.queued.Load() >= 2 {
		for i := len(buf) - 1; i >= 0; i-- { // oldest permitted structured record
			c := buf[i].class
			if c == core.ClassProcessor || (c == core.ClassObjectBound && rt.pol.StealObjectBound) {
				taken = buf[i]
				buf = append(buf[:i], buf[i+1:]...)
				break
			}
		}
	}
	if len(buf) > 0 {
		for i := 0; i < len(buf)-1; i++ {
			buf[i].next = buf[i+1]
		}
		v.inbox.pushChain(buf[0], buf[len(buf)-1])
		if rt.dead.Load() != 0 && rt.isDead(v.id) {
			// The victim retired while its records were detached; its
			// drain may have missed them, so sweep them to survivors.
			rt.sweepInbox(v, &rt.cfg.Mon.Per[w.id])
		}
	}
	for i := range buf {
		buf[i] = nil
	}
	w.inboxScratch = buf[:0]
	if taken == nil {
		return nil
	}
	taken.next = nil
	rt.noteDequeued(v, 1)
	rt.noteRemoved(v, taken)
	return taken
}

// stealLockedReluctant applies the backlog-gated steal rules to v's
// locked structures: the pinned-queue head only from a backlogged
// victim, an object-bound slot head only when the policy and backlog
// allow it, and a lone set member only when whole-set stealing is off
// (a deliberate, counted split). The lock-free gate rejects the common
// nothing-reluctantly-stealable case without touching v's mutex.
func (rt *Runtime) stealLockedReluctant(v, w *worker) *task {
	if v.lockedWork.Load() == 0 {
		return nil
	}
	if v.queued.Load() < 2 && (rt.pol.StealWholeSets || v.setQueued.Load() == 0) {
		return nil
	}
	rt.lockWorker(v, w.id)
	defer v.mu.Unlock()
	if t := v.pinned.head; t != nil && v.queued.Load() >= 2 {
		v.pinned.remove(t)
		rt.noteLockedTaken(v, t)
		return t
	}
	for q := v.nonEmpty.head; q != nil; q = q.nextQ {
		head := q.head
		if head == nil {
			continue
		}
		if head.class == core.ClassObjectBound && (!rt.pol.StealObjectBound || v.queued.Load() < 2) {
			continue
		}
		if head.class == core.ClassTaskSet {
			if rt.pol.StealWholeSets {
				// Would split a set the whole-set pass chose not to move.
				continue
			}
			rt.setSplits.Add(1)
		}
		q.remove(head)
		rt.afterSlotPop(v, q)
		rt.noteLockedTaken(v, head)
		return head
	}
	return nil
}

// stealFromMutex is the mutex-mode steal probe.
//
// Locking: a probe holds only the victim's queue lock — single-task
// steals hand the task straight to the thief's goroutine, so the
// thief's own queues are never touched and the common case (including
// every failed probe) costs exactly one lock. Only a whole-set move
// adds the thief's lock (stealSet, in ascending global id order — the
// deadlock-avoidance protocol every two-worker path follows) plus the
// one set-table shard involved.
func (rt *Runtime) stealFromMutex(v, w *worker) *task {
	rt.lockWorker(v, w.id)
	defer v.mu.Unlock()
	if rt.pol.StealWholeSets {
		if t := rt.stealSet(v, w); t != nil {
			return t
		}
	}
	// A plain or processor-affinity task: scan past pinned tasks, taking
	// a pinned head only from a backlogged victim.
	for t := v.plain.head; t != nil; t = t.next {
		if t.class == core.ClassProcessor {
			continue
		}
		v.plain.remove(t)
		rt.noteDequeued(v, 1)
		rt.noteRemoved(v, t)
		return t
	}
	if t := v.plain.head; t != nil && v.queued.Load() >= 2 {
		v.plain.remove(t)
		rt.noteDequeued(v, 1)
		rt.noteRemoved(v, t)
		return t
	}
	// Last resort: one object-bound (or task-set, if set stealing is
	// off) task from some slot, only from a backlogged victim.
	for q := v.nonEmpty.head; q != nil; q = q.nextQ {
		head := q.head
		if head == nil {
			continue
		}
		if head.class == core.ClassObjectBound && (!rt.pol.StealObjectBound || v.queued.Load() < 2) {
			continue
		}
		if head.class == core.ClassTaskSet {
			if rt.pol.StealWholeSets {
				// Would split a set the whole-set pass chose not to move.
				continue
			}
			// Set stealing is off and the policy fell back to taking one
			// member: a deliberate split, counted like the simulator's.
			rt.setSplits.Add(1)
		}
		q.remove(head)
		rt.afterSlotPop(v, q)
		rt.noteDequeued(v, 1)
		rt.noteRemoved(v, head)
		return head
	}
	return nil
}

// stealSet moves one whole task-affinity set from v to thief w: drain
// every member, re-home the set under its shard lock, keep the head for
// the thief to run and queue the rest behind it for back-to-back
// servicing. Called with v.mu held; returns with v.mu still held.
//
// The move needs both worker locks plus the set's shard. A cheap peek
// under v.mu alone rejects the common no-set-queued case before the
// thief's lock is ever taken. Acquiring w.mu second is in order when
// v.id < w.id; out of order it is tried without blocking (TryLock
// cannot deadlock), and on failure both locks are dropped and retaken
// in ascending id order — after which the peek is stale and the scan
// below revalidates everything from scratch.
func (rt *Runtime) stealSet(v, w *worker) *task {
	found := false
	for q := v.nonEmpty.head; q != nil; q = q.nextQ {
		if h := q.head; h != nil && h.class == core.ClassTaskSet {
			found = true
			break
		}
	}
	if !found {
		return nil
	}
	ctr := &rt.cfg.Mon.Per[w.id]
	if v.id < w.id {
		rt.lockWorker(w, w.id)
	} else if !w.mu.TryLock() {
		ctr.LockContention++
		rt.mirror.lockContention.n.Add(1)
		v.mu.Unlock()
		rt.lockWorker(w, w.id)
		rt.lockWorker(v, w.id)
	}
	defer w.mu.Unlock()
	for q := v.nonEmpty.head; q != nil; q = q.nextQ {
		head := q.head
		if head == nil || head.class != core.ClassTaskSet {
			continue
		}
		obj := head.affObj
		sh := rt.shardOf(obj)
		sh.lock(rt, ctr)
		// Queued membership at v implies the shard records v as the
		// set's home (inserts validate under the shard lock, moves
		// drain the victim before releasing it); assert rather than
		// assume — a violation would be a split in the making.
		if sh.home[obj] != v.id {
			rt.setSplits.Add(1)
		}
		sh.home[obj] = w.id
		moved := w.setScratch[:0]
		for {
			t := q.popMatching(obj)
			if t == nil {
				break
			}
			moved = append(moved, t)
		}
		rt.afterSlotPop(v, q)
		rt.noteDequeued(v, len(moved))
		// popMatching matches by object, so the move can carry
		// object-bound tasks naming the set's object along with the set
		// members; the stealable/setQueued hints count only some
		// classes, so they are maintained per task.
		for _, t := range moved {
			rt.noteRemoved(v, t)
		}
		if rt.deque {
			v.lockedWork.Add(-int64(len(moved)))
			for _, t := range moved {
				if t.class == core.ClassTaskSet {
					v.setQueued.Add(-1)
				}
			}
		}
		sh.mu.Unlock()
		first := moved[0]
		first.server = w.id
		if len(moved) > 1 {
			for _, t := range moved[1:] {
				t.server = w.id
				tq := &w.slots[t.slot]
				tq.push(t)
				w.nonEmpty.add(tq)
				if t.class == core.ClassPlain || t.class == core.ClassTaskSet {
					w.stealable.Add(1)
				}
				if rt.deque {
					w.lockedWork.Add(1)
					if t.class == core.ClassTaskSet {
						w.setQueued.Add(1)
					}
				}
			}
			w.queued.Add(int64(len(moved) - 1))
			w.cur = &w.slots[first.slot]
			rt.queuedTotal.Add(int64(len(moved) - 1))
		}
		w.setScratch = moved[:0]
		ctr.SetSteals++
		rt.mirror.setSteals.n.Add(1)
		return first
	}
	return nil
}

// runTask executes one task to completion on w, with perfmon and trace
// accounting, monitor wrapping, panic recovery, and scope/termination
// bookkeeping.
func (rt *Runtime) runTask(w *worker, t *task) {
	ctr := &rt.cfg.Mon.Per[w.id]
	ctr.TasksRun++
	if t.server == w.id {
		ctr.TasksAtHome++
	}
	rt.trace(w, trace.KindRun, w.id, t.name, 0)
	t.ctx = Ctx{w: w, rt: rt, scope: t.scope}
	c := &t.ctx
	var startNS int64
	if w.fev != nil {
		startNS = rt.nowNS()
	}
	rt.execute(c, t)
	if fv := w.fev; fv != nil {
		// An active slowdown window stretches the task's own duration
		// by its factor — the straggler sleeps off the difference.
		now := rt.nowNS()
		if d := fv.slowdownPenalty(startNS, now-startNS, now); d > 0 {
			rt.sleep(w, d)
		}
	}
	rt.trace(w, trace.KindDone, w.id, t.name, 0)
	if t.scope != nil {
		rt.scopeDone(t.scope)
	}
	if rt.shed != nil {
		rt.prioLive[t.prio].Add(-1)
	}
	rt.freeTask(w, t)
	// Unconditional (not gated on armed): CounterSnapshot reports it as
	// Completed on every run, and the live counter on the next line
	// already pays a shared atomic here.
	rt.completed.Add(1)
	if rt.live.Add(-1) == 0 {
		rt.doneOnce.Do(func() { close(rt.done) })
	}
}

func (rt *Runtime) execute(c *Ctx, t *task) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(stopUnwind); ok {
			// A stopped run unwound this worker out of a blocked task
			// body; the stop already recorded the run's failure.
			return
		}
		_, injected := r.(InjectedPanic)
		rt.recordFailure(&TaskFailure{
			Task:     t.name,
			Proc:     c.w.id,
			Time:     rt.nowNS(),
			Value:    r,
			Stack:    string(debug.Stack()),
			Injected: injected,
		})
	}()
	if t.injPanic {
		panic(InjectedPanic{Task: t.name})
	}
	if t.mon != nil {
		c.Lock(t.mon)
		c.heldMon = t.mon
		defer func() {
			// heldMon is cleared if a stopped run unwound out of a
			// Cond.Wait while the monitor was released — unlocking it
			// again would corrupt the mutex.
			if c.heldMon == t.mon {
				c.heldMon = nil
				c.Unlock(t.mon)
			}
		}()
	}
	if t.fn != nil {
		t.fn(c)
		return
	}
	if t.idx >= 0 {
		rt.cfg.InvokeN(c, t.payload, int(t.idx))
		return
	}
	rt.cfg.Invoke(c, t.payload)
}

// Ctx is the native execution context of one running task.
type Ctx struct {
	w     *worker
	rt    *Runtime
	scope *scope

	// heldMon tracks the mutex-function monitor currently held by this
	// task, so a stop-unwind out of a Cond.Wait (which releases the
	// monitor) can tell execute's deferred unlock to stand down.
	heldMon *Monitor
}

// ProcID returns the executing worker.
func (c *Ctx) ProcID() int { return c.w.id }

// Now returns wall-clock nanoseconds since Run started.
func (c *Ctx) Now() int64 { return c.rt.nowNS() }

// Spawn creates and enqueues a task with the given affinity; mon, when
// non-nil, makes it a mutex function on that monitor.
func (c *Ctx) Spawn(name string, a core.Affinity, mon *Monitor, fn func(*Ctx)) {
	c.rt.spawn(c, name, a, mon, fn, nil, -1, 0, 0)
}

// SpawnPayload creates and enqueues a task whose body is Config.Invoke
// applied to payload. It lets the embedding runtime avoid allocating a
// per-spawn wrapper closure: the adapter is configured once and the
// payload (typically the user's func value) rides through the pooled
// task record. prio is the task's priority class (clamped to [0,7])
// and deadlineNS, when positive, the absolute run-relative nanosecond
// after which the task is shed instead of run; both are ignored unless
// a ShedConfig is armed.
func (c *Ctx) SpawnPayload(name string, a core.Affinity, mon *Monitor, payload any, prio int8, deadlineNS int64) {
	c.rt.spawn(c, name, a, mon, nil, payload, -1, prio, deadlineNS)
}

// SpawnN creates and enqueues n sibling tasks sharing one payload; the
// get callback supplies each member's affinity, optional monitor,
// priority class, and deadline, and member i runs through
// Config.InvokeN with index i. A burst spawned this way is published
// as one batch — one deque publish and one wake decision instead of n
// (see spawnN).
func (c *Ctx) SpawnN(name string, n int, get func(int) (core.Affinity, *Monitor, int8, int64), payload any) {
	c.rt.spawnN(c, name, n, get, payload)
}

// WaitFor runs body and then blocks until every task spawned in its
// dynamic extent has completed. The waiting worker helps: it executes
// other ready tasks (its own queues first, then stealing) and parks only
// when there is nothing to run, so a single worker can always drain the
// tasks its own waitfor is blocked on.
func (c *Ctx) WaitFor(body func()) {
	sc := &scope{}
	old := c.scope
	c.scope = sc
	body()
	c.scope = old
	c.rt.waitScope(c, sc)
}
