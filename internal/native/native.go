// Package native executes COOL programs on real goroutines: one worker
// goroutine per simulated processor, each owning the paper's queue
// structure (a plain/object queue plus a hashed array of task-affinity
// queues with a non-empty list), with whole-set stealing, reluctant
// object-affinity stealing, and optional cluster-restricted stealing.
//
// The package mirrors the simulator scheduler in internal/core queue for
// queue and steal discipline, but time is wall-clock nanoseconds and
// synchronization is real (sync.Mutex monitors, channel parking). A
// single native worker applies the identical dispatch priority as the
// simulator's server — current task-affinity queue back to back, then
// the non-empty list, then the plain queue — so a P=1 native run
// executes tasks in exactly the simulated order, which the differential
// harness in internal/xcheck exploits.
package native

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/coolrts/cool/internal/core"
	"github.com/coolrts/cool/internal/perfmon"
	"github.com/coolrts/cool/internal/trace"
)

// wakeFanout is the number of parked workers a targeted wakeup notifies
// before the machine-wide backlog forces a broadcast (same constant as
// the simulator scheduler).
const wakeFanout = 4

// Config describes the native machine: worker count, cluster topology
// (which steers victim order, not memory), and the scheduling policy.
type Config struct {
	Procs       int
	ClusterSize int
	PageSize    int64 // for the two-modulo task-affinity slot hash
	Pol         core.Policy

	// Home maps an object address to its home worker (the address-space
	// lookup, supplied by the embedding runtime with any locking it
	// needs). Required.
	Home func(addr int64) int

	// Mon receives per-worker counters. Every worker writes only its own
	// row, so the shared monitor needs no locking. Required.
	Mon *perfmon.Monitor

	// TraceCapacity, when positive, bounds the merged scheduler event
	// trace (timestamps are wall-clock nanoseconds since Run).
	TraceCapacity int
}

// TaskFailure reports a panicked task. The embedding runtime converts it
// to its public typed error.
type TaskFailure struct {
	Task  string
	Proc  int
	Time  int64 // nanoseconds since Run started
	Value any
	Stack string
}

func (f *TaskFailure) Error() string {
	return fmt.Sprintf("native: task %q panicked on P%d at %dns: %v", f.Task, f.Proc, f.Time, f.Value)
}

// task is one spawned task record. Records are pooled: a completed task
// is zeroed and reused by a later spawn.
type task struct {
	name   string
	fn     func(*Ctx)
	class  core.Class
	server int
	slot   int   // task-affinity queue index, -1 for the plain queue
	affObj int64 // address identifying the task-affinity set (0 if none)
	scope  *scope
	mon    *Monitor // mutex-function monitor, locked around fn

	// Intrusive queue links.
	next, prev *task
	q          *taskQueue
}

// worker is one executor goroutine's scheduling state. The queue fields
// are guarded by mu; busyNS/idleNS and events are owned by the worker's
// goroutine (read only after Run returns).
type worker struct {
	id       int
	mu       sync.Mutex
	plain    taskQueue
	slots    []taskQueue
	nonEmpty nonEmptyList
	cur      *taskQueue // slot being drained back to back
	queued   atomic.Int64

	wake chan struct{} // cap 1; parking/wakeup token

	busyNS, idleNS int64
	events         []trace.Event
}

// Runtime is one native program execution.
type Runtime struct {
	cfg     Config
	pol     core.Policy
	workers []*worker

	// Static victim rings in (thief+d)%P probe order (processors never
	// retire natively, so they are built once).
	ringCluster [][]int
	ringRemote  [][]int
	ringFlat    [][]int

	// placeMu guards the task-affinity set table and every operation
	// that must be atomic with respect to it: placing a set member,
	// inserting it, and moving a whole set to a thief. This is what
	// keeps "sets never split" an invariant rather than a tendency.
	placeMu sync.Mutex
	setHome map[int64]int

	rr          atomic.Int64 // round-robin cursor (Base mode, set spread)
	queuedTotal atomic.Int64
	parked      atomic.Uint64 // bitmask of parked workers
	live        atomic.Int64  // tasks spawned but not yet completed
	done        chan struct{} // closed when live drains to zero
	doneOnce    sync.Once

	clusterOnly atomic.Bool // dynamic cluster-stealing flag
	setSplits   atomic.Int64

	failMu sync.Mutex
	fail   *TaskFailure

	pool    sync.Pool
	start   time.Time
	elapsed atomic.Int64
	ran     bool
}

// New builds a native runtime. The configuration must carry a Home
// lookup and a perfmon monitor with one row per worker.
func New(cfg Config) (*Runtime, error) {
	if cfg.Procs <= 0 || cfg.Procs > 64 {
		return nil, fmt.Errorf("native: worker count %d out of range [1,64]", cfg.Procs)
	}
	if cfg.ClusterSize <= 0 {
		return nil, fmt.Errorf("native: ClusterSize must be positive")
	}
	if cfg.PageSize <= 0 {
		return nil, fmt.Errorf("native: PageSize must be positive")
	}
	if cfg.Home == nil || cfg.Mon == nil || len(cfg.Mon.Per) < cfg.Procs {
		return nil, fmt.Errorf("native: Home lookup and a %d-row perfmon monitor are required", cfg.Procs)
	}
	pol := cfg.Pol
	if pol.QueueArraySize <= 0 {
		pol.QueueArraySize = 64
	}
	rt := &Runtime{
		cfg:     cfg,
		pol:     pol,
		setHome: make(map[int64]int),
		done:    make(chan struct{}),
	}
	rt.clusterOnly.Store(pol.ClusterStealingOnly)
	rt.pool.New = func() any { return new(task) }
	rt.workers = make([]*worker, cfg.Procs)
	for i := range rt.workers {
		w := &worker{id: i, slots: make([]taskQueue, pol.QueueArraySize), wake: make(chan struct{}, 1)}
		for j := range w.slots {
			w.slots[j].slotIdx = j
		}
		rt.workers[i] = w
	}
	rt.buildVictimRings()
	return rt, nil
}

func (rt *Runtime) sameCluster(p, q int) bool {
	return p/rt.cfg.ClusterSize == q/rt.cfg.ClusterSize
}

func (rt *Runtime) buildVictimRings() {
	n := rt.cfg.Procs
	rt.ringCluster = make([][]int, n)
	rt.ringRemote = make([][]int, n)
	rt.ringFlat = make([][]int, n)
	for t := 0; t < n; t++ {
		for d := 1; d < n; d++ {
			v := (t + d) % n
			rt.ringFlat[t] = append(rt.ringFlat[t], v)
			if rt.sameCluster(t, v) {
				rt.ringCluster[t] = append(rt.ringCluster[t], v)
			} else {
				rt.ringRemote[t] = append(rt.ringRemote[t], v)
			}
		}
	}
}

// slotOf maps a task-affinity object to its queue index, mixing line and
// page numbers exactly like the simulator scheduler.
func (rt *Runtime) slotOf(addr int64) int {
	h := addr>>6 + addr/rt.cfg.PageSize
	return int(h % int64(rt.pol.QueueArraySize))
}

// nowNS returns nanoseconds since Run started.
func (rt *Runtime) nowNS() int64 { return time.Since(rt.start).Nanoseconds() }

// ElapsedNanos returns the wall-clock duration of Run.
func (rt *Runtime) ElapsedNanos() int64 { return rt.elapsed.Load() }

// BusyIdleNanos returns the summed per-worker busy (running tasks) and
// idle (parked) nanoseconds. Call after Run.
func (rt *Runtime) BusyIdleNanos() (busy, idle int64) {
	for _, w := range rt.workers {
		busy += w.busyNS
		idle += w.idleNS
	}
	return busy, idle
}

// SetSplits returns how often a task-affinity set was observed split
// across workers (an invariant violation; must be zero under the default
// whole-set stealing policy).
func (rt *Runtime) SetSplits() int64 { return rt.setSplits.Load() }

// QueuedTasks returns the tasks currently enqueued machine-wide.
func (rt *Runtime) QueuedTasks() int { return int(rt.queuedTotal.Load()) }

// SetClusterStealingOnly flips the cluster-stealing restriction at run
// time (the paper's dynamically manipulated runtime flag, §6.3).
func (rt *Runtime) SetClusterStealingOnly(on bool) { rt.clusterOnly.Store(on) }

// Run executes main as the root task on worker 0 and returns after every
// task has completed. A panicking task aborts with *TaskFailure (the
// remaining tasks still drain).
func (rt *Runtime) Run(main func(*Ctx)) error {
	if rt.ran {
		return fmt.Errorf("native: Run called twice")
	}
	rt.ran = true
	rt.start = time.Now()
	root := rt.newTask()
	root.name, root.fn = "main", main
	root.class, root.server, root.slot = core.ClassProcessor, 0, -1
	rt.live.Store(1)
	rt.insertAndWake(root, 0)
	var wg sync.WaitGroup
	for _, w := range rt.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			rt.loop(w)
		}(w)
	}
	wg.Wait()
	rt.elapsed.Store(time.Since(rt.start).Nanoseconds())
	rt.failMu.Lock()
	defer rt.failMu.Unlock()
	if rt.fail != nil {
		return rt.fail
	}
	return nil
}

// TraceEvents returns the merged per-worker event buffers ordered by
// timestamp, bounded by Config.TraceCapacity. Call after Run.
func (rt *Runtime) TraceEvents() []trace.Event {
	var all []trace.Event
	for _, w := range rt.workers {
		all = append(all, w.events...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time < all[j].Time })
	if rt.cfg.TraceCapacity > 0 && len(all) > rt.cfg.TraceCapacity {
		all = all[:rt.cfg.TraceCapacity]
	}
	return all
}

// trace records one event into the worker's private buffer (merged and
// sorted by TraceEvents). Each worker writes only its own buffer, so
// recording needs no locking.
func (rt *Runtime) trace(w *worker, kind trace.Kind, proc int, name string, arg int64) {
	if rt.cfg.TraceCapacity <= 0 || len(w.events) >= rt.cfg.TraceCapacity {
		return
	}
	w.events = append(w.events, trace.Event{Time: rt.nowNS(), Proc: int32(proc), Kind: kind, Task: name, Arg: arg})
}

func (rt *Runtime) newTask() *task {
	t := rt.pool.Get().(*task)
	*t = task{slot: -1}
	return t
}

func (rt *Runtime) freeTask(t *task) {
	*t = task{}
	rt.pool.Put(t)
}

func (rt *Runtime) recordFailure(f *TaskFailure) {
	rt.failMu.Lock()
	if rt.fail == nil {
		rt.fail = f
	}
	rt.failMu.Unlock()
}

// parkRetryLimit is how many consecutive failed takes re-probe
// immediately while work is queued somewhere; past it the worker
// concludes the queued work is work it may not take (pinned heads,
// reluctantly-stolen object-bound tasks) and backs off for
// stallBackoff instead of spinning on the placement lock — spinning
// would slow the very workers running those tasks.
const (
	parkRetryLimit = 4
	stallBackoff   = 100 * time.Microsecond
)

// loop is one worker's scheduling loop: local queues, stealing, parking.
func (rt *Runtime) loop(w *worker) {
	misses := 0
	for {
		if t := rt.take(w); t != nil {
			misses = 0
			rt.runTask(w, t)
			continue
		}
		select {
		case <-rt.done:
			return
		default:
		}
		misses++
		rt.park(w, misses)
	}
}

// park publishes the worker as idle, rechecks for work (closing the
// publish/recheck race against enqueuers), and sleeps until woken — or,
// when unstealable work is backlogged elsewhere, for at most
// stallBackoff.
func (rt *Runtime) park(w *worker, misses int) {
	rt.setParked(w.id, true)
	defer rt.setParked(w.id, false)
	queued := rt.queuedTotal.Load() > 0
	if queued && misses < parkRetryLimit {
		return // work appeared between the failed take and publishing
	}
	start := time.Now()
	if queued {
		select {
		case <-w.wake:
		case <-rt.done:
		case <-time.After(stallBackoff):
		}
	} else {
		select {
		case <-w.wake:
		case <-rt.done:
		}
	}
	w.idleNS += time.Since(start).Nanoseconds()
}

func (rt *Runtime) setParked(id int, on bool) {
	bit := uint64(1) << uint(id)
	for {
		old := rt.parked.Load()
		var next uint64
		if on {
			next = old | bit
		} else {
			next = old &^ bit
		}
		if rt.parked.CompareAndSwap(old, next) {
			return
		}
	}
}

// wakeWorker hands worker i a wake token if none is pending.
func (rt *Runtime) wakeWorker(i int) {
	select {
	case rt.workers[i].wake <- struct{}{}:
	default:
	}
}

// wakeAfterEnqueue mirrors the simulator's wake policy: the target
// worker is notified immediately; while the machine-wide backlog is
// shallow only the first wakeFanout parked workers are woken, falling
// back to waking every parked worker once queues back up. Wake counters
// are attributed to the enqueueing worker's row (the simulator charges
// the target server; totals remain comparable, attribution is
// documented in DESIGN.md §9).
func (rt *Runtime) wakeAfterEnqueue(target, from int) {
	rt.wakeWorker(target)
	if rt.pol.DisableStealing {
		return
	}
	ctr := &rt.cfg.Mon.Per[from]
	mask := rt.parked.Load()
	if rt.queuedTotal.Load() > wakeFanout {
		ctr.BroadcastWakes++
		for i := 0; mask != 0 && i < rt.cfg.Procs; i++ {
			if mask&(1<<uint(i)) != 0 {
				rt.wakeWorker(i)
				mask &^= 1 << uint(i)
			}
		}
	} else {
		ctr.TargetedWakes++
		woken := 0
		for i := 0; mask != 0 && i < rt.cfg.Procs && woken < wakeFanout; i++ {
			if mask&(1<<uint(i)) != 0 {
				rt.wakeWorker(i)
				mask &^= 1 << uint(i)
				woken++
			}
		}
	}
}

// place resolves an affinity specification against Table 1's semantics,
// filling the task's placement fields. Task-affinity sets are resolved
// and inserted under placeMu by the caller.
func (rt *Runtime) place(t *task, a core.Affinity, spawner int) {
	p := rt.cfg.Procs
	if rt.pol.IgnoreHints {
		t.class, t.server = core.ClassPlain, int(rt.rr.Add(1)-1)%p
		return
	}
	switch a.Kind {
	case core.AffNone:
		t.class, t.server = core.ClassPlain, spawner
	case core.AffDefault, core.AffSimple:
		t.class, t.server, t.slot, t.affObj = core.ClassObjectBound, rt.cfg.Home(a.TaskObj), rt.slotOf(a.TaskObj), a.TaskObj
	case core.AffObject:
		t.class, t.server, t.slot, t.affObj = core.ClassObjectBound, rt.cfg.Home(a.ObjectObj), rt.slotOf(a.ObjectObj), a.ObjectObj
	case core.AffTaskObject:
		t.class, t.server, t.slot, t.affObj = core.ClassObjectBound, rt.cfg.Home(a.ObjectObj), rt.slotOf(a.TaskObj), a.TaskObj
	case core.AffProcessor:
		sv := a.Processor % p
		if sv < 0 {
			sv += p
		}
		t.class, t.server = core.ClassProcessor, sv
	case core.AffTask:
		panic("native: AffTask placement must go through placeSet")
	default:
		panic(fmt.Sprintf("native: unknown affinity kind %d", a.Kind))
	}
}

// placeSet places and inserts one task-affinity set member, returning
// the server it went to. Lookup, insertion, and the split check run
// under placeMu so a concurrent whole-set steal can never interleave
// between placement and enqueue.
func (rt *Runtime) placeSet(t *task, obj int64) int {
	t.class, t.slot, t.affObj = core.ClassTaskSet, rt.slotOf(obj), obj
	rt.placeMu.Lock()
	sv, ok := rt.setHome[obj]
	if !ok {
		if rt.pol.PlaceSetsLeastLoaded {
			sv = rt.leastLoaded()
		} else {
			sv = int(rt.rr.Add(1)-1) % rt.cfg.Procs
		}
		rt.setHome[obj] = sv
	}
	t.server = sv
	if rt.setHome[obj] != t.server {
		rt.setSplits.Add(1)
	}
	rt.insert(t)
	rt.placeMu.Unlock()
	return sv
}

// leastLoaded returns the worker with the fewest queued tasks (ties to
// the lowest id). Called under placeMu; the per-worker counts are
// atomics, so the scan is a consistent-enough snapshot.
func (rt *Runtime) leastLoaded() int {
	best, bestQ := 0, int64(1)<<62
	for i, w := range rt.workers {
		if q := w.queued.Load(); q < bestQ {
			best, bestQ = i, q
		}
	}
	return best
}

// insert pushes t onto its server's queues (taking that worker's lock).
func (rt *Runtime) insert(t *task) {
	w := rt.workers[t.server]
	w.mu.Lock()
	if t.slot >= 0 {
		q := &w.slots[t.slot]
		q.push(t)
		w.nonEmpty.add(q)
	} else {
		w.plain.push(t)
	}
	w.queued.Add(1)
	w.mu.Unlock()
	rt.queuedTotal.Add(1)
}

// insertAndWake inserts t and applies the wake policy. The task's name
// and server are captured before the insert publishes it: once queued,
// another worker may steal it (rewriting server), run it, and recycle
// the record.
func (rt *Runtime) insertAndWake(t *task, from int) {
	name, server := t.name, t.server
	rt.insert(t)
	rt.trace(rt.workers[from], trace.KindEnqueue, -1, name, int64(server))
	rt.wakeAfterEnqueue(server, from)
}

// spawn creates, places, and enqueues one task on behalf of ctx.
func (rt *Runtime) spawn(c *Ctx, name string, a core.Affinity, mon *Monitor, fn func(*Ctx)) {
	from := c.w.id
	rt.cfg.Mon.Per[from].Spawns++
	t := rt.newTask()
	t.name, t.fn, t.mon = name, fn, mon
	t.scope = c.scope
	if t.scope != nil {
		t.scope.n.Add(1)
	}
	rt.live.Add(1)
	if !rt.pol.IgnoreHints && a.Kind == core.AffTask {
		server := rt.placeSet(t, a.TaskObj) // t is published after this
		rt.trace(c.w, trace.KindEnqueue, -1, name, int64(server))
		rt.wakeAfterEnqueue(server, from)
		return
	}
	rt.place(t, a, from)
	rt.insertAndWake(t, from)
}

// take removes the next task for w: local queues first, then stealing.
func (rt *Runtime) take(w *worker) *task {
	w.mu.Lock()
	t := rt.takeLocal(w)
	w.mu.Unlock()
	if t != nil {
		return t
	}
	return rt.steal(w)
}

// takeLocal mirrors the simulator's local dispatch priority: the
// task-affinity queue being drained back to back, then the non-empty
// list, then the plain queue. Called with w.mu held.
func (rt *Runtime) takeLocal(w *worker) *task {
	if w.cur != nil && !w.cur.empty() {
		t := w.cur.pop()
		rt.afterSlotPop(w, w.cur)
		rt.noteDequeued(w, 1)
		return t
	}
	w.cur = nil
	if q := w.nonEmpty.head; q != nil {
		t := q.pop()
		rt.afterSlotPop(w, q)
		if !q.empty() {
			w.cur = q
		}
		rt.noteDequeued(w, 1)
		return t
	}
	if t := w.plain.pop(); t != nil {
		rt.noteDequeued(w, 1)
		return t
	}
	return nil
}

func (rt *Runtime) afterSlotPop(w *worker, q *taskQueue) {
	if q.empty() {
		w.nonEmpty.removeQ(q)
		if w.cur == q {
			w.cur = nil
		}
	}
}

// noteDequeued accounts n tasks removed from w's queues (w.mu held).
func (rt *Runtime) noteDequeued(w *worker, n int) {
	w.queued.Add(int64(-n))
	rt.queuedTotal.Add(int64(-n))
}

// steal scans victims for work under placeMu (which serializes steals
// and keeps whole-set moves atomic with respect to set placement),
// preferring same-cluster victims when the policy asks for it.
func (rt *Runtime) steal(w *worker) *task {
	if rt.pol.DisableStealing || rt.queuedTotal.Load() == 0 {
		return nil
	}
	rt.placeMu.Lock()
	defer rt.placeMu.Unlock()
	clusterOnly := rt.clusterOnly.Load()
	if rt.pol.ClusterStealFirst || clusterOnly {
		if t := rt.stealScan(w, rt.ringCluster[w.id]); t != nil {
			return t
		}
		if clusterOnly {
			return nil
		}
		return rt.stealScan(w, rt.ringRemote[w.id])
	}
	return rt.stealScan(w, rt.ringFlat[w.id])
}

// stealScan probes one victim ring in order.
func (rt *Runtime) stealScan(w *worker, ring []int) *task {
	ctr := &rt.cfg.Mon.Per[w.id]
	for _, vid := range ring {
		v := rt.workers[vid]
		if v.queued.Load() == 0 {
			continue
		}
		ctr.StealTries++
		t := rt.stealFrom(v, w)
		if t == nil {
			continue
		}
		if rt.sameCluster(w.id, vid) {
			ctr.StealsLocal++
		} else {
			ctr.StealsRemote++
		}
		rt.trace(w, trace.KindSteal, w.id, t.name, int64(vid))
		return t
	}
	return nil
}

// stealFrom takes work from victim v for thief w, with the paper's
// preference order: a whole task-affinity set, a plain task, and finally
// (reluctantly) one object-bound task from a backlogged victim. Called
// under placeMu.
func (rt *Runtime) stealFrom(v, w *worker) *task {
	// A whole task-affinity set (ClassTaskSet at the head of some slot):
	// drain every member under the victim's lock, re-home the set, and
	// push the rest onto the thief's matching slot for back-to-back
	// servicing.
	if rt.pol.StealWholeSets {
		v.mu.Lock()
		var moved []*task
		for q := v.nonEmpty.head; q != nil; q = q.nextQ {
			head := q.head
			if head == nil || head.class != core.ClassTaskSet {
				continue
			}
			obj := head.affObj
			for {
				t := q.popMatching(obj)
				if t == nil {
					break
				}
				moved = append(moved, t)
			}
			rt.afterSlotPop(v, q)
			rt.noteDequeued(v, len(moved))
			rt.setHome[obj] = w.id
			break
		}
		v.mu.Unlock()
		if len(moved) > 0 {
			first := moved[0]
			first.server = w.id
			if len(moved) > 1 {
				w.mu.Lock()
				for _, t := range moved[1:] {
					t.server = w.id
					tq := &w.slots[t.slot]
					tq.push(t)
					w.nonEmpty.add(tq)
				}
				w.queued.Add(int64(len(moved) - 1))
				w.cur = &w.slots[first.slot]
				w.mu.Unlock()
				rt.queuedTotal.Add(int64(len(moved) - 1))
			}
			rt.cfg.Mon.Per[w.id].SetSteals++
			return first
		}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	// A plain or processor-affinity task: scan past pinned tasks, taking
	// a pinned head only from a backlogged victim.
	for t := v.plain.head; t != nil; t = t.next {
		if t.class == core.ClassProcessor {
			continue
		}
		v.plain.remove(t)
		rt.noteDequeued(v, 1)
		return t
	}
	if t := v.plain.head; t != nil && v.queued.Load() >= 2 {
		v.plain.remove(t)
		rt.noteDequeued(v, 1)
		return t
	}
	// Last resort: one object-bound (or task-set, if set stealing is
	// off) task from some slot, only from a backlogged victim.
	for q := v.nonEmpty.head; q != nil; q = q.nextQ {
		head := q.head
		if head == nil {
			continue
		}
		if head.class == core.ClassObjectBound && (!rt.pol.StealObjectBound || v.queued.Load() < 2) {
			continue
		}
		if head.class == core.ClassTaskSet && rt.pol.StealWholeSets {
			// Would split a set the whole-set pass chose not to move.
			continue
		}
		q.remove(head)
		rt.afterSlotPop(v, q)
		rt.noteDequeued(v, 1)
		return head
	}
	return nil
}

// runTask executes one task to completion on w, with perfmon and trace
// accounting, monitor wrapping, panic recovery, and scope/termination
// bookkeeping.
func (rt *Runtime) runTask(w *worker, t *task) {
	start := time.Now()
	ctr := &rt.cfg.Mon.Per[w.id]
	ctr.TasksRun++
	if t.server == w.id {
		ctr.TasksAtHome++
	}
	rt.trace(w, trace.KindRun, w.id, t.name, 0)
	c := &Ctx{w: w, rt: rt, scope: t.scope}
	rt.execute(c, t)
	rt.trace(w, trace.KindDone, w.id, t.name, 0)
	w.busyNS += time.Since(start).Nanoseconds()
	if t.scope != nil {
		rt.scopeDone(t.scope)
	}
	rt.freeTask(t)
	if rt.live.Add(-1) == 0 {
		rt.doneOnce.Do(func() { close(rt.done) })
	}
}

func (rt *Runtime) execute(c *Ctx, t *task) {
	defer func() {
		if r := recover(); r != nil {
			rt.recordFailure(&TaskFailure{
				Task:  t.name,
				Proc:  c.w.id,
				Time:  rt.nowNS(),
				Value: r,
				Stack: string(debug.Stack()),
			})
		}
	}()
	if t.mon != nil {
		c.Lock(t.mon)
		defer c.Unlock(t.mon)
	}
	t.fn(c)
}

// Ctx is the native execution context of one running task.
type Ctx struct {
	w     *worker
	rt    *Runtime
	scope *scope
}

// ProcID returns the executing worker.
func (c *Ctx) ProcID() int { return c.w.id }

// Now returns wall-clock nanoseconds since Run started.
func (c *Ctx) Now() int64 { return c.rt.nowNS() }

// Spawn creates and enqueues a task with the given affinity; mon, when
// non-nil, makes it a mutex function on that monitor.
func (c *Ctx) Spawn(name string, a core.Affinity, mon *Monitor, fn func(*Ctx)) {
	c.rt.spawn(c, name, a, mon, fn)
}

// WaitFor runs body and then blocks until every task spawned in its
// dynamic extent has completed. The waiting worker helps: it executes
// other ready tasks (its own queues first, then stealing) and parks only
// when there is nothing to run, so a single worker can always drain the
// tasks its own waitfor is blocked on.
func (c *Ctx) WaitFor(body func()) {
	sc := &scope{}
	old := c.scope
	c.scope = sc
	body()
	c.scope = old
	c.rt.waitScope(c, sc)
}
