// Package native executes COOL programs on real goroutines: one worker
// goroutine per simulated processor, each owning the paper's queue
// structure (a plain/object queue plus a hashed array of task-affinity
// queues with a non-empty list), with whole-set stealing, reluctant
// object-affinity stealing, and optional cluster-restricted stealing.
//
// The package mirrors the simulator scheduler in internal/core queue for
// queue and steal discipline, but time is wall-clock nanoseconds and
// synchronization is real (sync.Mutex monitors, channel parking). A
// single native worker applies the identical dispatch priority as the
// simulator's server — current task-affinity queue back to back, then
// the non-empty list, then the plain queue — so a P=1 native run
// executes tasks in exactly the simulated order, which the differential
// harness in internal/xcheck exploits.
package native

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/coolrts/cool/internal/core"
	"github.com/coolrts/cool/internal/fault"
	"github.com/coolrts/cool/internal/perfmon"
	"github.com/coolrts/cool/internal/trace"
)

// wakeFanout is the number of parked workers a targeted wakeup notifies
// before the machine-wide backlog forces a broadcast (same constant as
// the simulator scheduler).
const wakeFanout = 4

// Config describes the native machine: worker count, cluster topology
// (which steers victim order, not memory), and the scheduling policy.
type Config struct {
	Procs       int
	ClusterSize int
	PageSize    int64 // for the two-modulo task-affinity slot hash
	Pol         core.Policy

	// Home maps an object address to its home worker (the address-space
	// lookup, supplied by the embedding runtime with any locking it
	// needs). Required.
	Home func(addr int64) int

	// Mon receives per-worker counters. Every worker writes only its own
	// row, so the shared monitor needs no locking. Required.
	Mon *perfmon.Monitor

	// Invoke runs a payload-carrying task (one spawned with SpawnPayload).
	// The embedding runtime supplies a single adapter here once instead of
	// wrapping every spawned function in a fresh closure — the payload
	// travels through the task record as an `any`, which for func values
	// is an allocation-free conversion. Required only if SpawnPayload is
	// used.
	Invoke func(*Ctx, any)

	// TraceCapacity, when positive, bounds the merged scheduler event
	// trace (timestamps are wall-clock nanoseconds since Run).
	TraceCapacity int

	// Faults, when non-nil, is the fault plan to inject, with event
	// times and durations read as wall-clock nanoseconds since Run
	// started. The plan must already be validated (Plan.Validate) by
	// the embedding runtime. MemDegrade events are ignored — there is
	// no memory system to degrade natively.
	Faults *fault.Plan

	// Retry enables transient-failure recovery (see RetryConfig). The
	// zero value stops the run on the first aborted launch.
	Retry RetryConfig

	// DeadlineNS, when positive, stops runs still live past this many
	// wall-clock nanoseconds with a *DeadlineError.
	DeadlineNS int64

	// NoProgressNS, when positive, arms the watchdog: a run in which no
	// task completes for this long while work is outstanding stops with
	// a *NoProgressError instead of hanging.
	NoProgressNS int64
}

// TaskFailure reports a panicked task. The embedding runtime converts it
// to its public typed error.
type TaskFailure struct {
	Task     string
	Proc     int
	Time     int64 // nanoseconds since Run started
	Value    any
	Stack    string
	Injected bool // panic planted by a fault plan, not application code
}

func (f *TaskFailure) Error() string {
	return fmt.Sprintf("native: task %q panicked on P%d at %dns: %v", f.Task, f.Proc, f.Time, f.Value)
}

// task is one spawned task record. Records are pooled: a completed task
// is zeroed and reused by a later spawn.
type task struct {
	name    string
	fn      func(*Ctx) // nil for payload tasks, run through Config.Invoke
	payload any
	class   core.Class
	server  int
	slot    int   // task-affinity queue index, -1 for the plain queue
	affObj  int64 // address identifying the task-affinity set (0 if none)
	scope   *scope
	mon     *Monitor // mutex-function monitor, locked around fn

	// Fault-injection state (zero when no plan is armed): the per-name
	// spawn index assigned by the injector, whether the injector tracks
	// this name, a planted panic, and the count of aborted launch
	// attempts so far.
	spawnIdx int
	tracked  bool
	injPanic bool
	aborts   int

	// ctx is the execution context handed to the task body, embedded in
	// the pooled record so running a task allocates nothing. It is valid
	// only while the task executes on its worker.
	ctx Ctx

	// Intrusive queue links.
	next, prev *task
	q          *taskQueue
}

// worker is one executor goroutine's scheduling state. The queue fields
// are guarded by mu; busyNS/idleNS and events are owned by the worker's
// goroutine (read only after Run returns).
type worker struct {
	id       int
	mu       sync.Mutex
	plain    taskQueue
	slots    []taskQueue
	nonEmpty nonEmptyList
	cur      *taskQueue // slot being drained back to back
	queued   atomic.Int64

	// stealable counts the queued tasks any thief may take outright
	// (plain tasks and task-affinity set members — not processor-pinned
	// or object-bound tasks, which are stealable only from a backlogged
	// victim). A thief reads it lock-free to skip victims where a probe
	// is guaranteed to fail: queued == 1 and stealable == 0 means the one
	// task is pinned or object-bound, which no steal rule takes from a
	// non-backlogged victim.
	stealable atomic.Int64

	// setScratch batches the members of a set being moved by stealSet,
	// reused across steals to keep the move allocation-free.
	setScratch []*task

	wake  chan struct{} // cap 1; parking/wakeup token
	timer *time.Timer   // reused across timed parks; nil until first use

	// fev is this worker's share of the fault plan (nil without one),
	// consumed by the worker's own goroutine at dispatch points.
	fev *workerFaults

	busyNS, idleNS int64
	events         []trace.Event
}

// Runtime is one native program execution.
type Runtime struct {
	cfg     Config
	pol     core.Policy
	workers []*worker

	// Static victim rings in (thief+d)%P probe order (processors never
	// retire natively, so they are built once).
	ringCluster [][]int
	ringRemote  [][]int
	ringFlat    [][]int

	// shards is the task-affinity set table, split across numSetShards
	// locks so set placement and whole-set steals of unrelated sets
	// never serialize on each other. Together with the per-worker queue
	// mutexes this replaces the old global placement lock: an owner-local
	// push or pop takes exactly one lock (its own), a set placement takes
	// the home worker's lock plus one shard, and a steal takes the two
	// worker locks involved (in ascending id order) plus at most one
	// shard. "Sets never split" stays an invariant because every insert
	// of a set member revalidates the set's home under its shard lock,
	// and every whole-set move re-homes the set under that same lock
	// while holding the victim's queue lock.
	shards []setShard

	rr          atomic.Int64 // round-robin cursor (Base mode, set spread)
	queuedTotal atomic.Int64
	parked      atomic.Uint64 // bitmask of parked workers
	live        atomic.Int64  // tasks spawned but not yet completed
	done        chan struct{} // closed when live drains to zero
	doneOnce    sync.Once

	clusterOnly atomic.Bool // dynamic cluster-stealing flag
	setSplits   atomic.Int64

	failMu sync.Mutex
	fail   error

	// Robustness state (see fault.go). stopc is closed by stop() to
	// unwind every worker when a deadline, watchdog, or exhausted retry
	// budget aborts the run; dead is the bitmask of retired workers,
	// published before a retiring worker drains its queues. armed is
	// true when any robustness feature (faults, retries, deadline,
	// watchdog) is active — the fault-free fast paths stay branchless
	// beyond one flag or atomic load.
	stopc     chan struct{}
	stopping  atomic.Bool
	stopOnce  sync.Once
	dead      atomic.Uint64
	armed     bool
	inj       *injector
	retry     RetryConfig
	retries   retryQueue
	completed atomic.Int64 // tasks run to completion (watchdog progress)
	tkScratch perfmon.Counters
	tkDone    sync.WaitGroup

	deadlineNS   int64
	noProgressNS int64

	pool    sync.Pool
	start   time.Time
	elapsed atomic.Int64
	ran     bool
}

// New builds a native runtime. The configuration must carry a Home
// lookup and a perfmon monitor with one row per worker.
func New(cfg Config) (*Runtime, error) {
	if cfg.Procs <= 0 || cfg.Procs > 64 {
		return nil, fmt.Errorf("native: worker count %d out of range [1,64]", cfg.Procs)
	}
	if cfg.ClusterSize <= 0 {
		return nil, fmt.Errorf("native: ClusterSize must be positive")
	}
	if cfg.PageSize <= 0 {
		return nil, fmt.Errorf("native: PageSize must be positive")
	}
	if cfg.Home == nil || cfg.Mon == nil || len(cfg.Mon.Per) < cfg.Procs {
		return nil, fmt.Errorf("native: Home lookup and a %d-row perfmon monitor are required", cfg.Procs)
	}
	pol := cfg.Pol
	if pol.QueueArraySize <= 0 {
		pol.QueueArraySize = 64
	}
	rt := &Runtime{
		cfg:    cfg,
		pol:    pol,
		shards: make([]setShard, numSetShards),
		done:   make(chan struct{}),
		stopc:  make(chan struct{}),
	}
	rt.retry = cfg.Retry
	rt.deadlineNS = cfg.DeadlineNS
	rt.noProgressNS = cfg.NoProgressNS
	rt.armed = cfg.Faults != nil || rt.retry.enabled() || rt.deadlineNS > 0 || rt.noProgressNS > 0
	for i := range rt.shards {
		rt.shards[i].home = make(map[int64]int)
	}
	rt.clusterOnly.Store(pol.ClusterStealingOnly)
	rt.pool.New = func() any { return new(task) }
	rt.workers = make([]*worker, cfg.Procs)
	for i := range rt.workers {
		w := &worker{id: i, slots: make([]taskQueue, pol.QueueArraySize), wake: make(chan struct{}, 1)}
		for j := range w.slots {
			w.slots[j].slotIdx = j
		}
		rt.workers[i] = w
	}
	rt.buildVictimRings()
	if cfg.Faults != nil {
		rt.armFaults(cfg.Faults)
	}
	return rt, nil
}

func (rt *Runtime) sameCluster(p, q int) bool {
	return p/rt.cfg.ClusterSize == q/rt.cfg.ClusterSize
}

func (rt *Runtime) buildVictimRings() {
	n := rt.cfg.Procs
	rt.ringCluster = make([][]int, n)
	rt.ringRemote = make([][]int, n)
	rt.ringFlat = make([][]int, n)
	for t := 0; t < n; t++ {
		for d := 1; d < n; d++ {
			v := (t + d) % n
			rt.ringFlat[t] = append(rt.ringFlat[t], v)
			if rt.sameCluster(t, v) {
				rt.ringCluster[t] = append(rt.ringCluster[t], v)
			} else {
				rt.ringRemote[t] = append(rt.ringRemote[t], v)
			}
		}
	}
}

// slotOf maps a task-affinity object to its queue index, mixing line and
// page numbers exactly like the simulator scheduler.
func (rt *Runtime) slotOf(addr int64) int {
	h := addr>>6 + addr/rt.cfg.PageSize
	return int(h % int64(rt.pol.QueueArraySize))
}

// nowNS returns nanoseconds since Run started.
func (rt *Runtime) nowNS() int64 { return time.Since(rt.start).Nanoseconds() }

// ElapsedNanos returns the wall-clock duration of Run.
func (rt *Runtime) ElapsedNanos() int64 { return rt.elapsed.Load() }

// BusyIdleNanos returns the summed per-worker busy (running tasks) and
// idle (parked) nanoseconds. Call after Run.
func (rt *Runtime) BusyIdleNanos() (busy, idle int64) {
	for _, w := range rt.workers {
		busy += w.busyNS
		idle += w.idleNS
	}
	return busy, idle
}

// SetSplits returns how often a task-affinity set was observed split
// across workers (an invariant violation; must be zero under the default
// whole-set stealing policy).
func (rt *Runtime) SetSplits() int64 { return rt.setSplits.Load() }

// QueuedTasks returns the tasks currently enqueued machine-wide.
func (rt *Runtime) QueuedTasks() int { return int(rt.queuedTotal.Load()) }

// SetClusterStealingOnly flips the cluster-stealing restriction at run
// time (the paper's dynamically manipulated runtime flag, §6.3).
func (rt *Runtime) SetClusterStealingOnly(on bool) { rt.clusterOnly.Store(on) }

// Run executes main as the root task on worker 0 and returns after every
// task has completed. A panicking task aborts with *TaskFailure (the
// remaining tasks still drain).
func (rt *Runtime) Run(main func(*Ctx)) error {
	if rt.ran {
		return fmt.Errorf("native: Run called twice")
	}
	rt.ran = true
	rt.start = time.Now()
	root := rt.newTask()
	root.name, root.fn = "main", main
	root.class, root.server, root.slot = core.ClassProcessor, 0, -1
	rt.live.Store(1)
	rt.insertAndWake(root, 0)
	if rt.armed {
		rt.tkDone.Add(1)
		go rt.timekeeper()
	}
	var wg sync.WaitGroup
	for _, w := range rt.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			rt.loop(w)
		}(w)
	}
	wg.Wait()
	rt.tkDone.Wait()
	rt.elapsed.Store(time.Since(rt.start).Nanoseconds())
	rt.failMu.Lock()
	defer rt.failMu.Unlock()
	if rt.fail != nil {
		return rt.fail
	}
	return nil
}

// TraceEvents returns the merged per-worker event buffers ordered by
// timestamp, bounded by Config.TraceCapacity. Call after Run.
func (rt *Runtime) TraceEvents() []trace.Event {
	var all []trace.Event
	for _, w := range rt.workers {
		all = append(all, w.events...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time < all[j].Time })
	if rt.cfg.TraceCapacity > 0 && len(all) > rt.cfg.TraceCapacity {
		all = all[:rt.cfg.TraceCapacity]
	}
	return all
}

// trace records one event into the worker's private buffer (merged and
// sorted by TraceEvents). Each worker writes only its own buffer, so
// recording needs no locking.
func (rt *Runtime) trace(w *worker, kind trace.Kind, proc int, name string, arg int64) {
	if rt.cfg.TraceCapacity <= 0 || len(w.events) >= rt.cfg.TraceCapacity {
		return
	}
	w.events = append(w.events, trace.Event{Time: rt.nowNS(), Proc: int32(proc), Kind: kind, Task: name, Arg: arg})
}

func (rt *Runtime) newTask() *task {
	t := rt.pool.Get().(*task)
	*t = task{slot: -1}
	return t
}

func (rt *Runtime) freeTask(t *task) {
	*t = task{}
	rt.pool.Put(t)
}

func (rt *Runtime) recordFailure(err error) {
	rt.failMu.Lock()
	if rt.fail == nil {
		rt.fail = err
	}
	rt.failMu.Unlock()
}

// parkRetryLimit is how many consecutive failed takes re-probe
// immediately while work is queued somewhere; past it the worker
// concludes the queued work is work it may not take (pinned heads,
// reluctantly-stolen object-bound tasks) and backs off exponentially
// instead of spinning on the victims' queue locks — spinning would
// slow the very workers running those tasks.
const (
	parkRetryLimit = 4
	backoffBase    = 20 * time.Microsecond
	backoffCap     = time.Millisecond
)

// stallBackoff returns the timed-park duration for the given
// consecutive-miss count: the first timed park (misses ==
// parkRetryLimit) waits backoffBase, each further miss doubles it, and
// the wait saturates at backoffCap. Short first waits keep the reaction
// time to freshly stealable work low; the exponential cap keeps a
// worker staring at genuinely untakeable work from burning the cores
// running it.
func stallBackoff(misses int) time.Duration {
	k := misses - parkRetryLimit
	switch {
	case k < 0:
		k = 0
	case k >= 6: // backoffBase<<6 already exceeds the cap
		return backoffCap
	}
	d := backoffBase << uint(k)
	if d > backoffCap {
		return backoffCap
	}
	return d
}

// loop is one worker's scheduling loop: local queues, stealing, parking.
// Each iteration is a dispatch point: due fault events apply first (a
// Fail event retires the worker and exits the loop), and a stopped run
// exits before taking more work.
func (rt *Runtime) loop(w *worker) {
	misses := 0
	for {
		if rt.armed {
			if rt.stopped() {
				return
			}
			if rt.checkFaults(w, true) {
				return // retired
			}
		}
		if t := rt.take(w); t != nil {
			misses = 0
			rt.dispatch(w, t)
			continue
		}
		select {
		case <-rt.done:
			return
		default:
		}
		misses++
		rt.park(w, misses)
	}
}

// dispatch runs one dequeued task, first consulting the transient-fault
// injections (flaky windows, planted launch failures) that may abort
// the launch and schedule a retry instead.
func (rt *Runtime) dispatch(w *worker, t *task) {
	if rt.armed && rt.launchAborted(w, t) {
		return
	}
	rt.runTask(w, t)
}

// park publishes the worker as idle, rechecks for work (closing the
// publish/recheck race against enqueuers), and sleeps until woken — or,
// when unstealable work is backlogged elsewhere, for an exponentially
// growing backoff.
func (rt *Runtime) park(w *worker, misses int) {
	rt.setParked(w.id, true)
	defer rt.setParked(w.id, false)
	queued := rt.queuedTotal.Load() > 0
	if queued && misses < parkRetryLimit {
		return // work appeared between the failed take and publishing
	}
	start := time.Now()
	if queued {
		rt.timedPark(w, stallBackoff(misses))
	} else {
		select {
		case <-w.wake:
		case <-rt.done:
		case <-rt.stopc:
		}
	}
	w.idleNS += time.Since(start).Nanoseconds()
}

// timedPark sleeps until a wake token, shutdown, or the deadline d,
// reusing the worker's timer — a fresh time.After channel per park
// would allocate on what is a hot path for stalled workers.
func (rt *Runtime) timedPark(w *worker, d time.Duration) {
	if w.timer == nil {
		w.timer = time.NewTimer(d)
	} else {
		w.timer.Reset(d)
	}
	fired := false
	select {
	case <-w.wake:
	case <-rt.done:
	case <-rt.stopc:
	case <-w.timer.C:
		fired = true
	}
	if !fired && !w.timer.Stop() {
		<-w.timer.C // the timer fired anyway; drain for the next Reset
	}
}

func (rt *Runtime) setParked(id int, on bool) {
	bit := uint64(1) << uint(id)
	for {
		old := rt.parked.Load()
		var next uint64
		if on {
			next = old | bit
		} else {
			next = old &^ bit
		}
		if rt.parked.CompareAndSwap(old, next) {
			return
		}
	}
}

// wakeWorker hands worker i a wake token if none is pending.
func (rt *Runtime) wakeWorker(i int) {
	select {
	case rt.workers[i].wake <- struct{}{}:
	default:
	}
}

// wakeAfterEnqueue mirrors the simulator's wake policy: the target
// worker is notified immediately; while the machine-wide backlog is
// shallow only the first wakeFanout parked workers are woken, falling
// back to waking every parked worker once queues back up. Wake counters
// are attributed to the enqueueing worker's row (the simulator charges
// the target server; totals remain comparable, attribution is
// documented in DESIGN.md §9).
//
// A wake token is deposited only for workers whose parked bit is set.
// This cannot lose a wakeup: a parking worker publishes its bit before
// re-reading the queue count, and an enqueuer bumps the queue count
// before reading the mask (both are sequentially consistent atomics) —
// so either the parker sees the new work and returns, or the enqueuer
// sees the parker's bit and wakes it.
func (rt *Runtime) wakeAfterEnqueue(target, from int) {
	if rt.parked.Load()&(1<<uint(target)) != 0 {
		rt.wakeWorker(target)
	}
	if rt.pol.DisableStealing {
		return
	}
	ctr := &rt.cfg.Mon.Per[from]
	mask := rt.parked.Load()
	if rt.queuedTotal.Load() > wakeFanout {
		ctr.BroadcastWakes++
		for i := 0; mask != 0 && i < rt.cfg.Procs; i++ {
			if mask&(1<<uint(i)) != 0 {
				rt.wakeWorker(i)
				mask &^= 1 << uint(i)
			}
		}
	} else {
		ctr.TargetedWakes++
		woken := 0
		for i := 0; mask != 0 && i < rt.cfg.Procs && woken < wakeFanout; i++ {
			if mask&(1<<uint(i)) != 0 {
				rt.wakeWorker(i)
				mask &^= 1 << uint(i)
				woken++
			}
		}
	}
}

// place resolves an affinity specification against Table 1's semantics,
// filling the task's placement fields. Task-affinity sets are resolved
// and inserted by placeSet, under their set-table shard.
func (rt *Runtime) place(t *task, a core.Affinity, spawner int) {
	p := rt.cfg.Procs
	if rt.pol.IgnoreHints {
		t.class, t.server = core.ClassPlain, int(rt.rr.Add(1)-1)%p
		return
	}
	switch a.Kind {
	case core.AffNone:
		t.class, t.server = core.ClassPlain, spawner
	case core.AffDefault, core.AffSimple:
		t.class, t.server, t.slot, t.affObj = core.ClassObjectBound, rt.cfg.Home(a.TaskObj), rt.slotOf(a.TaskObj), a.TaskObj
	case core.AffObject:
		t.class, t.server, t.slot, t.affObj = core.ClassObjectBound, rt.cfg.Home(a.ObjectObj), rt.slotOf(a.ObjectObj), a.ObjectObj
	case core.AffTaskObject:
		t.class, t.server, t.slot, t.affObj = core.ClassObjectBound, rt.cfg.Home(a.ObjectObj), rt.slotOf(a.TaskObj), a.TaskObj
	case core.AffProcessor:
		sv := a.Processor % p
		if sv < 0 {
			sv += p
		}
		t.class, t.server = core.ClassProcessor, sv
	case core.AffTask:
		panic("native: AffTask placement must go through placeSet")
	default:
		panic(fmt.Sprintf("native: unknown affinity kind %d", a.Kind))
	}
}

// lockWorker acquires w's queue mutex, counting a missed TryLock fast
// path against the acting worker's row (actor is the id of the worker
// whose goroutine is running — each row is still written only by its
// own goroutine).
func (rt *Runtime) lockWorker(w *worker, actor int) {
	rt.lockWorkerCtr(w, &rt.cfg.Mon.Per[actor])
}

// lockWorkerCtr is lockWorker with an explicit contention sink, for
// callers without a perfmon row of their own (the timekeeper goroutine
// charges its scratch counters to keep the one-writer-per-row rule).
func (rt *Runtime) lockWorkerCtr(w *worker, ctr *perfmon.Counters) {
	if w.mu.TryLock() {
		return
	}
	ctr.LockContention++
	w.mu.Lock()
}

// placeSet places and inserts one task-affinity set member, returning
// the server it went to. The set's home is resolved under its shard
// lock; while that lock is held no whole-set steal can re-home the set,
// so if the home worker's lock can be grabbed without blocking
// (TryLock — which cannot deadlock even against the worker-before-shard
// global order, because it never waits) the insert completes in one
// shard acquisition. Otherwise the placement falls back to a retry
// loop that takes the locks in the global order (worker, then shard)
// and revalidates the home: if a concurrent whole-set steal re-homed
// the set in between, the placement chases the new home instead of
// splitting the set.
//
// Worker retirement adds one more reason to revalidate: a home may be
// dead (checked under the shard lock, and re-checked under the home
// worker's queue lock — the retire protocol publishes the dead bit
// before draining, so an insert that acquires the queue lock after the
// drain always sees it). A dead home is re-homed to a survivor under
// the shard lock, and every member chases the same record, so the set
// moves whole. The dead checks cost one atomic load when no worker has
// retired.
func (rt *Runtime) placeSet(t *task, obj int64, ctr *perfmon.Counters) int {
	t.class, t.slot, t.affObj = core.ClassTaskSet, rt.slotOf(obj), obj
	sh := rt.shardOf(obj)
	for {
		sh.lock(ctr)
		sv, ok := sh.home[obj]
		if !ok {
			if rt.pol.PlaceSetsLeastLoaded {
				sv = rt.leastLoaded()
			} else {
				sv = int(rt.rr.Add(1)-1) % rt.cfg.Procs
			}
		}
		if rt.dead.Load() != 0 && rt.isDead(sv) {
			sv = rt.spreadAlive()
		}
		sh.home[obj] = sv
		if w := rt.workers[sv]; w.mu.TryLock() {
			if rt.dead.Load() == 0 || !rt.isDead(sv) {
				t.server = sv
				rt.pushLocked(w, t)
				w.mu.Unlock()
				sh.mu.Unlock()
				rt.queuedTotal.Add(1)
				return sv
			}
			// The home retired between the shard check and the queue
			// lock; re-home under the still-held shard lock and retry.
			w.mu.Unlock()
			sh.home[obj] = rt.spreadAlive()
			sh.mu.Unlock()
			continue
		}
		ctr.LockContention++
		sh.mu.Unlock()
		for {
			w := rt.workers[sv]
			rt.lockWorkerCtr(w, ctr)
			sh.lock(ctr)
			dead := rt.dead.Load() != 0 && rt.isDead(sv)
			if sh.home[obj] == sv && !dead {
				t.server = sv
				rt.pushLocked(w, t)
				sh.mu.Unlock()
				w.mu.Unlock()
				rt.queuedTotal.Add(1)
				return sv
			}
			// A concurrent whole-set steal moved the set, or the home
			// retired; chase the new (live) home.
			if dead && sh.home[obj] == sv {
				sh.home[obj] = rt.spreadAlive()
			}
			sv = sh.home[obj]
			sh.mu.Unlock()
			w.mu.Unlock()
		}
	}
}

// leastLoaded returns the surviving worker with the fewest queued tasks
// (ties to the lowest id). The per-worker counts are atomics, so the
// lock-free scan is a consistent-enough snapshot for a load-balancing
// heuristic.
func (rt *Runtime) leastLoaded() int {
	dead := rt.dead.Load()
	best, bestQ := 0, int64(1)<<62
	for i, w := range rt.workers {
		if dead&(1<<uint(i)) != 0 {
			continue
		}
		if q := w.queued.Load(); q < bestQ {
			best, bestQ = i, q
		}
	}
	return best
}

// pushLocked adds t to w's queues. Called with w.mu held; the caller
// accounts queuedTotal after releasing the lock.
func (rt *Runtime) pushLocked(w *worker, t *task) {
	if t.slot >= 0 {
		q := &w.slots[t.slot]
		q.push(t)
		w.nonEmpty.add(q)
	} else {
		w.plain.push(t)
	}
	w.queued.Add(1)
	if t.class == core.ClassPlain || t.class == core.ClassTaskSet {
		w.stealable.Add(1)
	}
}

// insert pushes t onto its server's queues (taking that worker's lock
// and no other — the owner-local and cross-worker paths are the same
// single acquisition), returning the worker it went to. A dead server
// is rerouted to a survivor under the target's lock; the extra check is
// one atomic load while no worker has retired.
func (rt *Runtime) insert(t *task, actor int) int {
	return rt.insertFrom(t, &rt.cfg.Mon.Per[actor])
}

// insertFrom is insert with an explicit contention sink (the timekeeper
// goroutine passes its scratch counters).
func (rt *Runtime) insertFrom(t *task, ctr *perfmon.Counters) int {
	for {
		sv := t.server
		w := rt.workers[sv]
		rt.lockWorkerCtr(w, ctr)
		if rt.dead.Load() != 0 && rt.isDead(sv) {
			w.mu.Unlock()
			t.server = rt.rerouteTarget(t)
			continue
		}
		rt.pushLocked(w, t)
		w.mu.Unlock()
		rt.queuedTotal.Add(1)
		return sv
	}
}

// insertAndWake inserts t and applies the wake policy. The task's name
// is captured before the insert publishes it: once queued, another
// worker may steal it, run it, and recycle the record.
func (rt *Runtime) insertAndWake(t *task, from int) {
	name := t.name
	server := rt.insert(t, from)
	rt.trace(rt.workers[from], trace.KindEnqueue, -1, name, int64(server))
	rt.wakeAfterEnqueue(server, from)
}

// spawn creates, places, and enqueues one task on behalf of ctx. Exactly
// one of fn and payload is non-nil; payload tasks run through
// Config.Invoke.
//
// The scope and live counters are bumped only after placement succeeds:
// place runs the user-supplied Home callback, and if that panics (e.g.
// the address lies outside the embedding runtime's space) the counters
// must not charge a task that was never enqueued — a leaked live count
// would keep done from ever closing and hang Run instead of returning
// the recorded failure.
func (rt *Runtime) spawn(c *Ctx, name string, a core.Affinity, mon *Monitor, fn func(*Ctx), payload any) {
	from := c.w.id
	rt.cfg.Mon.Per[from].Spawns++
	t := rt.newTask()
	t.name, t.fn, t.payload, t.mon = name, fn, payload, mon
	t.scope = c.scope
	if in := rt.inj; in != nil && in.tracked[name] {
		in.noteSpawn(t) // assigns the per-name index a fault plan targets
	}
	if !rt.pol.IgnoreHints && a.Kind == core.AffTask {
		if t.scope != nil {
			t.scope.n.Add(1)
		}
		rt.live.Add(1)
		server := rt.placeSet(t, a.TaskObj, &rt.cfg.Mon.Per[from]) // t is published after this
		rt.trace(c.w, trace.KindEnqueue, -1, name, int64(server))
		rt.wakeAfterEnqueue(server, from)
		return
	}
	rt.place(t, a, from) // may panic in cfg.Home; no accounting yet
	if t.scope != nil {
		t.scope.n.Add(1)
	}
	rt.live.Add(1)
	rt.insertAndWake(t, from)
}

// take removes the next task for w: local queues first, then stealing.
// The owner-local fast path touches only w's own lock — and skips even
// that when the atomic queued count already reads empty.
func (rt *Runtime) take(w *worker) *task {
	if w.queued.Load() > 0 {
		rt.lockWorker(w, w.id)
		t := rt.takeLocal(w)
		w.mu.Unlock()
		if t != nil {
			return t
		}
	}
	return rt.steal(w)
}

// takeLocal mirrors the simulator's local dispatch priority: the
// task-affinity queue being drained back to back, then the non-empty
// list, then the plain queue. Called with w.mu held.
func (rt *Runtime) takeLocal(w *worker) *task {
	if w.cur != nil && !w.cur.empty() {
		t := w.cur.pop()
		rt.afterSlotPop(w, w.cur)
		rt.noteDequeued(w, 1)
		rt.noteRemoved(w, t)
		return t
	}
	w.cur = nil
	if q := w.nonEmpty.head; q != nil {
		t := q.pop()
		rt.afterSlotPop(w, q)
		if !q.empty() {
			w.cur = q
		}
		rt.noteDequeued(w, 1)
		rt.noteRemoved(w, t)
		return t
	}
	if t := w.plain.pop(); t != nil {
		rt.noteDequeued(w, 1)
		rt.noteRemoved(w, t)
		return t
	}
	return nil
}

func (rt *Runtime) afterSlotPop(w *worker, q *taskQueue) {
	if q.empty() {
		w.nonEmpty.removeQ(q)
		if w.cur == q {
			w.cur = nil
		}
	}
}

// noteDequeued accounts n tasks removed from w's queues (w.mu held).
func (rt *Runtime) noteDequeued(w *worker, n int) {
	w.queued.Add(int64(-n))
	rt.queuedTotal.Add(int64(-n))
}

// noteRemoved maintains w's stealable hint for one removed task (w.mu
// held; pairs with the increment in pushLocked).
func (rt *Runtime) noteRemoved(w *worker, t *task) {
	if t.class == core.ClassPlain || t.class == core.ClassTaskSet {
		w.stealable.Add(-1)
	}
}

// steal scans victims for work, preferring same-cluster victims when
// the policy asks for it. There is no global steal lock: concurrent
// thieves probing different victims proceed in parallel, and each probe
// synchronizes only with the two workers and (for a set move) the one
// set-table shard involved.
func (rt *Runtime) steal(w *worker) *task {
	if rt.pol.DisableStealing || rt.queuedTotal.Load() == 0 {
		return nil
	}
	clusterOnly := rt.clusterOnly.Load()
	if rt.pol.ClusterStealFirst || clusterOnly {
		if t := rt.stealScan(w, rt.ringCluster[w.id]); t != nil {
			return t
		}
		if clusterOnly {
			return nil
		}
		return rt.stealScan(w, rt.ringRemote[w.id])
	}
	return rt.stealScan(w, rt.ringFlat[w.id])
}

// stealScan probes one victim ring in order. A probe that examined a
// victim and came back empty-handed — the victim drained meanwhile, or
// holds only work the steal rules refuse — counts as a failed steal.
func (rt *Runtime) stealScan(w *worker, ring []int) *task {
	ctr := &rt.cfg.Mon.Per[w.id]
	for _, vid := range ring {
		v := rt.workers[vid]
		q := v.queued.Load()
		if q == 0 {
			continue
		}
		if q < 2 && v.stealable.Load() == 0 {
			// The victim's one queued task is pinned or object-bound;
			// every steal rule refuses it from a non-backlogged victim,
			// so the probe (and its lock) would be wasted.
			continue
		}
		ctr.StealTries++
		t := rt.stealFrom(v, w)
		if t == nil {
			ctr.FailedSteals++
			continue
		}
		if rt.sameCluster(w.id, vid) {
			ctr.StealsLocal++
		} else {
			ctr.StealsRemote++
		}
		rt.trace(w, trace.KindSteal, w.id, t.name, int64(vid))
		return t
	}
	return nil
}

// stealFrom takes work from victim v for thief w, with the paper's
// preference order: a whole task-affinity set, a plain task, and finally
// (reluctantly) one object-bound task from a backlogged victim.
//
// Locking: a probe holds only the victim's queue lock — single-task
// steals hand the task straight to the thief's goroutine, so the
// thief's own queues are never touched and the common case (including
// every failed probe) costs exactly one lock. Only a whole-set move
// adds the thief's lock (stealSet, in ascending global id order — the
// deadlock-avoidance protocol every two-worker path follows) plus the
// one set-table shard involved.
func (rt *Runtime) stealFrom(v, w *worker) *task {
	rt.lockWorker(v, w.id)
	defer v.mu.Unlock()
	if rt.pol.StealWholeSets {
		if t := rt.stealSet(v, w); t != nil {
			return t
		}
	}
	// A plain or processor-affinity task: scan past pinned tasks, taking
	// a pinned head only from a backlogged victim.
	for t := v.plain.head; t != nil; t = t.next {
		if t.class == core.ClassProcessor {
			continue
		}
		v.plain.remove(t)
		rt.noteDequeued(v, 1)
		rt.noteRemoved(v, t)
		return t
	}
	if t := v.plain.head; t != nil && v.queued.Load() >= 2 {
		v.plain.remove(t)
		rt.noteDequeued(v, 1)
		rt.noteRemoved(v, t)
		return t
	}
	// Last resort: one object-bound (or task-set, if set stealing is
	// off) task from some slot, only from a backlogged victim.
	for q := v.nonEmpty.head; q != nil; q = q.nextQ {
		head := q.head
		if head == nil {
			continue
		}
		if head.class == core.ClassObjectBound && (!rt.pol.StealObjectBound || v.queued.Load() < 2) {
			continue
		}
		if head.class == core.ClassTaskSet {
			if rt.pol.StealWholeSets {
				// Would split a set the whole-set pass chose not to move.
				continue
			}
			// Set stealing is off and the policy fell back to taking one
			// member: a deliberate split, counted like the simulator's.
			rt.setSplits.Add(1)
		}
		q.remove(head)
		rt.afterSlotPop(v, q)
		rt.noteDequeued(v, 1)
		rt.noteRemoved(v, head)
		return head
	}
	return nil
}

// stealSet moves one whole task-affinity set from v to thief w: drain
// every member, re-home the set under its shard lock, keep the head for
// the thief to run and queue the rest behind it for back-to-back
// servicing. Called with v.mu held; returns with v.mu still held.
//
// The move needs both worker locks plus the set's shard. A cheap peek
// under v.mu alone rejects the common no-set-queued case before the
// thief's lock is ever taken. Acquiring w.mu second is in order when
// v.id < w.id; out of order it is tried without blocking (TryLock
// cannot deadlock), and on failure both locks are dropped and retaken
// in ascending id order — after which the peek is stale and the scan
// below revalidates everything from scratch.
func (rt *Runtime) stealSet(v, w *worker) *task {
	found := false
	for q := v.nonEmpty.head; q != nil; q = q.nextQ {
		if h := q.head; h != nil && h.class == core.ClassTaskSet {
			found = true
			break
		}
	}
	if !found {
		return nil
	}
	ctr := &rt.cfg.Mon.Per[w.id]
	if v.id < w.id {
		rt.lockWorker(w, w.id)
	} else if !w.mu.TryLock() {
		ctr.LockContention++
		v.mu.Unlock()
		rt.lockWorker(w, w.id)
		rt.lockWorker(v, w.id)
	}
	defer w.mu.Unlock()
	for q := v.nonEmpty.head; q != nil; q = q.nextQ {
		head := q.head
		if head == nil || head.class != core.ClassTaskSet {
			continue
		}
		obj := head.affObj
		sh := rt.shardOf(obj)
		sh.lock(ctr)
		// Queued membership at v implies the shard records v as the
		// set's home (inserts validate under the shard lock, moves
		// drain the victim before releasing it); assert rather than
		// assume — a violation would be a split in the making.
		if sh.home[obj] != v.id {
			rt.setSplits.Add(1)
		}
		sh.home[obj] = w.id
		moved := w.setScratch[:0]
		for {
			t := q.popMatching(obj)
			if t == nil {
				break
			}
			moved = append(moved, t)
		}
		rt.afterSlotPop(v, q)
		rt.noteDequeued(v, len(moved))
		// popMatching matches by object, so the move can carry
		// object-bound tasks naming the set's object along with the set
		// members; the stealable hint counts only some classes, so it is
		// maintained per task.
		for _, t := range moved {
			rt.noteRemoved(v, t)
		}
		sh.mu.Unlock()
		first := moved[0]
		first.server = w.id
		if len(moved) > 1 {
			for _, t := range moved[1:] {
				t.server = w.id
				tq := &w.slots[t.slot]
				tq.push(t)
				w.nonEmpty.add(tq)
				if t.class == core.ClassPlain || t.class == core.ClassTaskSet {
					w.stealable.Add(1)
				}
			}
			w.queued.Add(int64(len(moved) - 1))
			w.cur = &w.slots[first.slot]
			rt.queuedTotal.Add(int64(len(moved) - 1))
		}
		w.setScratch = moved[:0]
		ctr.SetSteals++
		return first
	}
	return nil
}

// runTask executes one task to completion on w, with perfmon and trace
// accounting, monitor wrapping, panic recovery, and scope/termination
// bookkeeping.
func (rt *Runtime) runTask(w *worker, t *task) {
	start := time.Now()
	ctr := &rt.cfg.Mon.Per[w.id]
	ctr.TasksRun++
	if t.server == w.id {
		ctr.TasksAtHome++
	}
	rt.trace(w, trace.KindRun, w.id, t.name, 0)
	t.ctx = Ctx{w: w, rt: rt, scope: t.scope}
	c := &t.ctx
	var startNS int64
	if w.fev != nil {
		startNS = rt.nowNS()
	}
	rt.execute(c, t)
	if fv := w.fev; fv != nil {
		// An active slowdown window stretches the task's own duration
		// by its factor — the straggler sleeps off the difference.
		now := rt.nowNS()
		if d := fv.slowdownPenalty(startNS, now-startNS, now); d > 0 {
			rt.sleep(w, d)
		}
	}
	rt.trace(w, trace.KindDone, w.id, t.name, 0)
	w.busyNS += time.Since(start).Nanoseconds()
	if t.scope != nil {
		rt.scopeDone(t.scope)
	}
	rt.freeTask(t)
	if rt.armed {
		rt.completed.Add(1)
	}
	if rt.live.Add(-1) == 0 {
		rt.doneOnce.Do(func() { close(rt.done) })
	}
}

func (rt *Runtime) execute(c *Ctx, t *task) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(stopUnwind); ok {
			// A stopped run unwound this worker out of a blocked task
			// body; the stop already recorded the run's failure.
			return
		}
		_, injected := r.(InjectedPanic)
		rt.recordFailure(&TaskFailure{
			Task:     t.name,
			Proc:     c.w.id,
			Time:     rt.nowNS(),
			Value:    r,
			Stack:    string(debug.Stack()),
			Injected: injected,
		})
	}()
	if t.injPanic {
		panic(InjectedPanic{Task: t.name})
	}
	if t.mon != nil {
		c.Lock(t.mon)
		c.heldMon = t.mon
		defer func() {
			// heldMon is cleared if a stopped run unwound out of a
			// Cond.Wait while the monitor was released — unlocking it
			// again would corrupt the mutex.
			if c.heldMon == t.mon {
				c.heldMon = nil
				c.Unlock(t.mon)
			}
		}()
	}
	if t.fn != nil {
		t.fn(c)
		return
	}
	rt.cfg.Invoke(c, t.payload)
}

// Ctx is the native execution context of one running task.
type Ctx struct {
	w     *worker
	rt    *Runtime
	scope *scope

	// heldMon tracks the mutex-function monitor currently held by this
	// task, so a stop-unwind out of a Cond.Wait (which releases the
	// monitor) can tell execute's deferred unlock to stand down.
	heldMon *Monitor
}

// ProcID returns the executing worker.
func (c *Ctx) ProcID() int { return c.w.id }

// Now returns wall-clock nanoseconds since Run started.
func (c *Ctx) Now() int64 { return c.rt.nowNS() }

// Spawn creates and enqueues a task with the given affinity; mon, when
// non-nil, makes it a mutex function on that monitor.
func (c *Ctx) Spawn(name string, a core.Affinity, mon *Monitor, fn func(*Ctx)) {
	c.rt.spawn(c, name, a, mon, fn, nil)
}

// SpawnPayload creates and enqueues a task whose body is Config.Invoke
// applied to payload. It lets the embedding runtime avoid allocating a
// per-spawn wrapper closure: the adapter is configured once and the
// payload (typically the user's func value) rides through the pooled
// task record.
func (c *Ctx) SpawnPayload(name string, a core.Affinity, mon *Monitor, payload any) {
	c.rt.spawn(c, name, a, mon, nil, payload)
}

// WaitFor runs body and then blocks until every task spawned in its
// dynamic extent has completed. The waiting worker helps: it executes
// other ready tasks (its own queues first, then stealing) and parks only
// when there is nothing to run, so a single worker can always drain the
// tasks its own waitfor is blocked on.
func (c *Ctx) WaitFor(body func()) {
	sc := &scope{}
	old := c.scope
	c.scope = sc
	body()
	c.scope = old
	c.rt.waitScope(c, sc)
}
