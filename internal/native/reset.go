package native

import (
	"fmt"
	"sync"

	"github.com/coolrts/cool/internal/perfmon"
)

// Reset re-arms a runtime whose previous Run completed cleanly so it
// can Run again without being rebuilt. The warm structures that make
// reuse cheaper than New survive: per-worker task-record freelists,
// the sized scratch slices, the static victim rings, the slot arrays,
// and the shard table's map capacity. Everything the finished run
// touched — channels, counters, the dead mask, set homes, pool and SLO
// state, the fault plan's consumed event cursors — returns to its
// post-New value.
//
// Reset is legal only between runs: never concurrently with Run, and
// only after a clean completion. A failed run (deadline, watchdog,
// panic, abort) may have unwound workers with tasks still queued, and
// those records are unrecoverable — Reset refuses and the caller must
// rebuild. The perfmon monitor is shared with the embedding runtime
// and is NOT zeroed here; the caller owns counter lifecycles.
func (rt *Runtime) Reset() error {
	if !rt.ran {
		return nil // never ran: already pristine
	}
	rt.failMu.Lock()
	fail := rt.fail
	rt.failMu.Unlock()
	if fail != nil {
		return fmt.Errorf("native: Reset after a failed run (%v); rebuild the runtime instead", fail)
	}
	if q := rt.queuedTotal.Load(); q != 0 {
		return fmt.Errorf("native: Reset with %d task(s) still queued", q)
	}
	if l := rt.live.Load(); l != 0 {
		return fmt.Errorf("native: Reset with %d task(s) still live", l)
	}

	// Run has already joined every worker goroutine (allExited), the
	// timekeeper, and the autoscaler. The one straggler possible is a
	// worker goroutine between closing allExited and releasing poolMu
	// in workerExited — holding poolMu for the whole reset orders every
	// store here after that last release, so plain stores are race-free.
	rt.poolMu.Lock()
	defer rt.poolMu.Unlock()

	rt.done = make(chan struct{})
	rt.doneOnce = sync.Once{}
	rt.stopc = make(chan struct{})
	rt.stopping.Store(false)
	rt.stopOnce = sync.Once{}
	rt.allExited = make(chan struct{})
	rt.idleExit = make(chan struct{})
	rt.idleOnce = sync.Once{}

	rt.rr.Store(0)
	rt.parked.Store(0)
	rt.setSplits.Store(0)
	rt.completed.Store(0)
	rt.elapsed.Store(0)
	rt.epoch.Store(0)
	rt.clusterOnly.Store(rt.pol.ClusterStealingOnly)

	// Adaptive state restarts from scratch: the counter mirror zeroes
	// and the controller is rebuilt at its initial policy vector.
	rt.mirror.reset()
	if rt.adapt != nil {
		rt.initAdapt(rt.adapt.pol)
	}

	// Retired workers resurrect; spare slots reserved by MaxProcs go
	// back to being dead until AddWorkers claims them.
	var spareMask uint64
	for i := rt.cfg.Procs; i < rt.np; i++ {
		spareMask |= 1 << uint(i)
	}
	rt.dead.Store(spareMask)

	// Set homes are per-run placements. Clearing the maps (not
	// reallocating) keeps their bucket capacity for the next run.
	for i := range rt.shards {
		sh := &rt.shards[i]
		for k := range sh.home {
			delete(sh.home, k)
		}
	}

	rt.poolStarted, rt.poolExited = 0, 0
	rt.joining, rt.running = false, false
	rt.poolEvents = rt.poolEvents[:0]
	rt.addIdx = 0

	rt.shedFloor.Store(0)
	for i := range rt.prioLive {
		rt.prioLive[i].Store(0)
	}

	// A clean run drained every retry (retried tasks stay live until
	// they complete), but truncate defensively.
	rt.retries.mu.Lock()
	rt.retries.items = rt.retries.items[:0]
	rt.retries.mu.Unlock()
	rt.tkScratch = perfmon.Counters{}

	// Re-arm the fault plan from scratch: armFaults rebuilds the
	// per-worker event state (consumed cursors, flaky hit marks, slow
	// windows), the injector's spawn sequence numbers, and addTimes.
	rt.addTimes = rt.addTimes[:0]
	rt.inj = nil
	for _, w := range rt.workers {
		w.fev = nil
	}
	if rt.cfg.Faults != nil {
		rt.armFaults(rt.cfg.Faults)
	}

	for _, w := range rt.workers {
		w.drainReq.Store(0)
		w.ringEpoch = -1
		w.busyNS, w.idleNS = 0, 0
		w.events = w.events[:0]
		w.cur = nil
		// Accounting hints must already be zero on a clean drain; store
		// (rather than assert) so a stale hint cannot poison the next run.
		w.queued.Store(0)
		w.lockedWork.Store(0)
		w.setQueued.Store(0)
		w.stealable.Store(0)
		// Drop a stale wake token so the next run's first park is honest.
		select {
		case <-w.wake:
		default:
		}
	}

	rt.ran = false
	return nil
}
