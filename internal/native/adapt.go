package native

import (
	"math/bits"
	"sync/atomic"
	"time"

	"github.com/coolrts/cool/internal/adapt"
	"github.com/coolrts/cool/internal/trace"
)

// This file is the native side of the adaptive-affinity controller: a
// machine-wide atomic counter mirror the timekeeper samples each epoch,
// a packed policy word the hot paths read, and the epoch step that runs
// the pure controller (internal/adapt) and applies its decisions.
//
// The perfmon rows obey a strict one-writer-per-row rule, so the
// timekeeper cannot sum them while workers run. Instead, every
// slow-path counter site the controller feeds on (steal probes, wake
// decisions, lock contention, sheds) also bumps one shared atomic in
// the mirror. Those sites already pay a lock, CAS, or channel
// operation, so one more uncontended atomic add does not change their
// cost class, and the uncontended task fast path is untouched.
//
// Policy flows the other way through two words: the existing
// clusterOnly atomic.Bool, and a packed uint64 carrying the wake
// fanout, the steal-backoff shift, and the shed-floor bias. Hot paths
// gate on `rt.adapt != nil` (one predictable branch) before touching
// the word, so non-adaptive runs pay nothing new.

// adaptCounters is the machine-wide mirror of the slow-path scheduler
// counters, readable at any time from any goroutine. Always maintained
// (not just under Config.Adapt) so CounterSnapshot works on every run.
type adaptCounters struct {
	stealTries     atomicPadded
	failedSteals   atomicPadded
	stealsLocal    atomicPadded
	stealsRemote   atomicPadded
	setSteals      atomicPadded
	targetedWakes  atomicPadded
	broadcastWakes atomicPadded
	lockContention atomicPadded
	tasksShed      atomicPadded
	deadlineMisses atomicPadded
}

// atomicPadded is an atomic counter on its own cache line, so the
// mirror's columns don't false-share when different workers bump
// different counters.
type atomicPadded struct {
	n atomic.Int64
	_ [56]byte
}

// reset zeroes every mirror column (Reset only — never during a run).
func (m *adaptCounters) reset() {
	for _, c := range []*atomicPadded{
		&m.stealTries, &m.failedSteals, &m.stealsLocal, &m.stealsRemote,
		&m.setSteals, &m.targetedWakes, &m.broadcastWakes,
		&m.lockContention, &m.tasksShed, &m.deadlineMisses,
	} {
		c.n.Store(0)
	}
}

// adaptRT is the per-run controller harness (nil unless Config.Adapt
// was set). The controller itself and the trace bookkeeping are owned
// by the timekeeper goroutine while the run executes; Run's
// tkDone.Wait() orders them before any post-Run accessor.
type adaptRT struct {
	pol    adapt.Policy
	ctl    *adapt.Controller
	policy atomic.Int64 // packed fanout | shift<<16 | bias<<24
	nextNS int64        // next epoch boundary (timekeeper-private)
	seen   int          // decisions already exported as trace events
	events []trace.Event
}

const (
	adaptFanoutMask = 0xffff
	adaptShiftPos   = 16
	adaptBiasPos    = 24
)

func packAdaptPolicy(fanout, shift, bias int) int64 {
	return int64(fanout&adaptFanoutMask) | int64(shift&0xff)<<adaptShiftPos | int64(bias&0xff)<<adaptBiasPos
}

// initAdapt builds the controller harness at New (and again at Reset).
func (rt *Runtime) initAdapt(pol adapt.Policy) {
	if pol.Epoch <= 0 {
		pol.Epoch = int64(time.Millisecond)
	}
	a := &adaptRT{pol: pol}
	st0 := adapt.State{
		ClusterOnly: rt.pol.ClusterStealingOnly,
		WakeFanout:  wakeFanout,
	}
	if pol.Start != nil {
		st0 = *pol.Start
		if st0.WakeFanout <= 0 {
			st0.WakeFanout = wakeFanout
		}
		rt.clusterOnly.Store(st0.ClusterOnly)
	}
	a.ctl = adapt.New(pol, st0)
	a.policy.Store(packAdaptPolicy(st0.WakeFanout, st0.BackoffShift, st0.ShedBias))
	rt.adapt = a
}

// wakeFanoutNow is the live wake-fanout knob: the static constant on
// non-adaptive runs, the controller's current setting otherwise.
func (rt *Runtime) wakeFanoutNow() int {
	if rt.adapt == nil {
		return wakeFanout
	}
	return int(rt.adapt.policy.Load() & adaptFanoutMask)
}

// stallBackoffRT is stallBackoff with the controller's backoff shift
// applied: each shift step doubles the timed-park ladder (base and
// cap), calming probe storms the controller observed. Shift is bounded
// by the controller (≤3), so the stretched cap stays ≤ 8ms.
func (rt *Runtime) stallBackoffRT(misses int) time.Duration {
	d := stallBackoff(misses)
	if rt.adapt != nil {
		if s := rt.adapt.policy.Load() >> adaptShiftPos & 0xff; s > 0 {
			d <<= uint(s)
		}
	}
	return d
}

// shedBiasNow returns the controller's shed-floor bias: each step
// halves the backlog high-water, making the floor rise earlier when
// deadline misses were observed.
func (rt *Runtime) shedBiasNow() int64 {
	if rt.adapt == nil {
		return 0
	}
	return rt.adapt.policy.Load() >> adaptBiasPos & 0xff
}

// CounterSnapshot returns the machine-wide scheduler counters: the
// cumulative slow-path mirror plus the instantaneous queue/park/pool
// gauges. Safe to call at any time, including while Run executes.
func (rt *Runtime) CounterSnapshot() adapt.Snapshot {
	return adapt.Snapshot{
		StealTries:     rt.mirror.stealTries.n.Load(),
		FailedSteals:   rt.mirror.failedSteals.n.Load(),
		StealsLocal:    rt.mirror.stealsLocal.n.Load(),
		StealsRemote:   rt.mirror.stealsRemote.n.Load(),
		SetSteals:      rt.mirror.setSteals.n.Load(),
		TargetedWakes:  rt.mirror.targetedWakes.n.Load(),
		BroadcastWakes: rt.mirror.broadcastWakes.n.Load(),
		LockContention: rt.mirror.lockContention.n.Load(),
		TasksShed:      rt.mirror.tasksShed.n.Load(),
		DeadlineMisses: rt.mirror.deadlineMisses.n.Load(),
		Completed:      rt.completed.Load(),
		Queued:         rt.queuedTotal.Load(),
		Parked:         int64(bits.OnesCount64(rt.parked.Load())),
		Workers:        int64(rt.aliveWorkers()),
	}
}

// Decisions returns the adaptive controller's decision trace (nil when
// Config.Adapt was not set). Call after Run.
func (rt *Runtime) Decisions() []adapt.Decision {
	if rt.adapt == nil {
		return nil
	}
	return rt.adapt.ctl.Decisions()
}

// AdaptState returns the controller's current policy vector, or false
// when Config.Adapt was not set. Call after Run.
func (rt *Runtime) AdaptState() (adapt.State, bool) {
	if rt.adapt == nil {
		return adapt.State{}, false
	}
	return rt.adapt.ctl.State(), true
}

// AdaptInit returns the policy vector the controller started from, or
// false when Config.Adapt was not set — the seed for replaying the
// decision trace.
func (rt *Runtime) AdaptInit() (adapt.State, bool) {
	if rt.adapt == nil {
		return adapt.State{}, false
	}
	return rt.adapt.ctl.Init(), true
}

// adaptTick is the timekeeper's per-tick check: when the epoch
// boundary has passed, run one controller epoch over the mirror
// snapshot and apply any decisions to the live policy words. Runs only
// on the timekeeper goroutine.
func (rt *Runtime) adaptTick(now int64) {
	a := rt.adapt
	if now < a.nextNS {
		return
	}
	a.nextNS = now + a.pol.Epoch
	st, changed := a.ctl.Epoch(now, rt.CounterSnapshot())
	if !changed {
		return
	}
	rt.clusterOnly.Store(st.ClusterOnly)
	a.policy.Store(packAdaptPolicy(st.WakeFanout, st.BackoffShift, st.ShedBias))
	if rt.cfg.TraceCapacity > 0 {
		for n := a.ctl.Count(); a.seen < n; a.seen++ {
			if len(a.events) >= rt.cfg.TraceCapacity {
				continue
			}
			d := a.ctl.DecisionAt(a.seen)
			a.events = append(a.events, trace.Event{
				Time: now, Proc: -1, Kind: trace.KindAdapt,
				Task: d.Knob + " " + d.Action, Arg: d.To,
			})
		}
	}
}
