package native

import (
	"sync"
	"sync/atomic"
	"time"
)

// scope counts the outstanding tasks spawned inside one waitfor block.
type scope struct {
	n      atomic.Int64
	waiter atomic.Pointer[worker]
}

// scopeDone retires one task of sc, waking the waiting worker when the
// scope drains. The decrement and the waiter load are both sequentially
// consistent, pairing with waitScope's store-then-recheck: either the
// waiter sees n==0 and never parks, or scopeDone sees the waiter and
// wakes it.
func (rt *Runtime) scopeDone(sc *scope) {
	if sc.n.Add(-1) != 0 {
		return
	}
	if w := sc.waiter.Load(); w != nil {
		rt.wakeWorker(w.id)
	}
}

// waitScope blocks until sc drains, helping: the worker keeps executing
// other ready tasks (local queues first, then steals) and parks only
// when there is nothing runnable anywhere. Helping is what lets a lone
// worker drain the very tasks its waitfor is blocked on.
func (rt *Runtime) waitScope(c *Ctx, sc *scope) {
	w := c.w
	misses := 0
	for {
		if rt.armed {
			if rt.stopped() {
				// The run was aborted (deadline, watchdog, retry
				// exhaustion); the awaited tasks will never finish.
				// Unwind this worker out of the blocked task body —
				// execute's recovery swallows the sentinel.
				panic(stopUnwind{})
			}
			// Helping is still a dispatch point for slowdown/stall
			// events; Fail stays deferred until the worker is back at
			// top level (it is inside a task it must resume).
			rt.checkFaults(w, false)
		}
		if sc.n.Load() == 0 {
			return
		}
		if t := rt.take(w); t != nil {
			misses = 0
			rt.dispatch(w, t)
			continue
		}
		misses++
		// Drop any stale wake token before registering as the scope's
		// waiter — a leftover from an expired timed park would otherwise
		// end the park below instantly for one spurious round-trip.
		// Nothing is lost: every depositor publishes its condition first
		// (queue count, scope count), and both are re-read below after
		// the waiter store and the parked bit are visible.
		select {
		case <-w.wake:
		default:
		}
		sc.waiter.Store(w)
		if sc.n.Load() == 0 {
			sc.waiter.Store(nil)
			return
		}
		rt.setParked(w.id, true)
		queued := rt.queuedTotal.Load() > 0
		switch {
		case queued && misses < parkRetryLimit:
			// Fresh work may have raced the failed take; re-probe.
		case queued:
			// Only work this worker may not take is left; back off
			// instead of spinning, doubling the nap each miss (see
			// parkRetryLimit and stallBackoff).
			start := time.Now()
			rt.timedPark(w, rt.stallBackoffRT(misses))
			w.idleNS += time.Since(start).Nanoseconds()
		case sc.n.Load() != 0:
			start := time.Now()
			select {
			case <-w.wake:
			case <-rt.done:
			case <-rt.stopc:
			}
			w.idleNS += time.Since(start).Nanoseconds()
		}
		rt.setParked(w.id, false)
		sc.waiter.Store(nil)
	}
}

// Monitor is a native COOL monitor: a real mutex. Mutex functions lock
// it for their whole body; explicit Lock/Unlock bracket finer regions.
type Monitor struct {
	mu sync.Mutex
}

// NewMonitor creates a monitor.
func NewMonitor() *Monitor { return &Monitor{} }

// Lock acquires m, counting acquisitions that had to block against the
// calling worker (the simulator's LockBlocks analogue).
func (c *Ctx) Lock(m *Monitor) {
	if m.mu.TryLock() {
		return
	}
	c.rt.cfg.Mon.Per[c.w.id].LockBlocks++
	m.mu.Lock()
}

// Unlock releases m.
func (c *Ctx) Unlock(m *Monitor) { m.mu.Unlock() }

// Cond is a Mesa-style condition variable used with a Monitor. Unlike
// the simulator's Cond — which parks only the task and frees the
// processor — a native Wait blocks the calling worker goroutine until
// signalled. DESIGN.md §9 documents this semantic difference; no
// registered app uses condition variables. The zero value is ready.
type Cond struct {
	mu sync.Mutex
	ws []chan struct{}
}

// Wait atomically releases monitor m and blocks until Signal or
// Broadcast, then reacquires m before returning. Callers must hold the
// monitor and re-test their predicate (Mesa semantics). A stopped run
// (deadline, watchdog, retry exhaustion) unwinds the waiter instead of
// leaving it blocked forever on a signal that will never come.
func (c *Ctx) Wait(cv *Cond, m *Monitor) {
	ch := make(chan struct{})
	cv.mu.Lock()
	cv.ws = append(cv.ws, ch)
	cv.mu.Unlock()
	held := c.heldMon == m
	if held {
		c.heldMon = nil // m is released; the deferred unlock must not fire
	}
	c.Unlock(m)
	select {
	case <-ch:
	case <-c.rt.stopc:
		panic(stopUnwind{})
	}
	c.Lock(m)
	if held {
		c.heldMon = m
	}
}

// Signal wakes one waiter, if any.
func (c *Ctx) Signal(cv *Cond) {
	cv.mu.Lock()
	if len(cv.ws) > 0 {
		close(cv.ws[0])
		cv.ws = cv.ws[1:]
	}
	cv.mu.Unlock()
}

// Broadcast wakes every waiter.
func (c *Ctx) Broadcast(cv *Cond) {
	cv.mu.Lock()
	for _, ch := range cv.ws {
		close(ch)
	}
	cv.ws = nil
	cv.mu.Unlock()
}
