package native

// taskQueue is a FIFO of native task records (intrusive doubly-linked),
// mirroring the simulator scheduler's queue structure: an array of
// task-affinity queues whose non-empty members are linked in a
// doubly-linked list, plus — depending on the scheduler mode — the
// pinned queue (deque mode) or the plain queue (mutex mode; in deque
// mode plain tasks ride the lock-free chaseLev deque in deque.go
// instead). All access is guarded by the owning worker's mutex.
type taskQueue struct {
	head, tail *task
	size       int

	// Links in the worker's non-empty list (task-affinity queues only).
	nextQ, prevQ *taskQueue
	inList       bool
	slotIdx      int
}

func (q *taskQueue) empty() bool { return q.head == nil }

// push appends t.
func (q *taskQueue) push(t *task) {
	if t.q != nil {
		panic("native: task already queued")
	}
	t.q = q
	t.prev = q.tail
	t.next = nil
	if q.tail != nil {
		q.tail.next = t
	} else {
		q.head = t
	}
	q.tail = t
	q.size++
}

// pop removes and returns the head, or nil.
func (q *taskQueue) pop() *task {
	t := q.head
	if t == nil {
		return nil
	}
	q.remove(t)
	return t
}

// remove unlinks t from the queue.
func (q *taskQueue) remove(t *task) {
	if t.q != q {
		panic("native: removing task from wrong queue")
	}
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		q.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	} else {
		q.tail = t.prev
	}
	t.next, t.prev, t.q = nil, nil, nil
	q.size--
}

// popMatching removes and returns the first task with affObj == obj, or nil.
func (q *taskQueue) popMatching(obj int64) *task {
	for t := q.head; t != nil; t = t.next {
		if t.affObj == obj {
			q.remove(t)
			return t
		}
	}
	return nil
}

// nonEmptyList is the doubly-linked list of non-empty task-affinity
// queues within one worker (paper, Section 5).
type nonEmptyList struct {
	head, tail *taskQueue
}

func (l *nonEmptyList) add(q *taskQueue) {
	if q.inList {
		return
	}
	q.inList = true
	q.prevQ = l.tail
	q.nextQ = nil
	if l.tail != nil {
		l.tail.nextQ = q
	} else {
		l.head = q
	}
	l.tail = q
}

func (l *nonEmptyList) removeQ(q *taskQueue) {
	if !q.inList {
		return
	}
	q.inList = false
	if q.prevQ != nil {
		q.prevQ.nextQ = q.nextQ
	} else {
		l.head = q.nextQ
	}
	if q.nextQ != nil {
		q.nextQ.prevQ = q.prevQ
	} else {
		l.tail = q.prevQ
	}
	q.nextQ, q.prevQ = nil, nil
}
