package native

import (
	"testing"
	"time"
)

// TestWakeCountersOnlyOnDeposit pins the wake-counter accounting fix:
// wakePolicy must bump TargetedWakes/BroadcastWakes only when it
// actually deposited at least one token — an empty parked mask, or
// parked workers whose token slots are already full, wake nobody and
// must count nothing.
func TestWakeCountersOnlyOnDeposit(t *testing.T) {
	rt, mon := testRuntime(t, 2, nil)
	ctr := &mon.Per[0]

	// Nobody parked: the old code still counted a targeted wake here.
	rt.queuedTotal.Store(1)
	rt.wakePolicy(ctr)
	if ctr.TargetedWakes != 0 || ctr.BroadcastWakes != 0 {
		t.Fatalf("wakePolicy with empty parked mask counted wakes: targeted=%d broadcast=%d",
			ctr.TargetedWakes, ctr.BroadcastWakes)
	}

	// One parked worker: the first call deposits a token and counts one
	// targeted wake.
	rt.setParked(1, true)
	rt.wakePolicy(ctr)
	if ctr.TargetedWakes != 1 {
		t.Fatalf("wakePolicy with a parked worker: TargetedWakes=%d want 1", ctr.TargetedWakes)
	}

	// Token slot now full: a second call deposits nothing and must not
	// count.
	rt.wakePolicy(ctr)
	if ctr.TargetedWakes != 1 || ctr.BroadcastWakes != 0 {
		t.Fatalf("wakePolicy with a full token slot counted: targeted=%d broadcast=%d",
			ctr.TargetedWakes, ctr.BroadcastWakes)
	}

	// Deep backlog flips the policy to broadcast — still one counter
	// bump per call, not per token.
	<-rt.workers[1].wake
	rt.setParked(0, true)
	rt.queuedTotal.Store(int64(wakeFanout + 1))
	rt.wakePolicy(ctr)
	if ctr.BroadcastWakes != 1 || ctr.TargetedWakes != 1 {
		t.Fatalf("broadcast wake miscounted: targeted=%d broadcast=%d",
			ctr.TargetedWakes, ctr.BroadcastWakes)
	}
}

// TestStaleWakeTokenDrained pins the stale-token fix: a token left in
// w.wake by an expired timed park (or by the early recheck return) must
// be drained on the next park entry, not spent ending that park
// instantly as a spurious round-trip.
func TestStaleWakeTokenDrained(t *testing.T) {
	rt, _ := testRuntime(t, 1, nil)
	w := rt.workers[0]

	// Plant a stale token, then enter a timed park (queuedTotal > 0 and
	// misses at the retry limit force the stallBackoff path). Without
	// the drain the stale token ends the park in nanoseconds; with it,
	// the park must ride out the full backoff (timers never fire early).
	if !rt.wakeWorker(0) {
		t.Fatal("could not plant stale token")
	}
	rt.queuedTotal.Store(1)
	start := time.Now()
	rt.park(w, parkRetryLimit)
	if el := time.Since(start); el < backoffBase {
		t.Fatalf("park with stale token returned after %v, want >= %v (token not drained)", el, backoffBase)
	}
	select {
	case <-w.wake:
		t.Fatal("token still pending after park drained it")
	default:
	}

	// A genuine wake deposited while parked must still end an untimed
	// park promptly — the drain only ever consumes tokens sent before
	// the park published its parked bit.
	rt.queuedTotal.Store(0)
	done := make(chan struct{})
	go func() {
		rt.park(w, 0)
		close(done)
	}()
	for rt.parked.Load() == 0 {
		time.Sleep(time.Microsecond)
	}
	rt.wakeTargets(1)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("parked worker never woke on a genuine token")
	}
}
