package native

import (
	"fmt"
	"time"
)

// This file makes the worker pool elastic: workers can be added and
// retired mid-run without losing or splitting work.
//
//   - Capacity model: New builds worker structs up to Config.MaxProcs
//     ("spare slots"); the spares start with their dead bit set, so
//     every existing insert-path dead check reroutes around them with
//     no new branches. AddWorkers resurrects a spare by clearing its
//     dead bit and starting its goroutine; retirement (planned drain or
//     fault-injected kill) sets the bit back and exits the goroutine.
//   - Pool-join protocol: Run cannot use a WaitGroup (Add after Wait
//     began is a race), so worker goroutines are counted under poolMu:
//     poolStarted at go-time, poolExited when the loop returns. Run
//     waits for the run to end (done/stopc), flips joining — which
//     refuses further growth — and then waits for started == exited.
//   - Membership epoch: every add/retire bumps rt.epoch. Thieves keep a
//     pruned copy of their static victim rings and rebuild it when the
//     epoch moves, so steal scans skip dead slots without per-victim
//     dead checks. A stale pruned ring is only a transient inefficiency:
//     the q==0 skip in stealScan keeps correctness.
//   - Planned drain: Drain stores a request timestamp in the victim's
//     drainReq; the victim's own goroutine observes it at its next
//     top-level dispatch point, finishes nothing mid-task, and retires
//     through the same drain path as a kill — minus the fault
//     accounting, plus a PoolEvent carrying the request-to-completion
//     latency. Whole task-affinity sets re-home through the sharded set
//     table (placeSet), so SetSplits stays zero.
//
// Lock order: poolMu is leaf-only with respect to the scheduler — no
// worker mutex or set-table shard is ever acquired while holding it,
// and it is never acquired while holding one of those.

// PoolEvent is one pool-membership change, recorded for Report.
type PoolEvent struct {
	Kind       string // "add", "drain", "kill"
	Proc       int
	TimeNS     int64 // completion time, nanoseconds since Run started
	DurationNS int64 // drain only: request-to-completion latency
	Moved      int   // tasks re-homed off the retiring worker
}

// AutoscaleConfig runs a threshold autoscaler inside the runtime: each
// control epoch it compares the machine-wide backlog per alive worker
// against the watermarks and calls AddWorkers / DrainN. It reads only
// scheduler atomics (queuedTotal, the parked mask, the dead mask) —
// never a perfmon row, which belongs to its worker's goroutine.
type AutoscaleConfig struct {
	IntervalNS int64 // control epoch length (default 1ms)
	HighWater  int   // queued tasks per alive worker above which the pool grows (default 8)
	LowWater   int   // queued tasks per alive worker below which the pool shrinks (default 1)
	Min        int   // pool size floor (default: the initial Procs)
	Max        int   // pool size cap (default: MaxProcs)
	Step       int   // workers added or drained per epoch (default 1)
}

// startWorkerLocked starts w's goroutine and counts it in the pool-join
// protocol. poolMu held.
func (rt *Runtime) startWorkerLocked(w *worker) {
	rt.poolStarted++
	w.exited.Store(false)
	go func() {
		rt.loop(w)
		rt.workerExited(w)
	}()
}

// workerExited is the tail of every worker goroutine. Everything it
// does happens inside the poolMu critical section: once Run observes
// allExited and returns, the only thing any worker goroutine has left
// to touch is the mutex itself, so a subsequent Reset (which also
// takes poolMu) cannot race with a worker's last breath.
func (rt *Runtime) workerExited(w *worker) {
	rt.poolMu.Lock()
	w.exited.Store(true)
	rt.poolExited++
	allDone := rt.poolExited == rt.poolStarted
	if allDone && rt.joining {
		close(rt.allExited)
	} else if allDone {
		// Every started worker retired with the run still outstanding
		// (validation should prevent this); let Run return rather than
		// hang on a done that can no longer close.
		rt.idleOnce.Do(func() { close(rt.idleExit) })
	}
	rt.poolMu.Unlock()
}

// AddWorkers grows the pool by n workers mid-run, resurrecting the
// lowest-numbered spare slots (reserved by Config.MaxProcs). Each added
// worker gets its dead bit cleared — making it a routable insert target
// and steal victim — before its goroutine starts. Returns the ids
// added.
func (rt *Runtime) AddWorkers(n int) ([]int, error) {
	if !rt.elastic {
		return nil, fmt.Errorf("native: AddWorkers requires spare capacity (Config.MaxProcs)")
	}
	if n <= 0 {
		return nil, fmt.Errorf("native: AddWorkers(%d): count must be positive", n)
	}
	rt.poolMu.Lock()
	defer rt.poolMu.Unlock()
	if !rt.running || rt.joining {
		return nil, fmt.Errorf("native: AddWorkers outside an active run")
	}
	var spares []int
	for id, w := range rt.workers {
		if rt.isDead(id) && w.exited.Load() {
			spares = append(spares, id)
			if len(spares) == n {
				break
			}
		}
	}
	if len(spares) < n {
		return nil, fmt.Errorf("native: AddWorkers(%d): only %d spare slot(s) free", n, len(spares))
	}
	for _, id := range spares {
		w := rt.workers[id]
		w.drainReq.Store(0)
		bit := uint64(1) << uint(id)
		for {
			old := rt.dead.Load()
			if rt.dead.CompareAndSwap(old, old&^bit) {
				break
			}
		}
		rt.epoch.Add(1)
		rt.poolEvents = append(rt.poolEvents, PoolEvent{Kind: "add", Proc: id, TimeNS: rt.nowNS()})
		rt.startWorkerLocked(w)
	}
	return spares, nil
}

// Drain requests a planned retirement of each listed worker: the victim
// finishes its running task, stops accepting inserts, and re-homes its
// queued work affinity-preserving (whole sets move through the set
// table and never split). The request is asynchronous — completion is
// visible as a "drain" PoolEvent. At least one undrained worker must
// remain.
func (rt *Runtime) Drain(ids ...int) error {
	if !rt.elastic {
		return fmt.Errorf("native: Drain requires an elastic pool (Config.MaxProcs)")
	}
	if len(ids) == 0 {
		return nil
	}
	rt.poolMu.Lock()
	defer rt.poolMu.Unlock()
	return rt.drainLocked(ids)
}

// DrainN is Drain with the runtime picking the victims: the n
// highest-numbered alive workers without a pending drain. Returns the
// ids chosen.
func (rt *Runtime) DrainN(n int) ([]int, error) {
	if !rt.elastic {
		return nil, fmt.Errorf("native: Drain requires an elastic pool (Config.MaxProcs)")
	}
	if n <= 0 {
		return nil, fmt.Errorf("native: DrainN(%d): count must be positive", n)
	}
	rt.poolMu.Lock()
	defer rt.poolMu.Unlock()
	var ids []int
	for id := len(rt.workers) - 1; id >= 0 && len(ids) < n; id-- {
		if !rt.isDead(id) && rt.workers[id].drainReq.Load() == 0 {
			ids = append(ids, id)
		}
	}
	if len(ids) < n {
		return nil, fmt.Errorf("native: DrainN(%d): only %d drainable worker(s)", n, len(ids))
	}
	if err := rt.drainLocked(ids); err != nil {
		return nil, err
	}
	return ids, nil
}

// drainLocked validates and arms the drain requests. poolMu held.
func (rt *Runtime) drainLocked(ids []int) error {
	if !rt.running || rt.joining {
		return fmt.Errorf("native: Drain outside an active run")
	}
	req := make(map[int]bool, len(ids))
	for _, id := range ids {
		if id < 0 || id >= len(rt.workers) {
			return fmt.Errorf("native: Drain: worker %d out of range [0,%d)", id, len(rt.workers))
		}
		if rt.isDead(id) {
			return fmt.Errorf("native: Drain: worker %d already retired", id)
		}
		if req[id] || rt.workers[id].drainReq.Load() != 0 {
			return fmt.Errorf("native: Drain: worker %d already draining", id)
		}
		req[id] = true
	}
	pending := 0
	for id, w := range rt.workers {
		if !rt.isDead(id) && w.drainReq.Load() != 0 {
			pending++
		}
	}
	if rt.aliveWorkers()-pending-len(ids) < 1 {
		return fmt.Errorf("native: Drain of %d worker(s) would leave the pool empty", len(ids))
	}
	now := rt.nowNS()
	if now < 1 {
		now = 1 // drainReq == 0 means "no request"
	}
	for _, id := range ids {
		rt.workers[id].drainReq.Store(now)
		rt.wakeWorker(id) // a parked victim must notice the request
	}
	return nil
}

// drainRequested is the per-iteration check in the worker loop: a
// pending drain request retires the worker. Top level only — a waitfor
// helping loop is inside a task body that must finish first.
func (rt *Runtime) drainRequested(w *worker) bool {
	req := w.drainReq.Load()
	if req == 0 {
		return false
	}
	rt.retireWith(w, false, req)
	return true
}

// recordPoolEvent appends one membership event to the Report timeline.
func (rt *Runtime) recordPoolEvent(ev PoolEvent) {
	rt.poolMu.Lock()
	rt.poolEvents = append(rt.poolEvents, ev)
	rt.poolMu.Unlock()
}

// PoolEvents returns a copy of the membership timeline (adds, drains,
// kills), ordered by occurrence. Call after Run for a stable view.
func (rt *Runtime) PoolEvents() []PoolEvent {
	rt.poolMu.Lock()
	defer rt.poolMu.Unlock()
	out := make([]PoolEvent, len(rt.poolEvents))
	copy(out, rt.poolEvents)
	return out
}

// PoolSize returns the number of alive (routable) workers.
func (rt *Runtime) PoolSize() int { return rt.aliveWorkers() }

// pruneRings rebuilds w's dead-slot-free victim ring copies for epoch
// e. Owner goroutine only; the dead mask may already be newer than e,
// which only means the next epoch check rebuilds again.
func (rt *Runtime) pruneRings(w *worker, e int64) {
	w.ringEpoch = e
	dead := rt.dead.Load()
	prune := func(dst, src []int) []int {
		dst = dst[:0]
		for _, v := range src {
			if dead&(1<<uint(v)) == 0 {
				dst = append(dst, v)
			}
		}
		return dst
	}
	w.prCluster = prune(w.prCluster, rt.ringCluster[w.id])
	w.prRemote = prune(w.prRemote, rt.ringRemote[w.id])
	w.prFlat = prune(w.prFlat, rt.ringFlat[w.id])
}

// autoscaler is the optional control goroutine (Config.Autoscale): per
// control epoch it grows the pool when the backlog per alive worker
// passes the high watermark and drains workers when the backlog falls
// below the low watermark while some workers sit parked. Errors from
// AddWorkers/DrainN (capacity exhausted, survivor rule) are deliberate
// no-ops — the autoscaler is best-effort by design.
func (rt *Runtime) autoscaler() {
	defer rt.autoDone.Done()
	a := rt.auto
	tick := time.NewTicker(time.Duration(a.IntervalNS))
	defer tick.Stop()
	for {
		select {
		case <-rt.done:
			return
		case <-rt.stopc:
			return
		case <-rt.idleExit:
			return
		case <-tick.C:
		}
		alive := rt.aliveWorkers()
		if alive == 0 {
			continue
		}
		q := rt.queuedTotal.Load()
		if q > int64(a.HighWater)*int64(alive) && alive < a.Max {
			n := a.Step
			if alive+n > a.Max {
				n = a.Max - alive
			}
			rt.AddWorkers(n)
		} else if q < int64(a.LowWater)*int64(alive) && alive > a.Min && rt.parked.Load() != 0 {
			n := a.Step
			if alive-n < a.Min {
				n = alive - a.Min
			}
			rt.DrainN(n)
		}
	}
}
