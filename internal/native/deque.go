package native

import "sync/atomic"

// This file holds the two lock-free structures the native hot path runs
// on since the Chase-Lev rewrite:
//
//   - chaseLev, a work-stealing deque in the style of Chase & Lev
//     ("Dynamic Circular Work-Stealing Deque", SPAA 2005). Each worker
//     owns one and keeps its plain (unpinned, unbound) tasks there: the
//     owner pushes and pops without taking any lock, and a thief removes
//     a single task with one CAS on the top index.
//
//   - inbox, a Treiber stack of task records. Everything another worker
//     inserts into this worker's queues (cross-worker plain placements,
//     pinned and object-bound tasks, retried launches) lands here with
//     one CAS; the owner drains it at its next dispatch point and routes
//     each record into the right structure. The single-producer rule of
//     the deque's bottom end is never violated because only the owner
//     ever touches it.
//
// Memory-ordering argument (DESIGN.md §12 spells it out in full): Go's
// sync/atomic operations are sequentially consistent, which is strictly
// stronger than the acquire/release points the original algorithm needs.
// The specific properties relied on:
//
//   - pushBottom writes the slot before publishing it with the bottom
//     store, so a thief whose takeTop CAS succeeds observed a fully
//     written record.
//   - popBottom stores the decremented bottom before loading top; the
//     seq-cst store/load pair is the StoreLoad fence that makes the
//     owner and a racing thief agree on who took the last element (at
//     most one of the bottom decrement and the top CAS wins).
//   - The buffer only grows, and grow copies the live window into the
//     fresh buffer without mutating the old one, so a thief still
//     holding the stale buffer pointer reads a value that is correct
//     for any index its subsequent top CAS can win: index t is reused
//     by the owner only once top has advanced past t, and then the CAS
//     at t fails and the stale read is discarded.

// dequeBuf is one immutable-capacity ring of task slots. Old buffers are
// kept alive by racing thieves' loads; they are never written again
// after grow copies them.
type dequeBuf struct {
	mask int64
	s    []atomic.Pointer[task]
}

func newDequeBuf(capacity int64) *dequeBuf {
	return &dequeBuf{mask: capacity - 1, s: make([]atomic.Pointer[task], capacity)}
}

func (b *dequeBuf) get(i int64) *task     { return b.s[i&b.mask].Load() }
func (b *dequeBuf) put(i int64, t *task)  { b.s[i&b.mask].Store(t) }

// chaseLev is the per-worker work-stealing deque. The live window is
// [top, bottom); top only grows (steals and FIFO owner takes), bottom is
// owned exclusively by the worker (pushes grow it, popBottom shrinks it).
type chaseLev struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    atomic.Pointer[dequeBuf]
}

const dequeInitialCap = 64

func (d *chaseLev) init() {
	d.buf.Store(newDequeBuf(dequeInitialCap))
}

// size returns a racy snapshot of the element count (never negative).
func (d *chaseLev) size() int64 {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return n
}

// grow doubles the buffer, copying the live window [tp, b). Owner only.
func (d *chaseLev) grow(old *dequeBuf, tp, b int64) *dequeBuf {
	nb := newDequeBuf(2 * int64(len(old.s)))
	for i := tp; i < b; i++ {
		nb.put(i, old.get(i))
	}
	d.buf.Store(nb)
	return nb
}

// pushBottom appends t at the bottom end. Owner only.
func (d *chaseLev) pushBottom(t *task) {
	b := d.bottom.Load()
	tp := d.top.Load()
	buf := d.buf.Load()
	if b-tp >= int64(len(buf.s)) {
		buf = d.grow(buf, tp, b)
	}
	buf.put(b, t)
	d.bottom.Store(b + 1)
}

// pushBottomN appends a batch with a single publishing bottom store: the
// slots are written first, then one store makes them all visible to
// thieves — a spawn burst is one deque publish. Owner only.
func (d *chaseLev) pushBottomN(ts []*task) {
	if len(ts) == 0 {
		return
	}
	b := d.bottom.Load()
	tp := d.top.Load()
	buf := d.buf.Load()
	for b+int64(len(ts))-tp > int64(len(buf.s)) {
		buf = d.grow(buf, tp, b)
	}
	for i, t := range ts {
		buf.put(b+int64(i), t)
	}
	d.bottom.Store(b + int64(len(ts)))
}

// takeTop removes the oldest element with one CAS, or returns nil when
// the deque is (momentarily) empty. Safe for any goroutine; the owner
// uses it too, so its local dispatch stays FIFO like the simulator's
// plain queue — which is what keeps P=1 native schedules token-identical
// to the simulated ones (popBottom's LIFO would reorder them).
func (d *chaseLev) takeTop() *task {
	for {
		tp := d.top.Load()
		b := d.bottom.Load()
		if tp >= b {
			return nil
		}
		buf := d.buf.Load()
		t := buf.get(tp)
		if d.top.CompareAndSwap(tp, tp+1) {
			return t
		}
		// Lost the race for index tp (another thief, or the owner's
		// popBottom taking the last element); re-read and retry.
	}
}

// popBottom removes the newest element, racing thieves for the last one.
// Owner only. Used by the deque unit tests (LIFO end) and the retirement
// drain, where popBottom-until-nil empties the deque without violating
// the single-owner rule even while thieves keep CASing top.
func (d *chaseLev) popBottom() *task {
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	d.bottom.Store(b)
	tp := d.top.Load()
	if tp > b {
		// Empty: restore bottom.
		d.bottom.Store(b + 1)
		return nil
	}
	t := buf.get(b)
	if tp == b {
		// Last element: the top CAS decides against a racing thief.
		if !d.top.CompareAndSwap(tp, tp+1) {
			t = nil
		}
		d.bottom.Store(b + 1)
		return t
	}
	return t
}

// inbox is the per-worker Treiber stack of cross-inserted task records,
// linked through the task's intrusive next pointer (a record is never in
// an inbox and a queue or freelist at once). push is one CAS; the
// consumers take the whole chain with one atomic swap.
//
// Consumption is swapAll-only, never pop-one: popping a single node
// would have to read head.next on a record a concurrent swapAll may
// already have drained, executed, and recycled. Swapping the entire
// chain hands each record to exactly one consumer, which then owns every
// link in it.
type inbox struct {
	head atomic.Pointer[task]
}

func (in *inbox) empty() bool { return in.head.Load() == nil }

// push adds t on top of the stack (newest first).
func (in *inbox) push(t *task) {
	for {
		h := in.head.Load()
		t.next = h
		if in.head.CompareAndSwap(h, t) {
			return
		}
	}
}

// pushChain pushes an already linked chain (first is the newest end,
// last the oldest; last's next is overwritten) with one CAS — used by a
// thief returning the records a steal probe refused, preserving their
// relative order for the owner's eventual drain.
func (in *inbox) pushChain(first, last *task) {
	for {
		h := in.head.Load()
		last.next = h
		if in.head.CompareAndSwap(h, first) {
			return
		}
	}
}

// swapAll detaches and returns the whole chain (newest first), or nil.
func (in *inbox) swapAll() *task {
	return in.head.Swap(nil)
}
