package native

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"github.com/coolrts/cool/internal/core"
	"github.com/coolrts/cool/internal/fault"
)

// TestRetireStress is the drain-correctness torture test: 1–3 workers
// retire mid-run (never worker 0 — it carries the root waitfor, where
// Fail events stay deferred) while spawners pump a randomized mix of
// plain, processor-, object-, and task-affinity work. Run under -race
// with -count=3, it hammers the dead-bit/drain protocol against
// concurrent placement and whole-set stealing: a task lost in the
// retirement race shows up as a count mismatch, a split set as
// SetSplits, a residual entry as a non-empty dead queue, and a stale
// stealable hint as a nonzero counter on a drained worker. The deque
// arm additionally exercises the retirement drain through the
// Chase-Lev deque (popBottom) and inbox (swapAll) paths; the mutex arm
// keeps covering the PR 6 locked drain.
func TestRetireStress(t *testing.T) {
	t.Run("deque", func(t *testing.T) { retireStress(t, nil) })
	t.Run("mutex", func(t *testing.T) { retireStress(t, mutexMode) })
}

func retireStress(t *testing.T, mode func(*Config)) {
	const procs = 12 // three clusters of four
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		nFails := 1 + rng.Intn(3)
		p := &fault.Plan{}
		victims := map[int]bool{}
		for len(victims) < nFails {
			v := 1 + rng.Intn(procs-1) // never worker 0
			if victims[v] {
				continue
			}
			victims[v] = true
			p.Fail(v, int64(200_000+rng.Intn(1_500_000))) // 0.2–1.7ms in
		}
		rt, mon := testRuntime(t, procs, func(cfg *Config) {
			cfg.Faults = p
			if mode != nil {
				mode(cfg)
			}
		})

		const spawners = 16
		const perSpawner = 100
		affs := make([][]core.Affinity, spawners)
		for i := range affs {
			affs[i] = make([]core.Affinity, perSpawner)
			for j := range affs[i] {
				switch rng.Intn(4) {
				case 0:
					affs[i][j] = core.Affinity{}
				case 1:
					// Hot sets shared across spawners so placements chase
					// homes that retirement keeps moving.
					affs[i][j] = core.Affinity{Kind: core.AffTask, TaskObj: int64(1 + rng.Intn(6)*4096)}
				case 2:
					affs[i][j] = core.Affinity{Kind: core.AffObject, ObjectObj: int64(1 + rng.Intn(32)*4096)}
				case 3:
					affs[i][j] = core.Affinity{Kind: core.AffProcessor, Processor: rng.Intn(procs)}
				}
			}
		}
		var ran [spawners * perSpawner]int32
		err := rt.Run(func(c *Ctx) {
			c.WaitFor(func() {
				for i := 0; i < spawners; i++ {
					i := i
					c.Spawn("spawner", core.Affinity{Kind: core.AffProcessor, Processor: i % procs}, nil, func(c *Ctx) {
						for j, a := range affs[i] {
							k := i*perSpawner + j
							c.Spawn("leaf", a, nil, func(*Ctx) {
								atomic.AddInt32(&ran[k], 1)
								// Keep the run in the milliseconds so the
								// plan's Fail times land mid-flight.
								time.Sleep(10 * time.Microsecond)
							})
						}
					})
				}
			})
		})
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		for v := range victims {
			if !rt.isDead(v) {
				t.Fatalf("seed %d: worker %d never retired (run finished before its Fail time?)", seed, v)
			}
		}
		if got := rt.aliveWorkers(); got != procs-nFails {
			t.Fatalf("seed %d: aliveWorkers = %d, want %d", seed, got, procs-nFails)
		}
		for k, n := range ran {
			if n != 1 {
				t.Fatalf("seed %d: task %d ran %d times, want exactly once", seed, k, n)
			}
		}
		total := mon.Total()
		if want := int64(1 + spawners + spawners*perSpawner); total.TasksRun != want {
			t.Fatalf("seed %d: TasksRun=%d want %d", seed, total.TasksRun, want)
		}
		if rt.SetSplits() != 0 {
			t.Fatalf("seed %d: SetSplits=%d want 0", seed, rt.SetSplits())
		}
		if rt.QueuedTasks() != 0 {
			t.Fatalf("seed %d: %d tasks still queued", seed, rt.QueuedTasks())
		}
		// Every queue — dead or alive — must be empty, and the stealable
		// hints must have drained back to zero with them.
		for _, w := range rt.workers {
			if n := w.queued.Load(); n != 0 {
				t.Fatalf("seed %d: worker %d queued hint %d", seed, w.id, n)
			}
		}
		assertWorkerQueuesEmpty(t, rt, fmt.Sprintf("seed %d", seed))
	}
}
