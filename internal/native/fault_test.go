package native

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/coolrts/cool/internal/core"
	"github.com/coolrts/cool/internal/fault"
)

// TestRetryDelayShape pins the native backoff to the public
// RetryPolicy's shape: first retry waits BackoffNS, each further retry
// doubles, the cap clamps, and huge attempt counts must not overflow.
func TestRetryDelayShape(t *testing.T) {
	r := RetryConfig{MaxAttempts: 10, BackoffNS: 1000, MaxBackoffNS: 8000}
	want := []int64{1000, 2000, 4000, 8000, 8000}
	for i, w := range want {
		if got := r.delay(i + 1); got != w {
			t.Fatalf("delay(%d) = %d, want %d", i+1, got, w)
		}
	}
	if got := r.delay(1 << 20); got != 8000 {
		t.Fatalf("delay(huge) = %d, want cap 8000", got)
	}
}

// TestSlowdownStallCounted arms a slowdown and a stall due at t=0 and
// checks both are applied exactly once, on the right workers' rows.
func TestSlowdownStallCounted(t *testing.T) {
	p := &fault.Plan{}
	p.Slow(0, 0, 4, 300_000)
	p.Stall(1, 0, 100_000)
	rt, mon := testRuntime(t, 2, func(cfg *Config) { cfg.Faults = p })
	var ran atomic.Int64
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			for i := 0; i < 40; i++ {
				c.Spawn("t", core.Affinity{}, nil, func(*Ctx) {
					ran.Add(1)
					time.Sleep(20 * time.Microsecond)
				})
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran.Load() != 40 {
		t.Fatalf("ran %d tasks, want 40", ran.Load())
	}
	if got := mon.Total().FaultEvents; got != 2 {
		t.Fatalf("FaultEvents = %d, want 2 (one slowdown + one stall)", got)
	}
	if mon.Per[0].FaultEvents != 1 || mon.Per[1].FaultEvents != 1 {
		t.Fatalf("per-worker FaultEvents = [%d %d], want [1 1]",
			mon.Per[0].FaultEvents, mon.Per[1].FaultEvents)
	}
}

// TestRetireDrainsAndSurvives fails one worker mid-run under mixed
// affinity load: every task still runs exactly once, sets never split,
// and the dead worker's queues end (and stay) empty.
func TestRetireDrainsAndSurvives(t *testing.T) {
	const procs = 4
	p := &fault.Plan{}
	p.Fail(1, 400_000) // 400µs into a multi-ms run
	rt, mon := testRuntime(t, procs, func(cfg *Config) { cfg.Faults = p })
	const spawners = 4
	const perSpawner = 100
	var ran [spawners * perSpawner]int32
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			for i := 0; i < spawners; i++ {
				i := i
				c.Spawn("spawner", core.Affinity{Kind: core.AffProcessor, Processor: i % procs}, nil, func(c *Ctx) {
					for j := 0; j < perSpawner; j++ {
						k := i*perSpawner + j
						var aff core.Affinity
						switch j % 3 {
						case 0:
							aff = core.Affinity{Kind: core.AffTask, TaskObj: int64(1 + j%6*4096)}
						case 1:
							aff = core.Affinity{Kind: core.AffObject, ObjectObj: int64(1 + j%8*4096)}
						}
						c.Spawn("leaf", aff, nil, func(*Ctx) {
							atomic.AddInt32(&ran[k], 1)
							time.Sleep(30 * time.Microsecond)
						})
					}
				})
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rt.isDead(1) {
		t.Fatalf("worker 1 did not retire (run too short for the plan?)")
	}
	for k := range ran {
		if ran[k] != 1 {
			t.Fatalf("task %d ran %d times", k, ran[k])
		}
	}
	if rt.SetSplits() != 0 {
		t.Fatalf("SetSplits = %d, want 0", rt.SetSplits())
	}
	w := rt.workers[1]
	if w.plain.size != 0 || w.queued.Load() != 0 || w.stealable.Load() != 0 {
		t.Fatalf("dead worker queues not empty: plain=%d queued=%d stealable=%d",
			w.plain.size, w.queued.Load(), w.stealable.Load())
	}
	for s := range w.slots {
		if w.slots[s].size != 0 {
			t.Fatalf("dead worker slot %d still holds %d tasks", s, w.slots[s].size)
		}
	}
	if got := mon.Total().FaultEvents; got < 1 {
		t.Fatalf("FaultEvents = %d, want >= 1 (the proc-fail)", got)
	}
}

// TestFlakyWindowRetries pins launches to a flaky worker: every strike
// must be retried onto a survivor and the run must still complete with
// every task run exactly once.
func TestFlakyWindowRetries(t *testing.T) {
	p := &fault.Plan{}
	p.Flaky(1, 0, 1_000_000) // worker 1 aborts all fresh launches for 1ms
	rt, mon := testRuntime(t, 2, func(cfg *Config) {
		cfg.Faults = p
		cfg.Retry = RetryConfig{MaxAttempts: 1000, BackoffNS: 300_000, MaxBackoffNS: 600_000}
	})
	var ran atomic.Int64
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			for i := 0; i < 10; i++ {
				c.Spawn("pinned", core.Affinity{Kind: core.AffProcessor, Processor: 1}, nil, func(*Ctx) {
					ran.Add(1)
				})
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran.Load() != 10 {
		t.Fatalf("ran %d tasks, want 10", ran.Load())
	}
	total := mon.Total()
	if total.Retries == 0 {
		t.Fatalf("Retries = 0, want > 0 (launches on P1 abort during the window)")
	}
	if total.GaveUp != 0 {
		t.Fatalf("GaveUp = %d, want 0", total.GaveUp)
	}
	if total.FaultEvents == 0 {
		t.Fatalf("FaultEvents = 0, want the flaky window counted")
	}
}

// TestInjectedAbortWithoutRetryStopsRun: with no retry policy the first
// transient abort fails the run with a typed *TaskAbort.
func TestInjectedAbortWithoutRetryStopsRun(t *testing.T) {
	p := &fault.Plan{}
	p.FailTask("victim", 0)
	rt, mon := testRuntime(t, 2, func(cfg *Config) { cfg.Faults = p })
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			c.Spawn("victim", core.Affinity{}, nil, func(*Ctx) {})
		})
	})
	var ta *TaskAbort
	if !errors.As(err, &ta) {
		t.Fatalf("Run = %v, want *TaskAbort", err)
	}
	if ta.Task != "victim" || ta.Attempts != 1 {
		t.Fatalf("TaskAbort = %+v, want Task=victim Attempts=1", ta)
	}
	if mon.Total().GaveUp != 1 {
		t.Fatalf("GaveUp = %d, want 1", mon.Total().GaveUp)
	}
}

// TestInjectedAbortWithRetrySucceeds: the same plan under a retry
// policy re-places the launch and the run completes.
func TestInjectedAbortWithRetrySucceeds(t *testing.T) {
	p := &fault.Plan{}
	p.FailTask("victim", 0)
	p.FailTask("victim", 0) // two strikes against the same spawn
	rt, mon := testRuntime(t, 2, func(cfg *Config) {
		cfg.Faults = p
		cfg.Retry = RetryConfig{MaxAttempts: 5, BackoffNS: 1000, MaxBackoffNS: 64_000}
	})
	var ran atomic.Int64
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			c.Spawn("victim", core.Affinity{}, nil, func(*Ctx) { ran.Add(1) })
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran.Load() != 1 {
		t.Fatalf("victim ran %d times, want exactly 1", ran.Load())
	}
	if got := mon.Total().Retries; got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
}

// TestInjectedPanicIsTyped: a planted panic surfaces as *TaskFailure
// with the Injected marker, never as a retry.
func TestInjectedPanicIsTyped(t *testing.T) {
	p := &fault.Plan{}
	p.PanicTask("boom", 0)
	rt, _ := testRuntime(t, 2, func(cfg *Config) {
		cfg.Faults = p
		cfg.Retry = RetryConfig{MaxAttempts: 5, BackoffNS: 1000, MaxBackoffNS: 64_000}
	})
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			c.Spawn("boom", core.Affinity{}, nil, func(*Ctx) {})
		})
	})
	var tf *TaskFailure
	if !errors.As(err, &tf) {
		t.Fatalf("Run = %v, want *TaskFailure", err)
	}
	if !tf.Injected || tf.Task != "boom" {
		t.Fatalf("TaskFailure = %+v, want Injected boom", tf)
	}
}

// TestDeadlineStopsRun: a run that cannot finish inside the wall-clock
// deadline returns a typed *DeadlineError instead of running on.
func TestDeadlineStopsRun(t *testing.T) {
	rt, _ := testRuntime(t, 2, func(cfg *Config) { cfg.DeadlineNS = 500_000 })
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			for i := 0; i < 2; i++ {
				c.Spawn("slow", core.Affinity{}, nil, func(*Ctx) {
					time.Sleep(20 * time.Millisecond)
				})
			}
		})
	})
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("Run = %v, want *DeadlineError", err)
	}
	if de.DeadlineNS != 500_000 || de.Time < 500_000 {
		t.Fatalf("DeadlineError = %+v, want DeadlineNS=500000 and Time >= it", de)
	}
	if len(de.QueueDepths) != 2 {
		t.Fatalf("QueueDepths = %v, want 2 entries", de.QueueDepths)
	}
}

// TestNoProgressWatchdogUnhangsCondWait: a task parked forever on a
// condition variable would hang Run; the watchdog must stop the run
// with a typed *NoProgressError carrying a queue snapshot, and the
// blocked worker must unwind.
func TestNoProgressWatchdogUnhangsCondWait(t *testing.T) {
	rt, _ := testRuntime(t, 2, func(cfg *Config) { cfg.NoProgressNS = 5_000_000 })
	m := NewMonitor()
	cv := &Cond{}
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			c.Spawn("waiter", core.Affinity{}, nil, func(c *Ctx) {
				c.Lock(m)
				c.Wait(cv, m) // never signalled
				c.Unlock(m)
			})
		})
	})
	var np *NoProgressError
	if !errors.As(err, &np) {
		t.Fatalf("Run = %v, want *NoProgressError", err)
	}
	if np.WindowNS != 5_000_000 || np.Live == 0 {
		t.Fatalf("NoProgressError = %+v, want WindowNS=5000000 and live tasks", np)
	}
	if np.Snapshot == "" {
		t.Fatalf("NoProgressError carries no queue snapshot")
	}
}

// TestArmedRunWithNoFaultsIsClean: arming retries + deadline + watchdog
// without any fault plan must not perturb a healthy run or count any
// robustness events.
func TestArmedRunWithNoFaultsIsClean(t *testing.T) {
	rt, mon := testRuntime(t, 4, func(cfg *Config) {
		cfg.Retry = RetryConfig{MaxAttempts: 4, BackoffNS: 1000, MaxBackoffNS: 64_000}
		cfg.DeadlineNS = 30_000_000_000
		cfg.NoProgressNS = 2_000_000_000
	})
	var ran atomic.Int64
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			for i := 0; i < 200; i++ {
				aff := core.Affinity{}
				if i%2 == 0 {
					aff = core.Affinity{Kind: core.AffTask, TaskObj: int64(1 + i%8*4096)}
				}
				c.Spawn("t", aff, nil, func(*Ctx) { ran.Add(1) })
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran.Load() != 200 {
		t.Fatalf("ran %d tasks, want 200", ran.Load())
	}
	total := mon.Total()
	if total.FaultEvents != 0 || total.Redistributed != 0 || total.Retries != 0 || total.GaveUp != 0 {
		t.Fatalf("healthy armed run counted robustness events: faults=%d redistributed=%d retries=%d gaveup=%d",
			total.FaultEvents, total.Redistributed, total.Retries, total.GaveUp)
	}
}
