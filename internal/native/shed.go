package native

import (
	"github.com/coolrts/cool/internal/perfmon"
	"github.com/coolrts/cool/internal/trace"
)

// This file is the SLO layer: per-spawn priorities and deadlines, and
// the overload-shedding policy that drops (or defers) the
// lowest-priority work first when backlog builds.
//
// Priorities are classes 0..7 (0 = default and lowest; class 7 is
// never shed on priority grounds). A task whose deadline has expired
// is shed at dispatch regardless of load. Below-floor tasks are shed —
// or, with RetryShed and a retry policy, re-queued with backoff so
// they run once the backlog clears. The shed floor itself is moved by
// the timekeeper: when the machine-wide backlog per alive worker
// passes QueueHighWater, the floor rises just above the lowest
// priority class with live tasks (shedding exactly the least important
// work first); it drops back to zero once the backlog halves.
//
// A shed is a completion for every liveness mechanism — the task's
// scope, the live counter, and the watchdog's progress count — so
// WaitFor and Run never hang on work the policy dropped.

// ShedConfig arms overload shedding and deadline enforcement.
type ShedConfig struct {
	// QueueHighWater is the backlog per alive worker above which the
	// shed floor starts rising (default 64).
	QueueHighWater int
	// RetryShed defers below-floor tasks through the retry queue
	// (requires a retry policy) instead of dropping them. Tasks whose
	// retry budget runs out are dropped, never aborted — shedding must
	// not stop the run.
	RetryShed bool
}

// maxPrio is the highest priority class; prioLive has maxPrio+1 rows.
const maxPrio = 7

// clampPrio folds an arbitrary priority into the class range [0,7].
func clampPrio(p int8) int8 {
	if p < 0 {
		return 0
	}
	if p > maxPrio {
		return maxPrio
	}
	return p
}

// maybeShed applies the shedding policy to a task about to launch,
// returning true when the task was shed or deferred and must not run.
// Runs on w's own goroutine; only called when a ShedConfig is armed.
func (rt *Runtime) maybeShed(w *worker, t *task) bool {
	ctr := &rt.cfg.Mon.Per[w.id]
	if t.deadlineNS > 0 && rt.nowNS() > t.deadlineNS {
		ctr.DeadlineMisses++
		rt.mirror.deadlineMisses.n.Add(1)
		rt.shedTask(w, t, ctr)
		return true
	}
	floor := rt.shedFloor.Load()
	if floor == 0 || int32(t.prio) >= floor || t.prio >= maxPrio {
		return false
	}
	if rt.shed.RetryShed && rt.retry.enabled() && t.aborts+1 < rt.retry.MaxAttempts {
		t.aborts++
		ctr.Retries++
		tgt := rt.retryTarget(t, w.id, t.aborts)
		rt.trace(w, trace.KindRetry, w.id, t.name, int64(tgt))
		rt.retries.add(retryItem{due: rt.nowNS() + rt.retry.delay(t.aborts), t: t, target: tgt})
		return true
	}
	rt.shedTask(w, t, ctr)
	return true
}

// shedTask drops t without running it, with full completion
// accounting: the scope is released, the record recycled, and the live
// and watchdog counters move exactly as a run-to-completion would.
func (rt *Runtime) shedTask(w *worker, t *task, ctr *perfmon.Counters) {
	ctr.TasksShed++
	rt.mirror.tasksShed.n.Add(1)
	rt.trace(w, trace.KindShed, w.id, t.name, int64(t.prio))
	rt.prioLive[t.prio].Add(-1)
	if t.scope != nil {
		rt.scopeDone(t.scope)
	}
	rt.freeTask(w, t)
	rt.completed.Add(1)
	if rt.live.Add(-1) == 0 {
		rt.doneOnce.Do(func() { close(rt.done) })
	}
}

// shedControl is the timekeeper's per-tick floor controller. It reads
// only atomics (queuedTotal, the dead mask, prioLive) — no perfmon
// rows.
func (rt *Runtime) shedControl() {
	sc := rt.shed
	high := int64(sc.QueueHighWater) * int64(rt.aliveWorkers())
	// The adaptive controller's shed bias halves the high-water per
	// step when deadline misses were observed, raising the floor
	// earlier.
	high >>= uint(rt.shedBiasNow())
	if high <= 0 {
		return
	}
	q := rt.queuedTotal.Load()
	cur := rt.shedFloor.Load()
	if q > high {
		for k := int32(0); k < maxPrio; k++ {
			if rt.prioLive[k].Load() > 0 {
				if k+1 > cur {
					rt.shedFloor.Store(k + 1)
				}
				break
			}
		}
	} else if cur != 0 && q*2 < high {
		rt.shedFloor.Store(0)
	}
}
