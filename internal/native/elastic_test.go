package native

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/coolrts/cool/internal/core"
	"github.com/coolrts/cool/internal/fault"
	"github.com/coolrts/cool/internal/perfmon"
)

// elasticRuntime is testRuntime with spare capacity: the monitor and
// the Home lookup are sized to maxProcs so workers added mid-run have
// their own counter row and can be affinity homes (placements that land
// on a still-dead spare reroute through the ordinary dead-bit paths).
func elasticRuntime(t *testing.T, procs, maxProcs int, mut func(*Config)) (*Runtime, *perfmon.Monitor) {
	t.Helper()
	mon := perfmon.New(maxProcs)
	cfg := Config{
		Procs:       procs,
		MaxProcs:    maxProcs,
		ClusterSize: 4,
		PageSize:    4096,
		Pol:         core.DefaultPolicy(),
		Home:        func(addr int64) int { return int(addr/4096) % maxProcs },
		Mon:         mon,
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return rt, mon
}

// waitPoolSize blocks until the alive-worker count reaches want —
// drains complete asynchronously on the victims' own goroutines.
func waitPoolSize(t *testing.T, rt *Runtime, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for rt.PoolSize() != want {
		if time.Now().After(deadline) {
			t.Fatalf("pool size stuck at %d, want %d", rt.PoolSize(), want)
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// waitGoroutines polls until the process goroutine count settles back
// near base — the grow/shrink leak guard.
func waitGoroutines(t *testing.T, label string, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("%s: %d goroutines alive 2s after Run (baseline %d):\n%s",
				label, runtime.NumGoroutine(), base, buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestElasticScaleUpDown is the acceptance scenario: a 4-worker pool
// grows to 16 mid-run, absorbs a burst targeted at every slot, and
// drains back to 4 — with zero task loss, zero set splits, exactly-once
// execution, and the full add/drain timeline in PoolEvents.
func TestElasticScaleUpDown(t *testing.T) {
	t.Run("deque", func(t *testing.T) { elasticScaleUpDown(t, nil) })
	t.Run("mutex", func(t *testing.T) { elasticScaleUpDown(t, mutexMode) })
}

func elasticScaleUpDown(t *testing.T, mode func(*Config)) {
	const procs, maxProcs = 4, 16
	const perBurst = 400
	rt, mon := elasticRuntime(t, procs, maxProcs, mode)
	var ran [3 * perBurst]int32
	pump := func(c *Ctx, burst int) {
		c.WaitFor(func() {
			for i := 0; i < perBurst; i++ {
				k := burst*perBurst + i
				var aff core.Affinity
				switch i % 3 {
				case 0:
					aff = core.Affinity{Kind: core.AffProcessor, Processor: i % maxProcs}
				case 1:
					aff = core.Affinity{Kind: core.AffTask, TaskObj: int64(1 + i%6*4096)}
				}
				c.Spawn("leaf", aff, nil, func(*Ctx) {
					atomic.AddInt32(&ran[k], 1)
					time.Sleep(5 * time.Microsecond)
				})
			}
		})
	}
	err := rt.Run(func(c *Ctx) {
		pump(c, 0) // at the initial size
		ids, err := rt.AddWorkers(maxProcs - procs)
		if err != nil {
			t.Errorf("AddWorkers: %v", err)
			return
		}
		if len(ids) != maxProcs-procs || rt.PoolSize() != maxProcs {
			t.Errorf("AddWorkers ids=%v PoolSize=%d, want %d workers", ids, rt.PoolSize(), maxProcs)
			return
		}
		pump(c, 1) // at full size
		if _, err := rt.DrainN(maxProcs - procs); err != nil {
			t.Errorf("DrainN: %v", err)
			return
		}
		waitPoolSize(t, rt, procs)
		pump(c, 2) // back at the initial size
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for k, n := range ran {
		if n != 1 {
			t.Fatalf("task %d ran %d times, want exactly once", k, n)
		}
	}
	if rt.SetSplits() != 0 {
		t.Fatalf("SetSplits=%d want 0", rt.SetSplits())
	}
	if rt.QueuedTasks() != 0 {
		t.Fatalf("%d tasks still queued", rt.QueuedTasks())
	}
	for _, w := range rt.workers {
		if n := w.queued.Load(); n != 0 {
			t.Fatalf("worker %d queued hint %d", w.id, n)
		}
	}
	assertWorkerQueuesEmpty(t, rt, "scale-up-down")
	adds, drains := 0, 0
	for _, ev := range rt.PoolEvents() {
		switch ev.Kind {
		case "add":
			adds++
		case "drain":
			drains++
			if ev.DurationNS < 0 {
				t.Fatalf("drain event %+v has negative latency", ev)
			}
		default:
			t.Fatalf("unexpected pool event kind %q", ev.Kind)
		}
	}
	if adds != maxProcs-procs || drains != maxProcs-procs {
		t.Fatalf("pool events: %d adds, %d drains, want %d each", adds, drains, maxProcs-procs)
	}
	var addedRan int64
	for id := procs; id < maxProcs; id++ {
		addedRan += mon.Per[id].TasksRun
	}
	if addedRan == 0 {
		t.Fatalf("workers added mid-run executed no tasks")
	}
}

// TestElasticChurnStress is the elastic torture test: a controller
// goroutine randomly grows and drains the pool (and a fault plan kills
// one worker outright) while spawners pump SpawnN bursts of mixed
// plain/processor/object/task-affinity work over shared hot sets. Under
// -race -count=3 it hammers every membership transition against
// concurrent placement and whole-set stealing; exactly-once execution,
// zero SetSplits, empty queues, settled hints, and no leaked goroutines
// are the invariants.
func TestElasticChurnStress(t *testing.T) {
	t.Run("deque", func(t *testing.T) { elasticChurnStress(t, nil) })
	t.Run("mutex", func(t *testing.T) { elasticChurnStress(t, mutexMode) })
}

func elasticChurnStress(t *testing.T, mode func(*Config)) {
	const procs, maxProcs = 4, 12
	const spawners = 12
	const perSpawner = 120
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		base := runtime.NumGoroutine()
		victim := 1 + rng.Intn(procs-1) // never worker 0: it carries the root waitfor
		p := (&fault.Plan{}).Fail(victim, int64(300_000+rng.Intn(700_000)))
		rt, mon := elasticRuntime(t, procs, maxProcs, func(cfg *Config) {
			cfg.Faults = p
			cfg.InvokeN = func(c *Ctx, payload any, i int) { payload.(func(*Ctx, int))(c, i) }
			if mode != nil {
				mode(cfg)
			}
		})
		affs := make([][]core.Affinity, spawners)
		for i := range affs {
			affs[i] = make([]core.Affinity, perSpawner)
			for j := range affs[i] {
				switch rng.Intn(4) {
				case 0:
					affs[i][j] = core.Affinity{}
				case 1:
					// Hot sets shared across spawners so placements chase
					// homes that churn keeps moving.
					affs[i][j] = core.Affinity{Kind: core.AffTask, TaskObj: int64(1 + rng.Intn(6)*4096)}
				case 2:
					affs[i][j] = core.Affinity{Kind: core.AffObject, ObjectObj: int64(1 + rng.Intn(32)*4096)}
				case 3:
					affs[i][j] = core.Affinity{Kind: core.AffProcessor, Processor: rng.Intn(maxProcs)}
				}
			}
		}
		var ran [spawners * perSpawner]int32
		stop := make(chan struct{})
		churnDone := make(chan struct{})
		err := rt.Run(func(c *Ctx) {
			go func() {
				// The churn controller: random grows and planned drains,
				// concurrent with the fault-injected kill. Capacity-
				// exhausted and survivor-rule errors are expected — the
				// point is that no interleaving loses work.
				defer close(churnDone)
				crng := rand.New(rand.NewSource(seed * 77))
				for {
					select {
					case <-stop:
						return
					default:
					}
					rt.AddWorkers(1 + crng.Intn(4))
					time.Sleep(time.Duration(30+crng.Intn(120)) * time.Microsecond)
					rt.DrainN(1 + crng.Intn(3))
					time.Sleep(time.Duration(30+crng.Intn(120)) * time.Microsecond)
				}
			}()
			c.WaitFor(func() {
				for i := 0; i < spawners; i++ {
					i := i
					c.Spawn("spawner", core.Affinity{Kind: core.AffProcessor, Processor: i % procs}, nil, func(c *Ctx) {
						c.SpawnN("leaf", perSpawner, func(j int) (core.Affinity, *Monitor, int8, int64) {
							return affs[i][j], nil, 0, 0
						}, func(_ *Ctx, j int) {
							atomic.AddInt32(&ran[i*perSpawner+j], 1)
							time.Sleep(10 * time.Microsecond)
						})
					})
				}
			})
			close(stop)
			<-churnDone
		})
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		for k, n := range ran {
			if n != 1 {
				t.Fatalf("seed %d: task %d ran %d times, want exactly once", seed, k, n)
			}
		}
		total := mon.Total()
		if want := int64(1 + spawners + spawners*perSpawner); total.TasksRun != want {
			t.Fatalf("seed %d: TasksRun=%d want %d", seed, total.TasksRun, want)
		}
		if rt.SetSplits() != 0 {
			t.Fatalf("seed %d: SetSplits=%d want 0", seed, rt.SetSplits())
		}
		if rt.QueuedTasks() != 0 {
			t.Fatalf("seed %d: %d tasks still queued", seed, rt.QueuedTasks())
		}
		// Every queue — alive, drained, killed, or spare — must be empty
		// with its hints settled back to zero.
		for _, w := range rt.workers {
			if n := w.queued.Load(); n != 0 {
				t.Fatalf("seed %d: worker %d queued hint %d", seed, w.id, n)
			}
		}
		assertWorkerQueuesEmpty(t, rt, fmt.Sprintf("seed %d", seed))
		kills := 0
		for _, ev := range rt.PoolEvents() {
			if ev.Kind == "kill" {
				kills++
				if ev.Proc != victim {
					t.Fatalf("seed %d: kill event on worker %d, victim was %d", seed, ev.Proc, victim)
				}
			}
		}
		if kills > 1 {
			t.Fatalf("seed %d: %d kill events for one Fail", seed, kills)
		}
		waitGoroutines(t, fmt.Sprintf("seed %d", seed), base)
	}
}

// TestElasticValidation covers the rejection surface: growth without
// capacity, over-growth, draining the last worker, double drains, and
// out-of-range ids.
func TestElasticValidation(t *testing.T) {
	// A fixed pool refuses elastic calls outright.
	fixed, _ := testRuntime(t, 2, nil)
	err := fixed.Run(func(c *Ctx) {
		if _, err := fixed.AddWorkers(1); err == nil {
			t.Error("AddWorkers on a fixed pool succeeded")
		}
		if err := fixed.Drain(1); err == nil {
			t.Error("Drain on a fixed pool succeeded")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	rt, _ := elasticRuntime(t, 2, 4, nil)
	// Outside a run both directions are refused.
	if _, err := rt.AddWorkers(1); err == nil {
		t.Fatal("AddWorkers before Run succeeded")
	}
	if err := rt.Drain(1); err == nil {
		t.Fatal("Drain before Run succeeded")
	}
	err = rt.Run(func(c *Ctx) {
		if _, err := rt.AddWorkers(0); err == nil {
			t.Error("AddWorkers(0) succeeded")
		}
		if _, err := rt.AddWorkers(3); err == nil {
			t.Error("AddWorkers past capacity succeeded")
		}
		if err := rt.Drain(7); err == nil {
			t.Error("Drain of an out-of-range id succeeded")
		}
		if err := rt.Drain(3); err == nil {
			t.Error("Drain of a dead spare succeeded")
		}
		if err := rt.Drain(0, 1); err == nil {
			t.Error("Drain of the whole pool succeeded")
		}
		if err := rt.Drain(1, 1); err == nil {
			t.Error("duplicate Drain ids succeeded")
		}
		if err := rt.Drain(1); err != nil {
			t.Errorf("Drain(1): %v", err)
		}
		if err := rt.Drain(1); err == nil {
			t.Error("second Drain of a draining worker succeeded")
		}
		if err := rt.Drain(0); err == nil {
			t.Error("Drain leaving zero undrained workers succeeded")
		}
		waitPoolSize(t, rt, 1)
		// The freed slot is a spare again: growth brings it back.
		if ids, err := rt.AddWorkers(1); err != nil || len(ids) != 1 {
			t.Errorf("AddWorkers after drain: ids=%v err=%v", ids, err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestShedExpiredDeadline spawns tasks whose deadline has already
// passed: the SLO layer must shed every one at dispatch — counted as
// deadline misses, completing their scope — while in-deadline siblings
// run normally.
func TestShedExpiredDeadline(t *testing.T) {
	rt, mon := testRuntime(t, 2, func(cfg *Config) {
		cfg.Shed = &ShedConfig{}
	})
	const n = 50
	var ran atomic.Int64
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			for i := 0; i < n; i++ {
				// 1ns after start: expired by dispatch time.
				c.rt.spawn(c, "late", core.Affinity{}, nil, func(*Ctx) { ran.Add(1) }, nil, -1, 0, 1)
				c.rt.spawn(c, "fresh", core.Affinity{}, nil, func(*Ctx) { ran.Add(1) }, nil, -1, 0, time.Hour.Nanoseconds())
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	total := mon.Total()
	if total.DeadlineMisses != n || total.TasksShed != n {
		t.Fatalf("DeadlineMisses=%d TasksShed=%d, want %d each", total.DeadlineMisses, total.TasksShed, n)
	}
	if ran.Load() != n {
		t.Fatalf("ran %d tasks, want %d (only the in-deadline half)", ran.Load(), n)
	}
	if rt.QueuedTasks() != 0 {
		t.Fatalf("%d tasks still queued", rt.QueuedTasks())
	}
}

// TestShedPriorityFloor drives a single worker far past the backlog
// watermark with a mix of priority classes: the floor controller must
// shed from the lowest class first, and class 7 must never be shed on
// priority grounds — every priority-7 task runs even under maximal
// overload.
func TestShedPriorityFloor(t *testing.T) {
	rt, mon := testRuntime(t, 1, func(cfg *Config) {
		cfg.Shed = &ShedConfig{QueueHighWater: 1}
	})
	const low, high = 400, 40
	var ranLow, ranHigh atomic.Int64
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			for i := 0; i < low; i++ {
				c.rt.spawn(c, "low", core.Affinity{}, nil, func(*Ctx) {
					ranLow.Add(1)
					time.Sleep(100 * time.Microsecond)
				}, nil, -1, 0, 0)
			}
			for i := 0; i < high; i++ {
				c.rt.spawn(c, "high", core.Affinity{}, nil, func(*Ctx) {
					ranHigh.Add(1)
					time.Sleep(100 * time.Microsecond)
				}, nil, -1, 7, 0)
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	total := mon.Total()
	if ranHigh.Load() != high {
		t.Fatalf("only %d of %d priority-7 tasks ran; class 7 must never be shed", ranHigh.Load(), high)
	}
	if total.TasksShed == 0 {
		t.Fatal("overload shed nothing: the floor never engaged")
	}
	if got := ranLow.Load() + total.TasksShed; got != low {
		t.Fatalf("low-priority ran %d + shed %d = %d, want %d (every task runs or sheds exactly once)",
			ranLow.Load(), total.TasksShed, got, low)
	}
	if total.DeadlineMisses != 0 {
		t.Fatalf("DeadlineMisses=%d on a deadline-free run", total.DeadlineMisses)
	}
}

// TestShedRetryDefers arms RetryShed: below-floor tasks re-queue with
// backoff instead of dropping, so once the backlog clears they still
// run — shedding degrades latency, not completeness, when the retry
// budget suffices.
func TestShedRetryDefers(t *testing.T) {
	rt, mon := testRuntime(t, 1, func(cfg *Config) {
		cfg.Shed = &ShedConfig{QueueHighWater: 1, RetryShed: true}
		cfg.Retry = RetryConfig{MaxAttempts: 100, BackoffNS: 100_000}
	})
	const n = 200
	var ran atomic.Int64
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			for i := 0; i < n; i++ {
				c.rt.spawn(c, "work", core.Affinity{}, nil, func(*Ctx) {
					ran.Add(1)
					time.Sleep(50 * time.Microsecond)
				}, nil, -1, int8(i%2), 0)
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	total := mon.Total()
	if got := ran.Load() + total.TasksShed; got != n {
		t.Fatalf("ran %d + shed %d = %d, want %d", ran.Load(), total.TasksShed, got, n)
	}
	if ran.Load() < n/2 {
		t.Fatalf("only %d of %d tasks ran; RetryShed should defer, not drop, most work", ran.Load(), n)
	}
}

// TestAutoscaler arms the threshold controller on a 2-worker pool with
// 8 slots: a burst of slow tasks must grow the pool, and the post-burst
// idle must drain it back to the floor — both visible as PoolEvents and
// as the final pool size.
func TestAutoscaler(t *testing.T) {
	rt, _ := elasticRuntime(t, 2, 8, func(cfg *Config) {
		cfg.Autoscale = &AutoscaleConfig{IntervalNS: 200_000, HighWater: 2, LowWater: 1, Step: 2}
	})
	const n = 600
	var ran atomic.Int64
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			for i := 0; i < n; i++ {
				c.Spawn("slow", core.Affinity{}, nil, func(*Ctx) {
					ran.Add(1)
					time.Sleep(50 * time.Microsecond)
				})
			}
		})
		// Backlog is gone; the low watermark should now drain the pool
		// back to its floor (the initial Procs).
		waitPoolSize(t, rt, 2)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran.Load() != n {
		t.Fatalf("ran %d of %d tasks", ran.Load(), n)
	}
	adds, drains := 0, 0
	for _, ev := range rt.PoolEvents() {
		switch ev.Kind {
		case "add":
			adds++
		case "drain":
			drains++
		}
	}
	if adds == 0 {
		t.Fatal("autoscaler never grew the pool under backlog")
	}
	if drains == 0 {
		t.Fatal("autoscaler never drained the pool after the backlog cleared")
	}
	if rt.SetSplits() != 0 {
		t.Fatalf("SetSplits=%d want 0", rt.SetSplits())
	}
	assertWorkerQueuesEmpty(t, rt, "autoscaler")
}

// TestFixedPoolReportsNoPoolEvents pins the healthy-run baseline: a
// fixed-size fault-free run must report an empty membership timeline.
func TestFixedPoolReportsNoPoolEvents(t *testing.T) {
	rt, _ := testRuntime(t, 4, nil)
	err := rt.Run(func(c *Ctx) {
		c.WaitFor(func() {
			for i := 0; i < 100; i++ {
				c.Spawn("t", core.Affinity{}, nil, func(*Ctx) {})
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if evs := rt.PoolEvents(); len(evs) != 0 {
		t.Fatalf("healthy fixed-size run reported pool events: %+v", evs)
	}
	if rt.PoolSize() != 4 {
		t.Fatalf("PoolSize=%d want 4", rt.PoolSize())
	}
}
