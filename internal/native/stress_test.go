package native

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/coolrts/cool/internal/core"
)

// TestStallBackoffSequence pins the exponential park backoff: the first
// timed park waits backoffBase, each further consecutive miss doubles
// it, and the wait saturates at backoffCap.
func TestStallBackoffSequence(t *testing.T) {
	want := []time.Duration{
		20 * time.Microsecond,  // misses == parkRetryLimit
		40 * time.Microsecond,  // +1
		80 * time.Microsecond,  // +2
		160 * time.Microsecond, // +3
		320 * time.Microsecond, // +4
		640 * time.Microsecond, // +5
		time.Millisecond,       // +6: saturated
		time.Millisecond,       // +7: stays saturated
	}
	for i, w := range want {
		if got := stallBackoff(parkRetryLimit + i); got != w {
			t.Fatalf("stallBackoff(%d) = %v, want %v", parkRetryLimit+i, got, w)
		}
	}
	// Misses below the limit never reach a timed park, but the function
	// must still answer sanely (the base) if asked.
	for m := 0; m < parkRetryLimit; m++ {
		if got := stallBackoff(m); got != backoffBase {
			t.Fatalf("stallBackoff(%d) = %v, want %v", m, got, backoffBase)
		}
	}
	// Very large miss counts must not overflow into tiny or negative
	// durations.
	if got := stallBackoff(1 << 30); got != backoffCap {
		t.Fatalf("stallBackoff(big) = %v, want %v", got, backoffCap)
	}
}

// assertWorkerQueuesEmpty checks, after a quiesced run, that every
// queue structure on every worker — mutex-mode plain queue, deque-mode
// Chase-Lev deque, inbox, and pinned queue, and the affinity slots in
// both modes — drained completely, and that every lock-free hint
// (queued, stealable, lockedWork, setQueued) settled back to zero.
// A residual entry means a task was lost; residual hints mean a
// counter-maintenance path missed a decrement.
func assertWorkerQueuesEmpty(t *testing.T, rt *Runtime, label string) {
	t.Helper()
	for _, w := range rt.workers {
		if w.plain.size != 0 {
			t.Fatalf("%s: worker %d plain queue size %d", label, w.id, w.plain.size)
		}
		if n := w.deq.size(); n != 0 {
			t.Fatalf("%s: worker %d deque size %d", label, w.id, n)
		}
		if !w.inbox.empty() {
			t.Fatalf("%s: worker %d inbox not empty", label, w.id)
		}
		if w.pinned.size != 0 {
			t.Fatalf("%s: worker %d pinned queue size %d", label, w.id, w.pinned.size)
		}
		if n := w.stealable.Load(); n != 0 {
			t.Fatalf("%s: worker %d stealable hint drifted to %d", label, w.id, n)
		}
		if n := w.lockedWork.Load(); n != 0 {
			t.Fatalf("%s: worker %d lockedWork hint drifted to %d", label, w.id, n)
		}
		if n := w.setQueued.Load(); n != 0 {
			t.Fatalf("%s: worker %d setQueued hint drifted to %d", label, w.id, n)
		}
		for s := range w.slots {
			if w.slots[s].size != 0 {
				t.Fatalf("%s: worker %d slot %d size %d", label, w.id, s, w.slots[s].size)
			}
		}
	}
}

// TestConcurrentSetStealStress hammers the decentralized placement
// protocol: many workers concurrently spawn randomized mixes of plain,
// processor-, object-, and task-affinity work while steals relocate
// whole sets between them, and cluster-only stealing is flipped
// mid-run. Run under -race with -count=3, it is the torture test for
// the worker-lock/shard-lock ordering: a missed revalidation in
// placeSet or a racy whole-set move shows up as a set split, a lost
// task, or a residual queue entry. Both queue backends take the same
// hammering: the deque arm drains through the Chase-Lev/inbox paths,
// the mutex arm through the PR 5 locked queue.
func TestConcurrentSetStealStress(t *testing.T) {
	t.Run("deque", func(t *testing.T) { concurrentSetStealStress(t, nil) })
	t.Run("mutex", func(t *testing.T) { concurrentSetStealStress(t, mutexMode) })
}

func concurrentSetStealStress(t *testing.T, mode func(*Config)) {
	const procs = 12 // three clusters of four
	for _, seed := range []int64{1, 2, 3} {
		rt, mon := testRuntime(t, procs, func(cfg *Config) {
			cfg.Pol.ClusterStealFirst = true
			if mode != nil {
				mode(cfg)
			}
		})
		rng := rand.New(rand.NewSource(seed))
		// Pre-draw every spawn's affinity outside the tasks (the rng is
		// not goroutine-safe).
		const spawners = 16
		const perSpawner = 120
		affs := make([][]core.Affinity, spawners)
		for i := range affs {
			affs[i] = make([]core.Affinity, perSpawner)
			for j := range affs[i] {
				switch rng.Intn(4) {
				case 0:
					affs[i][j] = core.Affinity{}
				case 1:
					// A handful of hot sets shared across spawners, so
					// placements chase sets that steals keep re-homing.
					affs[i][j] = core.Affinity{Kind: core.AffTask, TaskObj: int64(1 + rng.Intn(6)*4096)}
				case 2:
					affs[i][j] = core.Affinity{Kind: core.AffObject, ObjectObj: int64(1 + rng.Intn(32)*4096)}
				case 3:
					affs[i][j] = core.Affinity{Kind: core.AffProcessor, Processor: rng.Intn(procs)}
				}
			}
		}
		var ran [spawners * perSpawner]int32
		err := rt.Run(func(c *Ctx) {
			c.WaitFor(func() {
				for i := 0; i < spawners; i++ {
					i := i
					c.Spawn("spawner", core.Affinity{Kind: core.AffProcessor, Processor: i % procs}, nil, func(c *Ctx) {
						for j, a := range affs[i] {
							k := i*perSpawner + j
							c.Spawn("leaf", a, nil, func(*Ctx) { ran[k]++ })
							if j == perSpawner/2 {
								// Flip the steal scope mid-stream; both
								// halves must still drain.
								rt.SetClusterStealingOnly(i%2 == 0)
							}
						}
						rt.SetClusterStealingOnly(false)
					})
				}
			})
		})
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		for k, n := range ran {
			if n != 1 {
				t.Fatalf("seed %d: task %d ran %d times", seed, k, n)
			}
		}
		total := mon.Total()
		if want := int64(1 + spawners + spawners*perSpawner); total.TasksRun != want {
			t.Fatalf("seed %d: TasksRun=%d want %d", seed, total.TasksRun, want)
		}
		if rt.SetSplits() != 0 {
			t.Fatalf("seed %d: SetSplits=%d want 0", seed, rt.SetSplits())
		}
		if rt.QueuedTasks() != 0 {
			t.Fatalf("seed %d: %d tasks still queued", seed, rt.QueuedTasks())
		}
		// Every queue must be empty — a task left on a slot whose
		// non-empty link was lost would hide from QueuedTasks.
		assertWorkerQueuesEmpty(t, rt, fmt.Sprintf("seed %d", seed))
	}
}
