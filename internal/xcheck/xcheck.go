// Package xcheck is the differential cross-validation harness: it runs
// every registered application on both execution backends and fails if
// they disagree. Each (app, variant, processor-count) cell runs four
// times — a simulator reference, a simulator run under a different steal
// seed, and two native runs — and every run must match the reference
// token for token (schedule-dependent tokens excepted at P>1), run the
// same number of tasks, and keep task-affinity sets whole.
//
// The harness is the repo's ground-truth check that the native backend
// implements the same scheduling semantics as the simulator: a placement
// bug, a lost wakeup, a split set, or a dropped task shows up as a
// mismatch in some cell. It backs `coolbench -xcheck` and the CI smoke
// job.
package xcheck

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/apps"
)

// Options configures one differential sweep.
type Options struct {
	// Procs lists the machine sizes to cross-check (default 1, 2, 4, 8, 16).
	Procs []int
	// Small shrinks every app to a smoke-test workload.
	Small bool
	// Apps restricts the sweep to the named applications (default: all).
	Apps []string
	// Out receives one "ok"/"FAIL" line per cell (default: discard).
	Out io.Writer
}

// smallSizes are the smoke workloads (apps constrain their own sizes:
// blockcho needs a multiple of its 32-wide block, locusroute's size is
// wires per region).
var smallSizes = map[string]int{
	"pancho":     24,
	"ocean":      64,
	"locusroute": 8,
	"blockcho":   128,
	"barneshut":  256,
	"gauss":      64,
	"phaseflip":  80,
}

// scheduleTokens lists, per app, Verify tokens whose values legitimately
// depend on execution order and so may differ between schedules at P>1:
// the router's cost depends on the order wires observe each other's
// congestion, and the linear-algebra residuals shift at rounding level
// (~1e-15) with FP accumulation order. At P=1 both backends execute the
// identical serial order, so every token must match exactly.
var scheduleTokens = map[string]map[string]bool{
	"locusroute": {"cost": true},
	"pancho":     {"residual": true, "maxdiff": true},
	"blockcho":   {"maxdiff": true},
}

// Run executes the sweep and returns an error describing every failed
// cell (nil when all cells pass).
func Run(opts Options) error {
	procs := opts.Procs
	if len(procs) == 0 {
		procs = []int{1, 2, 4, 8, 16}
	}
	out := opts.Out
	if out == nil {
		out = io.Discard
	}
	names := opts.Apps
	if len(names) == 0 {
		names = apps.Names()
	}
	var failures []string
	for _, name := range names {
		app, ok := apps.Lookup(name)
		if !ok {
			return fmt.Errorf("xcheck: unknown app %q (have %v)", name, apps.Names())
		}
		size := 0
		if opts.Small {
			size = smallSizes[name]
		}
		// The Base variant and the most optimized one bracket the
		// scheduling-policy space; the middle variants add no new
		// placement mechanisms.
		variants := []string{app.Variants[0]}
		if last := app.Variants[len(app.Variants)-1]; last != variants[0] {
			variants = append(variants, last)
		}
		for _, variant := range variants {
			for _, p := range procs {
				cell := fmt.Sprintf("%s %s P=%d", name, variant, p)
				if msgs := checkCell(app, variant, p, size); len(msgs) > 0 {
					for _, m := range msgs {
						failures = append(failures, cell+": "+m)
					}
					fmt.Fprintf(out, "FAIL %s: %s\n", cell, strings.Join(msgs, "; "))
				} else {
					fmt.Fprintf(out, "ok   %s\n", cell)
				}
			}
		}
	}
	// The SLO cells: per-spawn priority and deadline options armed on
	// both backends, differentially validated against each other.
	for _, p := range procs {
		cell := fmt.Sprintf("slo synthetic P=%d", p)
		if msgs := checkSLOCell(p); len(msgs) > 0 {
			for _, m := range msgs {
				failures = append(failures, cell+": "+m)
			}
			fmt.Fprintf(out, "FAIL %s: %s\n", cell, strings.Join(msgs, "; "))
		} else {
			fmt.Fprintf(out, "ok   %s\n", cell)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("xcheck: %d mismatches:\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

// checkSLOCell differentially validates the per-spawn SLO options at a
// fixed P: a deterministic task graph spawned with the full spread of
// priority classes and far-future deadlines must produce identical
// results and task counts on the simulator and on the native backend
// with shedding armed. With no overload and no expirable deadline, the
// options must steer shedding policy only — never results — so any
// divergence (a shed task, a missed deadline, a changed sum) is a
// semantic bug in the new native SLO paths.
func checkSLOCell(procs int) []string {
	const n = 256
	run := func(cfg cool.Config) (int64, cool.Report, error) {
		rt, err := cool.NewRuntime(cfg)
		if err != nil {
			return 0, cool.Report{}, err
		}
		var sum atomic.Int64
		err = rt.Run(func(ctx *cool.Ctx) {
			ctx.WaitFor(func() {
				for i := 0; i < n; i++ {
					i := i
					ctx.Spawn("slo", func(*cool.Ctx) { sum.Add(int64(i*i + 1)) },
						cool.WithPriority(i%8),
						cool.WithDeadline(1<<60)) // never fires on either clock scale
				}
			})
		})
		return sum.Load(), rt.Report(), err
	}
	var msgs []string
	simSum, simRep, err := run(cool.Config{Processors: procs})
	if err != nil {
		return []string{"sim: " + err.Error()}
	}
	natSum, natRep, err := run(cool.Config{
		Processors: procs,
		Backend:    cool.BackendNative,
		// Armed but unreachable: the dispatch-time shed hook and the
		// floor controller run on every task without ever firing.
		Shed: &cool.ShedPolicy{QueueHighWater: 1 << 20},
	})
	if err != nil {
		return []string{"native: " + err.Error()}
	}
	if simSum != natSum {
		msgs = append(msgs, fmt.Sprintf("result sum: sim %d, native %d", simSum, natSum))
	}
	if simRep.Total.TasksRun != natRep.Total.TasksRun {
		msgs = append(msgs, fmt.Sprintf("tasks run: sim %d, native %d",
			simRep.Total.TasksRun, natRep.Total.TasksRun))
	}
	for _, b := range []struct {
		label string
		rep   cool.Report
	}{{"sim", simRep}, {"native", natRep}} {
		if b.rep.Total.TasksShed != 0 || b.rep.Total.DeadlineMisses != 0 {
			msgs = append(msgs, fmt.Sprintf("%s: shed %d tasks, %d deadline misses on an unloaded run",
				b.label, b.rep.Total.TasksShed, b.rep.Total.DeadlineMisses))
		}
		if b.rep.SetSplits != 0 {
			msgs = append(msgs, fmt.Sprintf("%s: %d set splits", b.label, b.rep.SetSplits))
		}
	}
	return msgs
}

// checkCell runs one (app, variant, procs) cell: a simulator reference,
// then a seed-perturbed simulator run and two native runs, each compared
// against the reference.
func checkCell(app apps.App, variant string, procs, size int) []string {
	ref, err := app.RunCfg(cool.Config{Processors: procs}, variant, size)
	if err != nil {
		return []string{"sim reference: " + err.Error()}
	}
	var msgs []string
	if ref.Report.SetSplits != 0 {
		msgs = append(msgs, fmt.Sprintf("sim reference: %d set splits", ref.Report.SetSplits))
	}
	ignore := scheduleTokens[app.Name]
	if procs == 1 {
		ignore = nil // serial order is identical on both backends
	}
	check := func(label string, res apps.Result, err error) {
		if err != nil {
			msgs = append(msgs, label+": "+err.Error())
			return
		}
		if d := diffVerify(ref.Verify, res.Verify, ignore); d != "" {
			msgs = append(msgs, label+": "+d)
		}
		if got, want := res.Report.Total.TasksRun, ref.Report.Total.TasksRun; got != want {
			msgs = append(msgs, fmt.Sprintf("%s: ran %d tasks, reference ran %d", label, got, want))
		}
		if res.Report.SetSplits != 0 {
			msgs = append(msgs, fmt.Sprintf("%s: %d set splits", label, res.Report.SetSplits))
		}
	}
	// A different steal seed perturbs victim choice but must not change
	// results beyond the declared schedule-dependent tokens.
	res, err := app.RunCfg(cool.Config{Processors: procs, Seed: 7}, variant, size)
	check("sim seed=7", res, err)
	// Two native runs: real goroutine interleavings differ run to run,
	// so one passing run is weaker evidence than two.
	for i := 1; i <= 2; i++ {
		res, err := app.RunCfg(cool.Config{Processors: procs, Backend: cool.BackendNative}, variant, size)
		check(fmt.Sprintf("native run %d", i), res, err)
	}
	// An armed native run: retries enabled and a generous deadline.
	// With no faults injected neither can fire, so the robustness
	// machinery (timekeeper goroutine, dispatch-point checks) must not
	// perturb results — this is the overhead path's semantic check.
	res, err = app.RunCfg(cool.Config{
		Processors: procs,
		Backend:    cool.BackendNative,
		Retry:      &cool.RetryPolicy{},
		Deadline:   30_000_000_000, // 30s wall clock: far beyond any cell
	}, variant, size)
	check("native armed", res, err)
	// An SLO-armed native run: shedding enabled with an unreachable
	// watermark, so the dispatch-time shed hook and the timekeeper's
	// floor controller execute on every task without ever firing — the
	// overhead path of the SLO layer must not perturb results either.
	res, err = app.RunCfg(cool.Config{
		Processors: procs,
		Backend:    cool.BackendNative,
		Shed:       &cool.ShedPolicy{QueueHighWater: 1 << 20},
	}, variant, size)
	check("native slo-armed", res, err)
	// An adaptive sim run: the online controller armed with a short
	// epoch so it decides many times per cell. The controller may only
	// change the schedule (steal scope, wake fanout), never results, so
	// every non-schedule token must still match the reference — and the
	// run is fully deterministic like any other simulator run.
	res, err = app.RunCfg(cool.Config{
		Processors: procs,
		Adapt:      &cool.AdaptPolicy{Epoch: 10_000},
	}, variant, size)
	check("sim adaptive", res, err)
	if err == nil && (res.Report.Total.TasksShed != 0 || res.Report.Total.DeadlineMisses != 0) {
		msgs = append(msgs, fmt.Sprintf("native slo-armed: shed %d tasks, %d deadline misses on an unloaded run",
			res.Report.Total.TasksShed, res.Report.Total.DeadlineMisses))
	}
	return msgs
}

// diffVerify compares two key=value Verify strings token for token,
// skipping ignored keys; it describes the first difference, or returns
// "" when the results are differentially identical. (Same contract as
// the chaos harness's comparator.)
func diffVerify(want, got string, ignore map[string]bool) string {
	a, b := strings.Fields(want), strings.Fields(got)
	if len(a) != len(b) {
		return fmt.Sprintf("verify shape differs: %q vs %q", want, got)
	}
	for i := range a {
		key, _, _ := strings.Cut(a[i], "=")
		if ignore[key] {
			continue
		}
		if a[i] != b[i] {
			return fmt.Sprintf("%s: want %q, got %q", key, a[i], b[i])
		}
	}
	return ""
}
