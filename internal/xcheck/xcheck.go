// Package xcheck is the differential cross-validation harness: it runs
// every registered application on both execution backends and fails if
// they disagree. Each (app, variant, processor-count) cell runs four
// times — a simulator reference, a simulator run under a different steal
// seed, and two native runs — and every run must match the reference
// token for token (schedule-dependent tokens excepted at P>1), run the
// same number of tasks, and keep task-affinity sets whole.
//
// The harness is the repo's ground-truth check that the native backend
// implements the same scheduling semantics as the simulator: a placement
// bug, a lost wakeup, a split set, or a dropped task shows up as a
// mismatch in some cell. It backs `coolbench -xcheck` and the CI smoke
// job.
package xcheck

import (
	"fmt"
	"io"
	"strings"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/apps"
)

// Options configures one differential sweep.
type Options struct {
	// Procs lists the machine sizes to cross-check (default 1, 2, 4, 8, 16).
	Procs []int
	// Small shrinks every app to a smoke-test workload.
	Small bool
	// Apps restricts the sweep to the named applications (default: all).
	Apps []string
	// Out receives one "ok"/"FAIL" line per cell (default: discard).
	Out io.Writer
}

// smallSizes are the smoke workloads (apps constrain their own sizes:
// blockcho needs a multiple of its 32-wide block, locusroute's size is
// wires per region).
var smallSizes = map[string]int{
	"pancho":     24,
	"ocean":      64,
	"locusroute": 8,
	"blockcho":   128,
	"barneshut":  256,
	"gauss":      64,
}

// scheduleTokens lists, per app, Verify tokens whose values legitimately
// depend on execution order and so may differ between schedules at P>1:
// the router's cost depends on the order wires observe each other's
// congestion, and the linear-algebra residuals shift at rounding level
// (~1e-15) with FP accumulation order. At P=1 both backends execute the
// identical serial order, so every token must match exactly.
var scheduleTokens = map[string]map[string]bool{
	"locusroute": {"cost": true},
	"pancho":     {"residual": true, "maxdiff": true},
	"blockcho":   {"maxdiff": true},
}

// Run executes the sweep and returns an error describing every failed
// cell (nil when all cells pass).
func Run(opts Options) error {
	procs := opts.Procs
	if len(procs) == 0 {
		procs = []int{1, 2, 4, 8, 16}
	}
	out := opts.Out
	if out == nil {
		out = io.Discard
	}
	names := opts.Apps
	if len(names) == 0 {
		names = apps.Names()
	}
	var failures []string
	for _, name := range names {
		app, ok := apps.Lookup(name)
		if !ok {
			return fmt.Errorf("xcheck: unknown app %q (have %v)", name, apps.Names())
		}
		size := 0
		if opts.Small {
			size = smallSizes[name]
		}
		// The Base variant and the most optimized one bracket the
		// scheduling-policy space; the middle variants add no new
		// placement mechanisms.
		variants := []string{app.Variants[0]}
		if last := app.Variants[len(app.Variants)-1]; last != variants[0] {
			variants = append(variants, last)
		}
		for _, variant := range variants {
			for _, p := range procs {
				cell := fmt.Sprintf("%s %s P=%d", name, variant, p)
				if msgs := checkCell(app, variant, p, size); len(msgs) > 0 {
					for _, m := range msgs {
						failures = append(failures, cell+": "+m)
					}
					fmt.Fprintf(out, "FAIL %s: %s\n", cell, strings.Join(msgs, "; "))
				} else {
					fmt.Fprintf(out, "ok   %s\n", cell)
				}
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("xcheck: %d mismatches:\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

// checkCell runs one (app, variant, procs) cell: a simulator reference,
// then a seed-perturbed simulator run and two native runs, each compared
// against the reference.
func checkCell(app apps.App, variant string, procs, size int) []string {
	ref, err := app.RunCfg(cool.Config{Processors: procs}, variant, size)
	if err != nil {
		return []string{"sim reference: " + err.Error()}
	}
	var msgs []string
	if ref.Report.SetSplits != 0 {
		msgs = append(msgs, fmt.Sprintf("sim reference: %d set splits", ref.Report.SetSplits))
	}
	ignore := scheduleTokens[app.Name]
	if procs == 1 {
		ignore = nil // serial order is identical on both backends
	}
	check := func(label string, res apps.Result, err error) {
		if err != nil {
			msgs = append(msgs, label+": "+err.Error())
			return
		}
		if d := diffVerify(ref.Verify, res.Verify, ignore); d != "" {
			msgs = append(msgs, label+": "+d)
		}
		if got, want := res.Report.Total.TasksRun, ref.Report.Total.TasksRun; got != want {
			msgs = append(msgs, fmt.Sprintf("%s: ran %d tasks, reference ran %d", label, got, want))
		}
		if res.Report.SetSplits != 0 {
			msgs = append(msgs, fmt.Sprintf("%s: %d set splits", label, res.Report.SetSplits))
		}
	}
	// A different steal seed perturbs victim choice but must not change
	// results beyond the declared schedule-dependent tokens.
	res, err := app.RunCfg(cool.Config{Processors: procs, Seed: 7}, variant, size)
	check("sim seed=7", res, err)
	// Two native runs: real goroutine interleavings differ run to run,
	// so one passing run is weaker evidence than two.
	for i := 1; i <= 2; i++ {
		res, err := app.RunCfg(cool.Config{Processors: procs, Backend: cool.BackendNative}, variant, size)
		check(fmt.Sprintf("native run %d", i), res, err)
	}
	// An armed native run: retries enabled and a generous deadline.
	// With no faults injected neither can fire, so the robustness
	// machinery (timekeeper goroutine, dispatch-point checks) must not
	// perturb results — this is the overhead path's semantic check.
	res, err = app.RunCfg(cool.Config{
		Processors: procs,
		Backend:    cool.BackendNative,
		Retry:      &cool.RetryPolicy{},
		Deadline:   30_000_000_000, // 30s wall clock: far beyond any cell
	}, variant, size)
	check("native armed", res, err)
	return msgs
}

// diffVerify compares two key=value Verify strings token for token,
// skipping ignored keys; it describes the first difference, or returns
// "" when the results are differentially identical. (Same contract as
// the chaos harness's comparator.)
func diffVerify(want, got string, ignore map[string]bool) string {
	a, b := strings.Fields(want), strings.Fields(got)
	if len(a) != len(b) {
		return fmt.Sprintf("verify shape differs: %q vs %q", want, got)
	}
	for i := range a {
		key, _, _ := strings.Cut(a[i], "=")
		if ignore[key] {
			continue
		}
		if a[i] != b[i] {
			return fmt.Sprintf("%s: want %q, got %q", key, a[i], b[i])
		}
	}
	return ""
}
