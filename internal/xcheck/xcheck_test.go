package xcheck

import (
	"strings"
	"testing"
)

// TestSmallSweep cross-checks every app at smoke sizes on one and two
// processors. The full matrix (P up to 8, default sizes) runs under
// `coolbench -xcheck` and in CI.
func TestSmallSweep(t *testing.T) {
	var out strings.Builder
	if err := Run(Options{Procs: []int{1, 2}, Small: true, Out: &out}); err != nil {
		t.Fatalf("differential sweep failed:\n%s\n%v", out.String(), err)
	}
	if !strings.Contains(out.String(), "ok   gauss") {
		t.Fatalf("sweep did not cover gauss:\n%s", out.String())
	}
}

func TestUnknownApp(t *testing.T) {
	if err := Run(Options{Apps: []string{"nope"}, Procs: []int{1}, Small: true}); err == nil {
		t.Fatal("expected error for unknown app")
	}
}

func TestDiffVerify(t *testing.T) {
	cases := []struct {
		want, got string
		ignore    map[string]bool
		same      bool
	}{
		{"checksum=1.5 tasks=10", "checksum=1.5 tasks=10", nil, true},
		{"checksum=1.5 tasks=10", "checksum=1.6 tasks=10", nil, false},
		{"cost=5 ok=true", "cost=9 ok=true", map[string]bool{"cost": true}, true},
		{"cost=5 ok=true", "cost=5 ok=false", map[string]bool{"cost": true}, false},
		{"a=1 b=2", "a=1", nil, false},
	}
	for i, tc := range cases {
		if got := diffVerify(tc.want, tc.got, tc.ignore); (got == "") != tc.same {
			t.Errorf("case %d: diff = %q, want same=%v", i, got, tc.same)
		}
	}
}
