package trace

import (
	"strings"
	"testing"
)

func TestNilLogIsDisabled(t *testing.T) {
	var l *Log
	if l.Enabled() {
		t.Fatal("nil log reported enabled")
	}
	l.Add(1, 0, KindRun, "t", 0) // must not panic
	if l.Events() != nil || l.Dropped() != 0 {
		t.Fatal("nil log returned data")
	}
	if l.String() == "" {
		t.Fatal("nil log String empty")
	}
	if l.Timeline(2, 100, 10) != "" {
		t.Fatal("nil log produced a timeline")
	}
}

func TestAddAndDump(t *testing.T) {
	l := New(10)
	l.Add(100, 0, KindEnqueue, "a", 3)
	l.Add(150, 1, KindRun, "a", 0)
	l.Add(400, 1, KindDone, "a", 0)
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[1].Kind != KindRun || evs[1].Proc != 1 {
		t.Fatalf("bad event %+v", evs[1])
	}
	dump := l.String()
	for _, want := range []string{"enqueue", "run", "done", "P01"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestCapacityDropsAreCounted(t *testing.T) {
	l := New(2)
	for i := 0; i < 5; i++ {
		l.Add(int64(i), 0, KindRun, "t", 0)
	}
	if len(l.Events()) != 2 || l.Dropped() != 3 {
		t.Fatalf("events=%d dropped=%d", len(l.Events()), l.Dropped())
	}
	if !strings.Contains(l.String(), "3 events dropped") {
		t.Fatal("dump does not mention drops")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindEnqueue: "enqueue", KindRun: "run", KindSteal: "steal",
		KindBlock: "block", KindReady: "ready", KindDone: "done",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(99).String() != "?" {
		t.Fatal("unknown kind not handled")
	}
}

func TestTimelineShapes(t *testing.T) {
	l := New(100)
	// P0 busy for the whole run; P1 busy for the second half only.
	l.Add(0, 0, KindRun, "a", 0)
	l.Add(1000, 0, KindDone, "a", 0)
	l.Add(500, 1, KindRun, "b", 0)
	l.Add(1000, 1, KindDone, "b", 0)
	tl := l.Timeline(2, 1000, 10)
	lines := strings.Split(strings.TrimSpace(tl), "\n")
	if len(lines) != 2 {
		t.Fatalf("timeline lines = %d:\n%s", len(lines), tl)
	}
	if strings.Count(lines[0], "#") != 10 {
		t.Fatalf("P0 should be fully busy: %s", lines[0])
	}
	p1 := lines[1][strings.Index(lines[1], "|")+1:]
	if !strings.HasPrefix(p1, ".....") || strings.Count(p1, "#") != 5 {
		t.Fatalf("P1 should be idle-then-busy: %s", lines[1])
	}
}

func TestTimelineBlockEndsInterval(t *testing.T) {
	l := New(100)
	l.Add(0, 0, KindRun, "a", 0)
	l.Add(200, 0, KindBlock, "a", 0)
	tl := l.Timeline(1, 1000, 10)
	if strings.Count(tl, "#") != 2 {
		t.Fatalf("expected 2 busy buckets: %s", tl)
	}
}

func TestTimelineOpenIntervalRunsToEnd(t *testing.T) {
	l := New(100)
	l.Add(500, 0, KindRun, "a", 0)
	// No Done event: the interval extends to the span end.
	tl := l.Timeline(1, 1000, 10)
	if strings.Count(tl, "#") != 5 {
		t.Fatalf("open interval mishandled: %s", tl)
	}
}
