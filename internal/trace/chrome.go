package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event JSON array (the
// "JSON Array Format" every trace_event consumer accepts). Timestamps
// are microseconds; the exporter maps one simulated cycle (or one native
// nanosecond) to one microsecond so the viewer's zoom levels stay
// useful.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`   // instant-event scope
	Cat   string         `json:"cat,omitempty"` // event category
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome writes events as Chrome trace_event JSON: per-processor
// "X" (complete) slices reconstructed from Run → Block/Done pairs — the
// same reconstruction Timeline uses — plus thread-scoped "i" (instant)
// markers for enqueues, steals, readies, faults, redistributions, and
// retries, and "M" metadata naming each processor row. backend labels
// the process ("sim" or "native"). The output loads in Perfetto and
// chrome://tracing.
func WriteChrome(w io.Writer, events []Event, procs int, backend string) error {
	var out []chromeEvent
	out = append(out, chromeEvent{
		Name: "process_name", Phase: "M", PID: 0, TID: 0,
		Args: map[string]any{"name": "cool (" + backend + ")"},
	})
	for p := 0; p < procs; p++ {
		out = append(out, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: p,
			Args: map[string]any{"name": fmt.Sprintf("P%02d", p)},
		})
	}

	// Reconstruct busy slices: a Run opens an interval on its processor,
	// the next Block/Done there closes it.
	openAt := make([]int64, procs)
	openTask := make([]string, procs)
	for i := range openAt {
		openAt[i] = -1
	}
	var maxT int64
	for _, e := range events {
		if e.Time > maxT {
			maxT = e.Time
		}
		p := int(e.Proc)
		inRange := p >= 0 && p < procs
		switch e.Kind {
		case KindRun:
			if inRange && openAt[p] < 0 {
				openAt[p] = e.Time
				openTask[p] = e.Task
			}
		case KindBlock, KindDone:
			if inRange && openAt[p] >= 0 {
				out = append(out, chromeEvent{
					Name: openTask[p], Phase: "X", Cat: "task",
					TS: openAt[p], Dur: maxI64(e.Time-openAt[p], 1),
					PID: 0, TID: p,
				})
				openAt[p] = -1
			}
		case KindEnqueue, KindReady:
			// Not bound to a processor (Proc=-1); mark on the target
			// server's row.
			tid := int(e.Arg)
			if tid < 0 || tid >= procs {
				tid = 0
			}
			out = append(out, chromeEvent{
				Name: e.Kind.String() + " " + e.Task, Phase: "i", Scope: "t",
				Cat: "queue", TS: e.Time, PID: 0, TID: tid,
				Args: map[string]any{"task": e.Task, "server": e.Arg},
			})
		case KindAdapt:
			// Policy decisions are machine-wide; render them as
			// global-scope instants so the viewer draws a full-height
			// marker at every controller action.
			out = append(out, chromeEvent{
				Name: "adapt " + e.Task, Phase: "i", Scope: "g",
				Cat: "adapt", TS: e.Time, PID: 0, TID: 0,
				Args: map[string]any{"decision": e.Task, "to": e.Arg},
			})
		case KindSteal, KindFault, KindRedistribute, KindRetry:
			if !inRange {
				continue
			}
			out = append(out, chromeEvent{
				Name: e.Kind.String() + " " + e.Task, Phase: "i", Scope: "t",
				Cat: "sched", TS: e.Time, PID: 0, TID: p,
				Args: map[string]any{"task": e.Task, "arg": e.Arg},
			})
		}
	}
	// Close intervals still open at the end of the trace (capacity hit or
	// run stopped mid-task).
	for p := range openAt {
		if openAt[p] >= 0 {
			out = append(out, chromeEvent{
				Name: openTask[p], Phase: "X", Cat: "task",
				TS: openAt[p], Dur: maxI64(maxT-openAt[p], 1),
				PID: 0, TID: p,
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
