// Package trace records scheduler events (task enqueue, dispatch, steal,
// block, resume, completion) with simulated timestamps, and renders them
// as a text log or a per-processor utilization timeline. Tracing is the
// observability counterpart of the DASH performance monitor: where
// perfmon counts, trace explains *when* and *where*.
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies one event.
type Kind uint8

const (
	// KindEnqueue: a task became runnable on a server's queue (Arg =
	// server).
	KindEnqueue Kind = iota
	// KindRun: a processor started or resumed a task (Proc = executor).
	KindRun
	// KindSteal: a task moved from victim (Arg) to thief (Proc).
	KindSteal
	// KindBlock: the running task parked on a monitor/condition/scope.
	KindBlock
	// KindReady: a blocked task was made runnable again (Arg = server
	// whose resume queue holds it).
	KindReady
	// KindDone: the task ran to completion on Proc.
	KindDone
	// KindFault: an injected fault struck Proc (Task names the fault
	// kind, Arg is kind-specific).
	KindFault
	// KindRedistribute: a task was moved off a failed server (Proc =
	// failed server, Arg = surviving server that received it).
	KindRedistribute
	// KindRetry: a task's launch aborted transiently on Proc and will be
	// retried (Arg = server chosen for the next attempt, -1 when the
	// retry budget is exhausted and the run gives up).
	KindRetry
	// KindShed: an overloaded run dropped the task before it ran — its
	// deadline had expired or its priority fell below the shed floor
	// (Arg = the task's priority class).
	KindShed
	// KindPool: pool membership changed on Proc (Task names the change:
	// "add", "drain", "kill"; Arg = tasks re-homed, 0 for adds).
	KindPool
	// KindAdapt: the online controller changed a policy knob (Task
	// names the knob and action, Arg = the knob's new value; Proc = -1,
	// the decision is machine-wide).
	KindAdapt
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindEnqueue:
		return "enqueue"
	case KindRun:
		return "run"
	case KindSteal:
		return "steal"
	case KindBlock:
		return "block"
	case KindReady:
		return "ready"
	case KindDone:
		return "done"
	case KindFault:
		return "fault"
	case KindRedistribute:
		return "redist"
	case KindRetry:
		return "retry"
	case KindShed:
		return "shed"
	case KindPool:
		return "pool"
	case KindAdapt:
		return "adapt"
	}
	return "?"
}

// Event is one scheduler occurrence.
type Event struct {
	Time int64
	Proc int32 // processor the event happened on (-1 when not bound)
	Kind Kind
	Task string
	Arg  int64 // kind-specific (target server, victim processor)
}

// String renders one event.
func (e Event) String() string {
	return fmt.Sprintf("%10d P%02d %-8s %-12s arg=%d", e.Time, e.Proc, e.Kind, e.Task, e.Arg)
}

// Log is a bounded in-order event recorder. A nil *Log is a valid,
// disabled recorder.
type Log struct {
	max     int
	events  []Event
	dropped int64
}

// New creates a log holding at most max events (further events are
// counted but dropped).
func New(max int) *Log {
	if max <= 0 {
		max = 1 << 16
	}
	return &Log{max: max}
}

// Enabled reports whether events are being recorded.
func (l *Log) Enabled() bool { return l != nil }

// Add records an event.
func (l *Log) Add(time int64, proc int, kind Kind, task string, arg int64) {
	if l == nil {
		return
	}
	if len(l.events) >= l.max {
		l.dropped++
		return
	}
	l.events = append(l.events, Event{Time: time, Proc: int32(proc), Kind: kind, Task: task, Arg: arg})
}

// Events returns the recorded events in order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Dropped returns how many events exceeded the capacity.
func (l *Log) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// String dumps the log as text.
func (l *Log) String() string {
	if l == nil {
		return "(tracing disabled)"
	}
	var b strings.Builder
	for _, e := range l.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	if l.dropped > 0 {
		fmt.Fprintf(&b, "... %d events dropped (capacity %d)\n", l.dropped, l.max)
	}
	return b.String()
}

// Timeline renders a per-processor utilization strip of the given width:
// '#' where the processor ran a task for the whole bucket, '+' for a
// partial bucket, '.' for idle. Busy intervals are reconstructed from
// Run → Block/Done event pairs.
func (l *Log) Timeline(procs int, span int64, width int) string {
	if l == nil || span <= 0 || width <= 0 {
		return ""
	}
	busy := make([][]int64, procs) // flattened [start, end, start, end...]
	open := make([]int64, procs)
	for i := range open {
		open[i] = -1
	}
	for _, e := range l.events {
		p := int(e.Proc)
		if p < 0 || p >= procs {
			continue
		}
		switch e.Kind {
		case KindRun:
			if open[p] < 0 {
				open[p] = e.Time
			}
		case KindBlock, KindDone:
			if open[p] >= 0 {
				busy[p] = append(busy[p], open[p], e.Time)
				open[p] = -1
			}
		}
	}
	for p := range open {
		if open[p] >= 0 {
			busy[p] = append(busy[p], open[p], span)
		}
	}
	bucket := float64(span) / float64(width)
	var b strings.Builder
	for p := 0; p < procs; p++ {
		fmt.Fprintf(&b, "P%02d |", p)
		iv := busy[p]
		for w := 0; w < width; w++ {
			lo := float64(w) * bucket
			hi := lo + bucket
			var covered float64
			for i := 0; i+1 < len(iv); i += 2 {
				s, e := float64(iv[i]), float64(iv[i+1])
				if e < lo || s > hi {
					continue
				}
				if s < lo {
					s = lo
				}
				if e > hi {
					e = hi
				}
				covered += e - s
			}
			switch {
			case covered >= 0.95*bucket:
				b.WriteByte('#')
			case covered > 0.05*bucket:
				b.WriteByte('+')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}
