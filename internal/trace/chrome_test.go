package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// decode parses the exporter's output back into generic maps.
func decode(t *testing.T, raw []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("exporter wrote invalid JSON: %v\n%s", err, raw)
	}
	return out
}

func TestWriteChromeSlicesAndMetadata(t *testing.T) {
	events := []Event{
		{Time: 0, Proc: 0, Kind: KindRun, Task: "main"},
		{Time: 5, Proc: 0, Kind: KindEnqueue, Task: "worker", Arg: 1},
		{Time: 10, Proc: 1, Kind: KindRun, Task: "worker"},
		{Time: 30, Proc: 1, Kind: KindDone, Task: "worker"},
		{Time: 40, Proc: 0, Kind: KindBlock, Task: "main"},
		{Time: 50, Proc: 1, Kind: KindSteal, Task: "late", Arg: 0},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events, 2, "sim"); err != nil {
		t.Fatal(err)
	}
	out := decode(t, buf.Bytes())

	var processNames, threadNames, slices, instants int
	var workerSlice map[string]any
	for _, e := range out {
		switch e["ph"] {
		case "M":
			switch e["name"] {
			case "process_name":
				processNames++
			case "thread_name":
				threadNames++
			}
		case "X":
			slices++
			if e["name"] == "worker" {
				workerSlice = e
			}
		case "i":
			instants++
		}
	}
	if processNames != 1 || threadNames != 2 {
		t.Errorf("metadata: %d process names, %d thread names (want 1, 2)", processNames, threadNames)
	}
	// main (0→40 on P0) and worker (10→30 on P1).
	if slices != 2 {
		t.Errorf("got %d X slices, want 2", slices)
	}
	if workerSlice == nil {
		t.Fatal("no slice for task worker")
	}
	if ts, dur := workerSlice["ts"].(float64), workerSlice["dur"].(float64); ts != 10 || dur != 20 {
		t.Errorf("worker slice ts=%v dur=%v, want 10, 20", ts, dur)
	}
	if tid := workerSlice["tid"].(float64); tid != 1 {
		t.Errorf("worker slice tid=%v, want 1", tid)
	}
	// The enqueue and the steal are instants.
	if instants != 2 {
		t.Errorf("got %d instants, want 2", instants)
	}
}

// TestWriteChromeClosesOpenSlices: a Run with no matching Block/Done
// (task still executing when the trace buffer filled) must still emit a
// slice, closed at the last event time, so the viewer shows it.
func TestWriteChromeClosesOpenSlices(t *testing.T) {
	events := []Event{
		{Time: 10, Proc: 0, Kind: KindRun, Task: "forever"},
		{Time: 90, Proc: 1, Kind: KindEnqueue, Task: "other", Arg: 1},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events, 2, "native"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range decode(t, buf.Bytes()) {
		if e["ph"] == "X" && e["name"] == "forever" {
			found = true
			if ts, dur := e["ts"].(float64), e["dur"].(float64); ts != 10 || dur != 80 {
				t.Errorf("unclosed slice ts=%v dur=%v, want 10, 80", ts, dur)
			}
		}
	}
	if !found {
		t.Error("unclosed Run produced no slice")
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil, 1, "sim"); err != nil {
		t.Fatal(err)
	}
	out := decode(t, buf.Bytes())
	for _, e := range out {
		if e["ph"] != "M" {
			t.Errorf("empty trace emitted non-metadata event %v", e)
		}
	}
	if len(out) != 2 { // process_name + one thread_name
		t.Errorf("got %d metadata events, want 2", len(out))
	}
}
