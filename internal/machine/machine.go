// Package machine describes the simulated multiprocessor: its topology
// (processors grouped into clusters) and the latency of each level of the
// memory hierarchy.
//
// The defaults model the Stanford DASH prototype used in the paper:
// 32 processors in 8 clusters of 4, a 64 KB first-level cache and a 256 KB
// second-level cache per processor, with latencies of 1 cycle (L1 hit),
// ~14 cycles (L2 hit), ~30 cycles (local cluster memory) and 100-150 cycles
// (remote cluster memory).
package machine

import (
	"errors"
	"fmt"
)

// Latencies holds the cost, in processor cycles, of each memory-hierarchy
// level and of the runtime operations the scheduler charges for.
type Latencies struct {
	// Memory hierarchy.
	L1Hit       int64 // first-level cache hit
	L2Hit       int64 // second-level cache hit
	LocalMem    int64 // miss serviced by local cluster memory
	RemoteMem   int64 // miss serviced by a remote cluster's memory
	RemoteDirty int64 // miss serviced by a dirty line in a remote cache
	Upgrade     int64 // write upgrade of a shared line (invalidate sharers)

	// MemOccupancy is how long one miss occupies its home memory module.
	// Concurrent misses to the same cluster's memory queue behind each
	// other, so concentrating data in one memory saturates it — the
	// bandwidth effect the paper credits for the "Distr" versions.
	MemOccupancy int64

	// Runtime operations.
	Dispatch    int64 // dequeue a task from a local queue
	Spawn       int64 // create and enqueue a task
	EnqueueAway int64 // extra cost to enqueue onto a remote server's queue
	StealLocal  int64 // probe a queue of a server in the same cluster
	StealRemote int64 // probe a queue of a server in a remote cluster
	LockOp      int64 // monitor acquire/release
	Wakeup      int64 // unblocking a task
	MigratePage int64 // migrating one page between cluster memories
	IdlePoll    int64 // delay before an idle processor probes for steals
}

// CacheGeometry describes one level of a set-associative cache.
type CacheGeometry struct {
	Size  int // total bytes
	Assoc int // ways per set
}

// Config is a complete description of the simulated machine.
type Config struct {
	Processors  int // total number of processors (server processes)
	ClusterSize int // processors per cluster; memory is shared per cluster

	LineSize int // cache line size in bytes (power of two)
	PageSize int // memory page size in bytes (power of two); migration unit

	L1 CacheGeometry
	L2 CacheGeometry

	Lat Latencies

	// Quantum is the number of cycles a task may run before the engine
	// re-interleaves processors. Smaller values increase timing fidelity
	// at some simulation cost.
	Quantum int64

	// Seed drives every random choice in the simulation, making runs
	// fully reproducible.
	Seed int64
}

// DASHLatencies returns the latency table quoted in the paper for the
// Stanford DASH prototype.
func DASHLatencies() Latencies {
	return Latencies{
		L1Hit:       1,
		L2Hit:       14,
		LocalMem:    30,
		RemoteMem:   115,
		RemoteDirty: 150,
		Upgrade:     60,

		MemOccupancy: 22,

		Dispatch:    40,
		Spawn:       60,
		EnqueueAway: 40,
		StealLocal:  60,
		StealRemote: 180,
		LockOp:      20,
		Wakeup:      40,
		MigratePage: 600,
		IdlePoll:    1000,
	}
}

// DASH returns a configuration modelling a DASH prototype with p
// processors (clusters of four).
func DASH(p int) Config {
	return Config{
		Processors:  p,
		ClusterSize: 4,
		LineSize:    64,
		PageSize:    4096,
		L1:          CacheGeometry{Size: 64 << 10, Assoc: 2},
		L2:          CacheGeometry{Size: 256 << 10, Assoc: 4},
		Lat:         DASHLatencies(),
		Quantum:     4000,
		Seed:        1,
	}
}

// UniformBus returns a bus-based machine with per-processor caches and a
// single shared memory of uniform latency — the SGI-workstation setting
// of Fowler's object-affinity scheduling discussed in the paper's related
// work (§7). With one cluster there is no local/remote distinction;
// affinity hints can only pay through cache reuse and bus bandwidth.
func UniformBus(p int) Config {
	c := DASH(p)
	c.ClusterSize = p
	c.Lat.LocalMem = 60
	c.Lat.RemoteMem = 60 // unreachable: a single cluster is always local
	c.Lat.RemoteDirty = 75
	c.Lat.StealRemote = c.Lat.StealLocal
	c.Lat.MemOccupancy = 26 // one bus serves everyone
	return c
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Processors <= 0:
		return errors.New("machine: Processors must be positive")
	case c.Processors > 64:
		return errors.New("machine: at most 64 processors are supported")
	case c.ClusterSize <= 0:
		return errors.New("machine: ClusterSize must be positive")
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("machine: LineSize %d must be a positive power of two", c.LineSize)
	case c.PageSize < c.LineSize || c.PageSize&(c.PageSize-1) != 0:
		return fmt.Errorf("machine: PageSize %d must be a power of two >= LineSize", c.PageSize)
	case c.Quantum <= 0:
		return errors.New("machine: Quantum must be positive")
	}
	for _, g := range []CacheGeometry{c.L1, c.L2} {
		if g.Size <= 0 || g.Assoc <= 0 {
			return errors.New("machine: cache size and associativity must be positive")
		}
		if g.Size%(g.Assoc*c.LineSize) != 0 {
			return fmt.Errorf("machine: cache size %d not divisible by assoc*line (%d)", g.Size, g.Assoc*c.LineSize)
		}
		if sets := g.Size / (g.Assoc * c.LineSize); sets&(sets-1) != 0 {
			return fmt.Errorf("machine: cache with %d sets; set count must be a power of two", sets)
		}
	}
	if c.L1.Size > c.L2.Size {
		return errors.New("machine: L1 must not be larger than L2")
	}
	return nil
}

// Clusters returns the number of clusters in the machine. A partial final
// cluster counts as one cluster.
func (c Config) Clusters() int {
	return (c.Processors + c.ClusterSize - 1) / c.ClusterSize
}

// ClusterOf returns the cluster that processor p belongs to.
func (c Config) ClusterOf(p int) int {
	return p / c.ClusterSize
}

// SameCluster reports whether processors p and q share a cluster (and
// therefore a local memory).
func (c Config) SameCluster(p, q int) bool {
	return c.ClusterOf(p) == c.ClusterOf(q)
}
