package machine

import "testing"

func TestDASHDefaultsValid(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16, 24, 32, 64} {
		if err := DASH(p).Validate(); err != nil {
			t.Errorf("DASH(%d): %v", p, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero procs", func(c *Config) { c.Processors = 0 }},
		{"too many procs", func(c *Config) { c.Processors = 65 }},
		{"zero cluster", func(c *Config) { c.ClusterSize = 0 }},
		{"line not power of two", func(c *Config) { c.LineSize = 48 }},
		{"page smaller than line", func(c *Config) { c.PageSize = 32 }},
		{"zero quantum", func(c *Config) { c.Quantum = 0 }},
		{"zero cache", func(c *Config) { c.L1.Size = 0 }},
		{"L1 bigger than L2", func(c *Config) { c.L1.Size = 1 << 20 }},
		{"non-pow2 sets", func(c *Config) { c.L1 = CacheGeometry{Size: 3 * 64 * 2, Assoc: 2} }},
	}
	for _, tc := range cases {
		cfg := DASH(8)
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", tc.name)
		}
	}
}

func TestClusterTopology(t *testing.T) {
	c := DASH(32)
	if got := c.Clusters(); got != 8 {
		t.Fatalf("Clusters() = %d, want 8", got)
	}
	if got := c.ClusterOf(0); got != 0 {
		t.Errorf("ClusterOf(0) = %d", got)
	}
	if got := c.ClusterOf(7); got != 1 {
		t.Errorf("ClusterOf(7) = %d, want 1", got)
	}
	if got := c.ClusterOf(31); got != 7 {
		t.Errorf("ClusterOf(31) = %d, want 7", got)
	}
	if !c.SameCluster(4, 7) {
		t.Error("4 and 7 should share a cluster")
	}
	if c.SameCluster(3, 4) {
		t.Error("3 and 4 should not share a cluster")
	}
}

func TestPartialClusterCounts(t *testing.T) {
	c := DASH(6) // one full cluster of 4 plus a partial cluster of 2
	if got := c.Clusters(); got != 2 {
		t.Fatalf("Clusters() = %d, want 2", got)
	}
	if got := c.ClusterOf(5); got != 1 {
		t.Fatalf("ClusterOf(5) = %d, want 1", got)
	}
}

func TestLatencyOrdering(t *testing.T) {
	// The paper's whole argument rests on this ordering.
	l := DASHLatencies()
	if !(l.L1Hit < l.L2Hit && l.L2Hit < l.LocalMem && l.LocalMem < l.RemoteMem && l.RemoteMem <= l.RemoteDirty) {
		t.Fatalf("latency hierarchy out of order: %+v", l)
	}
}
