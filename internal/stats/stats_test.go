package stats

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"a", "1"},
		{"longer-name", "22222"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// All rows share the same width.
	for _, l := range lines[1:] {
		if len(l) != len(lines[0]) && len(strings.TrimRight(l, " ")) > len(lines[0]) {
			t.Fatalf("misaligned row %q vs header %q", l, lines[0])
		}
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("missing separator: %q", lines[1])
	}
}

func TestFigureRendersSeries(t *testing.T) {
	f := Figure{
		Title: "test figure",
		Series: []Series{
			{Name: "Base", Procs: []int{1, 2}, Speedup: []float64{1, 1.9}},
			{Name: "Aff", Procs: []int{1, 2}, Speedup: []float64{1, 2.5}},
		},
	}
	out := f.String()
	for _, want := range []string{"test figure", "Base", "Aff", "1.90", "2.50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureShortSeriesPadded(t *testing.T) {
	f := Figure{
		Title: "x",
		Series: []Series{
			{Name: "full", Procs: []int{1, 2, 4}, Speedup: []float64{1, 2, 3}},
			{Name: "short", Procs: []int{1, 2, 4}, Speedup: []float64{1}},
		},
	}
	if !strings.Contains(f.String(), "-") {
		t.Fatal("missing placeholder for short series")
	}
}

func TestEmptyFigure(t *testing.T) {
	f := Figure{Title: "empty"}
	if !strings.Contains(f.String(), "empty") {
		t.Fatal("title lost")
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	want := "a,b\n1,2\n3,4\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}
