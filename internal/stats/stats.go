// Package stats formats the experiment output: speedup series and
// counter tables matching the figures and tables of the paper.
package stats

import (
	"fmt"
	"strings"
)

// Series is one curve of a speedup figure: a named program variant and
// its speedup at each processor count.
type Series struct {
	Name    string
	Procs   []int
	Speedup []float64
}

// Figure is a set of speedup curves over common processor counts.
type Figure struct {
	Title  string
	Series []Series
}

// String renders the figure as an aligned ASCII table, one row per
// processor count and one column per variant.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	if len(f.Series) == 0 {
		return b.String()
	}
	header := append([]string{"P"}, names(f.Series)...)
	rows := make([][]string, len(f.Series[0].Procs))
	for i, p := range f.Series[0].Procs {
		row := []string{fmt.Sprintf("%d", p)}
		for _, s := range f.Series {
			if i < len(s.Speedup) {
				row = append(row, fmt.Sprintf("%.2f", s.Speedup[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows[i] = row
	}
	b.WriteString(Table(header, rows))
	return b.String()
}

func names(ss []Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

// Table renders rows under a header with aligned columns.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders header+rows as comma-separated values.
func CSV(header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
