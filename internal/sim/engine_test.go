package sim

import (
	"errors"
	"strings"
	"testing"
)

// fifoDisp is a trivial global-queue dispatcher for engine tests.
type fifoDisp struct {
	eng   *Engine
	queue []*Task
}

func (d *fifoDisp) Dispatch(p *Proc) *Task {
	if len(d.queue) == 0 {
		return nil
	}
	t := d.queue[0]
	d.queue = d.queue[1:]
	return t
}

func (d *fifoDisp) add(t *Task) {
	d.queue = append(d.queue, t)
	d.eng.NotifyWork(d.eng.Now())
}

func newTestEngine(t *testing.T, procs int) (*Engine, *fifoDisp) {
	t.Helper()
	e := New(procs, 1000, 42)
	d := &fifoDisp{eng: e}
	e.SetDispatcher(d)
	return e, d
}

func TestSingleTaskRuns(t *testing.T) {
	e, d := newTestEngine(t, 1)
	ran := false
	d.add(e.NewTask("t", 0, func(c *Ctx) {
		c.Charge(123)
		ran = true
	}))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("task did not run")
	}
	if got := e.Procs[0].Clock; got != 123 {
		t.Fatalf("clock = %d, want 123", got)
	}
}

func TestTasksRunInParallelAcrossProcs(t *testing.T) {
	e, d := newTestEngine(t, 4)
	for i := 0; i < 4; i++ {
		d.add(e.NewTask("t", 0, func(c *Ctx) { c.Charge(1000) }))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.MaxClock(); got != 1000 {
		t.Fatalf("MaxClock = %d, want 1000 (perfect parallelism)", got)
	}
	for _, p := range e.Procs {
		if p.Tasks != 1 {
			t.Fatalf("proc %d ran %d tasks, want 1", p.ID, p.Tasks)
		}
	}
}

func TestSerialOnOneProc(t *testing.T) {
	e, d := newTestEngine(t, 1)
	for i := 0; i < 4; i++ {
		d.add(e.NewTask("t", 0, func(c *Ctx) { c.Charge(1000) }))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.MaxClock(); got != 4000 {
		t.Fatalf("MaxClock = %d, want 4000 (serialized)", got)
	}
}

func TestSpawnFromWithinTask(t *testing.T) {
	e, d := newTestEngine(t, 2)
	var order []string
	d.add(e.NewTask("parent", 0, func(c *Ctx) {
		c.Charge(10)
		order = append(order, "parent")
		d.add(e.NewTask("child", c.Now(), func(c2 *Ctx) {
			c2.Charge(5)
			order = append(order, "child")
		}))
		c.Charge(10)
	}))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "parent" || order[1] != "child" {
		t.Fatalf("order = %v", order)
	}
	// Child started at time 10 on the second (idle) processor.
	if got := e.Procs[1].Clock; got != 15 {
		t.Fatalf("proc1 clock = %d, want 15", got)
	}
}

func TestBlockAndUnblock(t *testing.T) {
	e, d := newTestEngine(t, 2)
	var waiter *Task
	woke := false
	waiter = e.NewTask("waiter", 0, func(c *Ctx) {
		c.Charge(10)
		c.Block() // parked until the signaller releases us
		woke = true
		c.Charge(10)
	})
	d.add(waiter)
	d.add(e.NewTask("signaller", 0, func(c *Ctx) {
		c.Charge(100)
		e.Unblock(waiter, c.Now())
		d.add(waiter)
	}))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !woke {
		t.Fatal("waiter never woke")
	}
	// Waiter resumed at >= time 100 and charged 10 more cycles.
	if got := e.MaxClock(); got < 110 {
		t.Fatalf("MaxClock = %d, want >= 110", got)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e, d := newTestEngine(t, 1)
	d.add(e.NewTask("stuck", 0, func(c *Ctx) {
		c.Block() // nobody will ever unblock us
	}))
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %T, want *DeadlockError", err)
	}
	if len(de.Tasks) != 1 || de.Tasks[0].Name != "stuck" {
		t.Fatalf("blocked tasks = %v, want [stuck]", de.Tasks)
	}
}

func TestTaskPanicBecomesError(t *testing.T) {
	e, d := newTestEngine(t, 1)
	d.add(e.NewTask("boom", 0, func(c *Ctx) {
		c.Charge(77)
		panic("kaboom")
	}))
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic message", err)
	}
	var tf *TaskFailure
	if !errors.As(err, &tf) {
		t.Fatalf("err = %T, want *TaskFailure", err)
	}
	if tf.Task != "boom" || tf.Proc != 0 || tf.Time != 77 || tf.Injected {
		t.Fatalf("failure = %+v, want task boom on P0 at t=77, not injected", tf)
	}
}

func TestQuantumInterleaving(t *testing.T) {
	// Two long tasks on two processors must interleave: neither clock
	// should run far ahead of the other at any yield point.
	e := New(2, 100, 1)
	d := &fifoDisp{eng: e}
	e.SetDispatcher(d)
	var maxSkew int64
	probe := func(c *Ctx) {
		for i := 0; i < 50; i++ {
			c.Charge(100)
			skew := e.Procs[0].Clock - e.Procs[1].Clock
			if skew < 0 {
				skew = -skew
			}
			if skew > maxSkew {
				maxSkew = skew
			}
		}
	}
	d.add(e.NewTask("a", 0, probe))
	d.add(e.NewTask("b", 0, probe))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxSkew > 300 {
		t.Fatalf("processor clocks skewed by %d cycles; quantum interleaving broken", maxSkew)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int64 {
		e := New(4, 500, 7)
		d := &fifoDisp{eng: e}
		e.SetDispatcher(d)
		for i := 0; i < 20; i++ {
			n := int64(i)
			d.add(e.NewTask("t", 0, func(c *Ctx) {
				c.Charge(100 + 37*n)
				if n%3 == 0 {
					d.add(e.NewTask("sub", c.Now(), func(c2 *Ctx) { c2.Charge(50) }))
				}
			}))
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		sum := int64(0)
		for _, p := range e.Procs {
			sum += p.Clock * int64(p.ID+1)
		}
		return sum
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs differ: %d vs %d", a, b)
	}
}

func TestIdleAccounting(t *testing.T) {
	e, d := newTestEngine(t, 2)
	d.add(e.NewTask("early", 0, func(c *Ctx) {
		c.Charge(500)
		d.add(e.NewTask("late", c.Now(), func(c2 *Ctx) { c2.Charge(10) }))
	}))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// One processor sat idle for ~500 cycles waiting for the late task.
	idle := e.Procs[0].Idle + e.Procs[1].Idle
	if idle < 400 {
		t.Fatalf("idle = %d, want >= 400", idle)
	}
}
