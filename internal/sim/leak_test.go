package sim

import (
	"runtime"
	"testing"
	"time"
)

// TestNoGoroutineLeakAfterDeadlock verifies that parked coroutines are
// killed when a run ends abnormally, so repeated failed simulations do
// not accumulate goroutines.
func TestNoGoroutineLeakAfterDeadlock(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		e := New(2, 1000, 1)
		d := &fifoDisp{eng: e}
		e.SetDispatcher(d)
		for j := 0; j < 4; j++ {
			d.add(e.NewTask("stuck", 0, func(c *Ctx) {
				c.Charge(10)
				c.Block() // never unblocked
			}))
		}
		if err := e.Run(); err == nil {
			t.Fatal("expected deadlock")
		}
	}
	// Give killed goroutines a moment to exit.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+5 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d", baseline, runtime.NumGoroutine())
}

// TestNoGoroutineLeakAfterPanic verifies the same for failing tasks.
func TestNoGoroutineLeakAfterPanic(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		e := New(2, 1000, 1)
		d := &fifoDisp{eng: e}
		e.SetDispatcher(d)
		d.add(e.NewTask("sleeper", 0, func(c *Ctx) {
			c.Charge(10)
			c.Block() // parked when the failure hits
		}))
		d.add(e.NewTask("boom", 0, func(c *Ctx) {
			c.Charge(20)
			panic("fail")
		}))
		if err := e.Run(); err == nil {
			t.Fatal("expected failure")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+5 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d", baseline, runtime.NumGoroutine())
}

// TestSyncPointOrdersEvents verifies that a task running ahead within its
// quantum yields at a SyncPoint when earlier events are pending.
func TestSyncPointOrdersEvents(t *testing.T) {
	e := New(2, 100000, 1) // huge quantum: only SyncPoint can interleave
	d := &fifoDisp{eng: e}
	e.SetDispatcher(d)
	var order []string
	d.add(e.NewTask("ahead", 0, func(c *Ctx) {
		c.Charge(5000) // run far ahead of the other task's start
		c.SyncPoint()  // must let the earlier dispatch run first
		order = append(order, "ahead-after-sync")
	}))
	d.add(e.NewTask("behind", 0, func(c *Ctx) {
		c.Charge(10)
		order = append(order, "behind")
	}))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "behind" {
		t.Fatalf("order = %v; SyncPoint did not yield to earlier events", order)
	}
}
