package sim

import "runtime/debug"

type status int

const (
	statusSlice   status = iota // quantum exhausted, still runnable
	statusBlocked               // parked until Unblock
	statusDone                  // ran to completion
	statusFailed                // panicked
)

type killSentinelType struct{}

var killSentinel = killSentinelType{}

// Task is one schedulable unit of work: a coroutine with a name, a body,
// and an execution context. Data is free for the runtime layered above
// (the COOL scheduler stores its task descriptor there).
type Task struct {
	Name string
	Data any

	// StolenRemote marks a task most recently moved by a cross-cluster
	// steal; the runtime attributes its memory references separately so
	// the adaptive controller can price what remote stealing costs in
	// locality. Maintained by the scheduler's steal path, read on the
	// access path.
	StolenRemote bool

	fn  func(*Ctx)
	ctx *Ctx
	err error

	resumeCh    chan struct{}
	statusCh    chan status
	startedCoro bool
	killed      bool
	done        bool

	// Fault-injection state (see fault.go).
	spawnIdx int // creation index among same-named tasks (tracked names only)
	aborts   int // launch attempts aborted by transient-fault injection
}

// LaunchAborts returns how many launch attempts of this task were
// aborted by transient-fault injection (the retry layer's attempt
// counter).
func (t *Task) LaunchAborts() int { return t.aborts }

// NewTask creates a task that becomes runnable no earlier than readyAt.
// The task does not run until a Dispatcher hands it to a processor.
func (e *Engine) NewTask(name string, readyAt int64, fn func(*Ctx)) *Task {
	t := &Task{
		Name:     name,
		fn:       fn,
		resumeCh: make(chan struct{}),
		statusCh: make(chan status),
	}
	if e.panicAt != nil || e.abortAt != nil {
		e.noteSpawn(t)
	}
	t.ctx = &Ctx{eng: e, task: t, readyAt: readyAt}
	e.liveTasks++
	e.tasks = append(e.tasks, t)
	return t
}

// Unblock marks a blocked task runnable at time `at`. The caller must make
// the task reachable from its Dispatcher and call NotifyWork (or
// NotifyProc) so an idle processor picks it up.
func (e *Engine) Unblock(t *Task, at int64) { e.unblock(t, at) }

// run is the coroutine body. It waits for the first resume, executes the
// task function, and reports completion or failure.
func (t *Task) run() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSentinelType); ok {
				t.done = true
				return
			}
			f := &TaskFailure{Task: t.Name, Value: r, Stack: string(debug.Stack())}
			if ip, ok := r.(InjectedPanic); ok {
				f.Injected = true
				f.Value = ip.String()
			}
			if p := t.ctx.proc; p != nil {
				f.Proc = p.ID
				f.Time = p.Clock
			}
			t.err = f
			t.done = true
			t.statusCh <- statusFailed
		}
	}()
	<-t.resumeCh
	if t.killed {
		panic(killSentinel)
	}
	t.fn(t.ctx)
	t.done = true
	t.statusCh <- statusDone
}

// kill terminates a parked coroutine (leak prevention after deadlock).
func (t *Task) kill() {
	if t.done || !t.startedCoro {
		return
	}
	t.killed = true
	t.resumeCh <- struct{}{}
}

// Ctx is the execution context handed to a running task. All simulated
// costs flow through Charge; Block parks the task until Unblock.
type Ctx struct {
	eng      *Engine
	task     *Task
	proc     *Proc
	readyAt  int64
	sliceEnd int64
}

// Engine returns the engine executing this task.
func (c *Ctx) Engine() *Engine { return c.eng }

// Task returns the task this context belongs to.
func (c *Ctx) Task() *Task { return c.task }

// Proc returns the processor currently executing the task.
func (c *Ctx) Proc() *Proc { return c.proc }

// Now returns the task's current local time (its processor's clock).
func (c *Ctx) Now() int64 { return c.proc.Clock }

// Charge advances the processor clock by cycles, yielding to the engine
// if the quantum is exhausted so other processors keep pace.
func (c *Ctx) Charge(cycles int64) {
	if cycles < 0 {
		panic("sim: negative charge")
	}
	if f := c.proc.speedFactor; f > 1 && c.proc.Clock < c.proc.slowUntil {
		cycles *= f
	}
	c.proc.Clock += cycles
	if c.proc.Clock >= c.sliceEnd {
		c.yield(statusSlice)
	}
}

// Block parks the task. The caller must first have registered the task
// somewhere an Unblock will find it (a wait list, a queue).
func (c *Ctx) Block() {
	c.yield(statusBlocked)
}

// SyncPoint yields to the engine if any event strictly earlier than this
// processor's clock is pending, so that simulated-time ordering is exact
// at synchronization operations (lock, unlock, signal, spawn). Without
// it, a task that ran ahead within its quantum could observe
// synchronization state from its own simulated future.
func (c *Ctx) SyncPoint() {
	if c.eng.hasEarlierEvent(c.proc.Clock) {
		c.yield(statusSlice)
	}
}

func (c *Ctx) yield(st status) {
	c.task.statusCh <- st
	<-c.task.resumeCh
	if c.task.killed {
		panic(killSentinel)
	}
}
