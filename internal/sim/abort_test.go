package sim

import (
	"errors"
	"testing"
)

// abortDisp extends the fifo test dispatcher with the launch-abort
// protocol the COOL scheduler implements: fresh launches consult
// LaunchShouldAbort; an aborted launch is retried after a fixed backoff
// until the attempt budget is exhausted, at which point the run fails.
type abortDisp struct {
	fifoDisp
	max     int   // launch attempts allowed per task (0 = none, first abort is fatal)
	backoff int64 // cycles between attempts
	gaveUp  bool
}

func (d *abortDisp) Dispatch(p *Proc) *Task {
	if len(d.queue) == 0 {
		return nil
	}
	t := d.queue[0]
	d.queue = d.queue[1:]
	if !d.eng.LaunchShouldAbort(t, p) {
		return t
	}
	if t.LaunchAborts() > d.max {
		d.gaveUp = true
		d.eng.FailRun(&TaskAbort{Task: t.Name, Proc: p.ID, Time: p.Clock, Attempts: t.LaunchAborts()})
		return nil
	}
	d.eng.At(p.Clock+d.backoff, func() { d.add(t) })
	d.eng.Redispatch(p)
	return nil
}

func newAbortEngine(t *testing.T, procs, max int) (*Engine, *abortDisp) {
	t.Helper()
	e := New(procs, 1000, 42)
	d := &abortDisp{max: max, backoff: 200}
	d.eng = e
	e.SetDispatcher(d)
	return e, d
}

func TestInjectedAbortsAreConsumedAndRetried(t *testing.T) {
	e, d := newAbortEngine(t, 1, 5)
	e.InjectTaskAbort("w", 0)
	e.InjectTaskAbort("w", 0) // stack a second failed attempt on the same spawn
	var tasks []*Task
	for i := 0; i < 3; i++ {
		tk := e.NewTask("w", 0, func(c *Ctx) { c.Charge(100) })
		tasks = append(tasks, tk)
		d.add(tk)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := tasks[0].LaunchAborts(); got != 2 {
		t.Fatalf("spawn 0 aborted %d launches, want 2", got)
	}
	for i, tk := range tasks[1:] {
		if tk.LaunchAborts() != 0 {
			t.Fatalf("spawn %d aborted %d launches, want 0", i+1, tk.LaunchAborts())
		}
	}
}

func TestAbortWithoutRetryBudgetFailsRun(t *testing.T) {
	e, d := newAbortEngine(t, 1, 0)
	e.InjectTaskAbort("w", 0)
	d.add(e.NewTask("w", 0, func(c *Ctx) { c.Charge(100) }))
	err := e.Run()
	var ta *TaskAbort
	if !errors.As(err, &ta) {
		t.Fatalf("err = %v (%T), want *TaskAbort", err, err)
	}
	if ta.Task != "w" || ta.Attempts != 1 {
		t.Fatalf("abort = %+v, want task w after 1 attempt", ta)
	}
	if !d.gaveUp {
		t.Fatal("dispatcher never gave up")
	}
}

func TestFlakyWindowAbortsFreshLaunches(t *testing.T) {
	e, d := newAbortEngine(t, 1, 8)
	e.AddFlakyWindow(0, 0, 500)
	tk := e.NewTask("w", 0, func(c *Ctx) { c.Charge(100) })
	d.add(tk)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Launches at 0, 200, 400 abort (in-window); the one at 600 runs.
	if got := tk.LaunchAborts(); got != 3 {
		t.Fatalf("aborted %d launches, want 3", got)
	}
	if got := e.Procs[0].Clock; got != 700 {
		t.Fatalf("clock = %d, want 700", got)
	}
}

func TestContinuationsAreNeverAborted(t *testing.T) {
	// The flaky window opens after the task started; resuming the blocked
	// continuation inside the window must not abort (a partially executed
	// body cannot be re-run). Budget 0 makes any abort fatal.
	e, d := newAbortEngine(t, 1, 0)
	e.AddFlakyWindow(0, 500, 2000)
	woke := false
	tk := e.NewTask("w", 0, func(c *Ctx) {
		c.Charge(300)
		c.Block()
		woke = true
		c.Charge(100)
	})
	d.add(tk)
	e.At(600, func() {
		e.Unblock(tk, 600)
		d.add(tk)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !woke || tk.LaunchAborts() != 0 {
		t.Fatalf("woke=%v aborts=%d, want resumed continuation with no aborts", woke, tk.LaunchAborts())
	}
}

func TestDeadlineStopsOverBudgetRun(t *testing.T) {
	e, d := newTestEngine(t, 2)
	e.SetDeadline(10_000)
	var stuck *Task
	stuck = e.NewTask("stuck", 0, func(c *Ctx) {
		c.Charge(10)
		c.Block() // never unblocked
	})
	d.add(stuck)
	d.add(e.NewTask("spin", 0, func(c *Ctx) {
		for {
			c.Charge(100)
		}
	}))
	err := e.Run()
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v (%T), want *DeadlineError", err, err)
	}
	if de.Deadline != 10_000 || de.Live != 2 || len(de.Clocks) != 2 {
		t.Fatalf("deadline error = %+v", de)
	}
	if len(de.Blocked) != 1 || de.Blocked[0].Name != "stuck" {
		t.Fatalf("blocked = %v, want [stuck]", de.Blocked)
	}
}

func TestDeadlineUnreachedLeavesRunUntouched(t *testing.T) {
	run := func(deadline int64) int64 {
		e, d := newTestEngine(t, 2)
		if deadline > 0 {
			e.SetDeadline(deadline)
		}
		for i := 0; i < 8; i++ {
			d.add(e.NewTask("w", 0, func(c *Ctx) { c.Charge(777) }))
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.MaxClock()
	}
	if a, b := run(0), run(1_000_000); a != b {
		t.Fatalf("an unreached deadline changed the run: %d vs %d", a, b)
	}
}

func TestAbortedRunsAreDeterministic(t *testing.T) {
	run := func() []int64 {
		e, d := newAbortEngine(t, 4, 6)
		e.AddFlakyWindow(1, 0, 900)
		e.InjectTaskAbort("w", 3)
		for i := 0; i < 16; i++ {
			d.add(e.NewTask("w", 0, func(c *Ctx) { c.Charge(777) }))
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		clocks := make([]int64, 4)
		for i, p := range e.Procs {
			clocks[i] = p.Clock
		}
		return clocks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at P%d: %d vs %d", i, a[i], b[i])
		}
	}
}
