package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// TaskFailure is the structured error produced when a task coroutine
// panics: the task's identity, where and when (in simulated time) it
// failed, the panic value, and the stack. Injected marks panics planted
// by a fault plan rather than raised by application code.
type TaskFailure struct {
	Task     string
	Proc     int
	Time     int64
	Value    any
	Stack    string
	Injected bool
}

func (f *TaskFailure) Error() string {
	return fmt.Sprintf("sim: task %q panicked on P%d at cycle %d: %v\n%s",
		f.Task, f.Proc, f.Time, f.Value, f.Stack)
}

// DeadlockError reports tasks blocked forever at the end of a run. The
// runtime layered above inspects Tasks (and the descriptors hung off
// their Data fields) to build a wait-for graph.
type DeadlockError struct {
	Time  int64
	Tasks []*Task // blocked tasks, sorted by name for determinism
}

func (e *DeadlockError) Error() string {
	names := make([]string, 0, len(e.Tasks))
	for _, t := range e.Tasks {
		names = append(names, t.Name)
	}
	if len(names) > 8 {
		names = append(names[:8], "...")
	}
	return fmt.Sprintf("sim: deadlock: %d task(s) blocked forever (%s)",
		len(e.Tasks), strings.Join(names, ", "))
}

// WatchdogError reports that simulated time passed the configured cycle
// limit with work still outstanding — the no-progress watchdog fired
// instead of letting the simulation run (or spin) unboundedly.
type WatchdogError struct {
	Limit    int64
	Time     int64
	Live     int     // tasks not yet run to completion
	Blocked  int     // tasks parked on synchronization
	Clocks   []int64 // per-processor clocks at the stop
	Snapshot string  // scheduler-provided queue snapshot (may be empty)
}

func (e *WatchdogError) Error() string {
	s := fmt.Sprintf("sim: no progress: cycle limit %d exceeded at t=%d with %d live task(s), %d blocked",
		e.Limit, e.Time, e.Live, e.Blocked)
	if e.Snapshot != "" {
		s += "\n" + e.Snapshot
	}
	return s
}

// InjectedPanic is the panic value used for plan-injected task panics.
type InjectedPanic struct{ Task string }

func (p InjectedPanic) String() string {
	return fmt.Sprintf("injected fault: task %q", p.Task)
}

// At schedules fn at simulated time t (clamped to now). Fault plans use
// it to pin fault events to simulated time before or during a run.
func (e *Engine) At(t int64, fn func()) { e.at(t, fn) }

// SetCycleLimit arms the no-progress watchdog: once simulated time
// passes limit, Run stops and returns a *WatchdogError instead of
// continuing (or hanging). 0 disables the watchdog.
func (e *Engine) SetCycleLimit(limit int64) { e.limit = limit }

// SetSnapshot installs a diagnostic callback whose result is embedded in
// the watchdog error (the scheduler reports its queue state here).
func (e *Engine) SetSnapshot(fn func() string) { e.snapshot = fn }

// SetFailHandler installs the callback invoked when a processor is
// retired by FailProc. running is the task that was executing there (nil
// if idle); the handler re-homes it and the processor's queued work.
func (e *Engine) SetFailHandler(fn func(p *Proc, running *Task, now int64)) {
	e.onFail = fn
}

// Failed reports whether the processor has been retired by FailProc.
func (p *Proc) Failed() bool { return p.failed }

// StalledCycles returns the cycles this processor lost to injected
// stalls.
func (p *Proc) StalledCycles() int64 { return p.stalled }

// SlowProc multiplies every cycle subsequently charged on p by factor,
// for duration cycles of p's clock (0 = rest of the run).
func (e *Engine) SlowProc(p *Proc, factor, duration int64) {
	if p.failed || factor <= 1 {
		return
	}
	p.speedFactor = factor
	if duration <= 0 {
		p.slowUntil = math.MaxInt64
	} else {
		start := p.Clock
		if start < e.now {
			start = e.now
		}
		p.slowUntil = start + duration
	}
}

// StallProc freezes p for the given number of cycles starting now: its
// clock jumps forward, so any task it holds (and any dispatch) resumes
// only after the stall has passed.
func (e *Engine) StallProc(p *Proc, cycles int64) {
	if p.failed || cycles <= 0 {
		return
	}
	if p.Clock < e.now {
		if p.parked {
			p.Idle += e.now - p.Clock
		}
		p.Clock = e.now
	}
	p.Clock += cycles
	p.stalled += cycles
}

// FailProc retires p permanently: it will never dispatch again. The
// task it was running (if any) is detached and handed, along with the
// processor itself, to the fail handler so the scheduler can
// redistribute queued work to survivors.
func (e *Engine) FailProc(p *Proc) {
	if p.failed {
		return
	}
	p.failed = true
	e.setParked(p, false)
	p.dispatchQ = false
	p.dispatchEpoch++ // cancel any pending dispatch event
	running := p.cur
	p.cur = nil // pending slice-resume events no-op via the p.cur guard
	if e.onFail != nil {
		e.onFail(p, running, e.now)
	}
}

// InjectTaskPanic arranges for the nth task created with the given name
// (0-based creation order) to panic when it first runs.
func (e *Engine) InjectTaskPanic(name string, nth int) {
	if e.panicAt == nil {
		e.panicAt = make(map[string]map[int]bool)
		e.spawnSeq = make(map[string]int)
	}
	set := e.panicAt[name]
	if set == nil {
		set = make(map[int]bool)
		e.panicAt[name] = set
	}
	set[nth] = true
}

// shouldInjectPanic consults the registered injections for a task being
// created, consuming one creation-order slot for its name.
func (e *Engine) shouldInjectPanic(name string) bool {
	if e.panicAt == nil {
		return false
	}
	set := e.panicAt[name]
	if set == nil {
		return false
	}
	seq := e.spawnSeq[name]
	e.spawnSeq[name] = seq + 1
	return set[seq]
}

// watchdogError builds the diagnostic returned when the cycle limit is
// exceeded.
func (e *Engine) watchdogError() *WatchdogError {
	w := &WatchdogError{
		Limit:   e.limit,
		Time:    e.now,
		Live:    e.liveTasks,
		Blocked: len(e.blocked),
		Clocks:  make([]int64, len(e.Procs)),
	}
	for i, p := range e.Procs {
		w.Clocks[i] = p.Clock
	}
	if e.snapshot != nil {
		w.Snapshot = e.snapshot()
	}
	return w
}

// deadlockError builds the typed error for tasks blocked forever.
func (e *Engine) deadlockError() *DeadlockError {
	tasks := make([]*Task, 0, len(e.blocked))
	for t := range e.blocked {
		tasks = append(tasks, t)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].Name < tasks[j].Name })
	return &DeadlockError{Time: e.now, Tasks: tasks}
}
