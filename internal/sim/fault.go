package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// TaskFailure is the structured error produced when a task coroutine
// panics: the task's identity, where and when (in simulated time) it
// failed, the panic value, and the stack. Injected marks panics planted
// by a fault plan rather than raised by application code.
type TaskFailure struct {
	Task     string
	Proc     int
	Time     int64
	Value    any
	Stack    string
	Injected bool
}

func (f *TaskFailure) Error() string {
	return fmt.Sprintf("sim: task %q panicked on P%d at cycle %d: %v\n%s",
		f.Task, f.Proc, f.Time, f.Value, f.Stack)
}

// DeadlockError reports tasks blocked forever at the end of a run. The
// runtime layered above inspects Tasks (and the descriptors hung off
// their Data fields) to build a wait-for graph.
type DeadlockError struct {
	Time  int64
	Tasks []*Task // blocked tasks, sorted by name for determinism
}

func (e *DeadlockError) Error() string {
	names := make([]string, 0, len(e.Tasks))
	for _, t := range e.Tasks {
		names = append(names, t.Name)
	}
	if len(names) > 8 {
		names = append(names[:8], "...")
	}
	return fmt.Sprintf("sim: deadlock: %d task(s) blocked forever (%s)",
		len(e.Tasks), strings.Join(names, ", "))
}

// WatchdogError reports that simulated time passed the configured cycle
// limit with work still outstanding — the no-progress watchdog fired
// instead of letting the simulation run (or spin) unboundedly.
type WatchdogError struct {
	Limit    int64
	Time     int64
	Live     int     // tasks not yet run to completion
	Blocked  int     // tasks parked on synchronization
	Clocks   []int64 // per-processor clocks at the stop
	Snapshot string  // scheduler-provided queue snapshot (may be empty)
}

func (e *WatchdogError) Error() string {
	s := fmt.Sprintf("sim: no progress: cycle limit %d exceeded at t=%d with %d live task(s), %d blocked",
		e.Limit, e.Time, e.Live, e.Blocked)
	if e.Snapshot != "" {
		s += "\n" + e.Snapshot
	}
	return s
}

// TaskAbort reports a transient launch failure that the run could not
// absorb: either no retry policy was active, or the task's retry budget
// was exhausted. Attempts counts the aborted launch attempts.
type TaskAbort struct {
	Task     string
	Proc     int
	Time     int64
	Attempts int
}

func (a *TaskAbort) Error() string {
	return fmt.Sprintf("sim: task %q launch aborted on P%d at cycle %d (%d attempt(s) failed, retry budget exhausted)",
		a.Task, a.Proc, a.Time, a.Attempts)
}

// DeadlineError reports that simulated time passed the configured run
// deadline with work still outstanding. Unlike the watchdog it is an
// expected, policy-driven stop: the caller asked for a time budget.
type DeadlineError struct {
	Deadline int64
	Time     int64
	Live     int     // tasks not yet run to completion
	Blocked  []*Task // tasks parked on synchronization, sorted by name
	Clocks   []int64 // per-processor clocks at the stop
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("sim: deadline %d exceeded at t=%d with %d live task(s), %d blocked",
		e.Deadline, e.Time, e.Live, len(e.Blocked))
}

// InjectedPanic is the panic value used for plan-injected task panics.
type InjectedPanic struct{ Task string }

func (p InjectedPanic) String() string {
	return fmt.Sprintf("injected fault: task %q", p.Task)
}

// At schedules fn at simulated time t (clamped to now). Fault plans use
// it to pin fault events to simulated time before or during a run.
func (e *Engine) At(t int64, fn func()) { e.at(t, fn) }

// SetCycleLimit arms the no-progress watchdog: once simulated time
// passes limit, Run stops and returns a *WatchdogError instead of
// continuing (or hanging). 0 disables the watchdog.
func (e *Engine) SetCycleLimit(limit int64) { e.limit = limit }

// SetSnapshot installs a diagnostic callback whose result is embedded in
// the watchdog error (the scheduler reports its queue state here).
func (e *Engine) SetSnapshot(fn func() string) { e.snapshot = fn }

// SetDeadline bounds the run to d simulated cycles: once an event past
// the deadline would fire with work outstanding, Run stops and returns a
// *DeadlineError. 0 disables the deadline.
func (e *Engine) SetDeadline(d int64) { e.deadline = d }

// SetFailHandler installs the callback invoked when a processor is
// retired by FailProc. running is the task that was executing there (nil
// if idle); the handler re-homes it and the processor's queued work.
func (e *Engine) SetFailHandler(fn func(p *Proc, running *Task, now int64)) {
	e.onFail = fn
}

// Failed reports whether the processor has been retired by FailProc.
func (p *Proc) Failed() bool { return p.failed }

// StalledCycles returns the cycles this processor lost to injected
// stalls.
func (p *Proc) StalledCycles() int64 { return p.stalled }

// SlowProc multiplies every cycle subsequently charged on p by factor,
// for duration cycles of p's clock (0 = rest of the run).
func (e *Engine) SlowProc(p *Proc, factor, duration int64) {
	if p.failed || factor <= 1 {
		return
	}
	p.speedFactor = factor
	if duration <= 0 {
		p.slowUntil = math.MaxInt64
	} else {
		start := p.Clock
		if start < e.now {
			start = e.now
		}
		p.slowUntil = start + duration
	}
}

// StallProc freezes p for the given number of cycles starting now: its
// clock jumps forward, so any task it holds (and any dispatch) resumes
// only after the stall has passed.
func (e *Engine) StallProc(p *Proc, cycles int64) {
	if p.failed || cycles <= 0 {
		return
	}
	if p.Clock < e.now {
		if p.parked {
			p.Idle += e.now - p.Clock
		}
		p.Clock = e.now
	}
	p.Clock += cycles
	p.stalled += cycles
}

// FailProc retires p permanently: it will never dispatch again. The
// task it was running (if any) is detached and handed, along with the
// processor itself, to the fail handler so the scheduler can
// redistribute queued work to survivors.
func (e *Engine) FailProc(p *Proc) {
	if p.failed {
		return
	}
	p.failed = true
	e.setParked(p, false)
	p.dispatchQ = false
	p.dispatchEpoch++ // cancel any pending dispatch event
	running := p.cur
	p.cur = nil // pending slice-resume events no-op via the p.cur guard
	if e.onFail != nil {
		e.onFail(p, running, e.now)
	}
}

// InjectTaskPanic arranges for the nth task created with the given name
// (0-based creation order) to panic when it first runs.
func (e *Engine) InjectTaskPanic(name string, nth int) {
	if e.panicAt == nil {
		e.panicAt = make(map[string]map[int]bool)
	}
	if e.spawnSeq == nil {
		e.spawnSeq = make(map[string]int)
	}
	set := e.panicAt[name]
	if set == nil {
		set = make(map[int]bool)
		e.panicAt[name] = set
	}
	set[nth] = true
}

// InjectTaskAbort arranges for one launch attempt of the nth task
// created with the given name to abort transiently before its body
// runs. Calling it again for the same (name, nth) aborts a further
// attempt of the same spawn.
func (e *Engine) InjectTaskAbort(name string, nth int) {
	if e.abortAt == nil {
		e.abortAt = make(map[string]map[int]int)
	}
	if e.spawnSeq == nil {
		e.spawnSeq = make(map[string]int)
	}
	set := e.abortAt[name]
	if set == nil {
		set = make(map[int]int)
		e.abortAt[name] = set
	}
	set[nth]++
	e.transient = true
}

// flakyWin is a half-open window [from, to) of a processor's clock
// during which every task launch attempted there aborts transiently.
type flakyWin struct{ from, to int64 }

// AddFlakyWindow makes every task launch on proc abort transiently
// while the processor's clock is in [from, to).
func (e *Engine) AddFlakyWindow(proc int, from, to int64) {
	p := e.Procs[proc]
	p.flaky = append(p.flaky, flakyWin{from, to})
	e.transient = true
}

// noteSpawn assigns a creation index to tasks whose name has a panic or
// abort injection registered, and substitutes the panic body where one
// is planted. Untracked names are skipped so fault-free spawns stay
// allocation- and bookkeeping-free.
func (e *Engine) noteSpawn(t *Task) {
	if e.panicAt[t.Name] == nil && e.abortAt[t.Name] == nil {
		return
	}
	idx := e.spawnSeq[t.Name]
	e.spawnSeq[t.Name] = idx + 1
	t.spawnIdx = idx
	if e.panicAt[t.Name][idx] {
		name := t.Name
		t.fn = func(*Ctx) { panic(InjectedPanic{Task: name}) }
	}
}

// LaunchShouldAbort reports whether this launch attempt of t on p is
// struck by transient-fault injection, consuming one injected abort (or
// matching a flaky window on p) and counting the attempt on the task.
// Only fresh launches abort: a task whose coroutine has started — a
// blocked or sliced continuation being resumed — is never aborted,
// because a partially executed body cannot be re-run.
func (e *Engine) LaunchShouldAbort(t *Task, p *Proc) bool {
	if !e.transient || t.startedCoro {
		return false
	}
	for _, w := range p.flaky {
		if p.Clock >= w.from && p.Clock < w.to {
			t.aborts++
			return true
		}
	}
	if set := e.abortAt[t.Name]; set != nil && set[t.spawnIdx] > 0 {
		set[t.spawnIdx]--
		t.aborts++
		return true
	}
	return false
}

// Redispatch re-queues a dispatch for p at its current clock — used
// after an aborted launch so the processor immediately looks for other
// work instead of parking until the next wakeup.
func (e *Engine) Redispatch(p *Proc) { e.queueDispatch(p, p.Clock) }

// FailRun aborts the run with err (first failure wins). The scheduler
// uses it to surface a retry-budget exhaustion as the run's error.
func (e *Engine) FailRun(err error) {
	if e.failure == nil {
		e.failure = err
	}
}

// watchdogError builds the diagnostic returned when the cycle limit is
// exceeded.
func (e *Engine) watchdogError() *WatchdogError {
	w := &WatchdogError{
		Limit:   e.limit,
		Time:    e.now,
		Live:    e.liveTasks,
		Blocked: len(e.blocked),
		Clocks:  make([]int64, len(e.Procs)),
	}
	for i, p := range e.Procs {
		w.Clocks[i] = p.Clock
	}
	if e.snapshot != nil {
		w.Snapshot = e.snapshot()
	}
	return w
}

// deadlineError builds the diagnostic returned when the run deadline is
// exceeded, carrying the blocked-task set so the runtime above can
// derive wait-for edges exactly as it does for deadlocks.
func (e *Engine) deadlineError(at int64) *DeadlineError {
	d := &DeadlineError{
		Deadline: e.deadline,
		Time:     at, // time of the first event past the deadline, not e.now (which lags it)
		Live:     e.liveTasks,
		Blocked:  make([]*Task, 0, len(e.blocked)),
		Clocks:   make([]int64, len(e.Procs)),
	}
	for t := range e.blocked {
		d.Blocked = append(d.Blocked, t)
	}
	sort.Slice(d.Blocked, func(i, j int) bool { return d.Blocked[i].Name < d.Blocked[j].Name })
	for i, p := range e.Procs {
		d.Clocks[i] = p.Clock
	}
	return d
}

// deadlockError builds the typed error for tasks blocked forever.
func (e *Engine) deadlockError() *DeadlockError {
	tasks := make([]*Task, 0, len(e.blocked))
	for t := range e.blocked {
		tasks = append(tasks, t)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].Name < tasks[j].Name })
	return &DeadlockError{Time: e.now, Tasks: tasks}
}
