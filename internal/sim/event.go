package sim

// Event kinds. The two hot-path kinds — dispatch wakes and quantum-slice
// requeues — carry their operands in typed fields so scheduling an event
// never allocates a closure; evFunc remains for external callers
// (Engine.At, fault plans).
const (
	evFunc = iota
	evDispatch
	evSlice
)

// event is a scheduled engine action. Ties on time break by insertion
// order (seq) so runs are deterministic. Fired events are recycled
// through the engine's free list.
type event struct {
	time  int64
	seq   uint64
	kind  int
	p     *Proc  // evDispatch, evSlice
	t     *Task  // evSlice
	epoch uint64 // evDispatch: stale-wake guard
	fn    func() // evFunc
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
