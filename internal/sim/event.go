package sim

// event is a scheduled engine action. Ties on time break by insertion
// order (seq) so runs are deterministic.
type event struct {
	time int64
	seq  uint64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
