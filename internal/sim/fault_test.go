package sim

import (
	"errors"
	"testing"
)

func TestSlowdownMultipliesCharges(t *testing.T) {
	e, d := newTestEngine(t, 1)
	e.SlowProc(e.Procs[0], 4, 0)
	d.add(e.NewTask("t", 0, func(c *Ctx) { c.Charge(1000) }))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Procs[0].Clock; got != 4000 {
		t.Fatalf("clock = %d, want 4000 (4x slowdown)", got)
	}
}

func TestSlowdownLapsesAfterDuration(t *testing.T) {
	e, d := newTestEngine(t, 1)
	e.SlowProc(e.Procs[0], 4, 400)
	d.add(e.NewTask("t", 0, func(c *Ctx) {
		for i := 0; i < 10; i++ {
			c.Charge(100) // first charge lands at 400, ending the slowdown
		}
	}))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// One 4x charge (0 -> 400), then nine nominal charges.
	if got := e.Procs[0].Clock; got != 400+900 {
		t.Fatalf("clock = %d, want 1300", got)
	}
}

func TestStallFreezesProc(t *testing.T) {
	e, d := newTestEngine(t, 1)
	e.StallProc(e.Procs[0], 500)
	d.add(e.NewTask("t", 0, func(c *Ctx) { c.Charge(100) }))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Procs[0].Clock; got != 600 {
		t.Fatalf("clock = %d, want 600 (500 stall + 100 work)", got)
	}
	if got := e.Procs[0].StalledCycles(); got != 500 {
		t.Fatalf("stalled = %d, want 500", got)
	}
}

func TestFailedProcNeverDispatches(t *testing.T) {
	e, d := newTestEngine(t, 2)
	var handled bool
	e.SetFailHandler(func(p *Proc, running *Task, now int64) {
		handled = true
		if p.ID != 1 || running != nil {
			t.Errorf("handler got P%d running=%v", p.ID, running)
		}
	})
	e.FailProc(e.Procs[1])
	for i := 0; i < 4; i++ {
		d.add(e.NewTask("t", 0, func(c *Ctx) { c.Charge(100) }))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !handled {
		t.Fatal("fail handler not invoked")
	}
	if !e.Procs[1].Failed() || e.Procs[1].Tasks != 0 {
		t.Fatalf("failed proc ran %d task(s)", e.Procs[1].Tasks)
	}
	if e.Procs[0].Tasks != 4 {
		t.Fatalf("survivor ran %d task(s), want 4", e.Procs[0].Tasks)
	}
}

func TestFailDetachesRunningTask(t *testing.T) {
	// Failing a processor mid-task hands the running task to the fail
	// handler; re-dispatching it elsewhere resumes the coroutine.
	e, d := newTestEngine(t, 2)
	var moved *Task
	e.SetFailHandler(func(p *Proc, running *Task, now int64) {
		if running == nil {
			t.Error("expected a running task at failure time")
			return
		}
		moved = running
		e.Unblock(running, now)
		d.add(running)
	})
	done := false
	d.add(e.NewTask("long", 0, func(c *Ctx) {
		for i := 0; i < 40; i++ {
			c.Charge(500) // several quanta, so the fault lands mid-task
		}
		done = true
	}))
	e.At(1500, func() { e.FailProc(e.Procs[0]) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if moved == nil || !done {
		t.Fatalf("moved=%v done=%v, want task relocated and finished", moved, done)
	}
	if e.Procs[1].Tasks != 1 {
		t.Fatalf("survivor completed %d task(s), want 1", e.Procs[1].Tasks)
	}
}

func TestInjectedTaskPanic(t *testing.T) {
	e, d := newTestEngine(t, 1)
	e.InjectTaskPanic("w", 1)
	for i := 0; i < 3; i++ {
		d.add(e.NewTask("w", 0, func(c *Ctx) { c.Charge(10) }))
	}
	err := e.Run()
	var tf *TaskFailure
	if !errors.As(err, &tf) {
		t.Fatalf("err = %v (%T), want *TaskFailure", err, err)
	}
	if !tf.Injected || tf.Task != "w" {
		t.Fatalf("failure = %+v, want injected panic in task w", tf)
	}
}

func TestWatchdogStopsRunawayRun(t *testing.T) {
	e, d := newTestEngine(t, 1)
	e.SetCycleLimit(50_000)
	e.SetSnapshot(func() string { return "queues: test snapshot" })
	d.add(e.NewTask("spin", 0, func(c *Ctx) {
		for { // never terminates; only the watchdog can stop the run
			c.Charge(100)
		}
	}))
	err := e.Run()
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v (%T), want *WatchdogError", err, err)
	}
	if we.Limit != 50_000 || we.Live != 1 || len(we.Clocks) != 1 {
		t.Fatalf("watchdog = %+v", we)
	}
	if we.Snapshot != "queues: test snapshot" {
		t.Fatalf("snapshot = %q", we.Snapshot)
	}
}

func TestFaultedRunsAreDeterministic(t *testing.T) {
	run := func() []int64 {
		e, d := newTestEngine(t, 4)
		e.SlowProc(e.Procs[2], 3, 0)
		e.At(700, func() { e.StallProc(e.Procs[1], 900) })
		e.At(2000, func() { e.FailProc(e.Procs[3]) })
		for i := 0; i < 16; i++ {
			d.add(e.NewTask("t", 0, func(c *Ctx) { c.Charge(777) }))
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		clocks := make([]int64, 4)
		for i, p := range e.Procs {
			clocks[i] = p.Clock
		}
		return clocks
	}
	a, b := run(), b2(run)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at P%d: %d vs %d", i, a[i], b[i])
		}
	}
}

func b2(f func() []int64) []int64 { return f() }
