// Package sim implements a deterministic execution-driven simulation
// engine. Application code runs as coroutines (one goroutine resumed at a
// time by a single engine loop), charging simulated cycles to per-processor
// clocks. The engine interleaves processors in virtual-time order at a
// configurable quantum, so a run is fully reproducible for a given seed.
//
// The engine knows nothing about scheduling policy: when a processor is
// idle it asks a Dispatcher for the next task. The COOL runtime supplies
// the Dispatcher and implements the paper's queue structures on top.
package sim

import (
	"container/heap"
	"fmt"
	"math/bits"
	"math/rand"
)

// Dispatcher supplies tasks to idle processors. Dispatch may charge
// scheduling costs by advancing p.Clock; it returns nil when no work is
// available, in which case the processor parks until NotifyWork is called.
type Dispatcher interface {
	Dispatch(p *Proc) *Task
}

// Proc is one simulated processor. Clock is its local cycle counter.
type Proc struct {
	ID    int
	Clock int64

	// Accounting.
	Busy  int64 // cycles spent running tasks
	Idle  int64 // cycles spent parked with no work
	Tasks int64 // tasks executed to completion on this processor

	eng           *Engine
	cur           *Task
	parked        bool
	idleSince     int64
	dispatchQ     bool  // a dispatch event is pending
	dispatchAt    int64 // time of the pending dispatch event
	dispatchEpoch uint64

	// Fault-injection state (see fault.go).
	failed      bool       // retired by FailProc; never dispatches again
	speedFactor int64      // >1 while degraded: every charge is multiplied
	slowUntil   int64      // clock at which the slowdown lapses
	stalled     int64      // cycles lost to injected stalls
	flaky       []flakyWin // windows during which task launches abort
}

// Engine drives the simulation.
type Engine struct {
	Procs []*Proc
	Rand  *rand.Rand

	quantum   int64
	events    eventHeap
	eventFree []*event // recycled event records
	idleWords []uint64 // bitmask of parked processors, one bit per ID
	seq       uint64
	now       int64
	disp      Dispatcher

	liveTasks int
	blocked   map[*Task]struct{}
	tasks     []*Task // every task created, for leak-free teardown
	started   bool
	failure   error

	// Fault-injection state (see fault.go).
	limit    int64         // no-progress watchdog (0 = off)
	deadline int64         // run deadline in simulated cycles (0 = off)
	snapshot func() string // scheduler diagnostic for watchdog errors
	onFail   func(p *Proc, running *Task, now int64)
	panicAt  map[string]map[int]bool // task name -> creation indices to panic
	abortAt  map[string]map[int]int  // task name -> creation index -> launch aborts left
	spawnSeq map[string]int          // creation-order counter per task name
	// transient gates the launch-abort check in the dispatch path; it is
	// set only when an abort injection or flaky window is registered, so
	// fault-free runs pay a single predictable branch.
	transient bool
}

// New creates an engine with n processors.
func New(n int, quantum int64, seed int64) *Engine {
	if n <= 0 {
		panic("sim: engine needs at least one processor")
	}
	if quantum <= 0 {
		panic("sim: quantum must be positive")
	}
	e := &Engine{
		Rand:    rand.New(rand.NewSource(seed)),
		quantum: quantum,
		blocked: make(map[*Task]struct{}),
	}
	e.Procs = make([]*Proc, n)
	e.idleWords = make([]uint64, (n+63)/64)
	for i := range e.Procs {
		e.Procs[i] = &Proc{ID: i, eng: e, parked: true}
		e.idleWords[i>>6] |= 1 << (uint(i) & 63)
	}
	return e
}

// setParked flips p's parked state, maintaining the idle bitmask that
// lets NotifyWork/NotifyIdle find parked processors without scanning
// every processor.
func (e *Engine) setParked(p *Proc, parked bool) {
	p.parked = parked
	w, b := p.ID>>6, uint(p.ID)&63
	if parked {
		e.idleWords[w] |= 1 << b
	} else {
		e.idleWords[w] &^= 1 << b
	}
}

// Parked reports whether the processor is idle-parked (set when a
// Dispatcher call found nothing, cleared when its next dispatch event
// runs). Schedulers use it to tell direct home-server notifies apart
// from policy wakes that reached other processors.
func (p *Proc) Parked() bool { return p.parked }

// SetDispatcher installs the scheduling policy. Must be called before Run.
func (e *Engine) SetDispatcher(d Dispatcher) { e.disp = d }

// Now returns the time of the event currently being processed.
func (e *Engine) Now() int64 { return e.now }

// MaxClock returns the largest processor clock, i.e. the parallel
// execution time of everything simulated so far.
func (e *Engine) MaxClock() int64 {
	var m int64
	for _, p := range e.Procs {
		if p.Clock > m {
			m = p.Clock
		}
	}
	return m
}

// LiveTasks returns the number of tasks created but not yet finished.
// The adaptive controller's epoch driver uses it to stop rescheduling
// itself once the run has drained.
func (e *Engine) LiveTasks() int { return e.liveTasks }

// ParkedCount returns how many processors are currently idle-parked
// (a gauge for the adaptive controller's starvation signal).
func (e *Engine) ParkedCount() int {
	n := 0
	for _, w := range e.idleWords {
		n += bits.OnesCount64(w)
	}
	return n
}

// hasEarlierEvent reports whether an event strictly before time t is
// pending.
func (e *Engine) hasEarlierEvent(t int64) bool {
	return len(e.events) > 0 && e.events[0].time < t
}

// newEvent takes an event record off the free list (or allocates one)
// and stamps it with a clamped time and the next sequence number.
func (e *Engine) newEvent(t int64) *event {
	if t < e.now {
		t = e.now
	}
	var ev *event
	if n := len(e.eventFree); n > 0 {
		ev = e.eventFree[n-1]
		e.eventFree[n-1] = nil
		e.eventFree = e.eventFree[:n-1]
	} else {
		ev = &event{}
	}
	e.seq++
	ev.time, ev.seq = t, e.seq
	return ev
}

// at schedules fn to run at simulated time t (clamped to now). External
// callers go through this closure form; engine-internal hot paths use
// the typed atDispatch/atSlice records below.
func (e *Engine) at(t int64, fn func()) {
	ev := e.newEvent(t)
	ev.kind, ev.fn = evFunc, fn
	heap.Push(&e.events, ev)
}

// atDispatch schedules a dispatch wake for p; stale wakes are filtered
// by the epoch check when the event fires.
func (e *Engine) atDispatch(t int64, p *Proc, epoch uint64) {
	ev := e.newEvent(t)
	ev.kind, ev.p, ev.epoch = evDispatch, p, epoch
	heap.Push(&e.events, ev)
}

// atSlice schedules the quantum-slice requeue of task tk on p.
func (e *Engine) atSlice(t int64, p *Proc, tk *Task) {
	ev := e.newEvent(t)
	ev.kind, ev.p, ev.t = evSlice, p, tk
	heap.Push(&e.events, ev)
}

// NotifyWork wakes every parked processor: new work became available at
// time t. Each woken processor will call the Dispatcher. Parked
// processors are found through the idle bitmask (ascending ID order,
// matching a scan over Procs), so the cost scales with the number of
// idle processors rather than the machine size. Returns how many
// processors were actually notified, so callers can count real wakes
// rather than wake decisions.
func (e *Engine) NotifyWork(t int64) int {
	n := 0
	for w, word := range e.idleWords {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			e.queueDispatch(e.Procs[w<<6|b], t)
			n++
		}
	}
	return n
}

// NotifyIdle wakes at most k parked processors, lowest IDs first — the
// targeted alternative to NotifyWork for shallow backlogs, so a couple
// of queued tasks don't wake the whole machine to race for them.
// Returns how many processors were actually notified.
func (e *Engine) NotifyIdle(t int64, k int) int {
	n := 0
	for w, word := range e.idleWords {
		for word != 0 {
			if k <= 0 {
				return n
			}
			b := bits.TrailingZeros64(word)
			word &= word - 1
			e.queueDispatch(e.Procs[w<<6|b], t)
			k--
			n++
		}
	}
	return n
}

// NotifyProc wakes a single parked processor (used for targeted handoff).
func (e *Engine) NotifyProc(p *Proc, t int64) {
	if p.parked {
		e.queueDispatch(p, t)
	}
}

// queueDispatch arranges for p to call the Dispatcher at time t. An
// earlier request supersedes a pending later one (the stale event is
// skipped via the epoch check); a later request while an earlier one is
// pending is dropped.
func (e *Engine) queueDispatch(p *Proc, t int64) {
	if p.failed {
		return
	}
	if t < p.Clock {
		t = p.Clock
	}
	if p.dispatchQ && p.dispatchAt <= t {
		return
	}
	p.dispatchQ = true
	p.dispatchAt = t
	p.dispatchEpoch++
	e.atDispatch(t, p, p.dispatchEpoch)
}

// dispatch asks the Dispatcher for work for processor p.
func (e *Engine) dispatch(p *Proc) {
	p.dispatchQ = false
	if p.cur != nil || p.failed || e.failure != nil {
		return
	}
	if e.now > p.Clock {
		if p.parked {
			p.Idle += e.now - p.Clock
		}
		p.Clock = e.now
	}
	t := e.disp.Dispatch(p)
	if t == nil {
		if !p.parked {
			e.setParked(p, true)
			p.idleSince = p.Clock
		}
		return
	}
	wasParked := p.parked
	if wasParked {
		e.setParked(p, false)
	}
	e.runOn(p, t, wasParked)
}

// runOn starts or resumes task t on processor p. wasParked reports
// whether p was parked when it picked t up: only then is a wait until
// the task's ready time idle time — a busy processor that reaches a
// not-yet-ready task merely advances its clock (the gap was already
// accounted as Busy or steal overhead).
func (e *Engine) runOn(p *Proc, t *Task, wasParked bool) {
	if t.done {
		panic("sim: dispatching a completed task")
	}
	delete(e.blocked, t)
	p.cur = t
	t.ctx.proc = p
	if t.ctx.readyAt > p.Clock {
		if wasParked {
			p.Idle += t.ctx.readyAt - p.Clock
		}
		p.Clock = t.ctx.readyAt
	}
	t.ctx.sliceEnd = p.Clock + e.quantum
	e.resume(p, t)
}

// resume hands control to the task's coroutine and processes its yield.
func (e *Engine) resume(p *Proc, t *Task) {
	start := p.Clock
	var st status
	if !t.startedCoro {
		t.startedCoro = true
		go t.run()
	}
	t.resumeCh <- struct{}{}
	st = <-t.statusCh
	p.Busy += p.Clock - start
	switch st {
	case statusSlice:
		// Task exhausted its quantum; requeue the slice so other
		// processors with earlier clocks get to run first.
		e.atSlice(p.Clock, p, t)
	case statusBlocked:
		p.cur = nil
		e.blocked[t] = struct{}{}
		e.queueDispatch(p, p.Clock)
	case statusDone:
		p.cur = nil
		p.Tasks++
		e.liveTasks--
		e.queueDispatch(p, p.Clock)
	case statusFailed:
		p.cur = nil
		e.liveTasks--
		if e.failure == nil {
			e.failure = t.err
		}
	}
}

// unblock makes a previously blocked task runnable again at time at. The
// caller (the runtime) is responsible for having re-enqueued the task so a
// Dispatcher call can find it, and for calling NotifyWork.
func (e *Engine) unblock(t *Task, at int64) {
	if t.ctx.readyAt < at {
		t.ctx.readyAt = at
	}
	delete(e.blocked, t)
}

// Run processes events until none remain. It returns an error if a task
// failed or if tasks remain blocked (deadlock).
func (e *Engine) Run() error {
	if e.disp == nil {
		panic("sim: Run without a Dispatcher")
	}
	if e.started {
		panic("sim: engine can only Run once")
	}
	e.started = true
	for len(e.events) > 0 && e.failure == nil {
		ev := heap.Pop(&e.events).(*event)
		if e.deadline > 0 && ev.time > e.deadline && e.liveTasks > 0 {
			e.failure = e.deadlineError(ev.time)
			break
		}
		if e.limit > 0 && ev.time > e.limit && e.liveTasks > 0 {
			e.failure = e.watchdogError()
			break
		}
		e.now = ev.time
		// Copy the payload and recycle the record before firing: the
		// handler may schedule new events and reuse this very record.
		kind, p, t, epoch, fn := ev.kind, ev.p, ev.t, ev.epoch, ev.fn
		*ev = event{}
		e.eventFree = append(e.eventFree, ev)
		switch kind {
		case evDispatch:
			if p.dispatchEpoch == epoch {
				e.dispatch(p)
			}
		case evSlice:
			if p.cur == t {
				t.ctx.sliceEnd = p.Clock + e.quantum
				e.resume(p, t)
			}
		default:
			fn()
		}
	}
	e.killRemaining()
	if e.failure != nil {
		return e.failure
	}
	if len(e.blocked) > 0 {
		return e.deadlockError()
	}
	if e.liveTasks > 0 {
		return fmt.Errorf("sim: %d task(s) never ran to completion", e.liveTasks)
	}
	return nil
}

// killRemaining terminates every started-but-unfinished coroutine —
// blocked, queued, or detached from a failed processor — so no
// goroutines leak after a failed, deadlocked, or watchdogged run.
func (e *Engine) killRemaining() {
	for _, t := range e.tasks {
		if t.startedCoro && !t.done {
			t.kill()
		}
	}
	for _, p := range e.Procs {
		p.cur = nil
	}
}
