// Package sim implements a deterministic execution-driven simulation
// engine. Application code runs as coroutines (one goroutine resumed at a
// time by a single engine loop), charging simulated cycles to per-processor
// clocks. The engine interleaves processors in virtual-time order at a
// configurable quantum, so a run is fully reproducible for a given seed.
//
// The engine knows nothing about scheduling policy: when a processor is
// idle it asks a Dispatcher for the next task. The COOL runtime supplies
// the Dispatcher and implements the paper's queue structures on top.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Dispatcher supplies tasks to idle processors. Dispatch may charge
// scheduling costs by advancing p.Clock; it returns nil when no work is
// available, in which case the processor parks until NotifyWork is called.
type Dispatcher interface {
	Dispatch(p *Proc) *Task
}

// Proc is one simulated processor. Clock is its local cycle counter.
type Proc struct {
	ID    int
	Clock int64

	// Accounting.
	Busy  int64 // cycles spent running tasks
	Idle  int64 // cycles spent parked with no work
	Tasks int64 // tasks executed to completion on this processor

	eng           *Engine
	cur           *Task
	parked        bool
	idleSince     int64
	dispatchQ     bool  // a dispatch event is pending
	dispatchAt    int64 // time of the pending dispatch event
	dispatchEpoch uint64

	// Fault-injection state (see fault.go).
	failed      bool  // retired by FailProc; never dispatches again
	speedFactor int64 // >1 while degraded: every charge is multiplied
	slowUntil   int64 // clock at which the slowdown lapses
	stalled     int64 // cycles lost to injected stalls
}

// Engine drives the simulation.
type Engine struct {
	Procs []*Proc
	Rand  *rand.Rand

	quantum int64
	events  eventHeap
	seq     uint64
	now     int64
	disp    Dispatcher

	liveTasks int
	blocked   map[*Task]struct{}
	tasks     []*Task // every task created, for leak-free teardown
	started   bool
	failure   error

	// Fault-injection state (see fault.go).
	limit    int64         // no-progress watchdog (0 = off)
	snapshot func() string // scheduler diagnostic for watchdog errors
	onFail   func(p *Proc, running *Task, now int64)
	panicAt  map[string]map[int]bool // task name -> creation indices to panic
	spawnSeq map[string]int          // creation-order counter per task name
}

// New creates an engine with n processors.
func New(n int, quantum int64, seed int64) *Engine {
	if n <= 0 {
		panic("sim: engine needs at least one processor")
	}
	if quantum <= 0 {
		panic("sim: quantum must be positive")
	}
	e := &Engine{
		Rand:    rand.New(rand.NewSource(seed)),
		quantum: quantum,
		blocked: make(map[*Task]struct{}),
	}
	e.Procs = make([]*Proc, n)
	for i := range e.Procs {
		e.Procs[i] = &Proc{ID: i, eng: e, parked: true}
	}
	return e
}

// SetDispatcher installs the scheduling policy. Must be called before Run.
func (e *Engine) SetDispatcher(d Dispatcher) { e.disp = d }

// Now returns the time of the event currently being processed.
func (e *Engine) Now() int64 { return e.now }

// MaxClock returns the largest processor clock, i.e. the parallel
// execution time of everything simulated so far.
func (e *Engine) MaxClock() int64 {
	var m int64
	for _, p := range e.Procs {
		if p.Clock > m {
			m = p.Clock
		}
	}
	return m
}

// hasEarlierEvent reports whether an event strictly before time t is
// pending.
func (e *Engine) hasEarlierEvent(t int64) bool {
	return len(e.events) > 0 && e.events[0].time < t
}

// at schedules fn to run at simulated time t (clamped to now).
func (e *Engine) at(t int64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{time: t, seq: e.seq, fn: fn})
}

// NotifyWork wakes every parked processor: new work became available at
// time t. Each woken processor will call the Dispatcher.
func (e *Engine) NotifyWork(t int64) {
	for _, p := range e.Procs {
		if p.parked && !p.failed {
			e.queueDispatch(p, t)
		}
	}
}

// NotifyProc wakes a single parked processor (used for targeted handoff).
func (e *Engine) NotifyProc(p *Proc, t int64) {
	if p.parked {
		e.queueDispatch(p, t)
	}
}

// queueDispatch arranges for p to call the Dispatcher at time t. An
// earlier request supersedes a pending later one (the stale event is
// skipped via the epoch check); a later request while an earlier one is
// pending is dropped.
func (e *Engine) queueDispatch(p *Proc, t int64) {
	if p.failed {
		return
	}
	if t < p.Clock {
		t = p.Clock
	}
	if p.dispatchQ && p.dispatchAt <= t {
		return
	}
	p.dispatchQ = true
	p.dispatchAt = t
	p.dispatchEpoch++
	epoch := p.dispatchEpoch
	e.at(t, func() {
		if p.dispatchEpoch != epoch {
			return // superseded by an earlier wake
		}
		e.dispatch(p)
	})
}

// dispatch asks the Dispatcher for work for processor p.
func (e *Engine) dispatch(p *Proc) {
	p.dispatchQ = false
	if p.cur != nil || p.failed || e.failure != nil {
		return
	}
	if e.now > p.Clock {
		if p.parked {
			p.Idle += e.now - p.Clock
		}
		p.Clock = e.now
	}
	t := e.disp.Dispatch(p)
	if t == nil {
		if !p.parked {
			p.parked = true
			p.idleSince = p.Clock
		}
		return
	}
	if p.parked {
		p.parked = false
	}
	e.runOn(p, t)
}

// runOn starts or resumes task t on processor p.
func (e *Engine) runOn(p *Proc, t *Task) {
	if t.done {
		panic("sim: dispatching a completed task")
	}
	delete(e.blocked, t)
	p.cur = t
	t.ctx.proc = p
	if t.ctx.readyAt > p.Clock {
		// The processor had nothing runnable until the task became
		// ready; the gap is idle time.
		p.Idle += t.ctx.readyAt - p.Clock
		p.Clock = t.ctx.readyAt
	}
	t.ctx.sliceEnd = p.Clock + e.quantum
	e.resume(p, t)
}

// resume hands control to the task's coroutine and processes its yield.
func (e *Engine) resume(p *Proc, t *Task) {
	start := p.Clock
	var st status
	if !t.startedCoro {
		t.startedCoro = true
		go t.run()
	}
	t.resumeCh <- struct{}{}
	st = <-t.statusCh
	p.Busy += p.Clock - start
	switch st {
	case statusSlice:
		// Task exhausted its quantum; requeue the slice so other
		// processors with earlier clocks get to run first.
		e.at(p.Clock, func() {
			if p.cur == t {
				t.ctx.sliceEnd = p.Clock + e.quantum
				e.resume(p, t)
			}
		})
	case statusBlocked:
		p.cur = nil
		e.blocked[t] = struct{}{}
		e.queueDispatch(p, p.Clock)
	case statusDone:
		p.cur = nil
		p.Tasks++
		e.liveTasks--
		e.queueDispatch(p, p.Clock)
	case statusFailed:
		p.cur = nil
		e.liveTasks--
		if e.failure == nil {
			e.failure = t.err
		}
	}
}

// unblock makes a previously blocked task runnable again at time at. The
// caller (the runtime) is responsible for having re-enqueued the task so a
// Dispatcher call can find it, and for calling NotifyWork.
func (e *Engine) unblock(t *Task, at int64) {
	if t.ctx.readyAt < at {
		t.ctx.readyAt = at
	}
	delete(e.blocked, t)
}

// Run processes events until none remain. It returns an error if a task
// failed or if tasks remain blocked (deadlock).
func (e *Engine) Run() error {
	if e.disp == nil {
		panic("sim: Run without a Dispatcher")
	}
	if e.started {
		panic("sim: engine can only Run once")
	}
	e.started = true
	for len(e.events) > 0 && e.failure == nil {
		ev := heap.Pop(&e.events).(*event)
		if e.limit > 0 && ev.time > e.limit && e.liveTasks > 0 {
			e.failure = e.watchdogError()
			break
		}
		e.now = ev.time
		ev.fn()
	}
	e.killRemaining()
	if e.failure != nil {
		return e.failure
	}
	if len(e.blocked) > 0 {
		return e.deadlockError()
	}
	if e.liveTasks > 0 {
		return fmt.Errorf("sim: %d task(s) never ran to completion", e.liveTasks)
	}
	return nil
}

// killRemaining terminates every started-but-unfinished coroutine —
// blocked, queued, or detached from a failed processor — so no
// goroutines leak after a failed, deadlocked, or watchdogged run.
func (e *Engine) killRemaining() {
	for _, t := range e.tasks {
		if t.startedCoro && !t.done {
			t.kill()
		}
	}
	for _, p := range e.Procs {
		p.cur = nil
	}
}
