package sim

import "testing"

func TestNegativeChargePanics(t *testing.T) {
	e, d := newTestEngine(t, 1)
	d.add(e.NewTask("bad", 0, func(c *Ctx) {
		c.Charge(-1)
	}))
	if err := e.Run(); err == nil {
		t.Fatal("negative charge not reported")
	}
}

func TestEngineRequiresDispatcher(t *testing.T) {
	e := New(1, 100, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Run without dispatcher did not panic")
		}
	}()
	_ = e.Run()
}

func TestEngineRunsOnce(t *testing.T) {
	e, d := newTestEngine(t, 1)
	d.add(e.NewTask("t", 0, func(c *Ctx) { c.Charge(1) }))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	_ = e.Run()
}

func TestBadConstructorArgsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"zero procs":   func() { New(0, 100, 1) },
		"zero quantum": func() { New(1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNotifyBusyProcIsNoOp(t *testing.T) {
	e, d := newTestEngine(t, 1)
	d.add(e.NewTask("long", 0, func(c *Ctx) {
		// While running, spurious notifies must not disturb us.
		e.NotifyProc(e.Procs[0], c.Now())
		e.NotifyWork(c.Now())
		c.Charge(100)
	}))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Procs[0].Tasks != 1 {
		t.Fatalf("tasks = %d", e.Procs[0].Tasks)
	}
}

func TestEarlierWakeSupersedesLater(t *testing.T) {
	// A proc parked with a far-future dispatch must wake earlier when
	// earlier work arrives (the epoch-superseding path).
	e, d := newTestEngine(t, 2)
	var start int64 = -1
	d.add(e.NewTask("spawner", 0, func(c *Ctx) {
		c.Charge(10)
		// First notify proc 1 for t=5000 (far future), then enqueue real
		// work now: the earlier wake must win.
		e.queueDispatch(e.Procs[1], 5000)
		d.add(e.NewTask("work", c.Now(), func(c2 *Ctx) {
			start = c2.Now()
			c2.Charge(1)
		}))
	}))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if start < 0 || start >= 5000 {
		t.Fatalf("work started at %d; earlier wake did not supersede", start)
	}
}
