package chaos

import (
	"strings"
	"testing"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/apps"
)

func lookup(t *testing.T, name string) apps.App {
	t.Helper()
	app, ok := apps.Lookup(name)
	if !ok {
		t.Fatalf("app %q not registered", name)
	}
	return app
}

// TestCampaignsDifferentiallyIdentical is the acceptance gate: 50
// seeded campaigns per app must complete with results identical to the
// fault-free run (modulo the documented schedule-dependent tokens) and
// zero leaked or duplicated tasks.
func TestCampaignsDifferentiallyIdentical(t *testing.T) {
	o := NewOracle()
	for _, tc := range []struct {
		app  string
		size int
	}{{"gauss", 48}, {"ocean", 64}} {
		app := lookup(t, tc.app)
		for seed := int64(1); seed <= 50; seed++ {
			c := NewCampaign(app, seed, 8, tc.size)
			out := o.Run(app, c)
			if out.Verdict == Leak {
				t.Fatalf("%s seed %d leaked tasks: %s", tc.app, seed, out.Detail)
			}
			if out.Verdict != OK {
				t.Fatalf("%s seed %d: verdict %v (%s)\nplan:\n%s",
					tc.app, seed, out.Verdict, out.Detail, c.Plan.BuilderString())
			}
		}
	}
}

// TestCampaignsAreDeterministic: the same seed yields the same plan and
// the same classified outcome.
func TestCampaignsAreDeterministic(t *testing.T) {
	app := lookup(t, "gauss")
	a := NewCampaign(app, 7, 8, 48)
	b := NewCampaign(app, 7, 8, 48)
	if a.Plan.BuilderString() != b.Plan.BuilderString() {
		t.Fatal("same seed produced different plans")
	}
	o := NewOracle()
	oa, ob := o.Run(app, a), o.Run(app, b)
	if oa != ob {
		t.Fatalf("same campaign classified differently: %+v vs %+v", oa, ob)
	}
}

// TestShrinkerFindsMinimalPlan plants one genuinely failing event (an
// injected panic — chaos never generates those, so it is always an
// Unexpected failure) among benign noise, and checks the shrinker
// reduces the plan to exactly that event.
func TestShrinkerFindsMinimalPlan(t *testing.T) {
	app := lookup(t, "gauss")
	c := NewCampaign(app, 3, 8, 48)
	c.Plan = cool.NewFaultPlan().
		SlowProcessor(1, 0, 4, 50_000).
		StallProcessor(2, 5_000, 5_000).
		PanicTask("update", 0).
		FlakyProcessor(5, 0, 10_000)
	o := NewOracle()
	if out := o.Run(app, c); out.Verdict != Unexpected {
		t.Fatalf("planted panic classified as %v, want unexpected", out.Verdict)
	}
	min, out := o.Shrink(app, c)
	if out.Verdict != Unexpected {
		t.Fatalf("shrunk verdict = %v, want unexpected", out.Verdict)
	}
	if min.Plan.Len() != 1 {
		t.Fatalf("shrunk to %d events, want 1:\n%s", min.Plan.Len(), min.Plan.BuilderString())
	}
	if bs := min.Plan.BuilderString(); !strings.Contains(bs, `PanicTask("update", 0)`) {
		t.Fatalf("shrinker kept the wrong event:\n%s", bs)
	}
}

func TestDiffVerify(t *testing.T) {
	cases := []struct {
		want, got string
		ignore    map[string]bool
		same      bool
	}{
		{"checksum=1.5 tasks=10", "checksum=1.5 tasks=10", nil, true},
		{"checksum=1.5 tasks=10", "checksum=1.6 tasks=10", nil, false},
		{"cost=5 consistent=true", "cost=9 consistent=true", map[string]bool{"cost": true}, true},
		{"cost=5 consistent=true", "cost=5 consistent=false", map[string]bool{"cost": true}, false},
		{"a=1 b=2", "a=1", nil, false},
	}
	for i, tc := range cases {
		if got := diffVerify(tc.want, tc.got, tc.ignore); (got == "") != tc.same {
			t.Errorf("case %d: diff = %q, want same=%v", i, got, tc.same)
		}
	}
}
