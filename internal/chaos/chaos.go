// Package chaos implements the self-checking chaos-campaign harness:
// seeded random fault plans (processor slowdowns, stalls, permanent
// failures, memory degradation, flaky windows, transient task failures)
// run against the registered applications, differentially checked
// against a fault-free reference run. Failing campaigns auto-shrink to
// a minimal reproducing fault plan, printed as copy-pasteable builder
// calls.
//
// Campaigns run on either backend. On the simulator both the faulted
// run and its reference are bit-deterministic. On the native backend
// the reference is a fault-free native run and the differential check
// is necessarily looser: tokens that depend on execution order may
// differ between any two native schedules (same relaxation as the
// xcheck harness), so those are skipped at P>1 even before faults are
// injected. Task-count equality and typed-failure classification hold
// on both backends.
package chaos

import (
	"errors"
	"fmt"
	"strings"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/apps"
)

// taskNames lists each app's spawn labels — the targets for transient
// FailTask events in generated plans.
var taskNames = map[string][]string{
	"pancho":     {"update", "complete"},
	"ocean":      {"laplace", "accumulate"},
	"locusroute": {"route"},
	"blockcho":   {"potrf", "trsm", "gemm", "notify"},
	"barneshut":  {"forces", "advance"},
	"gauss":      {"update"},
	"phaseflip":  {"chain", "ping", "wave"},
}

// ignoreTokens lists, per app, Verify tokens whose values legitimately
// depend on scheduling order and so may differ once faults perturb the
// schedule. Every other token must match the fault-free run exactly.
var ignoreTokens = map[string]map[string]bool{
	// The router's total cost depends on the order wires are routed,
	// which fault-induced rebalancing perturbs; the consistency flag
	// (routing table vs occupancy) still must match.
	"locusroute": {"cost": true},
	// Cholesky residual/maxdiff shift at rounding level (~1e-15) when a
	// perturbed schedule changes FP accumulation order; both apps gate
	// real corruption internally against the serial reference at 1e-9.
	"pancho":   {"residual": true, "maxdiff": true},
	"blockcho": {"maxdiff": true},
}

// Campaign is one seeded chaos experiment against one application. The
// plan is a pure function of the seed, so campaigns replay exactly.
type Campaign struct {
	App      string
	Variant  string
	Procs    int
	Size     int
	Seed     int64
	Plan     *cool.FaultPlan
	Retry    *cool.RetryPolicy
	Deadline int64
	// Backend selects the execution engine the campaign (and its
	// fault-free reference) runs on. Native campaigns read the plan's
	// cycle quantities as wall-clock nanoseconds.
	Backend cool.Backend
	// Churn marks a campaign whose plan may grow and drain the worker
	// pool mid-run; the oracle reserves MaxProcessors headroom for it.
	// Native backend only.
	Churn bool
	// Adapt arms the adaptive affinity controller on the faulted run
	// (the fault-free reference stays static). The controller may only
	// reshape the schedule, so every differential invariant must hold
	// with it flipping policy mid-campaign.
	Adapt bool
}

// NewCampaign derives a deterministic campaign from a seed against the
// app's most affinity-aware variant. size 0 selects the app's default
// workload.
func NewCampaign(app apps.App, seed int64, procs, size int) Campaign {
	c := Campaign{
		App:     app.Name,
		Variant: app.Variants[len(app.Variants)-1],
		Procs:   procs,
		Size:    size,
		Seed:    seed,
	}
	clusters := (procs + 3) / 4
	n := 2 + int(seed%5)
	c.Plan = cool.RandomChaosPlan(seed, procs, clusters, n, taskNames[app.Name])
	// Generous budget: a flaky processor sits idle (its launches abort)
	// and keeps stealing retried work back, so the exponential backoff
	// must be able to outlast the longest flaky window.
	c.Retry = &cool.RetryPolicy{MaxAttempts: 12, Backoff: 500}
	return c
}

// NewChurnCampaign is NewCampaign with elastic pool churn in the fault
// vocabulary: generated plans may also grow the pool (AddWorker) and
// request planned drains of workers mid-run. Campaigns built this way
// must run on the native backend — the simulator rejects churn events.
func NewChurnCampaign(app apps.App, seed int64, procs, size int) Campaign {
	c := NewCampaign(app, seed, procs, size)
	clusters := (procs + 3) / 4
	n := 2 + int(seed%5)
	c.Plan = cool.RandomChaosChurnPlan(seed, procs, clusters, n, taskNames[app.Name])
	c.Backend = cool.BackendNative
	c.Churn = true
	return c
}

// Verdict classifies a campaign outcome.
type Verdict int

const (
	// OK: the run completed and its results match the fault-free run.
	OK Verdict = iota
	// Degraded: the run failed gracefully with an expected typed error
	// (retry budget exhausted, deadline exceeded). Not a bug: the
	// injected faults were severe enough that giving up was the policy.
	Degraded
	// Mismatch: the run completed but its numeric results differ from
	// the fault-free run — a real correctness bug.
	Mismatch
	// Leak: the run completed but ran a different number of tasks than
	// the fault-free run — work was lost or duplicated.
	Leak
	// Unexpected: the run failed with an error chaos should never cause
	// (deadlock, watchdog, non-injected panic).
	Unexpected
)

func (v Verdict) String() string {
	switch v {
	case OK:
		return "ok"
	case Degraded:
		return "degraded"
	case Mismatch:
		return "mismatch"
	case Leak:
		return "leak"
	case Unexpected:
		return "unexpected"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Bad reports whether the verdict indicates a runtime bug worth
// shrinking and reporting (as opposed to a clean or gracefully degraded
// run).
func (v Verdict) Bad() bool { return v == Mismatch || v == Leak || v == Unexpected }

// Outcome is the classified result of one campaign run.
type Outcome struct {
	Verdict Verdict
	Detail  string // first mismatching token, or the error text
}

// ref is one cached fault-free reference run.
type ref struct {
	verify string
	tasks  int64
	err    error
}

// Oracle runs campaigns and differentially checks them against cached
// fault-free reference runs (one per app/variant/procs/size).
type Oracle struct {
	refs map[string]ref
}

// NewOracle returns an oracle with an empty reference cache.
func NewOracle() *Oracle { return &Oracle{refs: map[string]ref{}} }

func (o *Oracle) healthy(app apps.App, c Campaign) (ref, error) {
	key := fmt.Sprintf("%s/%s/p%d/s%d/%v", c.App, c.Variant, c.Procs, c.Size, c.Backend)
	if r, ok := o.refs[key]; ok {
		return r, r.err
	}
	res, err := app.RunCfg(cool.Config{Processors: c.Procs, Backend: c.Backend}, c.Variant, c.Size)
	r := ref{res.Verify, res.Report.Total.TasksRun, err}
	o.refs[key] = r
	return r, err
}

// Run executes one campaign and classifies the outcome against the
// fault-free reference.
func (o *Oracle) Run(app apps.App, c Campaign) Outcome {
	refRun, err := o.healthy(app, c)
	if err != nil {
		return Outcome{Unexpected, fmt.Sprintf("fault-free reference failed: %v", err)}
	}
	cfg := cool.Config{
		Processors: c.Procs,
		Faults:     c.Plan,
		Retry:      c.Retry,
		Deadline:   c.Deadline,
		Backend:    c.Backend,
	}
	if c.Adapt {
		cfg.Adapt = &cool.AdaptPolicy{}
	}
	if c.Churn && c.Backend == cool.BackendNative {
		// Reserve one spare slot per AddWorker event so every planned
		// add succeeds; a shrunk plan reserves proportionally less.
		cfg.MaxProcessors = c.Procs + c.Plan.ChurnAdds()
	}
	res, err := app.RunCfg(cfg, c.Variant, c.Size)
	if err != nil {
		var ta *cool.TaskAbortError
		var de *cool.DeadlineExceededError
		if errors.As(err, &ta) || errors.As(err, &de) {
			return Outcome{Degraded, err.Error()}
		}
		return Outcome{Unexpected, err.Error()}
	}
	if d := diffVerify(refRun.verify, res.Verify, ignoreTokens[c.App]); d != "" {
		return Outcome{Mismatch, d}
	}
	if res.Report.Total.TasksRun != refRun.tasks {
		return Outcome{Leak, fmt.Sprintf("tasks run: %d faulted vs %d fault-free",
			res.Report.Total.TasksRun, refRun.tasks)}
	}
	return Outcome{OK, ""}
}

// diffVerify compares two key=value Verify strings token for token,
// skipping ignored keys; it describes the first difference, or returns
// "" when the results are differentially identical.
func diffVerify(want, got string, ignore map[string]bool) string {
	a, b := strings.Fields(want), strings.Fields(got)
	if len(a) != len(b) {
		return fmt.Sprintf("verify shape differs: %q vs %q", want, got)
	}
	for i := range a {
		key, _, _ := strings.Cut(a[i], "=")
		if ignore[key] {
			continue
		}
		if a[i] != b[i] {
			return fmt.Sprintf("%s: fault-free %q, faulted %q", key, a[i], b[i])
		}
	}
	return ""
}

// Shrink greedily minimizes a failing campaign: repeatedly drop any
// single fault event whose removal keeps the campaign failing, until a
// fixpoint. The result is 1-minimal — removing any remaining event
// makes the failure disappear — and, like every campaign, replays
// deterministically.
func (o *Oracle) Shrink(app apps.App, c Campaign) (Campaign, Outcome) {
	out := o.Run(app, c)
	if !out.Verdict.Bad() {
		return c, out
	}
	for {
		shrunk := false
		for i := 0; i < c.Plan.Len(); i++ {
			cand := c
			cand.Plan = c.Plan.WithoutEvent(i)
			if co := o.Run(app, cand); co.Verdict.Bad() {
				c, out = cand, co
				shrunk = true
				break // rescan the smaller plan from the start
			}
		}
		if !shrunk {
			return c, out
		}
	}
}
