// The -xcheck mode is the backend differential harness: every
// registered application runs on both the simulator and the native
// goroutine backend at a range of machine sizes, and the results must
// agree (see internal/xcheck for the exact comparison contract).
//
//	coolbench -xcheck                             full matrix, P=1,2,4,8,16
//	coolbench -xcheck -xcheck-procs 1,2,4         subset of machine sizes
//	coolbench -xcheck -xcheck-apps gauss,ocean    subset of apps
//	coolbench -xcheck -xcheck-small               reduced workloads (CI)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/coolrts/cool/internal/xcheck"
)

func xcheckMain(args []string) int {
	fs := flag.NewFlagSet("coolbench -xcheck", flag.ExitOnError)
	_ = fs.Bool("xcheck", true, "backend differential mode (this flag)")
	procsFlag := fs.String("xcheck-procs", "1,2,4,8,16", "comma-separated processor counts")
	appsFlag := fs.String("xcheck-apps", "", "comma-separated app subset (default: all registered)")
	small := fs.Bool("xcheck-small", false, "use reduced workload sizes (CI smoke)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opts := xcheck.Options{Small: *small, Out: os.Stdout}
	for _, f := range strings.Split(*procsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "coolbench -xcheck: bad -xcheck-procs entry %q\n", f)
			return 2
		}
		opts.Procs = append(opts.Procs, n)
	}
	if *appsFlag != "" {
		for _, n := range strings.Split(*appsFlag, ",") {
			opts.Apps = append(opts.Apps, strings.TrimSpace(n))
		}
	}
	if err := xcheck.Run(opts); err != nil {
		fmt.Fprintf(os.Stderr, "coolbench -xcheck: %v\n", err)
		return 1
	}
	fmt.Println("xcheck: all cells agree")
	return 0
}
