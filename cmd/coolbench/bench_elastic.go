// The -bench-elastic mode benchmarks the elastic worker pool on the
// native backend: each repetition runs a three-phase spawn-heavy
// workload that scales the pool 4 -> 16 -> 4 mid-run (AddWorkers, then
// planned Retire drains), recording the drain request-to-completion
// latency distribution and the tasks re-homed off retiring workers.
// Every repetition is also a correctness check: exactly-once execution,
// zero SetSplits, and a complete add/drain timeline are asserted before
// a measurement is accepted.
//
//	coolbench -bench-elastic -bench-elastic-json BENCH_ELASTIC.json
//	                                              write measurements
//	coolbench -bench-elastic -bench-elastic-check BENCH_ELASTIC.json
//	                                              rerun the baseline's
//	                                              config; fail on a lost
//	                                              task, a set split, a
//	                                              missing pool event, or
//	                                              a >10x drain-latency
//	                                              p99 regression
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	cool "github.com/coolrts/cool"
)

// elasticRep is one measured repetition of the 4 -> 16 -> 4 scale
// cycle.
type elasticRep struct {
	WallNS      int64   `json:"wall_ns"`
	TasksRun    int64   `json:"tasks_run"`
	Adds        int     `json:"adds"`
	Drains      int     `json:"drains"`
	Rehomed     int     `json:"rehomed"`       // tasks moved off retiring workers
	DrainLatNS  []int64 `json:"drain_lat_ns"`  // per-drain request-to-completion latency
	GrowToFulNS int64   `json:"grow_to_full_ns"` // AddWorkers call to full pool size
}

// elasticDoc is the JSON document written by -bench-elastic-json and
// read back by -bench-elastic-check.
type elasticDoc struct {
	GoVersion  string       `json:"go_version"`
	OSArch     string       `json:"os_arch"`
	NumCPU     int          `json:"num_cpu"`
	Reps       int          `json:"reps"`
	StartProcs int          `json:"start_procs"`
	PeakProcs  int          `json:"peak_procs"`
	TasksPhase int          `json:"tasks_per_phase"`
	DrainP50NS int64        `json:"drain_p50_ns"`
	DrainP99NS int64        `json:"drain_p99_ns"`
	DrainMaxNS int64        `json:"drain_max_ns"`
	Rehomed    int          `json:"rehomed_total"`
	Results    []elasticRep `json:"results"`
}

const (
	elasticStart = 4
	elasticPeak  = 16
	elasticTasks = 4000 // per phase; three phases per rep
)

// benchElasticMain is the entry point for -bench-elastic (dispatched
// from main ahead of the -bench prefix). Returns the process exit code.
func benchElasticMain(args []string) int {
	fs := flag.NewFlagSet("coolbench -bench-elastic", flag.ExitOnError)
	_ = fs.Bool("bench-elastic", true, "elastic pool benchmark mode (this flag)")
	jsonOut := fs.String("bench-elastic-json", "", "write measurements to this JSON file")
	check := fs.String("bench-elastic-check", "", "baseline JSON to rerun and gate against")
	reps := fs.Int("bench-elastic-reps", 5, "repetitions of the scale cycle")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *check != "" {
		return benchElasticCheck(*check)
	}
	if *jsonOut == "" {
		fmt.Fprintln(os.Stderr, "coolbench: -bench-elastic-json or -bench-elastic-check required in elastic bench mode")
		return 2
	}
	doc, err := benchElasticRun(*reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	out = append(out, '\n')
	if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s (%d reps)\n", *jsonOut, len(doc.Results))
	return 0
}

// benchElasticRep runs one 4 -> 16 -> 4 scale cycle and extracts its
// measurements from the run report, failing on any correctness
// violation.
func benchElasticRep() (elasticRep, error) {
	var rep elasticRep
	rt, err := cool.NewRuntime(cool.Config{
		Processors:    elasticStart,
		MaxProcessors: elasticPeak,
		Backend:       cool.BackendNative,
	})
	if err != nil {
		return rep, err
	}
	var ran atomic.Int64
	burst := func(ctx *cool.Ctx, procs int) {
		ctx.WaitFor(func() {
			for i := 0; i < elasticTasks; i++ {
				i := i
				ctx.Spawn("work", func(*cool.Ctx) {
					ran.Add(1)
					time.Sleep(time.Microsecond)
				}, cool.OnProcessor(i%procs))
			}
		})
	}
	start := time.Now()
	err = rt.Run(func(ctx *cool.Ctx) {
		burst(ctx, elasticStart)
		growStart := time.Now()
		if _, err := rt.AddWorkers(elasticPeak - elasticStart); err != nil {
			panic(fmt.Sprintf("bench-elastic: AddWorkers: %v", err))
		}
		rep.GrowToFulNS = time.Since(growStart).Nanoseconds()
		// The retire is requested inside the burst, while the spawned
		// backlog is still queued across all 16 workers, so the planned
		// drains measure re-homing real work — not empty-queue exits.
		ctx.WaitFor(func() {
			for i := 0; i < elasticTasks; i++ {
				i := i
				ctx.Spawn("work", func(*cool.Ctx) {
					ran.Add(1)
					time.Sleep(time.Microsecond)
				}, cool.OnProcessor(i%elasticPeak))
			}
			if _, err := rt.Retire(elasticPeak - elasticStart); err != nil {
				panic(fmt.Sprintf("bench-elastic: Retire: %v", err))
			}
		})
		for rt.PoolSize() > elasticStart {
			time.Sleep(10 * time.Microsecond)
		}
		burst(ctx, elasticStart)
	})
	rep.WallNS = time.Since(start).Nanoseconds()
	if err != nil {
		return rep, err
	}
	if got, want := ran.Load(), int64(3*elasticTasks); got != want {
		return rep, fmt.Errorf("task loss: ran %d of %d tasks", got, want)
	}
	r := rt.Report()
	rep.TasksRun = r.Total.TasksRun
	if r.SetSplits != 0 {
		return rep, fmt.Errorf("SetSplits=%d on an elastic cycle, want 0", r.SetSplits)
	}
	for _, ev := range r.PoolEvents {
		switch ev.Kind {
		case "add":
			rep.Adds++
		case "drain":
			rep.Drains++
			rep.Rehomed += ev.Moved
			rep.DrainLatNS = append(rep.DrainLatNS, ev.DurationNS)
		default:
			return rep, fmt.Errorf("unexpected pool event kind %q", ev.Kind)
		}
	}
	if want := elasticPeak - elasticStart; rep.Adds != want || rep.Drains != want {
		return rep, fmt.Errorf("pool events: %d adds, %d drains, want %d each", rep.Adds, rep.Drains, want)
	}
	return rep, nil
}

// benchElasticRun measures reps scale cycles and aggregates the drain
// latency distribution.
func benchElasticRun(reps int) (*elasticDoc, error) {
	if reps < 1 {
		reps = 1
	}
	doc := &elasticDoc{
		GoVersion:  runtime.Version(),
		OSArch:     runtime.GOOS + "/" + runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Reps:       reps,
		StartProcs: elasticStart,
		PeakProcs:  elasticPeak,
		TasksPhase: elasticTasks,
	}
	var lats []int64
	for i := 0; i < reps; i++ {
		rep, err := benchElasticRep()
		if err != nil {
			return nil, fmt.Errorf("rep %d: %w", i, err)
		}
		doc.Results = append(doc.Results, rep)
		doc.Rehomed += rep.Rehomed
		lats = append(lats, rep.DrainLatNS...)
		fmt.Printf("rep %d: wall=%-12s tasks=%-6d adds=%d drains=%d rehomed=%d\n",
			i, time.Duration(rep.WallNS), rep.TasksRun, rep.Adds, rep.Drains, rep.Rehomed)
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	doc.DrainP50NS = percentileNS(lats, 50)
	doc.DrainP99NS = percentileNS(lats, 99)
	doc.DrainMaxNS = lats[len(lats)-1]
	fmt.Printf("drain latency over %d drains: p50=%s p99=%s max=%s  rehomed=%d\n",
		len(lats), time.Duration(doc.DrainP50NS), time.Duration(doc.DrainP99NS),
		time.Duration(doc.DrainMaxNS), doc.Rehomed)
	return doc, nil
}

// percentileNS returns the pth percentile of a sorted latency slice
// (nearest-rank).
func percentileNS(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

// benchElasticCheck reruns the baseline's configuration. Correctness
// (exactly-once, zero splits, complete timeline) is asserted per rep by
// benchElasticRun; the latency gate allows a 10x p99 drift because
// drain latency on a shared CI machine is dominated by scheduling
// noise — the gate exists to catch order-of-magnitude protocol
// regressions (a drain that waits on the whole backlog, say), not
// microsecond jitter.
func benchElasticCheck(path string) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	var base elasticDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %s: %v\n", path, err)
		return 1
	}
	doc, err := benchElasticRun(base.Reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	fmt.Printf("drain p99 %s -> %s (gate x10)\n",
		time.Duration(base.DrainP99NS), time.Duration(doc.DrainP99NS))
	if base.DrainP99NS > 0 && doc.DrainP99NS > 10*base.DrainP99NS {
		fmt.Fprintf(os.Stderr, "coolbench: drain-latency p99 regressed %s -> %s (>10x)\n",
			time.Duration(base.DrainP99NS), time.Duration(doc.DrainP99NS))
		return 1
	}
	return 0
}
