// bench_native.go installs the native-backend measurement into the
// benchmark harness. It lives apart from bench.go so that file keeps
// its only-apps-and-stdlib contract (it is copied verbatim into older
// trees when recording baselines; those trees predate the native
// backend and skip these columns).
package main

import (
	"runtime"
	"time"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/apps"
)

func init() {
	nativeBench = func(app apps.App, variant string, procs, size int) (int64, uint64, error) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		_, err := app.RunCfg(cool.Config{Processors: procs, Backend: cool.BackendNative}, variant, size)
		wall := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&after)
		return wall, after.Mallocs - before.Mallocs, err
	}
}
