// The -bench-serve mode benchmarks the serving layer: a seeded
// open-loop arrival stream (deterministic exponential interarrivals,
// fixed key popularity) of 1000 catalog jobs is pushed through a pool
// of warm native runtimes once per routing policy, measuring
// throughput, the submit-to-done latency distribution — overall and
// for repeat-key jobs, the traffic affinity routing exists to serve —
// and the residency hit rate (jobs served from their space's resident
// analyze-phase state). The same run measures what warm reuse is
// worth: the median cost of Reset+job on a warm runtime against cold
// NewRuntime+job, asserted strictly cheaper. Every stream is also a
// correctness check: exactly-once completion, zero rejections, and
// zero goroutine leaks after drain are asserted before a measurement
// is accepted.
//
//	coolbench -bench-serve -bench-serve-json BENCH_SERVE.json
//	                                         write measurements
//	coolbench -bench-serve -bench-serve-check BENCH_SERVE.json
//	                                         rerun the baseline config;
//	                                         fail on a lost job, a
//	                                         leak, warm reuse not
//	                                         beating cold builds, or a
//	                                         >10x p99 latency
//	                                         regression
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/apps"
	"github.com/coolrts/cool/internal/serve"
)

const (
	serveRuntimes = 2
	serveProcs    = 2
	serveJobs     = 1000
	serveSeed     = 1993 // the paper's year; any fixed seed works
	serveKeys     = 8    // distinct affinity keys in the stream
	// Mean open-loop interarrival, sized against the measured resident
	// (~2.5ms) and non-resident (~4.4ms) pancho/small service times on a
	// single-core CI box: even a router that misses residency on every
	// job stays below saturation, so queues form behind analyze phases
	// and heavy jobs (that is what distinguishes the routers) but never
	// grow without bound (which would measure queue position, not
	// routing quality).
	serveMeanGap  = 7 * time.Millisecond
	serveColdReps = 60 // warm-vs-cold median sample size
)

// servePolicy is one routing policy's measured stream.
type servePolicy struct {
	Policy       string  `json:"policy"`
	Jobs         int     `json:"jobs"`
	WallNS       int64   `json:"wall_ns"`
	Throughput   float64 `json:"jobs_per_sec"`
	P50NS        int64   `json:"p50_ns"` // submit-to-done, all jobs
	P99NS        int64   `json:"p99_ns"`
	RepeatP50NS  int64   `json:"repeat_key_p50_ns"` // jobs whose key was seen before
	RepeatP99NS  int64   `json:"repeat_key_p99_ns"`
	RuntimesUsed int     `json:"runtimes_used"`
	PrepHits     int64   `json:"prep_hits"`   // jobs served from resident prepared state
	PrepMisses   int64   `json:"prep_misses"` // keyed jobs that re-ran the analyze phase
}

// serveDoc is the JSON document written by -bench-serve-json and read
// back by -bench-serve-check.
type serveDoc struct {
	GoVersion string        `json:"go_version"`
	OSArch    string        `json:"os_arch"`
	NumCPU    int           `json:"num_cpu"`
	Runtimes  int           `json:"runtimes"`
	Procs     int           `json:"procs"`
	Jobs      int           `json:"jobs_per_policy"`
	Seed      int64         `json:"seed"`
	WarmNS    int64         `json:"warm_job_median_ns"` // Reset + job on a warm runtime
	ColdNS    int64         `json:"cold_job_median_ns"` // NewRuntime + job from scratch
	Policies  []servePolicy `json:"policies"`
}

// benchServeMain is the entry point for -bench-serve (dispatched from
// main ahead of the -bench prefix). Returns the process exit code.
func benchServeMain(args []string) int {
	fs := flag.NewFlagSet("coolbench -bench-serve", flag.ExitOnError)
	_ = fs.Bool("bench-serve", true, "serving benchmark mode (this flag)")
	jsonOut := fs.String("bench-serve-json", "", "write measurements to this JSON file")
	check := fs.String("bench-serve-check", "", "baseline JSON to rerun and gate against")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *check != "" {
		return benchServeCheck(*check)
	}
	if *jsonOut == "" {
		fmt.Fprintln(os.Stderr, "coolbench: -bench-serve-json or -bench-serve-check required in serve bench mode")
		return 2
	}
	doc, err := benchServeRun()
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	out = append(out, '\n')
	if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s (%d policies)\n", *jsonOut, len(doc.Policies))
	return 0
}

// serveArrival is one precomputed stream entry. The stream is derived
// from the seed alone, so every policy serves the identical workload.
type serveArrival struct {
	at     time.Duration // offset from stream start
	req    serve.Request
	repeat bool // key seen earlier in the stream
}

// benchServeStream builds the seeded open-loop arrival stream: eight
// tenant spaces factoring sparse matrices (the catalog's pancho), the
// workload residency-aware affinity routing exists for. Every space
// carries reusable analyze-phase state — a resident job skips ~40% of
// its service time — but each runtime keeps only 4 spaces resident,
// half the stream's working set. Affinity gives every space a stable
// home, so the two runtimes' residency partitions the spaces and jobs
// run mostly resident; load-blind round-robin bounces every space
// across both runtimes, thrashing both caches. tenant0 is additionally
// a rare heavy tenant (pancho/medium, ~6x the others) holding ~3% of
// arrivals — sustainable load, but a convoy risk a load-aware router
// routes around and round-robin walks into.
func benchServeStream() []serveArrival {
	rng := rand.New(rand.NewSource(serveSeed))
	keyApps := []struct{ app, size string }{
		{"pancho", "medium"}, // tenant0: the heavy tenant
		{"pancho", "small"}, {"pancho", "small"}, {"pancho", "small"},
		{"pancho", "small"}, {"pancho", "small"}, {"pancho", "small"},
		{"pancho", "small"},
	}
	seen := make(map[string]bool)
	var at time.Duration
	stream := make([]serveArrival, 0, serveJobs)
	for i := 0; i < serveJobs; i++ {
		at += time.Duration(rng.ExpFloat64() * float64(serveMeanGap))
		k := 0
		if rng.Intn(100) >= 3 { // 3% heavy, the rest uniform over the cheap tenants
			k = 1 + rng.Intn(serveKeys-1)
		}
		key := fmt.Sprintf("tenant%d", k)
		stream = append(stream, serveArrival{
			at:     at,
			req:    serve.Request{App: keyApps[k].app, Size: keyApps[k].size, Key: key},
			repeat: seen[key],
		})
		seen[key] = true
	}
	return stream
}

// benchServePolicy pushes the stream through a fresh pool under one
// routing policy and extracts the latency distribution.
func benchServePolicy(policy string, stream []serveArrival) (servePolicy, error) {
	res := servePolicy{Policy: policy, Jobs: len(stream)}
	baseline := runtime.NumGoroutine()
	router, err := serve.NewRouter(policy, serveProcs)
	if err != nil {
		return res, err
	}
	svc, err := serve.NewService(serve.Config{Runtimes: serveRuntimes, Procs: serveProcs, Router: router})
	if err != nil {
		return res, err
	}
	start := time.Now()
	jobs := make([]*serve.Job, len(stream))
	for i, a := range stream {
		if d := a.at - time.Since(start); d > 0 {
			time.Sleep(d) // open loop: submit on schedule, never on completion
		}
		j, err := svc.Submit(a.req)
		if err != nil {
			return res, fmt.Errorf("%s: submit %d: %w", policy, i, err)
		}
		jobs[i] = j
	}
	var all, repeats []int64
	for i, j := range jobs {
		if !j.Wait(60 * time.Second) {
			return res, fmt.Errorf("%s: job %d never finished", policy, i)
		}
		snap := j.Snapshot()
		if snap.State != "done" {
			return res, fmt.Errorf("%s: job %d state %s (%s)", policy, i, snap.State, snap.Error)
		}
		lat := snap.DoneNS - snap.SubmitNS
		all = append(all, lat)
		if stream[i].repeat {
			repeats = append(repeats, lat)
		}
	}
	res.WallNS = time.Since(start).Nanoseconds()
	rep := svc.Report()
	var completed int64
	for _, e := range rep.Runtimes {
		completed += e.Completed
		res.PrepHits += e.PrepHits
		res.PrepMisses += e.PrepMisses
		if e.Completed > 0 {
			res.RuntimesUsed++
		}
	}
	if completed != int64(len(stream)) || rep.Rejected != 0 {
		return res, fmt.Errorf("%s: completed=%d rejected=%d, want %d/0", policy, completed, rep.Rejected, len(stream))
	}
	if res.RuntimesUsed < 2 {
		return res, fmt.Errorf("%s: only %d runtime(s) served the stream", policy, res.RuntimesUsed)
	}
	svc.Drain()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("%s: goroutine leak after drain: %d -> %d", policy, baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	sort.Slice(repeats, func(a, b int) bool { return repeats[a] < repeats[b] })
	res.Throughput = float64(len(all)) / (float64(res.WallNS) / 1e9)
	res.P50NS = percentileNS(all, 50)
	res.P99NS = percentileNS(all, 99)
	res.RepeatP50NS = percentileNS(repeats, 50)
	res.RepeatP99NS = percentileNS(repeats, 99)
	return res, nil
}

// benchServeWarmVsCold measures the median cost of serving one more
// job: Reset+run on a warm runtime against NewRuntime+run from cold.
func benchServeWarmVsCold() (warmNS, coldNS int64, err error) {
	cfg := cool.Config{Processors: serveProcs, Backend: cool.BackendNative}
	runJob := func(rt *cool.Runtime) error {
		_, err := apps.RunCatalogOn(rt, "gauss", "small")
		return err
	}

	var cold []int64
	for i := 0; i < serveColdReps; i++ {
		start := time.Now()
		rt, err := cool.NewRuntime(cfg)
		if err != nil {
			return 0, 0, err
		}
		if err := runJob(rt); err != nil {
			return 0, 0, err
		}
		cold = append(cold, time.Since(start).Nanoseconds())
	}

	rt, err := cool.NewRuntime(cfg)
	if err != nil {
		return 0, 0, err
	}
	if err := runJob(rt); err != nil { // prime: the cold first job
		return 0, 0, err
	}
	var warm []int64
	for i := 0; i < serveColdReps; i++ {
		start := time.Now()
		if err := rt.Reset(); err != nil {
			return 0, 0, err
		}
		if err := runJob(rt); err != nil {
			return 0, 0, err
		}
		warm = append(warm, time.Since(start).Nanoseconds())
	}
	sort.Slice(cold, func(a, b int) bool { return cold[a] < cold[b] })
	sort.Slice(warm, func(a, b int) bool { return warm[a] < warm[b] })
	return percentileNS(warm, 50), percentileNS(cold, 50), nil
}

// benchServeRun runs the full benchmark: warm-vs-cold, then the stream
// once per policy. The two serving-quality claims — warm reuse beats
// cold builds, affinity routing beats round-robin on repeat-key
// latency — are asserted here, so a written BENCH_SERVE.json always
// demonstrates both.
func benchServeRun() (*serveDoc, error) {
	doc := &serveDoc{
		GoVersion: runtime.Version(),
		OSArch:    runtime.GOOS + "/" + runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Runtimes:  serveRuntimes,
		Procs:     serveProcs,
		Jobs:      serveJobs,
		Seed:      serveSeed,
	}
	var err error
	doc.WarmNS, doc.ColdNS, err = benchServeWarmVsCold()
	if err != nil {
		return nil, err
	}
	fmt.Printf("next-job cost: warm Reset+run %s, cold NewRuntime+run %s (medians over %d)\n",
		time.Duration(doc.WarmNS), time.Duration(doc.ColdNS), serveColdReps)
	if doc.WarmNS >= doc.ColdNS {
		return nil, fmt.Errorf("warm reuse (%s) not cheaper than a cold build (%s)",
			time.Duration(doc.WarmNS), time.Duration(doc.ColdNS))
	}

	stream := benchServeStream()
	for _, policy := range []string{"round-robin", "least-loaded", "space-affinity"} {
		res, err := benchServePolicy(policy, stream)
		if err != nil {
			return nil, err
		}
		doc.Policies = append(doc.Policies, res)
		fmt.Printf("%-15s %6.0f jobs/s  p50=%-10s p99=%-10s repeat-key p50=%-10s p99=%-10s resident %d/%d\n",
			policy, res.Throughput, time.Duration(res.P50NS), time.Duration(res.P99NS),
			time.Duration(res.RepeatP50NS), time.Duration(res.RepeatP99NS),
			res.PrepHits, res.PrepHits+res.PrepMisses)
	}
	rr, aff := doc.Policies[0], doc.Policies[2]
	if aff.RepeatP50NS >= rr.RepeatP50NS {
		return nil, fmt.Errorf("space-affinity repeat-key p50 (%s) not below round-robin (%s)",
			time.Duration(aff.RepeatP50NS), time.Duration(rr.RepeatP50NS))
	}
	// The mechanism behind the win, asserted so a regression in either
	// layer (router stickiness, residency cache) fails loudly: sticky
	// routing must turn the pool's scarce residency into mostly-hits,
	// and must out-hit the load-blind dealer.
	if aff.PrepHits <= aff.PrepMisses {
		return nil, fmt.Errorf("space-affinity residency hits (%d) not above misses (%d)", aff.PrepHits, aff.PrepMisses)
	}
	if aff.PrepHits <= rr.PrepHits {
		return nil, fmt.Errorf("space-affinity residency hits (%d) not above round-robin's (%d)", aff.PrepHits, rr.PrepHits)
	}
	return doc, nil
}

// benchServeCheck reruns the benchmark and gates against the baseline.
// Correctness (exactly-once, no leaks, ≥2 runtimes used) and the two
// serving-quality claims are asserted by benchServeRun itself; the
// latency gate allows a 10x p99 drift because submit-to-done latency on
// a shared CI machine is dominated by scheduling noise — it exists to
// catch order-of-magnitude serving regressions (a router that
// serializes every job onto one runtime, say), not jitter.
func benchServeCheck(path string) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	var base serveDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %s: %v\n", path, err)
		return 1
	}
	doc, err := benchServeRun()
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	for i, res := range doc.Policies {
		if i >= len(base.Policies) {
			break
		}
		b := base.Policies[i]
		fmt.Printf("%-15s p99 %s -> %s (gate x10)\n", res.Policy, time.Duration(b.P99NS), time.Duration(res.P99NS))
		if b.P99NS > 0 && res.P99NS > 10*b.P99NS {
			fmt.Fprintf(os.Stderr, "coolbench: %s p99 regressed %s -> %s (>10x)\n",
				res.Policy, time.Duration(b.P99NS), time.Duration(res.P99NS))
			return 1
		}
	}
	return 0
}
