// Profiling support shared by the coolbench modes: -cpuprofile and
// -mutexprofile make contention on the native backend's sharded
// placement locks directly observable with `go tool pprof`.
package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles arms the requested profiles and returns a stop function
// that flushes them. Either path may be empty; stop is always non-nil.
// Mutex profiling samples every contention event (fraction 1) so even
// short smoke runs surface the hot locks.
func startProfiles(cpuPath, mutexPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	var prevMutexFraction int
	if mutexPath != "" {
		prevMutexFraction = runtime.SetMutexProfileFraction(1)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("-cpuprofile: %w", err)
			}
		}
		if mutexPath != "" {
			runtime.SetMutexProfileFraction(prevMutexFraction)
			f, err := os.Create(mutexPath)
			if err != nil {
				return fmt.Errorf("-mutexprofile: %w", err)
			}
			defer f.Close()
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				return fmt.Errorf("-mutexprofile: %w", err)
			}
		}
		return nil
	}, nil
}
