// Command coolbench regenerates every table and figure of the paper's
// evaluation section on the simulated machine:
//
//	F6   Ocean speedup            (coolbench -exp ocean)
//	F10  LocusRoute speedup       (coolbench -exp locus)
//	F11  LocusRoute cache misses  (coolbench -exp locusmiss)
//	F14  Panel Cholesky speedup   (coolbench -exp pancho)
//	F15  Panel Cholesky misses    (coolbench -exp panchomiss)
//	F16a Barnes-Hut speedup       (coolbench -exp barnes)
//	F16b Block Cholesky speedup   (coolbench -exp blockcho)
//	F3   Gauss affinity ablation  (coolbench -exp gauss)
//	T1   affinity hint summary    (coolbench -exp table1)
//	A1   queue-array-size ablation(coolbench -exp queuearray)
//	A2   steal-policy ablation    (coolbench -exp stealpolicy)
//	R1   NUMA vs uniform machine  (coolbench -exp uniform)
//	S1   latency-ratio sweep      (coolbench -exp latency)
//
// -exp all runs everything. Results print as aligned ASCII tables;
// speedups are simulated-cycle ratios against the serial reference, as in
// the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/apps"
	"github.com/coolrts/cool/internal/apps/gauss"
	"github.com/coolrts/cool/internal/apps/pancho"
	"github.com/coolrts/cool/internal/machine"
	"github.com/coolrts/cool/internal/stats"
)

var (
	procList = flag.String("procs", "1,2,4,8,16,24,32", "processor counts for speedup figures")
	missProc = flag.Int("missprocs", 16, "processor count for the cache-miss figures")
	size     = flag.Int("size", 0, "workload size override (0 = per-app default)")
	asCSV    = flag.Bool("csv", false, "emit figure data as CSV (for plotting) instead of tables")
)

func main() {
	// The native scalability benchmark suite (see bench_native_sweep.go);
	// dispatched ahead of the -bench prefix it shares.
	if len(os.Args) > 1 && strings.HasPrefix(os.Args[1], "-bench-native") {
		os.Exit(benchNativeMain(os.Args[1:]))
	}
	// The elastic worker-pool benchmark (see bench_elastic.go); also
	// dispatched ahead of the shared -bench prefix.
	if len(os.Args) > 1 && strings.HasPrefix(os.Args[1], "-bench-elastic") {
		os.Exit(benchElasticMain(os.Args[1:]))
	}
	// The serving-layer benchmark (see bench_serve.go); also dispatched
	// ahead of the shared -bench prefix.
	if len(os.Args) > 1 && strings.HasPrefix(os.Args[1], "-bench-serve") {
		os.Exit(benchServeMain(os.Args[1:]))
	}
	// The adaptive-controller A/B benchmark (see bench_adapt.go); also
	// dispatched ahead of the shared -bench prefix.
	if len(os.Args) > 1 && strings.HasPrefix(os.Args[1], "-bench-adapt") {
		os.Exit(benchAdaptMain(os.Args[1:]))
	}
	// The benchmark regression harness has its own flag set (see
	// bench.go) and short-circuits the experiment machinery.
	if len(os.Args) > 1 && strings.HasPrefix(os.Args[1], "-bench") {
		os.Exit(benchMain(os.Args[1:]))
	}
	// Likewise the chaos-campaign driver (see chaos.go).
	if len(os.Args) > 1 && strings.HasPrefix(os.Args[1], "-chaos") {
		os.Exit(chaosMain(os.Args[1:]))
	}
	// The backend differential harness (see xcheck.go).
	if len(os.Args) > 1 && strings.HasPrefix(os.Args[1], "-xcheck") {
		os.Exit(xcheckMain(os.Args[1:]))
	}
	// The Chrome trace exporter (see tracecmd.go).
	if len(os.Args) > 1 && strings.HasPrefix(os.Args[1], "-trace") {
		os.Exit(traceMain(os.Args[1:]))
	}
	exp := flag.String("exp", "all", "experiment id (see command doc)")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	mutexProf := flag.String("mutexprofile", "", "write a mutex-contention profile of the run to this file")
	flag.Parse()
	stopProfiles, err := startProfiles(*cpuProf, *mutexProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		}
	}()

	runners := map[string]func() error{
		"ocean":      func() error { return speedupFigure("F6  Ocean speedup (paper §6.1)", "ocean") },
		"locus":      func() error { return speedupFigure("F10 LocusRoute speedup (paper Fig. 10)", "locusroute") },
		"locusmiss":  func() error { return missFigure("F11 LocusRoute cache behaviour (paper Fig. 11)", "locusroute") },
		"pancho":     func() error { return speedupFigure("F14 Panel Cholesky speedup (paper Fig. 14)", "pancho") },
		"panchomiss": func() error { return missFigure("F15 Panel Cholesky cache behaviour (paper Fig. 15)", "pancho") },
		"barnes":     func() error { return speedupFigure("F16a Barnes-Hut speedup (paper Fig. 16)", "barneshut") },
		"blockcho":   func() error { return speedupFigure("F16b Block Cholesky speedup (paper Fig. 16)", "blockcho") },
		"gauss": func() error {
			return speedupFigure("F3  Gaussian elimination affinity ablation (paper Fig. 3)", "gauss")
		},
		"table1":      func() error { return table1() },
		"queuearray":  queueArrayAblation,
		"stealpolicy": stealPolicyAblation,
		"uniform":     uniformMachineComparison,
		"latency":     latencySensitivity,
		"straggler":   stragglerExperiment,
	}
	order := []string{"table1", "ocean", "locus", "locusmiss", "pancho", "panchomiss", "barnes", "blockcho", "gauss", "queuearray", "stealpolicy", "uniform", "latency", "straggler"}

	if *exp == "all" {
		for _, name := range order {
			if err := runners[name](); err != nil {
				fmt.Fprintf(os.Stderr, "coolbench %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "coolbench: unknown experiment %q (have %s, all)\n", *exp, strings.Join(order, ", "))
		os.Exit(2)
	}
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		os.Exit(1)
	}
}

func procs() []int {
	var out []int
	for _, f := range strings.Split(*procList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "coolbench: bad -procs entry %q\n", f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

// speedupFigure reproduces one speedup-vs-processors figure: every
// program variant against the serial reference.
func speedupFigure(title, appName string) error {
	app, ok := apps.Lookup(appName)
	if !ok {
		return fmt.Errorf("unknown app %s", appName)
	}
	ser, err := app.RunSerial(*size)
	if err != nil {
		return err
	}
	fig := stats.Figure{Title: title + fmt.Sprintf("   [serial: %d cycles, %s]", ser.Cycles, ser.Verify)}
	ps := procs()
	for _, variant := range app.Variants {
		s := stats.Series{Name: variant, Procs: ps}
		for _, p := range ps {
			res, err := app.Run(p, variant, *size)
			if err != nil {
				return fmt.Errorf("%s/%s P=%d: %w", appName, variant, p, err)
			}
			s.Speedup = append(s.Speedup, float64(ser.Cycles)/float64(res.Cycles))
		}
		fig.Series = append(fig.Series, s)
	}
	if *asCSV {
		header := []string{"app", "variant", "procs", "speedup"}
		var rows [][]string
		for _, s := range fig.Series {
			for i, p := range s.Procs {
				rows = append(rows, []string{appName, s.Name,
					fmt.Sprintf("%d", p), fmt.Sprintf("%.4f", s.Speedup[i])})
			}
		}
		fmt.Print(stats.CSV(header, rows))
		return nil
	}
	fmt.Println(fig)
	return nil
}

// missFigure reproduces one cache-behaviour bar chart: per variant, the
// miss count and where misses were serviced, at a fixed processor count.
func missFigure(title, appName string) error {
	app, ok := apps.Lookup(appName)
	if !ok {
		return fmt.Errorf("unknown app %s", appName)
	}
	fmt.Printf("%s   [P=%d]\n", title, *missProc)
	header := []string{"variant", "refs", "misses", "rate", "local", "remote", "dirty", "localFrac", "atHome"}
	var rows [][]string
	for _, variant := range app.Variants {
		res, err := app.Run(*missProc, variant, *size)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", appName, variant, err)
		}
		t := res.Report.Total
		rows = append(rows, []string{
			variant,
			fmt.Sprintf("%d", t.Refs),
			fmt.Sprintf("%d", t.Misses()),
			fmt.Sprintf("%.4f", t.MissRate()),
			fmt.Sprintf("%d", t.LocalMisses),
			fmt.Sprintf("%d", t.RemoteMisses),
			fmt.Sprintf("%d", t.DirtyMisses),
			fmt.Sprintf("%.2f", t.LocalFraction()),
			fmt.Sprintf("%.2f", t.HomeFraction()),
		})
	}
	fmt.Println(stats.Table(header, rows))
	return nil
}

// table1 prints the affinity-hint summary (paper Table 1) as implemented
// by this runtime.
func table1() error {
	fmt.Println("T1  Affinity hints (paper Table 1)")
	header := []string{"construct", "Go API", "scheduling effect"}
	rows := [][]string{
		{"default", "Spawn(f, OnObject(base))", "collocate with base object's home; back-to-back by object"},
		{"affinity(obj)", "Spawn(f, OnObject(obj))", "same, for an explicitly named object"},
		{"affinity(obj, TASK)", "Spawn(f, TaskAffinity(obj))", "task-affinity set; back-to-back; placed for load balance; stolen as a set"},
		{"affinity(obj, OBJECT)", "Spawn(f, ObjectAffinity(obj))", "collocate with obj's home memory; stolen reluctantly"},
		{"affinity(n, PROCESSOR)", "Spawn(f, OnProcessor(n))", "direct placement on server n mod P"},
		{"new(proc)", "rt.NewF64(n, proc)", "allocate in proc's cluster memory"},
		{"migrate(obj, proc[, n])", "ctx.Migrate(addr, size, proc)", "re-home the spanned pages"},
		{"home(obj)", "ctx.Home(addr)", "object's home server"},
	}
	fmt.Println(stats.Table(header, rows))
	return nil
}

// queueArrayAblation sweeps the per-server task-affinity queue-array size
// (paper §5: collisions are minimized by a suitably large array).
func queueArrayAblation() error {
	fmt.Println("A1  Task-affinity queue array size (Panel Cholesky, Distr+Aff)")
	prm := pancho.DefaultParams()
	if *size > 0 {
		prm.Grid = *size
	}
	ser, err := pancho.RunSerial(prm)
	if err != nil {
		return err
	}
	header := []string{"queueArraySize", "cycles", "speedup(P=16)"}
	var rows [][]string
	for _, qs := range []int{1, 4, 16, 64, 256} {
		res, err := pancho.RunCustom(16, cool.SchedPolicy{QueueArraySize: qs}, true, prm)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", qs),
			fmt.Sprintf("%d", res.Cycles),
			fmt.Sprintf("%.2f", float64(ser.Cycles)/float64(res.Cycles)),
		})
	}
	fmt.Println(stats.Table(header, rows))
	return nil
}

// uniformMachineComparison (R1) reruns the Gaussian elimination hints on
// a bus-based uniform-memory machine (the SGI setting of Fowler's
// object-affinity work, §7). On NUMA the OBJECT hint pays through both
// cache reuse and local memory; on the uniform machine only the cache
// component remains, so the gap between Base and the hinted versions
// shrinks — quantifying how much of the benefit is NUMA-specific.
func uniformMachineComparison() error {
	fmt.Println("R1  Affinity gains: clustered DASH vs uniform bus machine (Gauss, P=16)")
	header := []string{"machine", "variant", "cycles", "speedup", "gain over Base"}
	var rows [][]string
	for _, uniform := range []bool{false, true} {
		name := "DASH (clusters)"
		if uniform {
			name = "uniform bus"
		}
		prm := gauss.DefaultParams()
		if *size > 0 {
			prm.N = *size
		}
		prm.Uniform = uniform
		ser, err := gauss.RunSerial(prm)
		if err != nil {
			return err
		}
		var baseCycles int64
		for _, v := range gauss.Variants {
			res, err := gauss.Run(16, v, prm)
			if err != nil {
				return err
			}
			if v == gauss.Base {
				baseCycles = res.Cycles
			}
			rows = append(rows, []string{
				name, v.String(),
				fmt.Sprintf("%d", res.Cycles),
				fmt.Sprintf("%.2f", float64(ser.Cycles)/float64(res.Cycles)),
				fmt.Sprintf("%.2fx", float64(baseCycles)/float64(res.Cycles)),
			})
		}
	}
	fmt.Println(stats.Table(header, rows))
	return nil
}

// latencySensitivity (S1) varies the remote-memory latency while holding
// everything else fixed, quantifying §3's claim that "the ratio of the
// latencies of local to remote references" drives the value of locality
// scheduling: the Distr+Aff gain over Base should grow with the ratio.
func latencySensitivity() error {
	fmt.Println("S1  Sensitivity to the remote:local latency ratio (Panel Cholesky, P=16)")
	prm := pancho.DefaultParams()
	if *size > 0 {
		prm.Grid = *size
	}
	header := []string{"remote latency", "ratio", "Base cycles", "Distr+Aff cycles", "affinity gain"}
	var rows [][]string
	for _, remote := range []int64{45, 115, 240, 480} {
		mc := machine.DASH(16)
		mc.Lat.RemoteMem = remote
		mc.Lat.RemoteDirty = remote + 35
		base, err := pancho.RunConfig(cool.Config{Machine: &mc, Sched: cool.SchedPolicy{IgnoreHints: true}}, false, prm)
		if err != nil {
			return err
		}
		aff, err := pancho.RunConfig(cool.Config{Machine: &mc}, true, prm)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", remote),
			fmt.Sprintf("%.1f", float64(remote)/float64(mc.Lat.LocalMem)),
			fmt.Sprintf("%d", base.Cycles),
			fmt.Sprintf("%d", aff.Cycles),
			fmt.Sprintf("%.2fx", float64(base.Cycles)/float64(aff.Cycles)),
		})
	}
	fmt.Println(stats.Table(header, rows))
	return nil
}

// stragglerExperiment (R2) injects deterministic faults into Panel
// Cholesky at P=16: an 8x straggler processor from the start, and a
// processor that fails outright a quarter of the way through the healthy
// run. A fault-tolerant scheduler keeps the slowdown well under the 16/15
// capacity loss naively extended by queue imbalance: survivors steal the
// straggler's backlog and absorb the failed server's redistributed queue.
func stragglerExperiment() error {
	fmt.Println("R2  Straggler and processor-failure tolerance (Panel Cholesky, P=16)")
	prm := pancho.DefaultParams()
	if *size > 0 {
		prm.Grid = *size
	}
	variants := []struct {
		name       string
		sched      cool.SchedPolicy
		distribute bool
	}{
		{"Base", cool.SchedPolicy{IgnoreHints: true}, false},
		{"Distr+Aff", cool.SchedPolicy{}, true},
		{"Distr+Aff+ClusterStealing", cool.SchedPolicy{ClusterStealingOnly: true}, true},
	}
	header := []string{"variant", "fault", "cycles", "slowdown", "steals", "redistributed"}
	var rows [][]string
	for _, v := range variants {
		healthy, err := pancho.RunConfig(cool.Config{Processors: 16, Sched: v.sched}, v.distribute, prm)
		if err != nil {
			return fmt.Errorf("straggler %s healthy: %w", v.name, err)
		}
		faults := []struct {
			name string
			plan *cool.FaultPlan
		}{
			{"healthy", nil},
			{"P3 8x straggler", cool.NewFaultPlan().SlowProcessor(3, 0, 8, 0)},
			{"P5 fails at 25%", cool.NewFaultPlan().FailProcessor(5, healthy.Cycles/4)},
		}
		for _, f := range faults {
			res, err := pancho.RunConfig(cool.Config{Processors: 16, Sched: v.sched, Faults: f.plan}, v.distribute, prm)
			if err != nil {
				return fmt.Errorf("straggler %s/%s: %w", v.name, f.name, err)
			}
			t := res.Report.Total
			rows = append(rows, []string{
				v.name, f.name,
				fmt.Sprintf("%d", res.Cycles),
				fmt.Sprintf("%.2fx", float64(res.Cycles)/float64(healthy.Cycles)),
				fmt.Sprintf("%d", t.StealsLocal+t.StealsRemote),
				fmt.Sprintf("%d", t.Redistributed),
			})
		}
	}
	fmt.Println(stats.Table(header, rows))
	return nil
}

// stealPolicyAblation compares the stealing policies discussed in §4.2.
func stealPolicyAblation() error {
	fmt.Println("A2  Steal policy (Panel Cholesky, Distr+Aff, P=16)")
	prm := pancho.DefaultParams()
	if *size > 0 {
		prm.Grid = *size
	}
	ser, err := pancho.RunSerial(prm)
	if err != nil {
		return err
	}
	policies := []struct {
		name string
		pol  cool.SchedPolicy
	}{
		{"default", cool.SchedPolicy{}},
		{"no stealing", cool.SchedPolicy{NoStealing: true}},
		{"no set stealing", cool.SchedPolicy{NoSetStealing: true}},
		{"no object-bound stealing", cool.SchedPolicy{NoObjectBoundStealing: true}},
		{"no cluster-first", cool.SchedPolicy{NoClusterStealFirst: true}},
		{"cluster-only stealing", cool.SchedPolicy{ClusterStealingOnly: true}},
	}
	header := []string{"policy", "cycles", "speedup(P=16)", "steals", "setSteals"}
	var rows [][]string
	for _, pc := range policies {
		res, err := pancho.RunCustom(16, pc.pol, true, prm)
		if err != nil {
			return err
		}
		t := res.Report.Total
		rows = append(rows, []string{
			pc.name,
			fmt.Sprintf("%d", res.Cycles),
			fmt.Sprintf("%.2f", float64(ser.Cycles)/float64(res.Cycles)),
			fmt.Sprintf("%d", t.StealsLocal+t.StealsRemote),
			fmt.Sprintf("%d", t.SetSteals),
		})
	}
	fmt.Println(stats.Table(header, rows))
	return nil
}
