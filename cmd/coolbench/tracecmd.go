// The -trace mode runs one application with scheduler-event recording on
// and writes a Chrome trace_event JSON file (load it at chrome://tracing
// or https://ui.perfetto.dev): one track per processor, task-execution
// slices, and instants for spawns, steals and faults. Timestamps are
// simulated cycles on the simulator backend and wall-clock nanoseconds
// on the native backend, both mapped to viewer microseconds.
//
//	coolbench -trace -trace-out ocean.json
//	coolbench -trace -trace-out g.json -trace-app gauss -trace-procs 16
//	coolbench -trace -trace-out g.json -trace-app gauss -trace-backend native
package main

import (
	"flag"
	"fmt"
	"os"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/apps"
)

func traceMain(args []string) int {
	fs := flag.NewFlagSet("coolbench -trace", flag.ExitOnError)
	_ = fs.Bool("trace", true, "trace-export mode (this flag)")
	out := fs.String("trace-out", "", "output file for the Chrome trace_event JSON (required)")
	appName := fs.String("trace-app", "ocean", "application to trace")
	variant := fs.String("trace-variant", "", "program variant (default: the app's most optimised)")
	procsN := fs.Int("trace-procs", 8, "processor count")
	size := fs.Int("trace-size", 0, "workload size override (0 = app default)")
	backendName := fs.String("trace-backend", "sim", "execution backend: sim or native")
	capacity := fs.Int("trace-cap", 1<<20, "maximum recorded scheduler events")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "coolbench -trace: -trace-out required")
		return 2
	}
	app, ok := apps.Lookup(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "coolbench -trace: unknown app %q (have %v)\n", *appName, apps.Names())
		return 2
	}
	v := *variant
	if v == "" {
		v = app.Variants[len(app.Variants)-1]
	}
	cfg := cool.Config{Processors: *procsN, TraceCapacity: *capacity}
	switch *backendName {
	case "sim":
	case "native":
		cfg.Backend = cool.BackendNative
	default:
		fmt.Fprintf(os.Stderr, "coolbench -trace: unknown backend %q (sim, native)\n", *backendName)
		return 2
	}
	// The registry's uniform interface hides the Runtime; recover it via
	// the construction hook so the trace can be exported after the run.
	var rt *cool.Runtime
	restore := cool.CaptureRuntime(func(r *cool.Runtime) { rt = r })
	res, err := app.RunCfg(cfg, v, *size)
	restore()
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench -trace: %v\n", err)
		return 1
	}
	if rt == nil {
		fmt.Fprintf(os.Stderr, "coolbench -trace: %s constructed no runtime\n", *appName)
		return 1
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench -trace: %v\n", err)
		return 1
	}
	werr := rt.WriteChromeTrace(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "coolbench -trace: %v\n", werr)
		return 1
	}
	fmt.Printf("wrote %s (%s/%s P=%d backend=%s; %s)\n", *out, *appName, v, *procsN, *backendName, res.Verify)
	return 0
}
