// The -bench-native mode is the native scalability benchmark suite: it
// sweeps the worker count P across every registered application on the
// goroutine execution backend, recording wall time, tasks run, and
// throughput (tasks per second) so the decentralized scheduler's scaling
// is measured on real hardware rather than inferred from the simulator.
//
//	coolbench -bench-native -bench-native-json BENCH_NATIVE.json
//	                                              write measurements
//	coolbench -bench-native -bench-native-json out.json -bench-native-small
//	                                              small sizes (CI smoke)
//	coolbench -bench-native -bench-native-procs 4,8,16
//	                                              subset of worker counts
//	coolbench -bench-native-check BENCH_NATIVE.json
//	                                              rerun the baseline's
//	                                              config and fail on a
//	                                              >20% total wall-clock
//	                                              regression
//
// The steal/contention counters are recorded per entry so a regression
// can be attributed (did steals fail more? did the shard locks become
// contended?) without rerunning under a profiler — though -cpuprofile
// and -mutexprofile are accepted in this mode for exactly that rerun.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/apps"
)

// nativeEntry is one (app, variant, P) measurement on the native
// backend. Throughput is tasks per second of wall time — the figure the
// paper's central claim is about: locality plus load balancing should
// make it grow with P.
type nativeEntry struct {
	Name           string  `json:"name"` // app/variant/P<procs>
	App            string  `json:"app"`
	Variant        string  `json:"variant"`
	Procs          int     `json:"procs"`
	Size           int     `json:"size"` // 0 = app default workload
	WallNS         int64   `json:"wall_ns"`
	TasksRun       int64   `json:"tasks_run"`
	Throughput     float64 `json:"tasks_per_sec"`
	Steals         int64   `json:"steals"`
	SetSteals      int64   `json:"set_steals"`
	FailedSteals   int64   `json:"failed_steals"`
	LockContention int64   `json:"lock_contention"`
	Verify         string  `json:"verify"`
}

// nativeDoc is the JSON document written by -bench-native-json and read
// back by -bench-native-check.
type nativeDoc struct {
	GoVersion string        `json:"go_version"`
	OSArch    string        `json:"os_arch"`
	NumCPU    int           `json:"num_cpu"`
	Reps      int           `json:"reps"`
	Small     bool          `json:"small"`
	Procs     []int         `json:"procs"`
	Results   []nativeEntry `json:"results"`
}

// nativeSmallSizes are the reduced workloads for -bench-native-small,
// matching the xcheck smoke sizes so CI cost stays bounded.
var nativeSmallSizes = map[string]int{
	"pancho":     24,
	"ocean":      64,
	"locusroute": 8,
	"blockcho":   128,
	"barneshut":  256,
	"gauss":      64,
}

// nativeFullSizes override the app-default workloads in the full sweep.
// The defaults for ocean, locusroute, and blockcho finish in single-digit
// milliseconds, where process startup dominates the wall clock and
// run-to-run noise swamps any scheduler effect; these sizes keep every
// cell in the tens of milliseconds. Apps not listed use their defaults.
var nativeFullSizes = map[string]int{
	"ocean":      384,
	"locusroute": 96,
	"blockcho":   640,
}

// benchNativeMain is the entry point for the -bench-native modes
// (dispatched from main ahead of the -bench prefix). Returns the
// process exit code.
func benchNativeMain(args []string) int {
	fs := flag.NewFlagSet("coolbench -bench-native", flag.ExitOnError)
	_ = fs.Bool("bench-native", true, "native scalability benchmark mode (this flag)")
	jsonOut := fs.String("bench-native-json", "", "write measurements to this JSON file")
	check := fs.String("bench-native-check", "", "baseline JSON to rerun and gate against (>20% wall regression fails)")
	procsFlag := fs.String("bench-native-procs", "1,2,4,8,16", "comma-separated worker counts to sweep")
	small := fs.Bool("bench-native-small", false, "use reduced workload sizes (CI smoke)")
	reps := fs.Int("bench-native-reps", 3, "repetitions per cell (best wall-clock wins)")
	appsFlag := fs.String("bench-native-apps", "", "comma-separated app subset (default: all registered)")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	mutexProf := fs.String("mutexprofile", "", "write a mutex-contention profile of the sweep to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stop, err := startProfiles(*cpuProf, *mutexProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	defer func() {
		if err := stop(); err != nil {
			fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		}
	}()
	if *check != "" {
		return benchNativeCheck(*check)
	}
	if *jsonOut == "" {
		fmt.Fprintln(os.Stderr, "coolbench: -bench-native-json or -bench-native-check required in native bench mode")
		return 2
	}
	var procs []int
	for _, f := range strings.Split(*procsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "coolbench: bad -bench-native-procs entry %q\n", f)
			return 2
		}
		procs = append(procs, n)
	}
	var names []string
	if *appsFlag != "" {
		for _, n := range strings.Split(*appsFlag, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	doc, err := benchNativeRun(procs, names, *small, *reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	out = append(out, '\n')
	if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s (%d cells)\n", *jsonOut, len(doc.Results))
	return 0
}

// benchNativeRun measures every (app, P) cell on the native backend,
// using each app's most locality-optimised variant (the same reference
// choice as the simulator bench harness).
func benchNativeRun(procs []int, names []string, small bool, reps int) (*nativeDoc, error) {
	if reps < 1 {
		reps = 1
	}
	if len(names) == 0 {
		names = apps.Names()
	}
	doc := &nativeDoc{
		GoVersion: runtime.Version(),
		OSArch:    runtime.GOOS + "/" + runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Reps:      reps,
		Small:     small,
		Procs:     procs,
	}
	for _, name := range names {
		app, ok := apps.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown app %q (have %v)", name, apps.Names())
		}
		variant := app.Variants[len(app.Variants)-1]
		size := nativeFullSizes[name]
		if small {
			size = nativeSmallSizes[name]
		}
		for _, p := range procs {
			e := nativeEntry{
				Name:    fmt.Sprintf("%s/%s/P%d", name, variant, p),
				App:     name,
				Variant: variant,
				Procs:   p,
				Size:    size,
			}
			for rep := 0; rep < reps; rep++ {
				res, err := app.RunCfg(cool.Config{Processors: p, Backend: cool.BackendNative}, variant, size)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", e.Name, err)
				}
				t := res.Report.Total
				// A healthy (fault-free, retry-free) run must not count
				// robustness events; a nonzero counter here is a native
				// scheduler bug, so it fails the sweep — and with it the
				// -bench-native-check CI smoke.
				if t.FaultEvents != 0 || t.Redistributed != 0 || t.Retries != 0 || t.GaveUp != 0 {
					return nil, fmt.Errorf(
						"%s: healthy native run counted robustness events (faults=%d redistributed=%d retries=%d gaveup=%d)",
						e.Name, t.FaultEvents, t.Redistributed, t.Retries, t.GaveUp)
				}
				// Cycles are wall-clock nanoseconds on the native backend.
				if rep == 0 || res.Cycles < e.WallNS {
					e.WallNS = res.Cycles
					e.TasksRun = t.TasksRun
					e.Steals = t.StealsLocal + t.StealsRemote
					e.SetSteals = t.SetSteals
					e.FailedSteals = t.FailedSteals
					e.LockContention = t.LockContention
					e.Verify = res.Verify
				}
			}
			if e.WallNS > 0 {
				e.Throughput = float64(e.TasksRun) / (float64(e.WallNS) / 1e9)
			}
			fmt.Printf("%-32s wall=%-12s tasks=%-8d thru=%-12.0f steals=%-6d failed=%-6d contention=%d\n",
				e.Name, time.Duration(e.WallNS), e.TasksRun, e.Throughput,
				e.Steals, e.FailedSteals, e.LockContention)
			doc.Results = append(doc.Results, e)
		}
	}
	return doc, nil
}

// benchNativeLoad reads a nativeDoc from disk.
func benchNativeLoad(path string) (*nativeDoc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc nativeDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// benchNativeCheck reruns the baseline's configuration and fails (exit
// 1) on a >20% regression of the summed wall-clock — the same gate
// policy as the simulator smoke bench: the sum, not any single cell, is
// gated because per-cell wall times on shared CI machines are noisy.
func benchNativeCheck(path string) int {
	base, err := benchNativeLoad(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	doc, err := benchNativeRun(base.Procs, nil, base.Small, base.Reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	byName := make(map[string]nativeEntry, len(base.Results))
	for _, e := range base.Results {
		byName[e.Name] = e
	}
	var oldSum, newSum int64
	for _, e := range doc.Results {
		b, ok := byName[e.Name]
		if !ok {
			fmt.Printf("%-32s NEW (no baseline entry)\n", e.Name)
			continue
		}
		oldSum += b.WallNS
		newSum += e.WallNS
		ratio := 0.0
		if b.WallNS > 0 {
			ratio = float64(e.WallNS) / float64(b.WallNS)
		}
		fmt.Printf("%-32s wall %12s -> %-12s (x%.2f)  thru %12.0f -> %-12.0f\n",
			e.Name, time.Duration(b.WallNS), time.Duration(e.WallNS), ratio,
			b.Throughput, e.Throughput)
	}
	if oldSum == 0 {
		fmt.Fprintln(os.Stderr, "coolbench: baseline has no comparable entries")
		return 1
	}
	ratio := float64(newSum) / float64(oldSum)
	fmt.Printf("total native wall %s -> %s (x%.3f, gate x1.20)\n",
		time.Duration(oldSum), time.Duration(newSum), ratio)
	if ratio > 1.20 {
		fmt.Fprintf(os.Stderr, "coolbench: native wall-clock regression x%.3f exceeds the 20%% gate\n", ratio)
		return 1
	}
	return 0
}
