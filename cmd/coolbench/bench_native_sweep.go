// The -bench-native mode is the native scalability benchmark suite: it
// sweeps the worker count P across every registered application on the
// goroutine execution backend, recording wall time, tasks run, and
// throughput (tasks per second) so the decentralized scheduler's scaling
// is measured on real hardware rather than inferred from the simulator.
//
//	coolbench -bench-native -bench-native-json BENCH_NATIVE.json
//	                                              write measurements
//	coolbench -bench-native -bench-native-json out.json -bench-native-small
//	                                              small sizes (CI smoke)
//	coolbench -bench-native -bench-native-procs 4,8,16
//	                                              subset of worker counts
//	coolbench -bench-native -bench-native-queue mutex
//	                                              run on the pre-deque
//	                                              mutex-queue scheduler
//	                                              (A/B baseline arm)
//	coolbench -bench-native-ab -bench-native-procs 8,16
//	                                              interleaved A/B: each
//	                                              rep runs the deque and
//	                                              mutex arms back to
//	                                              back, reporting the
//	                                              per-app wall ratio
//	coolbench -bench-native-check BENCH_NATIVE.json
//	                                              rerun the baseline's
//	                                              config and fail on a
//	                                              >20% total wall-clock
//	                                              regression
//
// The steal/contention counters are recorded per entry so a regression
// can be attributed (did steals fail more? did the shard locks become
// contended?) without rerunning under a profiler — though -cpuprofile
// and -mutexprofile are accepted in this mode for exactly that rerun.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/apps"
)

// nativeEntry is one (app, variant, P) measurement on the native
// backend. Throughput is tasks per second of wall time — the figure the
// paper's central claim is about: locality plus load balancing should
// make it grow with P.
type nativeEntry struct {
	Name           string  `json:"name"` // app/variant/P<procs>
	App            string  `json:"app"`
	Variant        string  `json:"variant"`
	Procs          int     `json:"procs"`
	Size           int     `json:"size"` // 0 = app default workload
	WallNS         int64   `json:"wall_ns"`
	TasksRun       int64   `json:"tasks_run"`
	Throughput     float64 `json:"tasks_per_sec"`
	Steals         int64   `json:"steals"`
	SetSteals      int64   `json:"set_steals"`
	FailedSteals   int64   `json:"failed_steals"`
	LockContention int64   `json:"lock_contention"`
	Verify         string  `json:"verify"`
}

// nativeDoc is the JSON document written by -bench-native-json and read
// back by -bench-native-check.
type nativeDoc struct {
	GoVersion string        `json:"go_version"`
	OSArch    string        `json:"os_arch"`
	NumCPU    int           `json:"num_cpu"`
	Reps      int           `json:"reps"`
	Small     bool          `json:"small"`
	Queue     string        `json:"queue,omitempty"` // "deque" (default) or "mutex"
	Procs     []int         `json:"procs"`
	Results   []nativeEntry `json:"results"`
}

// nativeSmallSizes are the reduced workloads for -bench-native-small,
// matching the xcheck smoke sizes so CI cost stays bounded.
var nativeSmallSizes = map[string]int{
	"pancho":     24,
	"ocean":      64,
	"locusroute": 8,
	"blockcho":   128,
	"barneshut":  256,
	"gauss":      64,
	"phaseflip":  80,
}

// nativeFullSizes override the app-default workloads in the full sweep.
// The defaults for ocean, locusroute, and blockcho finish in single-digit
// milliseconds, where process startup dominates the wall clock and
// run-to-run noise swamps any scheduler effect; these sizes keep every
// cell in the tens of milliseconds. Apps not listed use their defaults.
var nativeFullSizes = map[string]int{
	"ocean":      384,
	"locusroute": 96,
	"blockcho":   640,
}

// benchNativeMain is the entry point for the -bench-native modes
// (dispatched from main ahead of the -bench prefix). Returns the
// process exit code.
func benchNativeMain(args []string) int {
	fs := flag.NewFlagSet("coolbench -bench-native", flag.ExitOnError)
	_ = fs.Bool("bench-native", true, "native scalability benchmark mode (this flag)")
	jsonOut := fs.String("bench-native-json", "", "write measurements to this JSON file")
	check := fs.String("bench-native-check", "", "baseline JSON to rerun and gate against (>20% wall regression fails)")
	procsFlag := fs.String("bench-native-procs", "1,2,4,8,16,32,64", "comma-separated worker counts to sweep")
	small := fs.Bool("bench-native-small", false, "use reduced workload sizes (CI smoke)")
	reps := fs.Int("bench-native-reps", 3, "repetitions per cell (best wall-clock wins)")
	appsFlag := fs.String("bench-native-apps", "", "comma-separated app subset (default: all registered)")
	queue := fs.String("bench-native-queue", "deque", "worker queue implementation: deque (Chase-Lev) or mutex (PR 5 locked queue, the A/B baseline)")
	ab := fs.Bool("bench-native-ab", false, "interleaved A/B mode: run the deque and mutex arms back to back each rep and report per-app wall ratios")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	mutexProf := fs.String("mutexprofile", "", "write a mutex-contention profile of the sweep to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stop, err := startProfiles(*cpuProf, *mutexProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	defer func() {
		if err := stop(); err != nil {
			fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		}
	}()
	if *check != "" {
		return benchNativeCheck(*check)
	}
	if *queue != "deque" && *queue != "mutex" {
		fmt.Fprintf(os.Stderr, "coolbench: -bench-native-queue must be deque or mutex, got %q\n", *queue)
		return 2
	}
	var procs []int
	for _, f := range strings.Split(*procsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "coolbench: bad -bench-native-procs entry %q\n", f)
			return 2
		}
		procs = append(procs, n)
	}
	var names []string
	if *appsFlag != "" {
		for _, n := range strings.Split(*appsFlag, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	if *ab {
		return benchNativeAB(procs, names, *small, *reps)
	}
	if *jsonOut == "" {
		fmt.Fprintln(os.Stderr, "coolbench: -bench-native-json or -bench-native-check required in native bench mode")
		return 2
	}
	doc, err := benchNativeRun(procs, names, *small, *reps, *queue)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	out = append(out, '\n')
	if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s (%d cells)\n", *jsonOut, len(doc.Results))
	return 0
}

// benchNativeRun measures every (app, P) cell on the native backend,
// using each app's most locality-optimised variant (the same reference
// choice as the simulator bench harness). queue selects the worker
// queue implementation ("deque" or "mutex").
func benchNativeRun(procs []int, names []string, small bool, reps int, queue string) (*nativeDoc, error) {
	if reps < 1 {
		reps = 1
	}
	if len(names) == 0 {
		names = apps.Names()
	}
	doc := &nativeDoc{
		GoVersion: runtime.Version(),
		OSArch:    runtime.GOOS + "/" + runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Reps:      reps,
		Small:     small,
		Queue:     queue,
		Procs:     procs,
	}
	for _, name := range names {
		app, ok := apps.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown app %q (have %v)", name, apps.Names())
		}
		variant := app.Variants[len(app.Variants)-1]
		size := nativeFullSizes[name]
		if small {
			size = nativeSmallSizes[name]
		}
		for _, p := range procs {
			e := nativeEntry{
				Name:    fmt.Sprintf("%s/%s/P%d", name, variant, p),
				App:     name,
				Variant: variant,
				Procs:   p,
				Size:    size,
			}
			for rep := 0; rep < reps; rep++ {
				cfg := cool.Config{
					Processors: p,
					Backend:    cool.BackendNative,
					Sched:      cool.SchedPolicy{MutexQueue: queue == "mutex"},
				}
				res, err := app.RunCfg(cfg, variant, size)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", e.Name, err)
				}
				t := res.Report.Total
				// A healthy (fault-free, retry-free) run must not count
				// robustness events; a nonzero counter here is a native
				// scheduler bug, so it fails the sweep — and with it the
				// -bench-native-check CI smoke.
				if t.FaultEvents != 0 || t.Redistributed != 0 || t.Retries != 0 || t.GaveUp != 0 {
					return nil, fmt.Errorf(
						"%s: healthy native run counted robustness events (faults=%d redistributed=%d retries=%d gaveup=%d)",
						e.Name, t.FaultEvents, t.Redistributed, t.Retries, t.GaveUp)
				}
				// Likewise the pool must have stayed fixed: a healthy run
				// with no elastic config reporting membership events means
				// a worker retired (or appeared) spontaneously.
				if evs := res.Report.PoolEvents; len(evs) != 0 {
					return nil, fmt.Errorf(
						"%s: healthy fixed-pool run reported %d pool event(s), first %+v",
						e.Name, len(evs), evs[0])
				}
				// Cycles are wall-clock nanoseconds on the native backend.
				if rep == 0 || res.Cycles < e.WallNS {
					e.WallNS = res.Cycles
					e.TasksRun = t.TasksRun
					e.Steals = t.StealsLocal + t.StealsRemote
					e.SetSteals = t.SetSteals
					e.FailedSteals = t.FailedSteals
					e.LockContention = t.LockContention
					e.Verify = res.Verify
				}
			}
			if e.WallNS > 0 {
				e.Throughput = float64(e.TasksRun) / (float64(e.WallNS) / 1e9)
			}
			fmt.Printf("%-32s wall=%-12s tasks=%-8d thru=%-12.0f steals=%-6d failed=%-6d contention=%d\n",
				e.Name, time.Duration(e.WallNS), e.TasksRun, e.Throughput,
				e.Steals, e.FailedSteals, e.LockContention)
			doc.Results = append(doc.Results, e)
		}
	}
	return doc, nil
}

// benchNativeAB is the interleaved deque-vs-mutex comparison: for every
// (app, P) cell it alternates the two queue arms within each repetition
// — deque, mutex, mutex, deque, ... — so drift in machine load lands on
// both arms symmetrically rather than biasing whichever ran last. Best
// wall-clock per arm wins (same policy as the sweep), and the summary
// reports the per-app ratio of mutex wall to deque wall summed over P:
// the factor the Chase-Lev deque, inbox, and batched publish/wake paths
// buy over the PR 5 locked queue (the per-worker freelists and the
// wake-accounting fixes are present in both arms).
func benchNativeAB(procs []int, names []string, small bool, reps int) int {
	if reps < 1 {
		reps = 1
	}
	if len(names) == 0 {
		names = apps.Names()
	}
	type armWall struct{ deque, mutex int64 }
	perApp := make(map[string]*armWall, len(names))
	for _, name := range names {
		app, ok := apps.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "coolbench: unknown app %q (have %v)\n", name, apps.Names())
			return 1
		}
		variant := app.Variants[len(app.Variants)-1]
		size := nativeFullSizes[name]
		if small {
			size = nativeSmallSizes[name]
		}
		perApp[name] = &armWall{}
		for _, p := range procs {
			var best armWall
			for rep := 0; rep < reps; rep++ {
				arms := []bool{false, true} // false = deque
				if rep%2 == 1 {
					arms[0], arms[1] = arms[1], arms[0]
				}
				for _, mutex := range arms {
					cfg := cool.Config{
						Processors: p,
						Backend:    cool.BackendNative,
						Sched:      cool.SchedPolicy{MutexQueue: mutex},
					}
					res, err := app.RunCfg(cfg, variant, size)
					if err != nil {
						fmt.Fprintf(os.Stderr, "coolbench: %s/%s/P%d (mutex=%v): %v\n",
							name, variant, p, mutex, err)
						return 1
					}
					if mutex {
						if best.mutex == 0 || res.Cycles < best.mutex {
							best.mutex = res.Cycles
						}
					} else if best.deque == 0 || res.Cycles < best.deque {
						best.deque = res.Cycles
					}
				}
			}
			ratio := 0.0
			if best.deque > 0 {
				ratio = float64(best.mutex) / float64(best.deque)
			}
			fmt.Printf("%-28s deque=%-12s mutex=%-12s mutex/deque=x%.2f\n",
				fmt.Sprintf("%s/%s/P%d", name, variant, p),
				time.Duration(best.deque), time.Duration(best.mutex), ratio)
			perApp[name].deque += best.deque
			perApp[name].mutex += best.mutex
		}
	}
	fmt.Println("--- per-app totals (summed over P) ---")
	for _, name := range names {
		w := perApp[name]
		ratio := 0.0
		if w.deque > 0 {
			ratio = float64(w.mutex) / float64(w.deque)
		}
		fmt.Printf("%-12s deque=%-12s mutex=%-12s speedup=x%.2f\n",
			name, time.Duration(w.deque), time.Duration(w.mutex), ratio)
	}
	return 0
}

// benchNativeLoad reads a nativeDoc from disk.
func benchNativeLoad(path string) (*nativeDoc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc nativeDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// benchNativeCheck reruns the baseline's configuration and fails (exit
// 1) on a >20% regression of the summed wall-clock — the same gate
// policy as the simulator smoke bench: the sum, not any single cell, is
// gated because per-cell wall times on shared CI machines are noisy.
func benchNativeCheck(path string) int {
	base, err := benchNativeLoad(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	queue := base.Queue
	if queue == "" {
		queue = "deque" // baselines predating the A/B arm measured the default
	}
	doc, err := benchNativeRun(base.Procs, nil, base.Small, base.Reps, queue)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	byName := make(map[string]nativeEntry, len(base.Results))
	for _, e := range base.Results {
		byName[e.Name] = e
	}
	var oldSum, newSum int64
	for _, e := range doc.Results {
		b, ok := byName[e.Name]
		if !ok {
			fmt.Printf("%-32s NEW (no baseline entry)\n", e.Name)
			continue
		}
		oldSum += b.WallNS
		newSum += e.WallNS
		ratio := 0.0
		if b.WallNS > 0 {
			ratio = float64(e.WallNS) / float64(b.WallNS)
		}
		fmt.Printf("%-32s wall %12s -> %-12s (x%.2f)  thru %12.0f -> %-12.0f\n",
			e.Name, time.Duration(b.WallNS), time.Duration(e.WallNS), ratio,
			b.Throughput, e.Throughput)
	}
	if oldSum == 0 {
		fmt.Fprintln(os.Stderr, "coolbench: baseline has no comparable entries")
		return 1
	}
	ratio := float64(newSum) / float64(oldSum)
	fmt.Printf("total native wall %s -> %s (x%.3f, gate x1.20)\n",
		time.Duration(oldSum), time.Duration(newSum), ratio)
	if ratio > 1.20 {
		fmt.Fprintf(os.Stderr, "coolbench: native wall-clock regression x%.3f exceeds the 20%% gate\n", ratio)
		return 1
	}
	return 0
}
