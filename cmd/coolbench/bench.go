// The -bench-* modes form the benchmark regression harness: they run the
// reference experiments (Gauss, Ocean, Panel Cholesky, LocusRoute at
// P=8/32) on the host, recording wall-clock, allocations, and the
// simulated MaxClock, and emit machine-readable JSON so every PR lands
// against a measured trajectory.
//
//	coolbench -bench-json BENCH_PR2.json            write measurements
//	coolbench -bench-json out.json -bench-small     small sizes (CI smoke)
//	coolbench -bench-json out.json -bench-baseline old.json
//	                                                embed old.json and
//	                                                improvement ratios
//	coolbench -bench-check BENCH_SMOKE.json         rerun the baseline's
//	                                                config and fail on a
//	                                                >20% total wall-clock
//	                                                regression
//
// This file depends only on the apps registry and the standard library,
// so the identical file builds against older trees when measuring a
// baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/coolrts/cool/internal/apps"
)

// benchCase is one reference experiment: an app's full-affinity variant
// at a processor count.
type benchCase struct {
	app   string
	procs int
}

// benchCases returns the reference experiment list. small selects the
// reduced workload sizes used by the CI smoke job.
func benchCases() []benchCase {
	var out []benchCase
	for _, app := range []string{"gauss", "ocean", "pancho", "locusroute"} {
		for _, p := range []int{8, 32} {
			out = append(out, benchCase{app: app, procs: p})
		}
	}
	return out
}

// benchSmallSizes are the reduced workloads for -bench-small.
var benchSmallSizes = map[string]int{
	"gauss":      64,
	"ocean":      64,
	"pancho":     24,
	"locusroute": 8,
}

// benchDelta is the baseline comparison embedded per entry when
// -bench-baseline names an earlier measurement.
type benchDelta struct {
	WallNS      int64   `json:"wall_ns"`
	AllocsOp    uint64  `json:"allocs_op"`
	SimClock    int64   `json:"sim_max_clock"`
	WallRatio   float64 `json:"wall_ratio"`   // current/baseline
	AllocsRatio float64 `json:"allocs_ratio"` // current/baseline
}

// benchEntry is one experiment's measurement. The native_* fields
// measure the same workload on the goroutine execution backend (real
// parallel wall-clock, not simulation cost); they are absent from
// baselines recorded before the native backend existed and unmarshal
// as zero, which the comparison code treats as "not measured".
type benchEntry struct {
	Name           string      `json:"name"` // app/variant/P<procs>
	App            string      `json:"app"`
	Variant        string      `json:"variant"`
	Procs          int         `json:"procs"`
	Size           int         `json:"size"` // 0 = app default workload
	WallNS         int64       `json:"wall_ns"`
	AllocsOp       uint64      `json:"allocs_op"`
	BytesOp        uint64      `json:"bytes_op"`
	SimClock       int64       `json:"sim_max_clock"`
	NativeWallNS   int64       `json:"native_wall_ns,omitempty"`
	NativeAllocsOp uint64      `json:"native_allocs_op,omitempty"`
	Verify         string      `json:"verify"`
	Baseline       *benchDelta `json:"baseline,omitempty"`
}

// benchDoc is the JSON document written by -bench-json and read back by
// -bench-check / -bench-baseline.
type benchDoc struct {
	GoVersion string       `json:"go_version"`
	OSArch    string       `json:"os_arch"`
	Reps      int          `json:"reps"`
	Small     bool         `json:"small"`
	Results   []benchEntry `json:"results"`
}

// nativeBench, when installed (from bench_native.go), measures the same
// workload on the native goroutine backend. It is a hook variable so
// this file keeps its only-apps-and-stdlib dependency contract: copied
// alone into a tree predating the native backend, it still builds and
// simply skips the native columns.
var nativeBench func(app apps.App, variant string, procs, size int) (wallNS int64, allocs uint64, err error)

// benchMain is the entry point for the -bench-* modes (dispatched from
// main before the experiment flags are parsed). Returns the process exit
// code.
func benchMain(args []string) int {
	fs := flag.NewFlagSet("coolbench -bench", flag.ExitOnError)
	jsonOut := fs.String("bench-json", "", "write measurements to this JSON file")
	check := fs.String("bench-check", "", "baseline JSON to rerun and gate against (>20% wall regression fails)")
	small := fs.Bool("bench-small", false, "use reduced workload sizes (CI smoke)")
	reps := fs.Int("bench-reps", 3, "repetitions per experiment (best wall-clock wins)")
	baseline := fs.String("bench-baseline", "", "earlier -bench-json output to embed improvement ratios against")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut == "" && *check == "" {
		fmt.Fprintln(os.Stderr, "coolbench: -bench-json or -bench-check required in bench mode")
		return 2
	}
	if *check != "" {
		return benchCheck(*check, *reps)
	}
	doc, err := benchRun(*small, *reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	if *baseline != "" {
		base, err := benchLoad(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
			return 1
		}
		benchEmbed(doc, base)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	out = append(out, '\n')
	if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s (%d experiments)\n", *jsonOut, len(doc.Results))
	return 0
}

// benchRun measures every reference experiment.
func benchRun(small bool, reps int) (*benchDoc, error) {
	if reps < 1 {
		reps = 1
	}
	doc := &benchDoc{
		GoVersion: runtime.Version(),
		OSArch:    runtime.GOOS + "/" + runtime.GOARCH,
		Reps:      reps,
		Small:     small,
	}
	for _, c := range benchCases() {
		app, ok := apps.Lookup(c.app)
		if !ok {
			return nil, fmt.Errorf("unknown app %q", c.app)
		}
		// The reference run is the app's most locality-optimised variant
		// (the registry lists Base first, refinements after).
		variant := app.Variants[len(app.Variants)-1]
		size := 0
		if small {
			size = benchSmallSizes[c.app]
		}
		e := benchEntry{
			Name:    fmt.Sprintf("%s/%s/P%d", c.app, variant, c.procs),
			App:     c.app,
			Variant: variant,
			Procs:   c.procs,
			Size:    size,
		}
		for rep := 0; rep < reps; rep++ {
			wall, allocs, bytes, res, err := benchOnce(app, variant, c.procs, size)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", e.Name, err)
			}
			if rep == 0 || wall < e.WallNS {
				e.WallNS = wall
				e.AllocsOp = allocs
				e.BytesOp = bytes
			}
			e.SimClock = res.Cycles
			e.Verify = res.Verify
		}
		if nativeBench != nil {
			for rep := 0; rep < reps; rep++ {
				wall, allocs, err := nativeBench(app, variant, c.procs, size)
				if err != nil {
					return nil, fmt.Errorf("%s (native): %w", e.Name, err)
				}
				if rep == 0 || wall < e.NativeWallNS {
					e.NativeWallNS = wall
					e.NativeAllocsOp = allocs
				}
			}
		}
		native := ""
		if e.NativeWallNS > 0 {
			native = fmt.Sprintf("  nativeWall=%s", time.Duration(e.NativeWallNS))
		}
		fmt.Printf("%-28s wall=%-12s allocs=%-10d simClock=%d%s\n",
			e.Name, time.Duration(e.WallNS), e.AllocsOp, e.SimClock, native)
		doc.Results = append(doc.Results, e)
	}
	return doc, nil
}

// benchOnce runs one experiment, measuring wall time and the allocation
// delta around the run.
func benchOnce(app apps.App, variant string, procs, size int) (wallNS int64, allocs, bytes uint64, res apps.Result, err error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err = app.Run(procs, variant, size)
	wallNS = time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&after)
	allocs = after.Mallocs - before.Mallocs
	bytes = after.TotalAlloc - before.TotalAlloc
	return wallNS, allocs, bytes, res, err
}

// benchLoad reads a benchDoc from disk.
func benchLoad(path string) (*benchDoc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// benchEmbed attaches baseline figures and current/baseline ratios to
// matching entries.
func benchEmbed(doc, base *benchDoc) {
	byName := make(map[string]benchEntry, len(base.Results))
	for _, e := range base.Results {
		byName[e.Name] = e
	}
	for i := range doc.Results {
		e := &doc.Results[i]
		b, ok := byName[e.Name]
		if !ok {
			continue
		}
		d := &benchDelta{WallNS: b.WallNS, AllocsOp: b.AllocsOp, SimClock: b.SimClock}
		if b.WallNS > 0 {
			d.WallRatio = float64(e.WallNS) / float64(b.WallNS)
		}
		if b.AllocsOp > 0 {
			d.AllocsRatio = float64(e.AllocsOp) / float64(b.AllocsOp)
		}
		e.Baseline = d
	}
}

// benchCheck reruns the baseline's configuration and fails (exit 1) on a
// >20% regression of the summed wall-clock. The sum — rather than any
// single experiment — is gated because per-experiment wall times on
// shared CI machines are noisy; allocation counts are reported alongside
// for diagnosis.
func benchCheck(path string, reps int) int {
	base, err := benchLoad(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	doc, err := benchRun(base.Small, reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	benchEmbed(doc, base)
	var oldSum, newSum int64
	for _, e := range doc.Results {
		if e.Baseline == nil {
			fmt.Printf("%-28s NEW (no baseline entry)\n", e.Name)
			continue
		}
		oldSum += e.Baseline.WallNS
		newSum += e.WallNS
		fmt.Printf("%-28s wall %12s -> %-12s (x%.2f)  allocs %10d -> %-10d\n",
			e.Name, time.Duration(e.Baseline.WallNS), time.Duration(e.WallNS),
			e.Baseline.WallRatio, e.Baseline.AllocsOp, e.AllocsOp)
	}
	if oldSum == 0 {
		fmt.Fprintln(os.Stderr, "coolbench: baseline has no comparable entries")
		return 1
	}
	ratio := float64(newSum) / float64(oldSum)
	fmt.Printf("total wall %s -> %s (x%.3f, gate x1.20)\n",
		time.Duration(oldSum), time.Duration(newSum), ratio)
	if ratio > 1.20 {
		fmt.Fprintf(os.Stderr, "coolbench: wall-clock regression x%.3f exceeds the 20%% gate\n", ratio)
		return 1
	}
	return 0
}
