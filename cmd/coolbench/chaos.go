// The -chaos mode is the self-checking chaos-campaign driver: seeded
// random fault plans run against every registered application, each run
// differentially checked against a fault-free reference (numeric
// results token for token, plus total tasks run — no lost or duplicated
// work). A failing campaign is automatically shrunk to a minimal
// reproducing fault plan and printed as copy-pasteable builder calls.
//
//	coolbench -chaos                              50 campaigns per app
//	coolbench -chaos -chaos-campaigns 8           quicker sweep
//	coolbench -chaos -chaos-apps gauss,ocean      subset of apps
//	coolbench -chaos -chaos-seed 17 -chaos-campaigns 1
//	                                              replay one campaign
//	coolbench -chaos -chaos-small                 reduced workloads (CI)
//	coolbench -chaos -chaos-native                campaigns on the native
//	                                              (goroutine) backend
//	coolbench -chaos -chaos-native -chaos-churn   add elastic pool churn
//	                                              (AddWorker/Drain events)
//	coolbench -chaos -chaos-adapt                 adaptive affinity controller
//	                                              armed on every faulted run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/apps"
	"github.com/coolrts/cool/internal/chaos"
)

// chaosSmallSizes are reduced workloads for the CI smoke job (same
// spirit as -bench-small).
var chaosSmallSizes = map[string]int{
	"gauss":      48,
	"ocean":      64,
	"pancho":     20,
	"locusroute": 6,
	"blockcho":   64,
	"barneshut":  128,
	"phaseflip":  60,
}

func chaosMain(args []string) int {
	fs := flag.NewFlagSet("coolbench -chaos", flag.ExitOnError)
	_ = fs.Bool("chaos", true, "chaos-campaign mode (this flag)")
	campaigns := fs.Int("chaos-campaigns", 50, "seeded campaigns per application")
	baseSeed := fs.Int64("chaos-seed", 1, "seed of the first campaign (campaign i uses seed+i)")
	procs := fs.Int("chaos-procs", 8, "simulated processors per campaign")
	appsFlag := fs.String("chaos-apps", "", "comma-separated app subset (default: all registered)")
	small := fs.Bool("chaos-small", false, "use reduced workload sizes (CI smoke)")
	nativeFlag := fs.Bool("chaos-native", false, "run campaigns on the native goroutine backend (plan times read as nanoseconds)")
	churn := fs.Bool("chaos-churn", false, "include elastic pool churn (AddWorker/Drain) in generated plans; requires -chaos-native")
	adapt := fs.Bool("chaos-adapt", false, "arm the adaptive affinity controller on every faulted run (reference stays static)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	backend := cool.BackendSim
	if *nativeFlag {
		backend = cool.BackendNative
	}
	if *churn && !*nativeFlag {
		fmt.Fprintln(os.Stderr, "coolbench -chaos: -chaos-churn requires -chaos-native (the simulator has no worker pool)")
		return 2
	}

	names := apps.Names()
	if *appsFlag != "" {
		names = strings.Split(*appsFlag, ",")
	}
	oracle := chaos.NewOracle()
	failures := 0
	for _, name := range names {
		app, ok := apps.Lookup(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "coolbench -chaos: unknown app %q (have %v)\n", name, apps.Names())
			return 2
		}
		size := 0
		if *small {
			size = chaosSmallSizes[app.Name]
		}
		tally := map[chaos.Verdict]int{}
		for i := 0; i < *campaigns; i++ {
			seed := *baseSeed + int64(i)
			var c chaos.Campaign
			if *churn {
				c = chaos.NewChurnCampaign(app, seed, *procs, size)
			} else {
				c = chaos.NewCampaign(app, seed, *procs, size)
				c.Backend = backend
			}
			c.Adapt = *adapt
			out := oracle.Run(app, c)
			tally[out.Verdict]++
			if !out.Verdict.Bad() {
				continue
			}
			failures++
			min, minOut := oracle.Shrink(app, c)
			fmt.Printf("CHAOS FAILURE app=%s seed=%d procs=%d backend=%v verdict=%v\n",
				app.Name, seed, *procs, backend, out.Verdict)
			fmt.Printf("  %s\n", out.Detail)
			fmt.Printf("  minimal plan (%d of %d events, verdict=%v):\n", min.Plan.Len(), c.Plan.Len(), minOut.Verdict)
			for _, line := range strings.Split(min.Plan.BuilderString(), "\n") {
				fmt.Printf("    %s\n", line)
			}
			replayNative := ""
			if backend == cool.BackendNative {
				replayNative = " -chaos-native"
			}
			if *churn {
				replayNative += " -chaos-churn"
			}
			if *adapt {
				replayNative += " -chaos-adapt"
			}
			fmt.Printf("  replay: coolbench -chaos%s -chaos-apps %s -chaos-seed %d -chaos-campaigns 1 -chaos-procs %d\n",
				replayNative, app.Name, seed, *procs)
		}
		fmt.Printf("%-12s %d campaigns (%v): %d ok, %d degraded, %d mismatch, %d leak, %d unexpected\n",
			app.Name, *campaigns, backend, tally[chaos.OK], tally[chaos.Degraded],
			tally[chaos.Mismatch], tally[chaos.Leak], tally[chaos.Unexpected])
	}
	if failures > 0 {
		fmt.Printf("chaos: %d failing campaign(s)\n", failures)
		return 1
	}
	fmt.Println("chaos: all campaigns differentially identical or gracefully degraded")
	return 0
}
