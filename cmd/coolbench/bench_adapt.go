// The -bench-adapt mode is the adaptive-controller A/B harness: every
// registered application (most locality-optimised variant) runs three
// interleaved arms per cell — flat stealing, cluster-only stealing,
// and the adaptive controller — at P=8/16/32 on the simulator, where
// cycle counts are deterministic. The adaptive arm warm-starts across
// repetitions: each rep after the first seeds the controller with the
// policy the previous rep learned, so the score covers both the cold
// run (paying the observation epochs) and the steady state a
// policy-persisting runtime reaches. The JSON it writes records, per
// cell, the cycles of each arm (adaptive as the mean over reps), the
// best static arm, the adaptive-vs-best-static ratio, and whether
// replaying each rep's decision trace over its initial policy
// reconstructs the controller's final state.
//
//	coolbench -bench-adapt -bench-adapt-json BENCH_ADAPT.json
//	coolbench -bench-adapt -bench-adapt-json out.json -bench-adapt-small
//	coolbench -bench-adapt -bench-adapt-check BENCH_ADAPT.json
//
// The check mode reruns the baseline's configuration and fails when
// any cell's adaptive run is slower than 0.95x the best static arm,
// when fewer than two phase-shifting cells reach 1.1x, when any
// decision trace fails to replay, or when the summed wall-clock
// regresses more than 20% against the baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/apps"
)

// adaptBenchEpoch is the controller epoch used by every adaptive arm:
// short enough that each phaseflip phase spans several epochs even at
// the smoke sizes, and that the controller's first evaluation lands
// before an app's opening steal burst has seeded many wrong-cluster
// subtrees.
const adaptBenchEpoch = 10_000

// adaptSmallSizes are the reduced workloads for -bench-adapt-small.
// phaseflip stays large enough that each phase outlasts the
// controller's hysteresis, so the smoke job still exercises flips.
var adaptSmallSizes = map[string]int{
	"gauss":      64,
	"ocean":      64,
	"pancho":     24,
	"locusroute": 8,
	"blockcho":   128,
	"barneshut":  256,
	"phaseflip":  240,
}

// adaptEntry is one cell's measurement. The adaptive arm warm-starts:
// each repetition after the first seeds the controller with the policy
// vector the previous repetition learned (AdaptPolicy.Start), modeling
// a runtime that persists policy between runs of the same workload.
// CyclesAdaptive is the mean over the cold and warm repetitions and
// Ratio is best-static cycles over that mean, so >1 means the
// controller beat every static policy and 0.95 is the
// never-much-worse floor.
type adaptEntry struct {
	Name           string  `json:"name"` // app/variant/P<procs>
	App            string  `json:"app"`
	Variant        string  `json:"variant"`
	Procs          int     `json:"procs"`
	Size           int     `json:"size"` // 0 = app default workload
	CyclesFlat     int64   `json:"cycles_flat"`
	CyclesCluster  int64   `json:"cycles_cluster"`
	CyclesAdaptive int64   `json:"cycles_adaptive"` // mean over reps
	AdaptiveReps   []int64 `json:"cycles_adaptive_reps"`
	BestStatic     string  `json:"best_static"` // "flat" or "cluster"
	Ratio          float64 `json:"ratio"`       // best-static / adaptive
	Decisions      int     `json:"decisions"`   // summed over reps
	ReplayOK       bool    `json:"replay_ok"`   // every rep's trace replays
	PhaseShifting  bool    `json:"phase_shifting"`
	WallNS         int64   `json:"wall_ns"` // all arms summed, best rep
}

// adaptDoc is the JSON document written by -bench-adapt-json and read
// back by -bench-adapt-check.
type adaptDoc struct {
	GoVersion string       `json:"go_version"`
	OSArch    string       `json:"os_arch"`
	Reps      int          `json:"reps"`
	Small     bool         `json:"small"`
	Epoch     int64        `json:"epoch"`
	Results   []adaptEntry `json:"results"`
}

// benchAdaptMain is the entry point for the -bench-adapt mode
// (dispatched from main ahead of the -bench prefix). Returns the
// process exit code.
func benchAdaptMain(args []string) int {
	fs := flag.NewFlagSet("coolbench -bench-adapt", flag.ExitOnError)
	_ = fs.Bool("bench-adapt", true, "adaptive A/B benchmark mode (this flag)")
	jsonOut := fs.String("bench-adapt-json", "", "write measurements to this JSON file")
	check := fs.String("bench-adapt-check", "", "baseline JSON to rerun and gate against")
	small := fs.Bool("bench-adapt-small", false, "use reduced workload sizes (CI smoke)")
	reps := fs.Int("bench-adapt-reps", 2, "repetitions per cell (deterministic cycles; best wall wins)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut == "" && *check == "" {
		fmt.Fprintln(os.Stderr, "coolbench: -bench-adapt-json or -bench-adapt-check required in bench-adapt mode")
		return 2
	}
	if *check != "" {
		return adaptCheck(*check, *reps)
	}
	doc, err := adaptRun(*small, *reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	if msgs := adaptGate(doc); len(msgs) > 0 {
		for _, m := range msgs {
			fmt.Fprintf(os.Stderr, "coolbench -bench-adapt: %s\n", m)
		}
		return 1
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	out = append(out, '\n')
	if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s (%d cells)\n", *jsonOut, len(doc.Results))
	return 0
}

// adaptRun measures every cell. The three arms of a rep run
// back-to-back (interleaved rather than batched per arm), so slow
// drift of the host machine biases no arm's wall-clock.
func adaptRun(small bool, reps int) (*adaptDoc, error) {
	if reps < 1 {
		reps = 1
	}
	doc := &adaptDoc{
		GoVersion: runtime.Version(),
		OSArch:    runtime.GOOS + "/" + runtime.GOARCH,
		Reps:      reps,
		Small:     small,
		Epoch:     adaptBenchEpoch,
	}
	for _, name := range apps.Names() {
		app, _ := apps.Lookup(name)
		variant := app.Variants[len(app.Variants)-1]
		size := 0
		if small {
			size = adaptSmallSizes[name]
		}
		for _, p := range []int{8, 16, 32} {
			e := adaptEntry{
				Name:          fmt.Sprintf("%s/%s/P%d", name, variant, p),
				App:           name,
				Variant:       variant,
				Procs:         p,
				Size:          size,
				PhaseShifting: name == "phaseflip",
			}
			e.ReplayOK = true
			var warm *cool.AdaptState
			for rep := 0; rep < reps; rep++ {
				wall, final, err := adaptCell(app, variant, p, size, warm, &e)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", e.Name, err)
				}
				warm = final
				if rep == 0 || wall < e.WallNS {
					e.WallNS = wall
				}
			}
			var sum int64
			for _, c := range e.AdaptiveReps {
				sum += c
			}
			e.CyclesAdaptive = sum / int64(len(e.AdaptiveReps))
			best := e.CyclesFlat
			e.BestStatic = "flat"
			if e.CyclesCluster < best {
				best = e.CyclesCluster
				e.BestStatic = "cluster"
			}
			e.Ratio = float64(best) / float64(e.CyclesAdaptive)
			fmt.Printf("%-26s flat=%-9d cluster=%-9d adaptive=%-9d best/adaptive=%.3f decisions=%-3d replay=%v\n",
				e.Name, e.CyclesFlat, e.CyclesCluster, e.CyclesAdaptive, e.Ratio, e.Decisions, e.ReplayOK)
			doc.Results = append(doc.Results, e)
		}
	}
	return doc, nil
}

// adaptCell runs one rep of a cell's three arms and records their
// (deterministic) cycle counts plus the adaptive arm's decision-replay
// verdict. The adaptive arm warm-starts from the previous rep's
// learned policy when one is passed. Returns the rep's summed
// wall-clock and the policy vector this rep's controller ended on.
func adaptCell(app apps.App, variant string, procs, size int, warm *cool.AdaptState, e *adaptEntry) (int64, *cool.AdaptState, error) {
	start := time.Now()
	flat, err := app.RunCfg(cool.Config{Processors: procs}, variant, size)
	if err != nil {
		return 0, nil, fmt.Errorf("flat: %w", err)
	}
	clusterCfg := cool.Config{Processors: procs}
	clusterCfg.Sched.ClusterStealingOnly = true
	cluster, err := app.RunCfg(clusterCfg, variant, size)
	if err != nil {
		return 0, nil, fmt.Errorf("cluster: %w", err)
	}
	adaptCfg := cool.Config{
		Processors: procs,
		Adapt:      &cool.AdaptPolicy{Epoch: adaptBenchEpoch, Start: warm},
	}
	var rt *cool.Runtime
	restore := cool.CaptureRuntime(func(r *cool.Runtime) { rt = r })
	adaptive, err := app.RunCfg(adaptCfg, variant, size)
	restore()
	if err != nil {
		return 0, nil, fmt.Errorf("adaptive: %w", err)
	}
	e.CyclesFlat = flat.Cycles
	e.CyclesCluster = cluster.Cycles
	e.AdaptiveReps = append(e.AdaptiveReps, adaptive.Cycles)
	e.Decisions += len(adaptive.Report.Decisions)
	var final *cool.AdaptState
	replay := false
	if rt != nil {
		st, okSt := rt.AdaptState()
		// Seed the replay from the runtime's actual starting vector, not
		// the base configuration: variants may force scheduling knobs
		// (e.g. cluster-only stealing) on top of the passed config, and a
		// warm start seeds the controller with the previous rep's state.
		init, okInit := rt.AdaptInitialState()
		if okSt && okInit {
			replay = cool.ReplayAdaptDecisions(init, adaptive.Report.Decisions) == st
			final = &st
		}
	}
	e.ReplayOK = e.ReplayOK && replay
	return time.Since(start).Nanoseconds(), final, nil
}

// adaptGate applies the quality gates that do not need a baseline:
// the 0.95x never-much-worse floor on every cell, at least two
// phase-shifting cells where the controller beats the best static by
// 1.1x, and a reconstructible decision trace everywhere.
func adaptGate(doc *adaptDoc) []string {
	var msgs []string
	phaseWins := 0
	for _, e := range doc.Results {
		if e.Ratio < 0.95 {
			msgs = append(msgs, fmt.Sprintf("%s: adaptive is %.3fx the best static arm (floor 0.95)", e.Name, e.Ratio))
		}
		if e.PhaseShifting && e.Ratio >= 1.10 {
			phaseWins++
		}
		if !e.ReplayOK {
			msgs = append(msgs, fmt.Sprintf("%s: decision trace does not replay to the final state", e.Name))
		}
	}
	if phaseWins < 2 {
		msgs = append(msgs, fmt.Sprintf("only %d phase-shifting cells reach 1.1x over the best static (need 2)", phaseWins))
	}
	return msgs
}

// adaptCheck reruns the baseline's configuration, applies the quality
// gates, and additionally fails on a >20% regression of the summed
// wall-clock (same shared-CI noise reasoning as benchCheck).
func adaptCheck(path string, reps int) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	var base adaptDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %s: %v\n", path, err)
		return 1
	}
	if base.Reps > 0 {
		reps = base.Reps // the adaptive mean depends on the rep count
	}
	doc, err := adaptRun(base.Small, reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolbench: %v\n", err)
		return 1
	}
	fail := false
	for _, m := range adaptGate(doc) {
		fmt.Fprintf(os.Stderr, "coolbench -bench-adapt: %s\n", m)
		fail = true
	}
	byName := make(map[string]adaptEntry, len(base.Results))
	for _, e := range base.Results {
		byName[e.Name] = e
	}
	var oldWall, newWall int64
	for _, e := range doc.Results {
		b, ok := byName[e.Name]
		if !ok {
			fmt.Printf("%-26s NEW (no baseline entry)\n", e.Name)
			continue
		}
		oldWall += b.WallNS
		newWall += e.WallNS
		if e.CyclesAdaptive != b.CyclesAdaptive {
			fmt.Printf("%-26s adaptive cycles %d -> %d\n", e.Name, b.CyclesAdaptive, e.CyclesAdaptive)
		}
	}
	if oldWall > 0 {
		ratio := float64(newWall) / float64(oldWall)
		fmt.Printf("total wall %s -> %s (x%.3f, gate x1.20)\n",
			time.Duration(oldWall), time.Duration(newWall), ratio)
		if ratio > 1.20 {
			fmt.Fprintf(os.Stderr, "coolbench: wall-clock regression x%.3f exceeds the 20%% gate\n", ratio)
			fail = true
		}
	}
	if fail {
		return 1
	}
	fmt.Println("bench-adapt: all gates pass")
	return 0
}
