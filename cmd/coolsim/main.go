// Command coolsim runs a single application/variant/processor-count
// combination on the simulated machine and prints its timing, speedup
// versus the serial reference, and performance-monitor summary.
//
// Usage:
//
//	coolsim -app pancho -variant Distr+Aff -procs 16
//	coolsim -app locusroute -variant Affinity+ObjectDistr -procs 8 -size 48
//	coolsim -app ocean -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/coolrts/cool/internal/apps"
)

func main() {
	var (
		appName = flag.String("app", "", "application: "+strings.Join(apps.Names(), ", "))
		variant = flag.String("variant", "", "program variant (see -list)")
		procs   = flag.Int("procs", 8, "number of simulated processors")
		size    = flag.Int("size", 0, "workload size override (app-specific; 0 = default)")
		list    = flag.Bool("list", false, "list variants for -app and exit")
		verbose = flag.Bool("v", false, "print the full per-run report")
	)
	flag.Parse()

	app, ok := apps.Lookup(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "coolsim: unknown app %q (have: %s)\n", *appName, strings.Join(apps.Names(), ", "))
		os.Exit(2)
	}
	if *list {
		fmt.Printf("%s variants: %s\n", app.Name, strings.Join(app.Variants, ", "))
		return
	}
	v := app.Variants[len(app.Variants)-1]
	if *variant != "" {
		v = *variant
	}
	found := false
	for _, name := range app.Variants {
		if name == v {
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "coolsim: app %s has no variant %q (have: %s)\n", app.Name, v, strings.Join(app.Variants, ", "))
		os.Exit(2)
	}

	ser, err := app.RunSerial(*size)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolsim: serial reference: %v\n", err)
		os.Exit(1)
	}
	res, err := app.Run(*procs, v, *size)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coolsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s/%s P=%d: %d cycles, speedup %.2f over serial (%d cycles)\n",
		app.Name, v, *procs, res.Cycles, float64(ser.Cycles)/float64(res.Cycles), ser.Cycles)
	if *verbose {
		fmt.Println(res.Report)
		fmt.Printf("verify: %s\n", res.Verify)
	}
}
