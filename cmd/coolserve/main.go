// Command coolserve runs the COOL serving layer: a pool of warm native
// runtimes behind an HTTP/JSON job API. Jobs name a catalog app and a
// size preset; routing keeps jobs with the same affinity key on the
// runtime that last served that key, and admission control sheds load
// before it ties up a queue slot.
//
// Quickstart:
//
//	coolserve -procs 8 -runtimes 4 &
//	curl -s -X POST localhost:8080/jobs \
//	    -d '{"app":"gauss","size":"small","key":"tenant1/gauss"}'
//	curl -s localhost:8080/jobs/job-1
//	curl -s localhost:8080/report
//
// SIGTERM (or SIGINT) drains: admissions stop, queued jobs finish,
// then the process exits — no job is dropped mid-run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/coolrts/cool/internal/apps"
	"github.com/coolrts/cool/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		procs    = flag.Int("procs", 8, "processors per runtime")
		runtimes = flag.Int("runtimes", 4, "warm runtimes in the pool")
		policy   = flag.String("policy", "space-affinity",
			fmt.Sprintf("routing policy: %s", strings.Join(serve.RouterNames(), ", ")))
		admission = flag.String("admission", "always",
			fmt.Sprintf("admission policy: %s", strings.Join(serve.AdmissionNames(), ", ")))
		rate     = flag.Float64("admission-rate", 100, "token-bucket: sustained jobs/sec")
		burst    = flag.Float64("admission-burst", 50, "token-bucket: burst capacity")
		maxDepth = flag.Int("admission-max-depth", 64, "reject-overloaded: per-runtime depth ceiling")
		resident = flag.Int("resident-spaces", 4, "spaces whose prepared state each runtime keeps resident (-1 disables)")
	)
	flag.Parse()

	router, err := serve.NewRouter(*policy, *procs)
	if err != nil {
		log.Fatal(err)
	}
	admit, err := serve.NewAdmission(*admission, serve.AdmissionConfig{
		Rate: *rate, Burst: *burst, MaxDepth: *maxDepth,
	})
	if err != nil {
		log.Fatal(err)
	}

	svc, err := serve.NewService(serve.Config{
		Runtimes:       *runtimes,
		Procs:          *procs,
		Router:         router,
		Admission:      admit,
		ResidentSpaces: *resident,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: serve.Handler(svc)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("coolserve: %d warm runtimes x %d procs, router=%s admission=%s, listening on %s, apps: %s",
		*runtimes, *procs, router.Name(), admit.Name(), *addr, strings.Join(apps.CatalogNames(), ", "))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("coolserve: %v — draining (queued jobs will finish)", sig)
	case err := <-errc:
		log.Fatalf("coolserve: server: %v", err)
	}

	// Stop taking HTTP requests, then drain the pool to quiescence.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("coolserve: http shutdown: %v", err)
	}
	svc.Drain()
	rep := svc.Report()
	var done int64
	for _, e := range rep.Runtimes {
		done += e.Completed
	}
	log.Printf("coolserve: drained: %d submitted, %d completed, %d rejected", rep.Submitted, done, rep.Rejected)
}
