package cool

import (
	"fmt"

	"github.com/coolrts/cool/internal/fault"
	"github.com/coolrts/cool/internal/sim"
)

// FaultPlan is a deterministic schedule of fault events applied to a
// run: processor slowdowns, stalls, permanent failures, memory-module
// degradation, and injected task panics. Every event is pinned to
// simulated time, so a run with the same Config (seed) and the same
// plan replays cycle for cycle — fault experiments are reproducible.
// The builder methods append events and return the plan for chaining:
//
//	cfg.Faults = cool.NewFaultPlan().
//		SlowProcessor(3, 0, 8, 0).   // P3 is an 8x straggler from t=0
//		FailProcessor(5, 200_000)    // P5 dies at cycle 200k
type FaultPlan struct {
	plan fault.Plan
}

// NewFaultPlan returns an empty fault plan.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// SlowProcessor multiplies every cycle processor proc executes by
// factor (>= 2), starting at simulated time at and lasting duration
// cycles (0 = rest of the run).
func (p *FaultPlan) SlowProcessor(proc int, at, factor, duration int64) *FaultPlan {
	p.plan.Slow(proc, at, factor, duration)
	return p
}

// StallProcessor freezes processor proc for cycles cycles at time at.
func (p *FaultPlan) StallProcessor(proc int, at, cycles int64) *FaultPlan {
	p.plan.Stall(proc, at, cycles)
	return p
}

// FailProcessor retires processor proc permanently at time at: its
// queued tasks are redistributed to surviving servers and it never
// dispatches again. At least one processor must survive the plan.
func (p *FaultPlan) FailProcessor(proc int, at int64) *FaultPlan {
	p.plan.Fail(proc, at)
	return p
}

// DegradeMemory multiplies cluster's memory-module service latency and
// occupancy by factor (>= 2) from time at onward.
func (p *FaultPlan) DegradeMemory(cluster int, at, factor int64) *FaultPlan {
	p.plan.DegradeMemory(cluster, at, factor)
	return p
}

// PanicTask makes the nth task spawned with the given name (0-based
// creation order) panic when it first runs; Run then returns a
// *TaskPanicError.
func (p *FaultPlan) PanicTask(name string, nth int) *FaultPlan {
	p.plan.PanicTask(name, nth)
	return p
}

// Len returns the number of events in the plan.
func (p *FaultPlan) Len() int { return len(p.plan.Events) }

// RandomFaultPlan builds a reproducible plan of n non-panic fault
// events (slowdowns, stalls, memory degradation, and at most procs-1
// permanent failures) for stress testing: the same seed always yields
// the same plan.
func RandomFaultPlan(seed int64, procs, clusters, n int) *FaultPlan {
	return &FaultPlan{plan: *fault.Random(seed, procs, clusters, n)}
}

// applyFaults validates the plan against the machine and arms every
// event on the engine's event heap before the run starts.
func (rt *Runtime) applyFaults(p *FaultPlan) error {
	if err := p.plan.Validate(rt.cfg.Processors, rt.cfg.Clusters()); err != nil {
		return fmt.Errorf("cool: invalid Config.Faults: %w", err)
	}
	for _, ev := range p.plan.Events {
		ev := ev
		switch ev.Kind {
		case fault.Slowdown:
			proc := rt.eng.Procs[ev.Proc]
			rt.eng.At(ev.At, func() {
				rt.eng.SlowProc(proc, ev.Factor, ev.Cycles)
				rt.sched.NoteFault(rt.eng.Now(), ev.Proc, "slowdown", ev.Factor)
			})
		case fault.Stall:
			proc := rt.eng.Procs[ev.Proc]
			rt.eng.At(ev.At, func() {
				rt.eng.StallProc(proc, ev.Cycles)
				rt.sched.NoteFault(rt.eng.Now(), ev.Proc, "stall", ev.Cycles)
			})
		case fault.Fail:
			proc := rt.eng.Procs[ev.Proc]
			rt.eng.At(ev.At, func() {
				rt.eng.FailProc(proc) // fail handler redistributes queues
			})
		case fault.MemDegrade:
			rt.eng.At(ev.At, func() {
				rt.caches.DegradeMemory(ev.Cluster, ev.Factor)
				rt.sched.NoteFault(rt.eng.Now(), ev.Cluster*rt.cfg.ClusterSize, "memdegrade", ev.Factor)
			})
		case fault.TaskPanic:
			rt.eng.InjectTaskPanic(ev.Task, ev.Nth)
		}
	}
	rt.eng.SetFailHandler(func(p *sim.Proc, running *sim.Task, now int64) {
		rt.sched.FailServer(p.ID, running, now)
	})
	return nil
}
