package cool

import (
	"fmt"
	"strings"

	"github.com/coolrts/cool/internal/fault"
	"github.com/coolrts/cool/internal/sim"
)

// FaultPlan is a deterministic schedule of fault events applied to a
// run: processor slowdowns, stalls, permanent failures, memory-module
// degradation, and injected task panics. On the simulator every event
// is pinned to simulated time, so a run with the same Config (seed) and
// the same plan replays cycle for cycle — fault experiments are
// reproducible. On the native backend the same plan applies with every
// time and duration read as wall-clock nanoseconds (the injection is
// deterministic; the interleaving it perturbs is not), and
// DegradeMemory events are ignored because the memory system is the
// host's. The builder methods append events and return the plan for
// chaining:
//
//	cfg.Faults = cool.NewFaultPlan().
//		SlowProcessor(3, 0, 8, 0).   // P3 is an 8x straggler from t=0
//		FailProcessor(5, 200_000)    // P5 dies at cycle 200k
type FaultPlan struct {
	plan fault.Plan
}

// NewFaultPlan returns an empty fault plan.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// SlowProcessor multiplies every cycle processor proc executes by
// factor (>= 2), starting at simulated time at and lasting duration
// cycles (0 = rest of the run).
func (p *FaultPlan) SlowProcessor(proc int, at, factor, duration int64) *FaultPlan {
	p.plan.Slow(proc, at, factor, duration)
	return p
}

// StallProcessor freezes processor proc for cycles cycles at time at.
func (p *FaultPlan) StallProcessor(proc int, at, cycles int64) *FaultPlan {
	p.plan.Stall(proc, at, cycles)
	return p
}

// FailProcessor retires processor proc permanently at time at: its
// queued tasks are redistributed to surviving servers and it never
// dispatches again. At least one processor must survive the plan.
func (p *FaultPlan) FailProcessor(proc int, at int64) *FaultPlan {
	p.plan.Fail(proc, at)
	return p
}

// DegradeMemory multiplies cluster's memory-module service latency and
// occupancy by factor (>= 2) from time at onward.
func (p *FaultPlan) DegradeMemory(cluster int, at, factor int64) *FaultPlan {
	p.plan.DegradeMemory(cluster, at, factor)
	return p
}

// PanicTask makes the nth task spawned with the given name (0-based
// creation order) panic when it first runs; Run then returns a
// *TaskPanicError.
func (p *FaultPlan) PanicTask(name string, nth int) *FaultPlan {
	p.plan.PanicTask(name, nth)
	return p
}

// FailTask aborts one launch attempt of the nth task spawned with the
// given name (0-based creation order) — a transient failure, struck
// before the task body runs. Stacking the same event fails successive
// attempts. With Config.Retry the task is re-placed and retried;
// without, Run returns a *TaskAbortError.
func (p *FaultPlan) FailTask(name string, nth int) *FaultPlan {
	p.plan.FailTask(name, nth)
	return p
}

// FlakyProcessor opens a transient-failure window on processor proc:
// every fresh task launch attempted there during [at, at+cycles)
// aborts. Started tasks (continuations) are unaffected.
func (p *FaultPlan) FlakyProcessor(proc int, at, cycles int64) *FaultPlan {
	p.plan.Flaky(proc, at, cycles)
	return p
}

// AddWorker grows the worker pool by one at time at (native backend
// with Config.MaxProcessors headroom; best-effort when the capacity is
// exhausted). The simulator rejects the event — the single-threaded
// engine has no pool to grow.
func (p *FaultPlan) AddWorker(at int64) *FaultPlan {
	p.plan.AddWorkerAt(at)
	return p
}

// Drain requests a planned retirement of processor proc at time at:
// unlike FailProcessor's kill it stops inserts, finishes the running
// task, and re-homes queued work affinity-preserving. Native backend
// only; a processor may be retired (drained or failed) at most once,
// and at least one processor must survive the plan.
func (p *FaultPlan) Drain(proc int, at int64) *FaultPlan {
	p.plan.Drain(proc, at)
	return p
}

// Len returns the number of events in the plan.
func (p *FaultPlan) Len() int { return len(p.plan.Events) }

// WithoutEvent returns a copy of the plan with event i removed — the
// primitive the chaos driver's shrinker uses to minimize a failing
// plan one event at a time.
func (p *FaultPlan) WithoutEvent(i int) *FaultPlan {
	q := &FaultPlan{}
	q.plan.Events = append(q.plan.Events, p.plan.Events[:i]...)
	q.plan.Events = append(q.plan.Events, p.plan.Events[i+1:]...)
	return q
}

// BuilderString renders the plan as the chain of builder calls that
// reconstructs it — the copy-pasteable repro the chaos driver prints
// for a shrunk failing plan.
func (p *FaultPlan) BuilderString() string {
	var b strings.Builder
	b.WriteString("cool.NewFaultPlan()")
	for _, ev := range p.plan.Events {
		b.WriteString(".\n\t")
		switch ev.Kind {
		case fault.Slowdown:
			fmt.Fprintf(&b, "SlowProcessor(%d, %d, %d, %d)", ev.Proc, ev.At, ev.Factor, ev.Cycles)
		case fault.Stall:
			fmt.Fprintf(&b, "StallProcessor(%d, %d, %d)", ev.Proc, ev.At, ev.Cycles)
		case fault.Fail:
			fmt.Fprintf(&b, "FailProcessor(%d, %d)", ev.Proc, ev.At)
		case fault.MemDegrade:
			fmt.Fprintf(&b, "DegradeMemory(%d, %d, %d)", ev.Cluster, ev.At, ev.Factor)
		case fault.TaskPanic:
			fmt.Fprintf(&b, "PanicTask(%q, %d)", ev.Task, ev.Nth)
		case fault.TaskFail:
			fmt.Fprintf(&b, "FailTask(%q, %d)", ev.Task, ev.Nth)
		case fault.Flaky:
			fmt.Fprintf(&b, "FlakyProcessor(%d, %d, %d)", ev.Proc, ev.At, ev.Cycles)
		case fault.AddWorker:
			fmt.Fprintf(&b, "AddWorker(%d)", ev.At)
		case fault.Drain:
			fmt.Fprintf(&b, "Drain(%d, %d)", ev.Proc, ev.At)
		default:
			fmt.Fprintf(&b, "/* unknown event %v */", ev)
		}
	}
	return b.String()
}

// RandomFaultPlan builds a reproducible plan of n non-panic fault
// events (slowdowns, stalls, memory degradation, and at most procs-1
// permanent failures) for stress testing: the same seed always yields
// the same plan.
func RandomFaultPlan(seed int64, procs, clusters, n int) *FaultPlan {
	return &FaultPlan{plan: *fault.Random(seed, procs, clusters, n)}
}

// RandomChaosPlan builds a reproducible plan of n chaos events drawn
// from the full fault vocabulary — slowdowns, stalls, memory
// degradation, permanent failures (at most half the processors), flaky
// windows, and transient FailTask events against the given task names.
// The same seed always yields the same, Validate-clean plan; it is the
// generator behind the chaos campaign driver (coolbench -chaos).
func RandomChaosPlan(seed int64, procs, clusters, n int, tasks []string) *FaultPlan {
	return &FaultPlan{plan: *fault.RandomChaos(seed, procs, clusters, n, tasks)}
}

// RandomChaosChurnPlan extends RandomChaosPlan's vocabulary with pool
// churn — AddWorker and Drain events — for elastic native campaigns.
// The same seed always yields the same, Validate-clean plan.
func RandomChaosChurnPlan(seed int64, procs, clusters, n int, tasks []string) *FaultPlan {
	return &FaultPlan{plan: *fault.RandomChaosChurn(seed, procs, clusters, n, tasks)}
}

// ChurnAdds returns the number of AddWorker events in the plan — the
// headroom a runtime config must reserve (MaxProcessors) for every add
// to succeed.
func (p *FaultPlan) ChurnAdds() int {
	n := 0
	for _, ev := range p.plan.Events {
		if ev.Kind == fault.AddWorker {
			n++
		}
	}
	return n
}

// applyFaults validates the plan against the machine and arms every
// event on the engine's event heap before the run starts.
func (rt *Runtime) applyFaults(p *FaultPlan) error {
	if err := p.plan.Validate(rt.cfg.Processors, rt.cfg.Clusters()); err != nil {
		return fmt.Errorf("cool: invalid Config.Faults: %w", err)
	}
	for _, ev := range p.plan.Events {
		ev := ev
		switch ev.Kind {
		case fault.Slowdown:
			proc := rt.eng.Procs[ev.Proc]
			rt.eng.At(ev.At, func() {
				rt.eng.SlowProc(proc, ev.Factor, ev.Cycles)
				rt.sched.NoteFault(rt.eng.Now(), ev.Proc, "slowdown", ev.Factor)
			})
		case fault.Stall:
			proc := rt.eng.Procs[ev.Proc]
			rt.eng.At(ev.At, func() {
				rt.eng.StallProc(proc, ev.Cycles)
				rt.sched.NoteFault(rt.eng.Now(), ev.Proc, "stall", ev.Cycles)
			})
		case fault.Fail:
			proc := rt.eng.Procs[ev.Proc]
			rt.eng.At(ev.At, func() {
				rt.eng.FailProc(proc) // fail handler redistributes queues
			})
		case fault.MemDegrade:
			rt.eng.At(ev.At, func() {
				rt.caches.DegradeMemory(ev.Cluster, ev.Factor)
				rt.sched.NoteFault(rt.eng.Now(), ev.Cluster*rt.cfg.ClusterSize, "memdegrade", ev.Factor)
			})
		case fault.AddWorker, fault.Drain:
			return fmt.Errorf("cool: invalid Config.Faults: %s events require Backend: BackendNative", ev.Kind)
		case fault.TaskPanic:
			rt.eng.InjectTaskPanic(ev.Task, ev.Nth)
		case fault.TaskFail:
			rt.eng.InjectTaskAbort(ev.Task, ev.Nth)
		case fault.Flaky:
			rt.eng.AddFlakyWindow(ev.Proc, ev.At, ev.At+ev.Cycles)
			rt.eng.At(ev.At, func() {
				rt.sched.NoteFault(rt.eng.Now(), ev.Proc, "flaky", ev.Cycles)
			})
		}
	}
	rt.eng.SetFailHandler(func(p *sim.Proc, running *sim.Task, now int64) {
		rt.sched.FailServer(p.ID, running, now)
	})
	return nil
}
