// Package cool is a Go reimplementation of the COOL parallel runtime from
// "Data Locality and Load Balancing in COOL" (Chandra, Gupta, Hennessy,
// PPoPP 1993), running on a simulated DASH-style shared-memory
// multiprocessor.
//
// Programs dynamically create lightweight tasks and attach optional
// affinity hints describing the objects each task references. The runtime
// uses the hints to schedule tasks close — in the simulated memory
// hierarchy — to their objects: task affinity groups tasks for
// back-to-back cache reuse, object affinity collocates a task with the
// cluster memory that homes its object, and processor affinity places a
// task directly. Objects can be placed at allocation time and migrated
// between cluster memories. Hints never change program semantics; they
// only change where and when tasks run.
//
// Because the machine is simulated, speedups and cache behaviour are
// measured in deterministic simulated cycles, reproducing the paper's
// methodology on any host.
//
// A minimal program:
//
//	rt, err := cool.NewRuntime(cool.Config{Processors: 8})
//	data := rt.NewF64(1<<16, 0)
//	err = rt.Run(func(ctx *cool.Ctx) {
//		ctx.WaitFor(func() {
//			for c := 0; c < 8; c++ {
//				part := data.Slice(c*8192, (c+1)*8192)
//				ctx.Spawn("sum", func(ctx *cool.Ctx) {
//					for i := 0; i < part.Len(); i++ {
//						_ = ctx.ReadF64(part, i)
//						ctx.Compute(1)
//					}
//				}, cool.ObjectAffinity(part.Base))
//			}
//		})
//	})
package cool

import (
	"fmt"
	"sync"

	"github.com/coolrts/cool/internal/adapt"
	"github.com/coolrts/cool/internal/cache"
	"github.com/coolrts/cool/internal/core"
	"github.com/coolrts/cool/internal/fault"
	"github.com/coolrts/cool/internal/machine"
	"github.com/coolrts/cool/internal/memsim"
	"github.com/coolrts/cool/internal/native"
	"github.com/coolrts/cool/internal/perfmon"
	"github.com/coolrts/cool/internal/sim"
)

// Backend selects the execution engine a Runtime uses.
type Backend int

const (
	// BackendSim executes on the deterministic discrete-event simulator:
	// time is simulated DASH cycles, the memory hierarchy is modelled,
	// and runs are bit-reproducible. The default.
	BackendSim Backend = iota
	// BackendNative executes on real goroutines, one worker per
	// processor, with the same affinity-queue scheduler. Time is
	// wall-clock nanoseconds; the memory system is the host's, so cache
	// counters and cycle charges are not modelled. The robustness stack
	// works on both backends: Faults, Retry, Deadline, and the
	// no-progress watchdog run natively with every cycle quantity read
	// as wall-clock nanoseconds (DegradeMemory events are ignored — the
	// memory system is real). Only the options that require the
	// simulated machine itself (Machine, CycleLimit, Quantum) are
	// rejected with *UnsupportedOnNativeError.
	BackendNative
)

func (b Backend) String() string {
	switch b {
	case BackendSim:
		return "sim"
	case BackendNative:
		return "native"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// SchedPolicy exposes the scheduling knobs studied in the paper. The zero
// value is the runtime's default policy (hints honoured, 64 task-affinity
// queues per server, whole-set stealing, cluster-first victim order,
// object-bound tasks stolen only as a last resort).
type SchedPolicy struct {
	// IgnoreHints reproduces the paper's "Base" program versions:
	// round-robin task placement with no locality.
	IgnoreHints bool
	// QueueArraySize overrides the number of task-affinity queues per
	// server (0 means the default of 64).
	QueueArraySize int
	// ClusterStealingOnly restricts stealing to the thief's cluster
	// (the paper's Panel Cholesky cluster-stealing experiment).
	ClusterStealingOnly bool
	// NoClusterStealFirst disables preferring same-cluster victims.
	NoClusterStealFirst bool
	// NoSetStealing disables stealing whole task-affinity sets.
	NoSetStealing bool
	// NoObjectBoundStealing forbids stealing object-affinity tasks
	// entirely (locality over load balance).
	NoObjectBoundStealing bool
	// NoStealing disables work stealing entirely (ablation).
	NoStealing bool
	// PlaceSetsLeastLoaded places new task-affinity sets on the
	// least-loaded server instead of round-robin (§4.2).
	PlaceSetsLeastLoaded bool
	// MutexQueue (native backend only) selects the pre-deque scheduler:
	// per-worker queues fully under the worker's mutex, spawns inserted
	// and woken one at a time. It exists as the in-tree A/B baseline
	// against the default lock-free Chase-Lev deque scheduler (coolbench
	// -bench-native-queue=mutex); the simulator has no such split and
	// ignores the flag.
	MutexQueue bool
}

// Config describes the simulated machine and runtime policy.
type Config struct {
	// Processors is the number of server processes (and simulated
	// processors). Required.
	Processors int
	// ClusterSize is the number of processors sharing one local memory
	// (0 means DASH's 4).
	ClusterSize int
	// Sched selects the scheduling policy.
	Sched SchedPolicy
	// Quantum overrides the interleaving quantum in cycles (0 = default).
	Quantum int64
	// Seed drives all randomized decisions (0 = default seed 1).
	Seed int64
	// TraceCapacity, when positive, records up to that many scheduler
	// events (see Runtime.TraceEvents, TraceDump, TraceTimeline).
	TraceCapacity int
	// Machine, when non-nil, overrides the full machine description
	// (latencies, cache geometry); Processors/ClusterSize are ignored.
	Machine *machine.Config
	// Faults, when non-nil, is the deterministic fault-injection plan
	// applied to the run (see FaultPlan). Invalid plans are rejected by
	// NewRuntime. On the native backend event times and durations are
	// read as wall-clock nanoseconds and DegradeMemory events are
	// ignored.
	Faults *FaultPlan
	// CycleLimit, when positive, arms a no-progress watchdog: if
	// simulated time passes it with tasks still outstanding, Run stops
	// and returns a *NoProgressError carrying a queue/clock snapshot
	// instead of simulating (or hanging) forever.
	CycleLimit int64
	// Retry, when non-nil, enables transient-failure retries: task
	// launches aborted by FailTask events or FlakyProcessor windows are
	// re-placed on a different server and retried with exponential
	// backoff (see RetryPolicy, including the panic interaction). When
	// nil, the first transient abort fails the run. On the native
	// backend backoffs are read as wall-clock nanoseconds.
	Retry *RetryPolicy
	// Deadline, when positive, bounds the run to that many simulated
	// cycles — wall-clock nanoseconds on the native backend. An
	// over-budget run stops and returns a *DeadlineExceededError
	// carrying a progress snapshot (per-server queue depths, and on the
	// simulator the blocked tasks and what they wait on).
	Deadline int64
	// Backend selects the execution engine (default: the simulator).
	Backend Backend
	// MaxProcessors (native backend only), when positive, reserves
	// spare worker capacity in [Processors, 64]: the pool starts at
	// Processors workers and can grow to MaxProcessors mid-run via
	// Runtime.AddWorkers or the autoscaler, and shrink back via
	// Runtime.Retire. Zero keeps the pool fixed.
	MaxProcessors int
	// Shed (native backend only), when non-nil, arms the SLO layer:
	// WithPriority/WithDeadline spawn options are enforced at dispatch,
	// and overload sheds the lowest-priority tasks first (see
	// ShedPolicy).
	Shed *ShedPolicy
	// Autoscale (native backend only), when non-nil, grows and shrinks
	// the pool between watermarks each control epoch (see
	// AutoscalePolicy). Requires MaxProcessors headroom.
	Autoscale *AutoscalePolicy
	// Adapt, when non-nil, arms the adaptive-affinity controller on
	// either backend: each epoch it reads the machine-wide counter
	// deltas and adjusts cluster-only stealing, wake fanout, steal
	// backoff, and the shed floor, recording every change as a
	// decision trace (see AdaptPolicy, Report.Decisions).
	Adapt *AdaptPolicy
}

// Runtime is one simulated COOL program execution environment. Allocate
// objects, then call Run exactly once.
type Runtime struct {
	cfg     machine.Config
	pub     Config      // the public config this runtime was built from (Reset rebuilds from it)
	pol     core.Policy // resolved scheduling policy (Reset re-applies it)
	backend Backend
	eng     *sim.Engine // sim backend only
	space   *memsim.Space
	caches  *cache.System   // sim backend only
	sched   *core.Scheduler // sim backend only
	nat     *native.Runtime // native backend only
	mon     *perfmon.Monitor
	// adaptCtl is the sim backend's adaptive controller (nil unless
	// Config.Adapt is set; the native backend owns its own instance).
	adaptCtl *adapt.Controller
	ran      bool
	tdFree   []*core.TaskDesc // recycled task descriptors (see ctx.go)

	// spaceMu guards space on the native backend, where allocation,
	// migration, and home lookups run concurrently. The simulator is
	// single-threaded and never contends, but locking is cheap relative
	// to allocation so it is taken unconditionally.
	spaceMu sync.RWMutex

	// Job-level SLO defaults (SetJobSLO): the priority class and absolute
	// deadline applied to spawns that carry no WithPriority/WithDeadline
	// option of their own. Set between runs only (the serving layer tags
	// each job before Run); read concurrently by spawning workers.
	jobPrio     int8
	jobDeadline int64

	// setupErr records the first invalid pre-Run operation (e.g. a
	// non-positive allocation size); Run reports it instead of running.
	setupErr error
}

// setupError records a sticky setup-phase error (first one wins).
func (rt *Runtime) setupError(format string, args ...any) {
	if rt.setupErr == nil {
		rt.setupErr = fmt.Errorf(format, args...)
	}
}

// NewRuntime builds a runtime for the given configuration.
func NewRuntime(c Config) (*Runtime, error) {
	if c.Backend == BackendNative {
		if err := nativeUnsupported(c); err != nil {
			return nil, err
		}
	} else if c.Backend != BackendSim {
		return nil, fmt.Errorf("cool: unknown backend %d", int(c.Backend))
	} else {
		// The elastic pool and the shedding layer schedule real worker
		// goroutines; the single-threaded simulator has neither.
		switch {
		case c.MaxProcessors > 0:
			return nil, fmt.Errorf("cool: Config.MaxProcessors requires Backend: BackendNative")
		case c.Shed != nil:
			return nil, fmt.Errorf("cool: Config.Shed requires Backend: BackendNative")
		case c.Autoscale != nil:
			return nil, fmt.Errorf("cool: Config.Autoscale requires Backend: BackendNative")
		}
	}
	var mc machine.Config
	if c.Machine != nil {
		mc = *c.Machine
	} else {
		if c.Processors <= 0 {
			return nil, fmt.Errorf("cool: Config.Processors must be positive")
		}
		if c.ClusterSize < 0 {
			return nil, fmt.Errorf("cool: Config.ClusterSize must not be negative")
		}
		if c.Quantum < 0 {
			return nil, fmt.Errorf("cool: Config.Quantum must not be negative")
		}
		mc = machine.DASH(c.Processors)
		if c.ClusterSize > 0 {
			mc.ClusterSize = c.ClusterSize
		}
		if c.Quantum > 0 {
			mc.Quantum = c.Quantum
		}
		if c.Seed != 0 {
			mc.Seed = c.Seed
		}
	}
	if c.Sched.QueueArraySize < 0 {
		return nil, fmt.Errorf("cool: Config.Sched.QueueArraySize must not be negative")
	}
	if c.TraceCapacity < 0 {
		return nil, fmt.Errorf("cool: Config.TraceCapacity must not be negative")
	}
	if c.CycleLimit < 0 {
		return nil, fmt.Errorf("cool: Config.CycleLimit must not be negative")
	}
	if c.Deadline < 0 {
		return nil, fmt.Errorf("cool: Config.Deadline must not be negative")
	}
	if c.Adapt != nil {
		if err := c.Adapt.validate(); err != nil {
			return nil, err
		}
	}
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	pol := core.DefaultPolicy()
	pol.IgnoreHints = c.Sched.IgnoreHints
	if c.Sched.QueueArraySize > 0 {
		pol.QueueArraySize = c.Sched.QueueArraySize
	}
	pol.ClusterStealingOnly = c.Sched.ClusterStealingOnly
	pol.ClusterStealFirst = !c.Sched.NoClusterStealFirst
	pol.StealWholeSets = !c.Sched.NoSetStealing
	pol.StealObjectBound = !c.Sched.NoObjectBoundStealing
	pol.DisableStealing = c.Sched.NoStealing
	pol.PlaceSetsLeastLoaded = c.Sched.PlaceSetsLeastLoaded

	if c.Backend == BackendNative {
		rt, err := newNativeRuntime(c, mc, pol)
		if err == nil && captureHook != nil {
			captureHook(rt)
		}
		return rt, err
	}
	rt := &Runtime{cfg: mc, pub: c, pol: pol}
	if err := rt.initSim(); err != nil {
		return nil, err
	}
	if captureHook != nil {
		captureHook(rt)
	}
	return rt, nil
}

// initSim builds (or, through Reset, rebuilds) the simulator engine
// stack from the stored configuration. The simulated pieces are cheap
// relative to a run, so warm reuse simply reconstructs them; only the
// recycled task descriptors survive across resets.
func (rt *Runtime) initSim() error {
	c, mc := rt.pub, rt.cfg
	rt.eng = sim.New(mc.Processors, mc.Quantum, mc.Seed)
	rt.space = memsim.New(mc)
	rt.mon = perfmon.New(mc.Processors)
	rt.caches = cache.New(mc, rt.space, rt.mon)
	rt.sched = core.NewScheduler(mc, rt.pol, rt.eng, rt.space, rt.mon)
	if c.TraceCapacity > 0 {
		rt.enableTracing(c.TraceCapacity)
	}
	rt.eng.SetSnapshot(rt.sched.Snapshot)
	if c.CycleLimit > 0 {
		rt.eng.SetCycleLimit(c.CycleLimit)
	}
	if c.Deadline > 0 {
		rt.eng.SetDeadline(c.Deadline)
	}
	if c.Retry != nil {
		pol, err := c.Retry.withDefaults()
		if err != nil {
			return err
		}
		rt.installRetry(pol)
	}
	if c.Faults != nil {
		if err := rt.applyFaults(c.Faults); err != nil {
			return err
		}
	}
	if c.Adapt != nil {
		rt.installAdaptSim(c.Adapt)
	}
	return nil
}

// captureHook, when set, observes every Runtime NewRuntime constructs.
// Tooling that drives applications through a uniform interface hiding
// the Runtime (the apps registry) uses it to recover the runtime for
// post-run inspection — see CaptureRuntime.
var captureHook func(*Runtime)

// CaptureRuntime registers f to observe every subsequently constructed
// Runtime and returns a restore function reinstating the previous hook.
// The hook is package-global and not synchronized: it is for
// single-threaded drivers (the trace exporter), not for library use.
func CaptureRuntime(f func(*Runtime)) (restore func()) {
	prev := captureHook
	captureHook = f
	return func() { captureHook = prev }
}

// nativeUnsupported rejects configuration options whose semantics
// require the simulated machine itself. Faults, Retry, and Deadline
// are NOT in this list: they run natively with cycle quantities read
// as wall-clock nanoseconds (see newNativeRuntime).
func nativeUnsupported(c Config) error {
	switch {
	case c.Machine != nil:
		return &UnsupportedOnNativeError{Option: "Machine"}
	case c.CycleLimit > 0:
		return &UnsupportedOnNativeError{Option: "CycleLimit"}
	case c.Quantum > 0:
		return &UnsupportedOnNativeError{Option: "Quantum"}
	}
	return nil
}

// defaultNativeNoProgressNS is the no-progress watchdog window armed on
// native runs that inject faults or retries: if no task completes for
// this long while work is outstanding, Run stops with a
// *NoProgressError instead of hanging. Two seconds of zero completions
// on a real machine is orders of magnitude beyond any legitimate stall
// the fault vocabulary can produce (stalls and backoffs are bounded in
// the low milliseconds).
const defaultNativeNoProgressNS = 2_000_000_000

// newNativeRuntime builds a runtime executing on the goroutine backend.
// The DASH machine description supplies only the address-space geometry
// (page size, cluster topology) used for object homes and victim order;
// latencies and caches are unused. Config.Seed is accepted and ignored —
// native runs are inherently timing-dependent.
//
// The robustness options map onto wall-clock time: every quantity a
// fault plan, retry policy, or deadline expresses in simulated cycles
// is read as nanoseconds. DegradeMemory events are ignored (the memory
// system is the host's). When faults or retries are armed, a default
// no-progress watchdog guards against hangs.
func newNativeRuntime(c Config, mc machine.Config, pol core.Policy) (*Runtime, error) {
	var retry native.RetryConfig
	if c.Retry != nil {
		p, err := c.Retry.withDefaults()
		if err != nil {
			return nil, err
		}
		retry = native.RetryConfig{
			MaxAttempts:  p.MaxAttempts,
			BackoffNS:    p.Backoff,
			MaxBackoffNS: p.MaxBackoff,
		}
	}
	var plan *fault.Plan
	if c.Faults != nil {
		if err := c.Faults.plan.Validate(mc.Processors, mc.Clusters()); err != nil {
			return nil, fmt.Errorf("cool: invalid Config.Faults: %w", err)
		}
		plan = &c.Faults.plan
	}
	noProgress := int64(0)
	if c.Faults != nil || c.Retry != nil {
		noProgress = defaultNativeNoProgressNS
	}
	var shed *native.ShedConfig
	if c.Shed != nil {
		shed = &native.ShedConfig{QueueHighWater: c.Shed.QueueHighWater, RetryShed: c.Shed.RetryShed}
	}
	var auto *native.AutoscaleConfig
	if c.Autoscale != nil {
		auto = &native.AutoscaleConfig{
			IntervalNS: c.Autoscale.IntervalNS,
			HighWater:  c.Autoscale.HighWater,
			LowWater:   c.Autoscale.LowWater,
			Min:        c.Autoscale.MinProcs,
			Max:        c.Autoscale.MaxProcs,
			Step:       c.Autoscale.Step,
		}
	}
	var apol *adapt.Policy
	if c.Adapt != nil {
		p := c.Adapt.internal(defaultNativeAdaptEpochNS)
		apol = &p
	}
	np := mc.Processors
	if c.MaxProcessors > np {
		np = c.MaxProcessors // bounds validated by native.New
	}
	rt := &Runtime{cfg: mc, pub: c, pol: pol, backend: BackendNative}
	rt.space = memsim.New(mc)
	rt.mon = perfmon.New(np)
	nat, err := native.New(native.Config{
		Procs:       mc.Processors,
		ClusterSize: mc.ClusterSize,
		PageSize:    int64(mc.PageSize),
		Pol:         pol,
		Home: func(addr int64) int {
			rt.spaceMu.RLock()
			defer rt.spaceMu.RUnlock()
			return rt.space.HomeProc(addr)
		},
		Mon: rt.mon,
		// One adapter shared by every spawn: the user's func value rides
		// through the task record as the payload (an allocation-free
		// interface conversion for func types), replacing the per-spawn
		// wrapper closure the facade used to allocate.
		Invoke: func(nc *native.Ctx, p any) {
			p.(func(*Ctx))(&Ctx{nc: nc, rt: rt})
		},
		// InvokeN is Invoke for SpawnN batches: the shared payload is the
		// user's fn(ctx, i) func value, applied to the member index.
		InvokeN: func(nc *native.Ctx, p any, i int) {
			p.(func(*Ctx, int))(&Ctx{nc: nc, rt: rt}, i)
		},
		MutexQueue:    c.Sched.MutexQueue,
		TraceCapacity: c.TraceCapacity,
		Faults:        plan,
		Retry:         retry,
		DeadlineNS:    c.Deadline,
		NoProgressNS:  noProgress,
		MaxProcs:      c.MaxProcessors,
		Shed:          shed,
		Autoscale:     auto,
		Adapt:         apol,
	})
	if err != nil {
		return nil, err
	}
	rt.nat = nat
	return rt, nil
}

// Backend returns the execution engine this runtime uses.
func (rt *Runtime) Backend() Backend { return rt.backend }

// Processors returns the number of simulated processors.
func (rt *Runtime) Processors() int { return rt.cfg.Processors }

// Clusters returns the number of clusters (memory modules).
func (rt *Runtime) Clusters() int { return rt.cfg.Clusters() }

// MachineConfig returns a copy of the simulated machine description.
func (rt *Runtime) MachineConfig() machine.Config { return rt.cfg }

// Run executes main as the program's root task on processor 0 and
// simulates until every task has completed. Failures come back as typed
// errors: *TaskPanicError when a task panicked, *DeadlockError (with
// the wait-for graph) when tasks blocked forever, *NoProgressError when
// Config.CycleLimit was exceeded, *TaskAbortError when a transient
// launch failure exhausted its retry budget, and *DeadlineExceededError
// when Config.Deadline was exceeded. Run never panics on task or
// configuration faults, and may be called only once.
func (rt *Runtime) Run(main func(*Ctx)) (err error) {
	if rt.ran {
		return fmt.Errorf("cool: Runtime.Run called twice")
	}
	rt.ran = true
	if rt.setupErr != nil {
		return rt.setupErr
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cool: runtime panic: %v", r)
		}
	}()
	if rt.backend == BackendNative {
		return rt.wrapNativeError(rt.nat.Run(func(nc *native.Ctx) {
			main(&Ctx{nc: nc, rt: rt})
		}))
	}
	td := &core.TaskDesc{Class: core.ClassProcessor, Server: 0, Slot: -1}
	t := rt.eng.NewTask("main", 0, func(sc *sim.Ctx) {
		main(&Ctx{sc: sc, rt: rt})
		rt.sched.TraceDone(sc)
	})
	t.Data = td
	td.T = t
	rt.sched.Enqueue(td, 0)
	return rt.wrapRunError(rt.eng.Run())
}

// ElapsedCycles returns the parallel execution time after Run: the
// largest processor clock in simulated cycles on the simulator backend,
// wall-clock nanoseconds on the native backend.
func (rt *Runtime) ElapsedCycles() int64 {
	if rt.backend == BackendNative {
		return rt.nat.ElapsedNanos()
	}
	return rt.eng.MaxClock()
}

// SetSplits returns how often a task-affinity set was enqueued or stolen
// away from its recorded home — an invariant violation under the default
// whole-set-stealing policy, where it must stay zero. Splits are only
// legitimate when set stealing is disabled (Sched.NoSetStealing) and the
// scheduler falls back to taking individual set members.
func (rt *Runtime) SetSplits() int64 {
	if rt.backend == BackendNative {
		return rt.nat.SetSplits()
	}
	return rt.sched.SetSplits()
}
