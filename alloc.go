package cool

// This file provides the object allocation and distribution constructs of
// the paper: placed allocation (the COOL "new" operator with a processor
// argument), migrate(), and home().

import "sync/atomic"

// F64 is an array of float64 living in simulated shared memory. Data
// holds the real values; Base is the simulated address of element 0.
type F64 struct {
	Base int64
	Data []float64
}

// Addr returns the simulated address of element i.
func (a *F64) Addr(i int) int64 { return a.Base + int64(i)*8 }

// Len returns the number of elements.
func (a *F64) Len() int { return len(a.Data) }

// Slice returns a view of elements [lo, hi) sharing the same storage and
// address range.
func (a *F64) Slice(lo, hi int) *F64 {
	return &F64{Base: a.Base + int64(lo)*8, Data: a.Data[lo:hi]}
}

// I64 is an array of int64 in simulated shared memory.
type I64 struct {
	Base int64
	Data []int64
}

// Addr returns the simulated address of element i.
func (a *I64) Addr(i int) int64 { return a.Base + int64(i)*8 }

// Len returns the number of elements.
func (a *I64) Len() int { return len(a.Data) }

// Slice returns a view of elements [lo, hi) sharing the same storage.
func (a *I64) Slice(lo, hi int) *I64 {
	return &I64{Base: a.Base + int64(lo)*8, Data: a.Data[lo:hi]}
}

// Obj is a handle to an untyped simulated object; applications model its
// fields as byte offsets and keep the real state in Go values.
type Obj struct {
	Base int64
	Size int64
}

// procMod maps a COOL "processor number" argument onto a server, modulo
// the number of processors (the paper's convention), so explicit
// placements can never name a processor outside the machine.
func (rt *Runtime) procMod(proc int) int {
	p := proc % rt.cfg.Processors
	if p < 0 {
		p += rt.cfg.Processors
	}
	return p
}

// spaceAlloc, spaceAllocPages, and spaceMigrate wrap the address-space
// operations in the runtime's space lock. The simulator never contends,
// but native tasks allocate and look up homes concurrently, and the
// space's page tables are not thread-safe.
func (rt *Runtime) spaceAlloc(size int64, proc int) int64 {
	rt.spaceMu.Lock()
	defer rt.spaceMu.Unlock()
	return rt.space.Alloc(size, proc)
}

func (rt *Runtime) spaceAllocPages(size int64, proc int) int64 {
	rt.spaceMu.Lock()
	defer rt.spaceMu.Unlock()
	return rt.space.AllocPages(size, proc)
}

func (rt *Runtime) spaceMigrate(addr, size int64, proc int) int {
	rt.spaceMu.Lock()
	defer rt.spaceMu.Unlock()
	return rt.space.Migrate(addr, size, proc)
}

// allocSize validates a requested allocation size. A non-positive size
// records a sticky setup error — reported by Run instead of executing —
// and substitutes a minimal valid size so the returned handle stays
// usable in affinity expressions without panicking.
func (rt *Runtime) allocSize(size int64, what string) int64 {
	if size <= 0 {
		rt.setupError("cool: %s: allocation size %d must be positive", what, size)
		return 8
	}
	return size
}

// NewF64 allocates an n-element array homed in the local memory of
// processor proc (modulo the number of processors), like COOL's
// new(proc).
func (rt *Runtime) NewF64(n int, proc int) *F64 {
	return &F64{Base: rt.spaceAlloc(rt.allocSize(int64(n)*8, "NewF64"), rt.procMod(proc)), Data: make([]float64, max(n, 0))}
}

// NewF64Pages allocates a page-aligned array so parts of it can be
// migrated independently.
func (rt *Runtime) NewF64Pages(n int, proc int) *F64 {
	return &F64{Base: rt.spaceAllocPages(rt.allocSize(int64(n)*8, "NewF64Pages"), rt.procMod(proc)), Data: make([]float64, max(n, 0))}
}

// NewI64 allocates an n-element int64 array homed at processor proc.
func (rt *Runtime) NewI64(n int, proc int) *I64 {
	return &I64{Base: rt.spaceAlloc(rt.allocSize(int64(n)*8, "NewI64"), rt.procMod(proc)), Data: make([]int64, max(n, 0))}
}

// NewI64Pages allocates a page-aligned int64 array (independently
// migratable).
func (rt *Runtime) NewI64Pages(n int, proc int) *I64 {
	return &I64{Base: rt.spaceAllocPages(rt.allocSize(int64(n)*8, "NewI64Pages"), rt.procMod(proc)), Data: make([]int64, max(n, 0))}
}

// NewObj allocates a size-byte object homed at processor proc.
func (rt *Runtime) NewObj(size int64, proc int) Obj {
	return Obj{Base: rt.spaceAlloc(rt.allocSize(size, "NewObj"), rt.procMod(proc)), Size: size}
}

// NewObjPages allocates a page-aligned object (independently migratable).
func (rt *Runtime) NewObjPages(size int64, proc int) Obj {
	return Obj{Base: rt.spaceAllocPages(rt.allocSize(size, "NewObjPages"), rt.procMod(proc)), Size: size}
}

// Migrate re-homes the pages spanned by [addr, addr+size) to processor
// proc's local memory without charging simulated time (setup use; inside
// a task prefer Ctx.Migrate).
func (rt *Runtime) Migrate(addr, size int64, proc int) {
	if size <= 0 {
		rt.setupError("cool: Migrate: size %d must be positive", size)
		return
	}
	rt.spaceMigrate(addr, size, rt.procMod(proc))
}

// Home returns the server that the runtime treats as the home processor
// of the object at addr (COOL's home()).
func (rt *Runtime) Home(addr int64) int { return rt.homeServer(addr) }

// NewF64 allocates from the local memory of the requesting processor,
// the COOL default for new.
func (c *Ctx) NewF64(n int) *F64 {
	return &F64{Base: c.rt.spaceAlloc(int64(n)*8, c.ProcID()), Data: make([]float64, n)}
}

// NewF64On allocates homed at an explicit processor, like new(proc).
func (c *Ctx) NewF64On(n int, proc int) *F64 { return c.rt.NewF64(n, proc) }

// NewI64 allocates from the local memory of the requesting processor.
func (c *Ctx) NewI64(n int) *I64 {
	return &I64{Base: c.rt.spaceAlloc(int64(n)*8, c.ProcID()), Data: make([]int64, n)}
}

// NewObj allocates an object in the requesting processor's local memory.
func (c *Ctx) NewObj(size int64) Obj {
	return Obj{Base: c.rt.spaceAlloc(size, c.ProcID()), Size: size}
}

// Migrate moves the object at [addr, addr+size) to processor proc's
// local memory, charging the page-migration cost (DASH migrates whole
// pages; see the paper's footnote 2).
func (c *Ctx) Migrate(addr, size int64, proc int) {
	pages := c.rt.spaceMigrate(addr, size, c.rt.procMod(proc))
	if c.nc != nil {
		return // re-homing still steers future placement; no cycle cost
	}
	c.sc.Charge(int64(pages) * c.rt.cfg.Lat.MigratePage)
}

// Home returns the home processor of the object at addr (COOL's home()).
func (c *Ctx) Home(addr int64) int { return c.rt.homeServer(addr) }

// ReadF64 reads element i of a through the simulated memory hierarchy.
func (c *Ctx) ReadF64(a *F64, i int) float64 {
	c.Access(a.Addr(i), 8, false)
	return a.Data[i]
}

// WriteF64 writes element i of a through the simulated memory hierarchy.
func (c *Ctx) WriteF64(a *F64, i int, v float64) {
	c.Access(a.Addr(i), 8, true)
	a.Data[i] = v
}

// ReadF64Range charges a read of elements [lo, hi) (line-granular) and
// returns the underlying values. Use for streaming loops where per-element
// calls would dominate host time.
func (c *Ctx) ReadF64Range(a *F64, lo, hi int) []float64 {
	if hi > lo {
		c.Access(a.Addr(lo), int64(hi-lo)*8, false)
	}
	return a.Data[lo:hi]
}

// WriteF64Range charges a write of elements [lo, hi) and returns the
// underlying slice for the caller to fill.
func (c *Ctx) WriteF64Range(a *F64, lo, hi int) []float64 {
	if hi > lo {
		c.Access(a.Addr(lo), int64(hi-lo)*8, true)
	}
	return a.Data[lo:hi]
}

// ReadI64 reads element i of a through the simulated memory hierarchy.
func (c *Ctx) ReadI64(a *I64, i int) int64 {
	c.Access(a.Addr(i), 8, false)
	return a.Data[i]
}

// WriteI64 writes element i of a through the simulated memory hierarchy.
func (c *Ctx) WriteI64(a *I64, i int, v int64) {
	c.Access(a.Addr(i), 8, true)
	a.Data[i] = v
}

// Touch charges an access to bytes [off, off+size) of object o.
func (c *Ctx) Touch(o Obj, off, size int64, write bool) {
	c.Access(o.Base+off, size, write)
}

// LoadI64 reads element i of a without charging simulated time, using an
// atomic load on the native backend. Use for shared counters that
// concurrent tasks update through AddI64 (charge the reference
// separately with Access where the model needs it); a plain ReadI64 of
// such an element would be a data race under real parallelism.
func (c *Ctx) LoadI64(a *I64, i int) int64 {
	if c.nc != nil {
		return atomic.LoadInt64(&a.Data[i])
	}
	return a.Data[i]
}

// AddI64 adds delta to element i of a without charging simulated time,
// using an atomic add on the native backend. The simulator's cooperative
// tasks never race, so there it is a plain read-modify-write.
func (c *Ctx) AddI64(a *I64, i int, delta int64) {
	if c.nc != nil {
		atomic.AddInt64(&a.Data[i], delta)
		return
	}
	a.Data[i] += delta
}
