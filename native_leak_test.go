package cool_test

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	cool "github.com/coolrts/cool"
)

// waitNoLeak polls until the process goroutine count settles back to
// (near) the pre-run baseline. Workers and the timekeeper exit
// asynchronously after Run returns, so one immediate sample would
// flake; two seconds without settling means a real leak.
func waitNoLeak(t *testing.T, label string, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		// A small allowance absorbs unrelated runtime goroutines
		// (finalizers, timer wheels) that come and go under test.
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("%s: %d goroutines alive 2s after Run (baseline %d):\n%s",
				label, runtime.NumGoroutine(), base, buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNativeRunLeavesNoGoroutines runs every native Run ending — clean
// finish, deadline stop, task panic, worker retirement under faults —
// and asserts no worker or timekeeper goroutine outlives the call.
func TestNativeRunLeavesNoGoroutines(t *testing.T) {
	scenarios := []struct {
		name    string
		cfg     func() cool.Config
		run     func(*cool.Ctx)
		wantErr func(error) bool
	}{
		{
			name: "clean",
			cfg:  func() cool.Config { return cool.Config{} },
			run: func(ctx *cool.Ctx) {
				ctx.WaitFor(func() {
					for i := 0; i < 64; i++ {
						ctx.Spawn("t", func(*cool.Ctx) {})
					}
				})
			},
			wantErr: func(err error) bool { return err == nil },
		},
		{
			name: "deadline",
			cfg:  func() cool.Config { return cool.Config{Deadline: 300_000} },
			run: func(ctx *cool.Ctx) {
				ctx.WaitFor(func() {
					for i := 0; i < 4; i++ {
						ctx.Spawn("slow", func(*cool.Ctx) {
							time.Sleep(5 * time.Millisecond)
						})
					}
				})
			},
			wantErr: func(err error) bool {
				var de *cool.DeadlineExceededError
				return errors.As(err, &de)
			},
		},
		{
			name: "panic",
			cfg:  func() cool.Config { return cool.Config{} },
			run: func(ctx *cool.Ctx) {
				ctx.WaitFor(func() {
					ctx.Spawn("boom", func(*cool.Ctx) { panic("kaboom") })
				})
			},
			wantErr: func(err error) bool {
				var tp *cool.TaskPanicError
				return errors.As(err, &tp)
			},
		},
		{
			name: "retirement",
			cfg: func() cool.Config {
				return cool.Config{Faults: cool.NewFaultPlan().FailProcessor(1, 200_000)}
			},
			run: func(ctx *cool.Ctx) {
				ctx.WaitFor(func() {
					for i := 0; i < 100; i++ {
						ctx.Spawn("w", func(*cool.Ctx) {
							time.Sleep(20 * time.Microsecond)
						})
					}
				})
			},
			wantErr: func(err error) bool { return err == nil },
		},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			cfg := sc.cfg()
			cfg.Processors = 4
			cfg.Backend = cool.BackendNative
			rt, err := cool.NewRuntime(cfg)
			if err != nil {
				t.Fatal(err)
			}
			err = rt.Run(sc.run)
			if !sc.wantErr(err) {
				t.Fatalf("Run = %v (%T), unexpected outcome for scenario %q", err, err, sc.name)
			}
			waitNoLeak(t, fmt.Sprintf("scenario %q (err=%v)", sc.name, err), base)
		})
	}
}
