// Benchmarks regenerating the paper's tables and figures as testing.B
// targets (one per figure, sub-benchmarks per program variant and
// processor count), plus ablation benchmarks for the design choices
// called out in DESIGN.md. Simulated metrics are attached via
// b.ReportMetric: "simcycles" is the parallel execution time in simulated
// cycles and "speedup" is the ratio against the app's serial reference.
//
// The cmd/coolbench driver produces the full-size figures; these targets
// use moderate workloads so `go test -bench=.` stays fast while still
// exhibiting every effect.
package cool_test

import (
	"fmt"
	"testing"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/apps"
	"github.com/coolrts/cool/internal/apps/pancho"
)

// benchProcs are the processor counts exercised per variant.
var benchProcs = []int{8, 32}

// benchSizes keeps bench workloads moderate (see each app's Params for
// the meaning of size).
var benchSizes = map[string]int{
	"ocean":      128,
	"locusroute": 16,
	"pancho":     48,
	"blockcho":   256,
	"barneshut":  1024,
	"gauss":      128,
}

// benchApp runs every variant × processor count of one registered app.
func benchApp(b *testing.B, name string) {
	app, ok := apps.Lookup(name)
	if !ok {
		b.Fatalf("unknown app %s", name)
	}
	size := benchSizes[name]
	ser, err := app.RunSerial(size)
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range app.Variants {
		for _, procs := range benchProcs {
			b.Run(fmt.Sprintf("%s/P%d", variant, procs), func(b *testing.B) {
				var res apps.Result
				for i := 0; i < b.N; i++ {
					res, err = app.Run(procs, variant, size)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(res.Cycles), "simcycles")
				b.ReportMetric(float64(ser.Cycles)/float64(res.Cycles), "speedup")
				b.ReportMetric(res.Report.Total.MissRate(), "missrate")
			})
		}
	}
}

// BenchmarkFigOcean regenerates F6: Ocean speedup (paper §6.1).
func BenchmarkFigOcean(b *testing.B) { benchApp(b, "ocean") }

// BenchmarkFigLocusRoute regenerates F10: LocusRoute speedup (Fig. 10).
func BenchmarkFigLocusRoute(b *testing.B) { benchApp(b, "locusroute") }

// BenchmarkFigPanelCholesky regenerates F14: Panel Cholesky speedup
// (Fig. 14).
func BenchmarkFigPanelCholesky(b *testing.B) { benchApp(b, "pancho") }

// BenchmarkFigBarnesHut regenerates F16a: Barnes-Hut speedup (Fig. 16).
func BenchmarkFigBarnesHut(b *testing.B) { benchApp(b, "barneshut") }

// BenchmarkFigBlockCholesky regenerates F16b: Block Cholesky speedup
// (Fig. 16).
func BenchmarkFigBlockCholesky(b *testing.B) { benchApp(b, "blockcho") }

// BenchmarkGaussAffinity regenerates the Figure 3 ablation: Gaussian
// elimination with no hints, OBJECT only, and TASK+OBJECT.
func BenchmarkGaussAffinity(b *testing.B) { benchApp(b, "gauss") }

// benchMiss runs one variant at a fixed processor count and reports the
// cache-miss decomposition (the bar charts of Figures 11 and 15).
func benchMiss(b *testing.B, name string) {
	app, ok := apps.Lookup(name)
	if !ok {
		b.Fatalf("unknown app %s", name)
	}
	size := benchSizes[name]
	for _, variant := range app.Variants {
		b.Run(variant, func(b *testing.B) {
			var res apps.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = app.Run(16, variant, size)
				if err != nil {
					b.Fatal(err)
				}
			}
			t := res.Report.Total
			b.ReportMetric(float64(t.Misses()), "misses")
			b.ReportMetric(float64(t.LocalMisses), "localmisses")
			b.ReportMetric(float64(t.RemoteMisses), "remotemisses")
			b.ReportMetric(t.LocalFraction(), "localfrac")
		})
	}
}

// BenchmarkFigLocusMiss regenerates F11: LocusRoute cache behaviour.
func BenchmarkFigLocusMiss(b *testing.B) { benchMiss(b, "locusroute") }

// BenchmarkFigPanelMiss regenerates F15: Panel Cholesky cache behaviour.
func BenchmarkFigPanelMiss(b *testing.B) { benchMiss(b, "pancho") }

// BenchmarkAblationQueueArray (A1) sweeps the per-server task-affinity
// queue array size on a synthetic workload with many concurrently active
// task-affinity sets, where slot collisions interleave sets and destroy
// the back-to-back cache reuse the array exists to provide (paper §5).
func BenchmarkAblationQueueArray(b *testing.B) {
	for _, qs := range []int{1, 4, 64} {
		b.Run(fmt.Sprintf("slots%d", qs), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cycles = runSetReuseWorkload(b, cool.SchedPolicy{QueueArraySize: qs, NoStealing: true})
			}
			b.ReportMetric(float64(cycles), "simcycles")
		})
	}
}

// runSetReuseWorkload spawns S task-affinity sets × T tasks per set on
// few processors; each task streams its set's 32 KB object, so tasks of
// one set hit in cache only when serviced back to back.
func runSetReuseWorkload(b *testing.B, pol cool.SchedPolicy) int64 {
	rt, err := cool.NewRuntime(cool.Config{Processors: 2, Sched: pol})
	if err != nil {
		b.Fatal(err)
	}
	const sets = 16
	const perSet = 8
	objs := make([]*cool.F64, sets)
	for s := range objs {
		objs[s] = rt.NewF64Pages(4096, 0) // 32 KB
	}
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			// Interleave spawn order across sets so slot assignment,
			// not arrival order, decides service order.
			for t := 0; t < perSet; t++ {
				for s := 0; s < sets; s++ {
					obj := objs[s]
					ctx.Spawn("work", func(c *cool.Ctx) {
						for i := 0; i < obj.Len(); i += 512 {
							c.ReadF64Range(obj, i, i+512)
							c.Compute(256)
						}
					}, cool.TaskAffinity(obj.Base))
				}
			}
		})
	})
	if err != nil {
		b.Fatal(err)
	}
	return rt.ElapsedCycles()
}

// BenchmarkAblationStealPolicy (A2) compares the stealing policies of
// §4.2 on Panel Cholesky at 16 processors.
func BenchmarkAblationStealPolicy(b *testing.B) {
	prm := pancho.Params{Grid: 48}
	policies := []struct {
		name string
		pol  cool.SchedPolicy
	}{
		{"default", cool.SchedPolicy{}},
		{"noStealing", cool.SchedPolicy{NoStealing: true}},
		{"noObjectBoundStealing", cool.SchedPolicy{NoObjectBoundStealing: true}},
		{"clusterOnly", cool.SchedPolicy{ClusterStealingOnly: true}},
		{"noClusterFirst", cool.SchedPolicy{NoClusterStealFirst: true}},
	}
	for _, pc := range policies {
		b.Run(pc.name, func(b *testing.B) {
			var res pancho.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = pancho.RunCustom(16, pc.pol, true, prm)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Cycles), "simcycles")
		})
	}
}

// BenchmarkAblationSetStealing (A3) shows whole-set stealing at work: an
// imbalanced task-affinity workload where disabling set stealing forces
// single-task steals that break up cache reuse.
func BenchmarkAblationSetStealing(b *testing.B) {
	run := func(pol cool.SchedPolicy) int64 {
		rt, err := cool.NewRuntime(cool.Config{Processors: 4, Sched: pol})
		if err != nil {
			b.Fatal(err)
		}
		const sets = 8
		objs := make([]*cool.F64, sets)
		for s := range objs {
			objs[s] = rt.NewF64Pages(4096, 0)
		}
		err = rt.Run(func(ctx *cool.Ctx) {
			ctx.WaitFor(func() {
				for s := 0; s < sets; s++ {
					// Unequal set sizes create the load imbalance that
					// stealing must correct.
					for t := 0; t < 2+3*s; t++ {
						obj := objs[s]
						ctx.Spawn("work", func(c *cool.Ctx) {
							for i := 0; i < obj.Len(); i += 512 {
								c.ReadF64Range(obj, i, i+512)
								c.Compute(256)
							}
						}, cool.TaskAffinity(obj.Base))
					}
				}
			})
		})
		if err != nil {
			b.Fatal(err)
		}
		return rt.ElapsedCycles()
	}
	b.Run("setStealing", func(b *testing.B) {
		var c int64
		for i := 0; i < b.N; i++ {
			c = run(cool.SchedPolicy{})
		}
		b.ReportMetric(float64(c), "simcycles")
	})
	b.Run("singleTaskStealsOnly", func(b *testing.B) {
		var c int64
		for i := 0; i < b.N; i++ {
			c = run(cool.SchedPolicy{NoSetStealing: true})
		}
		b.ReportMetric(float64(c), "simcycles")
	})
}
