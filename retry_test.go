package cool_test

import (
	"errors"
	"strings"
	"testing"

	cool "github.com/coolrts/cool"
)

// runWithConfig executes the same 32-task parallel sum as runFaulted but
// under an arbitrary Config, so retry/deadline tests can add their knobs.
func runWithConfig(t *testing.T, cfg cool.Config) (*cool.Runtime, []int, error) {
	t.Helper()
	rt, err := cool.NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 32
	data := rt.NewF64Pages(tasks*512, 3)
	for i := range data.Data {
		data.Data[i] = 1
	}
	hits := make([]int, tasks)
	runErr := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < tasks; i++ {
				i := i
				part := data.Slice(i*512, (i+1)*512)
				ctx.Spawn("worker", func(c *cool.Ctx) {
					s := 0.0
					for _, v := range c.ReadF64Range(part, 0, part.Len()) {
						s += v
					}
					c.Compute(5000)
					hits[i] += int(s) / part.Len() // 1 per completed run
				}, cool.ObjectAffinity(part.Base))
			}
		})
	})
	return rt, hits, runErr
}

func TestTransientRetryCompletesRun(t *testing.T) {
	// Two stacked aborts on one spawn plus a flaky window on P2: with a
	// retry policy every task must still complete exactly once, with the
	// aborted launches visible in the counters.
	plan := cool.NewFaultPlan().
		FailTask("worker", 4).
		FailTask("worker", 4).
		FlakyProcessor(2, 0, 20_000)
	rt, hits, err := runWithConfig(t, cool.Config{
		Processors: 8, Seed: 11, Faults: plan,
		Retry: &cool.RetryPolicy{MaxAttempts: 8, Backoff: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAllRanOnce(t, hits)
	rep := rt.Report()
	if rep.Total.Retries < 2 {
		t.Fatalf("Retries = %d, want >= 2", rep.Total.Retries)
	}
	if rep.Total.GaveUp != 0 {
		t.Fatalf("GaveUp = %d, want 0", rep.Total.GaveUp)
	}
}

func TestRetryBudgetExhaustedTypedError(t *testing.T) {
	// Five stacked aborts against a budget of three attempts: the run
	// must fail with a typed error carrying the attempt count.
	plan := cool.NewFaultPlan()
	for i := 0; i < 5; i++ {
		plan.FailTask("worker", 0)
	}
	rt, _, err := runWithConfig(t, cool.Config{
		Processors: 8, Seed: 11, Faults: plan,
		Retry: &cool.RetryPolicy{MaxAttempts: 3, Backoff: 200},
	})
	var ta *cool.TaskAbortError
	if !errors.As(err, &ta) {
		t.Fatalf("err = %v (%T), want *cool.TaskAbortError", err, err)
	}
	if ta.Task != "worker" || ta.Attempts != 3 {
		t.Fatalf("TaskAbortError = %+v, want Task=worker Attempts=3", ta)
	}
	rep := rt.Report()
	if rep.Total.GaveUp != 1 || rep.Total.Retries != 2 {
		t.Fatalf("GaveUp = %d, Retries = %d, want 1 and 2", rep.Total.GaveUp, rep.Total.Retries)
	}
}

func TestAbortWithoutPolicyFailsFast(t *testing.T) {
	plan := cool.NewFaultPlan().FailTask("worker", 0)
	_, _, err := runWithConfig(t, cool.Config{Processors: 8, Seed: 11, Faults: plan})
	var ta *cool.TaskAbortError
	if !errors.As(err, &ta) {
		t.Fatalf("err = %v (%T), want *cool.TaskAbortError", err, err)
	}
	if ta.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1 (no retry budget without a policy)", ta.Attempts)
	}
	if !strings.Contains(ta.Error(), "retry budget exhausted") {
		t.Fatalf("unhelpful message: %s", ta.Error())
	}
}

func TestPanicsAreNeverRetried(t *testing.T) {
	// An injected panic under a generous retry policy must surface as a
	// panic, not be retried: panics strike mid-body, after side effects.
	plan := cool.NewFaultPlan().PanicTask("worker", 3)
	rt, _, err := runWithConfig(t, cool.Config{
		Processors: 8, Seed: 11, Faults: plan,
		Retry: &cool.RetryPolicy{MaxAttempts: 10, Backoff: 100},
	})
	var tp *cool.TaskPanicError
	if !errors.As(err, &tp) {
		t.Fatalf("err = %v (%T), want *cool.TaskPanicError", err, err)
	}
	if !tp.Injected || tp.Task != "worker" {
		t.Fatalf("TaskPanicError = %+v, want injected panic of worker", tp)
	}
	rep := rt.Report()
	if rep.Total.Retries != 0 || rep.Total.GaveUp != 0 {
		t.Fatalf("panic consumed retry budget: Retries=%d GaveUp=%d, want 0/0",
			rep.Total.Retries, rep.Total.GaveUp)
	}
}

func TestDeadlineExceededTypedError(t *testing.T) {
	// A deadline far below the healthy runtime must stop the run with a
	// progress snapshot: queue depths for every server and the blocked
	// tasks' wait edges.
	_, _, err := runWithConfig(t, cool.Config{Processors: 8, Seed: 11, Deadline: 3000})
	var de *cool.DeadlineExceededError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v (%T), want *cool.DeadlineExceededError", err, err)
	}
	if de.Deadline != 3000 || de.Time <= de.Deadline {
		t.Fatalf("DeadlineExceededError = %+v, want Time past Deadline 3000", de)
	}
	if len(de.QueueDepths) != 8 || len(de.Clocks) != 8 {
		t.Fatalf("snapshot sizes = %d queues, %d clocks, want 8/8", len(de.QueueDepths), len(de.Clocks))
	}
	if de.LiveTasks == 0 {
		t.Fatal("LiveTasks = 0, but the run was cut off mid-flight")
	}
	if !strings.Contains(err.Error(), "deadline 3000 exceeded") {
		t.Fatalf("unhelpful message: %s", err.Error())
	}
}

func TestUnreachedDeadlineIsBitIdentical(t *testing.T) {
	// A generous deadline must not perturb the simulation at all.
	rt1, hits, err := runWithConfig(t, cool.Config{Processors: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	checkAllRanOnce(t, hits)
	rt2, hits2, err := runWithConfig(t, cool.Config{Processors: 8, Seed: 11, Deadline: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	checkAllRanOnce(t, hits2)
	if rt1.ElapsedCycles() != rt2.ElapsedCycles() {
		t.Fatalf("deadline changed cycles: %d vs %d", rt1.ElapsedCycles(), rt2.ElapsedCycles())
	}
}

func TestRetriedRunsAreDeterministic(t *testing.T) {
	run := func() (int64, cool.Report) {
		plan := cool.NewFaultPlan().
			FailTask("worker", 1).
			FlakyProcessor(5, 1000, 30_000)
		// A flaky processor stays idle (all its launches abort) and keeps
		// stealing retried work back, so the budget must outlast the
		// window: give the exponential backoff room to escape it.
		rt, hits, err := runWithConfig(t, cool.Config{
			Processors: 8, Seed: 11, Faults: plan,
			Retry: &cool.RetryPolicy{MaxAttempts: 12, Backoff: 700},
		})
		if err != nil {
			t.Fatal(err)
		}
		checkAllRanOnce(t, hits)
		return rt.ElapsedCycles(), rt.Report()
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 {
		t.Fatalf("cycles differ across identical retried runs: %d vs %d", c1, c2)
	}
	if r1.String() != r2.String() || r1.Total != r2.Total {
		t.Fatalf("reports differ across identical retried runs:\n%s\nvs\n%s", r1, r2)
	}
}

func TestRetryAndDeadlineConfigValidation(t *testing.T) {
	cases := []cool.Config{
		{Processors: 4, Deadline: -1},
		{Processors: 4, Retry: &cool.RetryPolicy{MaxAttempts: -1}},
		{Processors: 4, Retry: &cool.RetryPolicy{Backoff: -5}},
		{Processors: 4, Retry: &cool.RetryPolicy{MaxBackoff: -5}},
	}
	for i, cfg := range cases {
		if _, err := cool.NewRuntime(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestChaosPlanSurface(t *testing.T) {
	p := cool.RandomChaosPlan(42, 8, 2, 12, []string{"worker"})
	if p.Len() != 12 {
		t.Fatalf("Len = %d, want 12", p.Len())
	}
	q := cool.RandomChaosPlan(42, 8, 2, 12, []string{"worker"})
	if p.BuilderString() != q.BuilderString() {
		t.Fatal("same seed produced different chaos plans")
	}
	s := p.BuilderString()
	if !strings.HasPrefix(s, "cool.NewFaultPlan()") {
		t.Fatalf("BuilderString does not start with the constructor: %q", s)
	}
	shrunk := p.WithoutEvent(0)
	if shrunk.Len() != 11 || p.Len() != 12 {
		t.Fatalf("WithoutEvent mutated the original or kept the event: %d/%d", shrunk.Len(), p.Len())
	}
	// A hand-built plan round-trips through BuilderString recognizably.
	h := cool.NewFaultPlan().FailTask("w", 2).FlakyProcessor(1, 100, 200)
	bs := h.BuilderString()
	for _, want := range []string{`FailTask("w", 2)`, "FlakyProcessor(1, 100, 200)"} {
		if !strings.Contains(bs, want) {
			t.Fatalf("BuilderString %q missing %q", bs, want)
		}
	}
}
